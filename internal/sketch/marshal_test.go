package sketch

import (
	"testing"

	"github.com/streamagg/correlated/internal/hash"
)

// roundTrip serializes src and deserializes into dst (fresh from the same
// maker), failing the test on error.
func roundTrip(t *testing.T, src, dst Sketch) {
	t.Helper()
	data, err := src.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.(interface{ UnmarshalBinary([]byte) error }).UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
}

func TestCounterRoundTrip(t *testing.T) {
	for _, m := range []Maker{NewCountMaker(), NewSumMaker()} {
		src, dst := m.New(), m.New()
		src.Add(7, 3)
		src.Add(9, -1)
		roundTrip(t, src, dst)
		if dst.Estimate() != src.Estimate() {
			t.Fatalf("%s: restored %v, want %v", m.Name(), dst.Estimate(), src.Estimate())
		}
	}
}

func TestCounterKindMismatch(t *testing.T) {
	src := NewCountMaker().New()
	data, _ := src.(*counter).MarshalBinary()
	dst := NewSumMaker().New().(*counter)
	if err := dst.UnmarshalBinary(data); err == nil {
		t.Fatal("COUNT bytes accepted by SUM counter")
	}
}

func TestCountSketchRoundTrip(t *testing.T) {
	m := NewF2Maker(64, 3, hash.New(401))
	src, dst := m.New().(*CountSketch), m.New().(*CountSketch)
	rng := hash.New(1)
	for i := 0; i < 5000; i++ {
		src.Add(rng.Uint64n(500), int64(rng.Uint64n(4))-1)
	}
	roundTrip(t, src, dst)
	if dst.Estimate() != src.Estimate() {
		t.Fatalf("F2 restored %v, want %v", dst.Estimate(), src.Estimate())
	}
	for x := uint64(0); x < 20; x++ {
		if dst.EstimateItem(x) != src.EstimateItem(x) {
			t.Fatalf("item %d: restored %v, want %v", x, dst.EstimateItem(x), src.EstimateItem(x))
		}
	}
	// Restored sketch must keep working: further adds agree.
	src.Add(42, 5)
	dst.Add(42, 5)
	if dst.Estimate() != src.Estimate() {
		t.Fatal("divergence after post-restore adds")
	}
}

func TestCountSketchGeometryMismatch(t *testing.T) {
	src := NewF2Maker(64, 3, hash.New(403)).New().(*CountSketch)
	data, _ := src.MarshalBinary()
	dst := NewF2Maker(32, 3, hash.New(403)).New().(*CountSketch)
	if err := dst.UnmarshalBinary(data); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestCountMinRoundTrip(t *testing.T) {
	m := NewCountMinMaker(64, 3, hash.New(409))
	src, dst := m.New().(*CountMin), m.New().(*CountMin)
	rng := hash.New(2)
	for i := 0; i < 3000; i++ {
		src.Add(rng.Uint64n(200), 1)
	}
	roundTrip(t, src, dst)
	if dst.Estimate() != src.Estimate() {
		t.Fatal("total mismatch")
	}
	for x := uint64(0); x < 20; x++ {
		if dst.EstimateItem(x) != src.EstimateItem(x) {
			t.Fatal("point estimate mismatch")
		}
	}
}

func TestKMVRoundTrip(t *testing.T) {
	m := NewKMVMaker(128, 3, hash.New(419))
	src, dst := m.New(), m.New()
	for x := uint64(0); x < 10000; x++ {
		src.Add(x, 1)
	}
	roundTrip(t, src, dst)
	if dst.Estimate() != src.Estimate() {
		t.Fatalf("restored %v, want %v", dst.Estimate(), src.Estimate())
	}
	// Dedup map must be restored too: re-adding known values is a no-op.
	before := dst.Size()
	for x := uint64(0); x < 10000; x++ {
		dst.Add(x, 1)
	}
	if dst.Size() != before {
		t.Fatal("seen-set not restored: duplicates changed the sketch")
	}
}

func TestL1RoundTrip(t *testing.T) {
	m := NewL1Maker(64, hash.New(421))
	src, dst := m.New(), m.New()
	for x := uint64(0); x < 500; x++ {
		src.Add(x, int64(x%5)-2)
	}
	roundTrip(t, src, dst)
	if dst.Estimate() != src.Estimate() {
		t.Fatalf("restored %v, want %v", dst.Estimate(), src.Estimate())
	}
}

func TestFkRoundTrip(t *testing.T) {
	m := NewFkMaker(3, 16, 64, 128, 3, hash.New(431))
	src, dst := m.New().(*Fk), m.New().(*Fk)
	for _, x := range zipfStream(30000, 3000, 1.3, 9) {
		src.Add(x, 1)
	}
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if dst.Estimate() != src.Estimate() {
		t.Fatalf("restored %v, want %v", dst.Estimate(), src.Estimate())
	}
	if dst.CheapEstimate() != src.CheapEstimate() {
		t.Fatal("cheap-estimate state not restored")
	}
	if dst.Size() != src.Size() {
		t.Fatalf("size %d, want %d", dst.Size(), src.Size())
	}
	// Post-restore adds must keep both in lockstep.
	src.Add(99, 7)
	dst.Add(99, 7)
	if dst.Estimate() != src.Estimate() {
		t.Fatal("divergence after post-restore adds")
	}
}

func TestMarshalRejectsGarbage(t *testing.T) {
	m := NewF2Maker(16, 2, hash.New(433))
	dst := m.New().(*CountSketch)
	for _, bad := range [][]byte{nil, {0}, {99, 2}, {1, 99}, {1, 2, 0xff}} {
		if err := dst.UnmarshalBinary(bad); err == nil {
			t.Fatalf("garbage %v accepted", bad)
		}
	}
}
