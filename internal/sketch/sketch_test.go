package sketch

import (
	"math"
	"testing"

	"github.com/streamagg/correlated/internal/hash"
)

// exactMoment computes sum over items of count^k.
func exactMoment(freq map[uint64]int64, k float64) float64 {
	s := 0.0
	for _, c := range freq {
		s += math.Pow(float64(c), k)
	}
	return s
}

// zipfStream generates n items from {0..m-1} with Zipf(alpha) frequencies.
func zipfStream(n, m int, alpha float64, seed uint64) []uint64 {
	rng := hash.New(seed)
	cdf := make([]float64, m)
	tot := 0.0
	for i := 0; i < m; i++ {
		tot += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = tot
	}
	out := make([]uint64, n)
	for i := range out {
		u := rng.Float64() * tot
		lo, hi := 0, m-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = uint64(lo)
	}
	return out
}

func TestCountCounter(t *testing.T) {
	m := NewCountMaker()
	s := m.New()
	for i := 0; i < 100; i++ {
		s.Add(uint64(i), 2)
	}
	if got := s.Estimate(); got != 200 {
		t.Fatalf("count = %v, want 200", got)
	}
	if s.Size() != 1 {
		t.Fatalf("counter size = %d, want 1", s.Size())
	}
}

func TestSumCounter(t *testing.T) {
	m := NewSumMaker()
	s := m.New()
	want := int64(0)
	for i := int64(1); i <= 100; i++ {
		s.Add(uint64(i), 3)
		want += 3 * i
	}
	if got := s.Estimate(); got != float64(want) {
		t.Fatalf("sum = %v, want %d", got, want)
	}
}

func TestCounterMerge(t *testing.T) {
	m := NewCountMaker()
	a, b := m.New(), m.New()
	a.Add(1, 5)
	b.Add(2, 7)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != 12 {
		t.Fatalf("merged count = %v, want 12", a.Estimate())
	}
}

func TestCounterMergeIncompatible(t *testing.T) {
	a := NewCountMaker().New()
	b := NewCountMaker().New() // counters carry no randomness: compatible
	b.Add(1, 4)
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge of two COUNT counters failed: %v", err)
	}
	if a.Estimate() != 4 {
		t.Fatalf("merged count = %v, want 4", a.Estimate())
	}
	c := NewSumMaker().New()
	if err := a.Merge(c); err != ErrIncompatible {
		t.Fatalf("merge COUNT with SUM: err = %v, want ErrIncompatible", err)
	}
}

func TestCountSketchF2Uniform(t *testing.T) {
	m := NewF2Maker(512, 5, hash.New(101))
	s := m.New()
	freq := map[uint64]int64{}
	rng := hash.New(7)
	for i := 0; i < 200000; i++ {
		x := rng.Uint64n(5000)
		s.Add(x, 1)
		freq[x]++
	}
	exact := exactMoment(freq, 2)
	got := s.Estimate()
	if rel := math.Abs(got-exact) / exact; rel > 0.12 {
		t.Fatalf("F2 estimate %v vs exact %v, rel err %v", got, exact, rel)
	}
}

func TestCountSketchF2Zipf(t *testing.T) {
	m := NewF2Maker(512, 5, hash.New(103))
	s := m.New()
	freq := map[uint64]int64{}
	for _, x := range zipfStream(200000, 5000, 1.2, 11) {
		s.Add(x, 1)
		freq[x]++
	}
	exact := exactMoment(freq, 2)
	got := s.Estimate()
	if rel := math.Abs(got-exact) / exact; rel > 0.12 {
		t.Fatalf("F2 estimate %v vs exact %v, rel err %v", got, exact, rel)
	}
}

func TestCountSketchIncrementalEstimateMatchesRecompute(t *testing.T) {
	m := NewF2Maker(64, 3, hash.New(107))
	s := m.New().(*CountSketch)
	rng := hash.New(9)
	for i := 0; i < 5000; i++ {
		s.Add(rng.Uint64n(200), int64(rng.Uint64n(3))+1)
	}
	for i := 0; i < m.depth; i++ {
		var f2 float64
		for _, c := range s.row(i) {
			f2 += float64(c) * float64(c)
		}
		if math.Abs(f2-s.rowF2[i]) > 1e-6*math.Abs(f2) {
			t.Fatalf("row %d incremental F2 %v, recomputed %v", i, s.rowF2[i], f2)
		}
	}
}

func TestCountSketchNegativeWeights(t *testing.T) {
	m := NewF2Maker(256, 5, hash.New(109))
	s := m.New()
	// Insert then delete everything: net frequency zero, F2 must be ~0.
	rng := hash.New(13)
	xs := make([]uint64, 3000)
	for i := range xs {
		xs[i] = rng.Uint64n(500)
		s.Add(xs[i], 1)
	}
	for _, x := range xs {
		s.Add(x, -1)
	}
	if got := s.Estimate(); got != 0 {
		t.Fatalf("F2 of cancelled stream = %v, want 0", got)
	}
}

func TestCountSketchMergeEqualsWhole(t *testing.T) {
	m := NewF2Maker(128, 5, hash.New(113))
	whole := m.New()
	a, b := m.New(), m.New()
	rng := hash.New(17)
	for i := 0; i < 20000; i++ {
		x := rng.Uint64n(1000)
		whole.Add(x, 1)
		if i%2 == 0 {
			a.Add(x, 1)
		} else {
			b.Add(x, 1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// Linear sketches with shared seeds: merge must equal the whole
	// sketch exactly, not just approximately.
	if a.Estimate() != whole.Estimate() {
		t.Fatalf("merged estimate %v != whole-stream estimate %v", a.Estimate(), whole.Estimate())
	}
}

func TestCountSketchMergeIncompatible(t *testing.T) {
	rng := hash.New(127)
	a := NewF2Maker(64, 3, rng).New()
	b := NewF2Maker(64, 3, rng).New()
	if err := a.Merge(b); err != ErrIncompatible {
		t.Fatalf("err = %v, want ErrIncompatible", err)
	}
}

func TestCountSketchEstimateItem(t *testing.T) {
	m := NewF2Maker(1024, 5, hash.New(131))
	s := m.New().(*CountSketch)
	// One heavy item among background noise.
	for i := 0; i < 5000; i++ {
		s.Add(42, 1)
	}
	rng := hash.New(19)
	for i := 0; i < 20000; i++ {
		s.Add(1000+rng.Uint64n(2000), 1)
	}
	got := s.EstimateItem(42)
	if math.Abs(got-5000) > 500 {
		t.Fatalf("EstimateItem(42) = %v, want ~5000", got)
	}
}

func TestCountMinOverestimates(t *testing.T) {
	m := NewCountMinMaker(256, 4, hash.New(137))
	s := m.New().(*CountMin)
	freq := map[uint64]int64{}
	rng := hash.New(23)
	for i := 0; i < 50000; i++ {
		x := rng.Uint64n(2000)
		s.Add(x, 1)
		freq[x]++
	}
	for x, f := range freq {
		if est := s.EstimateItem(x); est < float64(f) {
			t.Fatalf("count-min underestimated item %d: %v < %d", x, est, f)
		}
	}
	if s.Estimate() != 50000 {
		t.Fatalf("count-min total = %v, want 50000", s.Estimate())
	}
}

func TestCountMinAdditiveError(t *testing.T) {
	m := NewCountMinMakerError(0.01, 0.01, hash.New(139))
	s := m.New().(*CountMin)
	freq := map[uint64]int64{}
	rng := hash.New(29)
	const n = 100000
	for i := 0; i < n; i++ {
		x := rng.Uint64n(5000)
		s.Add(x, 1)
		freq[x]++
	}
	bad := 0
	for x, f := range freq {
		if s.EstimateItem(x)-float64(f) > 0.02*n {
			bad++
		}
	}
	if bad > len(freq)/50 {
		t.Fatalf("%d of %d items exceeded the additive error bound", bad, len(freq))
	}
}

func TestCountMinMerge(t *testing.T) {
	m := NewCountMinMaker(128, 4, hash.New(149))
	a, b := m.New(), m.New()
	a.Add(7, 10)
	b.Add(7, 5)
	b.Add(9, 3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.(*CountMin).EstimateItem(7); got < 15 {
		t.Fatalf("merged estimate for 7 = %v, want >= 15", got)
	}
	if a.Estimate() != 18 {
		t.Fatalf("merged total = %v, want 18", a.Estimate())
	}
}

func TestKMVExactWhenSmall(t *testing.T) {
	m := NewKMVMaker(1024, 3, hash.New(151))
	s := m.New()
	for x := uint64(0); x < 500; x++ {
		s.Add(x, 1)
		s.Add(x, 1) // duplicates must not count
	}
	if got := s.Estimate(); got != 500 {
		t.Fatalf("KMV small-set estimate = %v, want exactly 500", got)
	}
}

func TestKMVAccuracy(t *testing.T) {
	m := NewKMVMakerError(0.05, 0.05, hash.New(157))
	s := m.New()
	const distinct = 200000
	for x := uint64(0); x < distinct; x++ {
		s.Add(x, 1)
	}
	got := s.Estimate()
	if rel := math.Abs(got-distinct) / distinct; rel > 0.05 {
		t.Fatalf("KMV estimate %v vs %d, rel err %v", got, distinct, rel)
	}
}

func TestKMVIgnoresNonPositiveWeights(t *testing.T) {
	m := NewKMVMaker(64, 1, hash.New(163))
	s := m.New()
	s.Add(1, 0)
	s.Add(2, -1)
	if s.Size() != 0 {
		t.Fatalf("KMV stored %d values from non-positive weights", s.Size())
	}
}

func TestKMVMergeEqualsWhole(t *testing.T) {
	m := NewKMVMakerError(0.1, 0.1, hash.New(167))
	whole, a, b := m.New(), m.New(), m.New()
	for x := uint64(0); x < 50000; x++ {
		whole.Add(x, 1)
		if x%2 == 0 {
			a.Add(x, 1)
		} else {
			b.Add(x, 1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != whole.Estimate() {
		t.Fatalf("KMV merge %v != whole %v", a.Estimate(), whole.Estimate())
	}
}

func TestKMVMergeOverlapping(t *testing.T) {
	m := NewKMVMakerError(0.1, 0.1, hash.New(173))
	a, b := m.New(), m.New()
	for x := uint64(0); x < 30000; x++ {
		a.Add(x, 1)
		b.Add(x+15000, 1) // 50% overlap; union is 45000
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := a.Estimate()
	if rel := math.Abs(got-45000) / 45000; rel > 0.1 {
		t.Fatalf("KMV union estimate %v vs 45000, rel err %v", got, rel)
	}
}

func TestFkExactOnTinyStream(t *testing.T) {
	m := NewFkMaker(3, 16, 64, 256, 5, hash.New(179))
	s := m.New()
	// 10 items, each 4 times: F3 = 10 * 64 = 640. No eviction happens,
	// so the level-0 candidate set is complete and counts are exact.
	for x := uint64(0); x < 10; x++ {
		for r := 0; r < 4; r++ {
			s.Add(x, 1)
		}
	}
	got := s.Estimate()
	if math.Abs(got-640) > 64 {
		t.Fatalf("F3 = %v, want ~640", got)
	}
}

func TestFkZipfAccuracy(t *testing.T) {
	// Skewed stream: F3 dominated by heavy hitters, which the candidate
	// tracker must capture.
	m := NewFkMaker(3, 32, 512, 2048, 5, hash.New(181))
	s := m.New()
	freq := map[uint64]int64{}
	for _, x := range zipfStream(300000, 20000, 1.5, 31) {
		s.Add(x, 1)
		freq[x]++
	}
	exact := exactMoment(freq, 3)
	got := s.Estimate()
	if rel := math.Abs(got-exact) / exact; rel > 0.25 {
		t.Fatalf("F3 estimate %v vs exact %v, rel err %v", got, exact, rel)
	}
}

func TestFkUniformAccuracy(t *testing.T) {
	// Uniform stream: Fk is all residual, exercising the
	// Horvitz–Thompson part of the estimator.
	m := NewFkMaker(3, 32, 1024, 2048, 5, hash.New(191))
	s := m.New()
	freq := map[uint64]int64{}
	rng := hash.New(37)
	for i := 0; i < 300000; i++ {
		x := rng.Uint64n(30000)
		s.Add(x, 1)
		freq[x]++
	}
	exact := exactMoment(freq, 3)
	got := s.Estimate()
	if rel := math.Abs(got-exact) / exact; rel > 0.35 {
		t.Fatalf("F3 estimate %v vs exact %v, rel err %v", got, exact, rel)
	}
}

func TestFkMergeEqualsWholeDistribution(t *testing.T) {
	m := NewFkMaker(3, 32, 256, 1024, 5, hash.New(193))
	whole, a, b := m.New(), m.New(), m.New()
	for i, x := range zipfStream(100000, 10000, 1.3, 41) {
		whole.Add(x, 1)
		if i%2 == 0 {
			a.Add(x, 1)
		} else {
			b.Add(x, 1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	w, g := whole.Estimate(), a.Estimate()
	if rel := math.Abs(g-w) / w; rel > 0.3 {
		t.Fatalf("merged Fk %v deviates from whole-stream %v by %v", g, w, rel)
	}
}

func TestFkCheapEstimateIsCheapAndSane(t *testing.T) {
	m := NewFkMaker(3, 16, 128, 256, 3, hash.New(197))
	s := m.New().(*Fk)
	for x := uint64(0); x < 50; x++ {
		s.Add(x, 1)
	}
	// No eviction: cheap estimate equals the exact F3 = 50.
	if got := s.CheapEstimate(); got != 50 {
		t.Fatalf("cheap estimate = %v, want 50", got)
	}
}

func TestCheapEstimateHelper(t *testing.T) {
	c := NewCountMaker().New()
	c.Add(1, 3)
	if got := CheapEstimate(c); got != 3 {
		t.Fatalf("CheapEstimate fallback = %v, want 3", got)
	}
	fk := NewFkMaker(3, 8, 64, 64, 3, hash.New(199)).New()
	fk.Add(1, 1)
	if got := CheapEstimate(fk); got != 1 {
		t.Fatalf("CheapEstimate fast path = %v, want 1", got)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := median(append([]float64(nil), c.in...)); got != c.want {
			t.Errorf("median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSketchSizes(t *testing.T) {
	rng := hash.New(211)
	cs := NewF2Maker(64, 3, rng).New()
	if cs.Size() != 192 {
		t.Errorf("CountSketch size = %d, want 192", cs.Size())
	}
	cm := NewCountMinMaker(64, 3, rng).New()
	if cm.Size() != 193 {
		t.Errorf("CountMin size = %d, want 193", cm.Size())
	}
}
