package sketch

import (
	"math"
	"testing"

	"github.com/streamagg/correlated/internal/hash"
)

func TestL1InsertOnlyAccuracy(t *testing.T) {
	m := NewL1Maker(512, hash.New(61))
	s := m.New()
	// 1000 items, total weight 5000: F1 = 5000.
	rng := hash.New(3)
	var want float64
	for i := 0; i < 1000; i++ {
		w := int64(rng.Uint64n(9)) + 1
		s.Add(rng.Uint64n(100000), w)
		want += float64(w)
	}
	got := s.Estimate()
	if rel := math.Abs(got-want) / want; rel > 0.15 {
		t.Fatalf("L1 = %v, want %v (rel %v)", got, want, rel)
	}
}

func TestL1Turnstile(t *testing.T) {
	m := NewL1Maker(512, hash.New(67))
	s := m.New()
	// Insert items then delete some: F1 of the net weights.
	for x := uint64(0); x < 500; x++ {
		s.Add(x, 4)
	}
	for x := uint64(0); x < 250; x++ {
		s.Add(x, -3) // net 1 for half, net 4 for the rest
	}
	want := 250.0*1 + 250.0*4
	got := s.Estimate()
	if rel := math.Abs(got-want) / want; rel > 0.15 {
		t.Fatalf("turnstile L1 = %v, want %v (rel %v)", got, want, rel)
	}
}

func TestL1FullCancellation(t *testing.T) {
	m := NewL1Maker(64, hash.New(71))
	s := m.New()
	for x := uint64(0); x < 100; x++ {
		s.Add(x, 7)
		s.Add(x, -7)
	}
	if got := s.Estimate(); math.Abs(got) > 1e-6 {
		t.Fatalf("cancelled L1 = %v, want ~0", got)
	}
}

func TestL1MergeEqualsWhole(t *testing.T) {
	m := NewL1Maker(128, hash.New(73))
	whole, a, b := m.New(), m.New(), m.New()
	rng := hash.New(5)
	for i := 0; i < 5000; i++ {
		x, w := rng.Uint64n(1000), int64(rng.Uint64n(5))-2
		if w == 0 {
			w = 1
		}
		whole.Add(x, w)
		if i%2 == 0 {
			a.Add(x, w)
		} else {
			b.Add(x, w)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Estimate()-whole.Estimate()) > 1e-9*math.Abs(whole.Estimate()) {
		t.Fatalf("merged %v != whole %v", a.Estimate(), whole.Estimate())
	}
}

func TestL1MergeIncompatible(t *testing.T) {
	rng := hash.New(79)
	a := NewL1Maker(64, rng).New()
	b := NewL1Maker(64, rng).New()
	if err := a.Merge(b); err != ErrIncompatible {
		t.Fatalf("err = %v, want ErrIncompatible", err)
	}
	c := NewCountMaker().New()
	if err := a.Merge(c); err != ErrIncompatible {
		t.Fatalf("cross-type err = %v, want ErrIncompatible", err)
	}
}

func TestL1MakerErrorSizing(t *testing.T) {
	fine := NewL1MakerError(0.05, 0.1, hash.New(83))
	coarse := NewL1MakerError(0.3, 0.1, hash.New(83))
	if fine.K() <= coarse.K() {
		t.Fatalf("k at eps=0.05 (%d) not above k at eps=0.3 (%d)", fine.K(), coarse.K())
	}
	if sz := fine.New().Size(); sz != fine.K() {
		t.Fatalf("size %d != k %d", sz, fine.K())
	}
}

func TestL1CauchyDeterministic(t *testing.T) {
	m1 := NewL1Maker(64, hash.New(89))
	m2 := NewL1Maker(64, hash.New(89))
	for j := 0; j < 10; j++ {
		for x := uint64(0); x < 100; x++ {
			if m1.cauchy(j, x) != m2.cauchy(j, x) {
				t.Fatal("cauchy variates not deterministic in the seed")
			}
		}
	}
}
