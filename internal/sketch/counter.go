package sketch

// Exact counters. The correlated SUM and COUNT aggregates go through the
// general reduction with a trivial "sketch": a single 64-bit accumulator
// with zero estimation error (υ = 0). COUNT is the first frequency moment
// F1 of the selected substream; SUM aggregates the x values themselves,
// matching the correlated sum studied by Gehrke et al. and Ananthakrishna
// et al. that the paper cites as prior work.

// CountMaker makes exact COUNT (F1) counters.
type CountMaker struct {
	pool []*counter
}

// NewCountMaker returns a Maker for exact F1/COUNT counters.
func NewCountMaker() *CountMaker { return &CountMaker{} }

// Name implements Maker.
func (m *CountMaker) Name() string { return "count" }

// New implements Maker.
func (m *CountMaker) New() Sketch {
	if n := len(m.pool); n > 0 {
		c := m.pool[n-1]
		m.pool[n-1] = nil
		m.pool = m.pool[:n-1]
		return c
	}
	return &counter{}
}

// Slots implements SlotMaker. Exact counters have no hash functions; the
// "slot" is the item itself, so the fan-out path is exercisable (and
// testable) uniformly across every aggregate.
func (m *CountMaker) Slots(x uint64, scratch Slots) Slots {
	return append(scratch, x)
}

// SlotWidth implements SlotMaker.
func (m *CountMaker) SlotWidth() int { return 1 }

// Recycle implements Recycler.
func (m *CountMaker) Recycle(sk Sketch) {
	c, ok := sk.(*counter)
	if !ok || c.sum || len(m.pool) >= maxPool {
		return
	}
	c.Reset()
	m.pool = append(m.pool, c)
}

// SumMaker makes exact SUM counters: Add(x, w) contributes w*x.
type SumMaker struct {
	pool []*counter
}

// NewSumMaker returns a Maker for exact SUM counters.
func NewSumMaker() *SumMaker { return &SumMaker{} }

// Name implements Maker.
func (m *SumMaker) Name() string { return "sum" }

// New implements Maker.
func (m *SumMaker) New() Sketch {
	if n := len(m.pool); n > 0 {
		c := m.pool[n-1]
		m.pool[n-1] = nil
		m.pool = m.pool[:n-1]
		return c
	}
	return &counter{sum: true}
}

// Slots implements SlotMaker.
func (m *SumMaker) Slots(x uint64, scratch Slots) Slots {
	return append(scratch, x)
}

// SlotWidth implements SlotMaker.
func (m *SumMaker) SlotWidth() int { return 1 }

// Recycle implements Recycler.
func (m *SumMaker) Recycle(sk Sketch) {
	c, ok := sk.(*counter)
	if !ok || !c.sum || len(m.pool) >= maxPool {
		return
	}
	c.Reset()
	m.pool = append(m.pool, c)
}

type counter struct {
	sum   bool
	total int64
}

func (c *counter) Add(x uint64, w int64) {
	if c.sum {
		c.total += w * int64(x)
	} else {
		c.total += w
	}
}

// AddSlots implements SlotAdder.
func (c *counter) AddSlots(slots Slots, w int64) {
	c.Add(slots[0], w)
}

// Reset implements Resetter.
func (c *counter) Reset() { c.total = 0 }

// ThresholdBudget implements BudgetEstimator. A COUNT estimate grows by
// exactly the added weight, so the budget is the exact distance to the
// threshold; SUM grows by w·x with unbounded x, so it offers no bound.
func (c *counter) ThresholdBudget(thresh float64) int64 {
	if c.sum {
		return 0
	}
	b := int64(thresh - float64(c.total))
	if b < 0 {
		return 0
	}
	return b
}

func (c *counter) Estimate() float64 { return float64(c.total) }

// Merge implements Sketch. Exact counters carry no randomness, so any two
// counters of the same flavour (both COUNT or both SUM) are compatible.
func (c *counter) Merge(other Sketch) error {
	o, ok := other.(*counter)
	if !ok || o.sum != c.sum {
		return ErrIncompatible
	}
	c.total += o.total
	return nil
}

func (c *counter) Size() int { return 1 }
