package sketch

// Exact counters. The correlated SUM and COUNT aggregates go through the
// general reduction with a trivial "sketch": a single 64-bit accumulator
// with zero estimation error (υ = 0). COUNT is the first frequency moment
// F1 of the selected substream; SUM aggregates the x values themselves,
// matching the correlated sum studied by Gehrke et al. and Ananthakrishna
// et al. that the paper cites as prior work.

// CountMaker makes exact COUNT (F1) counters.
type CountMaker struct{}

// NewCountMaker returns a Maker for exact F1/COUNT counters.
func NewCountMaker() *CountMaker { return &CountMaker{} }

// Name implements Maker.
func (m *CountMaker) Name() string { return "count" }

// New implements Maker.
func (m *CountMaker) New() Sketch { return &counter{} }

// SumMaker makes exact SUM counters: Add(x, w) contributes w*x.
type SumMaker struct{}

// NewSumMaker returns a Maker for exact SUM counters.
func NewSumMaker() *SumMaker { return &SumMaker{} }

// Name implements Maker.
func (m *SumMaker) Name() string { return "sum" }

// New implements Maker.
func (m *SumMaker) New() Sketch { return &counter{sum: true} }

type counter struct {
	sum   bool
	total int64
}

func (c *counter) Add(x uint64, w int64) {
	if c.sum {
		c.total += w * int64(x)
	} else {
		c.total += w
	}
}

func (c *counter) Estimate() float64 { return float64(c.total) }

// Merge implements Sketch. Exact counters carry no randomness, so any two
// counters of the same flavour (both COUNT or both SUM) are compatible.
func (c *counter) Merge(other Sketch) error {
	o, ok := other.(*counter)
	if !ok || o.sum != c.sum {
		return ErrIncompatible
	}
	c.total += o.total
	return nil
}

func (c *counter) Size() int { return 1 }
