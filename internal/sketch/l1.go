package sketch

import (
	"math"
	"sort"

	"github.com/streamagg/correlated/internal/hash"
)

// L1 is Indyk's stable-distribution sketch for the first moment of net
// weights, F1 = Σ_x |f_x|, in the turnstile model: k counters
// c_j = Σ_x f_x · C(j, x) with C(j, x) i.i.d. standard Cauchy (generated
// on the fly from a tabulation hash of (j, x), so sketches from one maker
// merge by addition). Because the Cauchy distribution is 1-stable,
// c_j is distributed as F1 times a standard Cauchy, and the median of
// |c_1|, ..., |c_k| concentrates at F1 (the median of |Cauchy| is 1).
//
// This is the natural whole-stream estimator for the g(k) = |k| member of
// the paper's Section 4 function class; MULTIPASS probes it to answer
// correlated F1 queries over ±-weighted streams.
type L1 struct {
	maker *L1Maker
	cnt   []float64
}

// L1Maker creates L1 sketches sharing the Cauchy-generating hash.
type L1Maker struct {
	k int
	h *hash.Tab64

	pool       []*L1     // free list of reset sketches
	medScratch []float64 // reused by Estimate
}

// NewL1Maker returns a Maker with k counters; the estimator's standard
// error is Θ(1/sqrt(k)).
func NewL1Maker(k int, rng *hash.RNG) *L1Maker {
	if k < 8 {
		panic("sketch: L1 needs k >= 8")
	}
	return &L1Maker{k: k, h: hash.NewTab64(rng)}
}

// NewL1MakerError sizes the sketch for relative error upsilon with
// failure probability gamma.
func NewL1MakerError(upsilon, gamma float64, rng *hash.RNG) *L1Maker {
	if upsilon <= 0 || upsilon >= 1 {
		panic("sketch: upsilon must be in (0,1)")
	}
	k := int(math.Ceil(8 / (upsilon * upsilon) * math.Log2(2/gamma) / 4))
	if k < 64 {
		k = 64
	}
	if k > 1<<16 {
		k = 1 << 16
	}
	return &L1Maker{k: k, h: hash.NewTab64(rng)}
}

// Name implements Maker.
func (m *L1Maker) Name() string { return "f1/cauchy" }

// New implements Maker, drawing from the free list when possible.
func (m *L1Maker) New() Sketch {
	if n := len(m.pool); n > 0 {
		s := m.pool[n-1]
		m.pool[n-1] = nil
		m.pool = m.pool[:n-1]
		return s
	}
	return &L1{maker: m, cnt: make([]float64, m.k)}
}

// Slots implements SlotMaker: the k Cauchy variates of x, as float64 bits.
// Generating a variate costs a tabulation hash plus a tangent, so the
// hash-once fan-out saves far more here than for the integer sketches.
func (m *L1Maker) Slots(x uint64, scratch Slots) Slots {
	for j := 0; j < m.k; j++ {
		scratch = append(scratch, math.Float64bits(m.cauchy(j, x)))
	}
	return scratch
}

// SlotWidth implements SlotMaker.
func (m *L1Maker) SlotWidth() int { return m.k }

// Recycle implements Recycler.
func (m *L1Maker) Recycle(sk Sketch) {
	s, ok := sk.(*L1)
	if !ok || s.maker != m || len(m.pool) >= maxPool {
		return
	}
	s.Reset()
	m.pool = append(m.pool, s)
}

// K returns the counter count.
func (m *L1Maker) K() int { return m.k }

// cauchy returns the deterministic standard-Cauchy variate C(j, x).
func (m *L1Maker) cauchy(j int, x uint64) float64 {
	// Mix the counter index into the key; tabulation output is uniform
	// on [0, 1), mapped through the Cauchy quantile function.
	u := m.h.Unit(x*0x9e3779b97f4a7c15 + uint64(j)*0xbf58476d1ce4e5b9 + uint64(j))
	// Keep u away from the poles at 0 and 1 (tan singularities).
	u = u*(1-1e-12) + 5e-13
	return math.Tan(math.Pi * (u - 0.5))
}

// Add implements Sketch.
func (s *L1) Add(x uint64, w int64) {
	wf := float64(w)
	for j := range s.cnt {
		s.cnt[j] += wf * s.maker.cauchy(j, x)
	}
}

// AddSlots implements SlotAdder.
func (s *L1) AddSlots(slots Slots, w int64) {
	wf := float64(w)
	for j, bits := range slots {
		s.cnt[j] += wf * math.Float64frombits(bits)
	}
}

// Reset implements Resetter.
func (s *L1) Reset() {
	for j := range s.cnt {
		s.cnt[j] = 0
	}
}

// Estimate implements Sketch: the median of absolute counter values,
// computed on a maker-owned scratch buffer.
func (s *L1) Estimate() float64 {
	m := s.maker
	if cap(m.medScratch) < len(s.cnt) {
		m.medScratch = make([]float64, len(s.cnt))
	}
	abs := m.medScratch[:len(s.cnt)]
	for i, v := range s.cnt {
		abs[i] = math.Abs(v)
	}
	sort.Float64s(abs)
	k := len(abs)
	if k%2 == 1 {
		return abs[k/2]
	}
	return (abs[k/2-1] + abs[k/2]) / 2
}

// Merge implements Sketch by counter-wise addition. The other sketch may
// come from the same maker or from an equivalent one.
func (s *L1) Merge(other Sketch) error {
	o, ok := other.(*L1)
	if !ok || !s.maker.equivalent(o.maker) {
		return ErrIncompatible
	}
	for j := range s.cnt {
		s.cnt[j] += o.cnt[j]
	}
	return nil
}

// Size implements Sketch.
func (s *L1) Size() int { return len(s.cnt) }
