package sketch

import (
	"math"
	"sort"

	"github.com/streamagg/correlated/internal/hash"
)

// Fk estimates the k-th frequency moment for k > 2 in the style of
// Indyk–Woodruff: identifiers are geometrically sub-sampled into levels
// (item x reaches level j with probability 2^-j, decided by one shared
// tabulation hash so sketches merge consistently), each level maintains a
// CountSketch plus a bounded candidate set of potentially-heavy items, and
// the estimate combines (a) the point-estimated contributions of the
// candidates found at level 0 with (b) a Horvitz–Thompson residual from the
// shallowest level whose candidate set never overflowed — at that level the
// candidate set contains *every* sampled item, so weighting each
// non-heavy contribution by 2^j is an unbiased estimate of the light part.
//
// This is the standard practical rendition of the level-set algorithm: the
// skeleton (sub-sampling + per-level heavy hitters) follows the paper [22]
// it builds on, while the constants are empirical rather than worst-case,
// exactly as in every published Fk implementation. DESIGN.md records this
// substitution.
type Fk struct {
	maker  *FkMaker
	levels []fkLevel
}

type fkLevel struct {
	// cs and cand are allocated on first use: a bucket sketch inside the
	// core structure typically sees items at only the first few
	// sub-sampling levels, and eager allocation of all tables would
	// dominate both time and space.
	cs      *CountSketch
	cand    map[uint64]int64 // item -> weight added since tracking began
	evicted bool             // true once any candidate has been dropped
	// Level-0 cheap-estimate state.
	running   float64 // sum over candidates of (tracked count)^k
	untracked int64   // weight added while not tracked
}

// FkMaker creates Fk sketches sharing sampling and CountSketch hashes.
type FkMaker struct {
	k        int
	levels   int
	trackCap int
	csMaker  *F2Maker
	sampleH  *hash.Tab64
}

// NewFkMaker returns a Maker for Fk sketches.
//
//	k        — the moment order (k >= 2; use F2Maker directly for k = 2).
//	levels   — number of sub-sampling levels (log2 of the largest distinct
//	           item count expected; 32 is a safe default).
//	trackCap — candidate-set capacity per level.
//	csW, csD — CountSketch geometry per level.
func NewFkMaker(k, levels, trackCap, csW, csD int, rng *hash.RNG) *FkMaker {
	if k < 2 {
		panic("sketch: Fk needs k >= 2")
	}
	if levels < 1 || trackCap < 4 {
		panic("sketch: Fk needs levels >= 1 and trackCap >= 4")
	}
	return &FkMaker{
		k:        k,
		levels:   levels,
		trackCap: trackCap,
		csMaker:  NewF2Maker(csW, csD, rng),
		sampleH:  hash.NewTab64(rng),
	}
}

// NewFkMakerError sizes an Fk maker for target relative error upsilon with
// failure probability gamma, using practical constants.
func NewFkMakerError(k int, upsilon, gamma float64, rng *hash.RNG) *FkMaker {
	if upsilon <= 0 || upsilon >= 1 {
		panic("sketch: upsilon must be in (0,1)")
	}
	cap := int(math.Ceil(16 / upsilon))
	if cap < 64 {
		cap = 64
	}
	w := int(math.Ceil(8 / (upsilon * upsilon)))
	if w < 64 {
		w = 64
	}
	d := int(math.Ceil(math.Log2(1/gamma) / 2))
	if d < 3 {
		d = 3
	}
	if d > 7 {
		d = 7
	}
	return NewFkMaker(k, 32, cap, w, d, rng)
}

// Name implements Maker.
func (m *FkMaker) Name() string { return "fk/indyk-woodruff" }

// K returns the moment order.
func (m *FkMaker) K() int { return m.k }

// New implements Maker.
func (m *FkMaker) New() Sketch {
	return &Fk{maker: m, levels: make([]fkLevel, m.levels)}
}

// ensure allocates level j's tables on first use.
func (f *Fk) ensure(j int) *fkLevel {
	lv := &f.levels[j]
	if lv.cs == nil {
		lv.cs = f.maker.csMaker.New().(*CountSketch)
		lv.cand = make(map[uint64]int64)
	}
	return lv
}

func (m *FkMaker) powK(v float64) float64 {
	if v < 0 {
		v = 0
	}
	return math.Pow(v, float64(m.k))
}

// Add implements Sketch. Fk through the general reduction is insert-only;
// negative weights are clamped away by the public API before they get here.
func (f *Fk) Add(x uint64, w int64) {
	deepest := f.maker.sampleH.Level(x)
	if deepest >= f.maker.levels {
		deepest = f.maker.levels - 1
	}
	for j := 0; j <= deepest; j++ {
		f.addLevel(j, x, w)
	}
}

func (f *Fk) addLevel(j int, x uint64, w int64) {
	lv := f.ensure(j)
	lv.cs.Add(x, w)
	if c, ok := lv.cand[x]; ok {
		lv.running -= f.maker.powK(float64(c))
		lv.cand[x] = c + w
		lv.running += f.maker.powK(float64(c + w))
		return
	}
	// Allow the map to grow to twice the capacity, then prune the
	// lightest half by CountSketch estimate; this amortizes the O(cap·d)
	// prune over cap insertions.
	if len(lv.cand) >= 2*f.maker.trackCap {
		f.prune(lv)
	}
	lv.cand[x] = w
	lv.running += f.maker.powK(float64(w))
}

// prune drops the lightest candidates until trackCap remain.
func (f *Fk) prune(lv *fkLevel) {
	type ce struct {
		x   uint64
		est float64
	}
	ents := make([]ce, 0, len(lv.cand))
	for x := range lv.cand {
		ents = append(ents, ce{x, lv.cs.EstimateItem(x)})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].est > ents[j].est })
	for _, e := range ents[f.maker.trackCap:] {
		c := lv.cand[e.x]
		lv.running -= f.maker.powK(float64(c))
		lv.untracked += c
		delete(lv.cand, e.x)
	}
	lv.evicted = true
}

// CheapEstimate implements CheapEstimator: a constant-time lower-bound
// style approximation used for bucket-closing decisions in the core
// structure — the running candidate contribution at level 0 plus one unit
// per untracked occurrence.
func (f *Fk) CheapEstimate() float64 {
	lv := &f.levels[0]
	return lv.running + float64(lv.untracked)
}

// Estimate implements Sketch.
//
// If the level-0 candidate set never overflowed it contains every distinct
// item with its exact count, so the estimate is exact. Otherwise the
// estimate splits into a heavy part and a light part:
//
//   - heavy: level-0 candidates whose point estimate clears a noise
//     threshold of 4·sqrt(F̂2/width) — four standard deviations of the
//     CountSketch estimation noise, so essentially no light item passes
//     spuriously and no selection bias inflates the sum;
//   - light: at the shallowest level j* whose candidate set never
//     overflowed, the tracked counts are the *exact* frequencies of every
//     sampled item, so 2^j* times the sum of their k-th powers (heavy
//     items excluded) is an unbiased Horvitz–Thompson estimate of the
//     light contribution, with no CountSketch noise at all.
func (f *Fk) Estimate() float64 {
	m := f.maker
	lv0 := &f.levels[0]
	if !lv0.evicted {
		exact := 0.0
		for _, c := range lv0.cand {
			exact += m.powK(float64(c))
		}
		return exact
	}
	thr := 4 * math.Sqrt(lv0.cs.Estimate()/float64(m.csMaker.width))
	heavy := 0.0
	heavySet := make(map[uint64]struct{})
	for x, c := range lv0.cand {
		est := lv0.cs.EstimateItem(x)
		if lb := float64(c); est < lb {
			est = lb
		}
		if est >= thr {
			heavySet[x] = struct{}{}
			heavy += m.powK(est)
		}
	}
	jstar := -1
	for j := 1; j < len(f.levels); j++ {
		if !f.levels[j].evicted {
			jstar = j
			break
		}
	}
	if jstar < 0 {
		// Every level overflowed (essentially impossible with 32
		// levels); fall back to the deepest level's tracked counts.
		jstar = len(f.levels) - 1
	}
	resid := 0.0
	for x, c := range f.levels[jstar].cand {
		if _, isHeavy := heavySet[x]; isHeavy {
			continue
		}
		resid += m.powK(float64(c))
	}
	return heavy + resid*math.Pow(2, float64(jstar))
}

// EstimateItem implements ItemEstimator via the level-0 CountSketch,
// reconciled with the exact tracked count when the item is a candidate.
func (f *Fk) EstimateItem(x uint64) float64 {
	lv0 := &f.levels[0]
	if lv0.cs == nil {
		return 0
	}
	est := lv0.cs.EstimateItem(x)
	if c, ok := lv0.cand[x]; ok && float64(c) > est {
		est = float64(c)
	}
	return est
}

// Candidates implements CandidateTracker: the level-0 candidate set,
// which contains every heavy identifier with overwhelming probability.
func (f *Fk) Candidates() []uint64 {
	lv0 := &f.levels[0]
	out := make([]uint64, 0, len(lv0.cand))
	for x := range lv0.cand {
		out = append(out, x)
	}
	return out
}

// Merge implements Sketch. The other sketch may come from the same maker
// or from an equivalent one (identical hash functions and geometry).
func (f *Fk) Merge(other Sketch) error {
	o, ok := other.(*Fk)
	if !ok || !f.maker.equivalent(o.maker) {
		return ErrIncompatible
	}
	for j := range f.levels {
		olv := &o.levels[j]
		if olv.cs == nil && olv.untracked == 0 && !olv.evicted {
			continue // other side never touched this level
		}
		lv := f.ensure(j)
		if olv.cs != nil {
			if err := lv.cs.Merge(olv.cs); err != nil {
				return err
			}
		}
		for x, c := range olv.cand {
			lv.cand[x] += c
		}
		lv.untracked += olv.untracked
		lv.evicted = lv.evicted || olv.evicted
		if len(lv.cand) > 2*f.maker.trackCap {
			f.prune(lv)
		}
		// Rebuild the running sum from the merged counts.
		lv.running = 0
		for _, c := range lv.cand {
			lv.running += f.maker.powK(float64(c))
		}
	}
	return nil
}

// Size implements Sketch. Unallocated levels cost nothing.
func (f *Fk) Size() int {
	n := 0
	for j := range f.levels {
		if f.levels[j].cs != nil {
			n += f.levels[j].cs.Size() + len(f.levels[j].cand)
		}
	}
	return n
}
