package sketch

import (
	"math"

	"github.com/streamagg/correlated/internal/hash"
)

// CountMin is the Cormode–Muthukrishnan Count-Min sketch: d rows of w
// non-negative counters with 2-universal row hashes; a point query returns
// the minimum counter, which overestimates the true frequency by at most
// ||f||_1 * e/w with probability 1 - e^-d. It is used where one-sided
// frequency estimates for strictly positive streams are preferable to
// CountSketch's two-sided ones (the correlated sum heavy-hitter extension
// and several tests).
type CountMin struct {
	maker *CountMinMaker
	rows  [][]int64
	total int64
}

// CountMinMaker creates CountMin sketches sharing row hashes.
type CountMinMaker struct {
	width, depth int
	rowH         []*hash.TwoWise

	pool []*CountMin // free list of reset sketches
}

// NewCountMinMaker returns a Maker for d-row, w-wide Count-Min sketches.
func NewCountMinMaker(width, depth int, rng *hash.RNG) *CountMinMaker {
	if width < 1 || depth < 1 {
		panic("sketch: CountMinMaker width and depth must be >= 1")
	}
	m := &CountMinMaker{width: width, depth: depth}
	for i := 0; i < depth; i++ {
		m.rowH = append(m.rowH, hash.NewTwoWise(rng))
	}
	return m
}

// NewCountMinMakerError sizes the sketch for additive error eps*||f||_1
// with failure probability gamma: w = ceil(e/eps), d = ceil(ln(1/gamma)).
func NewCountMinMakerError(eps, gamma float64, rng *hash.RNG) *CountMinMaker {
	if eps <= 0 || eps >= 1 {
		panic("sketch: eps must be in (0,1)")
	}
	w := int(math.Ceil(math.E / eps))
	d := int(math.Ceil(math.Log(1 / gamma)))
	if d < 1 {
		d = 1
	}
	return NewCountMinMaker(w, d, rng)
}

// Name implements Maker.
func (m *CountMinMaker) Name() string { return "countmin" }

// New implements Maker, drawing from the free list when possible.
func (m *CountMinMaker) New() Sketch {
	if n := len(m.pool); n > 0 {
		cm := m.pool[n-1]
		m.pool[n-1] = nil
		m.pool = m.pool[:n-1]
		return cm
	}
	cm := &CountMin{maker: m, rows: make([][]int64, m.depth)}
	backing := make([]int64, m.depth*m.width)
	for i := range cm.rows {
		cm.rows[i] = backing[i*m.width : (i+1)*m.width : (i+1)*m.width]
	}
	return cm
}

// Slots implements SlotMaker: one counter index per row.
func (m *CountMinMaker) Slots(x uint64, scratch Slots) Slots {
	for i := 0; i < m.depth; i++ {
		scratch = append(scratch, uint64(m.rowH[i].Bucket(x, m.width)))
	}
	return scratch
}

// SlotWidth implements SlotMaker.
func (m *CountMinMaker) SlotWidth() int { return m.depth }

// Recycle implements Recycler.
func (m *CountMinMaker) Recycle(sk Sketch) {
	cm, ok := sk.(*CountMin)
	if !ok || cm.maker != m || len(m.pool) >= maxPool {
		return
	}
	cm.Reset()
	m.pool = append(m.pool, cm)
}

// Add implements Sketch. Count-Min assumes the strict turnstile model:
// counters never go negative for valid streams.
func (c *CountMin) Add(x uint64, w int64) {
	m := c.maker
	for i := 0; i < m.depth; i++ {
		c.rows[i][m.rowH[i].Bucket(x, m.width)] += w
	}
	c.total += w
}

// AddSlots implements SlotAdder.
func (c *CountMin) AddSlots(slots Slots, w int64) {
	for i, b := range slots {
		c.rows[i][b] += w
	}
	c.total += w
}

// Reset implements Resetter.
func (c *CountMin) Reset() {
	for i := range c.rows {
		row := c.rows[i]
		for j := range row {
			row[j] = 0
		}
	}
	c.total = 0
}

// Estimate implements Sketch: the exact total weight ||f||_1 (F1).
func (c *CountMin) Estimate() float64 { return float64(c.total) }

// EstimateItem implements ItemEstimator: the min-counter point estimate.
func (c *CountMin) EstimateItem(x uint64) float64 {
	m := c.maker
	min := int64(math.MaxInt64)
	for i := 0; i < m.depth; i++ {
		v := c.rows[i][m.rowH[i].Bucket(x, m.width)]
		if v < min {
			min = v
		}
	}
	return float64(min)
}

// Merge implements Sketch by counter-wise addition. The other sketch may
// come from the same maker or from an equivalent one.
func (c *CountMin) Merge(other Sketch) error {
	o, ok := other.(*CountMin)
	if !ok || !c.maker.equivalent(o.maker) {
		return ErrIncompatible
	}
	for i := range c.rows {
		for j := range c.rows[i] {
			c.rows[i][j] += o.rows[i][j]
		}
	}
	c.total += o.total
	return nil
}

// Size implements Sketch.
func (c *CountMin) Size() int { return c.maker.width*c.maker.depth + 1 }
