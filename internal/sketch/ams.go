package sketch

import (
	"math"

	"github.com/streamagg/correlated/internal/hash"
)

// CountSketch is the linear sketch of Charikar–Chen–Farach-Colton laid out
// in the fast style of Thorup–Zhang: d rows of w signed counters, one
// 4-universal hash per row choosing the counter, one 4-universal hash per
// row choosing the sign. Summing the squares of a row's counters gives the
// AMS tug-of-war estimate of the second frequency moment F2 (this is
// exactly the "variant of Alon et al. based on the idea of Thorup and
// Zhang" the paper's experiments use); the median over rows drives the
// failure probability down. The same table answers point queries
// (EstimateItem), which Section 3.3 needs for correlated F2 heavy hitters.
//
// The sketch is linear, so merging is counter-wise addition, and it
// tolerates negative weights, so it doubles as the turnstile whole-stream
// estimator that MULTIPASS (Section 4.2) probes.
type CountSketch struct {
	maker *F2Maker
	rows  [][]int64 // d x w counters
	rowF2 []float64 // incrementally maintained sum of squares per row
}

// F2Maker creates CountSketch instances sharing one set of row hashes.
// Each row uses a single 4-universal hash drawn into [0, 2w): the low bit
// is the sign and the remaining bits pick the counter, so the (bucket,
// sign) pair is jointly 4-wise independent at half the hashing cost —
// the Thorup–Zhang trick.
type F2Maker struct {
	width, depth int
	rowH         []*hash.FourWise
}

// NewF2Maker returns a Maker for CountSketch/AMS sketches with d rows of w
// counters each. Width drives the per-row relative error (~sqrt(2/w)),
// depth drives the failure probability.
func NewF2Maker(width, depth int, rng *hash.RNG) *F2Maker {
	if width < 1 || depth < 1 {
		panic("sketch: F2Maker width and depth must be >= 1")
	}
	m := &F2Maker{width: width, depth: depth}
	for i := 0; i < depth; i++ {
		m.rowH = append(m.rowH, hash.NewFourWise(rng))
	}
	return m
}

// rowSlot returns the counter index and sign for x in row i.
func (m *F2Maker) rowSlot(i int, x uint64) (int, int64) {
	v := m.rowH[i].Hash(x) % uint64(2*m.width)
	sign := int64(v&1)*2 - 1
	return int(v >> 1), sign
}

// NewF2MakerError returns a Maker sized for relative error upsilon with
// failure probability gamma. Following the paper's own experimental setup,
// the sizing uses practical constants rather than the worst-case proof
// constants: width 4/υ² (per-row standard deviation ≈ υ/√2) and a row
// count that grows with log(1/γ) but is capped at 9, which in combination
// with the median already gives sub-percent failure rates in practice.
func NewF2MakerError(upsilon, gamma float64, rng *hash.RNG) *F2Maker {
	if upsilon <= 0 || upsilon >= 1 {
		panic("sketch: upsilon must be in (0,1)")
	}
	w := int(math.Ceil(2 / (upsilon * upsilon)))
	if w < 16 {
		w = 16
	}
	d := int(math.Ceil(math.Log2(1/gamma) / 5))
	if d < 3 {
		d = 3
	}
	if d > 4 {
		d = 4
	}
	return NewF2Maker(w, d, rng)
}

// Name implements Maker.
func (m *F2Maker) Name() string { return "f2/countsketch" }

// New implements Maker.
func (m *F2Maker) New() Sketch {
	cs := &CountSketch{
		maker: m,
		rows:  make([][]int64, m.depth),
		rowF2: make([]float64, m.depth),
	}
	for i := range cs.rows {
		cs.rows[i] = make([]int64, m.width)
	}
	return cs
}

// Width returns the number of counters per row.
func (m *F2Maker) Width() int { return m.width }

// Depth returns the number of rows.
func (m *F2Maker) Depth() int { return m.depth }

// Add implements Sketch. Each update touches d counters and keeps the
// per-row sum of squares current in O(d) time, so Estimate stays O(d).
func (c *CountSketch) Add(x uint64, w int64) {
	m := c.maker
	for i := 0; i < m.depth; i++ {
		b, s := m.rowSlot(i, x)
		old := c.rows[i][b]
		delta := s * w
		c.rows[i][b] = old + delta
		// (old+delta)^2 - old^2 = 2*old*delta + delta^2
		c.rowF2[i] += float64(2*old*delta) + float64(delta)*float64(delta)
	}
}

// Estimate implements Sketch: the median over rows of the sum of squared
// counters, which is the AMS estimator of F2.
func (c *CountSketch) Estimate() float64 {
	ests := make([]float64, len(c.rowF2))
	copy(ests, c.rowF2)
	return median(ests)
}

// EstimateItem implements ItemEstimator: the median over rows of
// sign * counter, the CountSketch point estimate of x's net frequency.
func (c *CountSketch) EstimateItem(x uint64) float64 {
	m := c.maker
	ests := make([]float64, m.depth)
	for i := 0; i < m.depth; i++ {
		b, s := m.rowSlot(i, x)
		ests[i] = float64(s * c.rows[i][b])
	}
	return median(ests)
}

// Merge implements Sketch by counter-wise addition.
func (c *CountSketch) Merge(other Sketch) error {
	o, ok := other.(*CountSketch)
	if !ok || o.maker != c.maker {
		return ErrIncompatible
	}
	for i := range c.rows {
		var f2 float64
		for j := range c.rows[i] {
			c.rows[i][j] += o.rows[i][j]
			f2 += float64(c.rows[i][j]) * float64(c.rows[i][j])
		}
		c.rowF2[i] = f2
	}
	return nil
}

// Size implements Sketch.
func (c *CountSketch) Size() int { return c.maker.width * c.maker.depth }
