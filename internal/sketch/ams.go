package sketch

import (
	"math"

	"github.com/streamagg/correlated/internal/hash"
)

// CountSketch is the linear sketch of Charikar–Chen–Farach-Colton laid out
// in the fast style of Thorup–Zhang: d rows of w signed counters, one
// 4-universal hash per row choosing the counter, one 4-universal hash per
// row choosing the sign. Summing the squares of a row's counters gives the
// AMS tug-of-war estimate of the second frequency moment F2 (this is
// exactly the "variant of Alon et al. based on the idea of Thorup and
// Zhang" the paper's experiments use); the median over rows drives the
// failure probability down. The same table answers point queries
// (EstimateItem), which Section 3.3 needs for correlated F2 heavy hitters.
//
// The sketch is linear, so merging is counter-wise addition, and it
// tolerates negative weights, so it doubles as the turnstile whole-stream
// estimator that MULTIPASS (Section 4.2) probes.
type CountSketch struct {
	maker *F2Maker
	data  []int64   // d*w counters, row-major (flat for locality)
	rowF2 []float64 // incrementally maintained sum of squares per row
}

// row returns row i as a slice view over the flat counter array.
func (c *CountSketch) row(i int) []int64 {
	w := c.maker.width
	return c.data[i*w : (i+1)*w : (i+1)*w]
}

// F2Maker creates CountSketch instances sharing one set of row hashes.
// Each row uses a single 4-universal hash drawn into [0, 2w): the low bit
// is the sign and the remaining bits pick the counter, so the (bucket,
// sign) pair is jointly 4-wise independent at half the hashing cost —
// the Thorup–Zhang trick.
type F2Maker struct {
	width, depth int
	rowH         []*hash.FourWise

	pool       []*CountSketch // free list of reset sketches
	medScratch []float64      // reused by Estimate/EstimateItem
}

// NewF2Maker returns a Maker for CountSketch/AMS sketches with d rows of w
// counters each. Width drives the per-row relative error (~sqrt(2/w)),
// depth drives the failure probability.
func NewF2Maker(width, depth int, rng *hash.RNG) *F2Maker {
	if width < 1 || depth < 1 {
		panic("sketch: F2Maker width and depth must be >= 1")
	}
	m := &F2Maker{width: width, depth: depth, medScratch: make([]float64, depth)}
	for i := 0; i < depth; i++ {
		m.rowH = append(m.rowH, hash.NewFourWise(rng))
	}
	return m
}

// rowSlot returns the packed slot word for x in row i: a value in [0, 2w)
// whose low bit is the sign and whose remaining bits pick the counter. The
// reduction is Lemire multiply-shift rather than a modulo, which keeps one
// integer division out of the innermost ingest loop.
func (m *F2Maker) rowSlot(i int, x uint64) uint64 {
	return hash.Reduce61(m.rowH[i].Hash(x), uint64(2*m.width))
}

// Slots implements SlotMaker: one packed (counter, sign) word per row.
func (m *F2Maker) Slots(x uint64, scratch Slots) Slots {
	for i := 0; i < m.depth; i++ {
		scratch = append(scratch, m.rowSlot(i, x))
	}
	return scratch
}

// SlotWidth implements SlotMaker.
func (m *F2Maker) SlotWidth() int { return m.depth }

// Recycle implements Recycler.
func (m *F2Maker) Recycle(sk Sketch) {
	cs, ok := sk.(*CountSketch)
	if !ok || cs.maker != m || len(m.pool) >= maxPool {
		return
	}
	cs.Reset()
	m.pool = append(m.pool, cs)
}

// NewF2MakerError returns a Maker sized for relative error upsilon with
// failure probability gamma. Following the paper's own experimental setup,
// the sizing uses practical constants rather than the worst-case proof
// constants: width 4/υ² (per-row standard deviation ≈ υ/√2) and a row
// count that grows with log(1/γ) but is capped at 9, which in combination
// with the median already gives sub-percent failure rates in practice.
func NewF2MakerError(upsilon, gamma float64, rng *hash.RNG) *F2Maker {
	if upsilon <= 0 || upsilon >= 1 {
		panic("sketch: upsilon must be in (0,1)")
	}
	w := int(math.Ceil(2 / (upsilon * upsilon)))
	if w < 16 {
		w = 16
	}
	d := int(math.Ceil(math.Log2(1/gamma) / 5))
	if d < 3 {
		d = 3
	}
	if d > 4 {
		d = 4
	}
	return NewF2Maker(w, d, rng)
}

// Name implements Maker.
func (m *F2Maker) Name() string { return "f2/countsketch" }

// New implements Maker. It reuses a pooled sketch when one is available;
// fresh sketches keep every row in one flat backing array (two allocations
// per sketch instead of depth+1, and contiguous for the cache).
func (m *F2Maker) New() Sketch {
	if n := len(m.pool); n > 0 {
		cs := m.pool[n-1]
		m.pool[n-1] = nil
		m.pool = m.pool[:n-1]
		return cs
	}
	return &CountSketch{
		maker: m,
		data:  make([]int64, m.depth*m.width),
		rowF2: make([]float64, m.depth),
	}
}

// Width returns the number of counters per row.
func (m *F2Maker) Width() int { return m.width }

// Depth returns the number of rows.
func (m *F2Maker) Depth() int { return m.depth }

// Add implements Sketch. Each update touches d counters and keeps the
// per-row sum of squares current in O(d) time, so Estimate stays O(d).
func (c *CountSketch) Add(x uint64, w int64) {
	m := c.maker
	w2 := float64(w) * float64(w)
	for i := 0; i < m.depth; i++ {
		c.applySlot(i, m.rowSlot(i, x), w, w2)
	}
}

// AddSlots implements SlotAdder; the state change is bit-identical to
// Add(x, w) for the x the slots were computed from. This is the innermost
// loop of the core structure's ingest path, so locals are hoisted out of
// the per-row body.
func (c *CountSketch) AddSlots(slots Slots, w int64) {
	w2 := float64(w) * float64(w)
	data, rowF2 := c.data, c.rowF2
	width := c.maker.width
	base := 0
	for i, v := range slots {
		idx := base + int(v>>1)
		old := data[idx]
		delta := (int64(v&1)*2 - 1) * w
		data[idx] = old + delta
		rowF2[i] += float64(2*old*delta) + w2
		base += width
	}
}

// applySlot adds sign·w to row i's counter, both encoded in the packed
// slot word v ∈ [0, 2·width); w2 is the caller-hoisted w².
func (c *CountSketch) applySlot(i int, v uint64, w int64, w2 float64) {
	idx := i*c.maker.width + int(v>>1)
	old := c.data[idx]
	delta := (int64(v&1)*2 - 1) * w
	c.data[idx] = old + delta
	// (old+delta)^2 - old^2 = 2*old*delta + delta^2, and delta^2 = w^2.
	c.rowF2[i] += float64(2*old*delta) + w2
}

// Reset implements Resetter.
func (c *CountSketch) Reset() {
	for i := range c.data {
		c.data[i] = 0
	}
	for i := range c.rowF2 {
		c.rowF2[i] = 0
	}
}

// Estimate implements Sketch: the median over rows of the sum of squared
// counters, which is the AMS estimator of F2. The core structure consults
// it on bucket-closing checks, so the common small depths are branch-free
// special cases and nothing ever allocates.
func (c *CountSketch) Estimate() float64 {
	r := c.rowF2
	switch len(r) {
	case 1:
		return r[0]
	case 2:
		return (r[0] + r[1]) / 2
	case 3:
		return r[0] + r[1] + r[2] - math.Max(r[0], math.Max(r[1], r[2])) -
			math.Min(r[0], math.Min(r[1], r[2]))
	case 4:
		lo := math.Min(math.Min(r[0], r[1]), math.Min(r[2], r[3]))
		hi := math.Max(math.Max(r[0], r[1]), math.Max(r[2], r[3]))
		return (r[0] + r[1] + r[2] + r[3] - lo - hi) / 2
	}
	ests := c.maker.medScratch[:len(r)]
	copy(ests, r)
	return median(ests)
}

// ThresholdBudget implements BudgetEstimator. A weight-w update moves one
// counter per row by ±w, so a row's L2 norm grows by at most w and its sum
// of squares stays below (sqrt(rowF2)+W)² after W total weight. The median
// over rows is bounded by the max row, giving a safe check-free budget of
// sqrt(thresh) − sqrt(max rowF2).
func (c *CountSketch) ThresholdBudget(thresh float64) int64 {
	maxRow := 0.0
	for _, v := range c.rowF2 {
		if v > maxRow {
			maxRow = v
		}
	}
	if maxRow >= thresh {
		return 0
	}
	return int64(math.Sqrt(thresh) - math.Sqrt(maxRow))
}

// EstimateItem implements ItemEstimator: the median over rows of
// sign * counter, the CountSketch point estimate of x's net frequency.
func (c *CountSketch) EstimateItem(x uint64) float64 {
	m := c.maker
	ests := m.medScratch[:m.depth]
	for i := 0; i < m.depth; i++ {
		v := m.rowSlot(i, x)
		sign := int64(v&1)*2 - 1
		ests[i] = float64(sign * c.data[i*m.width+int(v>>1)])
	}
	return median(ests)
}

// Merge implements Sketch by counter-wise addition. The other sketch may
// come from the same maker or from an equivalent one (identical geometry
// and hash functions — the distributed-merge case). The merged rowF2 is
// recomputed exactly from the counters, which also clears any float drift
// the incremental maintenance accumulated.
func (c *CountSketch) Merge(other Sketch) error {
	o, ok := other.(*CountSketch)
	if !ok || !c.maker.equivalent(o.maker) {
		return ErrIncompatible
	}
	w := c.maker.width
	for i := range c.rowF2 {
		var f2 float64
		for j := i * w; j < (i+1)*w; j++ {
			c.data[j] += o.data[j]
			f2 += float64(c.data[j]) * float64(c.data[j])
		}
		c.rowF2[i] = f2
	}
	return nil
}

// Size implements Sketch.
func (c *CountSketch) Size() int { return c.maker.width * c.maker.depth }
