package sketch

import (
	"container/heap"
	"math"

	"github.com/streamagg/correlated/internal/hash"
)

// KMV is the k-minimum-values distinct counter: keep the k smallest hash
// values of the identifiers seen; if the k-th smallest, normalized to
// [0,1), is u, then (k-1)/u estimates the number of distinct identifiers.
// KMV is order-insensitive and mergeable (union the value sets, keep the k
// smallest), which makes it the natural whole-stream F0 black box. The
// correlated F0 structure of Section 3.2 does NOT use this type — it needs
// y-aware eviction and lives in internal/corrf0 — but whole-stream F0
// queries, the drill-down example, and several tests do.
//
// A KMV instance runs reps independent repetitions (distinct tabulation
// hashes) and reports the median, converting the constant failure
// probability of a single repetition into the target δ.
type KMV struct {
	maker *KMVMaker
	reps  []kmvRep
}

type kmvRep struct {
	vals maxHeap64 // k smallest hash values, as a max-heap
	seen map[uint64]struct{}
}

// KMVMaker creates KMV sketches sharing per-repetition hash functions.
type KMVMaker struct {
	k      int
	hashes []*hash.Tab64
}

// NewKMVMaker returns a Maker for KMV sketches keeping the k smallest
// values in each of reps repetitions.
func NewKMVMaker(k, reps int, rng *hash.RNG) *KMVMaker {
	if k < 2 || reps < 1 {
		panic("sketch: KMV needs k >= 2 and reps >= 1")
	}
	m := &KMVMaker{k: k}
	for i := 0; i < reps; i++ {
		m.hashes = append(m.hashes, hash.NewTab64(rng))
	}
	return m
}

// NewKMVMakerError sizes the sketch for relative error eps with failure
// probability gamma: k = ceil(24/eps²) per repetition, median over
// O(log 1/gamma) repetitions.
func NewKMVMakerError(eps, gamma float64, rng *hash.RNG) *KMVMaker {
	if eps <= 0 || eps >= 1 {
		panic("sketch: eps must be in (0,1)")
	}
	k := int(math.Ceil(24 / (eps * eps)))
	r := int(math.Ceil(math.Log2(1 / gamma)))
	if r < 1 {
		r = 1
	}
	if r > 9 {
		r = 9
	}
	if r%2 == 0 {
		r++
	}
	return NewKMVMaker(k, r, rng)
}

// Name implements Maker.
func (m *KMVMaker) Name() string { return "f0/kmv" }

// New implements Maker.
func (m *KMVMaker) New() Sketch {
	k := &KMV{maker: m, reps: make([]kmvRep, len(m.hashes))}
	for i := range k.reps {
		k.reps[i].seen = make(map[uint64]struct{})
	}
	return k
}

// Add implements Sketch. Weights are ignored except for the sign check:
// distinct counting is insertion-only.
func (s *KMV) Add(x uint64, w int64) {
	if w <= 0 {
		return
	}
	k := s.maker.k
	for i := range s.reps {
		h := s.maker.hashes[i].Hash(x)
		r := &s.reps[i]
		if _, ok := r.seen[h]; ok {
			continue
		}
		switch {
		case len(r.vals) < k:
			r.seen[h] = struct{}{}
			heap.Push(&r.vals, h)
		case h < r.vals[0]:
			delete(r.seen, r.vals[0])
			r.seen[h] = struct{}{}
			r.vals[0] = h
			heap.Fix(&r.vals, 0)
		}
	}
}

// Estimate implements Sketch: the median over repetitions of the KMV
// estimator.
func (s *KMV) Estimate() float64 {
	ests := make([]float64, len(s.reps))
	for i := range s.reps {
		ests[i] = s.reps[i].estimate(s.maker.k)
	}
	return median(ests)
}

func (r *kmvRep) estimate(k int) float64 {
	if len(r.vals) < k {
		// Fewer than k distinct values: the sample is the full set.
		return float64(len(r.vals))
	}
	u := (float64(r.vals[0]) + 1) / math.Pow(2, 64)
	return float64(k-1) / u
}

// Merge implements Sketch: union the value sets, keep the k smallest. The
// other sketch may come from the same maker or from an equivalent one.
func (s *KMV) Merge(other Sketch) error {
	o, ok := other.(*KMV)
	if !ok || !s.maker.equivalent(o.maker) {
		return ErrIncompatible
	}
	k := s.maker.k
	for i := range s.reps {
		r := &s.reps[i]
		for _, h := range o.reps[i].vals {
			if _, dup := r.seen[h]; dup {
				continue
			}
			switch {
			case len(r.vals) < k:
				r.seen[h] = struct{}{}
				heap.Push(&r.vals, h)
			case h < r.vals[0]:
				delete(r.seen, r.vals[0])
				r.seen[h] = struct{}{}
				r.vals[0] = h
				heap.Fix(&r.vals, 0)
			}
		}
	}
	return nil
}

// Size implements Sketch.
func (s *KMV) Size() int {
	n := 0
	for i := range s.reps {
		n += len(s.reps[i].vals)
	}
	return n
}

// maxHeap64 is a max-heap of uint64 values.
type maxHeap64 []uint64

func (h maxHeap64) Len() int            { return len(h) }
func (h maxHeap64) Less(i, j int) bool  { return h[i] > h[j] }
func (h maxHeap64) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap64) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *maxHeap64) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
