// Package sketch implements the mergeable whole-stream summaries that the
// paper's general reduction (Section 2) uses as black boxes: exact counters
// for SUM/COUNT, the AMS/CountSketch linear sketch for F2 (with the fast
// Thorup–Zhang row layout), Count-Min, a KMV distinct counter for F0, and an
// Indyk–Woodruff-style level-set estimator for Fk, k > 2.
//
// Every sketch is created by a Maker. All sketches from one Maker share hash
// seeds, which is what makes them composable: for disjoint substreams R1 and
// R2, Merge(sk(R1), sk(R2)) is distributed identically to sk(R1 ∪ R2)
// (Condition V(b) of the paper). Merging sketches from different Makers is
// an error.
package sketch

import "errors"

// ErrIncompatible is returned by Merge when the two sketches were not
// created by the same Maker (and therefore do not share hash functions).
var ErrIncompatible = errors.New("sketch: cannot merge sketches from different makers")

// Sketch summarizes a weighted multiset of item identifiers.
//
// Estimate must be cheap (amortized O(rows) or better), because the core
// data structure of Section 2 consults it on every insertion to decide when
// a bucket crosses its 2^(ℓ+1) closing threshold.
type Sketch interface {
	// Add inserts w copies of item x. Sketches used with the insert-only
	// algorithms of Sections 2–3 receive only w > 0; turnstile sketches
	// (Section 4) also receive negative w.
	Add(x uint64, w int64)

	// Estimate returns the sketch's estimate of its aggregate over
	// everything added so far.
	Estimate() float64

	// Merge folds other into the receiver. The two sketches must come
	// from the same Maker.
	Merge(other Sketch) error

	// Size returns the number of stored counters/tuples, the space
	// metric reported in the paper's experiments.
	Size() int
}

// Maker creates sketches that share hash seeds and are therefore mergeable
// with one another.
type Maker interface {
	New() Sketch
	Name() string
}

// Slots is the precomputed per-row update plan for one item: everything a
// sketch needs to apply the item without re-evaluating hash functions. The
// word layout is private to each Maker/Sketch pair — slots produced by one
// Maker are only meaningful to sketches created by that same Maker.
type Slots []uint64

// SlotMaker is a Maker whose sketches all share hash functions, so the
// (bucket, sign) work for an item can be computed once and applied to any
// number of sibling sketches. This is what makes the core structure's
// ingest path hash-once: one tuple is hashed once per arrival, not once per
// live level. Every sketch returned by a SlotMaker's New must implement
// SlotAdder.
type SlotMaker interface {
	Maker

	// Slots appends x's update slots to scratch and returns the extended
	// slice. Callers reuse scratch across calls (pass scratch[:0] for a
	// single item, or keep appending to build a batch slab).
	Slots(x uint64, scratch Slots) Slots

	// SlotWidth returns the fixed number of slot words emitted per item.
	SlotWidth() int
}

// SlotAdder applies a precomputed update plan. AddSlots(m.Slots(x, nil), w)
// must leave the sketch in a state bit-identical to Add(x, w).
type SlotAdder interface {
	AddSlots(slots Slots, w int64)
}

// Resetter is implemented by sketches that can be cleared back to their
// freshly-created (empty) state for reuse.
type Resetter interface {
	Reset()
}

// Recycler is implemented by makers that keep a free list of reset
// sketches: New draws from the pool when possible, and Recycle returns a
// sketch to it. Recycling a sketch transfers ownership back to the maker —
// the caller must drop every reference to it.
type Recycler interface {
	Recycle(Sketch)
}

// Recycle returns sk to m's pool when m supports pooling; otherwise it is
// a no-op and the sketch is left for the garbage collector.
func Recycle(m Maker, sk Sketch) {
	if sk == nil {
		return
	}
	if r, ok := m.(Recycler); ok {
		r.Recycle(sk)
	}
}

// maxPool bounds each maker's free list; beyond this, recycled sketches
// are simply dropped. Query composition and bucket eviction churn a
// handful of sketches at a time, so a small pool captures all the reuse.
const maxPool = 256

// ItemEstimator is implemented by sketches that can estimate the frequency
// of an individual item (CountSketch, Count-Min). The correlated heavy
// hitters structure of Section 3.3 depends on it.
type ItemEstimator interface {
	// EstimateItem returns the estimated (signed) frequency of x.
	EstimateItem(x uint64) float64
}

// CandidateTracker is implemented by sketches that track a candidate set of
// potentially-heavy items alongside their frequency estimates.
type CandidateTracker interface {
	// Candidates returns the tracked item identifiers, unordered.
	Candidates() []uint64
}

// CheapEstimator is an optional fast path: sketches whose full Estimate is
// expensive (the Fk level-set estimator) expose a constant-time running
// approximation good enough for bucket-closing decisions.
type CheapEstimator interface {
	CheapEstimate() float64
}

// CheapEstimate returns s.CheapEstimate() when available and s.Estimate()
// otherwise.
func CheapEstimate(s Sketch) float64 {
	if c, ok := s.(CheapEstimator); ok {
		return c.CheapEstimate()
	}
	return s.Estimate()
}

// BudgetEstimator is implemented by sketches that can bound how much more
// weight they can absorb before their (cheap) estimate could possibly
// reach a threshold. The core structure uses the budget to skip its
// per-insertion bucket-closing checks: while the returned weight has not
// yet been added, the estimate provably stays below thresh, so the
// decisions are bit-identical to checking after every update.
type BudgetEstimator interface {
	// ThresholdBudget returns a weight W >= 0 such that the estimate
	// stays strictly below thresh until at least W more total weight has
	// been added. 0 means "no guarantee — re-check after every update".
	ThresholdBudget(thresh float64) int64
}

// ThresholdBudget returns s's check-skipping budget for thresh, or 0 when
// the sketch offers no bound.
func ThresholdBudget(s Sketch, thresh float64) int64 {
	if b, ok := s.(BudgetEstimator); ok {
		return b.ThresholdBudget(thresh)
	}
	return 0
}

// median returns the median of vs, averaging the two middle elements for
// even lengths. It reorders vs.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	// Insertion sort: row counts are tiny (< 16).
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}
