package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"
)

// Binary serialization for sketches. Hash functions are never serialized:
// they are a deterministic function of the Maker's construction seed, so a
// sketch deserializes into an instance freshly created by an identically
// configured Maker. Each sketch implements encoding.BinaryMarshaler and
// encoding.BinaryUnmarshaler; UnmarshalBinary must be called on a sketch
// from the same Maker configuration that produced the bytes.
//
// The format is versioned, little-endian, varint-based:
// [1 version] [payload...].

// Version 2: bucket/sign placement switched from modulo to Lemire
// multiply-shift reduction, so counters serialized by version 1 would
// decode into incompatible slot mappings.
const marshalVersion = 2

// ErrBadEncoding reports malformed or incompatible serialized bytes.
var ErrBadEncoding = errors.New("sketch: bad or incompatible encoding")

func appendHeader(buf []byte, kind byte) []byte {
	return append(buf, marshalVersion, kind)
}

func readHeader(data []byte, kind byte) ([]byte, error) {
	if len(data) < 2 || data[0] != marshalVersion || data[1] != kind {
		return nil, ErrBadEncoding
	}
	return data[2:], nil
}

func appendI64(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

func readI64(data []byte) (int64, []byte, error) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return 0, nil, ErrBadEncoding
	}
	return v, data[n:], nil
}

func appendU64(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func readU64(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, ErrBadEncoding
	}
	return v, data[n:], nil
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func readF64(data []byte) (float64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, ErrBadEncoding
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(data)), data[8:], nil
}

// Kind bytes for the framed encodings.
const (
	kindCounter     = 1
	kindCountSketch = 2
	kindCountMin    = 3
	kindKMV         = 4
	kindL1          = 5
	kindFk          = 6
)

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *counter) MarshalBinary() ([]byte, error) {
	buf := appendHeader(nil, kindCounter)
	if c.sum {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return appendI64(buf, c.total), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *counter) UnmarshalBinary(data []byte) error {
	rest, err := readHeader(data, kindCounter)
	if err != nil {
		return err
	}
	if len(rest) < 1 || (rest[0] == 1) != c.sum {
		return ErrBadEncoding
	}
	c.total, _, err = readI64(rest[1:])
	return err
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *CountSketch) MarshalBinary() ([]byte, error) {
	buf := appendHeader(nil, kindCountSketch)
	buf = appendU64(buf, uint64(c.maker.depth))
	buf = appendU64(buf, uint64(c.maker.width))
	for _, v := range c.data {
		buf = appendI64(buf, v)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The receiver must
// come from a Maker with the same geometry and seed as the source.
func (c *CountSketch) UnmarshalBinary(data []byte) error {
	rest, err := readHeader(data, kindCountSketch)
	if err != nil {
		return err
	}
	var d, w uint64
	if d, rest, err = readU64(rest); err != nil {
		return err
	}
	if w, rest, err = readU64(rest); err != nil {
		return err
	}
	if int(d) != c.maker.depth || int(w) != c.maker.width {
		return fmt.Errorf("%w: geometry %dx%d vs %dx%d",
			ErrBadEncoding, d, w, c.maker.depth, c.maker.width)
	}
	for i := 0; i < c.maker.depth; i++ {
		var f2 float64
		for j := i * c.maker.width; j < (i+1)*c.maker.width; j++ {
			var v int64
			if v, rest, err = readI64(rest); err != nil {
				return err
			}
			c.data[j] = v
			f2 += float64(v) * float64(v)
		}
		c.rowF2[i] = f2
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *CountMin) MarshalBinary() ([]byte, error) {
	buf := appendHeader(nil, kindCountMin)
	buf = appendU64(buf, uint64(c.maker.depth))
	buf = appendU64(buf, uint64(c.maker.width))
	buf = appendI64(buf, c.total)
	for _, row := range c.rows {
		for _, v := range row {
			buf = appendI64(buf, v)
		}
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *CountMin) UnmarshalBinary(data []byte) error {
	rest, err := readHeader(data, kindCountMin)
	if err != nil {
		return err
	}
	var d, w uint64
	if d, rest, err = readU64(rest); err != nil {
		return err
	}
	if w, rest, err = readU64(rest); err != nil {
		return err
	}
	if int(d) != c.maker.depth || int(w) != c.maker.width {
		return ErrBadEncoding
	}
	if c.total, rest, err = readI64(rest); err != nil {
		return err
	}
	for i := range c.rows {
		for j := range c.rows[i] {
			if c.rows[i][j], rest, err = readI64(rest); err != nil {
				return err
			}
		}
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *KMV) MarshalBinary() ([]byte, error) {
	buf := appendHeader(nil, kindKMV)
	buf = appendU64(buf, uint64(len(s.reps)))
	for i := range s.reps {
		buf = appendU64(buf, uint64(len(s.reps[i].vals)))
		for _, h := range s.reps[i].vals {
			buf = appendU64(buf, h)
		}
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *KMV) UnmarshalBinary(data []byte) error {
	rest, err := readHeader(data, kindKMV)
	if err != nil {
		return err
	}
	var reps uint64
	if reps, rest, err = readU64(rest); err != nil {
		return err
	}
	if int(reps) != len(s.reps) {
		return ErrBadEncoding
	}
	for i := range s.reps {
		var n uint64
		if n, rest, err = readU64(rest); err != nil {
			return err
		}
		// Each value costs at least one byte of payload; bounding the
		// count before the pre-size keeps a forged count from forcing a
		// giant allocation.
		if n > uint64(len(rest)) {
			return ErrBadEncoding
		}
		r := &s.reps[i]
		r.vals = r.vals[:0]
		r.seen = make(map[uint64]struct{}, n)
		for j := uint64(0); j < n; j++ {
			var h uint64
			if h, rest, err = readU64(rest); err != nil {
				return err
			}
			r.vals = append(r.vals, h)
			r.seen[h] = struct{}{}
		}
		// The serialized order is heap order, which round-trips as-is.
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *L1) MarshalBinary() ([]byte, error) {
	buf := appendHeader(nil, kindL1)
	buf = appendU64(buf, uint64(len(s.cnt)))
	for _, v := range s.cnt {
		buf = appendF64(buf, v)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *L1) UnmarshalBinary(data []byte) error {
	rest, err := readHeader(data, kindL1)
	if err != nil {
		return err
	}
	var k uint64
	if k, rest, err = readU64(rest); err != nil {
		return err
	}
	if int(k) != len(s.cnt) {
		return ErrBadEncoding
	}
	for i := range s.cnt {
		if s.cnt[i], rest, err = readF64(rest); err != nil {
			return err
		}
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (f *Fk) MarshalBinary() ([]byte, error) {
	buf := appendHeader(nil, kindFk)
	buf = appendU64(buf, uint64(len(f.levels)))
	for j := range f.levels {
		lv := &f.levels[j]
		if lv.cs == nil {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		cs, err := lv.cs.MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = appendU64(buf, uint64(len(cs)))
		buf = append(buf, cs...)
		// Ascending x order keeps the encoding canonical (same state,
		// same bytes), which engine snapshot round-trips rely on.
		buf = appendU64(buf, uint64(len(lv.cand)))
		xs := make([]uint64, 0, len(lv.cand))
		for x := range lv.cand {
			xs = append(xs, x)
		}
		slices.Sort(xs)
		for _, x := range xs {
			buf = appendU64(buf, x)
			buf = appendI64(buf, lv.cand[x])
		}
		if lv.evicted {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = appendI64(buf, lv.untracked)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (f *Fk) UnmarshalBinary(data []byte) error {
	rest, err := readHeader(data, kindFk)
	if err != nil {
		return err
	}
	var levels uint64
	if levels, rest, err = readU64(rest); err != nil {
		return err
	}
	if int(levels) != len(f.levels) {
		return ErrBadEncoding
	}
	for j := range f.levels {
		if len(rest) < 1 {
			return ErrBadEncoding
		}
		present := rest[0] == 1
		rest = rest[1:]
		lv := &f.levels[j]
		if !present {
			lv.cs, lv.cand, lv.evicted = nil, nil, false
			lv.running, lv.untracked = 0, 0
			continue
		}
		f.levels[j] = fkLevel{}
		lv = f.ensure(j)
		var csLen uint64
		if csLen, rest, err = readU64(rest); err != nil {
			return err
		}
		if uint64(len(rest)) < csLen {
			return ErrBadEncoding
		}
		if err = lv.cs.UnmarshalBinary(rest[:csLen]); err != nil {
			return err
		}
		rest = rest[csLen:]
		var nc uint64
		if nc, rest, err = readU64(rest); err != nil {
			return err
		}
		lv.running = 0
		for i := uint64(0); i < nc; i++ {
			var x uint64
			var c int64
			if x, rest, err = readU64(rest); err != nil {
				return err
			}
			if c, rest, err = readI64(rest); err != nil {
				return err
			}
			lv.cand[x] = c
			lv.running += f.maker.powK(float64(c))
		}
		if len(rest) < 1 {
			return ErrBadEncoding
		}
		lv.evicted = rest[0] == 1
		rest = rest[1:]
		if lv.untracked, rest, err = readI64(rest); err != nil {
			return err
		}
	}
	return nil
}
