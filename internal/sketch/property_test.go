package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/streamagg/correlated/internal/hash"
)

// TestPropertyCountSketchSingleItemExact: a CountSketch holding one item
// reports its weight exactly (no colliding mass exists).
func TestPropertyCountSketchSingleItemExact(t *testing.T) {
	m := NewF2Maker(64, 3, hash.New(301))
	prop := func(x uint64, wRaw uint16) bool {
		w := int64(wRaw%1000) + 1
		s := m.New().(*CountSketch)
		s.Add(x, w)
		return s.EstimateItem(x) == float64(w) &&
			s.Estimate() == float64(w)*float64(w)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyCountSketchMergeCommutative: merge order cannot matter for a
// linear sketch.
func TestPropertyCountSketchMergeCommutative(t *testing.T) {
	m := NewF2Maker(64, 3, hash.New(307))
	prop := func(seed uint64) bool {
		rng := hash.New(seed)
		a1, b1 := m.New(), m.New()
		a2, b2 := m.New(), m.New()
		for i := 0; i < 200; i++ {
			x, w := rng.Uint64n(100), int64(rng.Uint64n(5))+1
			a1.Add(x, w)
			a2.Add(x, w)
			x2, w2 := rng.Uint64n(100), int64(rng.Uint64n(5))+1
			b1.Add(x2, w2)
			b2.Add(x2, w2)
		}
		if err := a1.Merge(b1); err != nil {
			return false
		}
		if err := b2.Merge(a2); err != nil {
			return false
		}
		return a1.Estimate() == b2.Estimate()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCountSketchAddThenDeleteIsIdentity: inserting and deleting
// the same multiset leaves an exactly-empty sketch.
func TestPropertyCountSketchAddThenDeleteIsIdentity(t *testing.T) {
	m := NewF2Maker(32, 3, hash.New(311))
	prop := func(seed uint64) bool {
		rng := hash.New(seed)
		s := m.New().(*CountSketch)
		xs := make([]uint64, 100)
		for i := range xs {
			xs[i] = rng.Uint64n(1000)
			s.Add(xs[i], 1)
		}
		for _, x := range xs {
			s.Add(x, -1)
		}
		for _, c := range s.data {
			if c != 0 {
				return false
			}
		}
		return s.Estimate() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyKMVWithinDomain: the KMV estimate is exact below k and
// always non-negative; duplicates never change it.
func TestPropertyKMVWithinDomain(t *testing.T) {
	m := NewKMVMaker(256, 1, hash.New(313))
	prop := func(seed uint64, dRaw uint16) bool {
		d := uint64(dRaw%200) + 1 // below k: exact
		s := m.New()
		rng := hash.New(seed)
		base := rng.Uint64()
		for rep := 0; rep < 3; rep++ {
			for i := uint64(0); i < d; i++ {
				s.Add(base+i, 1)
			}
		}
		return s.Estimate() == float64(d)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCounterLinearity: exact counters are exactly linear in
// weights and merge-associative.
func TestPropertyCounterLinearity(t *testing.T) {
	prop := func(ws []int16) bool {
		m := NewCountMaker()
		a, b, whole := m.New(), m.New(), m.New()
		var want int64
		for i, wRaw := range ws {
			w := int64(wRaw)
			whole.Add(uint64(i), w)
			if i%2 == 0 {
				a.Add(uint64(i), w)
			} else {
				b.Add(uint64(i), w)
			}
			want += w
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		return a.Estimate() == float64(want) && whole.Estimate() == float64(want)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyL1SingleItem: one item's L1 is |w| up to the estimator's
// median-of-Cauchy noise, and exactly linear under scaling.
func TestPropertyL1SingleItem(t *testing.T) {
	m := NewL1Maker(512, hash.New(317))
	prop := func(x uint64, wRaw uint16) bool {
		w := int64(wRaw%1000) + 1
		s := m.New()
		s.Add(x, w)
		est := s.Estimate()
		// Single item: every counter is w*C_j, so the median of
		// absolute values is |w| * median|C|. The sample median's
		// standard deviation at k=512 is ~0.07, so 0.35 is a ~5σ
		// margin.
		return math.Abs(est-float64(w)) <= 0.35*float64(w)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFkMergeNeverErrs: same-maker Fk merges always succeed and
// keep Size consistent.
func TestPropertyFkMergeNeverErrs(t *testing.T) {
	m := NewFkMaker(3, 16, 64, 64, 3, hash.New(331))
	prop := func(seed uint64) bool {
		rng := hash.New(seed)
		a, b := m.New(), m.New()
		for i := 0; i < 500; i++ {
			a.Add(rng.Uint64n(200), 1)
			b.Add(rng.Uint64n(200), 1)
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		return a.Size() > 0 && a.Estimate() > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
