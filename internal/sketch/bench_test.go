package sketch

import (
	"testing"

	"github.com/streamagg/correlated/internal/hash"
)

// Microbenchmarks for the CountSketch hot path: plain Add (hashes per
// row), the hash-once Slots/AddSlots split the core ingest path uses, and
// the closing-check Estimate. All must be allocation-free.

func benchF2Maker() *F2Maker {
	return NewF2Maker(50, 4, hash.New(1))
}

func BenchmarkCountSketchAdd(b *testing.B) {
	m := benchF2Maker()
	cs := m.New().(*CountSketch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Add(uint64(i), 1)
	}
}

// BenchmarkCountSketchAddSlots measures the fan-out side alone: slots are
// precomputed once, as they are when one tuple updates many sketches.
func BenchmarkCountSketchAddSlots(b *testing.B) {
	m := benchF2Maker()
	cs := m.New().(*CountSketch)
	slots := m.Slots(12345, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.AddSlots(slots, 1)
	}
}

// BenchmarkCountSketchSlots measures the hash-once side alone.
func BenchmarkCountSketchSlots(b *testing.B) {
	m := benchF2Maker()
	scratch := make(Slots, 0, m.SlotWidth())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = m.Slots(uint64(i), scratch[:0])
	}
	_ = scratch
}

func BenchmarkCountSketchEstimate(b *testing.B) {
	m := benchF2Maker()
	cs := m.New().(*CountSketch)
	for i := 0; i < 10_000; i++ {
		cs.Add(uint64(i%100), 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var v float64
	for i := 0; i < b.N; i++ {
		v = cs.Estimate()
	}
	_ = v
}
