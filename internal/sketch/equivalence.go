package sketch

// Maker equivalence.
//
// Sketches merge by exploiting linearity under shared hash functions.
// Within one process that usually means "created by the same Maker", and
// each Merge accepts that case with a cheap pointer comparison. But the
// distributed use case — site summaries built in different processes (or
// simply constructed independently) from the same seed, then merged at a
// coordinator — produces distinct Maker objects whose hash functions are
// nevertheless identical, because every maker draws them deterministically
// from the configuration's seeded RNG. The equivalent methods below
// compare makers by value (geometry plus hash-function coefficients), so
// Merge can accept exactly the pairs that are mathematically mergeable and
// reject everything else with ErrIncompatible.

// equivalent reports whether two F2 makers produce interchangeable
// sketches: same geometry and identical row hash functions.
func (m *F2Maker) equivalent(o *F2Maker) bool {
	if o == m {
		return true
	}
	if o == nil || m.width != o.width || m.depth != o.depth {
		return false
	}
	for i := range m.rowH {
		if !m.rowH[i].Equal(o.rowH[i]) {
			return false
		}
	}
	return true
}

// equivalent reports whether two Fk makers produce interchangeable
// sketches: same moment order, level/candidate geometry, sampling hash,
// and per-level CountSketch maker.
func (m *FkMaker) equivalent(o *FkMaker) bool {
	if o == m {
		return true
	}
	return o != nil && m.k == o.k && m.levels == o.levels &&
		m.trackCap == o.trackCap && m.sampleH.Equal(o.sampleH) &&
		m.csMaker.equivalent(o.csMaker)
}

// equivalent reports whether two Count-Min makers produce interchangeable
// sketches.
func (m *CountMinMaker) equivalent(o *CountMinMaker) bool {
	if o == m {
		return true
	}
	if o == nil || m.width != o.width || m.depth != o.depth {
		return false
	}
	for i := range m.rowH {
		if !m.rowH[i].Equal(o.rowH[i]) {
			return false
		}
	}
	return true
}

// equivalent reports whether two L1 makers produce interchangeable
// sketches.
func (m *L1Maker) equivalent(o *L1Maker) bool {
	if o == m {
		return true
	}
	return o != nil && m.k == o.k && m.h.Equal(o.h)
}

// equivalent reports whether two KMV makers produce interchangeable
// sketches.
func (m *KMVMaker) equivalent(o *KMVMaker) bool {
	if o == m {
		return true
	}
	if o == nil || m.k != o.k || len(m.hashes) != len(o.hashes) {
		return false
	}
	for i := range m.hashes {
		if !m.hashes[i].Equal(o.hashes[i]) {
			return false
		}
	}
	return true
}
