package core

import (
	"sort"
	"testing"

	"github.com/streamagg/correlated/internal/hash"
)

// Focused hot-path microbenchmarks with allocation reporting. The figure
// and table reproductions at the repository root measure end-to-end
// behaviour; these isolate the core ingest and query paths so per-op ns
// and allocs/op regressions show up directly.

const (
	benchYMax = 1<<20 - 1
	benchXDom = 100_000
)

func benchTuples(n int, seed uint64) []Tuple {
	rng := hash.New(seed)
	ts := make([]Tuple, n)
	for i := range ts {
		ts[i] = Tuple{X: rng.Uint64n(benchXDom), Y: rng.Uint64n(benchYMax + 1), W: 1}
	}
	return ts
}

func benchSummary(b *testing.B, agg Aggregate, n uint64) *Summary {
	b.Helper()
	s, err := NewSummary(agg, Config{
		Eps: 0.2, Delta: 0.1, YMax: benchYMax,
		MaxStreamLen: n, MaxX: benchXDom, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkCoreAdd measures the tuple-at-a-time ingest path in steady
// state: the summary is pre-warmed over the whole tuple cycle so the
// measured window sees the hash-once fan-out with pooled sketches — in
// steady state it runs allocation-free.
func BenchmarkCoreAdd(b *testing.B) {
	for name, agg := range map[string]Aggregate{"F2": F2Aggregate(), "COUNT": CountAggregate()} {
		b.Run(name, func(b *testing.B) {
			tuples := benchTuples(200_000, 7)
			s := benchSummary(b, agg, uint64(b.N)+uint64(len(tuples))+1)
			for _, t := range tuples { // warm to steady state
				if err := s.Add(t.X, t.Y); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := tuples[i%len(tuples)]
				if err := s.Add(t.X, t.Y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoreAddBatch measures the grouped batch path over y-sorted
// batches; ns/op is per tuple, not per batch.
func BenchmarkCoreAddBatch(b *testing.B) {
	const batchSize = 4096
	tuples := benchTuples(200_000, 9)
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].Y < tuples[j].Y })
	s := benchSummary(b, F2Aggregate(), uint64(b.N)+uint64(len(tuples))+1)
	if err := s.AddBatch(append([]Tuple(nil), tuples...)); err != nil { // warm
		b.Fatal(err)
	}
	batch := make([]Tuple, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		m := batchSize
		if rem := b.N - done; rem < m {
			m = rem
		}
		for i := 0; i < m; i++ {
			batch[i] = tuples[(done+i)%len(tuples)]
		}
		if err := s.AddBatch(batch[:m]); err != nil {
			b.Fatal(err)
		}
		done += m
	}
}

// BenchmarkCoreQuery measures cutoff queries against a built summary;
// composed sketches are drawn from and recycled back to the maker pool,
// so steady-state queries are allocation-free too.
func BenchmarkCoreQuery(b *testing.B) {
	tuples := benchTuples(200_000, 11)
	s := benchSummary(b, F2Aggregate(), uint64(len(tuples))+1)
	for _, t := range tuples {
		if err := s.Add(t.X, t.Y); err != nil {
			b.Fatal(err)
		}
	}
	cutoffs := [8]uint64{}
	for i := range cutoffs {
		cutoffs[i] = uint64(i+1) * benchYMax / 8
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(cutoffs[i%len(cutoffs)]); err != nil && err != ErrNoLevel {
			b.Fatal(err)
		}
	}
}
