package core

import (
	"errors"
	"math"
	"testing"

	"github.com/streamagg/correlated/internal/compat"
	"github.com/streamagg/correlated/internal/hash"
)

func mergeAggs() map[string]Aggregate {
	return map[string]Aggregate{
		"COUNT": CountAggregate(),
		"SUM":   SumAggregate(),
		"F2":    F2Aggregate(),
		"F3":    FkAggregate(3),
	}
}

// TestMergeEqualsWholeStreamSingletonRegime: while every query is served
// by the singleton level (at most alpha distinct y values, so no
// singleton eviction ever happens), merging a random split of the stream
// is bit-identical to single-summary ingestion: the composed query sketch
// is the same linear function of the same selected substream.
func TestMergeEqualsWholeStreamSingletonRegime(t *testing.T) {
	for name, agg := range mergeAggs() {
		agg := agg
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				cfg := Config{
					Eps: 0.2, Delta: 0.1, YMax: 1<<16 - 1,
					MaxStreamLen: 1 << 20, MaxX: 1 << 20,
					Alpha: 256, Seed: seed,
				}
				whole, err := NewSummary(agg, cfg)
				if err != nil {
					t.Fatal(err)
				}
				rng := hash.New(seed ^ 0xabcd)
				parts := 2 + int(rng.Uint64n(7)) // 2..8
				sums := make([]*Summary, parts)
				for i := range sums {
					if sums[i], err = NewSummary(agg, cfg); err != nil {
						t.Fatal(err)
					}
				}
				const distinctY = 200 // < alpha: singleton level never evicts
				for i := 0; i < 6000; i++ {
					x := rng.Uint64n(5000)
					y := rng.Uint64n(distinctY)
					w := int64(1 + rng.Uint64n(3))
					if err := whole.AddWeighted(x, y, w); err != nil {
						t.Fatal(err)
					}
					if err := sums[rng.Uint64n(uint64(parts))].AddWeighted(x, y, w); err != nil {
						t.Fatal(err)
					}
				}
				merged := sums[0]
				for _, p := range sums[1:] {
					if err := merged.Merge(p); err != nil {
						t.Fatalf("merge: %v", err)
					}
				}
				if merged.Count() != whole.Count() {
					t.Fatalf("count: merged %d whole %d", merged.Count(), whole.Count())
				}
				for _, c := range []uint64{0, 10, 50, distinctY / 2, distinctY, 1 << 15} {
					want, wlv, err1 := whole.QueryWithLevel(c)
					got, glv, err2 := merged.QueryWithLevel(c)
					if err1 != nil || err2 != nil {
						t.Fatalf("query c=%d: %v / %v", c, err1, err2)
					}
					if wlv != 0 || glv != 0 {
						t.Fatalf("c=%d: expected singleton level, got levels %d/%d", c, wlv, glv)
					}
					if name == "F3" {
						// Fk estimates sum floats in map order; allow
						// last-bit drift.
						if relDiff(got, want) > 1e-9 {
							t.Fatalf("c=%d: merged %v whole %v", c, got, want)
						}
					} else if got != want {
						t.Fatalf("c=%d: merged %v whole %v (bit-identical expected)", c, got, want)
					}
				}
			}
		})
	}
}

// TestMergeGeneralRegimeAccuracy: with streams large enough to close
// buckets, materialize every level, and evict past the space bound on
// both sides, a k-way merged summary still answers within the structure's
// error guarantee (with the k-fold straddling-mass slack documented on
// Merge) against a brute-force reference.
func TestMergeGeneralRegimeAccuracy(t *testing.T) {
	type tupleW struct {
		x, y uint64
		w    int64
	}
	for _, name := range []string{"COUNT", "F2"} {
		agg := mergeAggs()[name]
		t.Run(name, func(t *testing.T) {
			cfg := Config{
				Eps: 0.2, Delta: 0.1, YMax: 1<<20 - 1,
				MaxStreamLen: 1 << 22, MaxX: 1 << 16, Seed: 7,
			}
			rng := hash.New(99)
			const parts = 4
			sums := make([]*Summary, parts)
			var err error
			for i := range sums {
				if sums[i], err = NewSummary(agg, cfg); err != nil {
					t.Fatal(err)
				}
			}
			var stream []tupleW
			for i := 0; i < 120_000; i++ {
				tw := tupleW{x: rng.Uint64n(1 << 14), y: rng.Uint64n(1 << 20), w: 1}
				stream = append(stream, tw)
				if err := sums[i%parts].Add(tw.x, tw.y); err != nil {
					t.Fatal(err)
				}
			}
			merged := sums[0]
			for _, p := range sums[1:] {
				if err := merged.Merge(p); err != nil {
					t.Fatal(err)
				}
			}
			checkInvariants(t, merged)
			for _, c := range []uint64{1 << 16, 1 << 18, 1 << 19, 1<<20 - 1} {
				got, err := merged.Query(c)
				if err != nil {
					t.Fatalf("c=%d: %v", c, err)
				}
				var want float64
				switch name {
				case "COUNT":
					for _, tw := range stream {
						if tw.y <= c {
							want += float64(tw.w)
						}
					}
				case "F2":
					freq := map[uint64]float64{}
					for _, tw := range stream {
						if tw.y <= c {
							freq[tw.x] += float64(tw.w)
						}
					}
					for _, f := range freq {
						want += f * f
					}
				}
				// eps = 0.2 target, times the documented k-site slack and
				// sketch noise headroom.
				if rel := relDiff(got, want); rel > 0.35 {
					t.Fatalf("c=%d: merged estimate %v vs exact %v (rel %.3f)", c, got, want, rel)
				}
			}
		})
	}
}

// TestMergeMarshaledMatchesMerge: merging from wire bytes must agree with
// merging the live summary.
func TestMergeMarshaledMatchesMerge(t *testing.T) {
	agg := F2Aggregate()
	cfg := Config{
		Eps: 0.2, Delta: 0.1, YMax: 1<<18 - 1,
		MaxStreamLen: 1 << 20, MaxX: 1 << 16, Seed: 3,
	}
	mk := func() *Summary {
		s, err := NewSummary(agg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a1, a2, b := mk(), mk(), mk()
	rng := hash.New(555)
	for i := 0; i < 40_000; i++ {
		x, y := rng.Uint64n(1<<14), rng.Uint64n(1<<18)
		if i%2 == 0 {
			if err := a1.Add(x, y); err != nil {
				t.Fatal(err)
			}
			if err := a2.Add(x, y); err != nil {
				t.Fatal(err)
			}
		} else if err := b.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	if err := a1.Merge(b); err != nil {
		t.Fatal(err)
	}
	wire, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := a2.MergeMarshaled(wire); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, a1)
	checkInvariants(t, a2)
	if a1.Count() != a2.Count() {
		t.Fatalf("count: %d vs %d", a1.Count(), a2.Count())
	}
	for c := uint64(0); c < 1<<18; c += 1 << 13 {
		v1, l1, e1 := a1.QueryWithLevel(c)
		v2, l2, e2 := a2.QueryWithLevel(c)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("c=%d: error mismatch %v vs %v", c, e1, e2)
		}
		if e1 != nil {
			continue
		}
		if l1 != l2 || v1 != v2 {
			t.Fatalf("c=%d: live merge (lvl %d, %v) vs wire merge (lvl %d, %v)", c, l1, v1, l2, v2)
		}
	}
	// The other summary must remain usable after being merged from.
	if _, err := b.Query(1 << 17); err != nil {
		t.Fatalf("source summary poisoned by merge: %v", err)
	}
}

// TestMergeIncompatible: every config field mismatch is reported as a
// typed *compat.Error naming the field and matching ErrIncompatible.
func TestMergeIncompatible(t *testing.T) {
	base := Config{
		Eps: 0.2, Delta: 0.1, YMax: 1<<12 - 1,
		MaxStreamLen: 1 << 16, MaxX: 1 << 12, Seed: 1,
	}
	cases := []struct {
		field  string
		mutate func(*Config)
		agg    Aggregate
	}{
		{"eps", func(c *Config) { c.Eps = 0.3 }, F2Aggregate()},
		{"delta", func(c *Config) { c.Delta = 0.2 }, F2Aggregate()},
		{"ymax", func(c *Config) { c.YMax = 1<<14 - 1 }, F2Aggregate()},
		{"seed", func(c *Config) { c.Seed = 2 }, F2Aggregate()},
		{"alpha", func(c *Config) { c.Alpha = 1000 }, F2Aggregate()},
		{"aggregate", nil, CountAggregate()},
	}
	for _, tc := range cases {
		t.Run(tc.field, func(t *testing.T) {
			a, err := NewSummary(F2Aggregate(), base)
			if err != nil {
				t.Fatal(err)
			}
			cfg := base
			if tc.mutate != nil {
				tc.mutate(&cfg)
			}
			b, err := NewSummary(tc.agg, cfg)
			if err != nil {
				t.Fatal(err)
			}
			err = a.Merge(b)
			if err == nil {
				t.Fatal("merge of incompatible summaries succeeded")
			}
			if !errors.Is(err, compat.ErrIncompatible) {
				t.Fatalf("error %v does not match compat.ErrIncompatible", err)
			}
			var ce *compat.Error
			if !errors.As(err, &ce) {
				t.Fatalf("error %v is not a *compat.Error", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("field = %q, want %q", ce.Field, tc.field)
			}
		})
	}
	// Self-merge and nil must be rejected too (not incompatibility).
	a, _ := NewSummary(F2Aggregate(), base)
	if err := a.Merge(a); err == nil {
		t.Fatal("self-merge succeeded")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("nil merge succeeded")
	}
}

// TestMergeMarshaledWireMismatch: the wire image carries the source
// configuration, so merging (or restoring) bytes from a differently
// configured summary fails with a typed field error even though the
// derived geometry may coincide.
func TestMergeMarshaledWireMismatch(t *testing.T) {
	base := Config{
		Eps: 0.2, Delta: 0.1, YMax: 1<<12 - 1,
		MaxStreamLen: 1 << 16, MaxX: 1 << 12, Seed: 1,
	}
	otherSeed := base
	otherSeed.Seed = 2 // same alpha and lmax — only the hashes differ
	src, err := NewSummary(F2Aggregate(), otherSeed)
	if err != nil {
		t.Fatal(err)
	}
	rng := hash.New(5)
	for i := 0; i < 2000; i++ {
		if err := src.Add(rng.Uint64n(1<<10), rng.Uint64n(1<<12)); err != nil {
			t.Fatal(err)
		}
	}
	wire, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewSummary(F2Aggregate(), base)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []struct {
		name string
		do   func([]byte) error
	}{
		{"MergeMarshaled", dst.MergeMarshaled},
		{"UnmarshalBinary", dst.UnmarshalBinary},
	} {
		err := op.do(wire)
		if err == nil {
			t.Fatalf("%s accepted wire image with mismatched seed", op.name)
		}
		var ce *compat.Error
		if !errors.As(err, &ce) || ce.Field != "seed" {
			t.Fatalf("%s error = %v, want *compat.Error{Field: seed}", op.name, err)
		}
	}
	if dst.Count() != 0 {
		t.Fatalf("receiver mutated by rejected wire image: n=%d", dst.Count())
	}
}

// TestResetReingest: Reset must return the summary to a state
// indistinguishable from freshly constructed — re-ingesting the same
// stream yields bit-identical answers.
func TestResetReingest(t *testing.T) {
	cfg := Config{
		Eps: 0.2, Delta: 0.1, YMax: 1<<16 - 1,
		MaxStreamLen: 1 << 20, MaxX: 1 << 14, Seed: 11,
	}
	fresh, err := NewSummary(F2Aggregate(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := NewSummary(F2Aggregate(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the reused summary with an unrelated stream, then reset.
	rng := hash.New(1)
	for i := 0; i < 30_000; i++ {
		if err := reused.Add(rng.Uint64(), rng.Uint64n(1<<16)); err != nil {
			t.Fatal(err)
		}
	}
	reused.Reset()
	if reused.Count() != 0 || reused.Buckets() != fresh.Buckets() {
		t.Fatalf("after Reset: count=%d buckets=%d (fresh has %d)",
			reused.Count(), reused.Buckets(), fresh.Buckets())
	}
	rng2 := hash.New(2)
	for i := 0; i < 30_000; i++ {
		x, y := rng2.Uint64n(1<<12), rng2.Uint64n(1<<16)
		if err := fresh.Add(x, y); err != nil {
			t.Fatal(err)
		}
		if err := reused.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	for c := uint64(0); c < 1<<16; c += 1 << 12 {
		want, wl, e1 := fresh.QueryWithLevel(c)
		got, gl, e2 := reused.QueryWithLevel(c)
		if (e1 == nil) != (e2 == nil) || wl != gl || (e1 == nil && got != want) {
			t.Fatalf("c=%d: fresh (lvl %d, %v, %v) vs reset (lvl %d, %v, %v)",
				c, wl, want, e1, gl, got, e2)
		}
	}
}

// checkInvariants validates the structural invariants of a summary after
// a merge: capacities respected, stored counts exact, internal nodes
// closed, watermark mirror in sync.
func checkInvariants(t *testing.T, s *Summary) {
	t.Helper()
	if len(s.s0.buckets) > s.alpha {
		t.Fatalf("singleton level over capacity: %d > %d", len(s.s0.buckets), s.alpha)
	}
	for y := range s.s0.buckets {
		if y >= s.s0.y {
			t.Fatalf("singleton y=%d at or past watermark %d", y, s.s0.y)
		}
	}
	for i := 1; i <= s.lmax; i++ {
		lv := s.levels[i]
		if lv.count > s.alpha {
			t.Fatalf("level %d over capacity: %d > %d", i, lv.count, s.alpha)
		}
		if got := countNodes(lv.root); got != lv.count {
			t.Fatalf("level %d count %d but tree has %d nodes", i, lv.count, got)
		}
		if s.wm[i] != lv.y {
			t.Fatalf("level %d watermark mirror %d != %d", i, s.wm[i], lv.y)
		}
		verifyClosedInternal(t, i, lv.root)
	}
}

func countNodes(b *bucket) int {
	if b == nil {
		return 0
	}
	return 1 + countNodes(b.left) + countNodes(b.right)
}

func verifyClosedInternal(t *testing.T, lvl int, b *bucket) {
	t.Helper()
	if b == nil {
		return
	}
	if (b.left != nil || b.right != nil) && !b.closed {
		t.Fatalf("level %d: internal bucket [%d,%d] not closed", lvl, b.iv.L, b.iv.R)
	}
	verifyClosedInternal(t, lvl, b.left)
	verifyClosedInternal(t, lvl, b.right)
}

func relDiff(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}
