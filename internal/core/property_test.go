package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/streamagg/correlated/internal/hash"
)

// TestPropertyCountMatchesExact: for arbitrary seeded random streams, the
// COUNT summary (exact counter sketches, so all error is structural) must
// answer every cutoff within eps.
func TestPropertyCountMatchesExact(t *testing.T) {
	const ymax = 1<<12 - 1
	const eps = 0.1
	prop := func(seed uint64) bool {
		s, err := NewSummary(CountAggregate(), Config{
			Eps: eps, Delta: 0.1, YMax: ymax, MaxStreamLen: 20000, Seed: seed,
		})
		if err != nil {
			return false
		}
		rng := hash.New(seed ^ 0xabcdef)
		counts := make([]int64, ymax+1)
		n := 5000 + int(rng.Uint64n(15000))
		for i := 0; i < n; i++ {
			y := rng.Uint64n(ymax + 1)
			if err := s.Add(rng.Uint64n(100), y); err != nil {
				return false
			}
			counts[y]++
		}
		var cum int64
		cums := make([]int64, ymax+1)
		for y := uint64(0); y <= ymax; y++ {
			cum += counts[y]
			cums[y] = cum
		}
		for trial := 0; trial < 8; trial++ {
			c := rng.Uint64n(ymax + 1)
			got, err := s.Query(c)
			if err != nil {
				return false
			}
			want := float64(cums[c])
			if want == 0 {
				if got != 0 {
					return false
				}
				continue
			}
			if math.Abs(got-want)/want > eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBucketInvariants: after arbitrary streams, every level
// respects its capacity, tree structure, and watermark bookkeeping.
func TestPropertyBucketInvariants(t *testing.T) {
	const ymax = 1<<10 - 1
	prop := func(seed uint64, alphaRaw uint8) bool {
		alpha := 8 + int(alphaRaw%64)
		s, err := NewSummary(CountAggregate(), Config{
			Eps: 0.2, Delta: 0.1, YMax: ymax, MaxStreamLen: 20000,
			Alpha: alpha, Seed: seed,
		})
		if err != nil {
			return false
		}
		rng := hash.New(seed)
		for i := 0; i < 20000; i++ {
			if err := s.Add(rng.Uint64n(50), rng.Uint64n(ymax+1)); err != nil {
				return false
			}
		}
		for i := 1; i <= s.lmax; i++ {
			lv := s.levels[i]
			if lv.count > alpha {
				return false
			}
			if !checkTree(lv.root, ymax) {
				return false
			}
		}
		if len(s.s0.buckets) > alpha {
			return false
		}
		// Every singleton below the S0 watermark.
		for y := range s.s0.buckets {
			if y >= s.s0.y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// checkTree verifies dyadic structure: children partition the parent, a
// right child never exists without its interval being the parent's upper
// half, and no discarded bucket is reachable.
func checkTree(b *bucket, ymax uint64) bool {
	if b == nil {
		return true
	}
	if b.discarded {
		return false
	}
	if b.iv.R > ymax || b.iv.L > b.iv.R {
		return false
	}
	if b.left == nil && b.right != nil {
		return false // children are created in pairs, discarded right-first
	}
	if b.left != nil {
		lc, rc := b.iv.Children()
		if b.left.iv != lc {
			return false
		}
		if b.right != nil && b.right.iv != rc {
			return false
		}
	}
	return checkTree(b.left, ymax) && checkTree(b.right, ymax)
}

// TestPropertySumMatchesExact: SUM through the reduction on random
// streams.
func TestPropertySumMatchesExact(t *testing.T) {
	const ymax = 1<<10 - 1
	const eps = 0.1
	prop := func(seed uint64) bool {
		s, err := NewSummary(SumAggregate(), Config{
			Eps: eps, Delta: 0.1, YMax: ymax, MaxStreamLen: 10000,
			MaxX: 1000, Seed: seed,
		})
		if err != nil {
			return false
		}
		rng := hash.New(seed ^ 0x1234)
		sums := make([]float64, ymax+1)
		for i := 0; i < 10000; i++ {
			x := rng.Uint64n(1000) + 1
			y := rng.Uint64n(ymax + 1)
			if err := s.Add(x, y); err != nil {
				return false
			}
			sums[y] += float64(x)
		}
		var cum float64
		for y := uint64(0); y <= ymax; y++ {
			cum += sums[y]
			sums[y] = cum
		}
		for trial := 0; trial < 5; trial++ {
			c := rng.Uint64n(ymax + 1)
			got, err := s.Query(c)
			if err != nil {
				return false
			}
			if sums[c] == 0 {
				if got != 0 {
					return false
				}
				continue
			}
			if math.Abs(got-sums[c])/sums[c] > eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
