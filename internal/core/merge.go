package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/streamagg/correlated/internal/compat"
	"github.com/streamagg/correlated/internal/dyadic"
	"github.com/streamagg/correlated/internal/sketch"
)

// Mergeability (the distributed-streams use case).
//
// The paper's setting is explicitly distributed: each site runs Algorithm 2
// over its local substream and a coordinator combines the site summaries to
// answer AGG{x : y <= c} over the union. Merging works because every piece
// of per-level state is a linear sketch over a dyadic y-interval: two
// summaries built from the same configuration (and therefore the same
// seeded hash functions) merge by
//
//   - unioning the singleton level's per-y sketches,
//   - unioning the per-level bucket trees interval by interval, adding
//     sketches where both sides stored the same dyadic interval,
//   - taking the minimum of the two watermarks Y_l per level, and
//   - re-running the closing check and the capacity eviction on the merged
//     level, with the same threshold rule sequential ingestion uses.
//
// The merged summary is a valid summary of the union stream: every query
// keeps the structure's guarantees, with one caveat. Mass a site absorbed
// into a coarse bucket stays in that coarse bucket, so a query cutoff that
// splits the bucket cannot see it — this is exactly the "straddling
// bucket" (B2) mass the paper's Lemma 4 already bounds per summary, but
// after merging k site summaries the bound is k times one site's. For
// small k this is absorbed by the analysis's slack; to keep a strict
// (eps, delta) guarantee for large k, build the site summaries with
// Eps/k. While every query is still served by the singleton level (no
// singleton eviction has happened, e.g. streams with at most alpha
// distinct y values), merged queries are bit-identical to single-summary
// ingestion of the union, because the composed query sketch is the same
// linear function of the same selected substream.

// errSelfMerge is returned when a summary is merged into itself.
var errSelfMerge = errors.New("core: cannot merge a summary into itself")

// incoming is the state of the other summary being folded into the
// receiver — either a live *Summary (owned = false: its sketches belong to
// a different, equivalent maker and must be copied) or a decoded wire
// image (owned = true: the nodes were built with the receiver's maker and
// may be adopted or recycled in place).
type incoming struct {
	n          uint64
	virginFrom int
	shared     sketch.Sketch
	s0         *levelZero
	levels     []*level
	owned      bool
}

// Merge folds other — a summary built from the same Config (including
// Seed) over a different substream — into the receiver, producing the
// summary of the concatenated stream. The receiver is modified; other is
// left unchanged and remains usable. Configuration mismatches are reported
// as *compat.Error values wrapping compat.ErrIncompatible, naming the
// first differing field (aggregate, eps, delta, ymax, seed, alpha,
// levels).
func (s *Summary) Merge(other *Summary) error {
	if other == nil {
		return errors.New("core: cannot merge a nil summary")
	}
	if other == s {
		return errSelfMerge
	}
	switch {
	case s.agg.Name != other.agg.Name:
		return compat.Mismatch("aggregate", s.agg.Name, other.agg.Name)
	case s.cfg.Eps != other.cfg.Eps:
		return compat.Mismatch("eps", s.cfg.Eps, other.cfg.Eps)
	case s.cfg.Delta != other.cfg.Delta:
		return compat.Mismatch("delta", s.cfg.Delta, other.cfg.Delta)
	case s.cfg.YMax != other.cfg.YMax:
		return compat.Mismatch("ymax", s.cfg.YMax, other.cfg.YMax)
	case s.cfg.Seed != other.cfg.Seed:
		return compat.Mismatch("seed", s.cfg.Seed, other.cfg.Seed)
	case s.cfg.StrictTheory != other.cfg.StrictTheory:
		// Alpha may coincide (e.g. both set explicitly) while the
		// per-bucket sketch failure probability — and hence the maker
		// geometry — differs.
		return compat.Mismatch("stricttheory", s.cfg.StrictTheory, other.cfg.StrictTheory)
	case s.alpha != other.alpha:
		return compat.Mismatch("alpha", s.alpha, other.alpha)
	case s.lmax != other.lmax:
		return compat.Mismatch("levels", s.lmax, other.lmax)
	}
	// Probe that the sketch layers agree the makers are equivalent; with
	// the field checks above this cannot fail, but a cheap probe beats a
	// silent half-merged summary if it ever does.
	probe, oprobe := s.maker.New(), other.maker.New()
	err := probe.Merge(oprobe)
	sketch.Recycle(s.maker, probe)
	sketch.Recycle(other.maker, oprobe)
	if err != nil {
		// Should be unreachable given the field checks; keep the error
		// matching the documented errors.Is(_, compat.ErrIncompatible)
		// contract either way.
		return fmt.Errorf("core: sketch makers diverge despite matching config (%v): %w",
			err, compat.ErrIncompatible)
	}
	s.mergeIncoming(incoming{
		n:          other.n,
		virginFrom: other.virginFrom,
		shared:     other.shared,
		s0:         &other.s0,
		levels:     other.levels,
	})
	return nil
}

// MergeImage is a serialized site summary decoded against a receiving
// summary's configuration but not yet folded in. Splitting parse from
// apply lets a caller decode several images (or the two directions of a
// dual summary) up front and only then mutate, keeping multi-part merges
// all-or-nothing.
type MergeImage struct {
	in      incoming
	owner   *Summary
	applied bool
}

// MergeMarshaled folds a summary serialized with MarshalBinary into the
// receiver, without materializing a second Summary: decoded buckets are
// built directly from the receiver's (pooled) maker and adopted into the
// merged structure. The bytes must come from a summary created with the
// same aggregate and Config (including Seed) — the encoding carries only
// alpha and the level count, so the remaining fields are the caller's
// responsibility, exactly as with UnmarshalBinary. The receiver is
// untouched when an error is returned.
func (s *Summary) MergeMarshaled(data []byte) error {
	img, err := s.ParseMergeImage(data)
	if err != nil {
		return err
	}
	return s.ApplyMergeImage(img)
}

// ParseMergeImage decodes data (a MarshalBinary image of a compatible
// summary) into a MergeImage without touching the receiver. Apply it with
// ApplyMergeImage.
func (s *Summary) ParseMergeImage(data []byte) (*MergeImage, error) {
	if len(data) < 1 || data[0] != coreMarshalVersion {
		return nil, ErrBadEncoding
	}
	data = data[1:]
	// Config-compatibility block: the image must come from a summary
	// whose configuration matches the receiver's.
	var cfgVals [5]uint64 // eps bits, delta bits, ymax, seed, stricttheory
	for i := range cfgVals {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, ErrBadEncoding
		}
		cfgVals[i] = v
		data = data[n:]
	}
	var strict uint64
	if s.cfg.StrictTheory {
		strict = 1
	}
	switch {
	case cfgVals[0] != math.Float64bits(s.cfg.Eps):
		return nil, compat.Mismatch("eps", s.cfg.Eps, math.Float64frombits(cfgVals[0]))
	case cfgVals[1] != math.Float64bits(s.cfg.Delta):
		return nil, compat.Mismatch("delta", s.cfg.Delta, math.Float64frombits(cfgVals[1]))
	case cfgVals[2] != s.cfg.YMax:
		return nil, compat.Mismatch("ymax", s.cfg.YMax, cfgVals[2])
	case cfgVals[3] != s.cfg.Seed:
		return nil, compat.Mismatch("seed", s.cfg.Seed, cfgVals[3])
	case cfgVals[4] != strict:
		return nil, compat.Mismatch("stricttheory", strict == 1, cfgVals[4] == 1)
	}
	var vals [4]uint64 // n, alpha, lmax, virginFrom
	for i := range vals {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, ErrBadEncoding
		}
		vals[i] = v
		data = data[n:]
	}
	if int(vals[1]) != s.alpha {
		return nil, compat.Mismatch("alpha", s.alpha, vals[1])
	}
	if int(vals[2]) != s.lmax {
		return nil, compat.Mismatch("levels", s.lmax, vals[2])
	}
	if vals[3] < 1 || vals[3] > uint64(s.lmax)+1 {
		return nil, ErrBadEncoding
	}
	in := incoming{n: vals[0], virginFrom: int(vals[3]), owned: true}
	var err error
	if in.shared, data, err = s.readSketch(data); err != nil {
		return nil, err
	}
	// Singleton level.
	y0, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, ErrBadEncoding
	}
	data = data[n:]
	cnt, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, ErrBadEncoding
	}
	data = data[n:]
	// Each singleton entry costs at least two bytes of payload, so a
	// count beyond the remaining bytes is hostile; checking before the
	// map pre-size keeps a forged count from forcing a giant allocation.
	if cnt > uint64(len(data)) {
		return nil, ErrBadEncoding
	}
	oz := levelZero{buckets: make(map[uint64]*bucket, cnt), y: y0}
	for i := uint64(0); i < cnt; i++ {
		y, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, ErrBadEncoding
		}
		data = data[n:]
		var sk sketch.Sketch
		if sk, data, err = s.readSketch(data); err != nil {
			return nil, err
		}
		oz.buckets[y] = &bucket{iv: dyadic.Interval{L: y, R: y}, sk: sk, sa: s.slotAdderOf(sk)}
	}
	in.s0 = &oz
	// Bucket-tree levels.
	in.levels = make([]*level, s.lmax+1)
	root := dyadic.Root(s.cfg.YMax)
	for i := 1; i <= s.lmax; i++ {
		yv, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, ErrBadEncoding
		}
		data = data[n:]
		cv, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, ErrBadEncoding
		}
		data = data[n:]
		lv := &level{idx: i, y: yv, count: int(cv), thresh: s.levels[i].thresh}
		if lv.root, data, err = s.readNode(data, root); err != nil {
			return nil, err
		}
		if lv.root == nil {
			return nil, ErrBadEncoding
		}
		in.levels[i] = lv
	}
	if len(data) != 0 {
		return nil, ErrBadEncoding
	}
	return &MergeImage{in: in, owner: s}, nil
}

// ApplyMergeImage folds a parsed image into the summary it was parsed
// against. An image may be applied at most once (its buckets are adopted
// into the receiver), and only by its owner.
func (s *Summary) ApplyMergeImage(img *MergeImage) error {
	if img == nil || img.owner != s {
		return errors.New("core: merge image was parsed against a different summary")
	}
	if img.applied {
		return errors.New("core: merge image already applied")
	}
	img.applied = true
	s.mergeIncoming(img.in)
	return nil
}

// mergeIncoming performs the actual merge; in has been validated.
func (s *Summary) mergeIncoming(in incoming) {
	newVF := s.virginFrom
	if in.virginFrom > newVF {
		newVF = in.virginFrom
	}
	s.mergeLevel0(in)
	// Levels materialized on at least one side merge tree against tree
	// (with a virgin side standing in as "open root holding the shared
	// whole-stream sketch"). Levels virgin on both sides stay represented
	// by the shared sketch, merged below.
	for i := 1; i < newVF; i++ {
		s.mergeTreeLevel(i, in)
	}
	// Same-or-equivalent maker merges cannot fail.
	_ = s.shared.Merge(in.shared)
	if in.owned {
		sketch.Recycle(s.maker, in.shared)
	}
	s.virginFrom = newVF
	s.n += in.n
	// The merged whole-stream sketch may have crossed further virgin
	// levels' closing thresholds; zeroing the budget forces the check.
	s.sharedBudget = 0
	if s.virginFrom <= s.lmax {
		s.checkVirgin(0)
	}
}

// mergeLevel0 unions the singleton levels: the merged watermark is the
// minimum of the two sides', singletons at or past it are dropped (they
// could never serve a query, and sequential ingestion of the union would
// not have stored them), per-y sketches are added, and the level is
// evicted back to capacity.
func (s *Summary) mergeLevel0(in incoming) {
	z, oz := &s.s0, in.s0
	if oz.y < z.y {
		z.y = oz.y
		dropped := false
		for y, b := range z.buckets {
			if y >= z.y {
				sketch.Recycle(s.maker, b.sk)
				b.sk, b.sa = nil, nil
				delete(z.buckets, y)
				dropped = true
			}
		}
		if dropped {
			z.ys = z.ys[:0]
			for y := range z.buckets {
				heapPushU64(&z.ys, y)
			}
		}
	}
	for y, ob := range oz.buckets {
		if y >= z.y {
			if in.owned {
				sketch.Recycle(s.maker, ob.sk)
			}
			continue
		}
		b := z.buckets[y]
		switch {
		case b != nil:
			_ = b.sk.Merge(ob.sk)
			if in.owned {
				sketch.Recycle(s.maker, ob.sk)
			}
		case in.owned:
			z.buckets[y] = ob
			heapPushU64(&z.ys, y)
		default:
			b = &bucket{iv: dyadic.Interval{L: y, R: y}}
			s.attachSketch(b)
			_ = b.sk.Merge(ob.sk)
			z.buckets[y] = b
			heapPushU64(&z.ys, y)
		}
	}
	s.evict0()
}

// mergeTreeLevel merges level i of the incoming summary into the
// receiver's level i. At least one side is materialized; a virgin side
// contributes its shared whole-stream sketch through the root bucket.
func (s *Summary) mergeTreeLevel(i int, in incoming) {
	lv := s.levels[i]
	if i >= s.virginFrom {
		// Materialize the receiver's virgin root from its own shared
		// sketch — open, not closed: the closing decision is re-made
		// below from the merged contents, with the same threshold rule
		// Algorithm 2 applies.
		cp := s.maker.New()
		_ = cp.Merge(s.shared)
		lv.root.sk = cp
		lv.root.sa = s.slotAdderOf(cp)
	}
	if i >= in.virginFrom {
		// The other side is virgin here: its entire level-i content is
		// its whole-stream sketch, which belongs in the root bucket.
		_ = lv.root.sk.Merge(in.shared)
	} else {
		olv := in.levels[i]
		s.mergeNode(lv.root, olv.root, in.owned)
		if olv.y < lv.y {
			lv.y = olv.y
		}
	}
	lv.count = s.recloseAndCount(lv, lv.root)
	s.wm[i] = lv.y
	s.cache[i] = nil
	for lv.count > s.alpha {
		s.discardMax(lv)
	}
}

// mergeNode folds src (same dyadic interval, from the incoming summary)
// into dst. Children missing on one side are adopted (owned) or deep-
// copied through the receiver's maker. Internal nodes are closed by
// construction on whichever side split them, so the merged tree keeps the
// "internal implies closed" invariant.
func (s *Summary) mergeNode(dst, src *bucket, owned bool) {
	if src.sk != nil {
		if dst.sk == nil {
			s.attachSketch(dst)
		}
		_ = dst.sk.Merge(src.sk)
		if owned {
			sketch.Recycle(s.maker, src.sk)
			src.sk, src.sa = nil, nil
		}
	}
	if src.closed {
		dst.closed = true
	}
	if src.left != nil {
		if dst.left != nil {
			s.mergeNode(dst.left, src.left, owned)
		} else {
			dst.left = s.importNode(src.left, owned)
		}
	}
	if src.right != nil {
		if dst.right != nil {
			s.mergeNode(dst.right, src.right, owned)
		} else {
			dst.right = s.importNode(src.right, owned)
		}
	}
}

// importNode brings a subtree the receiver does not have into the merged
// tree: adopted as-is when the nodes already belong to the receiver's
// maker, deep-copied otherwise.
func (s *Summary) importNode(src *bucket, owned bool) *bucket {
	if src == nil {
		return nil
	}
	if owned {
		return src
	}
	b := &bucket{iv: src.iv, closed: src.closed}
	if src.sk != nil {
		b.sk = s.maker.New()
		_ = b.sk.Merge(src.sk)
		b.sa = s.slotAdderOf(b.sk)
	}
	b.left = s.importNode(src.left, false)
	b.right = s.importNode(src.right, false)
	return b
}

// recloseAndCount re-runs the closing decision on every merged bucket —
// an open bucket whose merged estimate now clears the level threshold
// closes, exactly as Algorithm 2 would have closed it — resets the
// optimization budgets, and returns the number of stored buckets.
func (s *Summary) recloseAndCount(lv *level, b *bucket) int {
	if b == nil {
		return 0
	}
	if !b.closed && !b.iv.Single() && b.sk != nil &&
		sketch.CheapEstimate(b.sk) >= lv.thresh {
		b.closed = true
	}
	b.closeBudget = 0
	return 1 + s.recloseAndCount(lv, b.left) + s.recloseAndCount(lv, b.right)
}

// install replaces the summary's state with a decoded wire image (the
// restore side of UnmarshalBinary), recycling the previous state's
// sketches into the maker's pool. The incoming state must be owned
// (its buckets were built by this summary's maker).
func (s *Summary) install(in incoming) {
	for _, b := range s.s0.buckets {
		sketch.Recycle(s.maker, b.sk)
		b.sk, b.sa = nil, nil
	}
	for i := 1; i <= s.lmax; i++ {
		s.recycleTree(s.levels[i].root)
	}
	sketch.Recycle(s.maker, s.shared)
	s.n = in.n
	s.virginFrom = in.virginFrom
	s.sharedBudget = 0 // force a fresh materialization check
	s.shared = in.shared
	s.sharedSA = s.slotAdderOf(in.shared)
	s.s0 = *in.s0
	s.s0.ys = s.s0.ys[:0]
	for y := range s.s0.buckets {
		heapPushU64(&s.s0.ys, y)
	}
	for i := 1; i <= s.lmax; i++ {
		s.levels[i] = in.levels[i]
		s.wm[i] = in.levels[i].y
		s.cache[i] = nil
	}
	s.slotsOK = false
}

// Reset returns the summary to its freshly constructed state, recycling
// every sketch into the maker's pool. It is the cheap way to reuse a
// summary as a merge accumulator (merge-then-query over site summaries)
// or across stream epochs without rebuilding hash functions.
func (s *Summary) Reset() {
	for _, b := range s.s0.buckets {
		sketch.Recycle(s.maker, b.sk)
		b.sk, b.sa = nil, nil
	}
	s.s0 = levelZero{buckets: make(map[uint64]*bucket), y: noWatermark}
	for i := 1; i <= s.lmax; i++ {
		s.recycleTree(s.levels[i].root)
		s.levels[i] = &level{
			idx:    i,
			root:   &bucket{iv: dyadic.Root(s.cfg.YMax)},
			y:      noWatermark,
			count:  1,
			thresh: s.levels[i].thresh,
		}
	}
	for i := range s.cache {
		s.cache[i] = nil
	}
	for i := range s.wm {
		s.wm[i] = noWatermark
	}
	sketch.Recycle(s.maker, s.shared)
	s.shared = s.maker.New()
	s.sharedSA = s.slotAdderOf(s.shared)
	s.virginFrom = 1
	s.sharedBudget = 0
	s.n = 0
	s.slotsOK = false
}

// recycleTree returns every sketch in the subtree to the maker's pool.
func (s *Summary) recycleTree(b *bucket) {
	if b == nil {
		return
	}
	sketch.Recycle(s.maker, b.sk)
	b.sk, b.sa = nil, nil
	s.recycleTree(b.left)
	s.recycleTree(b.right)
}
