package core

import (
	"testing"

	"github.com/streamagg/correlated/internal/hash"
)

func buildForMarshal(t *testing.T, agg Aggregate, cfg Config, n int, streamSeed uint64) *Summary {
	t.Helper()
	s := mustSummary(t, agg, cfg)
	rng := hash.New(streamSeed)
	for i := 0; i < n; i++ {
		if err := s.Add(rng.Uint64n(500), rng.Uint64n(cfg.YMax+1)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSummaryRoundTripCount(t *testing.T) {
	cfg := Config{Eps: 0.15, Delta: 0.1, YMax: 1<<12 - 1, MaxStreamLen: 100000, Seed: 91}
	src := buildForMarshal(t, CountAggregate(), cfg, 80000, 5)
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dst := mustSummary(t, CountAggregate(), cfg)
	if err := dst.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if dst.Count() != src.Count() || dst.Space() != src.Space() || dst.Buckets() != src.Buckets() {
		t.Fatalf("bookkeeping differs: count %d/%d space %d/%d buckets %d/%d",
			dst.Count(), src.Count(), dst.Space(), src.Space(), dst.Buckets(), src.Buckets())
	}
	for _, c := range []uint64{50, 1 << 8, 1 << 10, 1<<12 - 1} {
		a, err1 := src.Query(c)
		b, err2 := dst.Query(c)
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("c=%d: src %v (%v), dst %v (%v)", c, a, err1, b, err2)
		}
	}
	// Restored summary must keep ingesting identically.
	rng := hash.New(77)
	for i := 0; i < 20000; i++ {
		x, y := rng.Uint64n(500), rng.Uint64n(1<<12)
		if err := src.Add(x, y); err != nil {
			t.Fatal(err)
		}
		if err := dst.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := src.Query(1 << 11)
	b, _ := dst.Query(1 << 11)
	if a != b {
		t.Fatalf("post-restore divergence: %v vs %v", a, b)
	}
}

func TestSummaryRoundTripF2(t *testing.T) {
	cfg := Config{Eps: 0.25, Delta: 0.1, YMax: 1<<10 - 1, MaxStreamLen: 50000, Seed: 93}
	src := buildForMarshal(t, F2Aggregate(), cfg, 50000, 7)
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dst := mustSummary(t, F2Aggregate(), cfg)
	if err := dst.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for _, c := range []uint64{100, 500, 1<<10 - 1} {
		a, err1 := src.Query(c)
		b, err2 := dst.Query(c)
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("c=%d: src %v (%v), dst %v (%v)", c, a, err1, b, err2)
		}
	}
}

func TestSummaryRoundTripVirginLevels(t *testing.T) {
	// A tiny stream leaves most levels virgin (nil root sketches); the
	// round trip must preserve the shared-sketch arrangement.
	cfg := Config{Eps: 0.2, Delta: 0.1, YMax: 255, MaxStreamLen: 1000, Seed: 95}
	src := buildForMarshal(t, CountAggregate(), cfg, 10, 9)
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dst := mustSummary(t, CountAggregate(), cfg)
	if err := dst.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if dst.virginFrom != src.virginFrom {
		t.Fatalf("virginFrom %d, want %d", dst.virginFrom, src.virginFrom)
	}
	a, _ := src.Query(255)
	b, _ := dst.Query(255)
	if a != b || a != 10 {
		t.Fatalf("tiny-stream queries: %v vs %v, want 10", a, b)
	}
}

func TestSummaryUnmarshalWrongConfig(t *testing.T) {
	cfg := Config{Eps: 0.2, Delta: 0.1, YMax: 1<<10 - 1, MaxStreamLen: 10000, Seed: 97}
	src := buildForMarshal(t, CountAggregate(), cfg, 5000, 11)
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Eps = 0.1 // different alpha
	dst := mustSummary(t, CountAggregate(), other)
	if err := dst.UnmarshalBinary(data); err == nil {
		t.Fatal("mismatched config accepted")
	}
}

func TestSummaryUnmarshalGarbage(t *testing.T) {
	cfg := Config{Eps: 0.2, Delta: 0.1, YMax: 255, MaxStreamLen: 1000, Seed: 99}
	dst := mustSummary(t, CountAggregate(), cfg)
	for _, bad := range [][]byte{nil, {0}, {1, 0xff, 0xff}, {2, 1, 2, 3}} {
		if err := dst.UnmarshalBinary(bad); err == nil {
			t.Fatalf("garbage %v accepted", bad)
		}
	}
}
