package core

import (
	"testing"

	"github.com/streamagg/correlated/internal/hash"
)

// FuzzUnmarshalBinary hardens the core wire format against hostile
// bytes: corrd's /v1/push endpoint feeds network-supplied images into
// this decode path (via ParseMergeImage, which UnmarshalBinary shares),
// so truncated, corrupt, or config-mismatched input must come back as a
// typed error — never a panic, never a partial mutation that breaks the
// receiver.
func FuzzUnmarshalBinary(f *testing.F) {
	cfg := Config{
		Eps: 0.2, Delta: 0.1, YMax: 1<<12 - 1,
		MaxStreamLen: 1 << 16, MaxX: 1 << 10, Alpha: 16, Seed: 3,
	}
	newSum := func(tb testing.TB) *Summary {
		s, err := NewSummary(F2Aggregate(), cfg)
		if err != nil {
			tb.Fatal(err)
		}
		return s
	}

	// Seed corpus: empty image, populated image (past the singleton
	// regime thanks to the tiny alpha), truncations, corrupted bytes,
	// and a config-mismatched image.
	empty := newSum(f)
	img, err := empty.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	full := newSum(f)
	rng := hash.New(9)
	for i := 0; i < 20_000; i++ {
		if err := full.AddWeighted(rng.Uint64n(1<<10), rng.Uint64n(1<<12), 1); err != nil {
			f.Fatal(err)
		}
	}
	if img, err = full.MarshalBinary(); err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:len(img)/2])
	f.Add(img[:1])
	corrupt := append([]byte(nil), img...)
	corrupt[len(corrupt)/3] ^= 0xff
	f.Add(corrupt)
	otherCfg := cfg
	otherCfg.Seed++
	other, err := NewSummary(F2Aggregate(), otherCfg)
	if err != nil {
		f.Fatal(err)
	}
	if img, err = other.MarshalBinary(); err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := newSum(t)
		if err := s.UnmarshalBinary(data); err != nil {
			return // rejected: fine, as long as nothing panicked
		}
		// Accepted images must leave a fully usable summary: it can be
		// queried, ingested into, and re-marshaled.
		if _, err := s.Query(1 << 11); err != nil && err != ErrNoLevel {
			t.Fatalf("query after accepted image: %v", err)
		}
		if err := s.AddWeighted(1, 1, 1); err != nil {
			t.Fatalf("add after accepted image: %v", err)
		}
		if _, err := s.MarshalBinary(); err != nil {
			t.Fatalf("re-marshal after accepted image: %v", err)
		}
	})
}

// FuzzParseMergeImage drives the same bytes through the merge-in path
// (what MergeMarshaled uses) against a non-empty receiver: an accepted
// image must merge without panicking and keep the receiver usable.
func FuzzParseMergeImage(f *testing.F) {
	cfg := Config{
		Eps: 0.2, Delta: 0.1, YMax: 1<<12 - 1,
		MaxStreamLen: 1 << 16, MaxX: 1 << 10, Alpha: 16, Seed: 3,
	}
	site, err := NewSummary(F2Aggregate(), cfg)
	if err != nil {
		f.Fatal(err)
	}
	rng := hash.New(4)
	for i := 0; i < 5_000; i++ {
		if err := site.AddWeighted(rng.Uint64n(1<<10), rng.Uint64n(1<<12), 1); err != nil {
			f.Fatal(err)
		}
	}
	img, err := site.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:len(img)-7])
	f.Add([]byte{3}) // version byte alone

	f.Fuzz(func(t *testing.T, data []byte) {
		recv, err := NewSummary(F2Aggregate(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := recv.AddWeighted(uint64(i), uint64(i%4096), 1); err != nil {
				t.Fatal(err)
			}
		}
		mi, err := recv.ParseMergeImage(data)
		if err != nil {
			return
		}
		if err := recv.ApplyMergeImage(mi); err != nil {
			return
		}
		if err := recv.AddWeighted(1, 1, 1); err != nil {
			t.Fatalf("add after merge: %v", err)
		}
		if _, err := recv.MarshalBinary(); err != nil {
			t.Fatalf("marshal after merge: %v", err)
		}
	})
}
