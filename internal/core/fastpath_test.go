package core

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"github.com/streamagg/correlated/internal/hash"
	"github.com/streamagg/correlated/internal/sketch"
)

// sketchBytes marshals sk for state comparison; sketches that cannot
// marshal fail the test (every aggregate under test here can).
func sketchBytes(t *testing.T, sk sketch.Sketch) []byte {
	t.Helper()
	if sk == nil {
		return nil
	}
	bs, ok := sk.(interface{ MarshalBinary() ([]byte, error) })
	if !ok {
		t.Fatalf("sketch %T does not marshal", sk)
	}
	b, err := bs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// requireBucketsEqual compares two bucket trees node by node, including
// closed flags and exact sketch bytes.
func requireBucketsEqual(t *testing.T, path string, a, b *bucket) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: presence mismatch (%v vs %v)", path, a != nil, b != nil)
	}
	if a == nil {
		return
	}
	if a.iv != b.iv || a.closed != b.closed {
		t.Fatalf("%s: node mismatch: iv %v/%v closed %v/%v", path, a.iv, b.iv, a.closed, b.closed)
	}
	if !bytes.Equal(sketchBytes(t, a.sk), sketchBytes(t, b.sk)) {
		t.Fatalf("%s: sketch state differs", path)
	}
	requireBucketsEqual(t, path+"L", a.left, b.left)
	requireBucketsEqual(t, path+"R", a.right, b.right)
}

// requireSummariesEqual compares every observable piece of two summaries'
// state: counters, watermarks, the singleton level (as a keyed set — the
// heap layout is not state), each bucket tree, and the shared sketch.
func requireSummariesEqual(t *testing.T, a, b *Summary) {
	t.Helper()
	if a.n != b.n || a.virginFrom != b.virginFrom || a.lmax != b.lmax || a.alpha != b.alpha {
		t.Fatalf("scalar state differs: n %d/%d virginFrom %d/%d", a.n, b.n, a.virginFrom, b.virginFrom)
	}
	if !bytes.Equal(sketchBytes(t, a.shared), sketchBytes(t, b.shared)) {
		t.Fatal("shared sketch state differs")
	}
	if a.s0.y != b.s0.y || len(a.s0.buckets) != len(b.s0.buckets) {
		t.Fatalf("singleton level differs: y %d/%d size %d/%d", a.s0.y, b.s0.y, len(a.s0.buckets), len(b.s0.buckets))
	}
	for y, ab := range a.s0.buckets {
		bb, ok := b.s0.buckets[y]
		if !ok {
			t.Fatalf("singleton y=%d missing on one side", y)
		}
		if !bytes.Equal(sketchBytes(t, ab.sk), sketchBytes(t, bb.sk)) {
			t.Fatalf("singleton y=%d sketch differs", y)
		}
	}
	for i := 1; i <= a.lmax; i++ {
		la, lb := a.levels[i], b.levels[i]
		if la.y != lb.y || la.count != lb.count {
			t.Fatalf("level %d: y %d/%d count %d/%d", i, la.y, lb.y, la.count, lb.count)
		}
		requireBucketsEqual(t, fmt.Sprintf("level%d:", i), la.root, lb.root)
	}
}

// TestSlotFastPathMatchesPlainAdd runs identical streams through the
// hash-once slot fan-out and the plain per-sketch Add path and requires
// bit-identical summary state, across aggregates and seeds.
func TestSlotFastPathMatchesPlainAdd(t *testing.T) {
	aggs := map[string]Aggregate{
		"F2":    F2Aggregate(),
		"COUNT": CountAggregate(),
		"SUM":   SumAggregate(),
	}
	for name, agg := range aggs {
		for _, seed := range []uint64{1, 7, 42} {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				cfg := Config{
					Eps: 0.2, Delta: 0.1, YMax: 1<<16 - 1,
					MaxStreamLen: 60000, MaxX: 5000, Seed: seed,
				}
				slow := cfg
				slow.NoSlotFastPath = true
				fastS := mustSummary(t, agg, cfg)
				slowS := mustSummary(t, agg, slow)
				if fastS.slotMaker == nil {
					t.Fatalf("%s maker does not support the slot fast path", name)
				}
				if slowS.slotMaker != nil {
					t.Fatal("NoSlotFastPath did not disable the fast path")
				}
				rng := hash.New(seed ^ 0xabcdef)
				for i := 0; i < 60000; i++ {
					x, y := rng.Uint64n(5000), rng.Uint64n(1<<16)
					w := int64(rng.Uint64n(3)) + 1
					if err := fastS.AddWeighted(x, y, w); err != nil {
						t.Fatal(err)
					}
					if err := slowS.AddWeighted(x, y, w); err != nil {
						t.Fatal(err)
					}
				}
				requireSummariesEqual(t, fastS, slowS)
			})
		}
	}
}

// TestAddBatchFastPathMatchesPlain runs identical batches through the
// slot-based and plain grouped batch paths; the grouped semantics must not
// depend on whether slots are in use.
func TestAddBatchFastPathMatchesPlain(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		cfg := Config{
			Eps: 0.2, Delta: 0.1, YMax: 1<<14 - 1,
			MaxStreamLen: 40000, MaxX: 2000, Seed: seed,
		}
		slow := cfg
		slow.NoSlotFastPath = true
		fastS := mustSummary(t, F2Aggregate(), cfg)
		slowS := mustSummary(t, F2Aggregate(), slow)
		rng := hash.New(seed * 31)
		for bi := 0; bi < 40; bi++ {
			batch := make([]Tuple, 1000)
			for i := range batch {
				batch[i] = Tuple{X: rng.Uint64n(2000), Y: rng.Uint64n(1 << 14), W: 1}
			}
			cp := append([]Tuple(nil), batch...)
			if err := fastS.AddBatch(batch); err != nil {
				t.Fatal(err)
			}
			if err := slowS.AddBatch(cp); err != nil {
				t.Fatal(err)
			}
		}
		requireSummariesEqual(t, fastS, slowS)
	}
}

// TestMarshalRoundTripAfterRecycling exercises the sketch pool hard —
// singleton evictions, bucket discards, and query compositions all churn
// recycled sketches — then requires an exact marshal round trip and
// identical behaviour afterwards.
func TestMarshalRoundTripAfterRecycling(t *testing.T) {
	cfg := Config{
		Eps: 0.25, Delta: 0.1, YMax: 1<<12 - 1,
		MaxStreamLen: 80000, MaxX: 500, Seed: 99,
	}
	s := mustSummary(t, F2Aggregate(), cfg)
	rng := hash.New(123)
	for i := 0; i < 80000; i++ {
		if err := s.Add(rng.Uint64n(500), rng.Uint64n(1<<12)); err != nil {
			t.Fatal(err)
		}
		if i%997 == 0 {
			// Interleaved queries compose and recycle sketches mid-stream.
			if _, err := s.Query(uint64(i) % (1 << 12)); err != nil && err != ErrNoLevel {
				t.Fatal(err)
			}
		}
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := mustSummary(t, F2Aggregate(), cfg)
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	requireSummariesEqual(t, s, restored)
	// The restored summary must keep answering and ingesting like the
	// original (the restored side re-derives budgets and slot faces).
	for i := 0; i < 5000; i++ {
		x, y := rng.Uint64n(500), rng.Uint64n(1<<12)
		if err := s.Add(x, y); err != nil {
			t.Fatal(err)
		}
		if err := restored.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	for c := uint64(0); c <= cfg.YMax; c += 512 {
		a, err1 := s.Query(c)
		b, err2 := restored.Query(c)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("query %d: error mismatch %v vs %v", c, err1, err2)
		}
		if err1 == nil && math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(a)) {
			t.Fatalf("query %d: %v vs %v after round trip", c, a, b)
		}
	}
}

// TestBudgetedClosingMatchesEveryInsertCheck disables the budget skip by
// brute force — re-deriving closings from a summary forced to check every
// insert is covered by the fast/slow equivalence above (both paths share
// budget logic); here we additionally check budgets never close a bucket
// below its threshold.
func TestBudgetedClosingMatchesEveryInsertCheck(t *testing.T) {
	cfg := Config{
		Eps: 0.2, Delta: 0.1, YMax: 1<<12 - 1,
		MaxStreamLen: 30000, MaxX: 1000, Seed: 5,
	}
	s := mustSummary(t, F2Aggregate(), cfg)
	rng := hash.New(77)
	for i := 0; i < 30000; i++ {
		if err := s.Add(rng.Uint64n(1000), rng.Uint64n(1<<12)); err != nil {
			t.Fatal(err)
		}
	}
	var walk func(lv *level, b *bucket)
	walk = func(lv *level, b *bucket) {
		if b == nil {
			return
		}
		if b.closed && b.sk != nil && b.left == nil && b.right == nil && !b.iv.Single() {
			if est := sketch.CheapEstimate(b.sk); est < lv.thresh {
				t.Fatalf("level %d bucket %v closed below threshold: %v < %v",
					lv.idx, b.iv, est, lv.thresh)
			}
		}
		walk(lv, b.left)
		walk(lv, b.right)
	}
	for i := 1; i <= s.lmax; i++ {
		walk(s.levels[i], s.levels[i].root)
	}
}
