// Package core implements the paper's primary contribution (Section 2): a
// general reduction from correlated aggregation — estimating
// AGG{x_i | y_i <= c} with the cutoff c given only at query time — to
// whole-stream sketching of AGG.
//
// The reduction works for any aggregation function f satisfying the paper's
// Conditions I–V:
//
//	I.   f(R) is polynomially bounded in |R|;
//	II.  superadditivity: f(R1 ∪ R2) >= f(R1) + f(R2);
//	III. a union bound c1(j): f(R1 ∪ ... ∪ Rj) <= c1(j)·max f(Ri);
//	IV.  a residue bound c2(ε): B ⊆ A and f(B) <= c2(ε)·f(A) imply
//	     f(A−B) >= (1−ε)·f(A);
//	V.   a mergeable sketching function for whole-stream f.
//
// The Aggregate type captures exactly these conditions; the built-in
// aggregates (F2, Fk, SUM, COUNT) supply the constants proved in the
// paper's Section 3 (Lemmas 6–8).
package core

import (
	"fmt"
	"math"

	"github.com/streamagg/correlated/internal/hash"
	"github.com/streamagg/correlated/internal/sketch"
)

// Aggregate describes an aggregation function that satisfies the paper's
// Conditions I–V and can therefore go through the general reduction.
type Aggregate struct {
	// Name identifies the aggregate in errors and diagnostics.
	Name string

	// C1 is the union-bound function of Condition III: if f(Ri) <= a for
	// i = 1..j then f(R1 ∪ ... ∪ Rj) <= C1(j)·a.
	C1 func(j int) float64

	// C2 is the residue function of Condition IV: B ⊆ A with
	// f(B) <= C2(eps)·f(A) implies f(A−B) >= (1−eps)·f(A).
	C2 func(eps float64) float64

	// NewMaker builds the whole-stream sketching function of Condition V
	// for relative error upsilon and failure probability gamma.
	NewMaker func(upsilon, gamma float64, rng *hash.RNG) sketch.Maker

	// FMaxLog2 bounds log2 of the largest possible aggregate value over
	// a stream of n items whose identifiers are below xmax (Condition I,
	// which makes the level count logarithmic).
	FMaxLog2 func(n, xmax uint64) int
}

// F2Aggregate returns the second frequency moment with the constants of
// Lemma 6 (c1(j) = j^2) and Lemma 8 (c2(eps) = (eps/18)^2).
func F2Aggregate() Aggregate {
	return Aggregate{
		Name: "F2",
		C1:   func(j int) float64 { return float64(j) * float64(j) },
		C2:   func(eps float64) float64 { return (eps / 18) * (eps / 18) },
		NewMaker: func(upsilon, gamma float64, rng *hash.RNG) sketch.Maker {
			return sketch.NewF2MakerError(upsilon, gamma, rng)
		},
		FMaxLog2: func(n, xmax uint64) int { return 2 * log2Ceil(n) },
	}
}

// FkAggregate returns the k-th frequency moment, k >= 2, with the constants
// of Lemmas 6 and 8: c1(j) = j^k, c2(eps) = (eps/(9k))^k.
func FkAggregate(k int) Aggregate {
	if k < 2 {
		panic("core: FkAggregate needs k >= 2")
	}
	kf := float64(k)
	return Aggregate{
		Name: fmt.Sprintf("F%d", k),
		C1:   func(j int) float64 { return math.Pow(float64(j), kf) },
		C2:   func(eps float64) float64 { return math.Pow(eps/(9*kf), kf) },
		NewMaker: func(upsilon, gamma float64, rng *hash.RNG) sketch.Maker {
			return sketch.NewFkMakerError(k, upsilon, gamma, rng)
		},
		FMaxLog2: func(n, xmax uint64) int { return k * log2Ceil(n) },
	}
}

// CountAggregate returns COUNT (the first frequency moment of the selected
// substream). COUNT is additive, so c1(j) = j and c2(eps) = eps, and the
// "sketch" is an exact counter with zero error.
func CountAggregate() Aggregate {
	return Aggregate{
		Name: "COUNT",
		C1:   func(j int) float64 { return float64(j) },
		C2:   func(eps float64) float64 { return eps },
		NewMaker: func(upsilon, gamma float64, rng *hash.RNG) sketch.Maker {
			return sketch.NewCountMaker()
		},
		FMaxLog2: func(n, xmax uint64) int { return log2Ceil(n) },
	}
}

// SumAggregate returns SUM over the x values of the selected substream,
// the correlated sum of Gehrke et al. and Ananthakrishna et al. Like
// COUNT it is additive and exactly sketchable.
func SumAggregate() Aggregate {
	return Aggregate{
		Name: "SUM",
		C1:   func(j int) float64 { return float64(j) },
		C2:   func(eps float64) float64 { return eps },
		NewMaker: func(upsilon, gamma float64, rng *hash.RNG) sketch.Maker {
			return sketch.NewSumMaker()
		},
		FMaxLog2: func(n, xmax uint64) int { return log2Ceil(n) + log2Ceil(xmax) },
	}
}

// log2Ceil returns ceil(log2(v)) for v >= 1, and 1 for v <= 1.
func log2Ceil(v uint64) int {
	if v <= 1 {
		return 1
	}
	l := 0
	for p := uint64(1); p < v && l < 63; p <<= 1 {
		l++
	}
	return l
}
