package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/streamagg/correlated/internal/dyadic"
	"github.com/streamagg/correlated/internal/hash"
	"github.com/streamagg/correlated/internal/sketch"
)

// noWatermark is the initial value of each level's Y_i ("infinity").
const noWatermark = math.MaxUint64

// Summary is the sketch for correlated aggregation of Section 2. It
// supports Add (Algorithm 2) and Query (Algorithm 3) for selection
// predicates of the form y <= c with c supplied at query time.
//
// Levels ℓ = 1..ℓmax each hold a tree of buckets over dyadic intervals of
// [0, ymax]. A bucket closes once its sketch estimate reaches 2^(ℓ+1) and
// splits into its two dyadic children on the next arrival; when a level
// exceeds its capacity α, the bucket with the largest left endpoint is
// discarded and the level's watermark Y_ℓ records the smallest discarded
// left endpoint. A query for cutoff c is answered from the smallest level
// with Y_ℓ > c by composing the sketches of all buckets fully inside
// [0, c]. Level 0 stores up to α exact singleton-y buckets.
type Summary struct {
	cfg   Config
	agg   Aggregate
	maker sketch.Maker
	alpha int
	lmax  int

	s0     levelZero
	levels []*level // levels[i] for i = 1..lmax; index 0 unused

	n uint64 // tuples inserted

	// cache holds, per level, the leaf that received the previous
	// insertion; sorted (batched) insertion streams hit it repeatedly,
	// which is the practical form of the paper's Lemma 9 amortization.
	cache []*bucket

	// Virgin-level sharing: every level whose root has never closed
	// holds, by construction, a sketch of the *entire* stream so far —
	// identical content across levels because sketches share seeds. One
	// shared sketch stands in for all of them; when the shared estimate
	// crosses a level's closing threshold, that level materializes its
	// own copy and proceeds independently. This changes per-update cost
	// from O(ℓmax) sketch updates to O(active levels) without changing
	// behaviour in any way.
	shared     sketch.Sketch
	virginFrom int // smallest level whose root has never closed
}

type bucket struct {
	iv        dyadic.Interval
	sk        sketch.Sketch
	closed    bool
	discarded bool
	left      *bucket
	right     *bucket
}

type level struct {
	idx    int
	root   *bucket
	y      uint64 // watermark Y_ℓ
	count  int    // stored buckets
	thresh float64
}

type levelZero struct {
	buckets map[uint64]*bucket
	ys      []uint64 // max-heap of singleton y values
	y       uint64   // watermark Y_0
}

// NewSummary builds a correlated-aggregate summary for agg under cfg
// (Algorithm 1).
func NewSummary(agg Aggregate, cfg Config) (*Summary, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	lmax := agg.FMaxLog2(cfg.MaxStreamLen, cfg.MaxX) + 1
	if lmax > 62 {
		lmax = 62
	}
	upsilon := cfg.Eps / 2
	logy := float64(log2Ceil(cfg.YMax + 1))
	var gamma float64
	if cfg.StrictTheory {
		gamma = cfg.Delta / (4 * float64(cfg.YMax) * float64(lmax+1))
	} else {
		gamma = cfg.Delta / (4 * float64(lmax+1) * logy)
	}
	rng := hash.New(cfg.Seed)
	s := &Summary{
		cfg:    cfg,
		agg:    agg,
		maker:  agg.NewMaker(upsilon, gamma, rng),
		alpha:  deriveAlpha(cfg, agg),
		lmax:   lmax,
		levels: make([]*level, lmax+1),
		cache:  make([]*bucket, lmax+1),
	}
	s.s0 = levelZero{buckets: make(map[uint64]*bucket), y: noWatermark}
	for i := 1; i <= lmax; i++ {
		s.levels[i] = &level{
			idx:    i,
			root:   &bucket{iv: dyadic.Root(cfg.YMax)},
			y:      noWatermark,
			count:  1,
			thresh: math.Ldexp(1, i+1),
		}
	}
	s.shared = s.maker.New()
	s.virginFrom = 1
	return s, nil
}

// Config returns the (normalized) configuration.
func (s *Summary) Config() Config { return s.cfg }

// Alpha returns the per-level bucket capacity in use.
func (s *Summary) Alpha() int { return s.alpha }

// Levels returns ℓmax, the number of non-singleton levels.
func (s *Summary) Levels() int { return s.lmax }

// Count returns the number of tuples inserted so far.
func (s *Summary) Count() uint64 { return s.n }

// Add inserts the tuple (x, y) with weight 1.
func (s *Summary) Add(x, y uint64) error { return s.AddWeighted(x, y, 1) }

// AddWeighted inserts w copies of (x, y), w > 0 (Algorithm 2). Negative
// weights require the multipass machinery of Section 4 — the single-pass
// structure provably cannot support them (Theorem 6).
func (s *Summary) AddWeighted(x, y uint64, w int64) error {
	if y > s.cfg.YMax {
		return fmt.Errorf("core: y = %d exceeds YMax = %d", y, s.cfg.YMax)
	}
	if w <= 0 {
		return fmt.Errorf("core: weight must be positive, got %d", w)
	}
	s.n++
	s.insert0(x, y, w)
	for i := 1; i < s.virginFrom; i++ {
		s.insertLevel(s.levels[i], x, y, w, i)
	}
	if s.virginFrom <= s.lmax {
		// All virgin levels share one whole-stream sketch.
		s.shared.Add(x, w)
		for s.virginFrom <= s.lmax &&
			sketch.CheapEstimate(s.shared) >= s.levels[s.virginFrom].thresh {
			s.materialize(s.levels[s.virginFrom])
			s.virginFrom++
		}
	}
	return nil
}

// materialize gives a virgin level its own copy of the shared sketch and
// closes its root, exactly as Algorithm 2 would have done had the level
// been maintaining the root sketch itself.
func (s *Summary) materialize(lv *level) {
	cp := s.maker.New()
	// Same-maker merges cannot fail.
	_ = cp.Merge(s.shared)
	lv.root.sk = cp
	if !lv.root.iv.Single() {
		lv.root.closed = true
	}
}

// insert0 handles the singleton level S0 (Algorithm 2 lines 1–6).
func (s *Summary) insert0(x, y uint64, w int64) {
	z := &s.s0
	// A singleton at or past the watermark could never serve a query
	// (Y_0 only decreases), so creating it would waste space.
	if y >= z.y {
		return
	}
	b := z.buckets[y]
	if b == nil {
		b = &bucket{iv: dyadic.Interval{L: y, R: y}, sk: s.maker.New()}
		z.buckets[y] = b
		heapPushU64(&z.ys, y)
	}
	b.sk.Add(x, w)
	for len(z.buckets) > s.alpha {
		top := heapPopU64(&z.ys)
		delete(z.buckets, top)
		if top < z.y {
			z.y = top
		}
	}
}

// insertLevel inserts (x, y, w) into level lv (Algorithm 2 lines 7–21).
func (s *Summary) insertLevel(lv *level, x, y uint64, w int64, i int) {
	// The element's y falls in the level's discarded region: skip. (The
	// paper's Algorithm 2 phrases this as an early return; since the
	// watermarks Y_ℓ are in practice non-decreasing in ℓ, skipping just
	// this level is the conservative reading that keeps every level
	// consistent regardless of watermark ordering.)
	if y >= lv.y {
		return
	}
	// Fast path: the previous insertion's leaf (Lemma 9 batching).
	if b := s.cache[i]; b != nil && !b.discarded && b.left == nil && b.right == nil &&
		b.iv.Contains(y) && (!b.closed || b.iv.Single()) {
		b.sk.Add(x, w)
		if !b.closed && !b.iv.Single() && sketch.CheapEstimate(b.sk) >= lv.thresh {
			b.closed = true
		}
		return
	}
	b := lv.root
	for {
		if b.left != nil || b.right != nil {
			// Internal: descend toward y. Children are created in
			// pairs and discarded right-to-left, so a missing
			// target child means y is in the discarded region —
			// unreachable given the watermark check above.
			lc, _ := b.iv.Children()
			if y <= lc.R {
				if b.left == nil {
					return
				}
				b = b.left
			} else {
				if b.right == nil {
					return
				}
				b = b.right
			}
			continue
		}
		if b.closed && !b.iv.Single() {
			// Closed leaf: split into the two dyadic children and
			// continue into the one containing y.
			lc, rc := b.iv.Children()
			b.left = &bucket{iv: lc, sk: s.maker.New()}
			b.right = &bucket{iv: rc, sk: s.maker.New()}
			lv.count += 2
			continue
		}
		b.sk.Add(x, w)
		if !b.closed && !b.iv.Single() && sketch.CheapEstimate(b.sk) >= lv.thresh {
			b.closed = true
		}
		s.cache[i] = b
		break
	}
	// Check for overflow: evict largest-l buckets until within capacity.
	for lv.count > s.alpha {
		s.discardMax(lv)
	}
}

// discardMax removes the stored bucket with the largest left endpoint
// (always a childless bucket, found by walking right-then-left) and lowers
// the level's watermark.
func (s *Summary) discardMax(lv *level) {
	var parent *bucket
	b := lv.root
	for b.left != nil || b.right != nil {
		parent = b
		if b.right != nil {
			b = b.right
		} else {
			b = b.left
		}
	}
	if parent == nil {
		// The root itself is the only bucket; it is never discarded.
		return
	}
	if parent.right == b {
		parent.right = nil
	} else {
		parent.left = nil
	}
	b.discarded = true
	lv.count--
	if b.iv.L < lv.y {
		lv.y = b.iv.L
	}
}

// Query estimates AGG{x | (x, y) in stream, y <= c} (Algorithm 3). It
// returns ErrNoLevel when even the top level cannot serve c, which under
// the analysis's event G happens with probability at most δ.
func (s *Summary) Query(c uint64) (float64, error) {
	est, _, err := s.QueryWithLevel(c)
	return est, err
}

// QueryWithLevel is Query plus the level that served the answer
// (level 0 means the singleton level S0).
func (s *Summary) QueryWithLevel(c uint64) (float64, int, error) {
	sk, lvl, err := s.QuerySketch(c)
	if err != nil {
		return 0, lvl, err
	}
	return sk.Estimate(), lvl, nil
}

// QuerySketch returns the composed sketch of the buckets serving cutoff c
// (the composition K of Algorithm 3) together with the level used. The
// correlated heavy-hitters structure of Section 3.3 consumes the sketch
// itself rather than just its estimate.
func (s *Summary) QuerySketch(c uint64) (sketch.Sketch, int, error) {
	if c > s.cfg.YMax {
		c = s.cfg.YMax
	}
	if s.s0.y > c {
		return s.query0(c), 0, nil
	}
	for i := 1; i <= s.lmax; i++ {
		if s.levels[i].y > c {
			return s.queryLevel(s.levels[i], c), i, nil
		}
	}
	return nil, -1, ErrNoLevel
}

// query0 composes the singleton sketches with y <= c ("summing over
// appropriate singletons": sketches here are linear, so composition and
// summation coincide).
func (s *Summary) query0(c uint64) sketch.Sketch {
	out := s.maker.New()
	for y, b := range s.s0.buckets {
		if y <= c {
			// Merging sketches from the same maker cannot fail.
			_ = out.Merge(b.sk)
		}
	}
	return out
}

// queryLevel composes the sketches of B1 — every stored bucket whose span
// lies inside [0, c]. Buckets straddling c (the set B2 of the analysis)
// are excluded; Lemma 4 bounds the mass they can hide.
func (s *Summary) queryLevel(lv *level, c uint64) sketch.Sketch {
	out := s.maker.New()
	var inside func(b *bucket)
	inside = func(b *bucket) {
		if b == nil {
			return
		}
		if b.sk != nil {
			// Same-maker merges cannot fail.
			_ = out.Merge(b.sk)
		} else {
			// A virgin level's root: its contents are the shared
			// whole-stream sketch.
			_ = out.Merge(s.shared)
		}
		inside(b.left)
		inside(b.right)
	}
	var walk func(b *bucket)
	walk = func(b *bucket) {
		if b == nil || !b.iv.Intersects(c) {
			return
		}
		if b.iv.Within(c) {
			inside(b)
			return
		}
		walk(b.left)
		walk(b.right)
	}
	walk(lv.root)
	return out
}

// Space returns the stored size in counters/tuples — the space metric of
// the paper's figures.
func (s *Summary) Space() int64 {
	total := int64(s.shared.Size()) // one shared sketch for virgin levels
	for _, b := range s.s0.buckets {
		total += int64(b.sk.Size()) + 1
	}
	for i := 1; i <= s.lmax; i++ {
		total += levelSpace(s.levels[i].root)
	}
	return total
}

func levelSpace(b *bucket) int64 {
	if b == nil {
		return 0
	}
	var own int64 = 2
	if b.sk != nil {
		own += int64(b.sk.Size())
	}
	return own + levelSpace(b.left) + levelSpace(b.right)
}

// Buckets returns the number of stored buckets across all levels.
func (s *Summary) Buckets() int {
	n := len(s.s0.buckets)
	for i := 1; i <= s.lmax; i++ {
		n += s.levels[i].count
	}
	return n
}

// Watermark returns Y_ℓ for diagnostics; level 0 is the singleton level.
func (s *Summary) Watermark(level int) uint64 {
	if level == 0 {
		return s.s0.y
	}
	return s.levels[level].y
}

// Tuple is one stream element for batched insertion.
type Tuple struct {
	X, Y uint64
	W    int64
}

// AddBatch inserts a batch of tuples sorted by ascending y, the amortized
// update path of Lemma 9: sorted arrivals make consecutive insertions hit
// the same leaf, served by the per-level leaf cache. The batch is sorted
// in place.
func (s *Summary) AddBatch(batch []Tuple) error {
	sort.Slice(batch, func(i, j int) bool { return batch[i].Y < batch[j].Y })
	for _, t := range batch {
		w := t.W
		if w == 0 {
			w = 1
		}
		if err := s.AddWeighted(t.X, t.Y, w); err != nil {
			return err
		}
	}
	return nil
}

// heapPushU64 pushes y onto the max-heap h.
func heapPushU64(h *[]uint64, y uint64) {
	*h = append(*h, y)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] >= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

// heapPopU64 pops the maximum from h.
func heapPopU64(h *[]uint64) uint64 {
	top := (*h)[0]
	n := len(*h) - 1
	(*h)[0] = (*h)[n]
	*h = (*h)[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && (*h)[l] > (*h)[big] {
			big = l
		}
		if r < n && (*h)[r] > (*h)[big] {
			big = r
		}
		if big == i {
			break
		}
		(*h)[i], (*h)[big] = (*h)[big], (*h)[i]
		i = big
	}
	return top
}
