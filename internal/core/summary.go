package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/streamagg/correlated/internal/dyadic"
	"github.com/streamagg/correlated/internal/hash"
	"github.com/streamagg/correlated/internal/sketch"
)

// noWatermark is the initial value of each level's Y_i ("infinity").
const noWatermark = math.MaxUint64

// Summary is the sketch for correlated aggregation of Section 2. It
// supports Add (Algorithm 2) and Query (Algorithm 3) for selection
// predicates of the form y <= c with c supplied at query time.
//
// Levels ℓ = 1..ℓmax each hold a tree of buckets over dyadic intervals of
// [0, ymax]. A bucket closes once its sketch estimate reaches 2^(ℓ+1) and
// splits into its two dyadic children on the next arrival; when a level
// exceeds its capacity α, the bucket with the largest left endpoint is
// discarded and the level's watermark Y_ℓ records the smallest discarded
// left endpoint. A query for cutoff c is answered from the smallest level
// with Y_ℓ > c by composing the sketches of all buckets fully inside
// [0, c]. Level 0 stores up to α exact singleton-y buckets.
type Summary struct {
	cfg   Config
	agg   Aggregate
	maker sketch.Maker
	alpha int
	lmax  int

	s0     levelZero
	levels []*level // levels[i] for i = 1..lmax; index 0 unused

	n uint64 // tuples inserted

	// cache holds, per level, the leaf that received the previous
	// insertion; sorted (batched) insertion streams hit it repeatedly,
	// which is the practical form of the paper's Lemma 9 amortization.
	cache []*bucket

	// Virgin-level sharing: every level whose root has never closed
	// holds, by construction, a sketch of the *entire* stream so far —
	// identical content across levels because sketches share seeds. One
	// shared sketch stands in for all of them; when the shared estimate
	// crosses a level's closing threshold, that level materializes its
	// own copy and proceeds independently. This changes per-update cost
	// from O(ℓmax) sketch updates to O(active levels) without changing
	// behaviour in any way.
	shared     sketch.Sketch
	virginFrom int // smallest level whose root has never closed

	// Hash-once fan-out: when the maker supports precomputed slots, each
	// arriving tuple is hashed exactly once into slots, and every sketch
	// it touches — the singleton bucket, one leaf per active level, the
	// shared virgin sketch — applies the same slots. Without this, a
	// tuple re-evaluates the maker's d row hashes once per level.
	slotMaker sketch.SlotMaker // nil when the maker has no slot support
	slots     sketch.Slots     // current tuple's slots (scratch, reused)
	slotsOK   bool             // slots describe the tuple being inserted
	slab      sketch.Slots     // per-batch slot slab (scratch, reused)

	// sharedBudget plays the bucket closeBudget role for the shared
	// virgin-level sketch against the next virgin level's threshold.
	sharedBudget int64
	sharedSA     sketch.SlotAdder // shared's slot face

	// wm mirrors levels[i].y in one flat array, so the per-tuple level
	// scan reads a few contiguous cache lines instead of chasing a
	// pointer per level. Kept in sync by discardMax and UnmarshalBinary.
	wm []uint64
}

type bucket struct {
	iv        dyadic.Interval
	sk        sketch.Sketch
	sa        sketch.SlotAdder // sk's slot face, cached to skip per-update type asserts
	closed    bool
	discarded bool
	left      *bucket
	right     *bucket

	// closeBudget is the weight this bucket can still absorb before its
	// estimate could possibly reach the level's closing threshold
	// (sketch.ThresholdBudget). While positive, the closing check is
	// skipped — with decisions bit-identical to checking every insert.
	// Pure optimization state: not serialized; zero forces a check.
	closeBudget int64
}

type level struct {
	idx    int
	root   *bucket
	y      uint64 // watermark Y_ℓ
	count  int    // stored buckets
	thresh float64
}

type levelZero struct {
	buckets map[uint64]*bucket
	ys      []uint64 // max-heap of singleton y values
	y       uint64   // watermark Y_0
}

// NewSummary builds a correlated-aggregate summary for agg under cfg
// (Algorithm 1).
func NewSummary(agg Aggregate, cfg Config) (*Summary, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	lmax := agg.FMaxLog2(cfg.MaxStreamLen, cfg.MaxX) + 1
	if lmax > 62 {
		lmax = 62
	}
	upsilon := cfg.Eps / 2
	logy := float64(log2Ceil(cfg.YMax + 1))
	var gamma float64
	if cfg.StrictTheory {
		gamma = cfg.Delta / (4 * float64(cfg.YMax) * float64(lmax+1))
	} else {
		gamma = cfg.Delta / (4 * float64(lmax+1) * logy)
	}
	rng := hash.New(cfg.Seed)
	s := &Summary{
		cfg:    cfg,
		agg:    agg,
		maker:  agg.NewMaker(upsilon, gamma, rng),
		alpha:  deriveAlpha(cfg, agg),
		lmax:   lmax,
		levels: make([]*level, lmax+1),
		cache:  make([]*bucket, lmax+1),
	}
	s.s0 = levelZero{buckets: make(map[uint64]*bucket), y: noWatermark}
	for i := 1; i <= lmax; i++ {
		s.levels[i] = &level{
			idx:    i,
			root:   &bucket{iv: dyadic.Root(cfg.YMax)},
			y:      noWatermark,
			count:  1,
			thresh: math.Ldexp(1, i+1),
		}
	}
	if sm, ok := s.maker.(sketch.SlotMaker); ok && !cfg.NoSlotFastPath {
		s.slotMaker = sm
		s.slots = make(sketch.Slots, 0, sm.SlotWidth())
	}
	s.shared = s.maker.New()
	s.sharedSA = s.slotAdderOf(s.shared)
	s.virginFrom = 1
	s.wm = make([]uint64, lmax+1)
	for i := range s.wm {
		s.wm[i] = noWatermark
	}
	return s, nil
}

// slotAdderOf returns sk's SlotAdder face when the fast path is active.
// Sketches from a SlotMaker are contractually SlotAdders.
func (s *Summary) slotAdderOf(sk sketch.Sketch) sketch.SlotAdder {
	if s.slotMaker == nil {
		return nil
	}
	return sk.(sketch.SlotAdder)
}

// attachSketch gives b a fresh (or pooled) sketch with its slot face
// cached.
func (s *Summary) attachSketch(b *bucket) {
	b.sk = s.maker.New()
	b.sa = s.slotAdderOf(b.sk)
}

// bucketAdd applies the tuple currently being inserted to b's sketch: via
// the precomputed slots when the fast path is active, via plain Add
// otherwise. Both leave the sketch in bit-identical state.
func (s *Summary) bucketAdd(b *bucket, x uint64, w int64) {
	if s.slotsOK {
		b.sa.AddSlots(s.slots, w)
		return
	}
	b.sk.Add(x, w)
}

// Config returns the (normalized) configuration.
func (s *Summary) Config() Config { return s.cfg }

// Alpha returns the per-level bucket capacity in use.
func (s *Summary) Alpha() int { return s.alpha }

// Levels returns ℓmax, the number of non-singleton levels.
func (s *Summary) Levels() int { return s.lmax }

// Count returns the number of tuples inserted so far.
func (s *Summary) Count() uint64 { return s.n }

// Add inserts the tuple (x, y) with weight 1.
func (s *Summary) Add(x, y uint64) error { return s.AddWeighted(x, y, 1) }

// AddWeighted inserts w copies of (x, y), w > 0 (Algorithm 2). Negative
// weights require the multipass machinery of Section 4 — the single-pass
// structure provably cannot support them (Theorem 6).
func (s *Summary) AddWeighted(x, y uint64, w int64) error {
	if y > s.cfg.YMax {
		return fmt.Errorf("core: y = %d exceeds YMax = %d", y, s.cfg.YMax)
	}
	if w <= 0 {
		return fmt.Errorf("core: weight must be positive, got %d", w)
	}
	s.n++
	if s.slotMaker != nil {
		// Hash once per tuple; every sketch touched below fans the same
		// slots out instead of rehashing x per level.
		s.slots = s.slotMaker.Slots(x, s.slots[:0])
		s.slotsOK = true
	}
	s.insert0(x, y, w)
	for i := 1; i < s.virginFrom; i++ {
		// The element's y falls in the level's discarded region: skip.
		// (The paper's Algorithm 2 phrases this as an early return; since
		// the watermarks Y_ℓ are in practice non-decreasing in ℓ, skipping
		// just this level is the conservative reading that keeps every
		// level consistent regardless of watermark ordering.)
		if y >= s.wm[i] {
			continue
		}
		s.insertLevel(s.levels[i], x, y, w, i)
	}
	if s.virginFrom <= s.lmax {
		// All virgin levels share one whole-stream sketch.
		if s.slotsOK {
			s.sharedSA.AddSlots(s.slots, w)
		} else {
			s.shared.Add(x, w)
		}
		s.checkVirgin(w)
	}
	s.slotsOK = false
	return nil
}

// checkVirgin materializes virgin levels whose closing threshold the
// shared sketch has crossed after w more weight landed on it. The shared
// budget skips the estimate while crossing is provably impossible.
func (s *Summary) checkVirgin(w int64) {
	s.sharedBudget -= w
	if s.sharedBudget > 0 {
		return
	}
	for s.virginFrom <= s.lmax &&
		sketch.CheapEstimate(s.shared) >= s.levels[s.virginFrom].thresh {
		s.materialize(s.levels[s.virginFrom])
		s.virginFrom++
	}
	if s.virginFrom <= s.lmax {
		s.sharedBudget = sketch.ThresholdBudget(s.shared, s.levels[s.virginFrom].thresh)
	}
}

// materialize gives a virgin level its own copy of the shared sketch and
// closes its root, exactly as Algorithm 2 would have done had the level
// been maintaining the root sketch itself.
func (s *Summary) materialize(lv *level) {
	cp := s.maker.New()
	// Same-maker merges cannot fail.
	_ = cp.Merge(s.shared)
	lv.root.sk = cp
	lv.root.sa = s.slotAdderOf(cp)
	if !lv.root.iv.Single() {
		lv.root.closed = true
	}
}

// insert0 handles the singleton level S0 (Algorithm 2 lines 1–6).
func (s *Summary) insert0(x, y uint64, w int64) {
	z := &s.s0
	// A singleton at or past the watermark could never serve a query
	// (Y_0 only decreases), so creating it would waste space.
	if y >= z.y {
		return
	}
	b := z.buckets[y]
	if b == nil {
		b = &bucket{iv: dyadic.Interval{L: y, R: y}}
		s.attachSketch(b)
		z.buckets[y] = b
		heapPushU64(&z.ys, y)
	}
	s.bucketAdd(b, x, w)
	s.evict0()
}

// evict0 trims the singleton level back to capacity, recycling the evicted
// buckets' sketches.
func (s *Summary) evict0() {
	z := &s.s0
	for len(z.buckets) > s.alpha {
		top := heapPopU64(&z.ys)
		if b := z.buckets[top]; b != nil {
			sketch.Recycle(s.maker, b.sk)
			b.sk, b.sa = nil, nil
		}
		delete(z.buckets, top)
		if top < z.y {
			z.y = top
		}
	}
}

// insertLevel inserts (x, y, w) into level lv (Algorithm 2 lines 7–21).
// The caller has already established y < Y_ℓ (the watermark check runs
// against the flat wm array).
func (s *Summary) insertLevel(lv *level, x, y uint64, w int64, i int) {
	// Fast path: the previous insertion's leaf (Lemma 9 batching).
	if b := s.cache[i]; cacheServes(b, y) {
		s.bucketAdd(b, x, w)
		s.maybeClose(lv, b, w)
		return
	}
	b := s.leafFor(lv, y)
	if b == nil {
		return
	}
	s.bucketAdd(b, x, w)
	s.maybeClose(lv, b, w)
	s.cache[i] = b
	// Check for overflow: evict largest-l buckets until within capacity.
	for lv.count > s.alpha {
		s.discardMax(lv)
	}
}

// maybeClose re-checks b's closing threshold after w more weight landed in
// it. The budget skips the estimate while the sketch proves the threshold
// is out of reach, leaving closing decisions bit-identical to checking
// after every single update.
func (s *Summary) maybeClose(lv *level, b *bucket, w int64) {
	if b.closed || b.iv.Single() {
		return
	}
	b.closeBudget -= w
	if b.closeBudget > 0 {
		return
	}
	if sketch.CheapEstimate(b.sk) >= lv.thresh {
		b.closed = true
		return
	}
	b.closeBudget = sketch.ThresholdBudget(b.sk, lv.thresh)
}

// cacheServes reports whether the cached leaf b can absorb an insertion at
// y without a descent from the root.
func cacheServes(b *bucket, y uint64) bool {
	return b != nil && !b.discarded && b.left == nil && b.right == nil &&
		b.iv.Contains(y) && (!b.closed || b.iv.Single())
}

// leafFor descends level lv toward y, splitting closed leaves on the way
// (Algorithm 2's lazy split), and returns the open-or-singleton leaf that
// receives insertions at y — or nil when y falls in the discarded region.
func (s *Summary) leafFor(lv *level, y uint64) *bucket {
	b := lv.root
	for {
		if b.left != nil || b.right != nil {
			// Internal: descend toward y. Children are created in
			// pairs and discarded right-to-left, so a missing
			// target child means y is in the discarded region —
			// unreachable given the watermark check above.
			lc, _ := b.iv.Children()
			if y <= lc.R {
				if b.left == nil {
					return nil
				}
				b = b.left
			} else {
				if b.right == nil {
					return nil
				}
				b = b.right
			}
			continue
		}
		if b.closed && !b.iv.Single() {
			// Closed leaf: split into the two dyadic children and
			// continue into the one containing y. The children start
			// without sketches: the one this insertion descends into is
			// attached on return below, and the sibling stays empty —
			// zero counters, zero allocation — until a tuple actually
			// lands in it. Roughly half of all split siblings are
			// evicted or straddled without ever being touched, so the
			// lazy attach removes the dominant steady-state allocation
			// of the ingest path (it showed up as B/op growing with the
			// shard count in BenchmarkShardedAdd: P summaries, each
			// paying two sketches per split).
			lc, rc := b.iv.Children()
			b.left = &bucket{iv: lc}
			b.right = &bucket{iv: rc}
			lv.count += 2
			continue
		}
		if b.sk == nil {
			// First touch of a lazily-created leaf (or one restored from
			// a snapshot taken before it was ever touched).
			s.attachSketch(b)
		}
		return b
	}
}

// discardMax removes the stored bucket with the largest left endpoint
// (always a childless bucket, found by walking right-then-left) and lowers
// the level's watermark.
func (s *Summary) discardMax(lv *level) {
	var parent *bucket
	b := lv.root
	for b.left != nil || b.right != nil {
		parent = b
		if b.right != nil {
			b = b.right
		} else {
			b = b.left
		}
	}
	if parent == nil {
		// The root itself is the only bucket; it is never discarded.
		return
	}
	if parent.right == b {
		parent.right = nil
	} else {
		parent.left = nil
	}
	b.discarded = true
	// The discarded bucket may linger in the leaf cache (guarded by its
	// discarded flag), but its counters are dead — recycle them.
	sketch.Recycle(s.maker, b.sk)
	b.sk, b.sa = nil, nil
	lv.count--
	if b.iv.L < lv.y {
		lv.y = b.iv.L
		s.wm[lv.idx] = lv.y
	}
}

// RecycleSketch returns a sketch obtained from QuerySketch to the maker's
// pool once the caller is done with it. The caller must drop every
// reference to the sketch.
func (s *Summary) RecycleSketch(sk sketch.Sketch) {
	sketch.Recycle(s.maker, sk)
}

// Query estimates AGG{x | (x, y) in stream, y <= c} (Algorithm 3). It
// returns ErrNoLevel when even the top level cannot serve c, which under
// the analysis's event G happens with probability at most δ.
func (s *Summary) Query(c uint64) (float64, error) {
	est, _, err := s.QueryWithLevel(c)
	return est, err
}

// QueryWithLevel is Query plus the level that served the answer
// (level 0 means the singleton level S0). The composed sketch is recycled
// back to the maker's pool once estimated, so steady-state queries do not
// grow the heap; callers that need the sketch itself use QuerySketch.
func (s *Summary) QueryWithLevel(c uint64) (float64, int, error) {
	sk, lvl, err := s.QuerySketch(c)
	if err != nil {
		return 0, lvl, err
	}
	est := sk.Estimate()
	sketch.Recycle(s.maker, sk)
	return est, lvl, nil
}

// QuerySketch returns the composed sketch of the buckets serving cutoff c
// (the composition K of Algorithm 3) together with the level used. The
// correlated heavy-hitters structure of Section 3.3 consumes the sketch
// itself rather than just its estimate.
func (s *Summary) QuerySketch(c uint64) (sketch.Sketch, int, error) {
	if c > s.cfg.YMax {
		c = s.cfg.YMax
	}
	if s.s0.y > c {
		return s.query0(c), 0, nil
	}
	for i := 1; i <= s.lmax; i++ {
		if s.levels[i].y > c {
			return s.queryLevel(s.levels[i], c), i, nil
		}
	}
	return nil, -1, ErrNoLevel
}

// query0 composes the singleton sketches with y <= c ("summing over
// appropriate singletons": sketches here are linear, so composition and
// summation coincide).
func (s *Summary) query0(c uint64) sketch.Sketch {
	out := s.maker.New()
	for y, b := range s.s0.buckets {
		if y <= c {
			// Merging sketches from the same maker cannot fail.
			_ = out.Merge(b.sk)
		}
	}
	return out
}

// queryLevel composes the sketches of B1 — every stored bucket whose span
// lies inside [0, c]. Buckets straddling c (the set B2 of the analysis)
// are excluded; Lemma 4 bounds the mass they can hide.
func (s *Summary) queryLevel(lv *level, c uint64) sketch.Sketch {
	out := s.maker.New()
	// On a virgin level a sketchless bucket is the root, standing in for
	// the shared whole-stream sketch; on a materialized level it is an
	// untouched split sibling holding nothing at all.
	virgin := lv.idx >= s.virginFrom
	var inside func(b *bucket)
	inside = func(b *bucket) {
		if b == nil {
			return
		}
		if b.sk != nil {
			// Same-maker merges cannot fail.
			_ = out.Merge(b.sk)
		} else if virgin {
			_ = out.Merge(s.shared)
		}
		inside(b.left)
		inside(b.right)
	}
	var walk func(b *bucket)
	walk = func(b *bucket) {
		if b == nil || !b.iv.Intersects(c) {
			return
		}
		if b.iv.Within(c) {
			inside(b)
			return
		}
		walk(b.left)
		walk(b.right)
	}
	walk(lv.root)
	return out
}

// Space returns the stored size in counters/tuples — the space metric of
// the paper's figures.
func (s *Summary) Space() int64 {
	total := int64(s.shared.Size()) // one shared sketch for virgin levels
	for _, b := range s.s0.buckets {
		total += int64(b.sk.Size()) + 1
	}
	for i := 1; i <= s.lmax; i++ {
		total += levelSpace(s.levels[i].root)
	}
	return total
}

func levelSpace(b *bucket) int64 {
	if b == nil {
		return 0
	}
	var own int64 = 2
	if b.sk != nil {
		own += int64(b.sk.Size())
	}
	return own + levelSpace(b.left) + levelSpace(b.right)
}

// Buckets returns the number of stored buckets across all levels.
func (s *Summary) Buckets() int {
	n := len(s.s0.buckets)
	for i := 1; i <= s.lmax; i++ {
		n += s.levels[i].count
	}
	return n
}

// Watermark returns Y_ℓ for diagnostics; level 0 is the singleton level.
func (s *Summary) Watermark(level int) uint64 {
	if level == 0 {
		return s.s0.y
	}
	return s.levels[level].y
}

// Tuple is one stream element for batched insertion.
type Tuple struct {
	X, Y uint64
	W    int64
}

// AddBatch inserts a batch of tuples, the amortized update path of
// Lemma 9. The batch is sorted by y in place (zero weights normalize to
// 1), then processed one equal-y group at a time: each tuple is hashed
// once, each group descends to its leaf once per level, and the whole
// group's slot updates land before thresholds are re-checked. Relative to
// tuple-at-a-time Add this defers bucket closing to group boundaries —
// exactly the batched threshold checking Lemma 9's amortization describes
// — so the resulting tree can differ from sequential insertion while
// carrying the same guarantees. The batch is rejected up front (summary
// untouched) if any tuple is invalid.
func (s *Summary) AddBatch(batch []Tuple) error {
	for i := range batch {
		if batch[i].Y > s.cfg.YMax {
			return fmt.Errorf("core: y = %d exceeds YMax = %d", batch[i].Y, s.cfg.YMax)
		}
		if batch[i].W == 0 {
			batch[i].W = 1
		}
		if batch[i].W < 0 {
			return fmt.Errorf("core: weight must be positive, got %d", batch[i].W)
		}
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].Y < batch[j].Y })
	for start := 0; start < len(batch); {
		end := start + 1
		for end < len(batch) && batch[end].Y == batch[start].Y {
			end++
		}
		s.addGroup(batch[start:end])
		start = end
	}
	return nil
}

// addGroup inserts one equal-y run of a sorted batch. Mirrors AddWeighted,
// amortizing per-tuple work across the group: hashing happens once per
// tuple into a reused slab, leaf routing once per level per group.
func (s *Summary) addGroup(group []Tuple) {
	y := group[0].Y
	s.n += uint64(len(group))
	stride := 0
	if s.slotMaker != nil {
		stride = s.slotMaker.SlotWidth()
		s.slab = s.slab[:0]
		for i := range group {
			s.slab = s.slotMaker.Slots(group[i].X, s.slab)
		}
	}
	// groupAdd applies tuple gi of the group to the sketch behind (sk, sa).
	groupAdd := func(sk sketch.Sketch, sa sketch.SlotAdder, gi int) {
		if stride > 0 {
			sa.AddSlots(s.slab[gi*stride:(gi+1)*stride], group[gi].W)
			return
		}
		sk.Add(group[gi].X, group[gi].W)
	}

	// Singleton level: the group shares one bucket; the watermark check
	// and eviction happen once. (Evicting after the whole group lands is
	// state-identical to per-tuple eviction: the group grows the level by
	// at most one bucket, and whichever bucket the heap would have popped
	// mid-group is the same one popped here.)
	z := &s.s0
	if y < z.y {
		b := z.buckets[y]
		if b == nil {
			b = &bucket{iv: dyadic.Interval{L: y, R: y}}
			s.attachSketch(b)
			z.buckets[y] = b
			heapPushU64(&z.ys, y)
		}
		for gi := range group {
			groupAdd(b.sk, b.sa, gi)
		}
		s.evict0()
	}

	// Materialized levels: route to the leaf once, apply the group, then
	// re-check the closing threshold. The summed weight only feeds budget
	// decrements, so saturate instead of wrapping: a saturated budget
	// decrement simply forces the (conservative) threshold check.
	var groupW int64
	for gi := range group {
		if groupW += group[gi].W; groupW < 0 {
			groupW = math.MaxInt64
			break
		}
	}
	for i := 1; i < s.virginFrom; i++ {
		if y >= s.wm[i] {
			continue
		}
		lv := s.levels[i]
		b := s.cache[i]
		if !cacheServes(b, y) {
			if b = s.leafFor(lv, y); b == nil {
				continue
			}
		}
		for gi := range group {
			groupAdd(b.sk, b.sa, gi)
		}
		s.maybeClose(lv, b, groupW)
		s.cache[i] = b
		for lv.count > s.alpha {
			s.discardMax(lv)
		}
	}

	// Virgin levels: the shared whole-stream sketch absorbs the group,
	// then any level whose threshold it crossed materializes. A level
	// materialized here copies the shared sketch *including* this group,
	// which is why it must not also have gone through the loop above.
	if s.virginFrom <= s.lmax {
		for gi := range group {
			groupAdd(s.shared, s.sharedSA, gi)
		}
		s.checkVirgin(groupW)
	}
}

// heapPushU64 pushes y onto the max-heap h.
func heapPushU64(h *[]uint64, y uint64) {
	*h = append(*h, y)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] >= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

// heapPopU64 pops the maximum from h.
func heapPopU64(h *[]uint64) uint64 {
	top := (*h)[0]
	n := len(*h) - 1
	(*h)[0] = (*h)[n]
	*h = (*h)[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && (*h)[l] > (*h)[big] {
			big = l
		}
		if r < n && (*h)[r] > (*h)[big] {
			big = r
		}
		if big == i {
			break
		}
		(*h)[i], (*h)[big] = (*h)[big], (*h)[i]
		i = big
	}
	return top
}
