package core

import (
	"encoding"
	"encoding/binary"
	"errors"

	"github.com/streamagg/correlated/internal/dyadic"
	"github.com/streamagg/correlated/internal/sketch"
)

// Binary serialization of the correlated-aggregate summary, for
// checkpointing a stream processor or shipping a summary to a query node.
// Hash functions and configuration are NOT serialized: UnmarshalBinary
// must be called on a Summary freshly created by NewSummary with the same
// aggregate and Config (including Seed) as the source — the seeds
// deterministically regenerate the sketching functions.

// Version 2: the embedded sketch payloads changed hash-to-bucket mapping
// (see sketch.marshalVersion).
const coreMarshalVersion = 2

// ErrBadEncoding reports malformed or configuration-incompatible bytes.
var ErrBadEncoding = errors.New("core: bad or incompatible encoding")

type binarySketch interface {
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// MarshalBinary implements encoding.BinaryMarshaler. It fails if the
// aggregate's sketch type does not support serialization.
func (s *Summary) MarshalBinary() ([]byte, error) {
	buf := []byte{coreMarshalVersion}
	buf = binary.AppendUvarint(buf, s.n)
	buf = binary.AppendUvarint(buf, uint64(s.alpha))
	buf = binary.AppendUvarint(buf, uint64(s.lmax))
	buf = binary.AppendUvarint(buf, uint64(s.virginFrom))
	var err error
	if buf, err = appendSketch(buf, s.shared); err != nil {
		return nil, err
	}
	// Singleton level.
	buf = binary.AppendUvarint(buf, s.s0.y)
	buf = binary.AppendUvarint(buf, uint64(len(s.s0.buckets)))
	for y, b := range s.s0.buckets {
		buf = binary.AppendUvarint(buf, y)
		if buf, err = appendSketch(buf, b.sk); err != nil {
			return nil, err
		}
	}
	// Bucket-tree levels.
	for i := 1; i <= s.lmax; i++ {
		lv := s.levels[i]
		buf = binary.AppendUvarint(buf, lv.y)
		buf = binary.AppendUvarint(buf, uint64(lv.count))
		if buf, err = appendNode(buf, lv.root); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func appendSketch(buf []byte, sk sketch.Sketch) ([]byte, error) {
	bs, ok := sk.(binarySketch)
	if !ok {
		return nil, errors.New("core: sketch type does not support serialization")
	}
	payload, err := bs.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	return append(buf, payload...), nil
}

func (s *Summary) readSketch(data []byte) (sketch.Sketch, []byte, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 || uint64(len(data)-sz) < n {
		return nil, nil, ErrBadEncoding
	}
	sk := s.maker.New()
	bs, ok := sk.(binarySketch)
	if !ok {
		return nil, nil, errors.New("core: sketch type does not support serialization")
	}
	if err := bs.UnmarshalBinary(data[sz : sz+int(n)]); err != nil {
		return nil, nil, err
	}
	return sk, data[sz+int(n):], nil
}

// Node flags.
const (
	nodePresent = 1 << 0
	nodeClosed  = 1 << 1
	nodeHasSk   = 1 << 2
)

func appendNode(buf []byte, b *bucket) ([]byte, error) {
	if b == nil {
		return append(buf, 0), nil
	}
	flags := byte(nodePresent)
	if b.closed {
		flags |= nodeClosed
	}
	if b.sk != nil {
		flags |= nodeHasSk
	}
	buf = append(buf, flags)
	var err error
	if b.sk != nil {
		if buf, err = appendSketch(buf, b.sk); err != nil {
			return nil, err
		}
	}
	if buf, err = appendNode(buf, b.left); err != nil {
		return nil, err
	}
	return appendNode(buf, b.right)
}

func (s *Summary) readNode(data []byte, iv dyadic.Interval) (*bucket, []byte, error) {
	if len(data) < 1 {
		return nil, nil, ErrBadEncoding
	}
	flags := data[0]
	data = data[1:]
	if flags&nodePresent == 0 {
		return nil, data, nil
	}
	b := &bucket{iv: iv, closed: flags&nodeClosed != 0}
	var err error
	if flags&nodeHasSk != 0 {
		if b.sk, data, err = s.readSketch(data); err != nil {
			return nil, nil, err
		}
		b.sa = s.slotAdderOf(b.sk)
	}
	if !iv.Single() {
		lc, rc := iv.Children()
		if b.left, data, err = s.readNode(data, lc); err != nil {
			return nil, nil, err
		}
		if b.right, data, err = s.readNode(data, rc); err != nil {
			return nil, nil, err
		}
	} else {
		// Single-point intervals are always leaves; consume their two
		// nil child markers.
		for k := 0; k < 2; k++ {
			if len(data) < 1 || data[0] != 0 {
				return nil, nil, ErrBadEncoding
			}
			data = data[1:]
		}
	}
	return b, data, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The receiver must
// have been created by NewSummary with the same aggregate and Config
// (including Seed) that produced the bytes.
func (s *Summary) UnmarshalBinary(data []byte) error {
	if len(data) < 1 || data[0] != coreMarshalVersion {
		return ErrBadEncoding
	}
	data = data[1:]
	var vals [4]uint64
	for i := range vals {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return ErrBadEncoding
		}
		vals[i] = v
		data = data[n:]
	}
	if int(vals[1]) != s.alpha || int(vals[2]) != s.lmax {
		return ErrBadEncoding
	}
	s.n = vals[0]
	s.virginFrom = int(vals[3])
	s.sharedBudget = 0 // force a fresh materialization check
	var err error
	if s.shared, data, err = s.readSketch(data); err != nil {
		return err
	}
	s.sharedSA = s.slotAdderOf(s.shared)
	// Singleton level.
	y0, n := binary.Uvarint(data)
	if n <= 0 {
		return ErrBadEncoding
	}
	data = data[n:]
	cnt, n := binary.Uvarint(data)
	if n <= 0 {
		return ErrBadEncoding
	}
	data = data[n:]
	s.s0 = levelZero{buckets: make(map[uint64]*bucket, cnt), y: y0}
	for i := uint64(0); i < cnt; i++ {
		y, n := binary.Uvarint(data)
		if n <= 0 {
			return ErrBadEncoding
		}
		data = data[n:]
		var sk sketch.Sketch
		if sk, data, err = s.readSketch(data); err != nil {
			return err
		}
		s.s0.buckets[y] = &bucket{iv: dyadic.Interval{L: y, R: y}, sk: sk, sa: s.slotAdderOf(sk)}
		heapPushU64(&s.s0.ys, y)
	}
	// Bucket-tree levels.
	root := dyadic.Root(s.cfg.YMax)
	for i := 1; i <= s.lmax; i++ {
		lv := s.levels[i]
		yv, n := binary.Uvarint(data)
		if n <= 0 {
			return ErrBadEncoding
		}
		data = data[n:]
		cv, n := binary.Uvarint(data)
		if n <= 0 {
			return ErrBadEncoding
		}
		data = data[n:]
		lv.y = yv
		s.wm[i] = yv
		lv.count = int(cv)
		if lv.root, data, err = s.readNode(data, root); err != nil {
			return err
		}
		if lv.root == nil {
			return ErrBadEncoding
		}
		s.cache[i] = nil
	}
	if len(data) != 0 {
		return ErrBadEncoding
	}
	return nil
}
