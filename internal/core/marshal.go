package core

import (
	"encoding"
	"encoding/binary"
	"errors"
	"math"
	"slices"

	"github.com/streamagg/correlated/internal/dyadic"
	"github.com/streamagg/correlated/internal/sketch"
)

// Binary serialization of the correlated-aggregate summary, for
// checkpointing a stream processor or shipping a summary to a query node.
// Hash functions are NOT serialized: UnmarshalBinary must be called on a
// Summary freshly created by NewSummary with the same aggregate and
// Config (including Seed) as the source — the seeds deterministically
// regenerate the sketching functions. The configuration fields that
// determine compatibility (eps, delta, ymax, seed, strict-theory, plus
// the derived alpha and level count) ARE carried in the image and
// validated on decode, so a mismatched restore or merge fails with a
// typed error instead of silently combining incompatible hash functions.

// Version 3: a config-compatibility block follows the version byte.
// (Version 2 changed the embedded sketch payloads' hash-to-bucket
// mapping; see sketch.marshalVersion.)
const coreMarshalVersion = 3

// ErrBadEncoding reports malformed or configuration-incompatible bytes.
var ErrBadEncoding = errors.New("core: bad or incompatible encoding")

type binarySketch interface {
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// MarshalBinary implements encoding.BinaryMarshaler. It fails if the
// aggregate's sketch type does not support serialization.
func (s *Summary) MarshalBinary() ([]byte, error) {
	buf := []byte{coreMarshalVersion}
	// Config-compatibility block, validated by ParseMergeImage.
	buf = binary.AppendUvarint(buf, math.Float64bits(s.cfg.Eps))
	buf = binary.AppendUvarint(buf, math.Float64bits(s.cfg.Delta))
	buf = binary.AppendUvarint(buf, s.cfg.YMax)
	buf = binary.AppendUvarint(buf, s.cfg.Seed)
	var strict uint64
	if s.cfg.StrictTheory {
		strict = 1
	}
	buf = binary.AppendUvarint(buf, strict)
	buf = binary.AppendUvarint(buf, s.n)
	buf = binary.AppendUvarint(buf, uint64(s.alpha))
	buf = binary.AppendUvarint(buf, uint64(s.lmax))
	buf = binary.AppendUvarint(buf, uint64(s.virginFrom))
	var err error
	if buf, err = appendSketch(buf, s.shared); err != nil {
		return nil, err
	}
	// Singleton level, in ascending y order: the encoding is canonical
	// (a given state always marshals to the same bytes), which snapshot
	// round-trip contracts rely on.
	buf = binary.AppendUvarint(buf, s.s0.y)
	buf = binary.AppendUvarint(buf, uint64(len(s.s0.buckets)))
	ys := make([]uint64, 0, len(s.s0.buckets))
	for y := range s.s0.buckets {
		ys = append(ys, y)
	}
	slices.Sort(ys)
	for _, y := range ys {
		buf = binary.AppendUvarint(buf, y)
		if buf, err = appendSketch(buf, s.s0.buckets[y].sk); err != nil {
			return nil, err
		}
	}
	// Bucket-tree levels.
	for i := 1; i <= s.lmax; i++ {
		lv := s.levels[i]
		buf = binary.AppendUvarint(buf, lv.y)
		buf = binary.AppendUvarint(buf, uint64(lv.count))
		if buf, err = appendNode(buf, lv.root); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func appendSketch(buf []byte, sk sketch.Sketch) ([]byte, error) {
	bs, ok := sk.(binarySketch)
	if !ok {
		return nil, errors.New("core: sketch type does not support serialization")
	}
	payload, err := bs.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	return append(buf, payload...), nil
}

func (s *Summary) readSketch(data []byte) (sketch.Sketch, []byte, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 || uint64(len(data)-sz) < n {
		return nil, nil, ErrBadEncoding
	}
	sk := s.maker.New()
	bs, ok := sk.(binarySketch)
	if !ok {
		return nil, nil, errors.New("core: sketch type does not support serialization")
	}
	if err := bs.UnmarshalBinary(data[sz : sz+int(n)]); err != nil {
		return nil, nil, err
	}
	return sk, data[sz+int(n):], nil
}

// Node flags.
const (
	nodePresent = 1 << 0
	nodeClosed  = 1 << 1
	nodeHasSk   = 1 << 2
)

func appendNode(buf []byte, b *bucket) ([]byte, error) {
	if b == nil {
		return append(buf, 0), nil
	}
	flags := byte(nodePresent)
	if b.closed {
		flags |= nodeClosed
	}
	if b.sk != nil {
		flags |= nodeHasSk
	}
	buf = append(buf, flags)
	var err error
	if b.sk != nil {
		if buf, err = appendSketch(buf, b.sk); err != nil {
			return nil, err
		}
	}
	if buf, err = appendNode(buf, b.left); err != nil {
		return nil, err
	}
	return appendNode(buf, b.right)
}

func (s *Summary) readNode(data []byte, iv dyadic.Interval) (*bucket, []byte, error) {
	if len(data) < 1 {
		return nil, nil, ErrBadEncoding
	}
	flags := data[0]
	data = data[1:]
	if flags&nodePresent == 0 {
		return nil, data, nil
	}
	b := &bucket{iv: iv, closed: flags&nodeClosed != 0}
	var err error
	if flags&nodeHasSk != 0 {
		if b.sk, data, err = s.readSketch(data); err != nil {
			return nil, nil, err
		}
		b.sa = s.slotAdderOf(b.sk)
	}
	if !iv.Single() {
		lc, rc := iv.Children()
		if b.left, data, err = s.readNode(data, lc); err != nil {
			return nil, nil, err
		}
		if b.right, data, err = s.readNode(data, rc); err != nil {
			return nil, nil, err
		}
	} else {
		// Single-point intervals are always leaves; consume their two
		// nil child markers.
		for k := 0; k < 2; k++ {
			if len(data) < 1 || data[0] != 0 {
				return nil, nil, ErrBadEncoding
			}
			data = data[1:]
		}
	}
	return b, data, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The receiver must
// have been created by NewSummary with the same aggregate and Config
// (including Seed) that produced the bytes; the detectable mismatches
// (alpha, level count) are reported as typed incompatibility errors. The
// decode walk is shared with ParseMergeImage, and the receiver is left
// unchanged on error.
func (s *Summary) UnmarshalBinary(data []byte) error {
	img, err := s.ParseMergeImage(data)
	if err != nil {
		return err
	}
	img.applied = true
	s.install(img.in)
	return nil
}
