package core

import (
	"math"
	"testing"

	"github.com/streamagg/correlated/internal/hash"
)

func mustSummary(t *testing.T, agg Aggregate, cfg Config) *Summary {
	t.Helper()
	s, err := NewSummary(agg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Eps: 0, Delta: 0.1, YMax: 100},
		{Eps: 1.5, Delta: 0.1, YMax: 100},
		{Eps: 0.1, Delta: 0, YMax: 100},
		{Eps: 0.1, Delta: 1, YMax: 100},
		{Eps: 0.1, Delta: 0.1, YMax: 0},
	}
	for i, cfg := range bad {
		if _, err := NewSummary(CountAggregate(), cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

func TestYMaxRounding(t *testing.T) {
	s := mustSummary(t, CountAggregate(), Config{Eps: 0.2, Delta: 0.1, YMax: 1000000, Seed: 1})
	if got := s.Config().YMax; got != 1<<20-1 {
		t.Fatalf("YMax rounded to %d, want %d", got, 1<<20-1)
	}
}

func TestAddRejectsBadInput(t *testing.T) {
	s := mustSummary(t, CountAggregate(), Config{Eps: 0.2, Delta: 0.1, YMax: 127, Seed: 1})
	if err := s.AddWeighted(1, 500, 1); err == nil {
		t.Error("y > YMax accepted")
	}
	if err := s.AddWeighted(1, 5, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := s.AddWeighted(1, 5, -2); err == nil {
		t.Error("negative weight accepted")
	}
}

// TestCountExactSmallStream: with fewer distinct y values than alpha the
// singleton level answers every query exactly for the exact-counter
// aggregates.
func TestCountExactSmallStream(t *testing.T) {
	s := mustSummary(t, CountAggregate(), Config{Eps: 0.2, Delta: 0.1, YMax: 1023, Seed: 2})
	exact := make([]int64, 1024)
	rng := hash.New(5)
	for i := 0; i < 2000; i++ {
		y := rng.Uint64n(60) // few distinct y values: below alpha
		if err := s.Add(rng.Uint64n(100), y); err != nil {
			t.Fatal(err)
		}
		exact[y]++
	}
	var prefix int64
	for c := uint64(0); c < 70; c++ {
		prefix += exact[c]
		got, lvl, err := s.QueryWithLevel(c)
		if err != nil {
			t.Fatalf("query %d: %v", c, err)
		}
		if lvl != 0 {
			t.Fatalf("query %d served from level %d, want singleton level", c, lvl)
		}
		if got != float64(prefix) {
			t.Fatalf("count(y<=%d) = %v, want %d", c, got, prefix)
		}
	}
}

func TestSumExactSmallStream(t *testing.T) {
	s := mustSummary(t, SumAggregate(), Config{Eps: 0.2, Delta: 0.1, YMax: 255, MaxX: 1000, Seed: 3})
	var want float64
	for i := uint64(1); i <= 50; i++ {
		if err := s.Add(i*3, i); err != nil {
			t.Fatal(err)
		}
		want += float64(i * 3)
	}
	got, err := s.Query(255)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

// TestCountLargeStreamAccuracy exercises the full level structure: many
// distinct y values force singleton-level eviction, bucket closing,
// splitting, and discards; the exact-counter sketch isolates the
// structural error, which must stay within eps.
func TestCountLargeStreamAccuracy(t *testing.T) {
	const ymax = 1<<16 - 1
	const n = 300000
	s := mustSummary(t, CountAggregate(), Config{
		Eps: 0.1, Delta: 0.1, YMax: ymax, MaxStreamLen: n, Seed: 4,
	})
	rng := hash.New(7)
	ys := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		y := rng.Uint64n(ymax + 1)
		ys = append(ys, y)
		if err := s.Add(rng.Uint64n(1000), y); err != nil {
			t.Fatal(err)
		}
	}
	counts := make([]int64, ymax+1)
	for _, y := range ys {
		counts[y]++
	}
	var prefix int64
	cum := make([]int64, ymax+1)
	for y := uint64(0); y <= ymax; y++ {
		prefix += counts[y]
		cum[y] = prefix
	}
	for _, c := range []uint64{100, 1 << 10, 1 << 12, 1 << 14, 40000, ymax} {
		got, err := s.Query(c)
		if err != nil {
			t.Fatalf("query %d: %v", c, err)
		}
		want := float64(cum[c])
		if rel := math.Abs(got-want) / want; rel > 0.1 {
			t.Errorf("count(y<=%d) = %v, want %v (rel err %v)", c, got, want, rel)
		}
	}
}

// TestF2Accuracy checks the headline guarantee on a realistic stream.
func TestF2Accuracy(t *testing.T) {
	const ymax = 1<<16 - 1
	const n = 200000
	const eps = 0.2
	s := mustSummary(t, F2Aggregate(), Config{
		Eps: eps, Delta: 0.15, YMax: ymax, MaxStreamLen: n, Seed: 8,
	})
	rng := hash.New(11)
	type tup struct{ x, y uint64 }
	tuples := make([]tup, n)
	for i := range tuples {
		tuples[i] = tup{rng.Uint64n(5000), rng.Uint64n(ymax + 1)}
		if err := s.Add(tuples[i].x, tuples[i].y); err != nil {
			t.Fatal(err)
		}
	}
	exactF2 := func(c uint64) float64 {
		freq := map[uint64]int64{}
		for _, tp := range tuples {
			if tp.y <= c {
				freq[tp.x]++
			}
		}
		var f2 float64
		for _, v := range freq {
			f2 += float64(v) * float64(v)
		}
		return f2
	}
	bad := 0
	cuts := []uint64{1 << 12, 1 << 13, 1 << 14, 1 << 15, 50000, ymax}
	for _, c := range cuts {
		got, err := s.Query(c)
		if err != nil {
			t.Fatalf("query %d: %v", c, err)
		}
		want := exactF2(c)
		if rel := math.Abs(got-want) / want; rel > eps {
			t.Logf("F2(y<=%d) = %v, want %v (rel err %v)", c, got, want, rel)
			bad++
		}
	}
	// The paper reports errors "almost always" within eps for delta<0.2;
	// allow one of the six cutoffs to exceed it.
	if bad > 1 {
		t.Fatalf("%d of %d cutoffs exceeded eps", bad, len(cuts))
	}
}

// TestWatermarksDecrease checks eviction bookkeeping under a tiny capacity.
func TestWatermarksDecrease(t *testing.T) {
	s := mustSummary(t, CountAggregate(), Config{
		Eps: 0.2, Delta: 0.1, YMax: 1<<12 - 1, MaxStreamLen: 100000,
		Alpha: 16, Seed: 9,
	})
	rng := hash.New(13)
	for i := 0; i < 50000; i++ {
		if err := s.Add(1, rng.Uint64n(1<<12)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Watermark(0) == noWatermark {
		t.Error("singleton level never evicted despite tiny alpha")
	}
	if s.Watermark(1) == noWatermark {
		t.Error("level 1 never evicted despite tiny alpha")
	}
	// Counts must respect capacity.
	for i := 1; i <= s.Levels(); i++ {
		if s.levels[i].count > s.Alpha() {
			t.Fatalf("level %d holds %d buckets, alpha %d", i, s.levels[i].count, s.Alpha())
		}
	}
	// Queries below the top watermark still succeed, and large-c queries
	// are served by a higher level.
	if _, lvl, err := s.QueryWithLevel(1<<12 - 1); err != nil || lvl == 0 {
		t.Fatalf("large-c query: lvl=%d err=%v", lvl, err)
	}
}

// TestQueryFailsWhenStructureExhausted forces the FAIL branch of
// Algorithm 3 by capping the level count far below what the stream needs.
func TestQueryFailsWhenStructureExhausted(t *testing.T) {
	s := mustSummary(t, CountAggregate(), Config{
		Eps: 0.2, Delta: 0.1, YMax: 1<<10 - 1,
		MaxStreamLen: 4, // lmax = log2(4)+1 = 3: thresholds top out at 16
		Alpha:        8,
		Seed:         10,
	})
	rng := hash.New(17)
	for i := 0; i < 20000; i++ {
		if err := s.Add(rng.Uint64(), rng.Uint64n(1<<10)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Query(1<<10 - 1); err != ErrNoLevel {
		t.Fatalf("expected ErrNoLevel, got %v", err)
	}
	// Small cutoffs should still be answerable from low levels.
	if _, err := s.Query(0); err != nil {
		t.Fatalf("query(0) failed: %v", err)
	}
}

// TestCountMonotoneInCutoff: for the exact-counter aggregate the estimates
// should be (approximately) non-decreasing in c; gross violations indicate
// bucket bookkeeping bugs.
func TestCountMonotoneInCutoff(t *testing.T) {
	const ymax = 1<<14 - 1
	s := mustSummary(t, CountAggregate(), Config{
		Eps: 0.1, Delta: 0.1, YMax: ymax, MaxStreamLen: 100000, Seed: 11,
	})
	rng := hash.New(19)
	for i := 0; i < 100000; i++ {
		if err := s.Add(1, rng.Uint64n(ymax+1)); err != nil {
			t.Fatal(err)
		}
	}
	prev := -1.0
	for c := uint64(0); c <= ymax; c += 1 << 10 {
		got, err := s.Query(c)
		if err != nil {
			t.Fatalf("query %d: %v", c, err)
		}
		if got < prev*0.8 {
			t.Fatalf("estimate dropped from %v to %v at c=%d", prev, got, c)
		}
		prev = got
	}
}

func TestAddBatchMatchesSequentialForCount(t *testing.T) {
	cfg := Config{Eps: 0.1, Delta: 0.1, YMax: 1<<14 - 1, MaxStreamLen: 50000, Seed: 12}
	seq := mustSummary(t, CountAggregate(), cfg)
	bat := mustSummary(t, CountAggregate(), cfg)
	rng := hash.New(23)
	var batch []Tuple
	for i := 0; i < 50000; i++ {
		x, y := rng.Uint64n(100), rng.Uint64n(1<<14)
		if err := seq.Add(x, y); err != nil {
			t.Fatal(err)
		}
		batch = append(batch, Tuple{X: x, Y: y, W: 1})
	}
	if err := bat.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	for _, c := range []uint64{1 << 10, 1 << 12, 1<<14 - 1} {
		a, err1 := seq.Query(c)
		b, err2 := bat.Query(c)
		if err1 != nil || err2 != nil {
			t.Fatalf("queries failed: %v %v", err1, err2)
		}
		// Both are estimates of the same exact quantity; insertion
		// order may shift bucket boundaries, so allow eps slack.
		if b < a*0.8 || b > a*1.2 {
			t.Fatalf("batch estimate %v far from sequential %v at c=%d", b, a, c)
		}
	}
}

func TestSpaceAndBucketsBounded(t *testing.T) {
	s := mustSummary(t, CountAggregate(), Config{
		Eps: 0.2, Delta: 0.1, YMax: 1<<12 - 1, MaxStreamLen: 100000, Seed: 13,
	})
	rng := hash.New(29)
	for i := 0; i < 100000; i++ {
		if err := s.Add(rng.Uint64n(50), rng.Uint64n(1<<12)); err != nil {
			t.Fatal(err)
		}
	}
	maxBuckets := (s.Levels() + 1) * (s.Alpha() + 2)
	if got := s.Buckets(); got > maxBuckets {
		t.Fatalf("buckets = %d, exceeds bound %d", got, maxBuckets)
	}
	if s.Space() <= 0 {
		t.Fatal("space not positive")
	}
	if s.Count() != 100000 {
		t.Fatalf("count = %d", s.Count())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := Config{Eps: 0.2, Delta: 0.1, YMax: 1<<12 - 1, MaxStreamLen: 20000, Seed: 99}
	run := func() float64 {
		s := mustSummary(t, F2Aggregate(), cfg)
		rng := hash.New(31)
		for i := 0; i < 20000; i++ {
			if err := s.Add(rng.Uint64n(500), rng.Uint64n(1<<12)); err != nil {
				t.Fatal(err)
			}
		}
		v, err := s.Query(1 << 11)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced %v then %v", a, b)
	}
}

func TestStrictTheoryAlphaLarger(t *testing.T) {
	base := Config{Eps: 0.2, Delta: 0.1, YMax: 1<<10 - 1, MaxStreamLen: 1000, Seed: 1}
	practical := mustSummary(t, CountAggregate(), base)
	strictCfg := base
	strictCfg.StrictTheory = true
	strict := mustSummary(t, CountAggregate(), strictCfg)
	if strict.Alpha() <= practical.Alpha() {
		t.Fatalf("strict alpha %d not larger than practical %d", strict.Alpha(), practical.Alpha())
	}
}

func TestAggregateConstants(t *testing.T) {
	f2 := F2Aggregate()
	if f2.C1(4) != 16 {
		t.Errorf("F2 c1(4) = %v, want 16", f2.C1(4))
	}
	if got := f2.C2(0.18); math.Abs(got-0.0001) > 1e-12 {
		t.Errorf("F2 c2(0.18) = %v, want 1e-4", got)
	}
	f3 := FkAggregate(3)
	if f3.C1(2) != 8 {
		t.Errorf("F3 c1(2) = %v, want 8", f3.C1(2))
	}
	cnt := CountAggregate()
	if cnt.C1(7) != 7 || cnt.C2(0.3) != 0.3 {
		t.Error("COUNT constants wrong")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := []struct {
		in   uint64
		want int
	}{{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := log2Ceil(c.in); got != c.want {
			t.Errorf("log2Ceil(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}
