package core

import (
	"errors"
	"math"

	"github.com/streamagg/correlated/internal/dyadic"
)

// Config parameterizes a correlated-aggregate Summary.
type Config struct {
	// Eps is the target relative error ε ∈ (0, 1).
	Eps float64

	// Delta is the failure probability δ ∈ (0, 1).
	Delta float64

	// YMax is the largest y value that will ever be inserted. It is
	// rounded up to the next 2^β - 1 as the paper assumes.
	YMax uint64

	// MaxStreamLen is the bound n on the stream length used to size the
	// level count via the aggregate's FMaxLog2 (Condition I). Inserting
	// more than n items degrades the top level's no-fail guarantee but
	// nothing else.
	MaxStreamLen uint64

	// MaxX bounds item identifiers; only SUM uses it to bound fmax.
	// Zero means 2^32.
	MaxX uint64

	// Alpha overrides the per-level bucket capacity α. Zero derives it:
	// with StrictTheory, the proof value 64·c1(log ymax)/c2(ε/2);
	// otherwise the practical value ceil(AlphaScale·12·log2(ymax+1)/ε),
	// which mirrors the constants the paper's own experiments ran with
	// (see DESIGN.md, "theoretical vs practical constants").
	Alpha int

	// AlphaScale multiplies the derived practical α. Zero means 1.
	AlphaScale float64

	// StrictTheory selects the worst-case proof constants for α and the
	// per-bucket sketch failure probability. Only feasible for additive
	// aggregates (SUM/COUNT) where c2(ε) = ε; for Fk the proof constants
	// are astronomically conservative.
	StrictTheory bool

	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed uint64

	// NoSlotFastPath disables the hash-once slot fan-out even when the
	// aggregate's sketches support it, forcing every sketch update through
	// plain Add. The two paths produce bit-identical summaries; this knob
	// exists for equivalence tests and A/B diagnostics.
	NoSlotFastPath bool
}

// ErrNoLevel is returned by Query when no level can serve the cutoff
// (Algorithm 3 outputs FAIL). Under event G of the analysis this happens
// with probability at most δ.
var ErrNoLevel = errors.New("core: no level can answer the query (FAIL)")

// validate normalizes cfg and reports configuration errors.
func (cfg *Config) validate() error {
	if cfg.Eps <= 0 || cfg.Eps >= 1 {
		return errors.New("core: Eps must be in (0,1)")
	}
	if cfg.Delta <= 0 || cfg.Delta >= 1 {
		return errors.New("core: Delta must be in (0,1)")
	}
	if cfg.YMax == 0 {
		return errors.New("core: YMax must be positive")
	}
	cfg.YMax = dyadic.RoundYMax(cfg.YMax)
	if cfg.MaxStreamLen == 0 {
		cfg.MaxStreamLen = 1 << 32
	}
	if cfg.MaxX == 0 {
		cfg.MaxX = 1 << 32
	}
	if cfg.AlphaScale == 0 {
		cfg.AlphaScale = 1
	}
	return nil
}

// deriveAlpha computes the per-level bucket capacity for agg under cfg.
func deriveAlpha(cfg Config, agg Aggregate) int {
	if cfg.Alpha > 0 {
		return cfg.Alpha
	}
	logy := float64(log2Ceil(cfg.YMax + 1))
	if cfg.StrictTheory {
		a := 64 * agg.C1(int(logy)) / agg.C2(cfg.Eps/2)
		if a > 1<<30 {
			a = 1 << 30
		}
		return int(math.Ceil(a))
	}
	a := int(math.Ceil(cfg.AlphaScale * 8 * logy / cfg.Eps))
	if a < 64 {
		a = 64
	}
	return a
}
