// Package turnstile implements the paper's Section 4: correlated
// aggregation when stream items carry positive or negative integer
// weights.
//
// In this model a single pass provably requires linear space (Theorem 6,
// via a reduction from the GREATER-THAN communication problem), but a
// logarithmic number of passes suffices (Theorem 7, algorithm MULTIPASS).
// This package provides the replayable stream abstraction ("tape" — the
// paper's motivation is data resident on a sequentially-scannable medium),
// the MULTIPASS algorithm, and an executable form of the GREATER-THAN
// reduction that demonstrates both sides of the pass/space tradeoff.
package turnstile

// Record is one weighted stream element (x_i, y_i, z_i).
type Record struct {
	X, Y uint64
	W    int64
}

// Tape is a replayable weighted stream. MULTIPASS only ever scans it
// sequentially, matching the storage model the paper assumes.
type Tape struct {
	recs []Record
}

// NewTape wraps recs (not copied) as a tape.
func NewTape(recs []Record) *Tape { return &Tape{recs: recs} }

// Scan invokes fn for every record in order: one pass.
func (t *Tape) Scan(fn func(Record)) {
	for _, r := range t.recs {
		fn(r)
	}
}

// Len returns the stream length.
func (t *Tape) Len() int { return len(t.recs) }

// Append adds records to the tape.
func (t *Tape) Append(recs ...Record) { t.recs = append(t.recs, recs...) }
