package turnstile

import (
	"errors"
	"math"
	"sort"

	"github.com/streamagg/correlated/internal/dyadic"
	"github.com/streamagg/correlated/internal/hash"
	"github.com/streamagg/correlated/internal/sketch"
)

// MultipassF selects which member of the paper's Section 4 function class
// f_τ = Σ_j g(j(τ)) MULTIPASS estimates.
type MultipassF int

const (
	// MultipassF2 estimates g(k) = k²: the second moment of net weights.
	MultipassF2 MultipassF = iota
	// MultipassF1 estimates g(k) = |k|: the first moment of net weights,
	// via Indyk's Cauchy-projection sketch.
	MultipassF1
)

// MultipassConfig parameterizes the MULTIPASS algorithm (the paper's
// Algorithm 4) over net weights.
type MultipassConfig struct {
	// Eps is the target relative error ε.
	Eps float64
	// Delta is the failure probability δ; each whole-stream probe runs
	// at δ' = δ/(ymax+1).
	Delta float64
	// YMax bounds the y values; rounded up to 2^β − 1.
	YMax uint64
	// F selects the aggregate (default MultipassF2).
	F MultipassF
	// Seed fixes the random string of the underlying estimator A, which
	// Algorithm 4 requires to be identical across passes.
	Seed uint64
}

// MultipassResult is the output of MULTIPASS: the positions
// p(0), ..., p(r) where f first reaches each power of (1+ε). A position
// equal to YMax+1 means the corresponding power is never reached.
type MultipassResult struct {
	Eps    float64
	YMax   uint64
	P      []uint64
	Passes int
	Space  int64 // counters held concurrently during the widest pass
}

// ErrMonotone reports a use of MULTIPASS on data where the prefix
// aggregate decreased — see RunMultipass.
var ErrMonotone = errors.New("turnstile: prefix aggregate must be non-decreasing in y")

// RunMultipass executes Algorithm 4 for f = F2 of the net weights among
// records with y <= p. The correctness guarantee (as in the paper's
// Theorem 7 proof, which uses f_τ >= f_{p(i)} for τ >= p(i)) requires f_p
// to be non-decreasing in p; deletions are fine as long as they never pull
// a prefix aggregate below an earlier prefix (e.g. deletions co-located in
// y with their insertions, or the GREATER-THAN position encoding).
func RunMultipass(tape *Tape, cfg MultipassConfig) (*MultipassResult, error) {
	if cfg.Eps <= 0 || cfg.Eps >= 1 {
		return nil, errors.New("turnstile: Eps must be in (0,1)")
	}
	if cfg.Delta <= 0 || cfg.Delta >= 1 {
		return nil, errors.New("turnstile: Delta must be in (0,1)")
	}
	ymax := dyadic.RoundYMax(cfg.YMax)
	if ymax == 0 {
		return nil, errors.New("turnstile: YMax must be positive")
	}
	beta := 0
	for p := uint64(1); p-1 < ymax; p <<= 1 {
		beta++
	}

	// One-sided (ε, δ')-estimator: with a two-sided (1±υ) sketch at
	// υ = ε/3, est/(1−υ) lands in [f, (1+ε)f].
	upsilon := cfg.Eps / 3
	gamma := cfg.Delta / float64(ymax+1)
	var maker sketch.Maker
	switch cfg.F {
	case MultipassF2:
		maker = sketch.NewF2MakerError(upsilon, gamma, hash.New(cfg.Seed))
	case MultipassF1:
		maker = sketch.NewL1MakerError(upsilon, gamma, hash.New(cfg.Seed))
	default:
		return nil, errors.New("turnstile: unknown MultipassF")
	}
	oneSided := func(est float64) float64 { return est / (1 - upsilon) }

	res := &MultipassResult{Eps: cfg.Eps, YMax: ymax}

	// Pass 1: estimate f at ymax.
	top := maker.New()
	tape.Scan(func(r Record) { top.Add(r.X, r.W) })
	res.Passes++
	fTop := oneSided(top.Estimate())
	if fTop <= 0 {
		// The whole stream cancels: every threshold position is
		// "never reached".
		res.P = []uint64{ymax + 1}
		res.Space = int64(top.Size())
		return res, nil
	}
	r := int(math.Ceil(math.Log(fTop) / math.Log(1+cfg.Eps)))
	if r < 0 {
		r = 0
	}

	// Initialize every binary search at the midpoint (Algorithm 4
	// line 6) and run the searches in lock-step: each tree depth j is
	// one pass probing all r+1 current positions at once.
	p := make([]uint64, r+1)
	for i := range p {
		p[i] = (ymax - 1) / 2
	}
	thr := make([]float64, r+1)
	for i := range thr {
		thr[i] = math.Pow(1+cfg.Eps, float64(i))
	}
	skSize := maker.New().Size()
	for j := 2; j <= beta; j++ {
		off := (ymax + 1) >> uint(j)
		ests, segs := probePrefixes(tape, maker, p)
		res.Passes++
		if sp := int64((segs + 1) * skSize); sp > res.Space {
			res.Space = sp
		}
		for i := range p {
			if oneSided(ests[i]) > thr[i] {
				p[i] -= off
			} else {
				p[i] += off
			}
		}
	}
	// Final correction (Algorithm 4 line 11) needs one more probe at the
	// settled positions.
	ests, _ := probePrefixes(tape, maker, p)
	res.Passes++
	for i := range p {
		if oneSided(ests[i]) < thr[i] {
			p[i]++
		}
	}
	res.P = p
	return res, nil
}

// probePrefixes returns, for each position p[i], the sketch estimate of f
// over records with y <= p[i], using a single scan: records are bucketed
// into the segments between sorted positions, and prefix estimates are
// recovered by cumulative merging (the sketches are linear and share
// seeds, so merging segment sketches equals sketching the prefix).
func probePrefixes(tape *Tape, maker sketch.Maker, ps []uint64) ([]float64, int) {
	uniq := append([]uint64(nil), ps...)
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	n := 0
	for i, v := range uniq {
		if i == 0 || uniq[n-1] != v {
			uniq[n] = v
			n++
		}
	}
	uniq = uniq[:n]

	segs := make([]sketch.Sketch, n)
	for i := range segs {
		segs[i] = maker.New()
	}
	tape.Scan(func(r Record) {
		// First segment whose upper bound covers r.Y.
		idx := sort.Search(n, func(i int) bool { return uniq[i] >= r.Y })
		if idx < n {
			segs[idx].Add(r.X, r.W)
		}
	})
	prefixEst := make(map[uint64]float64, n)
	acc := maker.New()
	for i := 0; i < n; i++ {
		// Same-maker merges cannot fail.
		_ = acc.Merge(segs[i])
		prefixEst[uniq[i]] = acc.Estimate()
	}
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = prefixEst[p]
	}
	return out, n
}

// Query implements the QUERY-RESPONSE algorithm: the largest i with
// p(i) <= tau determines the answer (1+ε)^i; if no position qualifies the
// estimate is 0.
func (m *MultipassResult) Query(tau uint64) float64 {
	best := -1
	for i, pos := range m.P {
		if pos <= tau && i > best {
			best = i
		}
	}
	if best < 0 {
		return 0
	}
	return math.Pow(1+m.Eps, float64(best))
}

// FirstPositive returns the smallest y at which f becomes positive
// (position p(0)), or YMax+1 if f never does. The GREATER-THAN protocol
// reads the first differing bit off this value.
func (m *MultipassResult) FirstPositive() uint64 {
	if len(m.P) == 0 {
		return m.YMax + 1
	}
	return m.P[0]
}
