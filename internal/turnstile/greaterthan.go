package turnstile

import (
	"errors"

	"github.com/streamagg/correlated/internal/dyadic"
	"github.com/streamagg/correlated/internal/hash"
	"github.com/streamagg/correlated/internal/sketch"
)

// This file makes the paper's Theorem 6 lower bound executable. The
// theorem reduces the GREATER-THAN communication problem to correlated
// aggregation with ±1 weights: Alice streams her bits in, Bob streams his
// bits with negated weights, and the first y at which the correlated
// aggregate becomes positive is the first bit position where a and b
// differ — whoever holds a 1 there has the larger number.
//
// Since an impossibility result cannot itself be "run", the demonstration
// has three executable parts:
//
//  1. the reduction stream builders (both the paper's m = 2 identifier
//     encoding and a position encoding whose prefix aggregate is monotone,
//     which is what MULTIPASS's binary searches need);
//  2. SolveGreaterThan: the Theorem 7 side — MULTIPASS answers every
//     instance in O(log ymax) passes with polylog space;
//  3. SinglePassGT: a best-effort single-pass small-space protocol whose
//     accuracy collapses as its space budget shrinks below the number of
//     bits, which is exactly the behaviour Theorem 6 proves unavoidable.

// PaperGTStream builds the stream of Theorem 6's proof verbatim: Alice
// inserts (1+a_i, i) with weight +1, Bob inserts (1+b_i, i) with weight −1.
// Note f_τ under this encoding can return to zero after differing (bit
// patterns can cancel in counts), which is fine for the theorem's
// query-all-τ protocol but not for binary search.
func PaperGTStream(a, b []bool) *Tape {
	t := &Tape{}
	for i, bit := range a {
		t.Append(Record{X: 1 + b2u(bit), Y: uint64(i), W: 1})
	}
	for i, bit := range b {
		t.Append(Record{X: 1 + b2u(bit), Y: uint64(i), W: -1})
	}
	return t
}

// PositionGTStream builds the position-encoded variant: bit i of a value v
// becomes identifier 2i + v_i. Prefix mismatch counts can only grow with
// τ, so f_τ = 2·|{i <= τ : a_i != b_i}| is non-decreasing and MULTIPASS's
// binary searches apply.
func PositionGTStream(a, b []bool) *Tape {
	t := &Tape{}
	for i, bit := range a {
		t.Append(Record{X: 2*uint64(i) + b2u(bit), Y: uint64(i), W: 1})
	}
	for i, bit := range b {
		t.Append(Record{X: 2*uint64(i) + b2u(bit), Y: uint64(i), W: -1})
	}
	return t
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// GTResult is the outcome of a GREATER-THAN protocol run.
type GTResult struct {
	// Comparison: +1 if a > b, −1 if a < b, 0 if equal.
	Comparison int
	// FirstDiff is the first differing bit index (meaningful when
	// Comparison != 0).
	FirstDiff int
	// Passes and Space report the protocol's cost.
	Passes int
	Space  int64
}

// SolveGreaterThan runs the multipass protocol on the position-encoded
// stream. Bits are most-significant first, as in the paper's reduction.
// Only Bob's bits are consulted after the streaming phase, mirroring the
// communication protocol (Bob holds b and the final summary).
func SolveGreaterThan(a, b []bool, eps, delta float64, seed uint64) (*GTResult, error) {
	if len(a) != len(b) || len(a) == 0 {
		return nil, errors.New("turnstile: inputs must be equal-length and non-empty")
	}
	tape := PositionGTStream(a, b)
	res, err := RunMultipass(tape, MultipassConfig{
		Eps: eps, Delta: delta, YMax: uint64(len(a) - 1), Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	out := &GTResult{Passes: res.Passes, Space: res.Space}
	d := res.FirstPositive()
	if d > uint64(len(a)-1) {
		return out, nil // no mismatch: a == b
	}
	out.FirstDiff = int(d)
	if b[d] {
		out.Comparison = -1 // Bob's bit is 1 at the first difference
	} else {
		out.Comparison = 1
	}
	return out, nil
}

// SinglePassGT is the strawman the lower bound dooms: a single pass over
// the stream maintaining `budget` F2 sketches over equal-width y-blocks.
// With fewer blocks than bits it can only locate the first mismatch up to
// a block, and guesses the differing bit's position (and hence the
// comparison) within it. Theorem 6 says *every* single-pass small-space
// algorithm degrades like this; the strawman makes the degradation
// measurable.
func SinglePassGT(a, b []bool, budget int, seed uint64) *GTResult {
	n := len(a)
	if budget < 1 {
		budget = 1
	}
	if budget > n {
		budget = n
	}
	ymax := dyadic.RoundYMax(uint64(n - 1))
	maker := sketch.NewF2Maker(32, 3, hash.New(seed))
	blocks := make([]sketch.Sketch, budget)
	for i := range blocks {
		blocks[i] = maker.New()
	}
	blockOf := func(y uint64) int {
		bl := int(y * uint64(budget) / (ymax + 1))
		if bl >= budget {
			bl = budget - 1
		}
		return bl
	}
	// The single pass.
	tape := PositionGTStream(a, b)
	var space int64
	tape.Scan(func(r Record) { blocks[blockOf(r.Y)].Add(r.X, r.W) })
	for _, bsk := range blocks {
		space += int64(bsk.Size())
	}
	out := &GTResult{Passes: 1, Space: space}
	// Locate the first block with nonzero mass.
	first := -1
	for i, bsk := range blocks {
		if bsk.Estimate() > 0.5 {
			first = i
			break
		}
	}
	if first < 0 {
		return out // streams look identical
	}
	// The mismatch is somewhere in this block; a single-pass algorithm
	// without stored bits must guess which position (the sketch holds
	// the pair {2i+a_i, 2i+b_i} with opposite signs but cannot say which
	// identifier carried the +1). Guess the first position of the block
	// and read Bob's bit there — right only when the mismatch actually
	// is at the block head and parity luck cooperates.
	lo := (uint64(first)*(ymax+1) + uint64(budget) - 1) / uint64(budget)
	if lo >= uint64(n) {
		lo = uint64(n - 1)
	}
	out.FirstDiff = int(lo)
	if b[lo] {
		out.Comparison = -1
	} else {
		out.Comparison = 1
	}
	return out
}

// CompareBits returns the true comparison of two MSB-first bit strings.
func CompareBits(a, b []bool) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] {
				return 1
			}
			return -1
		}
	}
	return 0
}
