package turnstile

import (
	"testing"

	"github.com/streamagg/correlated/internal/exact"
	"github.com/streamagg/correlated/internal/hash"
)

func TestTapeScanOrder(t *testing.T) {
	tape := NewTape([]Record{{1, 1, 1}, {2, 2, -1}})
	tape.Append(Record{3, 3, 1})
	var seen []Record
	tape.Scan(func(r Record) { seen = append(seen, r) })
	if len(seen) != 3 || seen[0].X != 1 || seen[2].X != 3 {
		t.Fatalf("scan order wrong: %+v", seen)
	}
	if tape.Len() != 3 {
		t.Fatalf("len = %d", tape.Len())
	}
}

func TestMultipassConfigValidation(t *testing.T) {
	tape := NewTape([]Record{{1, 1, 1}})
	for _, cfg := range []MultipassConfig{
		{Eps: 0, Delta: 0.1, YMax: 7},
		{Eps: 0.1, Delta: 0, YMax: 7},
		{Eps: 0.1, Delta: 0.1, YMax: 0},
	} {
		if _, err := RunMultipass(tape, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestMultipassInsertOnly compares MULTIPASS answers against exact
// correlated F2 on an insert-only stream (trivially monotone prefixes).
func TestMultipassInsertOnly(t *testing.T) {
	const ymax = 1<<10 - 1
	const eps = 0.25
	rng := hash.New(3)
	tape := &Tape{}
	base := exact.New()
	for i := 0; i < 30000; i++ {
		x, y := rng.Uint64n(300), rng.Uint64n(ymax+1)
		tape.Append(Record{x, y, 1})
		base.Add(x, y)
	}
	res, err := RunMultipass(tape, MultipassConfig{Eps: eps, Delta: 0.05, YMax: ymax, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes < 3 {
		t.Fatalf("suspiciously few passes: %d", res.Passes)
	}
	for _, tau := range []uint64{1 << 6, 1 << 8, 1 << 9, ymax} {
		got := res.Query(tau)
		want := base.F2(tau)
		// Theorem 7 gives (1+eps)-approximation; the top threshold can
		// overshoot by one more (1+eps) factor (see RunMultipass).
		lo, hi := want/(1+eps)/(1+eps), want*(1+eps)*(1+eps)
		if got < lo || got > hi {
			t.Errorf("tau=%d: multipass %v, exact %v (allowed [%v, %v])", tau, got, want, lo, hi)
		}
	}
}

// TestMultipassWithDeletions uses deletions co-located in y with their
// insertions, keeping prefixes monotone: for each y, 5 items inserted and
// 2 of them deleted.
func TestMultipassWithDeletions(t *testing.T) {
	const ymax = 1<<8 - 1
	const eps = 0.3
	rng := hash.New(7)
	tape := &Tape{}
	base := exact.New()
	for y := uint64(0); y <= ymax; y++ {
		var xs []uint64
		for k := 0; k < 5; k++ {
			x := rng.Uint64n(100)
			xs = append(xs, x)
			tape.Append(Record{x, y, 1})
			base.AddWeighted(x, y, 1)
		}
		for k := 0; k < 2; k++ {
			tape.Append(Record{xs[k], y, -1})
			base.AddWeighted(xs[k], y, -1)
		}
	}
	res, err := RunMultipass(tape, MultipassConfig{Eps: eps, Delta: 0.05, YMax: ymax, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []uint64{50, 128, ymax} {
		got := res.Query(tau)
		want := base.F2(tau)
		lo, hi := want/(1+eps)/(1+eps), want*(1+eps)*(1+eps)
		if got < lo || got > hi {
			t.Errorf("tau=%d: multipass %v, exact %v", tau, got, want)
		}
	}
}

func TestMultipassFullyCancelledStream(t *testing.T) {
	tape := &Tape{}
	for i := uint64(0); i < 100; i++ {
		tape.Append(Record{i % 7, i % 64, 1})
		tape.Append(Record{i % 7, i % 64, -1})
	}
	res, err := RunMultipass(tape, MultipassConfig{Eps: 0.2, Delta: 0.1, YMax: 63, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Query(63); got != 0 {
		t.Fatalf("query on cancelled stream = %v, want 0", got)
	}
	if fp := res.FirstPositive(); fp <= 63 {
		t.Fatalf("FirstPositive = %d, want > ymax", fp)
	}
}

func TestMultipassPassCountLogarithmic(t *testing.T) {
	rng := hash.New(17)
	tape := &Tape{}
	for i := 0; i < 5000; i++ {
		tape.Append(Record{rng.Uint64n(50), rng.Uint64n(1 << 14), 1})
	}
	res, err := RunMultipass(tape, MultipassConfig{Eps: 0.3, Delta: 0.1, YMax: 1<<14 - 1, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	// beta = 14, passes = 1 + (beta-1) + 1 = 15.
	if res.Passes != 15 {
		t.Fatalf("passes = %d, want 15", res.Passes)
	}
	if res.Space <= 0 || res.Space > int64(tape.Len())*100 {
		t.Fatalf("space = %d implausible", res.Space)
	}
}

func randomBits(n int, rng *hash.RNG) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Uint64()&1 == 1
	}
	return out
}

func TestCompareBits(t *testing.T) {
	a := []bool{true, false, true}
	b := []bool{true, false, false}
	if CompareBits(a, b) != 1 || CompareBits(b, a) != -1 || CompareBits(a, a) != 0 {
		t.Fatal("CompareBits wrong")
	}
}

func TestGreaterThanRandomInstances(t *testing.T) {
	rng := hash.New(23)
	const bits = 64
	for trial := 0; trial < 25; trial++ {
		a := randomBits(bits, rng)
		b := randomBits(bits, rng)
		res, err := SolveGreaterThan(a, b, 0.3, 0.05, 1000+uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if want := CompareBits(a, b); res.Comparison != want {
			t.Fatalf("trial %d: comparison %d, want %d (firstdiff %d)",
				trial, res.Comparison, want, res.FirstDiff)
		}
	}
}

func TestGreaterThanEqualInputs(t *testing.T) {
	rng := hash.New(29)
	a := randomBits(128, rng)
	b := append([]bool(nil), a...)
	res, err := SolveGreaterThan(a, b, 0.3, 0.05, 31)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comparison != 0 {
		t.Fatalf("equal inputs compared as %d", res.Comparison)
	}
}

func TestGreaterThanFindsExactFirstDiff(t *testing.T) {
	// Identical prefixes, single difference at a known deep position.
	const bits = 256
	a := make([]bool, bits)
	b := make([]bool, bits)
	for i := range a {
		a[i] = i%3 == 0
		b[i] = a[i]
	}
	b[201] = !b[201]
	res, err := SolveGreaterThan(a, b, 0.3, 0.05, 37)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstDiff != 201 {
		t.Fatalf("first diff = %d, want 201", res.FirstDiff)
	}
	want := CompareBits(a, b)
	if res.Comparison != want {
		t.Fatalf("comparison %d, want %d", res.Comparison, want)
	}
}

func TestGreaterThanValidation(t *testing.T) {
	if _, err := SolveGreaterThan([]bool{true}, []bool{true, false}, 0.3, 0.1, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := SolveGreaterThan(nil, nil, 0.3, 0.1, 1); err == nil {
		t.Fatal("empty inputs accepted")
	}
}

// TestSinglePassDegradesMultipassDoesNot is the executable content of the
// Section 4 pass/space tradeoff: on instances whose first difference sits
// deep in a block, the single-pass strawman with budget << bits is wrong
// about the comparison roughly half the time, while MULTIPASS is always
// right with polylog space.
func TestSinglePassDegradesMultipassDoesNot(t *testing.T) {
	rng := hash.New(41)
	const bits = 256
	const trials = 40
	spWrong, mpWrong := 0, 0
	for trial := 0; trial < trials; trial++ {
		// Shared random prefix, difference at a random position d,
		// random suffixes: the single-pass block summary cannot tell
		// where in the block d falls.
		a := randomBits(bits, rng)
		b := append([]bool(nil), a...)
		d := 32 + int(rng.Uint64n(bits-64))
		b[d] = !b[d]
		for i := d + 1; i < bits; i++ {
			b[i] = rng.Uint64()&1 == 1
		}
		want := CompareBits(a, b)

		sp := SinglePassGT(a, b, 8, 500+uint64(trial))
		if sp.Comparison != want {
			spWrong++
		}
		mp, err := SolveGreaterThan(a, b, 0.3, 0.05, 900+uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if mp.Comparison != want {
			mpWrong++
		}
	}
	if mpWrong != 0 {
		t.Fatalf("multipass wrong on %d of %d instances", mpWrong, trials)
	}
	if spWrong < trials/5 {
		t.Fatalf("single-pass strawman wrong only %d of %d — not demonstrating the lower bound", spWrong, trials)
	}
}

func TestPaperGTStreamCancellation(t *testing.T) {
	// a = 10, b = 01: under the paper's m=2 encoding the prefix
	// aggregate returns to zero at tau=1 even though the strings differ
	// — the reason the position encoding exists for binary search.
	a := []bool{true, false}
	b := []bool{false, true}
	tape := PaperGTStream(a, b)
	base := exact.New()
	tape.Scan(func(r Record) { base.AddWeighted(r.X, r.Y, r.W) })
	if f := base.F2(0); f != 2 {
		t.Fatalf("f_0 = %v, want 2", f)
	}
	if f := base.F2(1); f != 0 {
		t.Fatalf("f_1 = %v, want 0 (cancellation)", f)
	}
	// The position encoding is monotone on the same instance.
	tape2 := PositionGTStream(a, b)
	base2 := exact.New()
	tape2.Scan(func(r Record) { base2.AddWeighted(r.X, r.Y, r.W) })
	if f0, f1 := base2.F2(0), base2.F2(1); !(f0 == 2 && f1 == 4) {
		t.Fatalf("position encoding f_0=%v f_1=%v, want 2 and 4", f0, f1)
	}
}

func TestMultipassSpaceSublinearInYMax(t *testing.T) {
	// Space should grow polylog with ymax, not linearly.
	run := func(ymax uint64) int64 {
		rng := hash.New(43)
		tape := &Tape{}
		for i := 0; i < 2000; i++ {
			tape.Append(Record{rng.Uint64n(100), rng.Uint64n(ymax + 1), 1})
		}
		res, err := RunMultipass(tape, MultipassConfig{Eps: 0.3, Delta: 0.1, YMax: ymax, Seed: 47})
		if err != nil {
			t.Fatal(err)
		}
		return res.Space
	}
	small, big := run(1<<8-1), run(1<<16-1)
	if big > small*8 {
		t.Fatalf("space grew from %d to %d over a 256x ymax increase", small, big)
	}
}

// TestMultipassF1 runs MULTIPASS with the Cauchy L1 estimator: correlated
// first moment of net weights on a turnstile stream.
func TestMultipassF1(t *testing.T) {
	const ymax = 1<<8 - 1
	const eps = 0.3
	rng := hash.New(53)
	tape := &Tape{}
	base := exact.New()
	for y := uint64(0); y <= ymax; y++ {
		for k := 0; k < 4; k++ {
			x := rng.Uint64n(200)
			tape.Append(Record{x, y, 2})
			base.AddWeighted(x, y, 2)
		}
		// Co-located deletion keeps prefixes monotone.
		x := rng.Uint64n(200)
		tape.Append(Record{x, y, -1})
		base.AddWeighted(x, y, -1)
	}
	res, err := RunMultipass(tape, MultipassConfig{
		Eps: eps, Delta: 0.05, YMax: ymax, F: MultipassF1, Seed: 59,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []uint64{63, 127, ymax} {
		got := res.Query(tau)
		want := base.Fk(tau, 1)
		lo, hi := want/(1+eps)/(1+eps), want*(1+eps)*(1+eps)
		if got < lo || got > hi {
			t.Errorf("tau=%d: F1 multipass %v, exact %v (allowed [%v, %v])", tau, got, want, lo, hi)
		}
	}
}

// TestMultipassUnknownF rejects invalid aggregate selectors.
func TestMultipassUnknownF(t *testing.T) {
	tape := NewTape([]Record{{1, 1, 1}})
	_, err := RunMultipass(tape, MultipassConfig{Eps: 0.2, Delta: 0.1, YMax: 7, F: MultipassF(99)})
	if err == nil {
		t.Fatal("unknown F accepted")
	}
}
