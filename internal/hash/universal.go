package hash

import "math/bits"

// mersenne61 is the Mersenne prime 2^61 - 1, the classical modulus for
// Carter–Wegman polynomial hashing on 64-bit words.
const mersenne61 = (uint64(1) << 61) - 1

// mulmod61 computes a*b mod 2^61-1 without overflow using a 128-bit
// intermediate product.
func mulmod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo = hi*8*2^61 + lo, and 2^61 ≡ 1 (mod p).
	res := (hi << 3) | (lo >> 61)
	res += lo & mersenne61
	if res >= mersenne61 {
		res -= mersenne61
	}
	return res
}

// addmod61 computes a+b mod 2^61-1 for a, b < 2^61-1.
func addmod61(a, b uint64) uint64 {
	s := a + b
	if s >= mersenne61 {
		s -= mersenne61
	}
	return s
}

// fold61 reduces an arbitrary 64-bit value into [0, 2^61-1).
func fold61(x uint64) uint64 {
	r := (x >> 61) + (x & mersenne61)
	if r >= mersenne61 {
		r -= mersenne61
	}
	return r
}

// Reduce61 maps a hash value h ∈ [0, 2^61-1) into [0, n) by Lemire's
// multiply-shift reduction: floor(h' · n / 2^64) with h' = h << 3 spreading
// the 61 significant bits across the full word. Unlike `h % n` it compiles
// to one multiplication and no division, and the bias is the same
// negligible n/2^61 the modulo had.
func Reduce61(h, n uint64) uint64 {
	hi, _ := bits.Mul64(h<<3, n)
	return hi
}

// FourWise is a 4-universal (4-wise independent) hash function
// h(x) = a3*x^3 + a2*x^2 + a1*x + a0 mod 2^61-1. Four-wise independence is
// what the AMS second-moment analysis requires of the sign function, and it
// is the degree used by Thorup–Zhang's tabulation-based scheme.
type FourWise struct {
	a [4]uint64
}

// NewFourWise draws a random degree-3 polynomial from rng.
func NewFourWise(rng *RNG) *FourWise {
	f := &FourWise{}
	for i := range f.a {
		f.a[i] = rng.Uint64n(mersenne61)
	}
	// Force the polynomial to be non-constant so the function cannot
	// degenerate (probability 2^-61 event, but determinism matters here).
	if f.a[1]|f.a[2]|f.a[3] == 0 {
		f.a[1] = 1
	}
	return f
}

// Hash evaluates the polynomial at x (folded into the field first) and
// returns a value in [0, 2^61-1).
func (f *FourWise) Hash(x uint64) uint64 {
	v := fold61(x)
	h := f.a[3]
	h = addmod61(mulmod61(h, v), f.a[2])
	h = addmod61(mulmod61(h, v), f.a[1])
	h = addmod61(mulmod61(h, v), f.a[0])
	return h
}

// Equal reports whether f and o compute the same function (identical
// polynomial coefficients). Summaries built from equal seeds draw equal
// hash functions, which is what makes their sketches mergeable.
func (f *FourWise) Equal(o *FourWise) bool {
	return o != nil && f.a == o.a
}

// Sign maps x to ±1 using the low bit of the 4-wise hash.
func (f *FourWise) Sign(x uint64) int64 {
	if f.Hash(x)&1 == 1 {
		return 1
	}
	return -1
}

// Bucket maps x to [0, w) via Reduce61; the bias is at most w/2^61,
// negligible for any practical table width.
func (f *FourWise) Bucket(x uint64, w int) int {
	return int(Reduce61(f.Hash(x), uint64(w)))
}

// TwoWise is a 2-universal multiply-shift style hash over the same field:
// h(x) = a*x + b mod 2^61-1.
type TwoWise struct {
	a, b uint64
}

// NewTwoWise draws a random 2-universal function from rng.
func NewTwoWise(rng *RNG) *TwoWise {
	a := rng.Uint64n(mersenne61-1) + 1 // a != 0
	b := rng.Uint64n(mersenne61)
	return &TwoWise{a: a, b: b}
}

// Equal reports whether t and o compute the same function (identical
// coefficients), for maker-equivalence checks before sketch merges.
func (t *TwoWise) Equal(o *TwoWise) bool {
	return o != nil && t.a == o.a && t.b == o.b
}

// Hash returns a value in [0, 2^61-1).
func (t *TwoWise) Hash(x uint64) uint64 {
	return addmod61(mulmod61(t.a, fold61(x)), t.b)
}

// Bucket maps x to [0, w).
func (t *TwoWise) Bucket(x uint64, w int) int {
	return int(Reduce61(t.Hash(x), uint64(w)))
}

// Tab64 is simple tabulation hashing on the 8 bytes of a 64-bit key:
// h(x) = T0[x&0xff] ^ T1[(x>>8)&0xff] ^ ... ^ T7[x>>56].
// Simple tabulation is 3-universal and behaves far better than that in
// practice (Pătraşcu–Thorup); it is the workhorse we use for sub-sampling
// decisions (distinct sampling, Indyk–Woodruff levels) because a hash costs
// eight table lookups and no multiplications.
type Tab64 struct {
	t [8][256]uint64
}

// NewTab64 fills the tables from rng.
func NewTab64(rng *RNG) *Tab64 {
	tb := &Tab64{}
	for i := 0; i < 8; i++ {
		for j := 0; j < 256; j++ {
			tb.t[i][j] = rng.Uint64()
		}
	}
	return tb
}

// Equal reports whether tb and o compute the same function (identical
// tables). Used to validate that sketches from independently constructed
// but equal-seeded makers may merge.
func (tb *Tab64) Equal(o *Tab64) bool {
	return o != nil && tb.t == o.t
}

// Hash returns a uniform 64-bit hash of x.
func (tb *Tab64) Hash(x uint64) uint64 {
	return tb.t[0][byte(x)] ^
		tb.t[1][byte(x>>8)] ^
		tb.t[2][byte(x>>16)] ^
		tb.t[3][byte(x>>24)] ^
		tb.t[4][byte(x>>32)] ^
		tb.t[5][byte(x>>40)] ^
		tb.t[6][byte(x>>48)] ^
		tb.t[7][byte(x>>56)]
}

// Unit returns the hash mapped into [0, 1), used for "h(x) <= 1/2^i"
// distinct-sampling tests.
func (tb *Tab64) Unit(x uint64) float64 {
	return float64(tb.Hash(x)>>11) / (1 << 53)
}

// Level returns the number of leading zeros of the hash, i.e. the deepest
// sub-sampling level that x belongs to: Pr[Level(x) >= j] = 2^-j.
func (tb *Tab64) Level(x uint64) int {
	return bits.LeadingZeros64(tb.Hash(x) | 1)
}
