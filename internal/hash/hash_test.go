package hash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("splitmix64 diverged at step %d", i)
		}
	}
}

func TestSplitMix64KnownVector(t *testing.T) {
	// Reference value for seed 0 from the published splitmix64 algorithm.
	s := NewSplitMix64(0)
	if got := s.Next(); got != 0xe220a8397b1dcdaf {
		t.Fatalf("splitmix64(0) first output = %#x, want 0xe220a8397b1dcdaf", got)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a := New(7)
	b := New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("rng diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("rngs with different seeds produced %d identical outputs", same)
	}
}

func TestRNGUint64nRange(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	r := New(5)
	c1 := r.Split()
	c2 := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split rngs produced %d identical outputs", same)
	}
}

func TestMulmod61(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0},
		{1, 1, 1},
		{mersenne61 - 1, 1, mersenne61 - 1},
		{mersenne61 - 1, mersenne61 - 1, 1}, // (-1)*(-1) = 1 mod p
		{2, 1 << 60, (uint64(1) << 61) % mersenne61},
	}
	for _, c := range cases {
		if got := mulmod61(c.a, c.b); got != c.want {
			t.Errorf("mulmod61(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMulmod61AgainstBigIntStyle(t *testing.T) {
	// Cross-check with a slow double-and-add implementation.
	slow := func(a, b uint64) uint64 {
		var acc uint64
		a %= mersenne61
		for b > 0 {
			if b&1 == 1 {
				acc = addmod61(acc, a)
			}
			a = addmod61(a, a)
			b >>= 1
		}
		return acc
	}
	r := New(13)
	for i := 0; i < 500; i++ {
		a := r.Uint64n(mersenne61)
		b := r.Uint64n(mersenne61)
		if fast, ref := mulmod61(a, b), slow(a, b); fast != ref {
			t.Fatalf("mulmod61(%d,%d) = %d, want %d", a, b, fast, ref)
		}
	}
}

func TestFourWiseSignBalance(t *testing.T) {
	f := NewFourWise(New(17))
	sum := int64(0)
	const n = 100000
	for x := uint64(0); x < n; x++ {
		sum += f.Sign(x)
	}
	// Expected |sum| ~ sqrt(n) ~ 316; allow 6 sigma.
	if math.Abs(float64(sum)) > 6*math.Sqrt(n) {
		t.Fatalf("sign sum = %d, too far from 0 for %d keys", sum, n)
	}
}

func TestFourWisePairwiseSignIndependence(t *testing.T) {
	// E[s(x)s(y)] should be ~0 for x != y; check over many pairs.
	f := NewFourWise(New(19))
	sum := int64(0)
	const n = 50000
	for x := uint64(0); x < n; x++ {
		sum += f.Sign(2*x) * f.Sign(2*x+1)
	}
	if math.Abs(float64(sum)) > 6*math.Sqrt(n) {
		t.Fatalf("pair sign correlation sum = %d over %d pairs", sum, n)
	}
}

func TestFourWiseBucketUniform(t *testing.T) {
	f := NewFourWise(New(23))
	const w = 64
	const n = 64 * 4000
	counts := make([]int, w)
	for x := uint64(0); x < n; x++ {
		counts[f.Bucket(x, w)]++
	}
	chi2 := 0.0
	exp := float64(n) / w
	for _, c := range counts {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	// df=63; mean 63, sd ~ 11.2; allow generous bound.
	if chi2 > 63+8*11.3 {
		t.Fatalf("chi2 = %v too large for uniform buckets", chi2)
	}
}

func TestTwoWiseBucketRange(t *testing.T) {
	h := NewTwoWise(New(29))
	for _, w := range []int{1, 2, 7, 64, 1001} {
		for x := uint64(0); x < 1000; x++ {
			if b := h.Bucket(x, w); b < 0 || b >= w {
				t.Fatalf("Bucket(%d,%d) = %d out of range", x, w, b)
			}
		}
	}
}

func TestTwoWiseCollisionRate(t *testing.T) {
	h := NewTwoWise(New(31))
	const w = 1024
	const n = 2048
	seen := make(map[int]int)
	for x := uint64(0); x < n; x++ {
		seen[h.Bucket(x, w)]++
	}
	// With n=2w the max load should be small; catch degenerate functions.
	for b, c := range seen {
		if c > 20 {
			t.Fatalf("bucket %d has load %d, function looks degenerate", b, c)
		}
	}
}

func TestTab64Deterministic(t *testing.T) {
	a := NewTab64(New(37))
	b := NewTab64(New(37))
	for x := uint64(0); x < 1000; x++ {
		if a.Hash(x*2654435761) != b.Hash(x*2654435761) {
			t.Fatalf("tab64 not deterministic at %d", x)
		}
	}
}

func TestTab64BitBalance(t *testing.T) {
	tb := NewTab64(New(41))
	const n = 100000
	var ones [64]int
	for x := uint64(0); x < n; x++ {
		h := tb.Hash(x)
		for b := 0; b < 64; b++ {
			if h>>(uint(b))&1 == 1 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		if math.Abs(float64(c)-n/2) > 6*math.Sqrt(n)/2 {
			t.Fatalf("bit %d set in %d of %d hashes, biased", b, c, n)
		}
	}
}

func TestTab64LevelGeometric(t *testing.T) {
	tb := NewTab64(New(43))
	const n = 1 << 18
	var counts [20]int
	for x := uint64(0); x < n; x++ {
		l := tb.Level(x)
		if l < len(counts) {
			counts[l]++
		}
	}
	// Pr[Level == j] = 2^-(j+1); check the first few levels.
	for j := 0; j < 6; j++ {
		exp := float64(n) / float64(uint64(2)<<uint(j))
		if math.Abs(float64(counts[j])-exp) > 6*math.Sqrt(exp) {
			t.Fatalf("level %d count %d, want ~%v", j, counts[j], exp)
		}
	}
}

func TestTab64UnitRange(t *testing.T) {
	tb := NewTab64(New(47))
	for x := uint64(0); x < 10000; x++ {
		u := tb.Unit(x)
		if u < 0 || u >= 1 {
			t.Fatalf("Unit(%d) = %v out of [0,1)", x, u)
		}
	}
}

func TestFold61Property(t *testing.T) {
	f := func(x uint64) bool {
		r := fold61(x)
		return r < mersenne61
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddmod61Property(t *testing.T) {
	r := New(53)
	f := func() bool {
		a := r.Uint64n(mersenne61)
		b := r.Uint64n(mersenne61)
		s := addmod61(a, b)
		return s < mersenne61 && s == (a+b)%mersenne61
	}
	for i := 0; i < 1000; i++ {
		if !f() {
			t.Fatal("addmod61 violated modular addition")
		}
	}
}

func TestFourWiseHashInField(t *testing.T) {
	fw := NewFourWise(New(59))
	f := func(x uint64) bool { return fw.Hash(x) < mersenne61 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkTab64Hash(b *testing.B) {
	tb := NewTab64(New(1))
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= tb.Hash(uint64(i))
	}
	_ = sink
}

func BenchmarkFourWiseHash(b *testing.B) {
	f := NewFourWise(New(1))
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= f.Hash(uint64(i))
	}
	_ = sink
}
