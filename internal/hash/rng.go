// Package hash provides the seeded pseudo-randomness and universal hash
// families used by every sketch in this repository.
//
// All randomness in the library flows through RNG so that experiments are
// reproducible bit-for-bit from a single seed. The hash families implemented
// here are the ones the paper's substrate algorithms call for: 4-universal
// polynomial hashing over a Mersenne prime (used by the AMS/tug-of-war and
// CountSketch sign functions, following Thorup–Zhang), and simple tabulation
// hashing (fast 3-universal hashing used for bucketing and sub-sampling).
package hash

// SplitMix64 is a tiny, high-quality PRNG used to seed larger generators and
// to fill hash tables. It is Sebastiano Vigna's splitmix64, which is the
// recommended seeder for the xoshiro family.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next pseudo-random 64-bit value.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; each goroutine should derive its own with Split.
type RNG struct {
	s [4]uint64
}

// New returns an RNG deterministically derived from seed.
func New(seed uint64) *RNG {
	sm := NewSplitMix64(seed)
	r := &RNG{}
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// xoshiro must not be seeded with the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a pseudo-random value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("hash: Uint64n with n == 0")
	}
	// Rejection sampling to avoid modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Float64 returns a pseudo-random value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split returns a new RNG whose stream is independent of (but
// deterministically derived from) the parent's current state.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa5a5a5a5a5a5a5a5)
}
