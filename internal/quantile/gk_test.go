package quantile

import (
	"math"
	"sort"
	"testing"

	"github.com/streamagg/correlated/internal/hash"
)

func TestNewValidation(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.5, 2} {
		if _, err := New(eps); err == nil {
			t.Errorf("eps=%v accepted", eps)
		}
	}
}

func TestEmptyQueryErrors(t *testing.T) {
	g, _ := New(0.01)
	if _, err := g.Query(0.5); err == nil {
		t.Fatal("query on empty summary did not error")
	}
}

func checkRanks(t *testing.T, g *GK, vals []uint64, eps float64) {
	t.Helper()
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	n := float64(len(vals))
	for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got, err := g.Query(phi)
		if err != nil {
			t.Fatalf("query %v: %v", phi, err)
		}
		// Rank of got in the sorted data.
		lo := sort.Search(len(vals), func(i int) bool { return vals[i] >= got })
		hi := sort.Search(len(vals), func(i int) bool { return vals[i] > got })
		target := phi * n
		// Accept if any rank occupied by `got` is within 2εn.
		if float64(hi) < target-2*eps*n || float64(lo) > target+2*eps*n {
			t.Errorf("phi=%v: value %d has rank [%d,%d], target %v±%v",
				phi, got, lo, hi, target, 2*eps*n)
		}
	}
}

func TestUniformRanks(t *testing.T) {
	const eps = 0.01
	g, _ := New(eps)
	rng := hash.New(5)
	vals := make([]uint64, 100000)
	for i := range vals {
		vals[i] = rng.Uint64n(1 << 30)
		g.Insert(vals[i])
	}
	checkRanks(t, g, vals, eps)
}

func TestSortedInsertRanks(t *testing.T) {
	const eps = 0.02
	g, _ := New(eps)
	vals := make([]uint64, 50000)
	for i := range vals {
		vals[i] = uint64(i)
		g.Insert(vals[i])
	}
	checkRanks(t, g, vals, eps)
}

func TestReverseSortedInsertRanks(t *testing.T) {
	const eps = 0.02
	g, _ := New(eps)
	vals := make([]uint64, 50000)
	for i := range vals {
		vals[i] = uint64(len(vals) - i)
		g.Insert(vals[i])
	}
	checkRanks(t, g, vals, eps)
}

func TestSkewedRanks(t *testing.T) {
	const eps = 0.02
	g, _ := New(eps)
	rng := hash.New(7)
	vals := make([]uint64, 80000)
	for i := range vals {
		// Exponential-ish skew.
		v := uint64(math.Exp(rng.Float64() * 15))
		vals[i] = v
		g.Insert(v)
	}
	checkRanks(t, g, vals, eps)
}

func TestSpaceSublinear(t *testing.T) {
	g, _ := New(0.01)
	rng := hash.New(9)
	for i := 0; i < 200000; i++ {
		g.Insert(rng.Uint64n(1 << 40))
	}
	if _, err := g.Median(); err != nil {
		t.Fatal(err)
	}
	if sp := g.Space(); sp > 20000 {
		t.Fatalf("GK space %d too large for eps=0.01 over 200k items", sp)
	}
	if g.Count() != 200000 {
		t.Fatalf("count = %d", g.Count())
	}
}

func TestDuplicatesHeavyValue(t *testing.T) {
	g, _ := New(0.02)
	for i := 0; i < 10000; i++ {
		g.Insert(500)
	}
	for i := 0; i < 100; i++ {
		g.Insert(uint64(i))
	}
	med, err := g.Median()
	if err != nil {
		t.Fatal(err)
	}
	if med != 500 {
		t.Fatalf("median = %d, want 500", med)
	}
}
