// Package quantile implements the Greenwald–Khanna ε-approximate quantile
// summary [21]. The paper's motivating drill-down scenario pairs a
// whole-stream quantile summary over the y dimension ("find the median
// flow size") with the correlated-aggregate sketch ("aggregate the flows
// above the median"); this package supplies the first half.
package quantile

import (
	"errors"
	"math"
	"sort"
)

// GK is a Greenwald–Khanna summary over uint64 values. A query for
// quantile φ returns a value whose rank is within εn of φn.
type GK struct {
	eps     float64
	n       uint64
	tuples  []gkTuple
	pending []uint64 // buffered inserts, merged in batches
}

type gkTuple struct {
	v     uint64
	g     uint64 // rank(v) - rank(prev) lower-bound gap
	delta uint64 // uncertainty
}

// New returns a GK summary with rank error εn.
func New(eps float64) (*GK, error) {
	if eps <= 0 || eps >= 1 {
		return nil, errors.New("quantile: eps must be in (0,1)")
	}
	return &GK{eps: eps}, nil
}

// Insert adds v to the summary.
func (g *GK) Insert(v uint64) {
	g.pending = append(g.pending, v)
	if len(g.pending) >= g.batchSize() {
		g.flush()
	}
}

func (g *GK) batchSize() int {
	b := int(1 / (2 * g.eps))
	if b < 16 {
		b = 16
	}
	return b
}

// flush merges pending values into the tuple list and compresses.
func (g *GK) flush() {
	if len(g.pending) == 0 {
		return
	}
	sort.Slice(g.pending, func(i, j int) bool { return g.pending[i] < g.pending[j] })
	for _, v := range g.pending {
		g.insertOne(v)
	}
	g.pending = g.pending[:0]
	g.compress()
}

func (g *GK) insertOne(v uint64) {
	g.n++
	idx := sort.Search(len(g.tuples), func(i int) bool { return g.tuples[i].v >= v })
	var delta uint64
	if idx > 0 && idx < len(g.tuples) {
		delta = uint64(math.Floor(2 * g.eps * float64(g.n)))
		if delta > 0 {
			delta--
		}
	}
	t := gkTuple{v: v, g: 1, delta: delta}
	g.tuples = append(g.tuples, gkTuple{})
	copy(g.tuples[idx+1:], g.tuples[idx:])
	g.tuples[idx] = t
}

// compress removes tuples whose bands allow merging, keeping the εn rank
// guarantee.
func (g *GK) compress() {
	if len(g.tuples) < 3 {
		return
	}
	thresh := uint64(math.Floor(2 * g.eps * float64(g.n)))
	out := g.tuples[:0]
	out = append(out, g.tuples[0])
	for i := 1; i < len(g.tuples); i++ {
		t := g.tuples[i]
		last := &out[len(out)-1]
		// Never merge into the final tuple's position prematurely;
		// keep max element intact by skipping merge for the last.
		if i < len(g.tuples)-1 && len(out) > 1 &&
			last.g+t.g+t.delta <= thresh {
			t.g += last.g
			out[len(out)-1] = t
		} else {
			out = append(out, t)
		}
	}
	g.tuples = out
}

// Count returns the number of inserted values.
func (g *GK) Count() uint64 { return g.n + uint64(len(g.pending)) }

// Query returns a value whose rank is within εn of phi·n. It returns an
// error on an empty summary.
func (g *GK) Query(phi float64) (uint64, error) {
	g.flush()
	if g.n == 0 {
		return 0, errors.New("quantile: empty summary")
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	target := phi * float64(g.n)
	bound := target + g.eps*float64(g.n)
	var rmin uint64
	for i, t := range g.tuples {
		rmin += t.g
		rmax := float64(rmin + t.delta)
		if rmax >= target && rmax <= bound+1 {
			return t.v, nil
		}
		if float64(rmin) > target && i > 0 {
			return g.tuples[i-1].v, nil
		}
	}
	return g.tuples[len(g.tuples)-1].v, nil
}

// Median is Query(0.5).
func (g *GK) Median() (uint64, error) { return g.Query(0.5) }

// Space returns the number of stored tuples.
func (g *GK) Space() int {
	return len(g.tuples) + len(g.pending)
}
