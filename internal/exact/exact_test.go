package exact

import (
	"math"
	"testing"
)

func buildSmall() *Baseline {
	b := New()
	// (x, y): x=1 at y 10,20; x=2 at y 10; x=3 at y 30.
	b.Add(1, 10)
	b.Add(1, 20)
	b.Add(2, 10)
	b.Add(3, 30)
	return b
}

func TestCount1(t *testing.T) {
	b := buildSmall()
	cases := []struct {
		c    uint64
		want float64
	}{{5, 0}, {10, 2}, {20, 3}, {30, 4}, {100, 4}}
	for _, cs := range cases {
		if got := b.Count1(cs.c); got != cs.want {
			t.Errorf("Count1(%d) = %v, want %v", cs.c, got, cs.want)
		}
	}
}

func TestF0(t *testing.T) {
	b := buildSmall()
	cases := []struct {
		c    uint64
		want float64
	}{{5, 0}, {10, 2}, {20, 2}, {30, 3}}
	for _, cs := range cases {
		if got := b.F0(cs.c); got != cs.want {
			t.Errorf("F0(%d) = %v, want %v", cs.c, got, cs.want)
		}
	}
}

func TestF2AndFk(t *testing.T) {
	b := buildSmall()
	// y<=20: f = {1:2, 2:1} → F2 = 5, F3 = 9.
	if got := b.F2(20); got != 5 {
		t.Errorf("F2(20) = %v, want 5", got)
	}
	if got := b.Fk(20, 3); got != 9 {
		t.Errorf("F3(20) = %v, want 9", got)
	}
}

func TestSum(t *testing.T) {
	b := buildSmall()
	if got := b.Sum(10); got != 3 { // 1 + 2
		t.Errorf("Sum(10) = %v, want 3", got)
	}
	if got := b.Sum(100); got != 7 { // 1+1+2+3
		t.Errorf("Sum(100) = %v, want 7", got)
	}
}

func TestNegativeWeights(t *testing.T) {
	b := New()
	b.AddWeighted(1, 10, 1)
	b.AddWeighted(1, 20, -1)
	// Net frequency of 1 at c=20 is zero: F0 = 0, F2 = 0.
	if got := b.F0(20); got != 0 {
		t.Errorf("F0 after cancel = %v, want 0", got)
	}
	if got := b.F2(20); got != 0 {
		t.Errorf("F2 after cancel = %v, want 0", got)
	}
	// Before the deletion takes effect (c=10) frequency is 1.
	if got := b.F2(10); got != 1 {
		t.Errorf("F2(10) = %v, want 1", got)
	}
}

func TestHeavyHitters(t *testing.T) {
	b := New()
	for i := 0; i < 100; i++ {
		b.Add(7, 50)
	}
	for x := uint64(100); x < 110; x++ {
		b.Add(x, 50)
	}
	hh := b.HeavyHitters(100, 0.5)
	if len(hh) != 1 || hh[7] != 100 {
		t.Fatalf("heavy hitters = %v, want {7:100}", hh)
	}
}

func TestRarity(t *testing.T) {
	b := New()
	b.Add(1, 10)
	b.Add(2, 10)
	b.Add(2, 20)
	if got := b.Rarity(10); got != 1.0 {
		t.Errorf("Rarity(10) = %v, want 1", got)
	}
	if got := b.Rarity(20); got != 0.5 {
		t.Errorf("Rarity(20) = %v, want 0.5", got)
	}
	if got := b.Rarity(5); got != 0 {
		t.Errorf("Rarity(5) = %v, want 0", got)
	}
}

func TestQuantileY(t *testing.T) {
	b := New()
	for y := uint64(0); y < 101; y++ {
		b.Add(1, y)
	}
	if got := b.QuantileY(0.5); got != 50 {
		t.Errorf("QuantileY(0.5) = %d, want 50", got)
	}
	if got := b.QuantileY(0); got != 0 {
		t.Errorf("QuantileY(0) = %d, want 0", got)
	}
	if got := b.QuantileY(1); got != 100 {
		t.Errorf("QuantileY(1) = %d, want 100", got)
	}
}

func TestInterleavedAddAndQuery(t *testing.T) {
	// Queries must stay correct when adds and queries interleave
	// (the sort-on-demand path).
	b := New()
	b.Add(1, 100)
	if b.Count1(100) != 1 {
		t.Fatal("first query wrong")
	}
	b.Add(2, 50)
	if b.Count1(60) != 1 {
		t.Fatal("query after re-add wrong")
	}
	if b.Count1(100) != 2 {
		t.Fatal("final query wrong")
	}
	if b.Space() != 2 || b.Count() != 2 {
		t.Fatal("space/count wrong")
	}
}

func TestFkFractional(t *testing.T) {
	b := New()
	for i := 0; i < 4; i++ {
		b.Add(1, 10)
	}
	// F_{1.5} of {1:4} = 4^1.5 = 8.
	if got := b.Fk(10, 1.5); math.Abs(got-8) > 1e-12 {
		t.Errorf("F1.5 = %v, want 8", got)
	}
}
