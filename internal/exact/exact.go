// Package exact is the "linear storage solution" the paper's experiments
// compare against: it stores every tuple and answers any correlated
// aggregate exactly. It is the ground truth for every accuracy experiment
// and the space baseline the sketches are measured against.
package exact

import (
	"math"
	"sort"
)

// Tuple is one stream element.
type Tuple struct {
	X, Y uint64
	W    int64
}

// Baseline stores the whole stream.
type Baseline struct {
	tuples []Tuple
	sorted bool
}

// New returns an empty baseline.
func New() *Baseline { return &Baseline{} }

// Add inserts (x, y) with weight 1.
func (b *Baseline) Add(x, y uint64) { b.AddWeighted(x, y, 1) }

// AddWeighted inserts (x, y) with the given (possibly negative) weight.
func (b *Baseline) AddWeighted(x, y uint64, w int64) {
	b.tuples = append(b.tuples, Tuple{x, y, w})
	b.sorted = false
}

// Space returns the number of stored tuples — linear in the stream, which
// is the point of the comparison.
func (b *Baseline) Space() int64 { return int64(len(b.tuples)) }

// Count returns the number of insertions.
func (b *Baseline) Count() uint64 { return uint64(len(b.tuples)) }

func (b *Baseline) ensureSorted() {
	if !b.sorted {
		sort.Slice(b.tuples, func(i, j int) bool { return b.tuples[i].Y < b.tuples[j].Y })
		b.sorted = true
	}
}

// prefix returns the tuples with y <= c.
func (b *Baseline) prefix(c uint64) []Tuple {
	b.ensureSorted()
	hi := sort.Search(len(b.tuples), func(i int) bool { return b.tuples[i].Y > c })
	return b.tuples[:hi]
}

// freqs returns the net frequency of each identifier among tuples y <= c.
func (b *Baseline) freqs(c uint64) map[uint64]int64 {
	f := make(map[uint64]int64)
	for _, t := range b.prefix(c) {
		f[t.X] += t.W
	}
	return f
}

// Count1 returns F1: the total weight of tuples with y <= c.
func (b *Baseline) Count1(c uint64) float64 {
	var s int64
	for _, t := range b.prefix(c) {
		s += t.W
	}
	return float64(s)
}

// Sum returns the weighted sum of x values of tuples with y <= c.
func (b *Baseline) Sum(c uint64) float64 {
	var s float64
	for _, t := range b.prefix(c) {
		s += float64(t.W) * float64(t.X)
	}
	return s
}

// F0 returns the number of identifiers with nonzero net frequency among
// tuples y <= c.
func (b *Baseline) F0(c uint64) float64 {
	n := 0
	for _, f := range b.freqs(c) {
		if f != 0 {
			n++
		}
	}
	return float64(n)
}

// Fk returns the k-th frequency moment sum |f_x|^k over y <= c.
func (b *Baseline) Fk(c uint64, k float64) float64 {
	var s float64
	for _, f := range b.freqs(c) {
		s += math.Pow(math.Abs(float64(f)), k)
	}
	return s
}

// F2 is Fk with k = 2.
func (b *Baseline) F2(c uint64) float64 { return b.Fk(c, 2) }

// F2Complement returns F2 over tuples with y >= c (the mirrored
// predicate direction).
func (b *Baseline) F2Complement(c uint64) float64 {
	f := make(map[uint64]int64)
	for _, t := range b.tuples {
		if t.Y >= c {
			f[t.X] += t.W
		}
	}
	var s float64
	for _, v := range f {
		s += float64(v) * float64(v)
	}
	return s
}

// HeavyHitters returns identifiers with f_x^2 >= phi * F2(c), with their
// selected frequencies, sorted by decreasing frequency.
func (b *Baseline) HeavyHitters(c uint64, phi float64) map[uint64]int64 {
	freqs := b.freqs(c)
	var f2 float64
	for _, f := range freqs {
		f2 += float64(f) * float64(f)
	}
	out := make(map[uint64]int64)
	for x, f := range freqs {
		if float64(f)*float64(f) >= phi*f2 {
			out[x] = f
		}
	}
	return out
}

// Rarity returns the fraction of distinct identifiers occurring exactly
// once among tuples with y <= c.
func (b *Baseline) Rarity(c uint64) float64 {
	freqs := b.freqs(c)
	if len(freqs) == 0 {
		return 0
	}
	ones := 0
	for _, f := range freqs {
		if f == 1 {
			ones++
		}
	}
	return float64(ones) / float64(len(freqs))
}

// QuantileY returns the value at rank phi of the y values (exact).
func (b *Baseline) QuantileY(phi float64) uint64 {
	if len(b.tuples) == 0 {
		return 0
	}
	b.ensureSorted()
	idx := int(phi * float64(len(b.tuples)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(b.tuples) {
		idx = len(b.tuples) - 1
	}
	return b.tuples[idx].Y
}
