// Package fault is a deterministic fault-injection layer for the
// storage path. The WAL (internal/wal) and the service snapshot writer
// reach the filesystem through the FS interface here instead of calling
// os directly; production wires the passthrough OS() implementation,
// tests and chaos harnesses wire an *Injector programmed with an error
// Plan — fail the Nth fsync, return ENOSPC once K bytes have been
// written, tear a write in half, inject latency — so the failure modes
// that real disks exhibit (fsyncgate-style sync errors, full volumes,
// torn tails per Pillai et al. OSDI'14) become reproducible unit-test
// inputs instead of production surprises.
//
// Determinism is the point: a Plan is a pure function of its rule list,
// its seed, and the sequence of filesystem operations the program
// performs, so a failing chaos run replays exactly from the plan string
// alone. Plans are also swappable at runtime (Injector.SetPlan), which
// is what lets corrd's -fault-plan flag and the /v1/fault admin
// endpoint drive an end-to-end smoke: inject ENOSPC, watch the daemon
// degrade, clear the plan, recover.
package fault

import (
	"io"
	"io/fs"
	"os"
)

// File is the slice of *os.File the storage layer uses. Everything an
// injector might want to fail or delay goes through it.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (fs.FileInfo, error)
	Name() string
}

// FS is the filesystem surface the WAL and snapshot writer consume.
// The method set mirrors the os package so the passthrough
// implementation is trivial and the call sites read unchanged.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Open(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	MkdirAll(path string, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// OS returns the passthrough FS backed by the real os package. It is
// stateless; the same value may be shared freely.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error) { return os.Open(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
