package fault

import (
	"io/fs"
	"math/rand"
	"os"
	"sync"
	"time"
)

// createFlag classifies OpenFile calls as "create" ops for rule matching.
const createFlag = os.O_CREATE

// Injector is an FS that evaluates a Plan on every operation before
// delegating to a base FS (usually OS()). It is safe for concurrent
// use, and the live plan can be swapped at any time with SetPlan —
// corrd's /v1/fault endpoint does exactly that, so a smoke script can
// fill the disk, watch the daemon degrade, then clear the plan and
// recover without a restart.
type Injector struct {
	base FS

	mu       sync.Mutex
	plan     *Plan
	rng      *rand.Rand
	counts   map[string]uint64 // per-op ordinals (1-based after increment)
	wrote    uint64            // cumulative bytes successfully written
	injected uint64            // total faults injected (errors, not delays)
}

// NewInjector wraps base (OS() if nil) with an initially empty plan.
func NewInjector(base FS) *Injector {
	if base == nil {
		base = OS()
	}
	return &Injector{
		base:   base,
		rng:    rand.New(rand.NewSource(1)),
		counts: make(map[string]uint64),
	}
}

// SetPlan installs a new plan (nil clears injection) and resets the op
// counters, byte budget, and RNG, so the same plan replays identically
// no matter what ran before it.
func (i *Injector) SetPlan(p *Plan) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.plan = p
	i.counts = make(map[string]uint64)
	i.wrote = 0
	seed := int64(1)
	if p != nil {
		seed = p.Seed
	}
	i.rng = rand.New(rand.NewSource(seed))
}

// Plan returns the live plan (nil when injection is off).
func (i *Injector) Plan() *Plan {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.plan
}

// Injected returns how many faults (errors, not delays) have fired.
func (i *Injector) Injected() uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.injected
}

// step evaluates the plan for one operation. n is the payload length
// for writes (0 otherwise). The returned decision's delay is slept by
// the caller outside the injector lock.
func (i *Injector) step(op, name string, n int) decision {
	i.mu.Lock()
	i.counts[op]++
	d := i.plan.eval(i.rng, op, name, i.counts[op], i.wrote, n)
	if d.err != nil {
		i.injected++
		if op == "write" && d.allow > 0 {
			i.wrote += uint64(d.allow)
		}
	} else if op == "write" {
		i.wrote += uint64(n)
	}
	i.mu.Unlock()
	return d
}

func (i *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	op := "open"
	if flag&createFlag != 0 {
		op = "create"
	}
	d := i.step(op, name, 0)
	sleep(d.delay)
	if d.err != nil {
		return nil, d.err
	}
	f, err := i.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, i: i, name: name}, nil
}

func (i *Injector) Open(name string) (File, error) {
	d := i.step("open", name, 0)
	sleep(d.delay)
	if d.err != nil {
		return nil, d.err
	}
	f, err := i.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, i: i, name: name}, nil
}

func (i *Injector) CreateTemp(dir, pattern string) (File, error) {
	d := i.step("create", dir+"/"+pattern, 0)
	sleep(d.delay)
	if d.err != nil {
		return nil, d.err
	}
	f, err := i.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, i: i, name: f.Name()}, nil
}

func (i *Injector) ReadDir(name string) ([]fs.DirEntry, error) { return i.base.ReadDir(name) }
func (i *Injector) ReadFile(name string) ([]byte, error)       { return i.base.ReadFile(name) }
func (i *Injector) MkdirAll(path string, perm fs.FileMode) error {
	return i.base.MkdirAll(path, perm)
}

func (i *Injector) Rename(oldpath, newpath string) error {
	d := i.step("rename", newpath, 0)
	sleep(d.delay)
	if d.err != nil {
		return d.err
	}
	return i.base.Rename(oldpath, newpath)
}

func (i *Injector) Remove(name string) error {
	d := i.step("remove", name, 0)
	sleep(d.delay)
	if d.err != nil {
		return d.err
	}
	return i.base.Remove(name)
}

// faultFile routes Write and Sync through the injector; reads, seeks,
// and metadata pass straight to the wrapped file.
type faultFile struct {
	File
	i    *Injector
	name string
}

func (f *faultFile) Write(p []byte) (int, error) {
	d := f.i.step("write", f.name, len(p))
	sleep(d.delay)
	if d.err != nil {
		// A failing write may still persist a prefix — the torn tail a
		// crashed disk leaves behind.
		n := 0
		if d.allow > 0 {
			if d.allow > len(p) {
				d.allow = len(p)
			}
			n, _ = f.File.Write(p[:d.allow])
		}
		return n, d.err
	}
	return f.File.Write(p)
}

func (f *faultFile) Truncate(size int64) error {
	d := f.i.step("truncate", f.name, 0)
	sleep(d.delay)
	if d.err != nil {
		return d.err
	}
	return f.File.Truncate(size)
}

func (f *faultFile) Sync() error {
	d := f.i.step("sync", f.name, 0)
	sleep(d.delay)
	if d.err != nil {
		return d.err
	}
	return f.File.Sync()
}

func sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}
