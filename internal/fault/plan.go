package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// Plan is a parsed fault plan: an ordered rule list plus the RNG seed
// that makes probabilistic rules replayable. The zero Plan injects
// nothing.
//
// The plan DSL is semicolon-separated rules:
//
//	rule := "seed" ':' int
//	      | op ['/' substr] ':' kind '@' spec ['=' duration]
//	op   := sync | write | create | open | rename | remove | truncate
//	kind := err | enospc | torn | slow
//	spec := N        one-shot: trigger on the Nth matching op (1-based)
//	      | N '+'    sticky: trigger on the Nth and every later op
//	      | 'p' F    probabilistic: trigger each op with probability F
//	      | K        (write:enospc only) cumulative byte budget: once K
//	                 bytes have been written, every write returns ENOSPC
//
// The optional '/substr' filters by file name (substring match), so a
// plan can target the WAL ("write/wal-") or the snapshot temp file
// ("rename/corrd.snap") independently. "slow" rules sleep for the
// '=duration' suffix and compose with error rules; error kinds pick the
// first matching rule. Examples:
//
//	sync:err@3              the 3rd fsync fails with EIO, once
//	sync:err@1+             every fsync fails (sticky-broken disk)
//	write:enospc@65536      the volume fills after 64 KiB of writes
//	write:torn@5            the 5th write persists only half its bytes
//	                        ("drop tail bytes on crash"), then errors
//	seed:42;write:slow@p0.1=5ms   10% of writes sleep 5 ms, replayably
type Plan struct {
	Seed  int64
	Rules []Rule
	src   string
}

// Rule is one parsed fault clause; see the Plan grammar.
type Rule struct {
	Op     string // sync | write | create | open | rename | remove
	Path   string // substring filter on the file name; "" matches all
	Kind   string // err | enospc | torn | slow
	Nth    uint64 // one-shot/sticky trigger ordinal (1-based); 0 if unused
	Sticky bool   // "N+": trigger on every op from the Nth on
	Bytes  uint64 // write:enospc cumulative byte budget
	Prob   float64
	Delay  time.Duration
}

// String returns the source text the plan was parsed from.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	return p.src
}

var validOps = map[string]bool{
	"sync": true, "write": true, "create": true,
	"open": true, "rename": true, "remove": true, "truncate": true,
}

// ParsePlan parses the DSL above. Empty input (or "off"/"none") parses
// to a nil plan, which injects nothing — that is how the /v1/fault
// endpoint clears a live plan.
func ParsePlan(s string) (*Plan, error) {
	src := strings.TrimSpace(s)
	switch src {
	case "", "off", "none":
		return nil, nil
	}
	p := &Plan{Seed: 1, src: src}
	for _, clause := range strings.Split(src, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(clause, "seed:"); ok {
			seed, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %v", rest, err)
			}
			p.Seed = seed
			continue
		}
		r, err := parseRule(clause)
		if err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, r)
	}
	return p, nil
}

func parseRule(clause string) (Rule, error) {
	var r Rule
	head, spec, ok := strings.Cut(clause, "@")
	if !ok {
		return r, fmt.Errorf("fault: rule %q: missing '@spec'", clause)
	}
	opPart, kind, ok := strings.Cut(head, ":")
	if !ok {
		return r, fmt.Errorf("fault: rule %q: missing ':kind'", clause)
	}
	r.Op, r.Path, _ = strings.Cut(opPart, "/")
	if !validOps[r.Op] {
		return r, fmt.Errorf("fault: rule %q: unknown op %q", clause, r.Op)
	}
	r.Kind = kind
	switch kind {
	case "err", "enospc", "torn", "slow":
	default:
		return r, fmt.Errorf("fault: rule %q: unknown kind %q", clause, kind)
	}
	if kind == "torn" && r.Op != "write" {
		return r, fmt.Errorf("fault: rule %q: torn applies to write only", clause)
	}
	if dur, rest, ok := cutSuffixDuration(spec); ok {
		r.Delay = dur
		spec = rest
	}
	if r.Kind == "slow" && r.Delay <= 0 {
		return r, fmt.Errorf("fault: rule %q: slow needs '=duration'", clause)
	}
	switch {
	case strings.HasPrefix(spec, "p"):
		prob, err := strconv.ParseFloat(spec[1:], 64)
		if err != nil || prob < 0 || prob > 1 {
			return r, fmt.Errorf("fault: rule %q: bad probability %q", clause, spec)
		}
		r.Prob = prob
	case r.Op == "write" && r.Kind == "enospc":
		n, err := strconv.ParseUint(spec, 10, 64)
		if err != nil {
			return r, fmt.Errorf("fault: rule %q: bad byte budget %q", clause, spec)
		}
		r.Bytes = n
	default:
		numeric := spec
		if rest, ok := strings.CutSuffix(spec, "+"); ok {
			r.Sticky = true
			numeric = rest
		}
		n, err := strconv.ParseUint(numeric, 10, 64)
		if err != nil || n == 0 {
			return r, fmt.Errorf("fault: rule %q: bad ordinal %q (want N>=1)", clause, spec)
		}
		r.Nth = n
	}
	return r, nil
}

// cutSuffixDuration splits "spec=duration" off a rule spec.
func cutSuffixDuration(spec string) (time.Duration, string, bool) {
	rest, durStr, ok := strings.Cut(spec, "=")
	if !ok {
		return 0, spec, false
	}
	d, err := time.ParseDuration(durStr)
	if err != nil || d < 0 {
		return 0, spec, false
	}
	return d, rest, true
}

// injected errors wrap the syscall errno so callers can use
// errors.Is(err, syscall.ENOSPC) and friends exactly as with real
// filesystem failures.
func injectedErr(op, name string, errno syscall.Errno) error {
	return fmt.Errorf("fault: injected %s failure on %s %s: %w", errno.Error(), op, name, errno)
}

// decision is the outcome of evaluating the plan for one operation.
type decision struct {
	delay time.Duration
	err   error
	// allow is the number of payload bytes a failing write may still
	// persist (the torn-tail prefix); -1 means not a write decision.
	allow int
}

// eval evaluates the plan for one op under the injector lock. count is
// the op's 1-based ordinal after increment; wrote is the cumulative
// write-byte total before this op; n is the payload length for writes.
func (p *Plan) eval(rng *rand.Rand, op, name string, count uint64, wrote uint64, n int) decision {
	d := decision{allow: -1}
	if p == nil {
		return d
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Op != op || (r.Path != "" && !strings.Contains(name, r.Path)) {
			continue
		}
		triggered := false
		switch {
		case r.Prob > 0:
			triggered = rng.Float64() < r.Prob
		case r.Bytes > 0 || (r.Kind == "enospc" && r.Op == "write" && r.Nth == 0):
			triggered = wrote+uint64(n) > r.Bytes
		case r.Sticky:
			triggered = count >= r.Nth
		default:
			triggered = count == r.Nth
		}
		if !triggered {
			continue
		}
		if r.Kind == "slow" {
			d.delay += r.Delay
			continue
		}
		if d.err != nil {
			continue // first error rule wins
		}
		d.delay += r.Delay
		switch r.Kind {
		case "enospc":
			d.err = injectedErr(op, name, syscall.ENOSPC)
			if r.Bytes > wrote { // budget partially left: torn tail
				d.allow = int(r.Bytes - wrote)
			} else {
				d.allow = 0
			}
		case "torn":
			d.err = injectedErr(op, name, syscall.EIO)
			d.allow = n / 2
		default: // err
			d.err = injectedErr(op, name, syscall.EIO)
			if op == "write" {
				d.allow = 0
			}
		}
	}
	return d
}
