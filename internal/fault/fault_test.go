package fault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestParsePlan(t *testing.T) {
	cases := []struct {
		in      string
		rules   int
		seed    int64
		wantErr bool
	}{
		{"", 0, 0, false},
		{"off", 0, 0, false},
		{"none", 0, 0, false},
		{"sync:err@3", 1, 1, false},
		{"sync:err@1+", 1, 1, false},
		{"write:enospc@65536", 1, 1, false},
		{"write:torn@5", 1, 1, false},
		{"seed:42;write:slow@p0.1=5ms", 1, 42, false},
		{"sync:err@3;rename/corrd.snap:err@1", 2, 1, false},
		{"sync:err", 0, 0, true},       // missing @spec
		{"sync@3", 0, 0, true},         // missing :kind
		{"chmod:err@1", 0, 0, true},    // unknown op
		{"sync:explode@1", 0, 0, true}, // unknown kind
		{"sync:err@0", 0, 0, true},     // ordinal must be >= 1
		{"sync:err@p1.5", 0, 0, true},  // probability out of range
		{"sync:slow@1", 0, 0, true},    // slow needs duration
		{"rename:torn@1", 0, 0, true},  // torn is write-only
		{"seed:zap", 0, 0, true},       // bad seed
	}
	for _, c := range cases {
		p, err := ParsePlan(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParsePlan(%q): want error, got %v", c.in, p)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", c.in, err)
			continue
		}
		if c.rules == 0 {
			if p != nil {
				t.Errorf("ParsePlan(%q): want nil plan, got %+v", c.in, p)
			}
			continue
		}
		if len(p.Rules) != c.rules || p.Seed != c.seed {
			t.Errorf("ParsePlan(%q): got %d rules seed %d, want %d/%d",
				c.in, len(p.Rules), p.Seed, c.rules, c.seed)
		}
		if p.String() != c.in {
			t.Errorf("ParsePlan(%q).String() = %q", c.in, p.String())
		}
	}
}

func mustPlan(t *testing.T, s string) *Plan {
	t.Helper()
	p, err := ParsePlan(s)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", s, err)
	}
	return p
}

func openForWrite(t *testing.T, fsys FS, name string) File {
	t.Helper()
	f, err := fsys.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	return f
}

func TestNthSyncFails(t *testing.T) {
	inj := NewInjector(OS())
	inj.SetPlan(mustPlan(t, "sync:err@2"))
	f := openForWrite(t, inj, filepath.Join(t.TempDir(), "f"))
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync 2: want EIO, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 3 (one-shot rule must clear): %v", err)
	}
	if got := inj.Injected(); got != 1 {
		t.Fatalf("Injected() = %d, want 1", got)
	}
}

func TestStickySyncFailure(t *testing.T) {
	inj := NewInjector(OS())
	inj.SetPlan(mustPlan(t, "sync:err@2+"))
	f := openForWrite(t, inj, filepath.Join(t.TempDir(), "f"))
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, syscall.EIO) {
			t.Fatalf("sticky sync %d: want EIO, got %v", i+2, err)
		}
	}
	// Clearing the plan restores the disk.
	inj.SetPlan(nil)
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after clear: %v", err)
	}
}

func TestENOSPCAfterBudgetWithTornTail(t *testing.T) {
	inj := NewInjector(OS())
	inj.SetPlan(mustPlan(t, "write:enospc@10"))
	path := filepath.Join(t.TempDir(), "f")
	f := openForWrite(t, inj, path)
	defer f.Close()
	if n, err := f.Write(make([]byte, 6)); err != nil || n != 6 {
		t.Fatalf("write 1: n=%d err=%v", n, err)
	}
	// 6 written of a 10-byte budget: this write tears after 4 bytes.
	n, err := f.Write(make([]byte, 6))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 2: want ENOSPC, got %v", err)
	}
	if n != 4 {
		t.Fatalf("write 2: torn prefix n=%d, want 4", n)
	}
	// Budget exhausted: nothing more lands.
	if n, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) || n != 0 {
		t.Fatalf("write 3: n=%d err=%v, want 0/ENOSPC", n, err)
	}
	if st, err := os.Stat(path); err != nil || st.Size() != 10 {
		t.Fatalf("on-disk size = %v (err %v), want 10", st, err)
	}
}

func TestTornWriteDropsTail(t *testing.T) {
	inj := NewInjector(OS())
	inj.SetPlan(mustPlan(t, "write:torn@1"))
	path := filepath.Join(t.TempDir(), "f")
	f := openForWrite(t, inj, path)
	defer f.Close()
	n, err := f.Write(make([]byte, 8))
	if !errors.Is(err, syscall.EIO) || n != 4 {
		t.Fatalf("torn write: n=%d err=%v, want 4/EIO", n, err)
	}
	if st, _ := os.Stat(path); st.Size() != 4 {
		t.Fatalf("on-disk size = %d, want 4 (tail dropped)", st.Size())
	}
}

func TestPathFilterTargetsOneFile(t *testing.T) {
	inj := NewInjector(OS())
	inj.SetPlan(mustPlan(t, "sync/wal-:err@1+"))
	dir := t.TempDir()
	walF := openForWrite(t, inj, filepath.Join(dir, "wal-0001.seg"))
	defer walF.Close()
	snapF := openForWrite(t, inj, filepath.Join(dir, "corrd.snap"))
	defer snapF.Close()
	if err := walF.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("wal sync: want EIO, got %v", err)
	}
	if err := snapF.Sync(); err != nil {
		t.Fatalf("snapshot sync must pass the filter: %v", err)
	}
}

func TestRenameAndCreateFaults(t *testing.T) {
	inj := NewInjector(OS())
	inj.SetPlan(mustPlan(t, "rename:err@1;create:err@2"))
	dir := t.TempDir()
	f := openForWrite(t, inj, filepath.Join(dir, "a")) // create #1: ok
	f.Close()
	if err := inj.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("rename: want EIO, got %v", err)
	}
	if _, err := inj.OpenFile(filepath.Join(dir, "c"), os.O_RDWR|os.O_CREATE, 0o644); !errors.Is(err, syscall.EIO) {
		t.Fatalf("create 2: want EIO, got %v", err)
	}
}

func TestProbabilisticRuleReplaysWithSeed(t *testing.T) {
	run := func() []bool {
		inj := NewInjector(OS())
		inj.SetPlan(mustPlan(t, "seed:7;sync:err@p0.5"))
		f := openForWrite(t, inj, filepath.Join(t.TempDir(), "f"))
		defer f.Close()
		var outcomes []bool
		for i := 0; i < 32; i++ {
			outcomes = append(outcomes, f.Sync() != nil)
		}
		return outcomes
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded plan diverged at op %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p0.5 rule fired %d/%d times; want a mix", fired, len(a))
	}
}

func TestSlowRuleInjectsLatency(t *testing.T) {
	inj := NewInjector(OS())
	inj.SetPlan(mustPlan(t, "sync:slow@1+=30ms"))
	f := openForWrite(t, inj, filepath.Join(t.TempDir(), "f"))
	defer f.Close()
	start := time.Now()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("sync returned in %v; want >= 30ms of injected latency", d)
	}
}

func TestSetPlanResetsCounters(t *testing.T) {
	inj := NewInjector(OS())
	inj.SetPlan(mustPlan(t, "sync:err@1"))
	f := openForWrite(t, inj, filepath.Join(t.TempDir(), "f"))
	defer f.Close()
	if err := f.Sync(); err == nil {
		t.Fatal("sync 1: want injected error")
	}
	inj.SetPlan(mustPlan(t, "sync:err@1"))
	if err := f.Sync(); err == nil {
		t.Fatal("after SetPlan, counters must reset: want injected error on first sync")
	}
}

func TestPassthroughWithNoPlan(t *testing.T) {
	inj := NewInjector(OS())
	path := filepath.Join(t.TempDir(), "f")
	f := openForWrite(t, inj, path)
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := inj.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
}
