package tupleio

// Keyed (multi-tenant) wire forms. A tenant key is an opaque short byte
// string naming one of the daemon's independent summaries; the empty
// key is the default tenant every legacy form implicitly addresses. On
// the wire a key travels as a uvarint length followed by the bytes,
// prefixed to the counted batch it scopes:
//
//	keyed batch   uvarint(len(tenant)) tenant  counted-batch
//
// The same prefix scopes WAL group-record members and stream frames in
// the keyed frame format (StreamFormatKeyed), so every tenant-tagged
// decode path in the system shares this one grammar — and the same
// hostile-input discipline as the rest of the codec: the length claim
// is checked against MaxTenantLen and against the bytes actually
// present before anything is sliced, and the decoded key aliases the
// input (no allocation; callers that keep it must copy).

import (
	"encoding/binary"
	"fmt"

	"github.com/streamagg/correlated/internal/core"
)

// MaxTenantLen bounds a tenant key's encoded length. It keeps hostile
// length claims cheap to reject, registry keys small, and the per-frame
// overhead of the keyed stream format bounded.
const MaxTenantLen = 128

// ValidateTenant checks a tenant key against the wire rules: at most
// MaxTenantLen bytes, no control bytes (URLs, log lines, and file names
// all carry tenant keys verbatim). The empty key — the default tenant —
// is valid.
func ValidateTenant(name []byte) error {
	if len(name) > MaxTenantLen {
		return fmt.Errorf("%w: tenant key is %d bytes, cap is %d", ErrBadStream, len(name), MaxTenantLen)
	}
	for i, b := range name {
		if b < 0x20 || b == 0x7f {
			return fmt.Errorf("%w: tenant key has control byte 0x%02x at %d", ErrBadStream, b, i)
		}
	}
	return nil
}

// AppendTenant appends the keyed prefix for tenant.
func AppendTenant(buf []byte, tenant string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(tenant)))
	return append(buf, tenant...)
}

// DecodeTenantPrefix parses a keyed prefix from the front of data and
// returns the key bytes (aliasing data — copy to keep) and the rest.
// The length claim is bounded by MaxTenantLen and by the bytes present
// before any slice is taken, and the key bytes themselves must pass
// ValidateTenant — the decode side enforces exactly what the encode
// side promises.
func DecodeTenantPrefix(data []byte) (tenant, rest []byte, err error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, data, fmt.Errorf("%w: bad tenant length header", ErrBadStream)
	}
	data = data[sz:]
	if n > MaxTenantLen {
		return nil, data, fmt.Errorf("%w: tenant key claims %d bytes, cap is %d", ErrBadStream, n, MaxTenantLen)
	}
	if n > uint64(len(data)) {
		return nil, data, fmt.Errorf("%w: tenant key claims %d bytes, %d remain", ErrBadStream, n, len(data))
	}
	tenant = data[:n]
	if err := ValidateTenant(tenant); err != nil {
		return nil, data, err
	}
	return tenant, data[n:], nil
}

// AppendKeyedBatch appends a tenant-scoped counted batch: the keyed
// prefix, then exactly what AppendCountedBatch writes. This is the
// payload of one keyed stream frame and of one member of a keyed WAL
// group record.
func AppendKeyedBatch(buf []byte, tenant string, batch []core.Tuple) []byte {
	buf = AppendTenant(buf, tenant)
	return AppendCountedBatch(buf, batch)
}

// DecodeKeyedPrefix parses one keyed batch from the front of data:
// the tenant key (aliasing data) and the counted batch, returning the
// remaining bytes so keyed WAL group members decode member by member
// like their unkeyed counterparts.
func DecodeKeyedPrefix(dst []core.Tuple, data []byte) (tenant []byte, batch []core.Tuple, rest []byte, err error) {
	tenant, data, err = DecodeTenantPrefix(data)
	if err != nil {
		return nil, dst[:0], data, err
	}
	batch, rest, err = DecodeCountedPrefix(dst, data)
	return tenant, batch, rest, err
}

// DecodeKeyed parses a complete keyed batch (one keyed stream frame's
// payload): tenant prefix plus counted batch, with trailing bytes an
// error exactly as in DecodeCounted.
func DecodeKeyed(dst []core.Tuple, data []byte) (tenant []byte, batch []core.Tuple, err error) {
	tenant, batch, rest, err := DecodeKeyedPrefix(dst, data)
	if err != nil {
		return nil, batch, err
	}
	if len(rest) != 0 {
		return nil, batch[:0], fmt.Errorf("%w: %d trailing bytes after the keyed batch", ErrBadStream, len(rest))
	}
	return tenant, batch, nil
}
