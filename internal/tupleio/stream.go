package tupleio

// Stream wire format: the persistent length-framed ingest transport the
// corrd service serves on -stream-addr. One connection carries, in
// order: a fixed-size client hello, a fixed-size server reply, and then
// client frames pumped back-to-back while the server returns fixed-size
// acks asynchronously on the same connection — the client pipelines
// many frames ahead of the acks instead of paying a round trip per
// batch the way the HTTP path does.
//
//	hello   "CST1" version format reserved[2]            8 bytes
//	reply   "cst1" status  version maxFrame:uint32 LE   10 bytes
//	frame   length:uint32 LE  seq:uint64 LE  payload    12 + length bytes
//	ack     seq:uint64 LE  lsn:uint64 LE  status        17 bytes
//
// A frame's payload is one counted tuple batch (AppendCountedBatch):
// the same bytes the WAL logs, so the server's stream decode and its
// replay path share one grammar. Frame sequence numbers start at 1 and
// increment by 1 per connection; the server closes the connection on a
// gap (the sender is desynchronized, so nothing later can be trusted).
// Every decode-side allocation is bounded before it happens: the reply
// advertises the server's frame cap, FrameReader rejects a header
// claiming more than its cap before reading (or allocating) a single
// payload byte, and the payload's own count header is then bounded by
// DecodeCounted exactly as on the HTTP path — the adversarial-header
// discipline that caught the hostile-allocation DoS bugs in the merge
// image decoders.
//
// Acks carry (client seq, group LSN, status): the LSN of the WAL group
// record the frame's batch rode in (0 without a WAL), and a status from
// the Ack* constants. Ack order equals frame order, so a client needs
// no reorder buffer — the ack stream is the frame stream's echo.

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Stream handshake constants. The magic pins the protocol and its
// byte order; the version gates incompatible grammar changes.
const (
	// StreamVersion is the protocol version this codec speaks.
	StreamVersion = 1
	// StreamFormatCounted says frame payloads are counted tuple
	// batches (AppendCountedBatch), all addressed to the server's
	// default tenant.
	StreamFormatCounted = 1
	// StreamFormatKeyed says frame payloads are keyed batches
	// (AppendKeyedBatch): a tenant prefix then the counted batch, so
	// one connection can feed any number of the daemon's tenants.
	StreamFormatKeyed = 2

	// HelloSize, HelloReplySize, FrameHeaderSize, and AckSize are the
	// fixed wire sizes; readers use them to size scratch buffers once
	// per connection.
	HelloSize       = 8
	HelloReplySize  = 10
	FrameHeaderSize = 12
	AckSize         = 17
)

// streamMagic opens the client hello; replyMagic opens the server
// reply (distinct, so a misdirected client cannot mistake its own
// hello echoed back for a server).
var (
	streamMagic = [4]byte{'C', 'S', 'T', '1'}
	replyMagic  = [4]byte{'c', 's', 't', '1'}
)

// Hello reply status codes.
const (
	// HelloOK accepts the stream; frames may follow.
	HelloOK uint8 = 0
	// HelloBadVersion rejects an unsupported protocol version.
	HelloBadVersion uint8 = 1
	// HelloBadFormat rejects an unsupported payload format.
	HelloBadFormat uint8 = 2
)

// Ack status codes: the per-frame outcome, mirroring the HTTP ingest
// handler's error classes.
const (
	// AckOK: the frame's batch is applied and (with a WAL) durable
	// behind the group fsync its LSN names.
	AckOK uint8 = 0
	// AckInvalid: the payload was rejected — malformed counted batch,
	// or the engine's synchronous validation (y bound, weight) refused
	// it. The sender's error; the connection stays usable.
	AckInvalid uint8 = 1
	// AckEngine: the commit group's engine flush failed; the frame is
	// not acknowledged as applied.
	AckEngine uint8 = 2
	// AckWAL: the engine applied the batch but the WAL append failed —
	// the write is not durable.
	AckWAL uint8 = 3
	// AckShutdown: the server is draining; the frame was not applied.
	// Re-send on a new connection.
	AckShutdown uint8 = 4
	// AckTenant: the frame named a tenant the server refused to create
	// (tenant-count or memory cap). The connection stays usable; frames
	// for existing tenants keep committing.
	AckTenant uint8 = 5

	// AckReadOnly (6) lives in repl.go with the replication grammar.

	// AckDegraded: the server is in degraded (read-only) mode — its
	// durability path is broken and it refuses writes until recovery.
	// The connection stays usable: reads keep working elsewhere, and the
	// sender may re-send the frame after the server recovers.
	AckDegraded uint8 = 7
	// AckBusy: the commit-pipeline queue is full and the frame was shed
	// before being applied. Transient; the sender should back off and
	// re-send on the same connection.
	AckBusy uint8 = 8
)

// AppendHello appends the client hello for the given payload format.
func AppendHello(buf []byte, format uint8) []byte {
	buf = append(buf, streamMagic[:]...)
	return append(buf, StreamVersion, format, 0, 0)
}

// ParseHello validates a client hello and returns its version and
// format bytes. The caller decides whether it supports them; only the
// magic (and size) are grounds for rejection here.
func ParseHello(b []byte) (version, format uint8, err error) {
	if len(b) != HelloSize {
		return 0, 0, fmt.Errorf("%w: hello is %d bytes, want %d", ErrBadStream, len(b), HelloSize)
	}
	if [4]byte(b[:4]) != streamMagic {
		return 0, 0, fmt.Errorf("%w: bad hello magic %q", ErrBadStream, b[:4])
	}
	return b[4], b[5], nil
}

// AppendHelloReply appends the server's hello reply: a status from the
// Hello* constants and, when accepting, the largest frame payload the
// server will read.
func AppendHelloReply(buf []byte, status uint8, maxFrame uint32) []byte {
	buf = append(buf, replyMagic[:]...)
	buf = append(buf, status, StreamVersion)
	return binary.LittleEndian.AppendUint32(buf, maxFrame)
}

// ParseHelloReply validates a server reply and returns its status and
// advertised frame cap.
func ParseHelloReply(b []byte) (status uint8, maxFrame uint32, err error) {
	if len(b) != HelloReplySize {
		return 0, 0, fmt.Errorf("%w: hello reply is %d bytes, want %d", ErrBadStream, len(b), HelloReplySize)
	}
	if [4]byte(b[:4]) != replyMagic {
		return 0, 0, fmt.Errorf("%w: bad hello reply magic %q", ErrBadStream, b[:4])
	}
	if b[5] != StreamVersion {
		return 0, 0, fmt.Errorf("%w: server speaks stream version %d, client %d", ErrBadStream, b[5], StreamVersion)
	}
	return b[4], binary.LittleEndian.Uint32(b[6:10]), nil
}

// AppendFrameHeader appends one frame header; the caller appends (or
// writes) the length payload bytes right after it.
func AppendFrameHeader(buf []byte, seq uint64, length uint32) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, length)
	return binary.LittleEndian.AppendUint64(buf, seq)
}

// AppendAck appends one fixed-size ack record.
func AppendAck(buf []byte, seq, lsn uint64, status uint8) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	return append(buf, status)
}

// ParseAck decodes one ack record.
func ParseAck(b []byte) (seq, lsn uint64, status uint8, err error) {
	if len(b) != AckSize {
		return 0, 0, 0, fmt.Errorf("%w: ack is %d bytes, want %d", ErrBadStream, len(b), AckSize)
	}
	return binary.LittleEndian.Uint64(b[0:8]), binary.LittleEndian.Uint64(b[8:16]), b[16], nil
}

// FrameReader reads stream frames from r with a hard payload cap. One
// FrameReader per connection: the header scratch lives in the struct,
// and Next reuses the caller's payload buffer, so the steady-state
// per-frame read path allocates nothing.
type FrameReader struct {
	r        io.Reader
	maxFrame uint32
	hdr      [FrameHeaderSize]byte
}

// NewFrameReader wraps r. maxFrame is the largest payload Next will
// accept; a header claiming more is rejected before any payload byte
// is read or allocated.
func NewFrameReader(r io.Reader, maxFrame uint32) *FrameReader {
	return &FrameReader{r: r, maxFrame: maxFrame}
}

// Next reads one frame, decoding its payload into payload's storage
// (grown only when the capacity is short — bounded by maxFrame). A
// clean end of stream between frames is io.EOF; a stream that dies
// mid-frame is io.ErrUnexpectedEOF. The returned slice aliases the
// (possibly grown) buffer; pass it back in to keep reusing it.
func (fr *FrameReader) Next(payload []byte) (seq uint64, out []byte, err error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, payload, fmt.Errorf("%w: truncated frame header", ErrBadStream)
		}
		return 0, payload, err // io.EOF: clean boundary
	}
	length := binary.LittleEndian.Uint32(fr.hdr[0:4])
	seq = binary.LittleEndian.Uint64(fr.hdr[4:12])
	if length == 0 {
		return 0, payload, fmt.Errorf("%w: zero-length frame", ErrBadStream)
	}
	if length > fr.maxFrame {
		// The cap check precedes the allocation: a hostile header
		// claiming 4 GiB costs nothing.
		return 0, payload, fmt.Errorf("%w: frame claims %d bytes, cap is %d", ErrBadStream, length, fr.maxFrame)
	}
	if uint32(cap(payload)) < length {
		payload = make([]byte, 0, length)
	}
	payload = payload[:length]
	if n, err := io.ReadFull(fr.r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, payload[:0], fmt.Errorf("%w: frame %d truncated at %d of %d payload bytes", ErrBadStream, seq, n, length)
		}
		return 0, payload[:0], err
	}
	return seq, payload, nil
}
