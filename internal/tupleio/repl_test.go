package tupleio

import (
	"bytes"
	"errors"
	"testing"
)

// TestReplStartRoundTrip: the start request round-trips and every
// malformation (size, magic) is ErrBadStream.
func TestReplStartRoundTrip(t *testing.T) {
	for _, lsn := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
		b := AppendReplStart(nil, lsn)
		if len(b) != ReplStartSize {
			t.Fatalf("start is %d bytes, want %d", len(b), ReplStartSize)
		}
		got, err := ParseReplStart(b)
		if err != nil || got != lsn {
			t.Fatalf("round trip lsn %d: got %d, %v", lsn, got, err)
		}
	}
	if _, err := ParseReplStart([]byte("short")); !errors.Is(err, ErrBadStream) {
		t.Fatalf("short start: %v", err)
	}
	bad := AppendReplStart(nil, 7)
	bad[0] = 'X'
	if _, err := ParseReplStart(bad); !errors.Is(err, ErrBadStream) {
		t.Fatalf("bad magic: %v", err)
	}
}

// TestReplPayloadRoundTrip: each frame kind encodes and decodes back to
// itself, and truncated or unknown payloads are ErrBadStream.
func TestReplPayloadRoundTrip(t *testing.T) {
	rec := AppendReplRecord(nil, 7, []byte("wal-record-bytes"))
	kind, typ, rest, err := DecodeReplPayload(rec)
	if err != nil || kind != ReplRecord || typ != 7 || !bytes.Equal(rest, []byte("wal-record-bytes")) {
		t.Fatalf("record: kind=%d typ=%d rest=%q err=%v", kind, typ, rest, err)
	}

	snap := AppendReplSnapshot(nil, []byte("corrdsn2..."))
	kind, _, rest, err = DecodeReplPayload(snap)
	if err != nil || kind != ReplSnapshot || !bytes.Equal(rest, []byte("corrdsn2...")) {
		t.Fatalf("snapshot: kind=%d rest=%q err=%v", kind, rest, err)
	}

	hb := AppendReplHeartbeat(nil)
	kind, _, rest, err = DecodeReplPayload(hb)
	if err != nil || kind != ReplHeartbeat || rest != nil {
		t.Fatalf("heartbeat: kind=%d rest=%q err=%v", kind, rest, err)
	}

	for _, bad := range [][]byte{
		nil,                   // empty
		{ReplRecord},          // record with no type byte
		{ReplSnapshot},        // snapshot with no bytes
		{ReplHeartbeat, 0xff}, // heartbeat with trailing bytes
		{0x7f},                // unknown kind
	} {
		if _, _, _, err := DecodeReplPayload(bad); !errors.Is(err, ErrBadStream) {
			t.Fatalf("payload %v: err %v, want ErrBadStream", bad, err)
		}
	}
}
