package tupleio

import (
	"errors"
	"reflect"
	"testing"

	"github.com/streamagg/correlated/internal/core"
)

func TestRoundTrip(t *testing.T) {
	batch := []core.Tuple{
		{X: 0, Y: 0, W: 1},
		{X: 1 << 60, Y: 1<<32 - 1, W: 1<<62 + 3},
		{X: 7, Y: 9}, // zero weight normalizes to 1
		{X: 1, Y: 2, W: -5},
	}
	buf := AppendBatch(nil, batch)
	got, err := Decode(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Tuple{
		{X: 0, Y: 0, W: 1},
		{X: 1 << 60, Y: 1<<32 - 1, W: 1<<62 + 3},
		{X: 7, Y: 9, W: 1},
		{X: 1, Y: 2, W: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %v want %v", got, want)
	}
	// Decode reuses dst capacity.
	reused, err := Decode(got, buf[:0])
	if err != nil || len(reused) != 0 {
		t.Fatalf("empty stream: %v len=%d", err, len(reused))
	}
}

func TestDecodeRejectsPartialRecords(t *testing.T) {
	buf := AppendTuple(nil, 5, 6, 7)
	for cut := 1; cut < len(buf); cut++ {
		if _, err := Decode(nil, buf[:cut]); !errors.Is(err, ErrBadStream) {
			t.Fatalf("cut=%d: %v", cut, err)
		}
	}
	// Unterminated uvarint (ten continuation bytes).
	bad := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}
	if _, err := Decode(nil, bad); !errors.Is(err, ErrBadStream) {
		t.Fatalf("unterminated uvarint: %v", err)
	}
}

func TestDecodeRejectsOverflowWeight(t *testing.T) {
	var buf []byte
	buf = appendRaw(buf, 1)
	buf = appendRaw(buf, 2)
	buf = appendRaw(buf, 1<<63) // does not fit int64
	if _, err := Decode(nil, buf); !errors.Is(err, ErrBadStream) {
		t.Fatalf("overflow weight: %v", err)
	}
}

func appendRaw(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// TestCountedRoundTrip: the counted form decodes back to the same batch
// and reuses dst capacity.
func TestCountedRoundTrip(t *testing.T) {
	batch := []core.Tuple{
		{X: 1, Y: 2, W: 3},
		{X: 1 << 40, Y: 1 << 19, W: 1},
		{X: 0, Y: 0, W: 1},
	}
	buf := AppendCountedBatch(nil, batch)
	got, err := DecodeCounted(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Fatalf("counted round trip: got %v want %v", got, batch)
	}
	// Empty batch round-trips too.
	empty, err := DecodeCounted(got, AppendCountedBatch(nil, nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty counted batch: %v len=%d", err, len(empty))
	}
}

// TestCountedAdversarialHeader is the regression test for decode-side
// pre-allocation: a header claiming a huge tuple count over a tiny body
// must be rejected up front, without allocating storage proportional to
// the claim.
func TestCountedAdversarialHeader(t *testing.T) {
	hostile := appendRaw(nil, 1<<40) // claims 2^40 tuples
	hostile = append(hostile, 1, 2, 3)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := DecodeCounted(nil, hostile); !errors.Is(err, ErrBadStream) {
			t.Fatalf("hostile header accepted: %v", err)
		}
	})
	// The only allocations allowed are the error values themselves.
	if allocs > 8 {
		t.Fatalf("hostile header cost %.0f allocs", allocs)
	}

	// A claim past MaxDecodeTuples is rejected even with a plausible body.
	overCap := appendRaw(nil, MaxDecodeTuples+1)
	overCap = append(overCap, make([]byte, 64)...)
	if _, err := DecodeCounted(nil, overCap); !errors.Is(err, ErrBadStream) {
		t.Fatalf("over-cap header accepted: %v", err)
	}

	// A count that disagrees with the records is an error both ways.
	two := AppendBatch(appendRaw(nil, 2), []core.Tuple{{X: 1, Y: 1, W: 1}})
	if _, err := DecodeCounted(nil, two); !errors.Is(err, ErrBadStream) {
		t.Fatalf("undercounted body accepted: %v", err)
	}
	one := AppendBatch(appendRaw(nil, 1), []core.Tuple{{X: 1, Y: 1, W: 1}, {X: 2, Y: 2, W: 2}})
	if _, err := DecodeCounted(nil, one); !errors.Is(err, ErrBadStream) {
		t.Fatalf("overcounted body accepted: %v", err)
	}

	// Truncated header.
	if _, err := DecodeCounted(nil, []byte{0x80}); !errors.Is(err, ErrBadStream) {
		t.Fatalf("truncated header accepted: %v", err)
	}
}

// TestDecodeCountedPrefix: a buffer of concatenated counted batches —
// the WAL's group-commit record body — decodes member by member, each
// call returning exactly the remainder.
func TestDecodeCountedPrefix(t *testing.T) {
	batches := [][]core.Tuple{
		{{X: 1, Y: 2, W: 3}, {X: 4, Y: 5, W: 1}},
		{}, // an empty member is legal (an empty ingest body)
		{{X: 1 << 40, Y: 7, W: 9}},
	}
	var buf []byte
	for _, b := range batches {
		buf = AppendCountedBatch(buf, b)
	}
	rest := buf
	var dst []core.Tuple
	for i, want := range batches {
		var err error
		dst, rest, err = DecodeCountedPrefix(dst, rest)
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if len(dst) != len(want) {
			t.Fatalf("member %d: %d tuples, want %d", i, len(dst), len(want))
		}
		for j := range want {
			if dst[j] != want[j] {
				t.Fatalf("member %d tuple %d: %+v want %+v", i, j, dst[j], want[j])
			}
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after the last member", len(rest))
	}
}

// TestDecodeCountedPrefixAdversarial: the prefix decoder enforces the
// same hostile-header bounds as DecodeCounted.
func TestDecodeCountedPrefixAdversarial(t *testing.T) {
	// Header claims 2^40 tuples over a tiny body.
	huge := make([]byte, 0, 16)
	huge = appendUvarint(huge, 1<<40)
	huge = append(huge, 1, 2, 3)
	if _, _, err := DecodeCountedPrefix(nil, huge); !errors.Is(err, ErrBadStream) {
		t.Fatalf("hostile count header: %v", err)
	}
	// Truncated mid-member: the second tuple is missing bytes.
	var good []core.Tuple
	good = append(good, core.Tuple{X: 300, Y: 300, W: 300})
	buf := AppendCountedBatch(nil, append(good, core.Tuple{X: 1, Y: 1, W: 1}))
	if _, _, err := DecodeCountedPrefix(nil, buf[:len(buf)-1]); !errors.Is(err, ErrBadStream) {
		t.Fatalf("truncated member: %v", err)
	}
}

func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}
