package tupleio

import (
	"errors"
	"reflect"
	"testing"

	"github.com/streamagg/correlated/internal/core"
)

func TestRoundTrip(t *testing.T) {
	batch := []core.Tuple{
		{X: 0, Y: 0, W: 1},
		{X: 1 << 60, Y: 1<<32 - 1, W: 1<<62 + 3},
		{X: 7, Y: 9}, // zero weight normalizes to 1
		{X: 1, Y: 2, W: -5},
	}
	buf := AppendBatch(nil, batch)
	got, err := Decode(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Tuple{
		{X: 0, Y: 0, W: 1},
		{X: 1 << 60, Y: 1<<32 - 1, W: 1<<62 + 3},
		{X: 7, Y: 9, W: 1},
		{X: 1, Y: 2, W: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %v want %v", got, want)
	}
	// Decode reuses dst capacity.
	reused, err := Decode(got, buf[:0])
	if err != nil || len(reused) != 0 {
		t.Fatalf("empty stream: %v len=%d", err, len(reused))
	}
}

func TestDecodeRejectsPartialRecords(t *testing.T) {
	buf := AppendTuple(nil, 5, 6, 7)
	for cut := 1; cut < len(buf); cut++ {
		if _, err := Decode(nil, buf[:cut]); !errors.Is(err, ErrBadStream) {
			t.Fatalf("cut=%d: %v", cut, err)
		}
	}
	// Unterminated uvarint (ten continuation bytes).
	bad := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}
	if _, err := Decode(nil, bad); !errors.Is(err, ErrBadStream) {
		t.Fatalf("unterminated uvarint: %v", err)
	}
}

func TestDecodeRejectsOverflowWeight(t *testing.T) {
	var buf []byte
	buf = appendRaw(buf, 1)
	buf = appendRaw(buf, 2)
	buf = appendRaw(buf, 1<<63) // does not fit int64
	if _, err := Decode(nil, buf); !errors.Is(err, ErrBadStream) {
		t.Fatalf("overflow weight: %v", err)
	}
}

func appendRaw(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}
