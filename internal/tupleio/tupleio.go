// Package tupleio is the tuple wire codec shared by the corrd service
// and its client: a batch of (x, y, w) tuples encodes as repeated
// uvarint triples, nothing else — no count prefix, no framing — so a
// body can be produced incrementally and decoded in one pass. Weights
// are encoded as uvarints (the ingest APIs require w > 0; a zero weight
// on the wire decodes to 1, matching Tuple's zero-value convention).
//
// The codec deliberately lives below both the client and service
// packages: the service decodes exactly what the client encodes, and a
// non-Go producer only needs "three uvarints per tuple".
package tupleio

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/streamagg/correlated/internal/core"
)

// ContentType is the media type of the binary tuple stream.
const ContentType = "application/x-correlated-tuples"

// ErrBadStream reports a malformed binary tuple stream.
var ErrBadStream = errors.New("tupleio: malformed tuple stream")

// MaxDecodeTuples caps how many tuples Decode will accept in one body:
// a hostile 1-byte-per-tuple stream can claim at most body-length
// tuples, but the cap keeps a decoded batch's memory proportional to a
// sane request size regardless of what the transport allowed.
const MaxDecodeTuples = 1 << 22

// AppendTuple appends one tuple record to buf and returns the extended
// slice. A non-positive weight is encoded as 1.
func AppendTuple(buf []byte, x, y uint64, w int64) []byte {
	if w <= 0 {
		w = 1
	}
	buf = binary.AppendUvarint(buf, x)
	buf = binary.AppendUvarint(buf, y)
	return binary.AppendUvarint(buf, uint64(w))
}

// AppendBatch appends every tuple in batch to buf (zero weights encode
// as 1, matching the ingest APIs' convention).
func AppendBatch(buf []byte, batch []core.Tuple) []byte {
	for _, t := range batch {
		buf = AppendTuple(buf, t.X, t.Y, t.W)
	}
	return buf
}

// minRecordBytes is the smallest possible encoded record: one byte
// each for x, y, and w. It is the unit every decode-side allocation
// bound is derived from — a body of L bytes can hold at most
// L/minRecordBytes records, no matter what any header claims.
const minRecordBytes = 3

// AppendCountedBatch appends the counted form of a batch: a uvarint
// record count followed by the records, exactly as AppendBatch would
// write them. This is the framing the corrd WAL logs for each accepted
// ingest batch; the count header lets the replayer pre-allocate the
// decode buffer in one step instead of growing it.
func AppendCountedBatch(buf []byte, batch []core.Tuple) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(batch)))
	return AppendBatch(buf, batch)
}

// DecodeCounted parses the counted form produced by AppendCountedBatch
// into dst (reusing its capacity). The pre-allocation derived from the
// count header is bounded by what the body could physically hold
// (len/minRecordBytes) and by MaxDecodeTuples, so a hostile header
// claiming 2^40 records on a 10-byte body is rejected before a single
// byte is allocated — the same hostile-allocation class as the
// map-pre-size DoS bugs fixed in the merge-image decoders. The count
// must match the records exactly: a body holding more or fewer is an
// error.
func DecodeCounted(dst []core.Tuple, data []byte) ([]core.Tuple, error) {
	dst, rest, err := DecodeCountedPrefix(dst, data)
	if err != nil {
		return dst, err
	}
	if len(rest) != 0 {
		return dst[:0], fmt.Errorf("%w: %d trailing bytes after the counted records", ErrBadStream, len(rest))
	}
	return dst, nil
}

// DecodeCountedPrefix parses one counted batch from the front of data
// and returns the remaining bytes, so a sequence of counted batches —
// the corrd WAL's group-commit record — can be decoded member by member
// from a single buffer. The allocation bounds are the same as
// DecodeCounted's; the only difference is that trailing bytes are the
// caller's, not an error.
func DecodeCountedPrefix(dst []core.Tuple, data []byte) (batch []core.Tuple, rest []byte, err error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return dst[:0], data, fmt.Errorf("%w: bad count header", ErrBadStream)
	}
	data = data[sz:]
	if n > MaxDecodeTuples {
		return dst[:0], data, fmt.Errorf("%w: header claims %d tuples, cap is %d", ErrBadStream, n, MaxDecodeTuples)
	}
	if n > uint64(len(data)/minRecordBytes) {
		return dst[:0], data, fmt.Errorf("%w: header claims %d tuples, body can hold at most %d",
			ErrBadStream, n, len(data)/minRecordBytes)
	}
	if uint64(cap(dst)) < n {
		dst = make([]core.Tuple, 0, n)
	}
	dst = dst[:0]
	for uint64(len(dst)) < n {
		t, rest, err := decodeRecord(data, len(dst))
		if err != nil {
			return dst[:0], data, err
		}
		data = rest
		dst = append(dst, t)
	}
	return dst, data, nil
}

// decodeRecord parses one x/y/w record — the single implementation of
// the tuple wire grammar shared by every decode entry point, so the
// HTTP-ingest path (Decode) and the WAL group-replay path
// (DecodeCountedPrefix) can never diverge. idx is the record's position,
// for error messages only.
func decodeRecord(data []byte, idx int) (t core.Tuple, rest []byte, err error) {
	var w uint64
	var n int
	if t.X, n = binary.Uvarint(data); n <= 0 {
		return t, data, fmt.Errorf("%w: bad x at record %d", ErrBadStream, idx)
	}
	data = data[n:]
	if t.Y, n = binary.Uvarint(data); n <= 0 {
		return t, data, fmt.Errorf("%w: bad y at record %d", ErrBadStream, idx)
	}
	data = data[n:]
	if w, n = binary.Uvarint(data); n <= 0 {
		return t, data, fmt.Errorf("%w: bad weight at record %d", ErrBadStream, idx)
	}
	data = data[n:]
	if w > 1<<63-1 {
		return t, data, fmt.Errorf("%w: weight overflows int64 at record %d", ErrBadStream, idx)
	}
	if t.W = int64(w); t.W == 0 {
		t.W = 1
	}
	return t, data, nil
}

// Decode parses a complete binary tuple stream into dst (reusing its
// capacity) and returns the filled slice. The stream must contain only
// whole records; a trailing partial record, a weight that overflows
// int64, or more than MaxDecodeTuples records is an error matching
// ErrBadStream.
func Decode(dst []core.Tuple, data []byte) ([]core.Tuple, error) {
	dst = dst[:0]
	for len(data) > 0 {
		if len(dst) >= MaxDecodeTuples {
			return dst[:0], fmt.Errorf("%w: more than %d tuples in one body", ErrBadStream, MaxDecodeTuples)
		}
		t, rest, err := decodeRecord(data, len(dst))
		if err != nil {
			return dst[:0], err
		}
		data = rest
		dst = append(dst, t)
	}
	return dst, nil
}
