package tupleio

// Replication wire format: the WAL-shipping transport a replica speaks
// to its primary, riding the same stream listener (and the same hello /
// reply / frame grammar) as the ingest transport. A replica connects,
// sends a hello with StreamFormatReplica, reads the standard reply, and
// then — instead of pumping ingest frames — sends one fixed-size start
// request naming the LSN its restored state already covers:
//
//	start   "CRP1" startLSN:uint64 LE                    12 bytes
//
// From then on the connection is one-way: the primary streams frames
// (the standard 12-byte frame header) whose payloads open with a kind
// byte:
//
//	record     kind=1 walType:uint8 payload...   seq = the record's LSN
//	snapshot   kind=2 snapshot file bytes        seq = the covered LSN
//	heartbeat  kind=3 (nothing)                  seq = primary last LSN
//
// Record frames are WAL records verbatim — the same bytes, the same
// types, the same order — so the replica's live apply and the primary's
// crash replay share one grammar, which is what makes the promoted
// replica byte-exact. A snapshot frame is sent when the replica's start
// LSN has been pruned past (checkpointed) on the primary: the replica
// installs the snapshot file bytes as if restoring at startup and
// resumes at the covered LSN. Heartbeats carry the primary's last LSN
// so an idle replica can still measure its lag and detect primary loss.
//
// There are no acks in this direction; flow control is the TCP window,
// and resume-after-reconnect is positional (the replica re-sends the
// LSN it reached). A replica that falls behind the prune horizon is
// simply re-seeded by the next snapshot frame, so the protocol has no
// unbounded retention obligation.

import (
	"encoding/binary"
	"fmt"
)

const (
	// StreamFormatReplica marks a connection as a replication follower:
	// after the hello reply the client sends a start request and then
	// only reads.
	StreamFormatReplica = 3

	// HelloNoWAL rejects a replication hello because the server runs
	// without a WAL — there is no log to ship.
	HelloNoWAL uint8 = 3

	// AckReadOnly rejects an ingest frame because the server is a
	// replica: writes must go to the primary (HTTP mirrors this with
	// 503). The connection stays usable — the sender may be probing.
	AckReadOnly uint8 = 6

	// ReplStartSize is the fixed size of the replica's start request.
	ReplStartSize = 12

	// Replication frame payload kinds (first payload byte).
	ReplRecord    uint8 = 1
	ReplSnapshot  uint8 = 2
	ReplHeartbeat uint8 = 3
)

// replStartMagic opens the start request; distinct from the hello and
// reply magics so a desynchronized peer is caught immediately.
var replStartMagic = [4]byte{'C', 'R', 'P', '1'}

// AppendReplStart appends the replica's start request: the primary
// should stream records with LSN > startLSN.
func AppendReplStart(buf []byte, startLSN uint64) []byte {
	buf = append(buf, replStartMagic[:]...)
	return binary.LittleEndian.AppendUint64(buf, startLSN)
}

// ParseReplStart validates a start request and returns its LSN.
func ParseReplStart(b []byte) (startLSN uint64, err error) {
	if len(b) != ReplStartSize {
		return 0, fmt.Errorf("%w: repl start is %d bytes, want %d", ErrBadStream, len(b), ReplStartSize)
	}
	if [4]byte(b[:4]) != replStartMagic {
		return 0, fmt.Errorf("%w: bad repl start magic %q", ErrBadStream, b[:4])
	}
	return binary.LittleEndian.Uint64(b[4:12]), nil
}

// AppendReplRecord appends a record frame payload: the kind byte, the
// WAL record type, and the record payload verbatim. The caller frames
// it with AppendFrameHeader(seq = the record's LSN).
func AppendReplRecord(buf []byte, walType uint8, payload []byte) []byte {
	buf = append(buf, ReplRecord, walType)
	return append(buf, payload...)
}

// AppendReplSnapshot appends a snapshot frame payload: the kind byte
// then the snapshot file bytes verbatim (framed with seq = the LSN the
// snapshot covers).
func AppendReplSnapshot(buf []byte, snapshot []byte) []byte {
	buf = append(buf, ReplSnapshot)
	return append(buf, snapshot...)
}

// AppendReplHeartbeat appends a heartbeat frame payload (framed with
// seq = the primary's last LSN).
func AppendReplHeartbeat(buf []byte) []byte {
	return append(buf, ReplHeartbeat)
}

// DecodeReplPayload splits a replication frame payload into its kind,
// the WAL record type (record frames only), and the remaining bytes
// (record payload or snapshot file bytes). Heartbeats must be exactly
// the kind byte; a record frame must at least carry its type byte.
func DecodeReplPayload(b []byte) (kind, walType uint8, rest []byte, err error) {
	if len(b) == 0 {
		return 0, 0, nil, fmt.Errorf("%w: empty replication payload", ErrBadStream)
	}
	switch b[0] {
	case ReplRecord:
		if len(b) < 2 {
			return 0, 0, nil, fmt.Errorf("%w: record frame missing type byte", ErrBadStream)
		}
		return ReplRecord, b[1], b[2:], nil
	case ReplSnapshot:
		if len(b) < 2 {
			return 0, 0, nil, fmt.Errorf("%w: empty snapshot frame", ErrBadStream)
		}
		return ReplSnapshot, 0, b[1:], nil
	case ReplHeartbeat:
		if len(b) != 1 {
			return 0, 0, nil, fmt.Errorf("%w: heartbeat frame carries %d extra bytes", ErrBadStream, len(b)-1)
		}
		return ReplHeartbeat, 0, nil, nil
	}
	return 0, 0, nil, fmt.Errorf("%w: unknown replication frame kind %d", ErrBadStream, b[0])
}
