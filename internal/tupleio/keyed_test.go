package tupleio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"github.com/streamagg/correlated/internal/core"
)

func TestKeyedBatchRoundTrip(t *testing.T) {
	batch := []core.Tuple{{X: 1, Y: 2, W: 3}, {X: 1 << 60, Y: 9, W: 1}}
	for _, tenant := range []string{"", "a", "tenant-042", strings.Repeat("k", MaxTenantLen)} {
		wire := AppendKeyedBatch(nil, tenant, batch)
		name, got, err := DecodeKeyed(nil, wire)
		if err != nil {
			t.Fatalf("tenant %q: %v", tenant, err)
		}
		if string(name) != tenant {
			t.Fatalf("tenant %q decoded as %q", tenant, name)
		}
		if len(got) != len(batch) {
			t.Fatalf("tenant %q: %d tuples, want %d", tenant, len(got), len(batch))
		}
		for i := range got {
			if got[i] != batch[i] {
				t.Fatalf("tenant %q tuple %d: %+v want %+v", tenant, i, got[i], batch[i])
			}
		}
	}
}

// TestKeyedDecodeHostile: hostile tenant-name lengths and bytes are
// rejected before anything is sliced or allocated, and truncation at
// any point inside the tenant field is ErrBadStream.
func TestKeyedDecodeHostile(t *testing.T) {
	batch := []core.Tuple{{X: 1, Y: 2, W: 1}}

	// Length claim over the cap, with and without the bytes present.
	over := binary.AppendUvarint(nil, MaxTenantLen+1)
	over = append(over, bytes.Repeat([]byte{'x'}, MaxTenantLen+1)...)
	over = AppendCountedBatch(over, batch)
	if _, _, err := DecodeKeyed(nil, over); !errors.Is(err, ErrBadStream) {
		t.Fatalf("over-cap tenant length: %v", err)
	}
	huge := binary.AppendUvarint(nil, 1<<40)
	if _, _, err := DecodeKeyed(nil, huge); !errors.Is(err, ErrBadStream) {
		t.Fatalf("giant tenant length: %v", err)
	}

	// Length claiming more bytes than remain.
	short := binary.AppendUvarint(nil, 20)
	short = append(short, []byte("only-5b")...)
	if _, _, err := DecodeKeyed(nil, short); !errors.Is(err, ErrBadStream) {
		t.Fatalf("tenant length past the data: %v", err)
	}

	// Control bytes in the key.
	evil := AppendTenant(nil, "bad\nname")
	evil = AppendCountedBatch(evil, batch)
	if _, _, err := DecodeKeyed(nil, evil); !errors.Is(err, ErrBadStream) {
		t.Fatalf("control byte in tenant: %v", err)
	}

	// Truncation at every cut point inside the tenant prefix.
	wire := AppendKeyedBatch(nil, "truncate-me", batch)
	prefixLen := len(AppendTenant(nil, "truncate-me"))
	for cut := 0; cut <= prefixLen; cut++ {
		if _, _, err := DecodeKeyed(nil, wire[:cut]); !errors.Is(err, ErrBadStream) {
			t.Fatalf("cut=%d: %v", cut, err)
		}
	}

	// Trailing bytes after the counted batch.
	if _, _, err := DecodeKeyed(nil, append(bytes.Clone(wire), 0)); !errors.Is(err, ErrBadStream) {
		t.Fatal("trailing byte accepted")
	}

	// ValidateTenant itself: the empty key is the default tenant and is
	// valid; DEL and anything below 0x20 are not.
	if err := ValidateTenant(nil); err != nil {
		t.Fatalf("empty tenant: %v", err)
	}
	for _, b := range []byte{0x00, 0x1f, 0x7f} {
		if err := ValidateTenant([]byte{'a', b}); !errors.Is(err, ErrBadStream) {
			t.Fatalf("control byte 0x%02x accepted: %v", b, err)
		}
	}
}

// TestKeyedDecodeAllocs pins the keyed decode path's steady state: with
// a reused tuple buffer, decoding a keyed frame payload allocates
// nothing — the tenant key aliases the input and the counted decode
// reuses dst, exactly like the unkeyed hot path.
func TestKeyedDecodeAllocs(t *testing.T) {
	batch := make([]core.Tuple, 256)
	for i := range batch {
		batch[i] = core.Tuple{X: uint64(i), Y: uint64(i * 3), W: 1}
	}
	wire := AppendKeyedBatch(nil, "alloc-test-tenant", batch)
	dst := make([]core.Tuple, 0, len(batch))
	allocs := testing.AllocsPerRun(100, func() {
		name, out, err := DecodeKeyed(dst, wire)
		if err != nil || len(name) == 0 || len(out) != len(batch) {
			t.Fatalf("decode: %q %d %v", name, len(out), err)
		}
	})
	if allocs != 0 {
		t.Fatalf("keyed decode allocates %.1f per run, want 0", allocs)
	}
}
