package tupleio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"github.com/streamagg/correlated/internal/core"
)

func TestHelloRoundTrip(t *testing.T) {
	hello := AppendHello(nil, StreamFormatCounted)
	if len(hello) != HelloSize {
		t.Fatalf("hello is %d bytes, want %d", len(hello), HelloSize)
	}
	version, format, err := ParseHello(hello)
	if err != nil {
		t.Fatal(err)
	}
	if version != StreamVersion || format != StreamFormatCounted {
		t.Fatalf("got version=%d format=%d", version, format)
	}

	reply := AppendHelloReply(nil, HelloOK, 1<<20)
	if len(reply) != HelloReplySize {
		t.Fatalf("reply is %d bytes, want %d", len(reply), HelloReplySize)
	}
	status, maxFrame, err := ParseHelloReply(reply)
	if err != nil {
		t.Fatal(err)
	}
	if status != HelloOK || maxFrame != 1<<20 {
		t.Fatalf("got status=%d maxFrame=%d", status, maxFrame)
	}
}

func TestHelloRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		[]byte("XXXX0000"),
		bytes.Repeat([]byte{0}, HelloSize),
		append(AppendHello(nil, StreamFormatCounted), 0), // oversized
	}
	for i, b := range cases {
		if _, _, err := ParseHello(b); !errors.Is(err, ErrBadStream) {
			t.Fatalf("case %d: %v", i, err)
		}
	}
	// The reply parser rejects a client hello (distinct magics).
	if _, _, err := ParseHelloReply(append(AppendHello(nil, 1), 0, 0)); !errors.Is(err, ErrBadStream) {
		t.Fatal("client hello accepted as a reply")
	}
	// And a reply from a future protocol version.
	future := AppendHelloReply(nil, HelloOK, 1)
	future[5] = StreamVersion + 1
	if _, _, err := ParseHelloReply(future); !errors.Is(err, ErrBadStream) {
		t.Fatal("future-version reply accepted")
	}
}

func TestAckRoundTrip(t *testing.T) {
	ack := AppendAck(nil, 42, 1<<40, AckWAL)
	if len(ack) != AckSize {
		t.Fatalf("ack is %d bytes, want %d", len(ack), AckSize)
	}
	seq, lsn, status, err := ParseAck(ack)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || lsn != 1<<40 || status != AckWAL {
		t.Fatalf("got seq=%d lsn=%d status=%d", seq, lsn, status)
	}
	if _, _, _, err := ParseAck(ack[:AckSize-1]); !errors.Is(err, ErrBadStream) {
		t.Fatalf("short ack: %v", err)
	}
}

// TestFrameReaderRoundTrip: frames written back-to-back decode in order,
// reusing the payload buffer, and a clean end of stream is io.EOF.
func TestFrameReaderRoundTrip(t *testing.T) {
	batches := [][]core.Tuple{
		{{X: 1, Y: 2, W: 3}},
		{{X: 9, Y: 8, W: 1}, {X: 1 << 40, Y: 1 << 19, W: 7}},
		{}, // empty batch is a legal (if pointless) frame
	}
	var wire []byte
	for i, b := range batches {
		payload := AppendCountedBatch(nil, b)
		wire = AppendFrameHeader(wire, uint64(i+1), uint32(len(payload)))
		wire = append(wire, payload...)
	}
	fr := NewFrameReader(bytes.NewReader(wire), 1<<20)
	var payload []byte
	var tuples []core.Tuple
	for i, want := range batches {
		seq, out, err := fr.Next(payload)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		payload = out
		if seq != uint64(i+1) {
			t.Fatalf("frame %d: seq %d", i, seq)
		}
		tuples, err = DecodeCounted(tuples, out)
		if err != nil {
			t.Fatalf("frame %d payload: %v", i, err)
		}
		if len(want) == 0 {
			if len(tuples) != 0 {
				t.Fatalf("frame %d: %d tuples, want 0", i, len(tuples))
			}
		} else if !reflect.DeepEqual(tuples, want) {
			t.Fatalf("frame %d: got %v want %v", i, tuples, want)
		}
	}
	if _, _, err := fr.Next(payload); err != io.EOF {
		t.Fatalf("end of stream: %v", err)
	}
}

// TestFrameReaderHostileLength is the adversarial-header regression
// test: a header claiming more than the cap is rejected before any
// payload allocation, whatever giant number it carries.
func TestFrameReaderHostileLength(t *testing.T) {
	for _, claim := range []uint32{1<<20 + 1, 1 << 30, 1<<32 - 1} {
		hdr := AppendFrameHeader(nil, 1, claim)
		fr := NewFrameReader(bytes.NewReader(hdr), 1<<20)
		allocs := testing.AllocsPerRun(5, func() {
			fr := NewFrameReader(bytes.NewReader(hdr), 1<<20)
			if _, _, err := fr.Next(nil); !errors.Is(err, ErrBadStream) {
				t.Fatalf("claim %d accepted: %v", claim, err)
			}
		})
		if allocs > 16 {
			t.Fatalf("hostile claim %d cost %.0f allocs", claim, allocs)
		}
		if _, _, err := fr.Next(nil); !errors.Is(err, ErrBadStream) {
			t.Fatalf("claim %d accepted: %v", claim, err)
		}
	}
	// Zero-length frames are a protocol error too (nothing legal encodes
	// to zero bytes — an empty counted batch still has its count byte).
	fr := NewFrameReader(bytes.NewReader(AppendFrameHeader(nil, 1, 0)), 1<<20)
	if _, _, err := fr.Next(nil); !errors.Is(err, ErrBadStream) {
		t.Fatalf("zero-length frame: %v", err)
	}
}

// TestFrameReaderTruncation: a stream dying mid-header or mid-payload is
// ErrBadStream (not a silent EOF), at every cut point.
func TestFrameReaderTruncation(t *testing.T) {
	payload := AppendCountedBatch(nil, []core.Tuple{{X: 1, Y: 2, W: 3}, {X: 4, Y: 5, W: 6}})
	wire := append(AppendFrameHeader(nil, 7, uint32(len(payload))), payload...)
	for cut := 1; cut < len(wire); cut++ {
		fr := NewFrameReader(bytes.NewReader(wire[:cut]), 1<<20)
		if _, _, err := fr.Next(nil); !errors.Is(err, ErrBadStream) {
			t.Fatalf("cut=%d: %v", cut, err)
		}
	}
}

// FuzzStreamFrame throws hostile bytes at every stream decoder: the
// frame reader (lengths, truncations), the hello/reply parsers, and the
// ack parser. The invariants under fuzzing: no panic, no allocation
// proportional to a claimed length beyond the cap, and every accepted
// frame payload re-encodes to the same bytes through the counted codec.
func FuzzStreamFrame(f *testing.F) {
	seed := func(b []byte) { f.Add(b) }
	seed(AppendHello(nil, StreamFormatCounted))
	seed(AppendHello(nil, StreamFormatKeyed))
	seed(AppendHelloReply(nil, HelloOK, 1<<20))
	seed(AppendAck(nil, 1, 2, AckOK))
	seed(AppendAck(nil, 1, 0, AckTenant))
	payload := AppendCountedBatch(nil, []core.Tuple{{X: 1, Y: 2, W: 3}})
	seed(append(AppendFrameHeader(nil, 1, uint32(len(payload))), payload...))
	seed(AppendFrameHeader(nil, 1, 1<<31)) // hostile claim
	seed([]byte{})
	// Keyed (tenant-tagged) frames: a valid one, a key at the length
	// cap, a truncated key, and a key length claiming past the payload.
	keyed := AppendKeyedBatch(nil, "fuzz-tenant", []core.Tuple{{X: 1, Y: 2, W: 3}})
	seed(append(AppendFrameHeader(nil, 1, uint32(len(keyed))), keyed...))
	maxKey := AppendKeyedBatch(nil, strings.Repeat("k", MaxTenantLen), []core.Tuple{{X: 4, Y: 5, W: 1}})
	seed(append(AppendFrameHeader(nil, 1, uint32(len(maxKey))), maxKey...))
	cutKey := keyed[:4] // mid-tenant truncation
	seed(append(AppendFrameHeader(nil, 1, uint32(len(cutKey))), cutKey...))
	hostileKey := binary.AppendUvarint(nil, 1<<30)
	seed(append(AppendFrameHeader(nil, 1, uint32(len(hostileKey))), hostileKey...))
	// Replication transport: the follower hello, start requests (one
	// sane, one with a hostile start-LSN, one truncated mid-handshake),
	// and each server→follower frame kind — a shipped record, a
	// heartbeat, a snapshot offer, and a torn snapshot offer whose frame
	// claims more than the conn delivered.
	seed(AppendHello(nil, StreamFormatReplica))
	seed(AppendReplStart(nil, 42))
	seed(AppendReplStart(nil, ^uint64(0)))
	seed(AppendReplStart(nil, 7)[:ReplStartSize-5])
	record := AppendReplRecord(nil, 1, payload)
	seed(append(AppendFrameHeader(nil, 3, uint32(len(record))), record...))
	seed(append(AppendFrameHeader(nil, 9, 1), ReplHeartbeat))
	snap := AppendReplSnapshot(nil, bytes.Repeat([]byte{0xCF}, 96))
	seed(append(AppendFrameHeader(nil, 5, uint32(len(snap))), snap...))
	torn := append(AppendFrameHeader(nil, 5, uint32(len(snap))), snap[:len(snap)/2]...)
	seed(torn)
	seed(append(AppendFrameHeader(nil, 1, 2), 0xFF, 0x01)) // unknown repl kind

	const frameCap = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		// Hello / reply / ack parsers must never panic and must reject
		// anything that is not exactly their wire size.
		if len(data) >= HelloSize {
			ParseHello(data[:HelloSize])
		}
		if len(data) >= HelloReplySize {
			ParseHelloReply(data[:HelloReplySize])
		}
		if len(data) >= AckSize {
			ParseAck(data[:AckSize])
		}
		if len(data) >= ReplStartSize {
			// A hostile start request must parse or reject, never panic;
			// whatever LSN it smuggles in is the primary's problem to
			// bound, not the parser's.
			ParseReplStart(data[:ReplStartSize])
		}

		// The frame reader over the raw bytes: walk frames until error.
		// Any accepted frame's length must be within the cap (the
		// pre-allocation bound), and a payload the counted decoder
		// accepts must round-trip stably: re-encoding the decoded batch
		// and decoding again yields the same tuples. (Byte equality is
		// deliberately not asserted — the decoder normalizes zero
		// weights and tolerates non-minimal uvarints.)
		fr := NewFrameReader(bytes.NewReader(data), frameCap)
		var buf []byte
		var tuples []core.Tuple
		for {
			_, out, err := fr.Next(buf)
			if err != nil {
				break
			}
			buf = out
			if len(out) == 0 || len(out) > frameCap {
				t.Fatalf("accepted frame of %d bytes (cap %d)", len(out), frameCap)
			}
			// Every accepted frame must also survive the replication
			// payload splitter: it either classifies the payload or
			// rejects it, and a record split re-encodes to the original.
			if kind, walType, rest, rerr := DecodeReplPayload(out); rerr == nil && kind == ReplRecord {
				re := AppendReplRecord(nil, walType, rest)
				if !bytes.Equal(re, out) {
					t.Fatalf("repl record split/re-encode changed bytes: %x -> %x", out, re)
				}
			}
			// A payload the keyed decoder accepts must round-trip: the
			// key and tuples re-encode to bytes the decoder accepts
			// with the same key and count.
			if name, ktuples, kerr := DecodeKeyed(nil, out); kerr == nil {
				re := AppendKeyedBatch(nil, string(name), ktuples)
				name2, again, err := DecodeKeyed(nil, re)
				if err != nil {
					t.Fatalf("re-encoded keyed payload rejected: %v", err)
				}
				if !bytes.Equal(name, name2) || len(again) != len(ktuples) {
					t.Fatalf("keyed round trip changed key/count: %q/%d -> %q/%d",
						name, len(ktuples), name2, len(again))
				}
			}
			var derr error
			tuples, derr = DecodeCounted(tuples, out)
			if derr == nil {
				re := AppendCountedBatch(nil, tuples)
				again, err := DecodeCounted(nil, re)
				if err != nil {
					t.Fatalf("re-encoded payload rejected: %v", err)
				}
				if len(again) != len(tuples) {
					t.Fatalf("round trip changed count: %d -> %d", len(tuples), len(again))
				}
				for i := range tuples {
					if again[i] != tuples[i] {
						t.Fatalf("round trip changed tuple %d: %+v -> %+v", i, tuples[i], again[i])
					}
				}
			}
		}

		// A length patched over the cap must be rejected without reading
		// payload bytes.
		if len(data) >= FrameHeaderSize {
			hostile := bytes.Clone(data[:FrameHeaderSize])
			binary.LittleEndian.PutUint32(hostile[0:4], frameCap+1)
			fr := NewFrameReader(bytes.NewReader(hostile), frameCap)
			if _, _, err := fr.Next(nil); !errors.Is(err, ErrBadStream) {
				t.Fatalf("over-cap length accepted: %v", err)
			}
		}
	})
}
