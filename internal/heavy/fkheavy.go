package heavy

import (
	"math"
	"sort"

	"github.com/streamagg/correlated/internal/core"
	"github.com/streamagg/correlated/internal/sketch"
)

// FkSummary generalizes the correlated heavy hitters of Section 3.3 from
// F2 to any moment order k >= 2: report identifiers whose selected
// frequency raised to the k-th power reaches phi·Fk(c). It runs the
// general reduction with the Indyk–Woodruff Fk sketch, whose per-level
// CountSketch and candidate sets already provide the point estimates the
// query needs.
type FkSummary struct {
	cs *core.Summary
	k  int
}

// NewFk builds a correlated Fk heavy-hitters summary.
func NewFk(k int, cfg Config) (*FkSummary, error) {
	cs, err := core.NewSummary(core.FkAggregate(k), core.Config{
		Eps: cfg.Eps, Delta: cfg.Delta, YMax: cfg.YMax,
		MaxStreamLen: cfg.MaxStreamLen, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &FkSummary{cs: cs, k: k}, nil
}

// K returns the moment order.
func (s *FkSummary) K() int { return s.k }

// Add inserts the tuple (x, y).
func (s *FkSummary) Add(x, y uint64) error { return s.cs.Add(x, y) }

// Space reports stored counters/tuples.
func (s *FkSummary) Space() int64 { return s.cs.Space() }

// Fk estimates the correlated moment Fk(c).
func (s *FkSummary) Fk(c uint64) (float64, error) { return s.cs.Query(c) }

// Query returns identifiers with estimated f^k >= phi·F̂k(c), sorted by
// decreasing frequency.
func (s *FkSummary) Query(c uint64, phi float64) ([]Item, error) {
	merged, _, err := s.cs.QuerySketch(c)
	if err != nil {
		return nil, err
	}
	fk := merged.Estimate()
	est := merged.(sketch.ItemEstimator)
	var out []Item
	for _, x := range merged.(sketch.CandidateTracker).Candidates() {
		f := est.EstimateItem(x)
		if f <= 0 {
			continue
		}
		if math.Pow(f, float64(s.k)) >= phi*fk {
			out = append(out, Item{X: x, Freq: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].X < out[j].X
	})
	return out, nil
}
