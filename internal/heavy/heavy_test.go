package heavy

import (
	"testing"

	"github.com/streamagg/correlated/internal/exact"
	"github.com/streamagg/correlated/internal/hash"
)

func TestHeavyHittersEndToEnd(t *testing.T) {
	const ymax = 1<<16 - 1
	s, err := New(Config{Eps: 0.1, Delta: 0.1, YMax: ymax, MaxStreamLen: 400000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := exact.New()
	rng := hash.New(3)
	// Background noise: 200k tuples over 10k identifiers.
	for i := 0; i < 200000; i++ {
		x, y := rng.Uint64n(10000)+100, rng.Uint64n(ymax+1)
		if err := s.Add(x, y); err != nil {
			t.Fatal(err)
		}
		base.Add(x, y)
	}
	// Three genuinely heavy identifiers concentrated at low y.
	for _, h := range []struct {
		x, n uint64
	}{{1, 30000}, {2, 20000}, {3, 15000}} {
		for i := uint64(0); i < h.n; i++ {
			y := rng.Uint64n(1 << 14) // all at y < 2^14
			if err := s.Add(h.x, y); err != nil {
				t.Fatal(err)
			}
			base.Add(h.x, y)
		}
	}

	for _, c := range []uint64{1 << 14, ymax} {
		const phi = 0.05
		got, err := s.Query(c, phi)
		if err != nil {
			t.Fatalf("query c=%d: %v", c, err)
		}
		want := base.HeavyHitters(c, phi)
		gotSet := map[uint64]bool{}
		for _, it := range got {
			gotSet[it.X] = true
		}
		// Every exact heavy hitter must be reported (phi well above
		// the eps slack of the guarantee).
		for x := range want {
			if !gotSet[x] {
				t.Errorf("c=%d: missed heavy hitter %d", c, x)
			}
		}
		// No identifier far below the threshold may be reported
		// ((phi - eps) F2 is the guarantee; use phi/4 as "far below").
		f2 := base.F2(c)
		for _, it := range got {
			f := float64(want[it.X])
			if want[it.X] == 0 {
				// Recompute exactly for non-heavy reported items.
				fr := base.HeavyHitters(c, 0)
				f = float64(fr[it.X])
			}
			if f*f < (phi/4)*f2 {
				t.Errorf("c=%d: spurious heavy hitter %d (freq %v)", c, it.X, f)
			}
		}
	}
}

func TestHeavyHittersFrequencyEstimates(t *testing.T) {
	const ymax = 1<<12 - 1
	s, err := New(Config{Eps: 0.1, Delta: 0.1, YMax: ymax, MaxStreamLen: 100000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := s.Add(99, uint64(i)%ymax); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Query(ymax, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].X != 99 {
		t.Fatalf("heavy hitters = %+v, want just item 99", got)
	}
	if got[0].Freq < 9000 || got[0].Freq > 11000 {
		t.Fatalf("estimated frequency %v, want ~10000", got[0].Freq)
	}
}

func TestF2QueryOnHHSummary(t *testing.T) {
	s, err := New(Config{Eps: 0.2, Delta: 0.1, YMax: 1023, MaxStreamLen: 10000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// 100 items once each: F2 = 100.
	for x := uint64(0); x < 100; x++ {
		if err := s.Add(x, x); err != nil {
			t.Fatal(err)
		}
	}
	f2, err := s.F2(1023)
	if err != nil {
		t.Fatal(err)
	}
	if f2 < 80 || f2 > 120 {
		t.Fatalf("F2 = %v, want ~100", f2)
	}
	if s.Space() <= 0 {
		t.Fatal("space not positive")
	}
}

func TestFkHeavyHitters(t *testing.T) {
	const ymax = 1<<14 - 1
	s, err := NewFk(3, Config{Eps: 0.2, Delta: 0.1, YMax: ymax, MaxStreamLen: 200000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 3 {
		t.Fatalf("K = %d", s.K())
	}
	rng := hash.New(23)
	// Background: 100k tuples across 20k ids; two dominant ids at low y.
	for i := 0; i < 100000; i++ {
		if err := s.Add(rng.Uint64n(20000)+100, rng.Uint64n(ymax+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8000; i++ {
		if err := s.Add(1, rng.Uint64n(1<<12)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5000; i++ {
		if err := s.Add(2, rng.Uint64n(1<<12)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Query(1<<12, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 2 || got[0].X != 1 || got[1].X != 2 {
		t.Fatalf("Fk heavy hitters = %+v, want ids 1 then 2 first", got)
	}
	fk, err := s.Fk(ymax)
	if err != nil || fk <= 0 {
		t.Fatalf("Fk estimate %v err %v", fk, err)
	}
	if s.Space() <= 0 {
		t.Fatal("space not positive")
	}
}
