// Package heavy implements the correlated F2 heavy hitters of the paper's
// Section 3.3: given a y-cutoff c and thresholds 0 < eps < phi < 1, report
// every identifier x whose squared selected frequency is at least
// phi·F2(c), and none below (phi−eps)·F2(c).
//
// As in the paper, the structure is the F2 core structure of Section 2
// where every bucket additionally carries a frequency-estimation sketch
// (CountSketch, following [8]) — here the F2 sketch and the per-item
// sketch are literally the same CountSketch table — plus a bounded set of
// candidate identifiers per bucket. A query composes the sketches of the
// buckets inside [0, c] exactly as Algorithm 3 does, unions their
// candidate sets, and keeps the candidates whose point estimates clear the
// threshold.
package heavy

import (
	"sort"

	"github.com/streamagg/correlated/internal/core"
	"github.com/streamagg/correlated/internal/hash"
	"github.com/streamagg/correlated/internal/sketch"
)

// Item is one reported heavy hitter.
type Item struct {
	X    uint64  // the identifier
	Freq float64 // estimated selected frequency
}

// Config parameterizes the heavy-hitters summary.
type Config struct {
	// Eps, Delta, YMax, MaxStreamLen, Seed: as in core.Config.
	Eps          float64
	Delta        float64
	YMax         uint64
	MaxStreamLen uint64
	Seed         uint64
	// CandCap bounds the candidate identifiers tracked per bucket;
	// 0 derives ceil(8/Eps).
	CandCap int
}

// Summary answers correlated F2 heavy-hitter queries.
type Summary struct {
	cs  *core.Summary
	cap int
}

// New builds a Summary.
func New(cfg Config) (*Summary, error) {
	cap := cfg.CandCap
	if cap == 0 {
		cap = int(8 / cfg.Eps)
		if cap < 16 {
			cap = 16
		}
	}
	agg := core.F2Aggregate()
	base := agg.NewMaker
	agg.NewMaker = func(upsilon, gamma float64, rng *hash.RNG) sketch.Maker {
		return &hhMaker{
			inner: base(upsilon, gamma, rng).(*sketch.F2Maker),
			cap:   cap,
		}
	}
	cs, err := core.NewSummary(agg, core.Config{
		Eps: cfg.Eps, Delta: cfg.Delta, YMax: cfg.YMax,
		MaxStreamLen: cfg.MaxStreamLen, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Summary{cs: cs, cap: cap}, nil
}

// Add inserts the tuple (x, y).
func (s *Summary) Add(x, y uint64) error { return s.cs.Add(x, y) }

// Space reports stored counters/tuples.
func (s *Summary) Space() int64 { return s.cs.Space() }

// F2 estimates the correlated second moment F2(c).
func (s *Summary) F2(c uint64) (float64, error) { return s.cs.Query(c) }

// Query returns the estimated heavy hitters for cutoff c and threshold
// phi: identifiers whose estimated squared selected frequency is at least
// phi times the estimated F2(c), sorted by decreasing frequency.
func (s *Summary) Query(c uint64, phi float64) ([]Item, error) {
	merged, _, err := s.cs.QuerySketch(c)
	if err != nil {
		return nil, err
	}
	hh := merged.(*hhSketch)
	f2 := hh.Estimate()
	var out []Item
	for x := range hh.cand {
		f := hh.cs.EstimateItem(x)
		if f <= 0 {
			continue
		}
		if f*f >= phi*f2 {
			out = append(out, Item{X: x, Freq: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].X < out[j].X
	})
	s.cs.RecycleSketch(merged)
	return out, nil
}

// hhMaker makes composite sketches: a CountSketch plus a candidate set.
type hhMaker struct {
	inner *sketch.F2Maker
	cap   int
	pool  []*hhSketch
}

func (m *hhMaker) Name() string { return "f2-heavy-hitters" }

func (m *hhMaker) New() sketch.Sketch {
	if n := len(m.pool); n > 0 {
		h := m.pool[n-1]
		m.pool[n-1] = nil
		m.pool = m.pool[:n-1]
		return h
	}
	return &hhSketch{
		maker: m,
		cs:    m.inner.New().(*sketch.CountSketch),
		cand:  make(map[uint64]int64),
	}
}

// Slots implements sketch.SlotMaker: the inner CountSketch slots plus the
// raw identifier (the candidate set needs x itself).
func (m *hhMaker) Slots(x uint64, scratch sketch.Slots) sketch.Slots {
	scratch = m.inner.Slots(x, scratch)
	return append(scratch, x)
}

// SlotWidth implements sketch.SlotMaker.
func (m *hhMaker) SlotWidth() int { return m.inner.SlotWidth() + 1 }

// Recycle implements sketch.Recycler.
func (m *hhMaker) Recycle(sk sketch.Sketch) {
	h, ok := sk.(*hhSketch)
	if !ok || h.maker != m || len(m.pool) >= 256 {
		return
	}
	h.Reset()
	m.pool = append(m.pool, h)
}

// hhSketch carries the candidate set alongside the linear sketch. The
// candidate count is the weight added while tracked — a lower bound used
// only for pruning decisions; reported frequencies come from the
// CountSketch point estimates.
type hhSketch struct {
	maker *hhMaker
	cs    *sketch.CountSketch
	cand  map[uint64]int64
}

func (h *hhSketch) Add(x uint64, w int64) {
	h.cs.Add(x, w)
	h.track(x, w)
}

// AddSlots implements sketch.SlotAdder: the leading words are the inner
// CountSketch slots, the trailing word is x itself.
func (h *hhSketch) AddSlots(slots sketch.Slots, w int64) {
	h.cs.AddSlots(slots[:len(slots)-1], w)
	h.track(slots[len(slots)-1], w)
}

func (h *hhSketch) track(x uint64, w int64) {
	if _, ok := h.cand[x]; ok {
		h.cand[x] += w
		return
	}
	if len(h.cand) >= 2*h.maker.cap {
		h.prune()
	}
	h.cand[x] = w
}

// Reset implements sketch.Resetter.
func (h *hhSketch) Reset() {
	h.cs.Reset()
	clear(h.cand)
}

// prune keeps the cap heaviest candidates by point estimate.
func (h *hhSketch) prune() {
	type ce struct {
		x   uint64
		est float64
	}
	ents := make([]ce, 0, len(h.cand))
	for x := range h.cand {
		ents = append(ents, ce{x, h.cs.EstimateItem(x)})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].est > ents[j].est })
	for _, e := range ents[h.maker.cap:] {
		delete(h.cand, e.x)
	}
}

func (h *hhSketch) Estimate() float64 { return h.cs.Estimate() }

func (h *hhSketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*hhSketch)
	if !ok || o.maker != h.maker {
		return sketch.ErrIncompatible
	}
	if err := h.cs.Merge(o.cs); err != nil {
		return err
	}
	for x, c := range o.cand {
		h.cand[x] += c
	}
	if len(h.cand) > 4*h.maker.cap {
		h.prune()
	}
	return nil
}

func (h *hhSketch) Size() int { return h.cs.Size() + len(h.cand) }

// EstimateItem implements sketch.ItemEstimator.
func (h *hhSketch) EstimateItem(x uint64) float64 { return h.cs.EstimateItem(x) }

// Candidates implements sketch.CandidateTracker.
func (h *hhSketch) Candidates() []uint64 {
	out := make([]uint64, 0, len(h.cand))
	for x := range h.cand {
		out = append(out, x)
	}
	return out
}
