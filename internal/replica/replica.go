// Package replica is the follower half of corrd's replication
// subsystem: it dials the primary's stream listener, performs the
// replication handshake (hello with StreamFormatReplica, then a start
// request carrying the LSN the follower's restored state already
// covers), and pumps the primary's replication frames into caller
// hooks — one per WAL record, one per snapshot re-seed, one per
// heartbeat. The package owns the connection lifecycle: reconnect with
// capped exponential backoff, positional resume (each redial re-asks
// from the LSN the hooks have durably applied), and primary-loss
// detection (no frame and no successful redial within the configured
// timeout), which is the trigger for automatic failover. What the
// records mean is entirely the caller's business — the service wires
// these hooks into the same applyRecord path its own crash replay
// uses, which is what makes a promoted replica byte-exact.
package replica

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/streamagg/correlated/internal/tupleio"
)

// Config wires a Follower to its primary and its consumer.
type Config struct {
	// Addr is the primary's stream listener address (host:port).
	Addr string
	// StartLSN is called before every connection attempt and returns
	// the LSN the follower's state covers; the primary streams records
	// with LSN > StartLSN().
	StartLSN func() uint64
	// ApplyRecord consumes one WAL record. An error is fatal: the
	// follower's state can no longer be trusted to converge, so the
	// loop stops and Err reports it.
	ApplyRecord func(lsn uint64, typ uint8, payload []byte) error
	// InstallSnapshot re-seeds the follower from a primary snapshot
	// whose covered LSN is past the follower's position (the primary
	// pruned the records in between). Fatal on error, like ApplyRecord.
	InstallSnapshot func(covered uint64, data []byte) error
	// OnPrimaryLSN observes the primary's last LSN whenever a frame
	// reveals it (records and heartbeats alike) — the lag numerator.
	OnPrimaryLSN func(lsn uint64)
	// HeartbeatTimeout is how long the follower tolerates total silence
	// — no frame on a live connection, no successful redial — before
	// declaring the primary lost. 0 disables loss detection (the
	// follower retries forever).
	HeartbeatTimeout time.Duration
	// OnPrimaryLoss fires once when HeartbeatTimeout expires; the
	// follower stops afterwards. This is the automatic-failover trigger.
	OnPrimaryLoss func()
	// DialTimeout bounds each connection attempt; 0 means 5s.
	DialTimeout time.Duration
	// MaxFrame caps replication frame payloads (snapshot frames are the
	// big ones); 0 means 1 GiB, matching the WAL's own record bound.
	MaxFrame uint32
	// Logf, when set, receives connection-lifecycle log lines.
	Logf func(format string, args ...any)
}

const (
	defaultDialTimeout = 5 * time.Second
	defaultMaxFrame    = 1 << 30
	backoffFloor       = 50 * time.Millisecond
	backoffCeil        = 2 * time.Second
)

// ErrPrimaryLost is the Follower's exit error after HeartbeatTimeout
// of total silence from the primary.
var ErrPrimaryLost = errors.New("replica: primary lost (heartbeat timeout)")

// ErrRejected reports a primary that answered the handshake but
// refused replication (no WAL, or an incompatible stream version) —
// retrying cannot help, so the follower stops.
var ErrRejected = errors.New("replica: primary refused replication")

// Follower is a running replication loop. Stop it with Stop; Done
// closes when the loop has exited and Err reports why.
type Follower struct {
	cfg  Config
	stop chan struct{}
	done chan struct{}

	mu   sync.Mutex
	err  error
	conn net.Conn // live connection, for Stop to unblock reads

	stopOnce sync.Once
}

// Start launches the replication loop.
func Start(cfg Config) *Follower {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultDialTimeout
	}
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = defaultMaxFrame
	}
	f := &Follower{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go f.run()
	return f
}

// Stop ends the loop (idempotent) and waits for it to exit.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() {
		close(f.stop)
		f.mu.Lock()
		if f.conn != nil {
			f.conn.Close() // unblock a blocked read
		}
		f.mu.Unlock()
	})
	<-f.done
}

// Done closes when the loop has exited.
func (f *Follower) Done() <-chan struct{} { return f.done }

// Err reports why the loop exited: nil after Stop, ErrPrimaryLost
// after a heartbeat timeout, ErrRejected or a fatal hook error
// otherwise. Valid once Done is closed.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

func (f *Follower) stopped() bool {
	select {
	case <-f.stop:
		return true
	default:
		return false
	}
}

// run is the reconnect loop: dial, stream until the connection dies,
// back off, repeat — tracking the time since the primary was last
// heard from across attempts, which is what primary-loss means.
func (f *Follower) run() {
	defer close(f.done)
	lastContact := time.Now()
	backoff := backoffFloor
	for {
		if f.stopped() {
			return
		}
		contact, err := f.streamOnce(&lastContact)
		if f.stopped() {
			return
		}
		if err != nil && (errors.Is(err, ErrRejected) || isFatal(err)) {
			f.setErr(err)
			f.logf("replica: fatal: %v", err)
			return
		}
		if contact {
			backoff = backoffFloor
		}
		if err != nil {
			f.logf("replica: connection to %s lost: %v (retrying in %v)", f.cfg.Addr, err, backoff)
		}
		if f.cfg.HeartbeatTimeout > 0 && time.Since(lastContact) > f.cfg.HeartbeatTimeout {
			f.setErr(ErrPrimaryLost)
			f.logf("replica: primary %s silent for %v, declaring it lost", f.cfg.Addr, time.Since(lastContact).Round(time.Millisecond))
			if f.cfg.OnPrimaryLoss != nil {
				f.cfg.OnPrimaryLoss()
			}
			return
		}
		select {
		case <-time.After(backoff):
		case <-f.stop:
			return
		}
		if backoff *= 2; backoff > backoffCeil {
			backoff = backoffCeil
		}
	}
}

func (f *Follower) setErr(err error) {
	f.mu.Lock()
	f.err = err
	f.mu.Unlock()
}

// fatalError marks a hook failure: the local state diverged, so
// reconnecting cannot help.
type fatalError struct{ err error }

func (e fatalError) Error() string { return e.err.Error() }
func (e fatalError) Unwrap() error { return e.err }

func isFatal(err error) bool {
	var fe fatalError
	return errors.As(err, &fe)
}

// streamOnce runs one connection to completion. contact reports
// whether the primary was heard from at all (handshake completed), and
// lastContact is advanced on every frame.
func (f *Follower) streamOnce(lastContact *time.Time) (contact bool, err error) {
	conn, err := net.DialTimeout("tcp", f.cfg.Addr, f.cfg.DialTimeout)
	if err != nil {
		return false, err
	}
	f.mu.Lock()
	f.conn = conn
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
		conn.Close()
	}()

	// Handshake: hello, reply, start request — all under one deadline.
	conn.SetDeadline(time.Now().Add(f.cfg.DialTimeout))
	if _, err := conn.Write(tupleio.AppendHello(nil, tupleio.StreamFormatReplica)); err != nil {
		return false, err
	}
	var reply [tupleio.HelloReplySize]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		return false, err
	}
	status, maxFrame, err := tupleio.ParseHelloReply(reply[:])
	if err != nil {
		return false, err
	}
	if status != tupleio.HelloOK {
		return true, fmt.Errorf("%w: hello status %d", ErrRejected, status)
	}
	if maxFrame > f.cfg.MaxFrame {
		maxFrame = f.cfg.MaxFrame
	}
	start := f.cfg.StartLSN()
	if _, err := conn.Write(tupleio.AppendReplStart(nil, start)); err != nil {
		return true, err
	}
	*lastContact = time.Now()
	f.logf("replica: following %s from LSN %d", f.cfg.Addr, start)

	// Frame loop. The read deadline is the per-frame heartbeat check:
	// the primary sends heartbeats well inside HeartbeatTimeout, so a
	// deadline expiry means silence, not idleness.
	fr := tupleio.NewFrameReader(conn, maxFrame)
	var payload []byte
	for {
		if f.cfg.HeartbeatTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(f.cfg.HeartbeatTimeout))
		} else {
			conn.SetReadDeadline(time.Time{})
		}
		seq, out, err := fr.Next(payload)
		if err != nil {
			return true, err
		}
		payload = out
		*lastContact = time.Now()
		kind, walType, rest, err := tupleio.DecodeReplPayload(payload)
		if err != nil {
			return true, err
		}
		switch kind {
		case tupleio.ReplRecord:
			if f.cfg.OnPrimaryLSN != nil {
				f.cfg.OnPrimaryLSN(seq)
			}
			if err := f.cfg.ApplyRecord(seq, walType, rest); err != nil {
				return true, fatalError{fmt.Errorf("apply record %d: %w", seq, err)}
			}
		case tupleio.ReplSnapshot:
			if f.cfg.OnPrimaryLSN != nil {
				f.cfg.OnPrimaryLSN(seq)
			}
			if err := f.cfg.InstallSnapshot(seq, rest); err != nil {
				return true, fatalError{fmt.Errorf("install snapshot covering %d: %w", seq, err)}
			}
		case tupleio.ReplHeartbeat:
			if f.cfg.OnPrimaryLSN != nil {
				f.cfg.OnPrimaryLSN(seq)
			}
		}
	}
}
