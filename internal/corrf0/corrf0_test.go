package corrf0

import (
	"math"
	"testing"

	"github.com/streamagg/correlated/internal/hash"
)

func mustNew(t *testing.T, cfg Config) *Summary {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Eps: 0, Delta: 0.1, XDomain: 100},
		{Eps: 0.1, Delta: 0, XDomain: 100},
		{Eps: 0.1, Delta: 0.1, XDomain: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestLevelsTrackDomain(t *testing.T) {
	small := mustNew(t, Config{Eps: 0.1, Delta: 0.1, XDomain: 2048, Seed: 1})
	big := mustNew(t, Config{Eps: 0.1, Delta: 0.1, XDomain: 1 << 20, Seed: 1})
	if small.Levels() >= big.Levels() {
		t.Fatalf("levels: small domain %d, big domain %d", small.Levels(), big.Levels())
	}
	if small.Levels() != 12 {
		t.Fatalf("levels for domain 2048 = %d, want 12", small.Levels())
	}
}

// TestExactWhenSmall: with fewer distinct items than alpha, level 0 is a
// complete sample and answers are exact.
func TestExactWhenSmall(t *testing.T) {
	s := mustNew(t, Config{Eps: 0.2, Delta: 0.1, XDomain: 1 << 16, Reps: 1, Seed: 2})
	// 20 distinct items, each at two y values.
	for x := uint64(0); x < 20; x++ {
		s.Add(x, x*10)
		s.Add(x, x*10+5)
	}
	for _, c := range []uint64{0, 45, 95, 200} {
		got, err := s.Query(c)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(c/10 + 1)
		if c >= 190 {
			want = 20
		}
		if got != want {
			t.Fatalf("F0(y<=%d) = %v, want %v", c, got, want)
		}
	}
}

func TestAccuracyUniform(t *testing.T) {
	const n = 500000
	const xdom = 1 << 20
	const ymax = 1 << 20
	const eps = 0.1
	s := mustNew(t, Config{Eps: eps, Delta: 0.1, XDomain: xdom, Reps: 5, Seed: 3})
	rng := hash.New(7)
	type tup struct{ x, y uint64 }
	tuples := make([]tup, n)
	for i := range tuples {
		tuples[i] = tup{rng.Uint64n(xdom), rng.Uint64n(ymax)}
		s.Add(tuples[i].x, tuples[i].y)
	}
	exact := func(c uint64) float64 {
		seen := map[uint64]struct{}{}
		for _, tp := range tuples {
			if tp.y <= c {
				seen[tp.x] = struct{}{}
			}
		}
		return float64(len(seen))
	}
	bad := 0
	cuts := []uint64{1 << 14, 1 << 16, 1 << 18, 1 << 19, ymax - 1}
	for _, c := range cuts {
		got, err := s.Query(c)
		if err != nil {
			t.Fatalf("query %d: %v", c, err)
		}
		want := exact(c)
		if rel := math.Abs(got-want) / want; rel > eps {
			t.Logf("F0(y<=%d) = %v, want %v, rel %v", c, got, want, rel)
			bad++
		}
	}
	if bad > 1 {
		t.Fatalf("%d of %d cutoffs exceeded eps", bad, len(cuts))
	}
}

// TestAccuracySkewedItems: heavy repetition of few items must not distort
// distinct counting.
func TestAccuracySkewedItems(t *testing.T) {
	const eps = 0.15
	s := mustNew(t, Config{Eps: eps, Delta: 0.1, XDomain: 1 << 16, Reps: 5, Seed: 4})
	rng := hash.New(11)
	// 1000 distinct items; item i appears ~i times, y uniform.
	distinct := uint64(1000)
	for x := uint64(0); x < distinct; x++ {
		reps := int(x%50) + 1
		for r := 0; r < reps; r++ {
			s.Add(x, rng.Uint64n(1<<16))
		}
	}
	got, err := s.Query(1<<16 - 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-float64(distinct)) / float64(distinct); rel > eps {
		t.Fatalf("F0 = %v, want %d (rel %v)", got, distinct, rel)
	}
}

func TestWatermarkMonotoneAndQueriesRoute(t *testing.T) {
	s := mustNew(t, Config{Eps: 0.3, Delta: 0.2, XDomain: 1 << 20, Alpha: 64, Reps: 1, Seed: 5})
	rng := hash.New(13)
	for i := 0; i < 200000; i++ {
		s.Add(rng.Uint64n(1<<20), rng.Uint64n(1<<20))
	}
	if s.Watermark(0) == noWatermark {
		t.Fatal("level 0 never evicted with tiny alpha")
	}
	// Watermarks should (weakly) increase with level: deeper levels see
	// fewer items and evict later.
	for j := 1; j < s.Levels(); j++ {
		if s.Watermark(j) < s.Watermark(j-1)/1024 {
			t.Fatalf("watermark dropped sharply: Y_%d=%d, Y_%d=%d",
				j-1, s.Watermark(j-1), j, s.Watermark(j))
		}
	}
	if _, err := s.Query(1<<20 - 1); err != nil {
		t.Fatalf("large-c query failed: %v", err)
	}
}

func TestRarityExactSmall(t *testing.T) {
	s := mustNew(t, Config{Eps: 0.2, Delta: 0.1, XDomain: 1 << 16, Reps: 1, Seed: 6})
	// Items 0..9 appear once at y=10..19; items 10..14 appear twice with
	// both occurrences at y <= 25.
	for x := uint64(0); x < 10; x++ {
		s.Add(x, 10+x)
	}
	for x := uint64(10); x < 15; x++ {
		s.Add(x, 20)
		s.Add(x, 25)
	}
	got, err := s.Rarity(100)
	if err != nil {
		t.Fatal(err)
	}
	if want := 10.0 / 15.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("rarity = %v, want %v", got, want)
	}
	// With cutoff 20, the doubles' second occurrence (y=25) is excluded,
	// so every selected item is rare.
	got, err = s.Rarity(20)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1.0 {
		t.Fatalf("rarity(y<=20) = %v, want 1", got)
	}
}

func TestRarityLargeStream(t *testing.T) {
	s := mustNew(t, Config{Eps: 0.1, Delta: 0.1, XDomain: 1 << 20, Reps: 5, Seed: 7})
	rng := hash.New(17)
	// 40000 singletons, 10000 doubletons, all y < 2^19.
	x := uint64(0)
	for ; x < 40000; x++ {
		s.Add(x, rng.Uint64n(1<<19))
	}
	for ; x < 50000; x++ {
		s.Add(x, rng.Uint64n(1<<19))
		s.Add(x, rng.Uint64n(1<<19))
	}
	got, err := s.Rarity(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.8) > 0.05 {
		t.Fatalf("rarity = %v, want ~0.8", got)
	}
}

// TestReinsertionAfterEviction: an identifier evicted at a level must be
// readmitted when it reappears with a smaller y, and queries below the
// watermark stay correct.
func TestReinsertionAfterEviction(t *testing.T) {
	s := mustNew(t, Config{Eps: 0.3, Delta: 0.2, XDomain: 1 << 10, Alpha: 8, Reps: 1, Seed: 8})
	// Fill level 0 with ys 100..115 (alpha 8 evicts the largest).
	for x := uint64(0); x < 16; x++ {
		s.Add(x, 100+x)
	}
	// Identifier 15 (possibly evicted) reappears with tiny y.
	s.Add(15, 1)
	got, err := s.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("F0(y<=1) = %v, want 1", got)
	}
}

func TestSpaceGrowsWithPrecision(t *testing.T) {
	mk := func(eps float64) int64 {
		s := mustNew(t, Config{Eps: eps, Delta: 0.1, XDomain: 1 << 20, Reps: 1, Seed: 9})
		rng := hash.New(19)
		for i := 0; i < 100000; i++ {
			s.Add(rng.Uint64n(1<<20), rng.Uint64n(1<<20))
		}
		return s.Space()
	}
	coarse, fine := mk(0.3), mk(0.05)
	if fine <= coarse {
		t.Fatalf("space at eps=0.05 (%d) not larger than at eps=0.3 (%d)", fine, coarse)
	}
}

func TestSpaceSmallerForSmallDomain(t *testing.T) {
	run := func(xdom uint64) int64 {
		s := mustNew(t, Config{Eps: 0.1, Delta: 0.1, XDomain: xdom, Reps: 1, Seed: 10})
		rng := hash.New(23)
		for i := 0; i < 200000; i++ {
			s.Add(rng.Uint64n(xdom), rng.Uint64n(1<<20))
		}
		return s.Space()
	}
	eth, uni := run(2048), run(1<<20)
	if eth*2 >= uni {
		t.Fatalf("small-domain space %d not well below large-domain %d", eth, uni)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		s := mustNew(t, Config{Eps: 0.1, Delta: 0.1, XDomain: 1 << 16, Seed: 42})
		rng := hash.New(29)
		for i := 0; i < 50000; i++ {
			s.Add(rng.Uint64n(1<<16), rng.Uint64n(1<<16))
		}
		v, err := s.Query(1 << 14)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed gave %v then %v", a, b)
	}
}

func TestCountTracksInsertions(t *testing.T) {
	s := mustNew(t, Config{Eps: 0.2, Delta: 0.1, XDomain: 256, Seed: 11})
	for i := 0; i < 123; i++ {
		s.Add(uint64(i), uint64(i))
	}
	if s.Count() != 123 {
		t.Fatalf("count = %d", s.Count())
	}
}

// TestMergeEqualsWholeStream: a merged pair of summaries over disjoint
// substreams must behave exactly like one summary over the whole stream
// (distinct sampling is partition-oblivious).
func TestMergeEqualsWholeStream(t *testing.T) {
	cfg := Config{Eps: 0.1, Delta: 0.1, XDomain: 1 << 16, Reps: 3, Seed: 77}
	whole := mustNew(t, cfg)
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)
	rng := hash.New(79)
	for i := 0; i < 100000; i++ {
		x, y := rng.Uint64n(1<<16), rng.Uint64n(1<<16)
		whole.Add(x, y)
		if i%2 == 0 {
			a.Add(x, y)
		} else {
			b.Add(x, y)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != whole.Count() {
		t.Fatalf("count %d, want %d", a.Count(), whole.Count())
	}
	for _, c := range []uint64{1 << 10, 1 << 13, 1 << 15, 1<<16 - 1} {
		// Merged watermark may be lower than whole-stream (eviction
		// happened on smaller substreams), so answers can come from
		// different levels; both must be accurate, not identical.
		wa, err1 := whole.Query(c)
		ma, err2 := a.Query(c)
		if err1 != nil || err2 != nil {
			t.Fatalf("c=%d: %v %v", c, err1, err2)
		}
		if math.Abs(wa-ma) > 0.2*wa {
			t.Fatalf("c=%d: merged %v far from whole %v", c, ma, wa)
		}
	}
	// Rarity must also survive merging.
	ra, err := a.Rarity(1 << 15)
	if err != nil || ra < 0 || ra > 1 {
		t.Fatalf("merged rarity %v err %v", ra, err)
	}
}

// TestMergeOverlappingItems: the same identifier on both sides keeps its
// joint two smallest occurrence values.
func TestMergeOverlappingItems(t *testing.T) {
	cfg := Config{Eps: 0.2, Delta: 0.1, XDomain: 1 << 10, Reps: 1, Seed: 81}
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)
	a.Add(5, 100)
	a.Add(5, 300)
	b.Add(5, 200)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// Joint smallest two are 100 and 200: exactly one occurrence <= 150.
	r, err := a.Rarity(150)
	if err != nil || r != 1 {
		t.Fatalf("rarity(150) = %v err %v, want 1", r, err)
	}
	r, err = a.Rarity(250)
	if err != nil || r != 0 {
		t.Fatalf("rarity(250) = %v err %v, want 0 (two occurrences <= 250)", r, err)
	}
}

// TestMergeRejectsMismatched: different seeds sample differently and must
// not merge.
func TestMergeRejectsMismatched(t *testing.T) {
	a := mustNew(t, Config{Eps: 0.2, Delta: 0.1, XDomain: 1 << 10, Seed: 1})
	b := mustNew(t, Config{Eps: 0.2, Delta: 0.1, XDomain: 1 << 10, Seed: 2})
	if err := a.Merge(b); err == nil {
		t.Fatal("mismatched seeds merged")
	}
	c := mustNew(t, Config{Eps: 0.2, Delta: 0.1, XDomain: 1 << 10, Seed: 1, Alpha: 999})
	if err := a.Merge(c); err == nil {
		t.Fatal("mismatched alpha merged")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("nil merged")
	}
}
