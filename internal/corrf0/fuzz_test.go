package corrf0

import (
	"testing"

	"github.com/streamagg/correlated/internal/hash"
)

// FuzzUnmarshalBinary hardens the corrf0 wire format the same way as
// the core format: images arrive from the network (corrd's /v1/push for
// F0 deployments, snapshot files from disk), so malformed, truncated,
// or config-mismatched bytes must fail with a typed error and never
// panic or corrupt the receiver.
func FuzzUnmarshalBinary(f *testing.F) {
	cfg := Config{Eps: 0.3, Delta: 0.2, XDomain: 1 << 10, Alpha: 8, Seed: 5}
	newSum := func(tb testing.TB) *Summary {
		s, err := New(cfg)
		if err != nil {
			tb.Fatal(err)
		}
		return s
	}

	empty := newSum(f)
	img, err := empty.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	full := newSum(f)
	rng := hash.New(6)
	for i := 0; i < 5_000; i++ {
		full.Add(rng.Uint64n(1<<10), rng.Uint64n(1<<14))
	}
	if img, err = full.MarshalBinary(); err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:len(img)/2])
	corrupt := append([]byte(nil), img...)
	corrupt[len(corrupt)/4] ^= 0x55
	f.Add(corrupt)
	otherCfg := cfg
	otherCfg.Alpha = 16
	other, err := New(otherCfg)
	if err != nil {
		f.Fatal(err)
	}
	if img, err = other.MarshalBinary(); err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add([]byte{})
	f.Add([]byte{2}) // bare version byte

	f.Fuzz(func(t *testing.T, data []byte) {
		s := newSum(t)
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		// Accepted images must leave the summary fully usable: query
		// (its errors are legitimate FAIL outputs, panics are not),
		// ingest, re-marshal.
		s.Query(1 << 13)
		s.Add(1, 1)
		if _, err := s.MarshalBinary(); err != nil {
			t.Fatalf("re-marshal after accepted image: %v", err)
		}
	})
}
