// Package corrf0 implements the paper's Section 3.2: correlated estimation
// of the number of distinct elements, |{x | (x,y) ∈ S ∧ y <= c}| with c
// given at query time.
//
// The structure adapts the distinct-sampling algorithm of Gibbons and
// Tirthapura: levels j = 0..L sample item x into level j when the shared
// hash of x has at least j leading zeros (probability 2^-j). Where the
// sliding-window original keeps a FIFO of recent items per level, the
// correlated version keeps, per level, the α sampled identifiers with the
// smallest y values — a priority queue on y — and a watermark Y_j recording
// the smallest y it has ever dropped. A query with cutoff c is served from
// the shallowest level whose watermark exceeds c (so the level provably
// retains every sampled identifier with y <= c): the number of retained
// identifiers with min-y <= c, scaled by 2^j, estimates the distinct count.
//
// Per sampled identifier the structure keeps its two smallest occurrence
// y values. The second one powers the rarity estimator of Section 3.3: an
// identifier occurs exactly once among tuples with y <= c iff its smallest
// occurrence is <= c and its second-smallest is > c.
package corrf0

import (
	"container/heap"
	"errors"
	"math"

	"github.com/streamagg/correlated/internal/compat"
	"github.com/streamagg/correlated/internal/hash"
)

// ErrNoLevel is returned when no level can serve the cutoff; with properly
// sized levels this happens with probability at most delta.
var ErrNoLevel = errors.New("corrf0: no level can answer the query")

const noWatermark = math.MaxUint64

// Config parameterizes the correlated F0 summary.
type Config struct {
	// Eps is the target relative error.
	Eps float64
	// Delta is the failure probability.
	Delta float64
	// XDomain bounds the item identifiers (m in the paper); the level
	// count is log2(XDomain)+1, which is why small-domain streams such
	// as the Ethernet trace need far less space (Figure 6).
	XDomain uint64
	// Alpha overrides the per-level sample capacity; 0 derives
	// ceil(2/Eps²), the constant matching the space the paper reports.
	Alpha int
	// Reps is the number of independent repetitions whose median is
	// reported; 0 derives an odd count from Delta.
	Reps int
	// Seed drives all randomness.
	Seed uint64
}

// Summary is the correlated distinct-count summary.
type Summary struct {
	cfg   Config
	alpha int
	reps  []*rep
	n     uint64

	estScratch []float64 // reused by Query/Rarity across calls
}

type rep struct {
	h      *hash.Tab64
	levels []lvl
}

type lvl struct {
	items map[uint64]*entry
	pq    entryHeap // max-heap on y1
	y     uint64    // watermark Y_j
}

type entry struct {
	x      uint64
	y1, y2 uint64 // two smallest occurrence y values (y2 == noWatermark if none)
	idx    int    // heap index
}

// New builds a Summary.
func New(cfg Config) (*Summary, error) {
	if cfg.Eps <= 0 || cfg.Eps >= 1 {
		return nil, errors.New("corrf0: Eps must be in (0,1)")
	}
	if cfg.Delta <= 0 || cfg.Delta >= 1 {
		return nil, errors.New("corrf0: Delta must be in (0,1)")
	}
	if cfg.XDomain < 2 {
		return nil, errors.New("corrf0: XDomain must be at least 2")
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = int(math.Ceil(2 / (cfg.Eps * cfg.Eps)))
		if cfg.Alpha < 64 {
			cfg.Alpha = 64
		}
	}
	if cfg.Reps == 0 {
		r := int(math.Ceil(math.Log2(1 / cfg.Delta)))
		if r < 1 {
			r = 1
		}
		if r > 7 {
			r = 7
		}
		if r%2 == 0 {
			r++
		}
		cfg.Reps = r
	}
	levels := 1
	for p := uint64(1); p < cfg.XDomain; p <<= 1 {
		levels++
	}
	rng := hash.New(cfg.Seed)
	s := &Summary{cfg: cfg, alpha: cfg.Alpha}
	for i := 0; i < cfg.Reps; i++ {
		r := &rep{h: hash.NewTab64(rng), levels: make([]lvl, levels)}
		for j := range r.levels {
			r.levels[j] = lvl{items: make(map[uint64]*entry), y: noWatermark}
		}
		s.reps = append(s.reps, r)
	}
	return s, nil
}

// Config returns the normalized configuration.
func (s *Summary) Config() Config { return s.cfg }

// Count returns the number of tuples inserted.
func (s *Summary) Count() uint64 { return s.n }

// Add inserts the tuple (x, y).
func (s *Summary) Add(x, y uint64) {
	s.n++
	for _, r := range s.reps {
		deepest := r.h.Level(x)
		if deepest >= len(r.levels) {
			deepest = len(r.levels) - 1
		}
		for j := 0; j <= deepest; j++ {
			s.addLevel(&r.levels[j], x, y)
		}
	}
}

func (s *Summary) addLevel(l *lvl, x, y uint64) {
	if e, ok := l.items[x]; ok {
		switch {
		case y < e.y1:
			e.y2 = e.y1
			e.y1 = y
			heap.Fix(&l.pq, e.idx)
		case y < e.y2:
			e.y2 = y
		}
		return
	}
	if len(l.items) < s.alpha {
		e := &entry{x: x, y1: y, y2: noWatermark}
		l.items[x] = e
		heap.Push(&l.pq, e)
		return
	}
	// Capacity reached: keep the alpha identifiers with the smallest
	// min-y. Whether the newcomer displaces the current maximum or is
	// itself rejected, information at or above some y is lost, and the
	// watermark must record it.
	top := l.pq[0]
	if y >= top.y1 {
		if y < l.y {
			l.y = y
		}
		return
	}
	delete(l.items, top.x)
	if top.y1 < l.y {
		l.y = top.y1
	}
	// Reuse the evicted entry in place (it already sits at the heap root)
	// instead of handing it to the GC and allocating a fresh one.
	top.x, top.y1, top.y2 = x, y, noWatermark
	l.items[x] = top
	heap.Fix(&l.pq, 0)
}

// Query estimates the number of distinct x among tuples with y <= c.
func (s *Summary) Query(c uint64) (float64, error) {
	ests := s.estScratch[:0]
	for _, r := range s.reps {
		if v, ok := r.query(c); ok {
			ests = append(ests, v)
		}
	}
	s.estScratch = ests[:0]
	if len(ests) == 0 {
		return 0, ErrNoLevel
	}
	return median(ests), nil
}

func (r *rep) query(c uint64) (float64, bool) {
	for j := range r.levels {
		l := &r.levels[j]
		if l.y <= c {
			continue
		}
		count := 0
		for _, e := range l.items {
			if e.y1 <= c {
				count++
			}
		}
		return float64(count) * math.Ldexp(1, j), true
	}
	return 0, false
}

// Rarity estimates the fraction of distinct identifiers occurring exactly
// once among tuples with y <= c (Section 3.3).
func (s *Summary) Rarity(c uint64) (float64, error) {
	ests := s.estScratch[:0]
	for _, r := range s.reps {
		if v, ok := r.rarity(c); ok {
			ests = append(ests, v)
		}
	}
	s.estScratch = ests[:0]
	if len(ests) == 0 {
		return 0, ErrNoLevel
	}
	return median(ests), nil
}

func (r *rep) rarity(c uint64) (float64, bool) {
	for j := range r.levels {
		l := &r.levels[j]
		if l.y <= c {
			continue
		}
		ones, denom := 0, 0
		for _, e := range l.items {
			if e.y1 <= c {
				denom++
				if e.y2 > c {
					ones++
				}
			}
		}
		if denom == 0 {
			return 0, true
		}
		return float64(ones) / float64(denom), true
	}
	return 0, false
}

// Merge folds other — a summary built with the *same Config including
// Seed*, over a different substream — into the receiver, yielding the
// summary of the union. Distinct sampling is order- and partition-
// oblivious (the sample is a pure function of which (x, y) pairs were
// seen), so merging keeps the per-level guarantee: retain the alpha
// sampled identifiers with the smallest min-y, and a watermark at the
// smallest y either side has ever dropped. This is the distributed-streams
// use the Gibbons–Tirthapura structure was designed for.
//
// A summary built from a different configuration is rejected with a
// *compat.Error (wrapping compat.ErrIncompatible) naming the first field
// that differs, before any state changes.
func (s *Summary) Merge(other *Summary) error {
	if other == nil {
		return errors.New("corrf0: cannot merge a nil summary")
	}
	if other == s {
		return errors.New("corrf0: cannot merge a summary into itself")
	}
	switch {
	case s.cfg.Eps != other.cfg.Eps:
		return compat.Mismatch("eps", s.cfg.Eps, other.cfg.Eps)
	case s.cfg.Delta != other.cfg.Delta:
		return compat.Mismatch("delta", s.cfg.Delta, other.cfg.Delta)
	case s.cfg.XDomain != other.cfg.XDomain:
		return compat.Mismatch("xdomain", s.cfg.XDomain, other.cfg.XDomain)
	case s.cfg.Seed != other.cfg.Seed:
		return compat.Mismatch("seed", s.cfg.Seed, other.cfg.Seed)
	case s.alpha != other.alpha:
		return compat.Mismatch("alpha", s.alpha, other.alpha)
	case len(s.reps) != len(other.reps):
		return compat.Mismatch("reps", len(s.reps), len(other.reps))
	case len(s.reps[0].levels) != len(other.reps[0].levels):
		return compat.Mismatch("levels", len(s.reps[0].levels), len(other.reps[0].levels))
	}
	s.n += other.n
	for ri, r := range s.reps {
		or := other.reps[ri]
		for j := range r.levels {
			l, ol := &r.levels[j], &or.levels[j]
			if ol.y < l.y {
				l.y = ol.y
			}
			for _, e := range ol.items {
				s.mergeEntry(l, e)
			}
		}
	}
	return nil
}

// mergeEntry folds a sampled entry into level l, combining the two
// smallest occurrence values when the identifier is present on both sides.
func (s *Summary) mergeEntry(l *lvl, e *entry) {
	if cur, ok := l.items[e.x]; ok {
		// Merge the two (y1, y2) pairs into the joint two smallest.
		ys := [4]uint64{cur.y1, cur.y2, e.y1, e.y2}
		y1, y2 := uint64(noWatermark), uint64(noWatermark)
		for _, y := range ys {
			switch {
			case y < y1:
				y2 = y1
				y1 = y
			case y < y2:
				y2 = y
			}
		}
		if y1 < cur.y1 {
			cur.y1 = y1
			heap.Fix(&l.pq, cur.idx)
		}
		cur.y2 = y2
		return
	}
	if len(l.items) < s.alpha {
		ne := &entry{x: e.x, y1: e.y1, y2: e.y2}
		l.items[e.x] = ne
		heap.Push(&l.pq, ne)
		return
	}
	top := l.pq[0]
	if e.y1 >= top.y1 {
		if e.y1 < l.y {
			l.y = e.y1
		}
		return
	}
	delete(l.items, top.x)
	if top.y1 < l.y {
		l.y = top.y1
	}
	// Reuse the evicted entry in place, as addLevel does.
	top.x, top.y1, top.y2 = e.x, e.y1, e.y2
	l.items[e.x] = top
	heap.Fix(&l.pq, 0)
}

// Space returns the number of stored sample tuples across all levels and
// repetitions — the space metric of Figures 6 and 7.
func (s *Summary) Space() int64 {
	var total int64
	for _, r := range s.reps {
		for j := range r.levels {
			total += int64(len(r.levels[j].items))
		}
	}
	return total
}

// Levels returns the number of sampling levels per repetition.
func (s *Summary) Levels() int { return len(s.reps[0].levels) }

// Watermark returns Y_j of the first repetition, for diagnostics.
func (s *Summary) Watermark(j int) uint64 { return s.reps[0].levels[j].y }

func median(vs []float64) float64 {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// entryHeap is a max-heap of entries ordered by y1.
type entryHeap []*entry

func (h entryHeap) Len() int           { return len(h) }
func (h entryHeap) Less(i, j int) bool { return h[i].y1 > h[j].y1 }
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *entryHeap) Push(v interface{}) {
	e := v.(*entry)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
