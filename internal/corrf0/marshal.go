package corrf0

import (
	"container/heap"
	"encoding/binary"
	"errors"
)

// Binary serialization. As everywhere in this library, hash functions are
// regenerated from the configuration seed rather than serialized:
// UnmarshalBinary must be called on a Summary built by New with the same
// Config as the source.

const marshalVersion = 1

// ErrBadEncoding reports malformed or configuration-incompatible bytes.
var ErrBadEncoding = errors.New("corrf0: bad or incompatible encoding")

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Summary) MarshalBinary() ([]byte, error) {
	buf := []byte{marshalVersion}
	buf = binary.AppendUvarint(buf, s.n)
	buf = binary.AppendUvarint(buf, uint64(len(s.reps)))
	buf = binary.AppendUvarint(buf, uint64(len(s.reps[0].levels)))
	for _, r := range s.reps {
		for j := range r.levels {
			l := &r.levels[j]
			buf = binary.AppendUvarint(buf, l.y)
			buf = binary.AppendUvarint(buf, uint64(len(l.items)))
			for _, e := range l.items {
				buf = binary.AppendUvarint(buf, e.x)
				buf = binary.AppendUvarint(buf, e.y1)
				buf = binary.AppendUvarint(buf, e.y2)
			}
		}
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Summary) UnmarshalBinary(data []byte) error {
	if len(data) < 1 || data[0] != marshalVersion {
		return ErrBadEncoding
	}
	data = data[1:]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, ErrBadEncoding
		}
		data = data[n:]
		return v, nil
	}
	n, err := next()
	if err != nil {
		return err
	}
	reps, err := next()
	if err != nil {
		return err
	}
	levels, err := next()
	if err != nil {
		return err
	}
	if int(reps) != len(s.reps) || int(levels) != len(s.reps[0].levels) {
		return ErrBadEncoding
	}
	s.n = n
	for _, r := range s.reps {
		for j := range r.levels {
			y, err := next()
			if err != nil {
				return err
			}
			cnt, err := next()
			if err != nil {
				return err
			}
			if int(cnt) > s.alpha {
				return ErrBadEncoding
			}
			l := &r.levels[j]
			l.y = y
			l.items = make(map[uint64]*entry, cnt)
			l.pq = l.pq[:0]
			for i := uint64(0); i < cnt; i++ {
				x, err := next()
				if err != nil {
					return err
				}
				y1, err := next()
				if err != nil {
					return err
				}
				y2, err := next()
				if err != nil {
					return err
				}
				if y1 > y2 {
					return ErrBadEncoding
				}
				e := &entry{x: x, y1: y1, y2: y2}
				l.items[x] = e
				l.pq = append(l.pq, e)
				e.idx = len(l.pq) - 1
			}
			heap.Init(&l.pq)
		}
	}
	if len(data) != 0 {
		return ErrBadEncoding
	}
	return nil
}
