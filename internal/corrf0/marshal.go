package corrf0

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"math"
	"slices"

	"github.com/streamagg/correlated/internal/compat"
)

// Binary serialization. As everywhere in this library, hash functions are
// regenerated from the configuration seed rather than serialized:
// UnmarshalBinary must be called on a Summary built by New with the same
// Config as the source. The configuration fields that determine
// compatibility are carried in the image and validated on decode, so a
// mismatched restore fails with a typed error instead of silently mixing
// hash functions.

// Version 2: a config-compatibility block follows the version byte.
const marshalVersion = 2

// ErrBadEncoding reports malformed or configuration-incompatible bytes.
var ErrBadEncoding = errors.New("corrf0: bad or incompatible encoding")

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Summary) MarshalBinary() ([]byte, error) {
	buf := []byte{marshalVersion}
	// Config-compatibility block, validated by UnmarshalBinary.
	buf = binary.AppendUvarint(buf, math.Float64bits(s.cfg.Eps))
	buf = binary.AppendUvarint(buf, math.Float64bits(s.cfg.Delta))
	buf = binary.AppendUvarint(buf, s.cfg.XDomain)
	buf = binary.AppendUvarint(buf, s.cfg.Seed)
	buf = binary.AppendUvarint(buf, uint64(s.alpha))
	buf = binary.AppendUvarint(buf, s.n)
	buf = binary.AppendUvarint(buf, uint64(len(s.reps)))
	buf = binary.AppendUvarint(buf, uint64(len(s.reps[0].levels)))
	for _, r := range s.reps {
		for j := range r.levels {
			l := &r.levels[j]
			buf = binary.AppendUvarint(buf, l.y)
			buf = binary.AppendUvarint(buf, uint64(len(l.items)))
			// Ascending x order keeps the encoding canonical: a given
			// state always marshals to the same bytes.
			xs := make([]uint64, 0, len(l.items))
			for x := range l.items {
				xs = append(xs, x)
			}
			slices.Sort(xs)
			for _, x := range xs {
				e := l.items[x]
				buf = binary.AppendUvarint(buf, e.x)
				buf = binary.AppendUvarint(buf, e.y1)
				buf = binary.AppendUvarint(buf, e.y2)
			}
		}
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Summary) UnmarshalBinary(data []byte) error {
	if len(data) < 1 || data[0] != marshalVersion {
		return ErrBadEncoding
	}
	data = data[1:]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, ErrBadEncoding
		}
		data = data[n:]
		return v, nil
	}
	var cfgVals [5]uint64 // eps bits, delta bits, xdomain, seed, alpha
	for i := range cfgVals {
		v, err := next()
		if err != nil {
			return err
		}
		cfgVals[i] = v
	}
	switch {
	case cfgVals[0] != math.Float64bits(s.cfg.Eps):
		return compat.Mismatch("eps", s.cfg.Eps, math.Float64frombits(cfgVals[0]))
	case cfgVals[1] != math.Float64bits(s.cfg.Delta):
		return compat.Mismatch("delta", s.cfg.Delta, math.Float64frombits(cfgVals[1]))
	case cfgVals[2] != s.cfg.XDomain:
		return compat.Mismatch("xdomain", s.cfg.XDomain, cfgVals[2])
	case cfgVals[3] != s.cfg.Seed:
		return compat.Mismatch("seed", s.cfg.Seed, cfgVals[3])
	case cfgVals[4] != uint64(s.alpha):
		return compat.Mismatch("alpha", s.alpha, cfgVals[4])
	}
	n, err := next()
	if err != nil {
		return err
	}
	reps, err := next()
	if err != nil {
		return err
	}
	levels, err := next()
	if err != nil {
		return err
	}
	if int(reps) != len(s.reps) {
		return compat.Mismatch("reps", len(s.reps), reps)
	}
	if int(levels) != len(s.reps[0].levels) {
		return compat.Mismatch("levels", len(s.reps[0].levels), levels)
	}
	s.n = n
	for _, r := range s.reps {
		for j := range r.levels {
			y, err := next()
			if err != nil {
				return err
			}
			cnt, err := next()
			if err != nil {
				return err
			}
			// Unsigned comparison: a forged count >= 2^63 must not slip
			// past as a negative int and reach the map pre-size below.
			if cnt > uint64(s.alpha) {
				return ErrBadEncoding
			}
			l := &r.levels[j]
			l.y = y
			l.items = make(map[uint64]*entry, cnt)
			l.pq = l.pq[:0]
			for i := uint64(0); i < cnt; i++ {
				x, err := next()
				if err != nil {
					return err
				}
				y1, err := next()
				if err != nil {
					return err
				}
				y2, err := next()
				if err != nil {
					return err
				}
				if y1 > y2 {
					return ErrBadEncoding
				}
				e := &entry{x: x, y1: y1, y2: y2}
				l.items[x] = e
				l.pq = append(l.pq, e)
				e.idx = len(l.pq) - 1
			}
			heap.Init(&l.pq)
		}
	}
	if len(data) != 0 {
		return ErrBadEncoding
	}
	return nil
}
