package corrf0

import (
	"testing"
	"testing/quick"

	"github.com/streamagg/correlated/internal/hash"
)

// TestPropertyStructureInvariants: after arbitrary streams, every level of
// every repetition satisfies (a) capacity, (b) y1 <= y2 per entry, (c)
// max-heap order on y1, (d) heap indices consistent, (e) map and heap
// agree on membership.
func TestPropertyStructureInvariants(t *testing.T) {
	prop := func(seed uint64, alphaRaw uint8) bool {
		alpha := 4 + int(alphaRaw%60)
		s, err := New(Config{
			Eps: 0.2, Delta: 0.2, XDomain: 1 << 12,
			Alpha: alpha, Reps: 2, Seed: seed,
		})
		if err != nil {
			return false
		}
		rng := hash.New(seed ^ 0x77)
		for i := 0; i < 20000; i++ {
			s.Add(rng.Uint64n(1<<12), rng.Uint64n(1<<16))
		}
		for _, r := range s.reps {
			for j := range r.levels {
				l := &r.levels[j]
				if len(l.items) > alpha {
					return false
				}
				if len(l.items) != len(l.pq) {
					return false
				}
				for i, e := range l.pq {
					if e.idx != i {
						return false
					}
					if e.y1 > e.y2 {
						return false
					}
					if got, ok := l.items[e.x]; !ok || got != e {
						return false
					}
					// Max-heap order on y1.
					if left := 2*i + 1; left < len(l.pq) && l.pq[left].y1 > e.y1 {
						return false
					}
					if right := 2*i + 2; right < len(l.pq) && l.pq[right].y1 > e.y1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestPropertyExactBelowCapacity: streams with fewer distinct identifiers
// than alpha are answered exactly at every cutoff (level 0 retains
// everything).
func TestPropertyExactBelowCapacity(t *testing.T) {
	prop := func(seed uint64) bool {
		s, err := New(Config{
			Eps: 0.3, Delta: 0.2, XDomain: 1 << 10,
			Alpha: 128, Reps: 1, Seed: seed,
		})
		if err != nil {
			return false
		}
		rng := hash.New(seed ^ 0x99)
		const distinct = 100 // < alpha
		minY := make(map[uint64]uint64)
		for i := 0; i < 3000; i++ {
			x := rng.Uint64n(distinct)
			y := rng.Uint64n(1 << 14)
			s.Add(x, y)
			if old, ok := minY[x]; !ok || y < old {
				minY[x] = y
			}
		}
		for trial := 0; trial < 5; trial++ {
			c := rng.Uint64n(1 << 14)
			want := 0
			for _, y := range minY {
				if y <= c {
					want++
				}
			}
			got, err := s.Query(c)
			if err != nil || got != float64(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRarityInUnitInterval: rarity is always a valid fraction.
func TestPropertyRarityInUnitInterval(t *testing.T) {
	prop := func(seed uint64) bool {
		s, err := New(Config{
			Eps: 0.2, Delta: 0.2, XDomain: 1 << 12, Reps: 3, Seed: seed,
		})
		if err != nil {
			return false
		}
		rng := hash.New(seed)
		for i := 0; i < 5000; i++ {
			s.Add(rng.Uint64n(1<<12), rng.Uint64n(1<<12))
		}
		for trial := 0; trial < 5; trial++ {
			r, err := s.Rarity(rng.Uint64n(1 << 12))
			if err != nil || r < 0 || r > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
