package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/streamagg/correlated/internal/fault"
)

type replayed struct {
	lsn     uint64
	typ     RecordType
	payload []byte
}

func collect(t *testing.T, w *WAL, from uint64) []replayed {
	t.Helper()
	var got []replayed
	err := w.Replay(from, func(lsn uint64, typ RecordType, payload []byte) error {
		got = append(got, replayed{lsn, typ, append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

// TestAppendReplayRoundTrip: records come back in order with their LSNs
// and payloads across segment rotations, and LSNs keep climbing across
// a close/reopen.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 256, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	var want []replayed
	for i := 0; i < 40; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 1+i%37)
		typ := RecordIngest
		if i%5 == 0 {
			typ = RecordPush
		}
		lsn, err := w.Append(typ, payload)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("append %d: lsn %d", i, lsn)
		}
		want = append(want, replayed{lsn, typ, payload})
	}
	if st := w.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation, stats %+v", st)
	}
	got := collect(t, w, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].lsn != want[i].lsn || got[i].typ != want[i].typ || !bytes.Equal(got[i].payload, want[i].payload) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// Replay from the middle skips the covered prefix.
	tail := collect(t, w, 25)
	if len(tail) != 15 || tail[0].lsn != 26 {
		t.Fatalf("suffix replay: %d records, first %d", len(tail), tail[0].lsn)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{SegmentBytes: 256, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if lsn, err := w2.Append(RecordIngest, []byte("after reopen")); err != nil || lsn != 41 {
		t.Fatalf("append after reopen: lsn %d err %v", lsn, err)
	}
	got2 := collect(t, w2, 0)
	if len(got2) != 41 || got2[40].lsn != 41 {
		t.Fatalf("replay after reopen: %d records", len(got2))
	}
}

// TestTornTailTruncated: garbage appended after the last whole frame of
// the final segment — a torn write — is dropped on Open, and appending
// afterwards resumes at the right LSN.
func TestTornTailTruncated(t *testing.T) {
	for _, tear := range []struct {
		name string
		grow func([]byte) []byte
	}{
		{"partial header", func(b []byte) []byte { return append(b, 0xAB, 0xCD) }},
		{"truncated payload", func(b []byte) []byte {
			frame := make([]byte, 0, 32)
			frame = binary.LittleEndian.AppendUint32(frame, 100) // claims 100 bytes
			frame = binary.LittleEndian.AppendUint32(frame, 0xDEAD)
			frame = append(frame, byte(RecordIngest))
			frame = append(frame, []byte("only a few")...)
			return append(b, frame...)
		}},
		{"bad crc", func(b []byte) []byte {
			frame := make([]byte, 0, 16)
			frame = binary.LittleEndian.AppendUint32(frame, 3)
			frame = binary.LittleEndian.AppendUint32(frame, 0xBADC0DE)
			frame = append(frame, byte(RecordIngest))
			frame = append(frame, 'x', 'y', 'z')
			return append(b, frame...)
		}},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(dir, Options{Sync: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if _, err := w.Append(RecordIngest, []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			seg := filepath.Join(dir, segmentName(1))
			raw, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, tear.grow(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			w2, err := Open(dir, Options{Sync: SyncAlways})
			if err != nil {
				t.Fatalf("open with torn tail: %v", err)
			}
			defer w2.Close()
			got := collect(t, w2, 0)
			if len(got) != 3 {
				t.Fatalf("replayed %d records after torn tail, want 3", len(got))
			}
			if lsn, err := w2.Append(RecordPush, []byte("resume")); err != nil || lsn != 4 {
				t.Fatalf("append after recovery: lsn %d err %v", lsn, err)
			}
			if info, _ := os.Stat(seg); info.Size() != int64(len(raw))+frameSize+6 {
				t.Fatalf("torn tail not truncated before append: size %d", info.Size())
			}
		})
	}
}

// TestCorruptSealedSegmentFatal: a bad frame in a sealed (fsynced at
// seal) segment is corruption, not a torn tail — Open must refuse.
func TestCorruptSealedSegmentFatal(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append(RecordIngest, bytes.Repeat([]byte{1}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.Stats(); st.Segments < 2 {
		t.Fatalf("no rotation: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the first (sealed) segment.
	seg := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+frameSize+5] ^= 0xFF
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncOff}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over corrupt sealed segment: %v", err)
	}
}

// TestCheckpointPrunes: a checkpoint deletes exactly the sealed
// segments whose records are all covered, and replay from the covered
// LSN sees only the suffix.
func TestCheckpointPrunes(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 128, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 30; i++ {
		if _, err := w.Append(RecordIngest, bytes.Repeat([]byte{byte(i)}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	before := w.Stats()
	if before.Segments < 3 {
		t.Fatalf("want several segments, got %+v", before)
	}
	covered := w.LastLSN() - 5
	if err := w.Checkpoint(covered); err != nil {
		t.Fatal(err)
	}
	after := w.Stats()
	if after.PrunedSegments == 0 || after.Segments >= before.Segments {
		t.Fatalf("checkpoint pruned nothing: before %+v after %+v", before, after)
	}
	if after.Checkpoints != 1 {
		t.Fatalf("checkpoint count: %+v", after)
	}
	var first uint64
	var markers int
	err = w.Replay(covered, func(lsn uint64, typ RecordType, payload []byte) error {
		if first == 0 {
			first = lsn
		}
		if typ == RecordCheckpoint {
			markers++
			got, n := binary.Uvarint(payload)
			if n <= 0 || got != covered {
				return fmt.Errorf("marker payload %d want %d", got, covered)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != covered+1 {
		t.Fatalf("suffix replay starts at %d, want %d", first, covered+1)
	}
	if markers != 1 {
		t.Fatalf("replayed %d checkpoint markers, want 1", markers)
	}
	// Records after the covered LSN must all still be on disk: the
	// segment holding them (or the active one) is never pruned.
	files, err := listSegments(fault.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if files[0] > covered+1 {
		t.Fatalf("pruning discarded uncovered records: oldest segment starts at %d, covered %d",
			files[0], covered)
	}
}

// TestSyncPolicies: every policy appends and replays; SyncAlways
// reports an fsync per append, and the OnFsync hook observes them.
func TestSyncPolicies(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		t.Run(p.String(), func(t *testing.T) {
			var observed int
			w, err := Open(t.TempDir(), Options{
				Sync:    p,
				OnFsync: func(d time.Duration) { observed++ },
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if _, err := w.Append(RecordIngest, []byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			if p == SyncAlways {
				if st := w.Stats(); st.Fsyncs != 5 {
					t.Fatalf("SyncAlways fsyncs: %+v", st)
				}
				if observed != 5 {
					t.Fatalf("OnFsync observed %d", observed)
				}
			}
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
			if got := collect(t, w, 0); len(got) != 5 {
				t.Fatalf("replayed %d", len(got))
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := w.Append(RecordIngest, nil); !errors.Is(err, ErrClosed) {
				t.Fatalf("append after close: %v", err)
			}
		})
	}
}

// TestParseSyncPolicy covers the flag spellings.
func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"": SyncAlways, "always": SyncAlways, "interval": SyncInterval, "off": SyncOff,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestOversizedPayloadRejected: a frame on disk claiming more than
// MaxPayload is treated as malformed before any allocation happens; in
// the final segment that reads as a torn tail.
func TestOversizedPayloadRejected(t *testing.T) {
	dir := t.TempDir()
	w2, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Append(RecordIngest, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	seg := filepath.Join(dir, segmentName(1))
	raw, _ := os.ReadFile(seg)
	frame := make([]byte, 0, frameSize)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(MaxPayload+1))
	frame = binary.LittleEndian.AppendUint32(frame, 0)
	frame = append(frame, byte(RecordIngest))
	os.WriteFile(seg, append(raw, frame...), 0o644)
	w3, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatalf("hostile length in final segment must read as torn tail: %v", err)
	}
	defer w3.Close()
	if got := collect(t, w3, 0); len(got) != 1 {
		t.Fatalf("replayed %d records", len(got))
	}
}

// TestTornSegmentCreationRecovers: a crash between rotation's file
// create and the header write leaves an empty or half-headered final
// segment; Open must reinitialize it instead of refusing startup, and
// no acknowledged record can be lost (none could exist before the
// header's first fsync).
func TestTornSegmentCreationRecovers(t *testing.T) {
	for _, tear := range []struct {
		name  string
		bytes []byte
	}{
		{"empty file", nil},
		{"partial header", []byte("corrdw")},
		{"garbled header", bytes.Repeat([]byte{0xFF}, headerSize)},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(dir, Options{Sync: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				if _, err := w.Append(RecordIngest, []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			// Simulate the torn rotation: the next segment exists but
			// its header never (fully) landed.
			if err := os.WriteFile(filepath.Join(dir, segmentName(5)), tear.bytes, 0o644); err != nil {
				t.Fatal(err)
			}
			w2, err := Open(dir, Options{Sync: SyncAlways})
			if err != nil {
				t.Fatalf("open over torn segment creation: %v", err)
			}
			defer w2.Close()
			if got := collect(t, w2, 0); len(got) != 4 {
				t.Fatalf("replayed %d records, want 4", len(got))
			}
			// LastLSN must reflect the retained records even before the
			// first new append — a snapshot taken now checkpoints at 4,
			// not 0 (covered=0 would double-apply on the next restart).
			if got := w2.LastLSN(); got != 4 {
				t.Fatalf("LastLSN after reinit: %d, want 4", got)
			}
			if lsn, err := w2.Append(RecordIngest, []byte("resume")); err != nil || lsn != 5 {
				t.Fatalf("append after reinit: lsn %d err %v", lsn, err)
			}
		})
	}
}

// TestBadHeaderWithDataRefuses: once a final segment holds records, a
// garbled header can no longer be a torn creation (the first record's
// fsync persisted the header) — Open must refuse rather than silently
// reinitialize away acknowledged data.
func TestBadHeaderWithDataRefuses(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(RecordIngest, []byte("acknowledged")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF // corrupt the magic, keep the record bytes
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: SyncAlways}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad header over real data must refuse, got: %v", err)
	}
}

// TestAppendNoSyncDurableAfterSync: AppendNoSync defers the SyncAlways
// fsync to an explicit Sync — the group-commit shape, where the append
// is ordered inside a critical section and the durability barrier runs
// outside it. Records land with sequential LSNs, replay sees them, and
// a reopen after Sync still has them.
func TestAppendNoSyncDurableAfterSync(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(RecordIngest, []byte("synced-inline")); err != nil {
		t.Fatal(err)
	}
	lsn2, err := w.AppendNoSync(RecordIngestGroup, []byte("deferred"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn2 != 2 {
		t.Fatalf("LSN %d, want 2", lsn2)
	}
	fsBefore := w.Stats().Fsyncs
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Fsyncs; got != fsBefore+1 {
		t.Fatalf("Sync issued %d fsyncs, want 1", got-fsBefore)
	}
	// A second Sync with nothing dirty is free.
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Fsyncs; got != fsBefore+1 {
		t.Fatalf("idle Sync issued an fsync")
	}
	got := collect(t, w, 0)
	if len(got) != 2 || got[1].typ != RecordIngestGroup || string(got[1].payload) != "deferred" {
		t.Fatalf("replay: %+v", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got = collect(t, w2, 0)
	if len(got) != 2 || string(got[1].payload) != "deferred" {
		t.Fatalf("reopen replay: %+v", got)
	}
}
