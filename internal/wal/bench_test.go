package wal

import (
	"fmt"
	"testing"
)

// BenchmarkWALAppend prices the ack-path cost of each fsync policy:
// this is exactly what POST /v1/ingest pays per request before it can
// acknowledge, on top of the engine's AddBatch. Payload is a typical
// chunked ingest batch (~1 KiB of counted tupleio records is ~100
// tuples; we use raw bytes here — the WAL never looks inside).
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, p := range []SyncPolicy{SyncOff, SyncInterval, SyncAlways} {
		b.Run(fmt.Sprintf("fsync=%s", p), func(b *testing.B) {
			w, err := Open(b.TempDir(), Options{Sync: p})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Append(RecordIngest, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
