// Package wal is the durable-ingest subsystem of the corrd service: a
// segmented append-only write-ahead log with CRC32C-framed records, the
// piece that closes the durability window left by periodic snapshots.
// The service logs each accepted ingest batch and push image before
// acknowledging it, so an acknowledged request survives a crash; on
// restart the engine is rebuilt as snapshot + replayed log suffix.
//
// # Log structure
//
// The log is a directory of segment files named wal-%016x.seg, where
// the hex field is the LSN (log sequence number, 1-based) of the first
// record in the segment. Each segment starts with a fixed header
// (magic, version, first LSN) and then holds a run of frames:
//
//	length  uint32 LE   payload length
//	crc     uint32 LE   CRC32C over type byte + payload
//	type    uint8       record type
//	payload length bytes
//
// Records are assigned consecutive LSNs in append order across
// segments. When the active segment reaches SegmentBytes it is sealed —
// synced to disk regardless of fsync policy, so a sealed segment is
// always fully durable — and a new one is started.
//
// # Fsync policy
//
// SyncAlways syncs inside every Append, so a returned Append is a
// durability barrier: the acknowledged record survives kill -9. This is
// the policy the ack path pays for and the one BenchmarkWALAppend
// prices. SyncInterval syncs on a background ticker (crash loses at
// most the last interval of acknowledged records); SyncOff leaves
// syncing to the OS page cache (crash durability is best-effort, but
// the log still orders and frames records for clean restarts).
//
// # Recovery
//
// Open validates the segment chain and scans the final segment. A
// frame that fails its length or CRC check in the final segment is a
// torn tail — the write that was in flight when the process died — and
// the segment is truncated to the last whole frame. Under SyncAlways a
// torn frame can only be an unacknowledged record, so truncation never
// discards acknowledged data: every frame behind the last fsync barrier
// is intact because appends are sequential and sync covers a prefix.
// A bad frame in a sealed (non-final) segment can not be a torn write —
// sealing synced it — so it is reported as corruption instead of being
// silently dropped.
//
// # Checkpoints
//
// Checkpoint(covered) appends a checkpoint-marker record recording that
// some external snapshot captures the effects of every record with
// LSN <= covered, syncs it, and then deletes sealed segments whose
// records are all covered. Replay starts from an LSN the caller
// recovers from its snapshot, so pruned segments are never needed
// again. The marker itself also lets an Open-time reader see where the
// last snapshot cut the log.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/streamagg/correlated/internal/fault"
)

// RecordType tags what a record's payload is; the WAL itself treats the
// payload as opaque bytes.
type RecordType uint8

const (
	// RecordIngest is a counted tupleio batch (tupleio.AppendCountedBatch)
	// accepted through POST /v1/ingest.
	RecordIngest RecordType = 1
	// RecordPush is a marshaled summary image folded in through
	// POST /v1/push (or re-queued locally after a failed upstream push).
	RecordPush RecordType = 2
	// RecordReset begins a site's push-then-reset round: the engine was
	// reset at this log position and the payload — the merged image
	// that was marshaled just before the reset — is in flight to the
	// coordinator. Replay applies the reset and stashes the image; a
	// later RecordPushAck discards it, and an un-acked image is folded
	// back at the end of replay so acknowledged ingest is never lost.
	RecordReset RecordType = 3
	// RecordCheckpoint carries uvarint(covered): a snapshot durable
	// outside the log captures every record with LSN <= covered.
	RecordCheckpoint RecordType = 4
	// RecordPushAck closes a push round: the coordinator acknowledged
	// the image carried by the round's RecordReset. Once this record is
	// durable, replay will never re-push that image upstream. Empty
	// payload.
	RecordPushAck RecordType = 5
	// RecordFoldback closes a push round the other way: the ship
	// failed and the payload image was merged back into the engine. One
	// record carries both effects (merge + round closed) so a crash can
	// never replay them separately and double-apply the image.
	RecordFoldback RecordType = 6
	// RecordIngestGroup is one group-commit unit: uvarint member count
	// followed by that many counted tupleio batches in commit order —
	// the batches the service applied under a single critical section,
	// drained with a single engine flush, and acknowledged behind this
	// record's single fsync. The group boundary is part of the record so
	// replay reproduces the worker batch boundaries of the live run
	// exactly: apply every member batch, then flush once. A group of one
	// is written as a plain RecordIngest instead.
	RecordIngestGroup RecordType = 7
	// RecordKeyedIngestGroup is a group-commit unit touching at least
	// one non-default tenant: uvarint member count followed by that many
	// keyed batches (tupleio.AppendKeyedBatch — tenant prefix then the
	// counted batch) in commit order. A group whose members all address
	// the default tenant is written in the legacy forms above, so
	// single-tenant logs stay byte-identical to pre-tenant ones.
	RecordKeyedIngestGroup RecordType = 8
	// RecordKeyedPush is a push image for a non-default tenant: a
	// tupleio tenant prefix followed by the marshaled summary image.
	// Default-tenant pushes keep the legacy RecordPush form.
	RecordKeyedPush RecordType = 9
	// RecordProbe is a no-op health probe with an empty payload: the
	// record Probe appends (and fsyncs) to prove the log can take
	// durable writes again after a fault. Replay and replication skip
	// it — it carries no state, only the evidence of a working disk.
	RecordProbe RecordType = 10
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs inside every Append: an acknowledged record
	// survives kill -9. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker (Options.SyncEvery).
	SyncInterval
	// SyncOff never fsyncs on the append path (segment seals and Close
	// still sync); durability is left to the OS.
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the flag spelling used by cmd/corrd.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
}

// Options configures a WAL. The zero value is usable: SyncAlways,
// 64 MiB segments.
type Options struct {
	// SegmentBytes is the rotation threshold; a segment is sealed once
	// it reaches this size. <= 0 means 64 MiB. An oversized record still
	// goes into a single (oversized) segment.
	SegmentBytes int64
	// Sync selects the fsync policy.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval ticker period; <= 0 means 100ms.
	SyncEvery time.Duration
	// OnFsync, when set, observes the wall-clock duration of every
	// fsync on the append/checkpoint path (for latency histograms).
	OnFsync func(time.Duration)
	// OnSyncError, when set, receives errors from the SyncInterval
	// background loop — the one sync path with no caller to return to.
	// They are also counted in Stats.SyncErrors.
	OnSyncError func(error)
	// FirstLSN, when > 0, numbers the first record of a brand-new log
	// (an empty directory) FirstLSN instead of 1. A promoted replica
	// uses it to continue its former primary's LSN space, so the LSNs
	// in its snapshots and its own log never collide. Ignored when the
	// directory already holds segments.
	FirstLSN uint64
	// FS is the filesystem the log lives on; nil means the real OS.
	// Tests and chaos harnesses hand a *fault.Injector here to make the
	// disk fail on cue (internal/fault).
	FS fault.FS
}

const (
	defaultSegmentBytes = 64 << 20
	defaultSyncEvery    = 100 * time.Millisecond

	// MaxPayload bounds a single record; a frame claiming more is
	// malformed by construction, which also bounds replay-side
	// allocation before any CRC work happens.
	MaxPayload = 1 << 30

	headerSize = 17 // magic(8) + version(1) + firstLSN(8)
	frameSize  = 9  // length(4) + crc(4) + type(1)
	walVersion = 1
)

var (
	magic = [8]byte{'c', 'o', 'r', 'r', 'd', 'w', 'a', 'l'}

	castagnoli = crc32.MakeTable(crc32.Castagnoli)

	// ErrClosed is returned by operations on a closed WAL.
	ErrClosed = errors.New("wal: closed")
	// ErrCorrupt reports a malformed segment that cannot be explained
	// by a torn tail write (bad header, bad frame in a sealed segment,
	// broken LSN chain).
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrBroken marks the log sticky-broken: a failed append could not
	// be rewound, so a later record could sit behind garbage and be
	// truncated away as a torn tail on restart. Every Append returns an
	// error wrapping ErrBroken until Probe repairs the tail — the
	// service's health machine keys its healthy→degraded transition on
	// this sentinel.
	ErrBroken = errors.New("wal: log is broken")
	// ErrTruncated is returned by Follow when the requested start
	// position has been pruned by a checkpoint: the records are gone and
	// the caller must resynchronize from a snapshot instead.
	ErrTruncated = errors.New("wal: follow position pruned by checkpoint")

	// errFollowStopped is the internal signal that a follower's stop
	// channel fired; Follow maps it to a nil return.
	errFollowStopped = errors.New("wal: follow stopped")
)

// Stats is a point-in-time snapshot of the WAL's counters, safe to read
// concurrently with appends.
type Stats struct {
	Segments       int64  // segment files currently on disk
	Appends        uint64 // records appended this process
	AppendedBytes  uint64 // frame bytes appended this process
	Fsyncs         uint64 // fsyncs issued on the append/checkpoint path
	SyncErrors     uint64 // failed fsyncs in the background interval loop
	Checkpoints    uint64 // checkpoint markers written
	PrunedSegments uint64 // sealed segments deleted by checkpoints
	LastLSN        uint64 // LSN of the most recently appended record
}

// WAL is a segmented write-ahead log. All methods are safe for
// concurrent use; appends are serialized internally, so callers that
// need "log order == apply order" must hold their own lock across the
// apply + Append pair.
type WAL struct {
	dir  string
	opts Options
	fs   fault.FS

	mu       sync.Mutex
	f        fault.File // active segment
	size     int64      // bytes written to the active segment
	segFirst uint64     // first LSN of the active segment
	nextLSN  uint64     // LSN the next Append will get
	dirty    bool       // unsynced bytes in the active segment
	closed   bool
	broken   error  // sticky: a partial append could not be rewound
	frame    []byte // reusable frame-assembly buffer

	// durable is the highest LSN known to be on stable storage — the
	// frontier Follow hands to followers under SyncAlways/SyncInterval,
	// so a replica can never hold a record that a torn-tail truncation
	// would remove from this log after a crash. Advanced in syncLocked.
	durable uint64
	// syncedSize is the active segment's byte length as of the last
	// successful fsync (or as recovered at Open): the offset, paired
	// with durable, that rewindUnsyncedLocked truncates back to when a
	// SyncAlways durability barrier fails. Maintained alongside durable
	// in syncLocked and reset by openActive/startSegment.
	syncedSize int64
	// notify is closed and replaced whenever the followable frontier
	// advances; followers wait on the channel they snapshotted.
	notify chan struct{}

	// sealed is every non-active segment: firstLSN -> lastLSN,
	// maintained for checkpoint pruning.
	sealed map[uint64]uint64

	segments       atomic.Int64
	appends        atomic.Uint64
	appendedBytes  atomic.Uint64
	fsyncs         atomic.Uint64
	syncErrors     atomic.Uint64
	checkpoints    atomic.Uint64
	prunedSegments atomic.Uint64
	lastLSN        atomic.Uint64

	done chan struct{}
	wg   sync.WaitGroup
}

func segmentName(firstLSN uint64) string { return fmt.Sprintf("wal-%016x.seg", firstLSN) }

// syncDir fsyncs the log directory so segment creations and deletions
// survive a power loss — without it, a freshly rotated segment full of
// fsynced (acknowledged) records could itself vanish with the directory
// entry.
func (w *WAL) syncDir() error {
	d, err := w.fs.Open(w.dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// Open opens (creating if needed) the log in dir, validates the segment
// chain, truncates a torn tail in the final segment, and positions the
// writer after the last whole record. It never truncates a sealed
// segment: corruption there is an error, not data to discard.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = defaultSyncEvery
	}
	if opts.FS == nil {
		opts.FS = fault.OS()
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{
		dir:    dir,
		opts:   opts,
		fs:     opts.FS,
		sealed: map[uint64]uint64{},
		done:   make(chan struct{}),
		notify: make(chan struct{}),
	}
	if err := w.recover(); err != nil {
		return nil, err
	}
	// Everything recover left on disk is the replay baseline: it is what
	// a crash-restart would rebuild from, so followers may have it.
	w.durable = w.lastLSN.Load()
	if opts.Sync == SyncInterval {
		w.wg.Add(1)
		go w.syncLoop()
	}
	return w, nil
}

// listSegments returns the segment firstLSNs in dir, ascending.
func listSegments(fsys fault.FS, dir string) ([]uint64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var firsts []uint64
	for _, e := range entries {
		var first uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%016x.seg", &first); err != nil {
			continue // foreign file; ignore
		}
		firsts = append(firsts, first)
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	return firsts, nil
}

// recover scans the on-disk state: validates headers and the LSN chain,
// counts records, truncates the final segment's torn tail, and opens
// the active segment for appending.
func (w *WAL) recover() error {
	firsts, err := listSegments(w.fs, w.dir)
	if err != nil {
		return err
	}
	if len(firsts) == 0 {
		first := uint64(1)
		if w.opts.FirstLSN > 0 {
			first = w.opts.FirstLSN
		}
		return w.startSegment(first)
	}
	next := firsts[0]
	for i, first := range firsts {
		if first != next {
			return fmt.Errorf("%w: segment chain broken at %s (expected first LSN %d)",
				ErrCorrupt, segmentName(first), next)
		}
		final := i == len(firsts)-1
		n, validEnd, err := w.scanSegment(filepath.Join(w.dir, segmentName(first)), first, final)
		if err != nil {
			return err
		}
		if final {
			if validEnd < 0 {
				// Torn header: the crash died inside segment creation,
				// before anything in it could have been acknowledged.
				// Recreate it cleanly.
				if err := w.fs.Remove(filepath.Join(w.dir, segmentName(first))); err != nil {
					return fmt.Errorf("wal: %w", err)
				}
				return w.startSegment(first)
			}
			return w.openActive(first, n-first, validEnd)
		}
		// n == first marks a sealed segment with zero records (a crash
		// right after rotation); its degenerate lastLSN first-1 makes
		// any checkpoint prune it.
		w.sealed[first] = n - 1
		w.segments.Add(1)
		next = n
	}
	return nil // unreachable: the loop always returns on the final segment
}

// scanSegment validates one segment file and returns the LSN one past
// its last whole record plus the byte offset where valid data ends. In
// the final segment a bad frame marks a torn tail (scan stops, caller
// truncates) and a bad header marks a creation torn mid-rotation
// (validEnd -1: caller reinitializes); in a sealed segment either is
// corruption.
func (w *WAL) scanSegment(path string, firstLSN uint64, final bool) (nextLSN uint64, validEnd int64, err error) {
	f, err := w.fs.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	fileSize := info.Size()
	// A final segment no larger than its header can only come from a
	// rotation torn by a crash: appends follow the header write, so no
	// record — let alone an acknowledged one — can live in it.
	// Reinitialize it. A bad header on a segment that *does* hold data
	// is corruption: an acknowledged record's fsync would have
	// persisted the header too, so refuse rather than silently discard.
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		if final && fileSize <= headerSize {
			return firstLSN, -1, nil // torn creation: reinitialize
		}
		return 0, 0, fmt.Errorf("%w: %s: short header", ErrCorrupt, filepath.Base(path))
	}
	if [8]byte(hdr[:8]) != magic || hdr[8] != walVersion ||
		binary.LittleEndian.Uint64(hdr[9:]) != firstLSN {
		if final && fileSize <= headerSize {
			return firstLSN, -1, nil
		}
		return 0, 0, fmt.Errorf("%w: %s: bad header", ErrCorrupt, filepath.Base(path))
	}
	lsn := firstLSN
	off := int64(headerSize)
	var fh [frameSize]byte
	payload := make([]byte, 0, 4096)
	for off < fileSize {
		n, _, _, err := readFrame(f, fileSize-off, fh[:], &payload)
		if err != nil {
			if final {
				return lsn, off, nil // torn tail: valid prefix ends here
			}
			return 0, 0, fmt.Errorf("%w: %s at offset %d (record %d): %v",
				ErrCorrupt, filepath.Base(path), off, lsn, err)
		}
		off += n
		lsn++
	}
	return lsn, off, nil
}

// readFrame reads one frame from r, which has remain bytes left. The
// payload is read into *payload (grown as needed). It returns the total
// frame length consumed. Any malformation — length exceeding the
// remaining bytes or MaxPayload, CRC mismatch, short read — is an
// error; the caller decides whether that means torn tail or corruption.
func readFrame(r io.Reader, remain int64, fh []byte, payload *[]byte) (n int64, typ RecordType, data []byte, err error) {
	if remain < frameSize {
		return 0, 0, nil, errors.New("short frame header")
	}
	if _, err := io.ReadFull(r, fh); err != nil {
		return 0, 0, nil, err
	}
	length := binary.LittleEndian.Uint32(fh[0:4])
	crc := binary.LittleEndian.Uint32(fh[4:8])
	typ = RecordType(fh[8])
	if length > MaxPayload || int64(length) > remain-frameSize {
		return 0, 0, nil, fmt.Errorf("frame claims %d payload bytes with %d remaining", length, remain-frameSize)
	}
	if cap(*payload) < int(length) {
		*payload = make([]byte, length)
	}
	data = (*payload)[:length]
	if _, err := io.ReadFull(r, data); err != nil {
		return 0, 0, nil, err
	}
	sum := crc32.Update(crc32.Checksum(fh[8:9], castagnoli), castagnoli, data)
	if sum != crc {
		return 0, 0, nil, errors.New("crc mismatch")
	}
	return frameSize + int64(length), typ, data, nil
}

// openActive truncates the final segment to validEnd and opens it for
// appending; nextDelta is the record count already in it.
func (w *WAL) openActive(firstLSN, recordCount uint64, validEnd int64) error {
	path := filepath.Join(w.dir, segmentName(firstLSN))
	f, err := w.fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if info.Size() > validEnd {
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	w.f = f
	w.size = validEnd
	w.syncedSize = validEnd
	w.segFirst = firstLSN
	w.nextLSN = firstLSN + recordCount
	if w.nextLSN > 1 {
		w.lastLSN.Store(w.nextLSN - 1)
	}
	w.segments.Add(1)
	return nil
}

// startSegment creates and opens a fresh segment whose first record
// will carry firstLSN.
func (w *WAL) startSegment(firstLSN uint64) error {
	path := filepath.Join(w.dir, segmentName(firstLSN))
	f, err := w.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	hdr[8] = walVersion
	binary.LittleEndian.PutUint64(hdr[9:], firstLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	// Persist the directory entry: an fsynced record is only as durable
	// as the file's existence.
	if err := w.syncDir(); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.size = headerSize
	w.syncedSize = headerSize
	w.segFirst = firstLSN
	w.nextLSN = firstLSN
	if firstLSN > 1 {
		// Keep LastLSN truthful on every path that starts a segment —
		// rotation (where it is already firstLSN-1) and torn-creation
		// reinit (where it would otherwise stay 0 and poison the next
		// snapshot's covered LSN).
		w.lastLSN.Store(firstLSN - 1)
	}
	w.dirty = true
	w.segments.Add(1)
	return nil
}

// rotateLocked seals the active segment — syncing it regardless of
// policy, so sealed segments are always fully durable — and starts the
// next one.
func (w *WAL) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	// The sealed file stays on disk (still counted in segments);
	// startSegment counts the new active file.
	w.sealed[w.segFirst] = w.nextLSN - 1
	return w.startSegment(w.nextLSN)
}

// Append writes one record and returns its LSN. Under SyncAlways the
// record is on stable storage when Append returns — this is the
// durability barrier the service acknowledges behind.
func (w *WAL) Append(typ RecordType, payload []byte) (uint64, error) {
	return w.append(typ, payload, true)
}

// AppendNoSync writes one record without the SyncAlways inline fsync,
// for callers that order the write inside a critical section but want
// the durability barrier — an explicit Sync — outside it, so the fsync
// overlaps other work instead of serializing it. The record is framed
// and ordered exactly as Append would; it is simply not yet durable
// under SyncAlways until the caller's Sync returns. Segment seals and
// the background interval loop behave identically for both entry
// points.
func (w *WAL) AppendNoSync(typ RecordType, payload []byte) (uint64, error) {
	return w.append(typ, payload, false)
}

func (w *WAL) append(typ RecordType, payload []byte, syncNow bool) (uint64, error) {
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("wal: payload %d bytes exceeds MaxPayload", len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.broken != nil {
		return 0, fmt.Errorf("%w (failed to clean up a partial append): %w", ErrBroken, w.broken)
	}
	if w.size >= w.opts.SegmentBytes && w.nextLSN > w.segFirst {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	w.frame = w.frame[:0]
	w.frame = binary.LittleEndian.AppendUint32(w.frame, uint32(len(payload)))
	sum := crc32.Update(crc32.Checksum([]byte{byte(typ)}, castagnoli), castagnoli, payload)
	w.frame = binary.LittleEndian.AppendUint32(w.frame, sum)
	w.frame = append(w.frame, byte(typ))
	w.frame = append(w.frame, payload...)
	if _, err := w.f.Write(w.frame); err != nil {
		// Rewind past any partially written frame bytes: a later
		// successful, fsynced append must never sit behind garbage, or
		// recovery would truncate it away as a torn tail. If the
		// rewind itself fails the log can no longer guarantee that, so
		// it is declared broken and refuses further appends.
		_, serr := w.f.Seek(w.size, io.SeekStart)
		terr := w.f.Truncate(w.size)
		if serr != nil || terr != nil {
			w.broken = errors.Join(fmt.Errorf("wal: append: %w", err), serr, terr)
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	w.size += int64(len(w.frame))
	w.dirty = true
	lsn := w.nextLSN
	w.nextLSN++
	w.appends.Add(1)
	w.appendedBytes.Add(uint64(len(w.frame)))
	w.lastLSN.Store(lsn)
	if w.opts.Sync == SyncOff {
		w.wakeFollowersLocked() // frontier == lastLSN under SyncOff
	}
	if cap(w.frame) > 1<<20 {
		w.frame = nil // do not pin a rare huge push image
	}
	if syncNow && w.opts.Sync == SyncAlways {
		if err := w.syncLocked(); err != nil {
			// The frame reached the page cache but its durability barrier
			// failed, and this error tells the caller the append did not
			// happen — so make that true: rewind the unsynced suffix so a
			// restart cannot resurrect a record the caller was told (and
			// told its client) is not in the log.
			w.rewindUnsyncedLocked()
			return 0, err
		}
	}
	return lsn, nil
}

// rewindUnsyncedLocked discards every record appended since the last
// successful fsync: the active segment is truncated back to the synced
// offset and the discarded LSNs are released for reuse. This is only
// correct when none of the discarded records was ever acknowledged —
// which is exactly the SyncAlways contract: the ack waits for the fsync
// that just failed, and Follow caps followers at the durable frontier,
// so neither a client nor a replica can hold a discarded record. If the
// truncation itself fails the log is marked sticky-broken, the same
// fate as a partial frame write that cannot be cleaned up, and Probe
// owns the repair.
func (w *WAL) rewindUnsyncedLocked() {
	if w.size == w.syncedSize {
		return
	}
	_, serr := w.f.Seek(w.syncedSize, io.SeekStart)
	terr := w.f.Truncate(w.syncedSize)
	if serr != nil || terr != nil {
		w.broken = errors.Join(errors.New("wal: rewind unsynced suffix"), serr, terr)
		return
	}
	w.size = w.syncedSize
	w.nextLSN = w.durable + 1
	w.lastLSN.Store(w.durable)
	// The truncation is itself an unsynced change; leave the segment
	// dirty so the next successful barrier (Probe, or the first healthy
	// append) persists it.
	w.dirty = true
}

// RewindUnsynced discards the records appended since the last
// successful fsync — the suffix a failed group durability barrier left
// in the page cache but never acknowledged. The service's group-commit
// path calls it when the explicit Sync after a batch of AppendNoSync
// calls fails, so a restart replays exactly the acknowledged record set
// instead of resurrecting batches whose clients were told they failed.
// It is a no-op under SyncInterval/SyncOff, where records are
// acknowledged without waiting for a sync and the unsynced suffix is
// therefore real data, and on a sticky-broken log, where Probe owns the
// tail repair.
func (w *WAL) RewindUnsynced() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.opts.Sync != SyncAlways || w.broken != nil {
		return
	}
	w.rewindUnsyncedLocked()
}

// syncLocked fsyncs the active segment if it has unsynced bytes. A
// successful sync advances the durable frontier and wakes followers.
func (w *WAL) syncLocked() error {
	if !w.dirty {
		return nil
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	w.dirty = false
	w.syncedSize = w.size
	w.fsyncs.Add(1)
	if w.opts.OnFsync != nil {
		w.opts.OnFsync(time.Since(start))
	}
	if last := w.nextLSN - 1; last > w.durable {
		w.durable = last
		w.wakeFollowersLocked()
	}
	return nil
}

// wakeFollowersLocked signals every waiting Follow that the followable
// frontier moved, via the close-and-replace channel idiom.
func (w *WAL) wakeFollowersLocked() {
	close(w.notify)
	w.notify = make(chan struct{})
}

// followableLocked is the highest LSN a follower may be handed. Under
// SyncOff nothing ever fsyncs on the append path, so the frontier is
// simply the last append — the log's own durability is best-effort
// there, and the follower inherits that contract.
func (w *WAL) followableLocked() uint64 {
	if w.opts.Sync == SyncOff {
		return w.nextLSN - 1
	}
	return w.durable
}

// FollowableLSN reports the highest LSN Follow will currently deliver:
// the durable frontier under SyncAlways/SyncInterval, the last append
// under SyncOff. Replication heartbeats carry it so a caught-up
// follower measures zero lag instead of chasing unsynced appends it is
// not allowed to see.
func (w *WAL) FollowableLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.lastLSN.Load()
	}
	return w.followableLocked()
}

// Sync forces an fsync of the active segment (a manual durability
// barrier under SyncInterval or SyncOff).
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.syncLocked()
}

// Broken reports whether the log is sticky-broken (see ErrBroken).
func (w *WAL) Broken() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.broken != nil
}

// Probe proves the log can take durable writes again: it repairs a
// sticky-broken tail if possible (retrying the rewind that originally
// failed), appends a RecordProbe, and forces an fsync regardless of
// policy. A nil return means a full append+fsync round trip just
// succeeded — the evidence the service's recovery path requires before
// leaving degraded mode. On failure the log keeps its previous state
// (still broken if it was).
func (w *WAL) Probe() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.broken != nil {
		// The break means frame bytes of a failed append may still sit
		// past w.size; retry the rewind so the probe record lands on a
		// clean tail.
		if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
			w.mu.Unlock()
			return fmt.Errorf("wal: probe rewind: %w", err)
		}
		if err := w.f.Truncate(w.size); err != nil {
			w.mu.Unlock()
			return fmt.Errorf("wal: probe rewind: %w", err)
		}
		w.broken = nil
	}
	w.mu.Unlock()
	if _, err := w.append(RecordProbe, nil, false); err != nil {
		return err
	}
	return w.Sync()
}

func (w *WAL) syncLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := w.Sync(); err != nil && !errors.Is(err, ErrClosed) {
				w.syncErrors.Add(1)
				if w.opts.OnSyncError != nil {
					w.opts.OnSyncError(err)
				}
			}
		case <-w.done:
			return
		}
	}
}

// LastLSN returns the LSN of the most recently appended record (0 if
// the log is empty). Safe to call concurrently with appends, but for a
// consistent "state as of this LSN" cut, call it under the same lock
// that serializes apply+Append.
func (w *WAL) LastLSN() uint64 { return w.lastLSN.Load() }

// Checkpoint records that a snapshot durable outside the log covers
// every record with LSN <= covered: it appends a checkpoint marker,
// syncs it regardless of policy, and deletes every sealed segment whose
// records are all covered. The active segment is never deleted.
func (w *WAL) Checkpoint(covered uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], covered)
	if _, err := w.Append(RecordCheckpoint, buf[:n]); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	w.checkpoints.Add(1)
	// Prune oldest-first, persisting each deletion before the next:
	// whatever prefix of the deletions survives a crash or an I/O error,
	// the remaining segments stay a contiguous chain — a gap in the
	// middle would make the next Open refuse as corrupt.
	var prunable []uint64
	for first, last := range w.sealed {
		if last <= covered {
			prunable = append(prunable, first)
		}
	}
	sort.Slice(prunable, func(i, j int) bool { return prunable[i] < prunable[j] })
	for _, first := range prunable {
		if err := w.fs.Remove(filepath.Join(w.dir, segmentName(first))); err != nil {
			return fmt.Errorf("wal: prune: %w", err)
		}
		if err := w.syncDir(); err != nil {
			return err
		}
		delete(w.sealed, first)
		w.segments.Add(-1)
		w.prunedSegments.Add(1)
	}
	return nil
}

// Replay walks every retained record in LSN order and calls fn for each
// with LSN > from, stopping at fn's first error. The payload slice is
// only valid for the duration of the call. Checkpoint markers are
// delivered like any other record; state-rebuilding callers skip them.
func (w *WAL) Replay(from uint64, fn func(lsn uint64, typ RecordType, payload []byte) error) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	// Appends go through w.f's own offset; reading via a separate
	// handle is safe, but replay is meant for startup, before traffic.
	firsts := make([]uint64, 0, len(w.sealed)+1)
	for first := range w.sealed {
		firsts = append(firsts, first)
	}
	firsts = append(firsts, w.segFirst)
	activeEnd := w.size
	if err := w.syncLocked(); err != nil { // make what we replay match disk
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })

	var fh [frameSize]byte
	payload := make([]byte, 0, 64<<10)
	for _, first := range firsts {
		path := filepath.Join(w.dir, segmentName(first))
		f, err := w.fs.Open(path)
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		info, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("wal: replay: %w", err)
		}
		end := info.Size()
		if first == w.segFirst && activeEnd < end {
			end = activeEnd
		}
		lsn := first
		off := int64(headerSize)
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			f.Close()
			return fmt.Errorf("wal: replay: %w", err)
		}
		for off < end {
			n, typ, data, err := readFrame(f, end-off, fh[:], &payload)
			if err != nil {
				f.Close()
				return fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, segmentName(first), off, err)
			}
			if lsn > from {
				if err := fn(lsn, typ, data); err != nil {
					f.Close()
					return err
				}
			}
			off += n
			lsn++
		}
		f.Close()
	}
	return nil
}

// waitFollowable blocks until the followable frontier reaches at least
// next, the stop channel fires (errFollowStopped), or the log closes
// (ErrClosed). It returns the frontier observed.
func (w *WAL) waitFollowable(next uint64, stop <-chan struct{}) (uint64, error) {
	for {
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return 0, ErrClosed
		}
		frontier := w.followableLocked()
		ch := w.notify
		w.mu.Unlock()
		if frontier >= next {
			return frontier, nil
		}
		select {
		case <-ch:
		case <-stop:
			return 0, errFollowStopped
		case <-w.done:
			return 0, ErrClosed
		}
	}
}

// locateLocked finds the segment holding LSN next. ok is false when the
// position has been pruned; sealedLast is meaningful only when sealed.
func (w *WAL) locateLocked(next uint64) (segStart, sealedLast uint64, isSealed, ok bool) {
	if next >= w.segFirst {
		return w.segFirst, 0, false, true
	}
	for first, last := range w.sealed {
		if first <= next && next <= last {
			return first, last, true, true
		}
	}
	return 0, 0, false, false
}

// Follow walks every committed record with LSN > from in order, calling
// fn for each, and then blocks for more as they are appended — the live
// tail the replication transport ships to a standby. "Committed" means
// at or below the durable frontier (the last fsync) under SyncAlways
// and SyncInterval, so a follower can never hold a record that a crash
// plus torn-tail truncation would remove from this log; under SyncOff
// the frontier is simply the last append. Rotation is followed
// transparently. Returns ErrTruncated if from (or a later position the
// follower needs) has been pruned by a checkpoint — the caller should
// resynchronize from a snapshot; returns nil when stop fires; returns
// fn's error if it rejects a record. The payload slice passed to fn is
// only valid for the duration of the call.
func (w *WAL) Follow(from uint64, stop <-chan struct{}, fn func(lsn uint64, typ RecordType, payload []byte) error) error {
	next := from + 1
	var fh [frameSize]byte
	payload := make([]byte, 0, 64<<10)
	for {
		frontier, err := w.waitFollowable(next, stop)
		if err != nil {
			if errors.Is(err, errFollowStopped) {
				return nil
			}
			return err
		}
		w.mu.Lock()
		segStart, sealedLast, isSealed, ok := w.locateLocked(next)
		w.mu.Unlock()
		if !ok {
			return ErrTruncated
		}
		err = w.followSegment(segStart, sealedLast, isSealed, &next, &frontier, stop, fh[:], &payload, fn)
		if err != nil {
			if errors.Is(err, errFollowStopped) {
				return nil
			}
			return err
		}
	}
}

// followSegment streams records [*next, ...] out of one segment,
// waiting at the frontier, until the segment is exhausted (sealed and
// fully delivered — return nil, caller moves to the next segment) or an
// error/stop occurs. *next advances past every delivered record.
func (w *WAL) followSegment(segStart, sealedLast uint64, isSealed bool, next, frontier *uint64, stop <-chan struct{}, fh []byte, payload *[]byte, fn func(lsn uint64, typ RecordType, payload []byte) error) error {
	f, err := w.fs.Open(filepath.Join(w.dir, segmentName(segStart)))
	if err != nil {
		if os.IsNotExist(err) {
			return ErrTruncated // pruned between locate and open
		}
		return fmt.Errorf("wal: follow: %w", err)
	}
	defer f.Close()
	off := int64(headerSize)
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("wal: follow: %w", err)
	}
	lsn := segStart
	for {
		if isSealed && lsn > sealedLast {
			return nil // segment exhausted; next one starts at sealedLast+1
		}
		if lsn > *frontier {
			fr, err := w.waitFollowable(lsn, stop)
			if err != nil {
				return err
			}
			*frontier = fr
		}
		if !isSealed {
			// The active segment may have sealed while we waited; the
			// records past sealedLast live in the next file.
			w.mu.Lock()
			if w.segFirst != segStart {
				sealedLast, isSealed = w.sealed[segStart], true
			}
			w.mu.Unlock()
			if isSealed && lsn > sealedLast {
				return nil
			}
		}
		// Every frame at or below the frontier is fully written (appends
		// complete the frame before publishing its LSN; the fsync that
		// advanced the frontier came later still), so the current file
		// size bounds it correctly even mid-append of a later record.
		info, err := f.Stat()
		if err != nil {
			return fmt.Errorf("wal: follow: %w", err)
		}
		n, typ, data, err := readFrame(f, info.Size()-off, fh, payload)
		if err != nil {
			return fmt.Errorf("%w: follow: %s at offset %d: %v", ErrCorrupt, segmentName(segStart), off, err)
		}
		if lsn >= *next {
			if err := fn(lsn, typ, data); err != nil {
				return err
			}
			*next = lsn + 1
		}
		off += n
		lsn++
	}
}

// Stats returns a snapshot of the WAL's counters.
func (w *WAL) Stats() Stats {
	return Stats{
		Segments:       w.segments.Load(),
		Appends:        w.appends.Load(),
		AppendedBytes:  w.appendedBytes.Load(),
		Fsyncs:         w.fsyncs.Load(),
		SyncErrors:     w.syncErrors.Load(),
		Checkpoints:    w.checkpoints.Load(),
		PrunedSegments: w.prunedSegments.Load(),
		LastLSN:        w.lastLSN.Load(),
	}
}

// Close stops the background sync loop (if any), syncs the active
// segment, and closes it. Further operations return ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	close(w.done)
	w.mu.Unlock()
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	var errs []error
	if w.dirty {
		if err := w.f.Sync(); err != nil {
			errs = append(errs, fmt.Errorf("wal: fsync: %w", err))
		}
		w.dirty = false
	}
	if err := w.f.Close(); err != nil {
		errs = append(errs, fmt.Errorf("wal: %w", err))
	}
	return errors.Join(errs...)
}
