package wal

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"github.com/streamagg/correlated/internal/fault"
)

// FuzzWALReplay throws mutated segment files at Open + Replay: whatever
// the bytes, recovery must neither panic nor allocate unboundedly, and
// every record it does return must carry a frame whose CRC verified.
// The corpus seeds valid logs (single- and multi-record, rotated) so
// mutations explore the interesting frontier: torn tails, hostile
// lengths, flipped CRCs, bad headers.
func FuzzWALReplay(f *testing.F) {
	seed := func(build func(w *WAL)) []byte {
		dir := f.TempDir()
		w, err := Open(dir, Options{SegmentBytes: 128, Sync: SyncOff})
		if err != nil {
			f.Fatal(err)
		}
		build(w)
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		firsts, err := listSegments(fault.OS(), dir)
		if err != nil || len(firsts) == 0 {
			f.Fatalf("no segments to seed with: %v", err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, segmentName(firsts[0])))
		if err != nil {
			f.Fatal(err)
		}
		return raw
	}
	f.Add([]byte{})
	f.Add(seed(func(w *WAL) {}))
	f.Add(seed(func(w *WAL) {
		w.Append(RecordIngest, []byte{1, 2, 3})
	}))
	f.Add(seed(func(w *WAL) {
		w.Append(RecordIngest, bytes.Repeat([]byte{7}, 60))
		w.Append(RecordPush, bytes.Repeat([]byte{9}, 60))
		w.Append(RecordReset, nil)
		w.Checkpoint(2)
	}))
	// Tenant-tagged records: a keyed group (member count, then
	// tenant-prefixed counted batches) and a keyed push (tenant prefix,
	// then an image), plus a group whose second member truncates inside
	// the tenant field — the WAL is payload-agnostic, so mutations of
	// these explore replay's keyed-decode frontier downstream.
	f.Add(seed(func(w *WAL) {
		group := []byte{2}                             // member count
		group = append(group, 2, 't', 'a', 1, 5, 6, 1) // tenant "ta", 1 tuple
		group = append(group, 2, 't', 'b', 1, 7, 8, 1) // tenant "tb", 1 tuple
		w.Append(RecordKeyedIngestGroup, group)
		push := append([]byte{3, 'k', 'e', 'y'}, bytes.Repeat([]byte{5}, 40)...)
		w.Append(RecordKeyedPush, push)
	}))
	f.Add(seed(func(w *WAL) {
		torn := []byte{2, 2, 't', 'a', 1, 5, 6, 1, 120} // 120-byte key claim, no bytes
		w.Append(RecordKeyedIngestGroup, torn)
	}))
	// The record types replication ships verbatim: a push lifecycle
	// (push, ack, foldback) so mutations explore a replica replaying a
	// primary's in-flight window, and a checkpoint marker written as a
	// raw record whose covered-LSN varint claims an absurd position —
	// Append rather than Checkpoint() so no pruning eats the seed.
	f.Add(seed(func(w *WAL) {
		w.Append(RecordPush, bytes.Repeat([]byte{4}, 24))
		w.Append(RecordPushAck, nil)
		w.Append(RecordFoldback, bytes.Repeat([]byte{4}, 24))
	}))
	f.Add(seed(func(w *WAL) {
		w.Append(RecordIngest, []byte{1, 2, 3})
		w.Append(RecordCheckpoint, binary.AppendUvarint(nil, 1<<62))
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // keep per-case disk work bounded
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(dir, Options{Sync: SyncOff})
		if err != nil {
			return // corruption detected is a valid outcome
		}
		defer w.Close()
		records := 0
		w.Replay(0, func(lsn uint64, typ RecordType, payload []byte) error {
			records++
			if len(payload) > len(data) {
				t.Fatalf("record %d larger than the whole file (%d > %d)", lsn, len(payload), len(data))
			}
			return nil
		})
		// The writer must be usable after any recovery.
		if _, err := w.Append(RecordIngest, []byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery of %d records: %v", records, err)
		}
	})
}
