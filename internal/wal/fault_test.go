package wal

import (
	"errors"
	"syscall"
	"testing"

	"github.com/streamagg/correlated/internal/fault"
)

func planOrDie(t *testing.T, s string) *fault.Plan {
	t.Helper()
	p, err := fault.ParsePlan(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAppendRewindKeepsLogClean: a failed append whose partial frame is
// successfully rewound leaves the log working — the next append lands on
// a clean tail, and replay sees exactly the acknowledged records.
func TestAppendRewindKeepsLogClean(t *testing.T) {
	inj := fault.NewInjector(fault.OS())
	w, err := Open(t.TempDir(), Options{Sync: SyncAlways, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(RecordIngest, []byte("one")); err != nil {
		t.Fatal(err)
	}
	inj.SetPlan(planOrDie(t, "write:torn@1"))
	if _, err := w.Append(RecordIngest, []byte("torn-away")); err == nil {
		t.Fatal("append under write fault: want error")
	}
	if w.Broken() {
		t.Fatal("rewind succeeded, log must not be broken")
	}
	inj.SetPlan(nil)
	if _, err := w.Append(RecordIngest, []byte("two")); err != nil {
		t.Fatalf("append after rewind: %v", err)
	}
	var got []string
	err = w.Replay(0, func(lsn uint64, typ RecordType, payload []byte) error {
		got = append(got, string(payload))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("replay = %q, want [one two]", got)
	}
}

// TestBrokenLogProbeRepair: when the rewind itself fails the log goes
// sticky-broken (ErrBroken on every append); once the disk heals, Probe
// repairs the tail and a full append+fsync round trip works again.
func TestBrokenLogProbeRepair(t *testing.T) {
	inj := fault.NewInjector(fault.OS())
	w, err := Open(t.TempDir(), Options{Sync: SyncAlways, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(RecordIngest, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	// The write fails and the rewind's truncate fails too: broken.
	inj.SetPlan(planOrDie(t, "write:err@1;truncate:err@1"))
	if _, err := w.Append(RecordIngest, []byte("lost")); err == nil {
		t.Fatal("append under fault: want error")
	}
	if !w.Broken() {
		t.Fatal("failed rewind must leave the log broken")
	}
	if _, err := w.Append(RecordIngest, []byte("rejected")); !errors.Is(err, ErrBroken) {
		t.Fatalf("append on broken log: want ErrBroken, got %v", err)
	}
	// Probe under the same fault plan must fail and leave it broken.
	inj.SetPlan(planOrDie(t, "truncate:err@1"))
	if err := w.Probe(); err == nil {
		t.Fatal("probe with failing truncate: want error")
	}
	if !w.Broken() {
		t.Fatal("failed probe must leave the log broken")
	}
	// Disk heals: probe repairs, appends work, replay is consistent.
	inj.SetPlan(nil)
	if err := w.Probe(); err != nil {
		t.Fatalf("probe after heal: %v", err)
	}
	if w.Broken() {
		t.Fatal("successful probe must clear broken")
	}
	if _, err := w.Append(RecordIngest, []byte("after")); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	var got []string
	err = w.Replay(0, func(lsn uint64, typ RecordType, payload []byte) error {
		if typ == RecordIngest {
			got = append(got, string(payload))
		} else if typ != RecordProbe {
			t.Fatalf("unexpected record type %d", typ)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "keep" || got[1] != "after" {
		t.Fatalf("replay = %q, want [keep after]", got)
	}
}

// TestENOSPCThenReopen: a volume that fills mid-append loses only the
// unacknowledged record; reopening the directory (fault-free) recovers
// every acknowledged one.
func TestENOSPCThenReopen(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(fault.OS())
	w, err := Open(dir, Options{Sync: SyncAlways, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	var acked []uint64
	payload := make([]byte, 128)
	inj.SetPlan(planOrDie(t, "write/wal-:enospc@2048"))
	for i := 0; i < 64; i++ {
		lsn, err := w.Append(RecordIngest, payload)
		if err != nil {
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("append %d: want ENOSPC, got %v", i, err)
			}
			break
		}
		acked = append(acked, lsn)
	}
	if len(acked) == 0 || len(acked) == 64 {
		t.Fatalf("acked %d appends; want the volume to fill partway", len(acked))
	}
	w.Close()

	// Fault-free restart: the acked prefix replays intact.
	w2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var replayed []uint64
	err = w2.Replay(0, func(lsn uint64, typ RecordType, p []byte) error {
		replayed = append(replayed, lsn)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) < len(acked) {
		t.Fatalf("replayed %d records, acked %d — acknowledged data lost", len(replayed), len(acked))
	}
	for i, lsn := range acked {
		if replayed[i] != lsn {
			t.Fatalf("replayed[%d] = %d, want %d", i, replayed[i], lsn)
		}
	}
}

// TestNthSyncFaultUnderSyncAlways: the Nth fsync failing turns exactly
// one Append into an error; earlier and later appends are unaffected.
func TestNthSyncFaultUnderSyncAlways(t *testing.T) {
	inj := fault.NewInjector(fault.OS())
	w, err := Open(t.TempDir(), Options{Sync: SyncAlways, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Sync ordinals: startSegment's dir sync is op 1, so the first
	// append's file fsync targets matching on the wal- name filter.
	inj.SetPlan(planOrDie(t, "sync/wal-:err@2"))
	if _, err := w.Append(RecordIngest, []byte("a")); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	if _, err := w.Append(RecordIngest, []byte("b")); err == nil {
		t.Fatal("append 2: want fsync error")
	}
	if _, err := w.Append(RecordIngest, []byte("c")); err != nil {
		t.Fatalf("append 3: %v", err)
	}
}
