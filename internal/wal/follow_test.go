package wal

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// followCollect runs Follow in a goroutine, streaming records into a
// channel, and returns the channel plus a stop func that waits for the
// follower to exit and reports its error.
func followCollect(w *WAL, from uint64) (<-chan replayed, func() error) {
	out := make(chan replayed, 1024)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- w.Follow(from, stop, func(lsn uint64, typ RecordType, payload []byte) error {
			out <- replayed{lsn, typ, append([]byte(nil), payload...)}
			return nil
		})
		close(out)
	}()
	var once sync.Once
	return out, func() error {
		once.Do(func() { close(stop) })
		return <-errc
	}
}

// recvN drains n records from the follower with a timeout, so a stuck
// follower fails the test instead of hanging it.
func recvN(t *testing.T, ch <-chan replayed, n int) []replayed {
	t.Helper()
	got := make([]replayed, 0, n)
	timeout := time.After(10 * time.Second)
	for len(got) < n {
		select {
		case r, ok := <-ch:
			if !ok {
				t.Fatalf("follower exited after %d of %d records", len(got), n)
			}
			got = append(got, r)
		case <-timeout:
			t.Fatalf("timed out after %d of %d records", len(got), n)
		}
	}
	return got
}

// TestFollowLiveTail: a follower started before any appends sees every
// record in LSN order, across segment rotations, while appends race it;
// under SyncAlways it only ever sees fsynced records.
func TestFollowLiveTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 256, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	ch, stop := followCollect(w, 0)
	const n = 60
	var want []replayed
	for i := 0; i < n; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 1+i%29)
		lsn, err := w.Append(RecordIngest, payload)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, replayed{lsn, RecordIngest, payload})
	}
	got := recvN(t, ch, n)
	for i := range want {
		if got[i].lsn != want[i].lsn || got[i].typ != want[i].typ || !bytes.Equal(got[i].payload, want[i].payload) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if st := w.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation during follow, stats %+v", st)
	}
	if err := stop(); err != nil {
		t.Fatalf("follower exit: %v", err)
	}
}

// TestFollowFromMidLog: a follower starting at from=k sees exactly the
// records after k — history first, then live appends.
func TestFollowFromMidLog(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 128, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 10; i++ {
		if _, err := w.Append(RecordIngest, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ch, stop := followCollect(w, 4)
	for i := 10; i < 15; i++ {
		if _, err := w.Append(RecordIngest, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := recvN(t, ch, 11) // LSNs 5..15
	for i, r := range got {
		wantLSN := uint64(5 + i)
		if r.lsn != wantLSN || r.payload[0] != byte(4+i) {
			t.Fatalf("record %d: lsn %d payload %v", i, r.lsn, r.payload)
		}
	}
	if err := stop(); err != nil {
		t.Fatalf("follower exit: %v", err)
	}
}

// TestFollowDurableFrontier: under SyncAlways a follower must not see a
// record appended with AppendNoSync until the explicit Sync — the
// frontier is the fsync barrier, not the append.
func TestFollowDurableFrontier(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ch, stop := followCollect(w, 0)
	if _, err := w.AppendNoSync(RecordIngest, []byte{1}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		t.Fatalf("follower saw unsynced record %+v", r)
	case <-time.After(50 * time.Millisecond):
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	got := recvN(t, ch, 1)
	if got[0].lsn != 1 {
		t.Fatalf("got %+v", got[0])
	}
	if err := stop(); err != nil {
		t.Fatalf("follower exit: %v", err)
	}
}

// TestFollowTruncatedHorizon: a follower asking for records a
// checkpoint has pruned gets ErrTruncated — the signal to catch up from
// a snapshot instead.
func TestFollowTruncatedHorizon(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 20; i++ {
		if _, err := w.Append(RecordIngest, bytes.Repeat([]byte{byte(i)}, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Checkpoint(20); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.PrunedSegments == 0 {
		t.Fatalf("checkpoint pruned nothing, stats %+v", st)
	}
	stop := make(chan struct{})
	defer close(stop)
	err = w.Follow(0, stop, func(lsn uint64, typ RecordType, payload []byte) error { return nil })
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("follow from pruned position: %v, want ErrTruncated", err)
	}
}

// TestFollowStopsOnClose: Close unblocks a waiting follower with
// ErrClosed rather than leaking it.
func TestFollowStopsOnClose(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		errc <- w.Follow(0, stop, func(uint64, RecordType, []byte) error { return nil })
	}()
	time.Sleep(20 * time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("follower exit: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower did not exit on Close")
	}
}
