// Package compat defines the shared incompatibility error reported when
// two summaries cannot be merged. Summaries are mergeable only when they
// were built from identical configurations — the hash functions behind
// every sketch are derived deterministically from the seed, so any
// difference in seed, accuracy target, or domain bound silently breaks the
// linearity that merging relies on. Every Merge entry point in the repo
// therefore validates its inputs field by field and reports the first
// mismatch through this package, so callers can both test with
// errors.Is(err, ErrIncompatible) and read exactly which field diverged.
package compat

import (
	"errors"
	"fmt"
)

// ErrIncompatible is the sentinel wrapped by every merge-incompatibility
// error. Match it with errors.Is.
var ErrIncompatible = errors.New("summaries are incompatible")

// Error reports a single configuration field that prevents a merge.
// It unwraps to ErrIncompatible.
type Error struct {
	// Field names the mismatched configuration field, e.g. "eps",
	// "delta", "ymax", "seed".
	Field string
	// Want is the receiver's value, Got the other summary's.
	Want, Got string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("cannot merge: %s mismatch (have %s, other has %s): %v",
		e.Field, e.Want, e.Got, ErrIncompatible)
}

// Unwrap makes errors.Is(err, ErrIncompatible) true.
func (e *Error) Unwrap() error { return ErrIncompatible }

// Mismatch builds the incompatibility error for one field.
func Mismatch(field string, want, got any) error {
	return &Error{Field: field, Want: fmt.Sprint(want), Got: fmt.Sprint(got)}
}
