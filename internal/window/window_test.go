package window

import (
	"math"
	"testing"

	"github.com/streamagg/correlated/internal/core"
	"github.com/streamagg/correlated/internal/corrf0"
	"github.com/streamagg/correlated/internal/hash"
)

func TestWindowValidation(t *testing.T) {
	cfg := core.Config{Eps: 0.2, Delta: 0.1, Seed: 1}
	if _, err := New(core.CountAggregate(), cfg, 0); err == nil {
		t.Fatal("horizon 0 accepted")
	}
	w, err := New(core.CountAggregate(), cfg, 1023)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(1, 5000); err == nil {
		t.Fatal("timestamp beyond horizon accepted")
	}
	if _, err := w.Query(5000, 10); err == nil {
		t.Fatal("query beyond horizon accepted")
	}
	if _, err := w.Query(100, 0); err == nil {
		t.Fatal("zero width accepted")
	}
}

// TestCountWindowOutOfOrder checks window counts with shuffled arrival
// order against a direct computation.
func TestCountWindowOutOfOrder(t *testing.T) {
	const horizon = 1<<12 - 1
	w, err := New(core.CountAggregate(), core.Config{
		Eps: 0.1, Delta: 0.1, MaxStreamLen: 100000, Seed: 2,
	}, horizon)
	if err != nil {
		t.Fatal(err)
	}
	rng := hash.New(3)
	counts := make([]int64, horizon+1)
	// Timestamps arrive in random order (asynchronous).
	for i := 0; i < 100000; i++ {
		ts := rng.Uint64n(horizon + 1)
		if err := w.Add(rng.Uint64n(100), ts); err != nil {
			t.Fatal(err)
		}
		counts[ts]++
	}
	// Queries are anchored at the present (now >= all timestamps).
	for _, q := range []struct{ now, width uint64 }{
		{horizon, 100}, {horizon, 1 << 11}, {horizon, 500}, {horizon, horizon + 1},
	} {
		got, err := w.Query(q.now, q.width)
		if err != nil {
			t.Fatalf("query %+v: %v", q, err)
		}
		var want float64
		start := uint64(0)
		if q.width <= q.now {
			start = q.now - q.width + 1
		}
		for ts := start; ts <= q.now; ts++ {
			want += float64(counts[ts])
		}
		if rel := math.Abs(got-want) / want; rel > 0.15 {
			t.Errorf("window %+v: got %v, want %v (rel %v)", q, got, want, rel)
		}
	}
}

func TestF0WindowDistinct(t *testing.T) {
	const horizon = 1<<12 - 1
	w, err := NewF0(corrf0.Config{
		Eps: 0.1, Delta: 0.1, XDomain: 1 << 16, Reps: 5, Seed: 5,
	}, horizon)
	if err != nil {
		t.Fatal(err)
	}
	rng := hash.New(7)
	type ev struct{ x, ts uint64 }
	var evs []ev
	for i := 0; i < 80000; i++ {
		e := ev{rng.Uint64n(1 << 16), rng.Uint64n(horizon + 1)}
		evs = append(evs, e)
		if err := w.Add(e.x, e.ts); err != nil {
			t.Fatal(err)
		}
	}
	for _, width := range []uint64{1 << 10, 1 << 12} {
		got, err := w.Query(horizon, width)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]struct{}{}
		start := horizon - width + 1
		for _, e := range evs {
			if e.ts >= start {
				seen[e.x] = struct{}{}
			}
		}
		want := float64(len(seen))
		if rel := math.Abs(got-want) / want; rel > 0.12 {
			t.Errorf("width %d: got %v, want %v (rel %v)", width, got, want, rel)
		}
	}
	if w.Space() <= 0 {
		t.Fatal("space not positive")
	}
}

func TestF0WindowValidation(t *testing.T) {
	if _, err := NewF0(corrf0.Config{Eps: 0.1, Delta: 0.1, XDomain: 16}, 0); err == nil {
		t.Fatal("horizon 0 accepted")
	}
	w, err := NewF0(corrf0.Config{Eps: 0.1, Delta: 0.1, XDomain: 16, Seed: 1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(1, 101); err == nil {
		t.Fatal("timestamp beyond horizon accepted")
	}
	if _, err := w.Query(101, 5); err == nil {
		t.Fatal("now beyond horizon accepted")
	}
	if _, err := w.Query(50, 0); err == nil {
		t.Fatal("zero width accepted")
	}
}
