// Package window reduces sliding-window aggregation over asynchronous
// (out-of-order) streams to correlated aggregation, the correspondence the
// paper's Section 1.1 inherits from Xu–Tirthapura–Busch: an element with
// timestamp t is stored at y = horizon − t, so "aggregate the items with
// t >= T − W" — a sliding window of width W queried at time T — becomes
// the correlated predicate y <= horizon − (T − W). Because the reduction
// is timestamp-order oblivious, late arrivals need no special handling.
package window

import (
	"errors"
	"fmt"

	"github.com/streamagg/correlated/internal/core"
	"github.com/streamagg/correlated/internal/corrf0"
)

// Window answers sliding-window aggregate queries over an asynchronous
// stream, backed by a correlated-aggregate summary.
type Window struct {
	sum     *core.Summary
	horizon uint64
}

// New builds a sliding-window summary for agg over timestamps in
// [0, horizon]. cfg.YMax is overridden by horizon.
func New(agg core.Aggregate, cfg core.Config, horizon uint64) (*Window, error) {
	if horizon == 0 {
		return nil, errors.New("window: horizon must be positive")
	}
	cfg.YMax = horizon
	s, err := core.NewSummary(agg, cfg)
	if err != nil {
		return nil, err
	}
	return &Window{sum: s, horizon: horizon}, nil
}

// Add records item x observed with timestamp ts (arrival order free).
func (w *Window) Add(x, ts uint64) error {
	if ts > w.horizon {
		return fmt.Errorf("window: timestamp %d exceeds horizon %d", ts, w.horizon)
	}
	return w.sum.Add(x, w.horizon-ts)
}

// Query estimates the aggregate over items with timestamps in
// [now−width+1, now] — the width most recent time units as of now.
//
// As in the asynchronous sliding-window literature, queries are anchored
// at the present: now must be at least every observed timestamp
// (asynchrony means items arrive late, never from the future). Items with
// timestamps above now are not excluded by the reduction.
func (w *Window) Query(now, width uint64) (float64, error) {
	if now > w.horizon {
		return 0, fmt.Errorf("window: now %d exceeds horizon %d", now, w.horizon)
	}
	if width == 0 {
		return 0, errors.New("window: width must be positive")
	}
	var start uint64
	if width <= now {
		start = now - width + 1
	}
	return w.sum.Query(w.horizon - start)
}

// Space reports the summary's stored counters/tuples.
func (w *Window) Space() int64 { return w.sum.Space() }

// F0Window answers sliding-window distinct-count queries over an
// asynchronous stream, backed by the correlated F0 structure.
type F0Window struct {
	sum     *corrf0.Summary
	horizon uint64
}

// NewF0 builds a distinct-count sliding-window summary.
func NewF0(cfg corrf0.Config, horizon uint64) (*F0Window, error) {
	if horizon == 0 {
		return nil, errors.New("window: horizon must be positive")
	}
	s, err := corrf0.New(cfg)
	if err != nil {
		return nil, err
	}
	return &F0Window{sum: s, horizon: horizon}, nil
}

// Add records item x observed with timestamp ts.
func (w *F0Window) Add(x, ts uint64) error {
	if ts > w.horizon {
		return fmt.Errorf("window: timestamp %d exceeds horizon %d", ts, w.horizon)
	}
	w.sum.Add(x, w.horizon-ts)
	return nil
}

// Query estimates the number of distinct items in the window
// [now−width+1, now].
func (w *F0Window) Query(now, width uint64) (float64, error) {
	if now > w.horizon {
		return 0, fmt.Errorf("window: now %d exceeds horizon %d", now, w.horizon)
	}
	if width == 0 {
		return 0, errors.New("window: width must be positive")
	}
	var start uint64
	if width <= now {
		start = now - width + 1
	}
	return w.sum.Query(w.horizon - start)
}

// Space reports stored sample tuples.
func (w *F0Window) Space() int64 { return w.sum.Space() }
