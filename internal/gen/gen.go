// Package gen generates the evaluation workloads of the paper's Section 5:
// Uniform, Zipf(α=1), Zipf(α=2) — tuples (x, y) with x from the given
// distribution and y uniform — plus a synthetic Ethernet-style packet
// trace standing in for the LBL traces (see DESIGN.md, substitutions).
//
// Generators are streaming (constant memory regardless of n) and
// deterministic in their seed, so the 40–50M-tuple runs of the paper can
// be regenerated without materializing them.
package gen

import (
	"math"
	"sort"

	"github.com/streamagg/correlated/internal/hash"
)

// Tuple is one stream element.
type Tuple struct {
	X, Y uint64
}

// Stream produces tuples one at a time.
type Stream interface {
	// Next returns the next tuple; ok is false when the stream is done.
	Next() (t Tuple, ok bool)
	// Len returns the total number of tuples the stream will produce.
	Len() int
}

// UniformStream draws x uniform over [0, XDomain) and y uniform over
// [0, YDomain). The paper's Uniform dataset uses XDomain 500001 (F2) or
// 1000001 (F0) and YDomain 1000001.
type UniformStream struct {
	n, i       int
	xdom, ydom uint64
	rng        *hash.RNG
}

// Uniform returns a UniformStream of n tuples.
func Uniform(n int, xdom, ydom uint64, seed uint64) *UniformStream {
	return &UniformStream{n: n, xdom: xdom, ydom: ydom, rng: hash.New(seed)}
}

// Next implements Stream.
func (s *UniformStream) Next() (Tuple, bool) {
	if s.i >= s.n {
		return Tuple{}, false
	}
	s.i++
	return Tuple{X: s.rng.Uint64n(s.xdom), Y: s.rng.Uint64n(s.ydom)}, true
}

// Len implements Stream.
func (s *UniformStream) Len() int { return s.n }

// ZipfStream draws x from a Zipf(alpha) distribution over [0, XDomain)
// (identifier i has probability proportional to 1/(i+1)^alpha) and y
// uniform over [0, YDomain).
type ZipfStream struct {
	n, i  int
	ydom  uint64
	cdf   []float64
	total float64
	rng   *hash.RNG
}

// Zipf returns a ZipfStream of n tuples with parameter alpha > 0.
func Zipf(n int, xdom, ydom uint64, alpha float64, seed uint64) *ZipfStream {
	if alpha <= 0 {
		panic("gen: Zipf alpha must be positive")
	}
	cdf := make([]float64, xdom)
	tot := 0.0
	for i := uint64(0); i < xdom; i++ {
		tot += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = tot
	}
	return &ZipfStream{n: n, ydom: ydom, cdf: cdf, total: tot, rng: hash.New(seed)}
}

// Next implements Stream.
func (s *ZipfStream) Next() (Tuple, bool) {
	if s.i >= s.n {
		return Tuple{}, false
	}
	s.i++
	u := s.rng.Float64() * s.total
	x := sort.SearchFloat64s(s.cdf, u)
	if x >= len(s.cdf) {
		x = len(s.cdf) - 1
	}
	return Tuple{X: uint64(x), Y: s.rng.Uint64n(s.ydom)}, true
}

// Len implements Stream.
func (s *ZipfStream) Len() int { return s.n }

// EthernetStream is the synthetic stand-in for the LBL Ethernet packet
// traces used in the paper's F0 experiments: x is a packet size in
// [0, 2000] drawn from a bimodal small-packet/MTU mixture, and y is a
// millisecond timestamp advancing with jitter. Two independently seeded
// traces are interleaved, exactly as the paper combined two traces. What
// the F0 experiment exploits — a tiny x-domain and timestamps spread over
// the trace duration — is preserved.
type EthernetStream struct {
	n, i   int
	rngA   *hash.RNG
	rngB   *hash.RNG
	tA, tB uint64
}

// Ethernet returns an EthernetStream of n tuples.
func Ethernet(n int, seed uint64) *EthernetStream {
	return &EthernetStream{n: n, rngA: hash.New(seed), rngB: hash.New(seed ^ 0xdeadbeef)}
}

// Next implements Stream.
func (s *EthernetStream) Next() (Tuple, bool) {
	if s.i >= s.n {
		return Tuple{}, false
	}
	var rng *hash.RNG
	var clock *uint64
	if s.i%2 == 0 {
		rng, clock = s.rngA, &s.tA
	} else {
		rng, clock = s.rngB, &s.tB
	}
	s.i++
	// Bimodal packet sizes: 40% TCP-ack sized, 40% near-MTU, 20% spread.
	var size uint64
	switch v := rng.Uint64n(10); {
	case v < 4:
		size = 40 + rng.Uint64n(80)
	case v < 8:
		size = 1400 + rng.Uint64n(120)
	default:
		size = 120 + rng.Uint64n(1280)
	}
	// Millisecond clock advancing by 0–2ms per packet on each trace.
	*clock += rng.Uint64n(3)
	return Tuple{X: size, Y: *clock}, true
}

// Len implements Stream.
func (s *EthernetStream) Len() int { return s.n }

// EthernetXDomain bounds the x values Ethernet produces.
const EthernetXDomain = 2048

// Collect materializes a stream (for tests and small runs).
func Collect(s Stream) []Tuple {
	out := make([]Tuple, 0, s.Len())
	for {
		t, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// WeightedTuple is a turnstile stream element (Section 4).
type WeightedTuple struct {
	X, Y uint64
	W    int64
}

// SymmetricDifference builds the turnstile encoding of two datasets: all
// tuples of a with weight +1 followed by all tuples of b with weight −1,
// so net frequencies reflect the symmetric difference (Section 4's
// motivating use).
func SymmetricDifference(a, b []Tuple) []WeightedTuple {
	out := make([]WeightedTuple, 0, len(a)+len(b))
	for _, t := range a {
		out = append(out, WeightedTuple{t.X, t.Y, 1})
	}
	for _, t := range b {
		out = append(out, WeightedTuple{t.X, t.Y, -1})
	}
	return out
}
