package gen

import (
	"math"
	"testing"
)

func TestUniformBoundsAndLen(t *testing.T) {
	s := Uniform(10000, 500, 1000, 1)
	if s.Len() != 10000 {
		t.Fatalf("Len = %d", s.Len())
	}
	n := 0
	for {
		tp, ok := s.Next()
		if !ok {
			break
		}
		n++
		if tp.X >= 500 || tp.Y >= 1000 {
			t.Fatalf("tuple out of domain: %+v", tp)
		}
	}
	if n != 10000 {
		t.Fatalf("produced %d tuples", n)
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Collect(Uniform(1000, 100, 100, 7))
	b := Collect(Uniform(1000, 100, 100, 7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestUniformXMarginal(t *testing.T) {
	s := Uniform(200000, 10, 1000, 3)
	counts := make([]int, 10)
	for {
		tp, ok := s.Next()
		if !ok {
			break
		}
		counts[tp.X]++
	}
	for x, c := range counts {
		if math.Abs(float64(c)-20000) > 6*math.Sqrt(20000) {
			t.Fatalf("x=%d count %d deviates from uniform", x, c)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	s := Zipf(200000, 10000, 1000, 1.0, 5)
	counts := map[uint64]int{}
	for {
		tp, ok := s.Next()
		if !ok {
			break
		}
		counts[tp.X]++
	}
	// Zipf(1): item 0 should be about twice as frequent as item 1 and
	// ten times item 9.
	r01 := float64(counts[0]) / float64(counts[1])
	if r01 < 1.6 || r01 > 2.4 {
		t.Fatalf("zipf ratio f0/f1 = %v, want ~2", r01)
	}
	r09 := float64(counts[0]) / float64(counts[9])
	if r09 < 7 || r09 > 13 {
		t.Fatalf("zipf ratio f0/f9 = %v, want ~10", r09)
	}
}

func TestZipfAlpha2MoreSkewed(t *testing.T) {
	count0 := func(alpha float64) int {
		s := Zipf(100000, 10000, 1000, alpha, 9)
		n := 0
		for {
			tp, ok := s.Next()
			if !ok {
				return n
			}
			if tp.X == 0 {
				n++
			}
		}
	}
	if c2, c1 := count0(2.0), count0(1.0); c2 <= c1 {
		t.Fatalf("alpha=2 top item count %d not above alpha=1 count %d", c2, c1)
	}
}

func TestZipfPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Zipf(alpha=0) did not panic")
		}
	}()
	Zipf(10, 10, 10, 0, 1)
}

func TestEthernetShape(t *testing.T) {
	s := Ethernet(100000, 11)
	var maxX, lastY uint64
	small, big := 0, 0
	n := 0
	for {
		tp, ok := s.Next()
		if !ok {
			break
		}
		n++
		if tp.X > maxX {
			maxX = tp.X
		}
		if tp.X < 150 {
			small++
		}
		if tp.X >= 1400 {
			big++
		}
		if tp.Y > lastY {
			lastY = tp.Y
		}
	}
	if n != 100000 {
		t.Fatalf("produced %d", n)
	}
	if maxX >= EthernetXDomain {
		t.Fatalf("packet size %d outside domain", maxX)
	}
	// Bimodal: both modes well represented.
	if small < n/5 || big < n/5 {
		t.Fatalf("modes underrepresented: small=%d big=%d of %d", small, big, n)
	}
	// Timestamps advance to roughly n/2 * 1ms per interleaved trace.
	if lastY < uint64(n/4) || lastY > uint64(n) {
		t.Fatalf("final timestamp %d implausible for %d packets", lastY, n)
	}
}

func TestEthernetTimestampsNondecreasingPerTrace(t *testing.T) {
	s := Ethernet(10000, 13)
	var lastA, lastB uint64
	for i := 0; ; i++ {
		tp, ok := s.Next()
		if !ok {
			break
		}
		if i%2 == 0 {
			if tp.Y < lastA {
				t.Fatal("trace A timestamps decreased")
			}
			lastA = tp.Y
		} else {
			if tp.Y < lastB {
				t.Fatal("trace B timestamps decreased")
			}
			lastB = tp.Y
		}
	}
}

func TestSymmetricDifference(t *testing.T) {
	a := []Tuple{{1, 10}, {2, 20}}
	b := []Tuple{{2, 20}, {3, 30}}
	w := SymmetricDifference(a, b)
	if len(w) != 4 {
		t.Fatalf("len = %d", len(w))
	}
	net := map[Tuple]int64{}
	for _, t := range w {
		net[Tuple{t.X, t.Y}] += t.W
	}
	if net[Tuple{1, 10}] != 1 || net[Tuple{2, 20}] != 0 || net[Tuple{3, 30}] != -1 {
		t.Fatalf("net weights wrong: %v", net)
	}
}

func TestCollect(t *testing.T) {
	got := Collect(Uniform(50, 10, 10, 1))
	if len(got) != 50 {
		t.Fatalf("collected %d", len(got))
	}
}
