package dyadic

import (
	"testing"
	"testing/quick"
)

func TestRoundYMax(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 0},
		{1, 1},
		{2, 3},
		{3, 3},
		{4, 7},
		{1000000, 1<<20 - 1},
		{1<<20 - 1, 1<<20 - 1},
	}
	for _, c := range cases {
		if got := RoundYMax(c.in); got != c.want {
			t.Errorf("RoundYMax(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRootPanicsOnBadYMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Root(6) did not panic")
		}
	}()
	Root(6)
}

func TestChildrenPartition(t *testing.T) {
	iv := Root(15)
	l, r := iv.Children()
	if l != (Interval{0, 7}) || r != (Interval{8, 15}) {
		t.Fatalf("children of [0,15] = %v, %v", l, r)
	}
	ll, lr := l.Children()
	if ll != (Interval{0, 3}) || lr != (Interval{4, 7}) {
		t.Fatalf("children of [0,7] = %v, %v", ll, lr)
	}
}

func TestChildrenPanicOnSingle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Children of single point did not panic")
		}
	}()
	Interval{3, 3}.Children()
}

func TestWithinIntersects(t *testing.T) {
	iv := Interval{4, 7}
	if !iv.Within(7) || iv.Within(6) {
		t.Error("Within boundary wrong")
	}
	if !iv.Intersects(4) || iv.Intersects(3) {
		t.Error("Intersects boundary wrong")
	}
}

func TestDepth(t *testing.T) {
	const ymax = 15
	if d := Root(ymax).Depth(ymax); d != 0 {
		t.Errorf("root depth = %d", d)
	}
	l, _ := Root(ymax).Children()
	if d := l.Depth(ymax); d != 1 {
		t.Errorf("child depth = %d", d)
	}
	if d := (Interval{5, 5}).Depth(ymax); d != 4 {
		t.Errorf("leaf depth = %d", d)
	}
}

// TestDyadicDecompositionProperty checks that recursively splitting the root
// always partitions it: every y has exactly one containing interval per
// depth.
func TestDyadicDecompositionProperty(t *testing.T) {
	const ymax = RoundedMax
	f := func(yRaw uint64) bool {
		y := yRaw % (ymax + 1)
		iv := Root(ymax)
		for !iv.Single() {
			l, r := iv.Children()
			inL, inR := l.Contains(y), r.Contains(y)
			if inL == inR { // exactly one must contain y
				return false
			}
			if inL {
				iv = l
			} else {
				iv = r
			}
		}
		return iv.L == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

const RoundedMax = 1<<16 - 1

// TestChildrenWidthHalves verifies |child| = |parent|/2 all the way down.
func TestChildrenWidthHalves(t *testing.T) {
	iv := Root(1<<20 - 1)
	want := iv.Width()
	for !iv.Single() {
		l, r := iv.Children()
		if l.Width() != want/2 || r.Width() != want/2 {
			t.Fatalf("children widths %d,%d, want %d", l.Width(), r.Width(), want/2)
		}
		iv = r
		want /= 2
	}
}
