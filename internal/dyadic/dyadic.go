// Package dyadic provides the dyadic-interval arithmetic underlying the
// per-level bucket trees of the paper's Section 2. The dyadic intervals
// within [0, ymax] (ymax of the form 2^β - 1) are defined inductively:
// [0, ymax] is dyadic, and if [a, b] is dyadic with a != b then
// [a, (a+b-1)/2] and [(a+b+1)/2, b] are dyadic.
package dyadic

import "math/bits"

// Interval is a closed integer interval [L, R].
type Interval struct {
	L, R uint64
}

// RoundYMax returns the smallest value of the form 2^β - 1 that is >= ymax,
// the domain the paper assumes without loss of generality.
func RoundYMax(ymax uint64) uint64 {
	if ymax == 0 {
		return 0
	}
	b := bits.Len64(ymax)
	v := (uint64(1) << uint(b)) - 1
	return v
}

// Root returns the top dyadic interval [0, ymax]. ymax must be of the form
// 2^β - 1 (use RoundYMax).
func Root(ymax uint64) Interval {
	if ymax != RoundYMax(ymax) {
		panic("dyadic: ymax must be of the form 2^b - 1")
	}
	return Interval{0, ymax}
}

// Contains reports whether y lies in the interval.
func (iv Interval) Contains(y uint64) bool { return iv.L <= y && y <= iv.R }

// Within reports whether the interval is fully contained in [0, c]
// (the B1 membership test of Algorithm 3).
func (iv Interval) Within(c uint64) bool { return iv.R <= c }

// Intersects reports whether the interval meets [0, c].
func (iv Interval) Intersects(c uint64) bool { return iv.L <= c }

// Single reports whether the interval is a single point (l == r), which
// never closes in Algorithm 2.
func (iv Interval) Single() bool { return iv.L == iv.R }

// Children returns the two dyadic halves. It panics on single-point
// intervals.
func (iv Interval) Children() (Interval, Interval) {
	if iv.Single() {
		panic("dyadic: single-point interval has no children")
	}
	mid := iv.L + (iv.R-iv.L)/2
	return Interval{iv.L, mid}, Interval{mid + 1, iv.R}
}

// Width returns the number of integers in the interval.
func (iv Interval) Width() uint64 { return iv.R - iv.L + 1 }

// Depth returns the interval's depth below the root [0, ymax]: 0 for the
// root, rising by one per halving.
func (iv Interval) Depth(ymax uint64) int {
	return bits.Len64(ymax+1) - bits.Len64(iv.Width())
}
