package correlated

import (
	"errors"

	"github.com/streamagg/correlated/internal/compat"
	"github.com/streamagg/correlated/internal/core"
	"github.com/streamagg/correlated/internal/dyadic"
)

// Predicate selects which query directions a summary supports. Supporting
// a direction costs one underlying structure; Both doubles space.
type Predicate int

const (
	// LE supports queries of the form y <= c (the default).
	LE Predicate = iota
	// GE supports queries of the form y >= c, via a mirrored summary.
	GE
	// Both supports both directions.
	Both
)

// ErrDirection is returned when a query direction was not enabled at
// construction time.
var ErrDirection = errors.New("correlated: query direction not enabled; set Options.Predicate")

// ErrNoLevel mirrors the FAIL output of the paper's Algorithm 3: no level
// of the structure can serve the cutoff. Under the analysis this has
// probability at most Delta.
var ErrNoLevel = core.ErrNoLevel

// ErrIncompatible is the sentinel wrapped by every Merge incompatibility
// error. Two summaries merge only when their Options agree on the
// accuracy targets (Eps, Delta), the domain bound (YMax), the Seed (it
// regenerates the hash functions, so even a seed difference breaks
// mergeability), the Predicate, and everything that shapes the derived
// structure — Alpha/AlphaScale/StrictTheory directly, MaxStreamLen and
// MaxX through the level count. Match it with errors.Is; inspect the
// differing field with errors.As on *IncompatibleError.
var ErrIncompatible = compat.ErrIncompatible

// IncompatibleError is the concrete error returned when a merge is
// rejected, naming the first configuration field that differs (e.g.
// "eps", "delta", "ymax", "seed", "predicate"). It unwraps to
// ErrIncompatible.
type IncompatibleError = compat.Error

// Options configures a summary.
type Options struct {
	// Eps is the target relative error ε ∈ (0, 1).
	Eps float64
	// Delta is the failure probability δ ∈ (0, 1).
	Delta float64
	// YMax is the largest y value that will be inserted (rounded up
	// internally to 2^β − 1).
	YMax uint64
	// MaxStreamLen bounds the stream length n, sizing the level count.
	// Zero defaults to 2^32.
	MaxStreamLen uint64
	// MaxX bounds identifiers (used by SUM to bound the aggregate, and
	// by F0 to size its sampling levels). Zero defaults to 2^32.
	MaxX uint64
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed uint64
	// Predicate selects the supported query direction(s).
	Predicate Predicate

	// Alpha overrides the per-level bucket capacity; 0 derives it from
	// Eps and YMax (see internal/core.Config).
	Alpha int
	// AlphaScale scales the derived capacity; 0 means 1.
	AlphaScale float64
	// StrictTheory uses the worst-case proof constants (practical only
	// for SUM/COUNT).
	StrictTheory bool
}

func (o Options) coreConfig() core.Config {
	return core.Config{
		Eps: o.Eps, Delta: o.Delta, YMax: o.YMax,
		MaxStreamLen: o.MaxStreamLen, MaxX: o.MaxX,
		Alpha: o.Alpha, AlphaScale: o.AlphaScale,
		StrictTheory: o.StrictTheory, Seed: o.Seed,
	}
}

// dual wraps a forward (y <= c) and a mirrored (y >= c) core summary.
type dual struct {
	le   *core.Summary
	ge   *core.Summary
	ymax uint64 // rounded domain top, shared by both directions
	pred Predicate

	geScratch []Tuple // reused mirrored-batch buffer for addBatch
}

func newDual(agg core.Aggregate, o Options) (*dual, error) {
	d := &dual{pred: o.Predicate, ymax: dyadic.RoundYMax(o.YMax)}
	cfg := o.coreConfig()
	var err error
	if o.Predicate == LE || o.Predicate == Both {
		if d.le, err = core.NewSummary(agg, cfg); err != nil {
			return nil, err
		}
	}
	if o.Predicate == GE || o.Predicate == Both {
		mirror := cfg
		mirror.Seed = cfg.Seed ^ 0x6d6972726f72 // "mirror"
		if d.ge, err = core.NewSummary(agg, mirror); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Tuple is one stream element for batched insertion. A zero W counts as
// weight 1.
type Tuple = core.Tuple

func (d *dual) add(x, y uint64, w int64) error {
	if y > d.ymax {
		return errors.New("correlated: y exceeds YMax")
	}
	if d.le != nil {
		if err := d.le.AddWeighted(x, y, w); err != nil {
			return err
		}
	}
	if d.ge != nil {
		if err := d.ge.AddWeighted(x, d.ymax-y, w); err != nil {
			return err
		}
	}
	return nil
}

// addBatch feeds a batch through the underlying summaries' amortized
// batched path. The batch is sorted by y in place; when the GE direction
// is enabled its mirrored copy lives in a scratch slice owned by d.
func (d *dual) addBatch(batch []Tuple) error {
	for i := range batch {
		if batch[i].Y > d.ymax {
			return errors.New("correlated: y exceeds YMax")
		}
	}
	if d.le != nil {
		if err := d.le.AddBatch(batch); err != nil {
			return err
		}
	}
	if d.ge != nil {
		if cap(d.geScratch) < len(batch) {
			d.geScratch = make([]Tuple, len(batch))
		}
		mir := d.geScratch[:len(batch)]
		for i, t := range batch {
			mir[i] = Tuple{X: t.X, Y: d.ymax - t.Y, W: t.W}
		}
		if err := d.ge.AddBatch(mir); err != nil {
			return err
		}
	}
	return nil
}

// merge folds another dual built from identical Options into d.
// Mismatches are caught while validating the first direction, before any
// state changes; the two directions share every configuration field, so a
// merge that passes the first direction cannot be rejected on the second.
func (d *dual) merge(o *dual) error {
	if o == nil {
		return errors.New("correlated: cannot merge a nil summary")
	}
	if o == d {
		return errors.New("correlated: cannot merge a summary into itself")
	}
	if d.pred != o.pred {
		return compat.Mismatch("predicate", d.pred, o.pred)
	}
	if d.le != nil {
		if err := d.le.Merge(o.le); err != nil {
			return err
		}
	}
	if d.ge != nil {
		if err := d.ge.Merge(o.ge); err != nil {
			return err
		}
	}
	return nil
}

// reset clears both directions back to their freshly constructed state.
func (d *dual) reset() {
	if d.le != nil {
		d.le.Reset()
	}
	if d.ge != nil {
		d.ge.Reset()
	}
}

func (d *dual) queryLE(c uint64) (float64, error) {
	if d.le == nil {
		return 0, ErrDirection
	}
	return d.le.Query(c)
}

func (d *dual) queryGE(c uint64) (float64, error) {
	if d.ge == nil {
		return 0, ErrDirection
	}
	if c > d.ymax {
		return 0, nil // nothing can satisfy y >= c
	}
	return d.ge.Query(d.ymax - c)
}

func (d *dual) space() int64 {
	var s int64
	if d.le != nil {
		s += d.le.Space()
	}
	if d.ge != nil {
		s += d.ge.Space()
	}
	return s
}

func (d *dual) count() uint64 {
	if d.le != nil {
		return d.le.Count()
	}
	return d.ge.Count()
}
