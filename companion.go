package correlated

import (
	"github.com/streamagg/correlated/internal/core"
	"github.com/streamagg/correlated/internal/corrf0"
	"github.com/streamagg/correlated/internal/quantile"
	"github.com/streamagg/correlated/internal/turnstile"
	"github.com/streamagg/correlated/internal/window"
)

// Quantiles is an ε-approximate whole-stream quantile summary over the y
// dimension (Greenwald–Khanna). It is the companion structure of the
// paper's drill-down scenario: query it for the median or the 95th
// percentile, then feed that value as the cutoff of a correlated query.
type Quantiles struct {
	gk *quantile.GK
}

// NewQuantiles builds a quantile summary with rank error eps·n.
func NewQuantiles(eps float64) (*Quantiles, error) {
	gk, err := quantile.New(eps)
	if err != nil {
		return nil, err
	}
	return &Quantiles{gk: gk}, nil
}

// Add records one y value.
func (q *Quantiles) Add(y uint64) { q.gk.Insert(y) }

// Query returns a value whose rank is within eps·n of phi·n.
func (q *Quantiles) Query(phi float64) (uint64, error) { return q.gk.Query(phi) }

// Median is Query(0.5).
func (q *Quantiles) Median() (uint64, error) { return q.gk.Median() }

// Space reports stored tuples.
func (q *Quantiles) Space() int { return q.gk.Space() }

// Count reports values inserted.
func (q *Quantiles) Count() uint64 { return q.gk.Count() }

// CountWindow counts items in a sliding window over an asynchronous
// stream (Section 1.1's reduction to correlated aggregation).
type CountWindow struct{ w *window.Window }

// NewCountWindow builds a sliding-window counter over timestamps in
// [0, horizon].
func NewCountWindow(o Options, horizon uint64) (*CountWindow, error) {
	w, err := window.New(core.CountAggregate(), o.coreConfig(), horizon)
	if err != nil {
		return nil, err
	}
	return &CountWindow{w: w}, nil
}

// Add records item x at timestamp ts (arrival order free).
func (c *CountWindow) Add(x, ts uint64) error { return c.w.Add(x, ts) }

// Query estimates the count over the window [now−width+1, now]; now must
// be at least every observed timestamp.
func (c *CountWindow) Query(now, width uint64) (float64, error) { return c.w.Query(now, width) }

// Space reports stored counters/tuples.
func (c *CountWindow) Space() int64 { return c.w.Space() }

// F2Window estimates F2 over a sliding window of an asynchronous stream.
type F2Window struct{ w *window.Window }

// NewF2Window builds a sliding-window F2 summary over timestamps in
// [0, horizon].
func NewF2Window(o Options, horizon uint64) (*F2Window, error) {
	w, err := window.New(core.F2Aggregate(), o.coreConfig(), horizon)
	if err != nil {
		return nil, err
	}
	return &F2Window{w: w}, nil
}

// Add records item x at timestamp ts.
func (f *F2Window) Add(x, ts uint64) error { return f.w.Add(x, ts) }

// Query estimates F2 over the window [now−width+1, now].
func (f *F2Window) Query(now, width uint64) (float64, error) { return f.w.Query(now, width) }

// Space reports stored counters/tuples.
func (f *F2Window) Space() int64 { return f.w.Space() }

// F0Window counts distinct items in a sliding window of an asynchronous
// stream.
type F0Window struct{ w *window.F0Window }

// NewF0Window builds a sliding-window distinct counter; Options.MaxX
// bounds the identifier domain.
func NewF0Window(o Options, horizon uint64) (*F0Window, error) {
	xdom := o.MaxX
	if xdom == 0 {
		xdom = 1 << 32
	}
	w, err := window.NewF0(corrf0.Config{
		Eps: o.Eps, Delta: o.Delta, XDomain: xdom, Alpha: o.Alpha, Seed: o.Seed,
	}, horizon)
	if err != nil {
		return nil, err
	}
	return &F0Window{w: w}, nil
}

// Add records item x at timestamp ts.
func (f *F0Window) Add(x, ts uint64) error { return f.w.Add(x, ts) }

// Query estimates the distinct count over the window [now−width+1, now].
func (f *F0Window) Query(now, width uint64) (float64, error) { return f.w.Query(now, width) }

// Space reports stored sample tuples.
func (f *F0Window) Space() int64 { return f.w.Space() }

// Turnstile model (Section 4) re-exports. In the turnstile model items
// carry positive or negative weights; Theorem 6 shows a single pass needs
// linear space, and MULTIPASS achieves small space in O(log ymax) passes.

// Record is one weighted stream element.
type Record = turnstile.Record

// Tape is a replayable weighted stream.
type Tape = turnstile.Tape

// NewTape wraps records as a tape.
func NewTape(recs []Record) *Tape { return turnstile.NewTape(recs) }

// MultipassConfig configures RunMultipass.
type MultipassConfig = turnstile.MultipassConfig

// MultipassF selects the aggregate MULTIPASS estimates.
type MultipassF = turnstile.MultipassF

// Multipass aggregate selectors.
const (
	// MultipassF2 estimates the second moment of net weights.
	MultipassF2 = turnstile.MultipassF2
	// MultipassF1 estimates the first moment of net weights.
	MultipassF1 = turnstile.MultipassF1
)

// MultipassResult is the output of RunMultipass; query it with Query.
type MultipassResult = turnstile.MultipassResult

// RunMultipass runs the paper's Algorithm 4 over the tape: O(log ymax)
// sequential passes producing a summary that answers correlated F2
// queries over ±-weighted data within (1+ε).
func RunMultipass(t *Tape, cfg MultipassConfig) (*MultipassResult, error) {
	return turnstile.RunMultipass(t, cfg)
}

// SolveGreaterThan runs the executable GREATER-THAN reduction of
// Theorem 6 using the multipass protocol (bits are most-significant
// first): the returned comparison is +1, −1, or 0 for a > b, a < b, a = b.
func SolveGreaterThan(a, b []bool, eps, delta float64, seed uint64) (*turnstile.GTResult, error) {
	return turnstile.SolveGreaterThan(a, b, eps, delta, seed)
}
