package shard

import (
	"fmt"
	"testing"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/hash"
)

// benchOptions mirrors the paper's Table B setup (eps = 0.2, y in
// [0, 1e6]) so BenchmarkShardedAdd/P=1 is comparable with the root
// package's BenchmarkTableB_UpdateThroughput/F2 numbers.
func benchOptions() correlated.Options {
	return correlated.Options{
		Eps: 0.2, Delta: 0.1, YMax: 1_000_000,
		MaxStreamLen: 1 << 24, MaxX: 500_001, Seed: 1,
	}
}

// BenchmarkShardedAdd measures the steady-state per-tuple ingest cost of
// the sharded engine at P = 1, 2, 4, 8. The engine is pre-warmed with
// one full pass of the benchmark's 64k-tuple working set so the timed
// loop measures the hot path, not first-touch structure growth: a fresh
// summary materializes its dyadic-tree leaf sketches as new (level,
// leaf) pairs appear, and with P shards that growth-phase allocation
// happens once per shard — measured from an empty engine it used to
// show up as B/op rising linearly in P (127→752 B/op at P=1→8) even
// though the driver path allocates nothing and the handoff buffers are
// fully recycled (TestShardedHandoffBufferRecycling pins that).
//
// The driver-side path is allocation-free; wall-clock scaling past P=1
// requires as many free cores as shards (run with GOMAXPROCS >= P+1;
// single-core machines see only the batching gain). Fixed-seed uniform
// tuples, like the Table B uniform dataset.
func BenchmarkShardedAdd(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			eng, err := NewF2(benchOptions(), p)
			if err != nil {
				b.Fatal(err)
			}
			rng := hash.New(7)
			xs := make([]uint64, 1<<16)
			ys := make([]uint64, 1<<16)
			for i := range xs {
				xs[i] = rng.Uint64n(500_001)
				ys[i] = rng.Uint64n(1_000_001)
			}
			// Warm every (level, leaf) pair the working set touches, so
			// the timed loop is the steady state.
			for i := range xs {
				if err := eng.Add(xs[i], ys[i]); err != nil {
					b.Fatal(err)
				}
			}
			if err := eng.Flush(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := i & (1<<16 - 1)
				if err := eng.Add(xs[m], ys[m]); err != nil {
					b.Fatal(err)
				}
			}
			// Include the final drain so ns/op cannot hide queued work.
			if err := eng.Flush(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := eng.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkShardedQuery measures the pooled merge-then-query path over
// populated shards.
func BenchmarkShardedQuery(b *testing.B) {
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			eng, err := NewF2(benchOptions(), p)
			if err != nil {
				b.Fatal(err)
			}
			rng := hash.New(7)
			for i := 0; i < 500_000; i++ {
				if err := eng.Add(rng.Uint64n(500_001), rng.Uint64n(1_000_001)); err != nil {
					b.Fatal(err)
				}
			}
			if err := eng.Flush(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.QueryLE(uint64((i%10 + 1) * 100_000)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := eng.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
