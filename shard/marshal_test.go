package shard

import (
	"bytes"
	"errors"
	"testing"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/hash"
)

// fillEngine ingests a deterministic stream that drives the summaries
// well past the singleton regime (closing and eviction on every shard).
func fillEngine(t *testing.T, eng *Sharded[*correlated.F2Summary], n int, seed uint64) {
	t.Helper()
	rng := hash.New(seed)
	for i := 0; i < n; i++ {
		if err := eng.Add(rng.Uint64n(1<<14), rng.Uint64n(1<<16)); err != nil {
			t.Fatal(err)
		}
	}
}

func snapshotOptions() correlated.Options {
	return correlated.Options{
		Eps: 0.2, Delta: 0.1, YMax: 1<<16 - 1,
		MaxStreamLen: 1 << 20, MaxX: 1 << 14, Seed: 11,
	}
}

// TestSnapshotRoundTripBitIdentical is the crash-recovery contract: a
// snapshot restored into a fresh engine re-marshals to the same bytes
// and answers queries identically, in the general (closing/eviction)
// regime and across shard counts.
func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	o := snapshotOptions()
	for _, shards := range []int{1, 3} {
		eng, err := NewF2(o, shards, WithBatchSize(64))
		if err != nil {
			t.Fatal(err)
		}
		fillEngine(t, eng, 60_000, 21)
		img, err := eng.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		// Marshaling is a drain barrier, not a mutation: the live engine
		// re-marshals identically.
		again, err := eng.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(img, again) {
			t.Fatalf("shards=%d: re-marshal of live engine differs", shards)
		}

		restored, err := NewF2(o, shards, WithBatchSize(64))
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.UnmarshalBinary(img); err != nil {
			t.Fatal(err)
		}
		img2, err := restored.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(img, img2) {
			t.Fatalf("shards=%d: restored engine marshals differently (%d vs %d bytes)",
				shards, len(img), len(img2))
		}
		n1, _ := eng.Count()
		n2, _ := restored.Count()
		if n1 != n2 {
			t.Fatalf("shards=%d: count %d vs restored %d", shards, n1, n2)
		}
		for _, c := range []uint64{1 << 10, 1 << 14, 1 << 15, 1<<16 - 1} {
			want, err1 := eng.QueryLE(c)
			got, err2 := restored.QueryLE(c)
			if err1 != nil || err2 != nil {
				t.Fatalf("c=%d: %v / %v", c, err1, err2)
			}
			if got != want {
				t.Fatalf("shards=%d c=%d: restored %v original %v", shards, c, got, want)
			}
		}
		// Both engines stay usable after the round trip.
		if err := eng.Add(1, 1); err != nil {
			t.Fatal(err)
		}
		if err := restored.Add(1, 1); err != nil {
			t.Fatal(err)
		}
		eng.Close()
		restored.Close()
	}
}

// TestSnapshotRoundTripFkBitIdentical: the same contract for the Fk
// engine, whose sketch state includes candidate maps (canonical-order
// encoding is what makes this hold).
func TestSnapshotRoundTripFkBitIdentical(t *testing.T) {
	o := snapshotOptions()
	eng, err := NewFk(3, o, 2, WithBatchSize(64))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rng := hash.New(13)
	for i := 0; i < 30_000; i++ {
		if err := eng.Add(rng.Uint64n(1<<14), rng.Uint64n(1<<16)); err != nil {
			t.Fatal(err)
		}
	}
	img, err := eng.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewFk(3, o, 2, WithBatchSize(64))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.UnmarshalBinary(img); err != nil {
		t.Fatal(err)
	}
	img2, err := restored.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, img2) {
		t.Fatalf("Fk restored engine marshals differently (%d vs %d bytes)", len(img), len(img2))
	}
}

// TestSnapshotRejectsGarbage: framing errors are typed, never panics,
// and a shard-count mismatch is called out.
func TestSnapshotRejectsGarbage(t *testing.T) {
	o := snapshotOptions()
	eng, err := NewF2(o, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, bad := range [][]byte{nil, {}, {99}, {snapshotVersion}, {snapshotVersion, 0x80}} {
		if err := eng.UnmarshalBinary(bad); err == nil {
			t.Fatalf("garbage %v accepted", bad)
		}
	}
	img, err := eng.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewF2(o, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.UnmarshalBinary(img); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("shard-count mismatch: %v", err)
	}
	// Truncated payload.
	if err := eng.UnmarshalBinary(img[:len(img)-3]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

// TestMarshalMergedPushPath: a site engine's merged image folds into a
// coordinator engine (and a plain summary) exactly like a live merge —
// the paper's site→coordinator path over the engine API.
func TestMarshalMergedPushPath(t *testing.T) {
	o := snapshotOptions()
	site, err := NewF2(o, 2, WithBatchSize(32))
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	fillEngine(t, site, 8_000, 31)
	img, err := site.MarshalMerged()
	if err != nil {
		t.Fatal(err)
	}

	coordEng, err := NewF2(o, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer coordEng.Close()
	if err := coordEng.MergeMarshaled(img); err != nil {
		t.Fatal(err)
	}
	coordSum, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := coordSum.MergeMarshaled(img); err != nil {
		t.Fatal(err)
	}
	n, err := coordEng.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != coordSum.Count() {
		t.Fatalf("engine count %d vs summary count %d", n, coordSum.Count())
	}
	for _, c := range []uint64{1 << 12, 1 << 15} {
		want, err1 := coordSum.QueryLE(c)
		got, err2 := coordEng.QueryLE(c)
		if err1 != nil || err2 != nil {
			t.Fatalf("c=%d: %v / %v", c, err1, err2)
		}
		if got != want {
			t.Fatalf("c=%d: engine %v summary %v", c, got, want)
		}
	}
	// Incompatible image: rejected with the typed merge error, engine
	// untouched.
	o2 := o
	o2.Seed++
	foreign, err := correlated.NewF2Summary(o2)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := foreign.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := coordEng.MergeMarshaled(bad); !errors.Is(err, correlated.ErrIncompatible) {
		t.Fatalf("mismatched seed: %v", err)
	}
	if n2, _ := coordEng.Count(); n2 != n {
		t.Fatalf("rejected push changed count: %d vs %d", n2, n)
	}
}

// TestEngineResetPushCycle: push-then-reset at a site accumulates
// correctly at the coordinator — the delta-push protocol corrd's site
// role runs on a ticker.
func TestEngineResetPushCycle(t *testing.T) {
	o := snapshotOptions()
	site, err := NewF2(o, 2, WithBatchSize(16))
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	coord, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	rng := hash.New(7)
	const rounds, perRound = 3, 500
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			x, y := rng.Uint64n(1<<10), rng.Uint64n(200)
			if err := site.Add(x, y); err != nil {
				t.Fatal(err)
			}
			if err := whole.Add(x, y); err != nil {
				t.Fatal(err)
			}
		}
		img, err := site.MarshalMerged()
		if err != nil {
			t.Fatal(err)
		}
		if err := site.Reset(); err != nil {
			t.Fatal(err)
		}
		if err := coord.MergeMarshaled(img); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := site.Count(); n != 0 {
		t.Fatalf("site count after reset: %d", n)
	}
	if coord.Count() != whole.Count() {
		t.Fatalf("coordinator count %d vs whole-stream %d", coord.Count(), whole.Count())
	}
	// Small distinct-y stream keeps the singleton regime, where the
	// merged answer is bit-identical to the whole-stream answer.
	for _, c := range []uint64{0, 50, 150, 1 << 15} {
		want, err1 := whole.QueryLE(c)
		got, err2 := coord.QueryLE(c)
		if err1 != nil || err2 != nil {
			t.Fatalf("c=%d: %v / %v", c, err1, err2)
		}
		if got != want {
			t.Fatalf("c=%d: coordinator %v whole %v", c, got, want)
		}
	}
}

// TestSnapshotRestoresRoutingCursors: a snapshot taken with the
// round-robin cursors mid-cycle restores them, so an engine that
// continues ingesting after restore routes tuples (and MergeMarshaled
// images) to the same shards as the original — the property the corrd
// WAL's crash-exact replay depends on. Proven in the eviction regime,
// where mis-routing changes per-shard bytes.
func TestSnapshotRestoresRoutingCursors(t *testing.T) {
	o := snapshotOptions()
	a, err := NewF2(o, 3, WithBatchSize(64))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	fillEngine(t, a, 5_001, 21) // 5001 % 3 != 0: cursor mid-cycle
	img, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewF2(o, 3, WithBatchSize(64))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.UnmarshalBinary(img); err != nil {
		t.Fatal(err)
	}
	if b.next != a.next || b.push != a.push {
		t.Fatalf("cursors not restored: got (%d,%d) want (%d,%d)", b.next, b.push, a.next, a.push)
	}
	// Continue both engines identically; per-shard state must stay
	// bit-identical, which requires identical routing.
	fillEngine(t, a, 2_000, 22)
	fillEngine(t, b, 2_000, 22)
	am, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bm, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(am, bm) {
		t.Fatal("post-restore ingest diverged from the original engine: routing cursors not honored")
	}
}

// TestSnapshotV1StillRestores: a version-1 snapshot (per-shard frames,
// no cursor suffix) restores with both cursors at zero.
func TestSnapshotV1StillRestores(t *testing.T) {
	o := snapshotOptions()
	a, err := NewF2(o, 2, WithBatchSize(64))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	fillEngine(t, a, 1_000, 31)
	img, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite as v1: drop the two trailing cursor uvarints. Cursor
	// values after 1000 tuples on 2 shards are 0,0 → one byte each.
	v1 := append([]byte{snapshotVersionV1}, img[1:len(img)-2]...)
	b, err := NewF2(o, 2, WithBatchSize(64))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.UnmarshalBinary(v1); err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	na, _ := a.Count()
	nb, _ := b.Count()
	if na != nb {
		t.Fatalf("v1 restore count %d want %d", nb, na)
	}
}
