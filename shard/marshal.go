package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary serialization of a Sharded engine, for daemon checkpoints and
// the site→coordinator push path.
//
// Two wire forms exist, for two different jobs:
//
//   - MarshalBinary / UnmarshalBinary is the *snapshot* form: every
//     shard summary is framed separately, so restore reproduces the
//     engine's exact internal state — a restored engine re-marshals to
//     the same bytes, which is what a crash-recovery contract needs.
//   - MarshalMerged is the *push* form: the single-summary image of the
//     merge of all shards, consumable by MergeMarshaled on any
//     identically configured summary or engine (this is what a site
//     ships upstream; it is also what a query composes internally).
//
// As with the summaries themselves, configuration is not serialized:
// restore into an engine built from the same Options (Seed included) and
// the same shard count.

// snapshotVersion versions the per-shard framing; the embedded summary
// images carry their own versions and config-compatibility blocks.
// Version 2 appends the engine's two round-robin cursors (ingest
// routing, MergeMarshaled target) after the shard frames, so a
// restored engine routes subsequent traffic exactly like the engine
// that was snapshotted — the property the corrd WAL's crash-exact
// replay contract stands on. Version 1 snapshots (no cursors) still
// restore, with both cursors at zero.
const (
	snapshotVersion   = 2
	snapshotVersionV1 = 1
)

// ErrBadSnapshot reports malformed snapshot framing (the per-summary
// payloads fail with their own typed errors).
var ErrBadSnapshot = errors.New("shard: bad snapshot encoding")

// MarshalBinary serializes the engine as a snapshot: a drain barrier,
// then every shard summary framed in shard order. Unlike MarshalMerged
// it does not merge — restoring with UnmarshalBinary reproduces the
// per-shard state exactly, so marshal → restore → marshal is
// bit-identical.
func (e *Sharded[S]) MarshalBinary() ([]byte, error) {
	if err := e.barrier(); err != nil {
		return nil, err
	}
	buf := []byte{snapshotVersion}
	buf = binary.AppendUvarint(buf, uint64(len(e.workers)))
	for _, wk := range e.workers {
		payload, err := wk.sum.MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = binary.AppendUvarint(buf, uint64(len(payload)))
		buf = append(buf, payload...)
	}
	buf = binary.AppendUvarint(buf, uint64(e.next))
	buf = binary.AppendUvarint(buf, uint64(e.push))
	return buf, nil
}

// UnmarshalBinary restores a snapshot produced by MarshalBinary into an
// engine built from the same Options and shard count. Restore into a
// freshly constructed engine: on error the engine may hold a partial
// subset of the shards and should be discarded.
func (e *Sharded[S]) UnmarshalBinary(data []byte) error {
	if err := e.barrier(); err != nil {
		return err
	}
	if len(data) < 1 || (data[0] != snapshotVersion && data[0] != snapshotVersionV1) {
		return ErrBadSnapshot
	}
	version := data[0]
	data = data[1:]
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return ErrBadSnapshot
	}
	data = data[sz:]
	if int(n) != len(e.workers) {
		return fmt.Errorf("shard: snapshot has %d shards, engine has %d: %w",
			n, len(e.workers), ErrBadSnapshot)
	}
	for _, wk := range e.workers {
		ln, sz := binary.Uvarint(data)
		if sz <= 0 || uint64(len(data)-sz) < ln {
			return ErrBadSnapshot
		}
		if err := wk.sum.UnmarshalBinary(data[sz : sz+int(ln)]); err != nil {
			return err
		}
		data = data[sz+int(ln):]
	}
	e.next, e.push = 0, 0
	if version >= snapshotVersion {
		next, sz := binary.Uvarint(data)
		if sz <= 0 {
			return ErrBadSnapshot
		}
		data = data[sz:]
		push, sz := binary.Uvarint(data)
		if sz <= 0 {
			return ErrBadSnapshot
		}
		data = data[sz:]
		if next >= uint64(len(e.workers)) || push >= uint64(len(e.workers)) {
			return fmt.Errorf("shard: snapshot cursor out of range: %w", ErrBadSnapshot)
		}
		e.next, e.push = int(next), int(push)
	}
	if len(data) != 0 {
		return ErrBadSnapshot
	}
	return nil
}

// MarshalMerged returns the single-summary wire image of the merge of
// every shard — the payload a site daemon pushes to its coordinator.
// The bytes are exactly what the underlying summary type's
// MarshalBinary produces, so they can be folded into any identically
// configured summary (MergeMarshaled) or engine (Sharded.MergeMarshaled),
// or restored standalone with the summary's UnmarshalBinary.
func (e *Sharded[S]) MarshalMerged() ([]byte, error) {
	if err := e.mergeAll(); err != nil {
		return nil, err
	}
	return e.scratch.MarshalBinary()
}

// MergeMarshaled folds a single-summary wire image — a site summary
// serialized with the summary's MarshalBinary, or an engine's
// MarshalMerged — into the engine, the coordinator side of the paper's
// distributed model. Images are routed round-robin across the shards so
// repeated pushes spread merge load. The engine is untouched when the
// image is malformed or configuration-incompatible.
func (e *Sharded[S]) MergeMarshaled(data []byte) error {
	if err := e.barrier(); err != nil {
		return err
	}
	wk := e.workers[e.push]
	if e.push++; e.push == len(e.workers) {
		e.push = 0
	}
	return wk.sum.MergeMarshaled(data)
}
