package shard

import (
	"errors"
	"math"
	"testing"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/hash"
)

// TestShardedMatchesSingleSummary: while queries are served by the
// singleton level (at most alpha distinct y values), the sharded engine's
// merge-then-query answers are bit-identical to a single summary
// ingesting the same stream — partitioning plus linear merging is exact
// in that regime.
func TestShardedMatchesSingleSummary(t *testing.T) {
	o := correlated.Options{
		Eps: 0.2, Delta: 0.1, YMax: 1<<16 - 1,
		MaxStreamLen: 1 << 20, MaxX: 1 << 16, Alpha: 256, Seed: 5,
	}
	single, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewF2(o, 4, WithBatchSize(128))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rng := hash.New(42)
	const distinctY = 200 // < alpha: every query served by the singleton level
	for i := 0; i < 20_000; i++ {
		x, y := rng.Uint64n(1<<12), rng.Uint64n(distinctY)
		if err := single.Add(x, y); err != nil {
			t.Fatal(err)
		}
		if err := eng.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	n, err := eng.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != single.Count() {
		t.Fatalf("count: sharded %d single %d", n, single.Count())
	}
	for _, c := range []uint64{0, 25, 100, distinctY, 1 << 15} {
		want, err1 := single.QueryLE(c)
		got, err2 := eng.QueryLE(c)
		if err1 != nil || err2 != nil {
			t.Fatalf("c=%d: %v / %v", c, err1, err2)
		}
		if got != want {
			t.Fatalf("c=%d: sharded %v single %v (bit-identical expected)", c, got, want)
		}
	}
}

// TestShardedAccuracyGeneralRegime: with a stream large enough to close
// buckets and evict on every shard, the merged answer stays within the
// structure's (slackened by the shard count) error bound of the exact
// answer.
func TestShardedAccuracyGeneralRegime(t *testing.T) {
	o := correlated.Options{
		Eps: 0.2, Delta: 0.1, YMax: 1<<20 - 1,
		MaxStreamLen: 1 << 22, MaxX: 1 << 16, Seed: 9,
	}
	eng, err := NewCount(o, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rng := hash.New(77)
	type ty struct{ y uint64 }
	var ys []ty
	for i := 0; i < 150_000; i++ {
		x, y := rng.Uint64n(1<<14), rng.Uint64n(1<<20)
		ys = append(ys, ty{y})
		if err := eng.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []uint64{1 << 17, 1 << 18, 1 << 19, 1<<20 - 1} {
		got, err := eng.QueryLE(c)
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		var want float64
		for _, e := range ys {
			if e.y <= c {
				want++
			}
		}
		if rel := math.Abs(got-want) / want; rel > 0.35 {
			t.Fatalf("c=%d: sharded %v vs exact %v (rel %.3f)", c, got, want, rel)
		}
	}
}

// TestShardedValidation: synchronous rejection of invalid tuples and the
// closed-engine contract.
func TestShardedValidation(t *testing.T) {
	o := correlated.Options{Eps: 0.2, Delta: 0.1, YMax: 1 << 10, Seed: 1}
	eng, err := NewSum(o, 2)
	if err != nil {
		t.Fatal(err)
	}
	// YMax rounds up to 2^11-1; beyond that must fail immediately.
	if err := eng.Add(1, 1<<12); err == nil {
		t.Fatal("y beyond YMax accepted")
	}
	if err := eng.AddWeighted(1, 1, 0); err == nil {
		t.Fatal("non-positive weight accepted")
	}
	if err := eng.Add(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Add(1, 5); !errors.Is(err, ErrClosed) {
		t.Fatalf("Add after Close: %v", err)
	}
	if _, err := eng.QueryLE(10); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query after Close: %v", err)
	}
	if err := eng.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close: %v", err)
	}
}

// TestShardedAddBatchAtomicRejection: a batch containing an invalid
// tuple is rejected before any of it is ingested, matching the unsharded
// AddBatch contract (correct and retry is safe).
func TestShardedAddBatchAtomicRejection(t *testing.T) {
	o := correlated.Options{Eps: 0.2, Delta: 0.1, YMax: 1 << 10, Seed: 1}
	eng, err := NewCount(o, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	batch := []correlated.Tuple{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 1 << 14}}
	if err := eng.AddBatch(batch); err == nil {
		t.Fatal("batch with out-of-range y accepted")
	}
	n, err := eng.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("rejected batch partially ingested: count=%d", n)
	}
	batch[2].Y = 3 // corrected batch retries cleanly
	if err := eng.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	if n, _ := eng.Count(); n != 3 {
		t.Fatalf("count after retry: %d", n)
	}
}

// TestShardedAsyncErrorSurfaces: a tuple that bypasses engine validation
// (generic constructor without WithMaxY) fails inside the worker and
// surfaces at the next barrier.
func TestShardedAsyncErrorSurfaces(t *testing.T) {
	o := correlated.Options{Eps: 0.2, Delta: 0.1, YMax: 1 << 10, Seed: 1}
	eng, err := NewSharded(func() (*correlated.CountSummary, error) {
		return correlated.NewCountSummary(o)
	}, 2, WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 16; i++ {
		// y far beyond YMax: the engine cannot know, the worker rejects.
		if err := eng.Add(uint64(i), 1<<30); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Flush(); err == nil {
		t.Fatal("worker error did not surface at Flush")
	}
}

// TestShardedRace is the race-detector workout: a driver goroutine
// interleaving ingest, flushes and queries with all P workers running.
func TestShardedRace(t *testing.T) {
	o := correlated.Options{
		Eps: 0.25, Delta: 0.1, YMax: 1<<16 - 1,
		MaxStreamLen: 1 << 20, MaxX: 1 << 12, Seed: 3,
	}
	eng, err := NewF2(o, 4, WithBatchSize(256))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		rng := hash.New(123)
		for i := 0; i < 60_000; i++ {
			if err := eng.Add(rng.Uint64n(1<<12), rng.Uint64n(1<<16)); err != nil {
				done <- err
				return
			}
			if i%9973 == 0 {
				if _, err := eng.QueryLE(rng.Uint64n(1 << 16)); err != nil {
					done <- err
					return
				}
			}
		}
		done <- eng.Close()
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestShardedHandoffBufferRecycling: the driver/worker handoff reuses a
// fixed set of batch buffers — every buffer that comes back through a
// worker's free channel is one of the originals, so steady-state ingest
// allocates no new handoff storage no matter how many batches flow.
func TestShardedHandoffBufferRecycling(t *testing.T) {
	o := correlated.Options{
		Eps: 0.25, Delta: 0.1, YMax: 1<<16 - 1,
		MaxStreamLen: 1 << 20, MaxX: 1 << 12, Seed: 9,
	}
	const batch = 64
	eng, err := NewF2(o, 2, WithBatchSize(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Record the identity (backing-array address) of every buffer in
	// circulation: the pending buffer plus everything parked in free.
	baseline := map[*correlated.Tuple]bool{}
	record := func(m map[*correlated.Tuple]bool) {
		for _, wk := range eng.workers {
			m[&wk.pending[:1][0]] = true
			for i := 0; i < len(wk.free); i++ {
				b := <-wk.free
				m[&b[:1][0]] = true
				wk.free <- b
			}
		}
	}
	record(baseline)
	want := len(eng.workers) * (spareBuffers + 1)
	if len(baseline) != want {
		t.Fatalf("expected %d distinct buffers in circulation, found %d", want, len(baseline))
	}
	rng := hash.New(77)
	for round := 0; round < 50; round++ {
		for i := 0; i < batch*len(eng.workers)*4; i++ {
			if err := eng.Add(rng.Uint64n(1<<12), rng.Uint64n(1<<16)); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	after := map[*correlated.Tuple]bool{}
	record(after)
	for p := range after {
		if !baseline[p] {
			t.Fatalf("a handoff buffer was reallocated instead of recycled (%d of %d foreign)", len(after)-len(baseline), len(after))
		}
	}
}

// TestShardedCachedQuery: RefreshCached captures the merged state and
// CachedQuery* serve it — identical to the live QueryLE answers at the
// refresh point — without flushing or touching later ingest until the
// next refresh.
func TestShardedCachedQuery(t *testing.T) {
	o := correlated.Options{
		Eps: 0.2, Delta: 0.1, YMax: 1<<16 - 1,
		MaxStreamLen: 1 << 20, MaxX: 1 << 16, Alpha: 256, Seed: 5,
		Predicate: correlated.Both,
	}
	eng, err := NewF2(o, 3, WithBatchSize(32))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rng := hash.New(41)
	for i := 0; i < 10_000; i++ {
		if err := eng.Add(rng.Uint64n(1<<16), rng.Uint64n(200)); err != nil {
			t.Fatal(err)
		}
	}
	cutoffs := []uint64{0, 10, 100, 199, 1 << 15}
	live := make([]float64, len(cutoffs))
	if err := eng.QueryLEBatch(cutoffs, live); err != nil {
		t.Fatal(err)
	}
	if err := eng.RefreshCached(); err != nil {
		t.Fatal(err)
	}
	cached := make([]float64, len(cutoffs))
	if err := eng.CachedQueryLEBatch(cutoffs, cached); err != nil {
		t.Fatal(err)
	}
	for i := range cutoffs {
		if cached[i] != live[i] {
			t.Fatalf("c=%d: cached %v live %v", cutoffs[i], cached[i], live[i])
		}
	}
	// More ingest does not bleed into the cache until the next refresh.
	for i := 0; i < 5_000; i++ {
		if err := eng.Add(rng.Uint64n(1<<16), rng.Uint64n(200)); err != nil {
			t.Fatal(err)
		}
	}
	stale := make([]float64, len(cutoffs))
	if err := eng.CachedQueryLEBatch(cutoffs, stale); err != nil {
		t.Fatal(err)
	}
	for i := range cutoffs {
		if stale[i] != live[i] {
			t.Fatalf("c=%d: cache moved without a refresh (%v vs %v)", cutoffs[i], stale[i], live[i])
		}
	}
	if err := eng.RefreshCached(); err != nil {
		t.Fatal(err)
	}
	fresh := make([]float64, len(cutoffs))
	if err := eng.CachedQueryLEBatch(cutoffs, fresh); err != nil {
		t.Fatal(err)
	}
	liveGE := make([]float64, len(cutoffs))
	cachedGE := make([]float64, len(cutoffs))
	if err := eng.QueryLEBatch(cutoffs, live); err != nil {
		t.Fatal(err)
	}
	if err := eng.QueryGEBatch(cutoffs, liveGE); err != nil {
		t.Fatal(err)
	}
	if err := eng.CachedQueryGEBatch(cutoffs, cachedGE); err != nil {
		t.Fatal(err)
	}
	for i := range cutoffs {
		if fresh[i] != live[i] || cachedGE[i] != liveGE[i] {
			t.Fatalf("c=%d: refreshed cache diverges (LE %v/%v, GE %v/%v)",
				cutoffs[i], fresh[i], live[i], cachedGE[i], liveGE[i])
		}
	}
}

// TestShardedCachedQueryConcurrentIngest: CachedQuery* may run while the
// driver ingests (the service's epoch cache does exactly that); run
// under -race this pins the no-shared-state contract between the cached
// read path and the ingest path.
func TestShardedCachedQueryConcurrentIngest(t *testing.T) {
	o := correlated.Options{
		Eps: 0.25, Delta: 0.1, YMax: 1<<16 - 1,
		MaxStreamLen: 1 << 20, MaxX: 1 << 12, Seed: 3,
	}
	eng, err := NewF2(o, 2, WithBatchSize(128))
	if err != nil {
		t.Fatal(err)
	}
	rng := hash.New(55)
	for i := 0; i < 5_000; i++ {
		if err := eng.Add(rng.Uint64n(1<<12), rng.Uint64n(1<<16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.RefreshCached(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		out := make([]float64, 1)
		for i := 0; i < 2_000; i++ {
			if err := eng.CachedQueryLEBatch([]uint64{uint64(i % (1 << 16))}, out); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 40_000; i++ {
		if err := eng.Add(rng.Uint64n(1<<12), rng.Uint64n(1<<16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedFkAndSum: the generic engine works across summary types.
func TestShardedFkAndSum(t *testing.T) {
	o := correlated.Options{
		Eps: 0.3, Delta: 0.1, YMax: 1<<12 - 1,
		MaxStreamLen: 1 << 16, MaxX: 1 << 10, Seed: 2,
	}
	fk, err := NewFk(3, o, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer fk.Close()
	sum, err := NewSum(o, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sum.Close()
	rng := hash.New(8)
	for i := 0; i < 5000; i++ {
		x, y := rng.Uint64n(1<<10), rng.Uint64n(1<<12)
		if err := fk.Add(x, y); err != nil {
			t.Fatal(err)
		}
		if err := sum.AddWeighted(x, y, 2); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := fk.QueryLE(1 << 11); err != nil || v <= 0 {
		t.Fatalf("fk query: %v %v", v, err)
	}
	if v, err := sum.QueryLE(1 << 11); err != nil || v <= 0 {
		t.Fatalf("sum query: %v %v", v, err)
	}
	if sp, err := sum.Space(); err != nil || sp <= 0 {
		t.Fatalf("space: %v %v", sp, err)
	}
}
