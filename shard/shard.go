// Package shard runs P independent correlated-aggregation summaries on P
// worker goroutines and answers queries by merging them — the
// single-process rendition of the paper's distributed model, where the
// "sites" are shards of one machine's ingest load and the "coordinator"
// is the query path.
//
// The engine is built directly on the mergeable-summary layer: every
// shard owns a summary created from the same Options (hence the same
// seeded hash functions), tuples are routed round-robin and handed over
// in recycled batches, each worker drains its channel through the
// summaries' amortized AddBatch path, and a query merges all shard
// summaries into a pooled scratch summary and queries that. Because the
// summaries merge linearly, the sharded engine inherits the structure's
// (Eps, Delta) guarantees with the k-site caveat documented on
// F2Summary.Merge (k = number of shards).
//
// # Concurrency contract
//
// The exported methods of Sharded are *not* safe for concurrent use: one
// goroutine drives Add/AddBatch/Flush/Query/Close, and the parallelism
// lives inside (P workers plus the driver pipeline). This keeps the
// per-tuple ingest path free of locks and atomics — it is an append to a
// preallocated buffer plus, every batch-size tuples, one channel
// handoff. Multiple producers should either partition the stream
// upstream into one engine each (merging at query time), or serialize on
// their side.
//
// # Error model
//
// Ingest is asynchronous: a tuple that fails inside a worker (only
// possible when it bypassed the engine's own validation) surfaces at the
// next synchronization point — Flush, a query, Count, Space, or Close —
// as the first error any worker encountered. Tuples the engine can
// validate synchronously (y > YMax, non-positive weight) are rejected
// immediately and never reach a worker.
package shard

import (
	"errors"
	"fmt"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/dyadic"
)

// ErrClosed is returned by every method of a Sharded engine after Close.
var ErrClosed = errors.New("shard: engine is closed")

// Summary is the contract a summary type must satisfy to be sharded: the
// amortized batch ingest path plus mergeability, pooling, and the binary
// wire form (used for engine snapshots and the site→coordinator push
// path). The root package's *F2Summary, *FkSummary, *CountSummary and
// *SumSummary all satisfy it.
type Summary[S any] interface {
	AddBatch(batch []correlated.Tuple) error
	Merge(other S) error
	MergeMarshaled(data []byte) error
	MarshalBinary() ([]byte, error)
	UnmarshalBinary(data []byte) error
	Reset()
	QueryLE(c uint64) (float64, error)
	QueryGE(c uint64) (float64, error)
	Count() uint64
	Space() int64
}

// DefaultBatchSize is the per-shard handoff granularity when WithBatchSize
// is not given: large enough to amortize the channel handoff and the
// per-group leaf routing inside AddBatch, small enough to keep per-shard
// buffering (4 in-flight batches) in the L2 cache.
const DefaultBatchSize = 2048

// spareBuffers is the number of extra batch buffers cycling per worker
// beyond the one the driver is filling; it bounds in-flight memory and
// lets the driver run ahead of a briefly busy worker.
const spareBuffers = 3

// Option configures a Sharded engine.
type Option func(*config)

type config struct {
	batchSize int
	ymax      uint64
}

// WithBatchSize sets the number of tuples buffered per shard before a
// handoff to the worker. Larger batches amortize better; smaller ones
// bound query-time staleness of unflushed tuples. n < 1 is ignored.
func WithBatchSize(n int) Option {
	return func(c *config) {
		if n >= 1 {
			c.batchSize = n
		}
	}
}

// WithMaxY lets the engine reject y > ymax synchronously in Add instead
// of asynchronously in the worker (ymax is rounded up to 2^b - 1 as the
// summaries do). The typed constructors (NewF2, ...) set this from
// Options.YMax automatically.
func WithMaxY(ymax uint64) Option {
	return func(c *config) {
		if ymax > 0 {
			c.ymax = dyadic.RoundYMax(ymax)
		}
	}
}

// Sharded fans ingest across P worker-owned summaries and answers queries
// by pooled merge-then-query. Create one with NewSharded or a typed
// constructor; always Close it to release the workers.
type Sharded[S Summary[S]] struct {
	workers []*worker[S]
	scratch S // pooled merge-then-query accumulator
	// cached is the reusable merged-summary for the epoch-cached read
	// path: RefreshCached rebuilds it (driver-only, it barriers the
	// workers), CachedQuery* answer from it without touching the workers
	// at all — so a serving layer can answer repeated queries while the
	// driver keeps ingesting. The field is deliberately disjoint from
	// every driver-side code path except RefreshCached: CachedQuery*
	// callers need only serialize against RefreshCached and each other,
	// never against Add/Flush/Query on the driver.
	cached S
	ack    chan struct{}
	next   int // round-robin routing cursor
	push   int // round-robin cursor for MergeMarshaled targets
	ymax   uint64
	err    error // sticky first worker error
	closed bool
}

// worker is one shard: a goroutine draining batches into its summary.
type worker[S Summary[S]] struct {
	sum     S
	in      chan job
	free    chan []correlated.Tuple
	pending []correlated.Tuple // filled by the driver goroutine
	done    chan struct{}
	err     error // first AddBatch error; read by the driver after an ack
}

// job is one channel handoff: a batch to ingest, an ack to signal that
// everything sent before it has been processed, or both.
type job struct {
	batch []correlated.Tuple
	ack   chan<- struct{}
}

// NewSharded builds an engine with `shards` workers, each owning a
// summary from newSummary. Every summary must be built from identical
// Options — same Seed included — or merges at query time will fail; the
// typed constructors guarantee this. newSummary is called shards+2 times
// (one extra for the query scratch summary, one for the cached merged
// summary behind RefreshCached/CachedQuery*).
func NewSharded[S Summary[S]](newSummary func() (S, error), shards int, opts ...Option) (*Sharded[S], error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shards must be >= 1, got %d", shards)
	}
	if newSummary == nil {
		return nil, errors.New("shard: newSummary must not be nil")
	}
	cfg := config{batchSize: DefaultBatchSize}
	for _, o := range opts {
		o(&cfg)
	}
	e := &Sharded[S]{
		ack:  make(chan struct{}, shards),
		ymax: cfg.ymax,
	}
	var err error
	if e.scratch, err = newSummary(); err != nil {
		return nil, err
	}
	if e.cached, err = newSummary(); err != nil {
		return nil, err
	}
	for i := 0; i < shards; i++ {
		w := &worker[S]{
			in:      make(chan job, spareBuffers+1),
			free:    make(chan []correlated.Tuple, spareBuffers+1),
			pending: make([]correlated.Tuple, 0, cfg.batchSize),
			done:    make(chan struct{}),
		}
		if w.sum, err = newSummary(); err != nil {
			e.stop()
			return nil, err
		}
		for j := 0; j < spareBuffers; j++ {
			w.free <- make([]correlated.Tuple, 0, cfg.batchSize)
		}
		e.workers = append(e.workers, w)
		go w.run()
	}
	return e, nil
}

// run is the worker loop: drain batches through the summary's amortized
// batch path, recycle buffers, honour ack requests in FIFO order.
func (w *worker[S]) run() {
	defer close(w.done)
	for jb := range w.in {
		if jb.batch != nil {
			if err := w.sum.AddBatch(jb.batch); err != nil && w.err == nil {
				w.err = err
			}
			w.free <- jb.batch[:0]
		}
		if jb.ack != nil {
			jb.ack <- struct{}{}
		}
	}
}

// Add inserts the tuple (x, y) with weight 1.
func (e *Sharded[S]) Add(x, y uint64) error { return e.AddWeighted(x, y, 1) }

// AddWeighted inserts w > 0 copies of (x, y). This is the per-tuple hot
// path: one bounds check, one append into a preallocated buffer, and —
// once per batch — a channel handoff to the shard's worker. It performs
// no allocation and takes no lock.
func (e *Sharded[S]) AddWeighted(x, y uint64, w int64) error {
	if e.closed {
		return ErrClosed
	}
	if e.ymax != 0 && y > e.ymax {
		return fmt.Errorf("shard: y = %d exceeds YMax = %d", y, e.ymax)
	}
	if w <= 0 {
		return fmt.Errorf("shard: weight must be positive, got %d", w)
	}
	e.addRouted(x, y, w)
	return nil
}

// addRouted appends an already-validated tuple to the next shard's
// pending buffer, handing the buffer off when full.
func (e *Sharded[S]) addRouted(x, y uint64, w int64) {
	wk := e.workers[e.next]
	if e.next++; e.next == len(e.workers) {
		e.next = 0
	}
	wk.pending = append(wk.pending, correlated.Tuple{X: x, Y: y, W: w})
	if len(wk.pending) == cap(wk.pending) {
		e.handoff(wk)
	}
}

// AddBatch inserts a batch of tuples (zero weights count as 1), routed
// round-robin like Add. The whole batch is validated before any tuple is
// routed, matching the unsharded AddBatch contract: a rejected batch has
// ingested nothing and may be corrected and retried. (With the generic
// constructor and no WithMaxY, y bounds are only checkable inside the
// workers; such failures surface at the next barrier instead.) The slice
// is not retained.
func (e *Sharded[S]) AddBatch(batch []correlated.Tuple) error {
	if e.closed {
		return ErrClosed
	}
	for i := range batch {
		if e.ymax != 0 && batch[i].Y > e.ymax {
			return fmt.Errorf("shard: y = %d exceeds YMax = %d", batch[i].Y, e.ymax)
		}
		if batch[i].W < 0 {
			return fmt.Errorf("shard: weight must be positive, got %d", batch[i].W)
		}
	}
	for _, t := range batch {
		w := t.W
		if w == 0 {
			w = 1
		}
		e.addRouted(t.X, t.Y, w)
	}
	return nil
}

// handoff ships wk's pending batch to its worker and takes a recycled
// buffer; it blocks only when all of the shard's buffers are in flight.
func (e *Sharded[S]) handoff(wk *worker[S]) {
	wk.in <- job{batch: wk.pending}
	wk.pending = <-wk.free
}

// Flush pushes every buffered tuple to the workers and blocks until all
// of them have been ingested, then reports the first error any worker
// has encountered since the engine was created. Queries flush
// implicitly; call Flush directly to create a durable cut (e.g. before
// checkpointing the shard summaries).
func (e *Sharded[S]) Flush() error { return e.barrier() }

// barrier drains all workers and collects their sticky errors.
func (e *Sharded[S]) barrier() error {
	if e.closed {
		return ErrClosed
	}
	for _, wk := range e.workers {
		if len(wk.pending) > 0 {
			e.handoff(wk)
		}
		wk.in <- job{ack: e.ack}
	}
	for range e.workers {
		<-e.ack
	}
	// The acks order the workers' error writes before these reads.
	for _, wk := range e.workers {
		if wk.err != nil && e.err == nil {
			e.err = wk.err
		}
	}
	return e.err
}

// Reset drains the workers and returns every shard summary (and the
// query scratch) to its freshly constructed state, keeping the sketch
// pools. It is the engine-level counterpart of the summaries' Reset:
// useful for epoch rotation and for a site that pushes its accumulated
// summary upstream and starts over (see MarshalMerged).
func (e *Sharded[S]) Reset() error {
	if err := e.barrier(); err != nil {
		return err
	}
	for _, wk := range e.workers {
		wk.sum.Reset()
	}
	e.scratch.Reset()
	return nil
}

// QueryLE estimates AGG{x : y <= c} over everything added so far, by
// flushing the shards and merging their summaries into the pooled
// scratch summary (merge-then-query, the coordinator side of the paper's
// distributed model).
func (e *Sharded[S]) QueryLE(c uint64) (float64, error) {
	if err := e.mergeAll(); err != nil {
		return 0, err
	}
	return e.scratch.QueryLE(c)
}

// QueryGE estimates AGG{x : y >= c}; the Options the summaries were
// built with must enable the GE predicate.
func (e *Sharded[S]) QueryGE(c uint64) (float64, error) {
	if err := e.mergeAll(); err != nil {
		return 0, err
	}
	return e.scratch.QueryGE(c)
}

// QueryLEBatch answers AGG{x : y <= c} for every cutoff over a single
// merge of the shard summaries, writing estimates into out (len(out)
// must equal len(cutoffs)). One mergeAll amortizes across the whole
// batch — the point of the service's multi-cutoff /v1/query.
func (e *Sharded[S]) QueryLEBatch(cutoffs []uint64, out []float64) error {
	if err := e.mergeAll(); err != nil {
		return err
	}
	for i, c := range cutoffs {
		v, err := e.scratch.QueryLE(c)
		if err != nil {
			return fmt.Errorf("c=%d: %w", c, err)
		}
		out[i] = v
	}
	return nil
}

// QueryGEBatch is QueryLEBatch for the GE direction.
func (e *Sharded[S]) QueryGEBatch(cutoffs []uint64, out []float64) error {
	if err := e.mergeAll(); err != nil {
		return err
	}
	for i, c := range cutoffs {
		v, err := e.scratch.QueryGE(c)
		if err != nil {
			return fmt.Errorf("c=%d: %w", c, err)
		}
		out[i] = v
	}
	return nil
}

// RefreshCached drains the workers and rebuilds the cached merged
// summary — the same merge QueryLE performs into scratch, but into a
// summary CachedQuery* can keep answering from after this call returns.
// RefreshCached is a driver-side call (it barriers the workers) and must
// additionally be serialized against CachedQuery*; the serving layer's
// epoch cache provides both.
func (e *Sharded[S]) RefreshCached() error {
	if err := e.barrier(); err != nil {
		return err
	}
	e.cached.Reset()
	for _, wk := range e.workers {
		if err := e.cached.Merge(wk.sum); err != nil {
			return err
		}
	}
	return nil
}

// CachedQueryLEBatch answers AGG{x : y <= c} for every cutoff from the
// summary the last RefreshCached built, writing estimates into out
// (len(out) must equal len(cutoffs)). Unlike QueryLEBatch it performs no
// barrier and no merge — it never touches the workers — so it is safe to
// run while the driver ingests, provided CachedQuery* calls and
// RefreshCached are serialized among themselves. Before the first
// RefreshCached it answers over the empty summary.
func (e *Sharded[S]) CachedQueryLEBatch(cutoffs []uint64, out []float64) error {
	for i, c := range cutoffs {
		v, err := e.cached.QueryLE(c)
		if err != nil {
			return fmt.Errorf("c=%d: %w", c, err)
		}
		out[i] = v
	}
	return nil
}

// CachedQueryGEBatch is CachedQueryLEBatch for the GE direction.
func (e *Sharded[S]) CachedQueryGEBatch(cutoffs []uint64, out []float64) error {
	for i, c := range cutoffs {
		v, err := e.cached.QueryGE(c)
		if err != nil {
			return fmt.Errorf("c=%d: %w", c, err)
		}
		out[i] = v
	}
	return nil
}

// mergeAll drains the workers and rebuilds the scratch summary as the
// merge of every shard. The scratch is reset, not reallocated, so
// steady-state queries reuse its sketch pools.
func (e *Sharded[S]) mergeAll() error {
	if err := e.barrier(); err != nil {
		return err
	}
	e.scratch.Reset()
	for _, wk := range e.workers {
		if err := e.scratch.Merge(wk.sum); err != nil {
			return err
		}
	}
	return nil
}

// Count reports the number of tuples ingested (flushing first, so the
// answer is exact at the moment of the call).
func (e *Sharded[S]) Count() (uint64, error) {
	if err := e.barrier(); err != nil {
		return 0, err
	}
	var n uint64
	for _, wk := range e.workers {
		n += wk.sum.Count()
	}
	return n, nil
}

// Space reports the summed stored counters/tuples across the shard
// summaries (the query scratch is excluded: it is a transient merge
// target, not stream state).
func (e *Sharded[S]) Space() (int64, error) {
	if err := e.barrier(); err != nil {
		return 0, err
	}
	var sp int64
	for _, wk := range e.workers {
		sp += wk.sum.Space()
	}
	return sp, nil
}

// Shards reports the number of workers.
func (e *Sharded[S]) Shards() int { return len(e.workers) }

// Close flushes, stops the workers, and returns the first ingest error.
// The engine is unusable afterwards; Close is not idempotent (a second
// call reports ErrClosed, like every other method).
func (e *Sharded[S]) Close() error {
	err := e.barrier()
	if errors.Is(err, ErrClosed) {
		return err
	}
	e.stop()
	return err
}

// stop shuts the worker goroutines down (idempotent, also used on
// constructor failure).
func (e *Sharded[S]) stop() {
	if e.closed {
		return
	}
	e.closed = true
	for _, wk := range e.workers {
		close(wk.in)
	}
	for _, wk := range e.workers {
		<-wk.done
	}
}

// NewF2 builds a sharded correlated-F2 engine: every shard and the query
// scratch share o (and therefore the seeded hash functions that make the
// shard summaries mergeable).
func NewF2(o correlated.Options, shards int, opts ...Option) (*Sharded[*correlated.F2Summary], error) {
	return NewSharded(func() (*correlated.F2Summary, error) {
		return correlated.NewF2Summary(o)
	}, shards, append([]Option{WithMaxY(o.YMax)}, opts...)...)
}

// NewFk builds a sharded correlated-Fk engine for moment order k >= 2.
func NewFk(k int, o correlated.Options, shards int, opts ...Option) (*Sharded[*correlated.FkSummary], error) {
	return NewSharded(func() (*correlated.FkSummary, error) {
		return correlated.NewFkSummary(k, o)
	}, shards, append([]Option{WithMaxY(o.YMax)}, opts...)...)
}

// NewCount builds a sharded correlated-COUNT engine.
func NewCount(o correlated.Options, shards int, opts ...Option) (*Sharded[*correlated.CountSummary], error) {
	return NewSharded(func() (*correlated.CountSummary, error) {
		return correlated.NewCountSummary(o)
	}, shards, append([]Option{WithMaxY(o.YMax)}, opts...)...)
}

// NewSum builds a sharded correlated-SUM engine.
func NewSum(o correlated.Options, shards int, opts ...Option) (*Sharded[*correlated.SumSummary], error) {
	return NewSharded(func() (*correlated.SumSummary, error) {
		return correlated.NewSumSummary(o)
	}, shards, append([]Option{WithMaxY(o.YMax)}, opts...)...)
}
