module github.com/streamagg/correlated

go 1.22
