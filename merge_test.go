package correlated

import (
	"errors"
	"math"
	"testing"

	"github.com/streamagg/correlated/internal/hash"
)

// mergeOpts keeps the distinct-y count below the singleton capacity so
// queries are answered exactly from the singleton level — the regime
// where merged queries are provably bit-identical to whole-stream
// ingestion.
func mergeOpts(seed uint64) Options {
	return Options{
		Eps: 0.2, Delta: 0.1, YMax: 1<<16 - 1,
		MaxStreamLen: 1 << 20, MaxX: 1 << 16,
		Alpha: 256, Seed: seed, Predicate: Both,
	}
}

// mergeable abstracts the four moment summaries for the shared property
// test.
type mergeable interface {
	AddWeighted(x, y uint64, w int64) error
	QueryLE(c uint64) (float64, error)
	QueryGE(c uint64) (float64, error)
	Count() uint64
}

// TestMergeEqualsWholeStream: for every aggregate, a random 2–8 way split
// of the stream, summarized per part and merged, answers LE and GE
// queries bit-identically to a single summary over the whole stream
// (while the singleton level serves; Fk allows last-bit float drift from
// map-order summation).
func TestMergeEqualsWholeStream(t *testing.T) {
	type fixture struct {
		whole mergeable
		parts []mergeable
		merge func() error // folds parts[1:] into parts[0]
		exact bool
	}
	build := map[string]func(o Options, n int) fixture{
		"F2": func(o Options, n int) fixture {
			w, _ := NewF2Summary(o)
			ps := make([]*F2Summary, n)
			for i := range ps {
				ps[i], _ = NewF2Summary(o)
			}
			fx := fixture{whole: w, exact: true}
			for _, p := range ps {
				fx.parts = append(fx.parts, p)
			}
			fx.merge = func() error {
				for _, p := range ps[1:] {
					if err := ps[0].Merge(p); err != nil {
						return err
					}
				}
				return nil
			}
			return fx
		},
		"F3": func(o Options, n int) fixture {
			w, _ := NewFkSummary(3, o)
			ps := make([]*FkSummary, n)
			for i := range ps {
				ps[i], _ = NewFkSummary(3, o)
			}
			fx := fixture{whole: w, exact: false}
			for _, p := range ps {
				fx.parts = append(fx.parts, p)
			}
			fx.merge = func() error {
				for _, p := range ps[1:] {
					if err := ps[0].Merge(p); err != nil {
						return err
					}
				}
				return nil
			}
			return fx
		},
		"COUNT": func(o Options, n int) fixture {
			w, _ := NewCountSummary(o)
			ps := make([]*CountSummary, n)
			for i := range ps {
				ps[i], _ = NewCountSummary(o)
			}
			fx := fixture{whole: w, exact: true}
			for _, p := range ps {
				fx.parts = append(fx.parts, p)
			}
			fx.merge = func() error {
				for _, p := range ps[1:] {
					if err := ps[0].Merge(p); err != nil {
						return err
					}
				}
				return nil
			}
			return fx
		},
		"SUM": func(o Options, n int) fixture {
			w, _ := NewSumSummary(o)
			ps := make([]*SumSummary, n)
			for i := range ps {
				ps[i], _ = NewSumSummary(o)
			}
			fx := fixture{whole: w, exact: true}
			for _, p := range ps {
				fx.parts = append(fx.parts, p)
			}
			fx.merge = func() error {
				for _, p := range ps[1:] {
					if err := ps[0].Merge(p); err != nil {
						return err
					}
				}
				return nil
			}
			return fx
		},
	}
	for name, mk := range build {
		mk := mk
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 2; seed++ {
				rng := hash.New(seed * 101)
				parts := 2 + int(rng.Uint64n(7)) // 2..8
				fx := mk(mergeOpts(seed), parts)
				const distinctY = 200
				for i := 0; i < 5000; i++ {
					x := rng.Uint64n(4000)
					y := rng.Uint64n(distinctY)
					w := int64(1 + rng.Uint64n(2))
					if err := fx.whole.AddWeighted(x, y, w); err != nil {
						t.Fatal(err)
					}
					if err := fx.parts[rng.Uint64n(uint64(parts))].AddWeighted(x, y, w); err != nil {
						t.Fatal(err)
					}
				}
				if err := fx.merge(); err != nil {
					t.Fatalf("merge: %v", err)
				}
				merged := fx.parts[0]
				if merged.Count() != fx.whole.Count() {
					t.Fatalf("count: %d vs %d", merged.Count(), fx.whole.Count())
				}
				for _, c := range []uint64{0, 40, 120, distinctY, 1 << 14} {
					for dir, q := range map[string]func(mergeable, uint64) (float64, error){
						"LE": func(m mergeable, c uint64) (float64, error) { return m.QueryLE(c) },
						"GE": func(m mergeable, c uint64) (float64, error) { return m.QueryGE(c) },
					} {
						want, err1 := q(fx.whole, c)
						got, err2 := q(merged, c)
						if err1 != nil || err2 != nil {
							t.Fatalf("%s c=%d: %v / %v", dir, c, err1, err2)
						}
						if fx.exact {
							if got != want {
								t.Fatalf("%s c=%d: merged %v whole %v (bit-identical expected)", dir, c, got, want)
							}
						} else if want != 0 && math.Abs(got-want)/math.Abs(want) > 1e-9 {
							t.Fatalf("%s c=%d: merged %v whole %v", dir, c, got, want)
						}
					}
				}
			}
		})
	}
}

// TestMergeMarshaledPublic: the wire-merge path on the public type agrees
// with the live-merge path, across both query directions.
func TestMergeMarshaledPublic(t *testing.T) {
	o := mergeOpts(7)
	o.Alpha = 0 // derived capacity; general regime with evictions
	a1, _ := NewF2Summary(o)
	a2, _ := NewF2Summary(o)
	b, _ := NewF2Summary(o)
	rng := hash.New(11)
	for i := 0; i < 30_000; i++ {
		x, y := rng.Uint64n(1<<13), rng.Uint64n(1<<16)
		if i%3 == 0 {
			if err := b.Add(x, y); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := a1.Add(x, y); err != nil {
			t.Fatal(err)
		}
		if err := a2.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	if err := a1.Merge(b); err != nil {
		t.Fatal(err)
	}
	wire, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := a2.MergeMarshaled(wire); err != nil {
		t.Fatal(err)
	}
	for c := uint64(0); c < 1<<16; c += 1 << 11 {
		le1, e1 := a1.QueryLE(c)
		le2, e2 := a2.QueryLE(c)
		if (e1 == nil) != (e2 == nil) || (e1 == nil && le1 != le2) {
			t.Fatalf("LE c=%d: %v/%v vs %v/%v", c, le1, e1, le2, e2)
		}
		ge1, e3 := a1.QueryGE(c)
		ge2, e4 := a2.QueryGE(c)
		if (e3 == nil) != (e4 == nil) || (e3 == nil && ge1 != ge2) {
			t.Fatalf("GE c=%d: %v/%v vs %v/%v", c, ge1, e3, ge2, e4)
		}
	}
	// Corrupt framing must be rejected without mutating the receiver.
	before, _ := a2.MarshalBinary()
	if err := a2.MergeMarshaled(wire[:len(wire)/2]); err == nil {
		t.Fatal("truncated wire image accepted")
	}
	after, _ := a2.MarshalBinary()
	if len(before) != len(after) {
		t.Fatal("failed merge mutated the receiver")
	}
}

// TestMergeTypedErrors: every public Merge path reports incompatibility
// as *IncompatibleError matching ErrIncompatible, naming the field.
func TestMergeTypedErrors(t *testing.T) {
	base := mergeOpts(1)
	t.Run("predicate", func(t *testing.T) {
		a, _ := NewF2Summary(base)
		leOnly := base
		leOnly.Predicate = LE
		b, _ := NewF2Summary(leOnly)
		assertIncompatible(t, a.Merge(b), "predicate")
	})
	t.Run("seed", func(t *testing.T) {
		a, _ := NewCountSummary(base)
		other := base
		other.Seed = 999
		b, _ := NewCountSummary(other)
		assertIncompatible(t, a.Merge(b), "seed")
	})
	t.Run("eps", func(t *testing.T) {
		a, _ := NewSumSummary(base)
		other := base
		other.Eps = 0.3
		b, _ := NewSumSummary(other)
		assertIncompatible(t, a.Merge(b), "eps")
	})
	t.Run("f0-seed", func(t *testing.T) {
		a, _ := NewF0Summary(base)
		other := base
		other.Seed = 999
		b, _ := NewF0Summary(other)
		assertIncompatible(t, a.Merge(b), "seed")
	})
	t.Run("f0-predicate", func(t *testing.T) {
		a, _ := NewF0Summary(base)
		leOnly := base
		leOnly.Predicate = LE
		b, _ := NewF0Summary(leOnly)
		assertIncompatible(t, a.Merge(b), "predicate")
	})
	t.Run("f0-ymax", func(t *testing.T) {
		a, _ := NewF0Summary(base)
		other := base
		other.YMax = 1<<18 - 1
		b, _ := NewF0Summary(other)
		assertIncompatible(t, a.Merge(b), "ymax")
	})
	// The wire path must catch the same mismatches: the image carries the
	// source configuration.
	t.Run("wire-seed", func(t *testing.T) {
		a, _ := NewF2Summary(base)
		other := base
		other.Seed = 999
		b, _ := NewF2Summary(other)
		wire, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		assertIncompatible(t, a.MergeMarshaled(wire), "seed")
	})
	t.Run("f0-wire-seed", func(t *testing.T) {
		a, _ := NewF0Summary(base)
		other := base
		other.Seed = 999
		b, _ := NewF0Summary(other)
		wire, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		assertIncompatible(t, a.MergeMarshaled(wire), "seed")
	})
}

func assertIncompatible(t *testing.T, err error, field string) {
	t.Helper()
	if err == nil {
		t.Fatal("incompatible merge succeeded")
	}
	if !errors.Is(err, ErrIncompatible) {
		t.Fatalf("error %v does not match ErrIncompatible", err)
	}
	var ie *IncompatibleError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v is not an *IncompatibleError", err)
	}
	if ie.Field != field {
		t.Fatalf("field = %q, want %q", ie.Field, field)
	}
}

// TestF0MergeMarshaled: the distinct-count summary's wire merge matches
// its live merge exactly (distinct sampling merges are
// partition-oblivious, so this holds in every regime).
func TestF0MergeMarshaled(t *testing.T) {
	o := Options{
		Eps: 0.2, Delta: 0.1, YMax: 1<<14 - 1,
		MaxX: 1 << 12, Seed: 4, Predicate: Both,
	}
	a1, _ := NewF0Summary(o)
	a2, _ := NewF0Summary(o)
	b, _ := NewF0Summary(o)
	rng := hash.New(21)
	for i := 0; i < 20_000; i++ {
		x, y := rng.Uint64n(1<<12), rng.Uint64n(1<<14)
		if i%2 == 0 {
			if err := b.Add(x, y); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := a1.Add(x, y); err != nil {
			t.Fatal(err)
		}
		if err := a2.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	if err := a1.Merge(b); err != nil {
		t.Fatal(err)
	}
	wire, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := a2.MergeMarshaled(wire); err != nil {
		t.Fatal(err)
	}
	if a1.Count() != a2.Count() {
		t.Fatalf("count: %d vs %d", a1.Count(), a2.Count())
	}
	for c := uint64(0); c < 1<<14; c += 1 << 10 {
		v1, e1 := a1.QueryLE(c)
		v2, e2 := a2.QueryLE(c)
		if (e1 == nil) != (e2 == nil) || (e1 == nil && v1 != v2) {
			t.Fatalf("c=%d: %v/%v vs %v/%v", c, v1, e1, v2, e2)
		}
	}
}

// TestPublicReset: Reset on a dual summary restores fresh-construction
// behaviour for both directions.
func TestPublicReset(t *testing.T) {
	o := mergeOpts(5)
	fresh, _ := NewF2Summary(o)
	reused, _ := NewF2Summary(o)
	rng := hash.New(31)
	for i := 0; i < 20_000; i++ {
		if err := reused.Add(rng.Uint64(), rng.Uint64n(1<<16)); err != nil {
			t.Fatal(err)
		}
	}
	reused.Reset()
	if reused.Count() != 0 {
		t.Fatalf("count after Reset: %d", reused.Count())
	}
	rng2 := hash.New(32)
	for i := 0; i < 20_000; i++ {
		x, y := rng2.Uint64n(1<<12), rng2.Uint64n(1<<16)
		if err := fresh.Add(x, y); err != nil {
			t.Fatal(err)
		}
		if err := reused.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	for c := uint64(0); c < 1<<16; c += 1 << 12 {
		for _, dir := range []string{"LE", "GE"} {
			var want, got float64
			var e1, e2 error
			if dir == "LE" {
				want, e1 = fresh.QueryLE(c)
				got, e2 = reused.QueryLE(c)
			} else {
				want, e1 = fresh.QueryGE(c)
				got, e2 = reused.QueryGE(c)
			}
			if (e1 == nil) != (e2 == nil) || (e1 == nil && got != want) {
				t.Fatalf("%s c=%d: fresh %v/%v reset %v/%v", dir, c, want, e1, got, e2)
			}
		}
	}
}
