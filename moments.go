package correlated

import "github.com/streamagg/correlated/internal/core"

// F2Summary estimates the correlated second frequency moment:
// F2{ x : y <= c } = Σ_x f_x², over the substream selected by the cutoff.
// It instantiates the paper's general reduction (Section 2) with the
// AMS/CountSketch whole-stream sketch (Section 3.1, Lemma 9).
type F2Summary struct {
	d *dual
}

// NewF2Summary builds an F2 summary.
func NewF2Summary(o Options) (*F2Summary, error) {
	d, err := newDual(core.F2Aggregate(), o)
	if err != nil {
		return nil, err
	}
	return &F2Summary{d: d}, nil
}

// Add inserts the tuple (x, y).
func (s *F2Summary) Add(x, y uint64) error { return s.d.add(x, y, 1) }

// AddWeighted inserts w > 0 copies of (x, y).
func (s *F2Summary) AddWeighted(x, y uint64, w int64) error { return s.d.add(x, y, w) }

// AddBatch inserts a batch of tuples through the amortized batched path
// (sorted by y in place, one hash per tuple, leaf routing per group).
func (s *F2Summary) AddBatch(batch []Tuple) error { return s.d.addBatch(batch) }

// QueryLE estimates F2 over tuples with y <= c.
func (s *F2Summary) QueryLE(c uint64) (float64, error) { return s.d.queryLE(c) }

// QueryGE estimates F2 over tuples with y >= c.
func (s *F2Summary) QueryGE(c uint64) (float64, error) { return s.d.queryGE(c) }

// Space reports stored counters/tuples (the paper's space metric).
func (s *F2Summary) Space() int64 { return s.d.space() }

// Count reports tuples inserted.
func (s *F2Summary) Count() uint64 { return s.d.count() }

// FkSummary estimates the correlated k-th frequency moment for k >= 2,
// via the general reduction over an Indyk–Woodruff-style sketch
// (Section 3.1, Theorem 3).
type FkSummary struct {
	d *dual
	k int
}

// NewFkSummary builds an Fk summary for moment order k >= 2.
func NewFkSummary(k int, o Options) (*FkSummary, error) {
	d, err := newDual(core.FkAggregate(k), o)
	if err != nil {
		return nil, err
	}
	return &FkSummary{d: d, k: k}, nil
}

// K returns the moment order.
func (s *FkSummary) K() int { return s.k }

// Add inserts the tuple (x, y).
func (s *FkSummary) Add(x, y uint64) error { return s.d.add(x, y, 1) }

// AddWeighted inserts w > 0 copies of (x, y).
func (s *FkSummary) AddWeighted(x, y uint64, w int64) error { return s.d.add(x, y, w) }

// AddBatch inserts a batch of tuples through the amortized batched path.
func (s *FkSummary) AddBatch(batch []Tuple) error { return s.d.addBatch(batch) }

// QueryLE estimates Fk over tuples with y <= c.
func (s *FkSummary) QueryLE(c uint64) (float64, error) { return s.d.queryLE(c) }

// QueryGE estimates Fk over tuples with y >= c.
func (s *FkSummary) QueryGE(c uint64) (float64, error) { return s.d.queryGE(c) }

// Space reports stored counters/tuples.
func (s *FkSummary) Space() int64 { return s.d.space() }

// Count reports tuples inserted.
func (s *FkSummary) Count() uint64 { return s.d.count() }

// CountSummary estimates the correlated COUNT (how many tuples satisfy the
// predicate). COUNT is additive, so the reduction runs with exact counter
// sketches: all error comes from the bucket structure and stays within ε.
type CountSummary struct {
	d *dual
}

// NewCountSummary builds a COUNT summary.
func NewCountSummary(o Options) (*CountSummary, error) {
	d, err := newDual(core.CountAggregate(), o)
	if err != nil {
		return nil, err
	}
	return &CountSummary{d: d}, nil
}

// Add inserts the tuple (x, y).
func (s *CountSummary) Add(x, y uint64) error { return s.d.add(x, y, 1) }

// AddWeighted inserts w > 0 copies of (x, y).
func (s *CountSummary) AddWeighted(x, y uint64, w int64) error { return s.d.add(x, y, w) }

// AddBatch inserts a batch of tuples through the amortized batched path.
func (s *CountSummary) AddBatch(batch []Tuple) error { return s.d.addBatch(batch) }

// QueryLE estimates the number of tuples with y <= c.
func (s *CountSummary) QueryLE(c uint64) (float64, error) { return s.d.queryLE(c) }

// QueryGE estimates the number of tuples with y >= c.
func (s *CountSummary) QueryGE(c uint64) (float64, error) { return s.d.queryGE(c) }

// Space reports stored counters/tuples.
func (s *CountSummary) Space() int64 { return s.d.space() }

// Count reports tuples inserted.
func (s *CountSummary) Count() uint64 { return s.d.count() }

// SumSummary estimates the correlated SUM of the x values of selected
// tuples — the aggregate of Gehrke et al. and Ananthakrishna et al., here
// with multiplicative error through the general reduction.
type SumSummary struct {
	d *dual
}

// NewSumSummary builds a SUM summary. Set Options.MaxX to the largest
// identifier value so the level count can be sized.
func NewSumSummary(o Options) (*SumSummary, error) {
	d, err := newDual(core.SumAggregate(), o)
	if err != nil {
		return nil, err
	}
	return &SumSummary{d: d}, nil
}

// Add inserts the tuple (x, y); x contributes its value to selected sums.
func (s *SumSummary) Add(x, y uint64) error { return s.d.add(x, y, 1) }

// AddWeighted inserts w > 0 copies of (x, y).
func (s *SumSummary) AddWeighted(x, y uint64, w int64) error { return s.d.add(x, y, w) }

// AddBatch inserts a batch of tuples through the amortized batched path.
func (s *SumSummary) AddBatch(batch []Tuple) error { return s.d.addBatch(batch) }

// QueryLE estimates Σ{x : y <= c}.
func (s *SumSummary) QueryLE(c uint64) (float64, error) { return s.d.queryLE(c) }

// QueryGE estimates Σ{x : y >= c}.
func (s *SumSummary) QueryGE(c uint64) (float64, error) { return s.d.queryGE(c) }

// Space reports stored counters/tuples.
func (s *SumSummary) Space() int64 { return s.d.space() }

// Count reports tuples inserted.
func (s *SumSummary) Count() uint64 { return s.d.count() }
