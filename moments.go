package correlated

import (
	"errors"

	"github.com/streamagg/correlated/internal/core"
)

// F2Summary estimates the correlated second frequency moment:
// F2{ x : y <= c } = Σ_x f_x², over the substream selected by the cutoff.
// It instantiates the paper's general reduction (Section 2) with the
// AMS/CountSketch whole-stream sketch (Section 3.1, Lemma 9).
type F2Summary struct {
	d *dual
}

// NewF2Summary builds an F2 summary for the given accuracy target: each
// query is within (1 ± Eps) of the true selected F2 with probability at
// least 1 − Delta, in space polylogarithmic in MaxStreamLen. It fails if
// Eps or Delta is outside (0, 1) or YMax is zero. The summary is not safe
// for concurrent use (see the package documentation).
func NewF2Summary(o Options) (*F2Summary, error) {
	d, err := newDual(core.F2Aggregate(), o)
	if err != nil {
		return nil, err
	}
	return &F2Summary{d: d}, nil
}

// Add inserts the tuple (x, y).
func (s *F2Summary) Add(x, y uint64) error { return s.d.add(x, y, 1) }

// AddWeighted inserts w > 0 copies of (x, y).
func (s *F2Summary) AddWeighted(x, y uint64, w int64) error { return s.d.add(x, y, w) }

// AddBatch inserts a batch of tuples through the amortized batched path
// (sorted by y in place, one hash per tuple, leaf routing per group).
func (s *F2Summary) AddBatch(batch []Tuple) error { return s.d.addBatch(batch) }

// QueryLE estimates F2 over tuples with y <= c. It returns ErrDirection
// when the LE predicate was not enabled at construction, and ErrNoLevel —
// with probability at most Delta — when no level of the structure can
// serve the cutoff (Algorithm 3's FAIL output).
func (s *F2Summary) QueryLE(c uint64) (float64, error) { return s.d.queryLE(c) }

// QueryGE estimates F2 over tuples with y >= c, with the same error
// conditions as QueryLE for the GE predicate.
func (s *F2Summary) QueryGE(c uint64) (float64, error) { return s.d.queryGE(c) }

// Merge folds other — an F2Summary built from identical Options over a
// different substream — into the receiver, producing the summary of the
// combined stream: this is the paper's distributed setting, where each
// site summarizes its local stream and a coordinator merges the site
// summaries. The receiver is modified; other is left usable. A summary
// built from different Options is rejected with an *IncompatibleError
// (matching ErrIncompatible) naming the differing field, before any state
// changes.
//
// Merged queries keep the structure's guarantees; mass a site absorbed
// into a coarse bucket stays coarse, so merging k sites scales the
// paper's Lemma 4 straddling-bucket error term by k — for a strict
// (Eps, Delta) guarantee at large k, build site summaries with Eps/k.
func (s *F2Summary) Merge(other *F2Summary) error {
	if other == nil {
		return errors.New("correlated: cannot merge a nil summary")
	}
	return s.d.merge(other.d)
}

// MergeMarshaled folds a summary serialized with MarshalBinary — the wire
// form a site ships to the coordinator — into the receiver, decoding
// buckets straight into the receiver's pooled sketches instead of
// materializing a second summary first. The bytes must come from an
// F2Summary built from identical Options. The receiver is untouched on
// error.
func (s *F2Summary) MergeMarshaled(data []byte) error { return s.d.mergeMarshaled(data) }

// Reset returns the summary to its freshly constructed state, keeping
// (and recycling into) its sketch pools. Useful for reusing a summary as
// a merge accumulator or across stream epochs.
func (s *F2Summary) Reset() { s.d.reset() }

// Space reports stored counters/tuples (the paper's space metric).
func (s *F2Summary) Space() int64 { return s.d.space() }

// Count reports tuples inserted.
func (s *F2Summary) Count() uint64 { return s.d.count() }

// FkSummary estimates the correlated k-th frequency moment for k >= 2,
// via the general reduction over an Indyk–Woodruff-style sketch
// (Section 3.1, Theorem 3).
type FkSummary struct {
	d *dual
	k int
}

// NewFkSummary builds an Fk summary for moment order k >= 2 (it panics
// for k < 2; use NewF2Summary's dedicated sketch for k = 2 in practice).
// Queries carry the (Eps, Delta) contract of NewF2Summary with the
// practical constants of Section 3.1. Not safe for concurrent use.
func NewFkSummary(k int, o Options) (*FkSummary, error) {
	d, err := newDual(core.FkAggregate(k), o)
	if err != nil {
		return nil, err
	}
	return &FkSummary{d: d, k: k}, nil
}

// K returns the moment order.
func (s *FkSummary) K() int { return s.k }

// Add inserts the tuple (x, y).
func (s *FkSummary) Add(x, y uint64) error { return s.d.add(x, y, 1) }

// AddWeighted inserts w > 0 copies of (x, y).
func (s *FkSummary) AddWeighted(x, y uint64, w int64) error { return s.d.add(x, y, w) }

// AddBatch inserts a batch of tuples through the amortized batched path.
func (s *FkSummary) AddBatch(batch []Tuple) error { return s.d.addBatch(batch) }

// QueryLE estimates Fk over tuples with y <= c.
func (s *FkSummary) QueryLE(c uint64) (float64, error) { return s.d.queryLE(c) }

// QueryGE estimates Fk over tuples with y >= c.
func (s *FkSummary) QueryGE(c uint64) (float64, error) { return s.d.queryGE(c) }

// Merge folds other — an FkSummary with the same k, built from identical
// Options over a different substream — into the receiver, producing the
// summary of the combined stream (see F2Summary.Merge for semantics and
// the k-site error caveat). Incompatible summaries are rejected with an
// *IncompatibleError before any state changes.
func (s *FkSummary) Merge(other *FkSummary) error {
	if other == nil {
		return errors.New("correlated: cannot merge a nil summary")
	}
	return s.d.merge(other.d)
}

// MergeMarshaled folds a summary serialized with MarshalBinary into the
// receiver without materializing a second summary. The bytes must come
// from an FkSummary with the same k and Options. The receiver is
// untouched on error.
func (s *FkSummary) MergeMarshaled(data []byte) error { return s.d.mergeMarshaled(data) }

// Reset returns the summary to its freshly constructed state, keeping
// its sketch pools.
func (s *FkSummary) Reset() { s.d.reset() }

// Space reports stored counters/tuples.
func (s *FkSummary) Space() int64 { return s.d.space() }

// Count reports tuples inserted.
func (s *FkSummary) Count() uint64 { return s.d.count() }

// CountSummary estimates the correlated COUNT (how many tuples satisfy the
// predicate). COUNT is additive, so the reduction runs with exact counter
// sketches: all error comes from the bucket structure and stays within ε.
type CountSummary struct {
	d *dual
}

// NewCountSummary builds a COUNT summary. COUNT's "sketches" are exact
// counters, so the whole (Eps, Delta) error budget goes to the bucket
// structure; with StrictTheory the proof constants are actually feasible
// here. Not safe for concurrent use.
func NewCountSummary(o Options) (*CountSummary, error) {
	d, err := newDual(core.CountAggregate(), o)
	if err != nil {
		return nil, err
	}
	return &CountSummary{d: d}, nil
}

// Add inserts the tuple (x, y).
func (s *CountSummary) Add(x, y uint64) error { return s.d.add(x, y, 1) }

// AddWeighted inserts w > 0 copies of (x, y).
func (s *CountSummary) AddWeighted(x, y uint64, w int64) error { return s.d.add(x, y, w) }

// AddBatch inserts a batch of tuples through the amortized batched path.
func (s *CountSummary) AddBatch(batch []Tuple) error { return s.d.addBatch(batch) }

// QueryLE estimates the number of tuples with y <= c.
func (s *CountSummary) QueryLE(c uint64) (float64, error) { return s.d.queryLE(c) }

// QueryGE estimates the number of tuples with y >= c.
func (s *CountSummary) QueryGE(c uint64) (float64, error) { return s.d.queryGE(c) }

// Merge folds other — a CountSummary built from identical Options over a
// different substream — into the receiver, producing the summary of the
// combined stream (see F2Summary.Merge for semantics and the k-site
// error caveat). Incompatible summaries are rejected with an
// *IncompatibleError before any state changes.
func (s *CountSummary) Merge(other *CountSummary) error {
	if other == nil {
		return errors.New("correlated: cannot merge a nil summary")
	}
	return s.d.merge(other.d)
}

// MergeMarshaled folds a summary serialized with MarshalBinary into the
// receiver without materializing a second summary. The bytes must come
// from a CountSummary built from identical Options. The receiver is
// untouched on error.
func (s *CountSummary) MergeMarshaled(data []byte) error { return s.d.mergeMarshaled(data) }

// Reset returns the summary to its freshly constructed state, keeping
// its sketch pools.
func (s *CountSummary) Reset() { s.d.reset() }

// Space reports stored counters/tuples.
func (s *CountSummary) Space() int64 { return s.d.space() }

// Count reports tuples inserted.
func (s *CountSummary) Count() uint64 { return s.d.count() }

// SumSummary estimates the correlated SUM of the x values of selected
// tuples — the aggregate of Gehrke et al. and Ananthakrishna et al., here
// with multiplicative error through the general reduction.
type SumSummary struct {
	d *dual
}

// NewSumSummary builds a SUM summary. Set Options.MaxX to the largest
// identifier value so the level count can be sized.
func NewSumSummary(o Options) (*SumSummary, error) {
	d, err := newDual(core.SumAggregate(), o)
	if err != nil {
		return nil, err
	}
	return &SumSummary{d: d}, nil
}

// Add inserts the tuple (x, y); x contributes its value to selected sums.
func (s *SumSummary) Add(x, y uint64) error { return s.d.add(x, y, 1) }

// AddWeighted inserts w > 0 copies of (x, y).
func (s *SumSummary) AddWeighted(x, y uint64, w int64) error { return s.d.add(x, y, w) }

// AddBatch inserts a batch of tuples through the amortized batched path.
func (s *SumSummary) AddBatch(batch []Tuple) error { return s.d.addBatch(batch) }

// QueryLE estimates Σ{x : y <= c}.
func (s *SumSummary) QueryLE(c uint64) (float64, error) { return s.d.queryLE(c) }

// QueryGE estimates Σ{x : y >= c}.
func (s *SumSummary) QueryGE(c uint64) (float64, error) { return s.d.queryGE(c) }

// Merge folds other — a SumSummary built from identical Options over a
// different substream — into the receiver, producing the summary of the
// combined stream (see F2Summary.Merge for semantics and the k-site
// error caveat). Incompatible summaries are rejected with an
// *IncompatibleError before any state changes.
func (s *SumSummary) Merge(other *SumSummary) error {
	if other == nil {
		return errors.New("correlated: cannot merge a nil summary")
	}
	return s.d.merge(other.d)
}

// MergeMarshaled folds a summary serialized with MarshalBinary into the
// receiver without materializing a second summary. The bytes must come
// from a SumSummary built from identical Options. The receiver is
// untouched on error.
func (s *SumSummary) MergeMarshaled(data []byte) error { return s.d.mergeMarshaled(data) }

// Reset returns the summary to its freshly constructed state, keeping
// its sketch pools.
func (s *SumSummary) Reset() { s.d.reset() }

// Space reports stored counters/tuples.
func (s *SumSummary) Space() int64 { return s.d.space() }

// Count reports tuples inserted.
func (s *SumSummary) Count() uint64 { return s.d.count() }
