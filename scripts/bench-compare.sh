#!/usr/bin/env bash
# Compare benchmarks/latest.txt against benchmarks/baseline.txt and fail
# when any benchmark's ns/op regressed by more than BENCH_MAX_REGRESSION_PCT
# (default 5). Benchmarks present on only one side are ignored.
set -euo pipefail
cd "$(dirname "$0")/.."

MAX_PCT="${BENCH_MAX_REGRESSION_PCT:-5}"

if [[ ! -f benchmarks/baseline.txt ]]; then
  echo "No benchmarks/baseline.txt — nothing to compare."
  exit 0
fi
if [[ ! -f benchmarks/latest.txt ]]; then
  echo "benchmarks/latest.txt not found — run scripts/bench.sh first" >&2
  exit 1
fi

awk -v max="$MAX_PCT" '
  /^Benchmark/ && NF >= 4 {
    # "BenchmarkName-8  N  123 ns/op ..." — keyed without the GOMAXPROCS suffix.
    name = $1; sub(/-[0-9]+$/, "", name)
    for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") { v = $i; break }
    if (FILENAME ~ /baseline/) base[name] = v; else latest[name] = v
  }
  END {
    bad = 0
    for (name in latest) {
      if (!(name in base) || base[name] + 0 == 0) continue
      pct = (latest[name] - base[name]) / base[name] * 100
      printf "%-60s %12.1f -> %12.1f ns/op  (%+.1f%%)\n", name, base[name], latest[name], pct
      if (pct > max) { bad = 1 }
    }
    if (bad) { printf "FAIL: regression above %s%%\n", max; exit 1 }
    print "OK: no regression above " max "%"
  }
' benchmarks/baseline.txt benchmarks/latest.txt
