#!/usr/bin/env bash
# End-to-end smoke test of the corrd service subsystem (run by CI):
#
#   1. start corrd with a snapshot path
#   2. drive it with corrgen -target (chunked HTTP ingest)
#   3. query, scrape /v1/stats and /metrics
#   4. SIGTERM (graceful shutdown writes a final snapshot)
#   5. restart from the snapshot and prove the answer is identical
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:17070"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
SNAP="$WORK/corrd.snapshot"
LOG="$WORK/corrd.log"
N=200000
CUTOFF=500000

cleanup() {
  [ -n "${CORRD_PID:-}" ] && kill "$CORRD_PID" 2>/dev/null || true
  [ -n "${SITE_PID:-}" ] && kill "$SITE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/corrd" ./cmd/corrd
go build -o "$WORK/corrgen" ./cmd/corrgen

start_corrd() {
  "$WORK/corrd" -addr "$ADDR" -agg f2 -eps 0.15 -delta 0.1 \
    -ymax 1000000 -maxn 1048576 -maxx 500001 -seed 42 -shards 2 \
    -snapshot "$SNAP" -snapshot-interval 5s >>"$LOG" 2>&1 &
  CORRD_PID=$!
  for _ in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "corrd did not become healthy; log:" >&2
  cat "$LOG" >&2
  exit 1
}

echo "== start corrd"
start_corrd

echo "== drive with corrgen -target"
"$WORK/corrgen" -dataset zipf1 -n "$N" -seed 7 -xdom 100001 -ydom 1000001 \
  -target "$BASE" -chunk 8192

echo "== text-format ingest (curl path)"
printf '1,2\n3,4,2\n' | curl -fsS -X POST -H 'Content-Type: text/csv' \
  --data-binary @- "$BASE/v1/ingest" >/dev/null

echo "== stats + query + metrics"
STATS=$(curl -fsS "$BASE/v1/stats")
echo "$STATS"
COUNT=$(echo "$STATS" | grep -o '"count":[0-9]*' | cut -d: -f2)
EXPECTED=$((N + 2))
if [ "$COUNT" != "$EXPECTED" ]; then
  echo "FAIL: count $COUNT != $EXPECTED" >&2; exit 1
fi
Q1=$(curl -fsS "$BASE/v1/query?op=le&c=$CUTOFF")
echo "query: $Q1"
curl -fsS "$BASE/metrics" | grep -E 'corrd_tuples_ingested_total|corrd_snapshot' | head -6
curl -fsS "$BASE/metrics" | grep -q "corrd_tuples_ingested_total $EXPECTED" \
  || { echo "FAIL: ingest metric missing" >&2; exit 1; }

echo "== SIGTERM (graceful: flush + final snapshot)"
kill -TERM "$CORRD_PID"
wait "$CORRD_PID" || { echo "FAIL: corrd exited non-zero; log:" >&2; cat "$LOG" >&2; exit 1; }
CORRD_PID=""
[ -s "$SNAP" ] || { echo "FAIL: no snapshot written" >&2; exit 1; }

echo "== restart from snapshot, re-query"
start_corrd
grep -q "restored state" "$LOG" || { echo "FAIL: restart did not restore" >&2; exit 1; }
Q2=$(curl -fsS "$BASE/v1/query?op=le&c=$CUTOFF")
echo "query after restart: $Q2"
if [ "$(echo "$Q1" | grep -o '"estimate":[^}]*')" != "$(echo "$Q2" | grep -o '"estimate":[^}]*')" ]; then
  echo "FAIL: answers differ across restart: $Q1 vs $Q2" >&2; exit 1
fi
COUNT2=$(curl -fsS "$BASE/v1/stats" | grep -o '"count":[0-9]*' | cut -d: -f2)
if [ "$COUNT2" != "$EXPECTED" ]; then
  echo "FAIL: restored count $COUNT2 != $EXPECTED" >&2; exit 1
fi

echo "== site -> coordinator push"
SITE_ADDR="127.0.0.1:17071"
"$WORK/corrd" -addr "$SITE_ADDR" -agg f2 -eps 0.15 -delta 0.1 \
  -ymax 1000000 -maxn 1048576 -maxx 500001 -seed 42 -shards 1 \
  -push-to "$BASE" -push-interval 1s >>"$LOG" 2>&1 &
SITE_PID=$!
for _ in $(seq 1 50); do
  curl -fsS "http://$SITE_ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
"$WORK/corrgen" -dataset uniform -n 50000 -seed 9 -xdom 100001 -ydom 1000001 \
  -target "http://$SITE_ADDR" -chunk 8192
kill -TERM "$SITE_PID"; wait "$SITE_PID" || { echo "FAIL: site exited non-zero" >&2; cat "$LOG" >&2; exit 1; }
SITE_PID=""
COUNT3=$(curl -fsS "$BASE/v1/stats" | grep -o '"count":[0-9]*' | cut -d: -f2)
EXPECTED3=$((EXPECTED + 50000))
if [ "$COUNT3" != "$EXPECTED3" ]; then
  echo "FAIL: coordinator count after site push $COUNT3 != $EXPECTED3" >&2; exit 1
fi
curl -fsS "$BASE/metrics" | grep -q 'corrd_pushes_merged_total [1-9]' \
  || { echo "FAIL: push metric missing" >&2; exit 1; }

kill -TERM "$CORRD_PID"; wait "$CORRD_PID" || true
CORRD_PID=""
echo "service smoke test PASSED"
