#!/usr/bin/env bash
# End-to-end smoke test of the corrd service subsystem (run by CI):
#
#   1. start corrd with a snapshot path
#   2. drive it with corrgen -target (chunked HTTP ingest)
#   3. query, scrape /v1/stats and /metrics
#   4. SIGTERM (graceful shutdown writes a final snapshot)
#   5. restart from the snapshot and prove the answer is identical
#   6. WAL crash-exactness: kill -9 a -wal-dir daemon mid-ingest and
#      prove the restarted /v1/summary is byte-identical to a
#      crash-free oracle run over the same acknowledged batches
#   7. streaming ingest: corrgen -stream clients and an HTTP generator
#      against one daemon, kill -9 mid-stream, prove whole-frame
#      recovery and byte-identical successive recoveries
#   8. multi-tenant crash-exactness: concurrent keyed namespaces over
#      one WAL, kill -9 mid-ingest, prove every tenant's recovered
#      summary is byte-identical to its own crash-free oracle, and
#      that the tenant-count governance cap refuses a new namespace
#   9. observability: stage tracing, access log, request IDs, pprof
#  10. replication failover: a replica tails the primary's WAL over
#      the stream listener, the primary is kill -9ed mid-ingest, the
#      replica is promoted via POST /v1/promote, and the promoted
#      summary is byte-identical to a crash-free oracle over the
#      replica's applied prefix
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:17070"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
SNAP="$WORK/corrd.snapshot"
LOG="$WORK/corrd.log"
N=200000
CUTOFF=500000

cleanup() {
  [ -n "${CORRD_PID:-}" ] && kill "$CORRD_PID" 2>/dev/null || true
  [ -n "${SITE_PID:-}" ] && kill "$SITE_PID" 2>/dev/null || true
  [ -n "${WAL_PID:-}" ] && kill -9 "$WAL_PID" 2>/dev/null || true
  [ -n "${REPL_PID:-}" ] && kill "$REPL_PID" 2>/dev/null || true
  [ -n "${ORACLE_PID:-}" ] && kill "$ORACLE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/corrd" ./cmd/corrd
go build -o "$WORK/corrgen" ./cmd/corrgen

start_corrd() {
  "$WORK/corrd" -addr "$ADDR" -agg f2 -eps 0.15 -delta 0.1 \
    -ymax 1000000 -maxn 1048576 -maxx 500001 -seed 42 -shards 2 \
    -snapshot "$SNAP" -snapshot-interval 5s >>"$LOG" 2>&1 &
  CORRD_PID=$!
  for _ in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "corrd did not become healthy; log:" >&2
  cat "$LOG" >&2
  exit 1
}

echo "== start corrd"
start_corrd

echo "== drive with corrgen -target"
"$WORK/corrgen" -dataset zipf1 -n "$N" -seed 7 -xdom 100001 -ydom 1000001 \
  -target "$BASE" -chunk 8192

echo "== text-format ingest (curl path)"
printf '1,2\n3,4,2\n' | curl -fsS -X POST -H 'Content-Type: text/csv' \
  --data-binary @- "$BASE/v1/ingest" >/dev/null

echo "== stats + query + metrics"
STATS=$(curl -fsS "$BASE/v1/stats")
echo "$STATS"
COUNT=$(echo "$STATS" | grep -o '"count":[0-9]*' | cut -d: -f2)
EXPECTED=$((N + 2))
if [ "$COUNT" != "$EXPECTED" ]; then
  echo "FAIL: count $COUNT != $EXPECTED" >&2; exit 1
fi
Q1=$(curl -fsS "$BASE/v1/query?op=le&c=$CUTOFF")
echo "query: $Q1"
# Fetch the exposition once, then grep the buffer: grep -q on a live
# curl pipe exits at first match and EPIPEs curl into a false failure.
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -E 'corrd_tuples_ingested_total|corrd_snapshot' | head -6
echo "$METRICS" | grep -q "corrd_tuples_ingested_total $EXPECTED" \
  || { echo "FAIL: ingest metric missing" >&2; exit 1; }

echo "== SIGTERM (graceful: flush + final snapshot)"
kill -TERM "$CORRD_PID"
wait "$CORRD_PID" || { echo "FAIL: corrd exited non-zero; log:" >&2; cat "$LOG" >&2; exit 1; }
CORRD_PID=""
[ -s "$SNAP" ] || { echo "FAIL: no snapshot written" >&2; exit 1; }

echo "== restart from snapshot, re-query"
start_corrd
grep -q "restored state" "$LOG" || { echo "FAIL: restart did not restore" >&2; exit 1; }
Q2=$(curl -fsS "$BASE/v1/query?op=le&c=$CUTOFF")
echo "query after restart: $Q2"
if [ "$(echo "$Q1" | grep -o '"estimate":[^}]*')" != "$(echo "$Q2" | grep -o '"estimate":[^}]*')" ]; then
  echo "FAIL: answers differ across restart: $Q1 vs $Q2" >&2; exit 1
fi
COUNT2=$(curl -fsS "$BASE/v1/stats" | grep -o '"count":[0-9]*' | cut -d: -f2)
if [ "$COUNT2" != "$EXPECTED" ]; then
  echo "FAIL: restored count $COUNT2 != $EXPECTED" >&2; exit 1
fi

echo "== site -> coordinator push"
SITE_ADDR="127.0.0.1:17071"
"$WORK/corrd" -addr "$SITE_ADDR" -agg f2 -eps 0.15 -delta 0.1 \
  -ymax 1000000 -maxn 1048576 -maxx 500001 -seed 42 -shards 1 \
  -push-to "$BASE" -push-interval 1s >>"$LOG" 2>&1 &
SITE_PID=$!
for _ in $(seq 1 50); do
  curl -fsS "http://$SITE_ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
"$WORK/corrgen" -dataset uniform -n 50000 -seed 9 -xdom 100001 -ydom 1000001 \
  -target "http://$SITE_ADDR" -chunk 8192
kill -TERM "$SITE_PID"; wait "$SITE_PID" || { echo "FAIL: site exited non-zero" >&2; cat "$LOG" >&2; exit 1; }
SITE_PID=""
COUNT3=$(curl -fsS "$BASE/v1/stats" | grep -o '"count":[0-9]*' | cut -d: -f2)
EXPECTED3=$((EXPECTED + 50000))
if [ "$COUNT3" != "$EXPECTED3" ]; then
  echo "FAIL: coordinator count after site push $COUNT3 != $EXPECTED3" >&2; exit 1
fi
curl -fsS "$BASE/metrics" -o "$WORK/metrics.txt"
grep -q 'corrd_pushes_merged_total [1-9]' "$WORK/metrics.txt" \
  || { echo "FAIL: push metric missing" >&2; exit 1; }

kill -TERM "$CORRD_PID"; wait "$CORRD_PID" || true
CORRD_PID=""

echo "== WAL crash-exact recovery (kill -9 mid-ingest, -wal-fsync=always)"
# A two-shard daemon with a WAL (snapshots serialize the routing
# cursors, so recovery is exact even across shards); the snapshot
# ticker runs so the restart exercises restore-snapshot-then-replay-
# suffix.
WAL_ADDR="127.0.0.1:17074"; WBASE="http://$WAL_ADDR"
ORACLE_ADDR="127.0.0.1:17075"; OBASE="http://$ORACLE_ADDR"
WAL_N=200000
SUMMARY_FLAGS=(-agg f2 -eps 0.15 -delta 0.1 -ymax 1000000 -maxn 1048576 \
  -maxx 500001 -seed 42 -shards 2)

start_wal_corrd() { # $1 addr, $2 name (state dirs keyed off it), extra flags in "${@:3}"
  "$WORK/corrd" -addr "$1" "${SUMMARY_FLAGS[@]}" \
    -snapshot "$WORK/$2.snapshot" -snapshot-interval 2s \
    -wal-dir "$WORK/$2-wal" -wal-fsync always "${@:3}" >>"$LOG" 2>&1 &
  for _ in $(seq 1 50); do
    if curl -fsS "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "corrd ($2) did not become healthy; log:" >&2; cat "$LOG" >&2; exit 1
}

start_wal_corrd "$WAL_ADDR" "walcrash"
WAL_PID=$!

# Drive ingest in the background and SIGKILL the daemon mid-stream: no
# graceful shutdown, no final snapshot — durability rides on the WAL.
"$WORK/corrgen" -dataset uniform -n "$WAL_N" -seed 11 -xdom 100001 -ydom 1000001 \
  -target "$WBASE" -chunk 2048 >/dev/null 2>&1 &
GEN_PID=$!
for _ in $(seq 1 100); do
  INGESTED=$(curl -fsS "$WBASE/v1/stats" 2>/dev/null | grep -o '"count":[0-9]*' | cut -d: -f2 || echo 0)
  [ "${INGESTED:-0}" -ge 20000 ] && break
  sleep 0.1
done
kill -9 "$WAL_PID"
wait "$WAL_PID" 2>/dev/null || true
WAL_PID=""
wait "$GEN_PID" 2>/dev/null || true  # the generator dies with the connection

start_wal_corrd "$WAL_ADDR" "walcrash"
WAL_PID=$!
grep -q "wal: replayed" "$LOG" || { echo "FAIL: restart did not replay the WAL" >&2; cat "$LOG" >&2; exit 1; }
M=$(curl -fsS "$WBASE/v1/stats" | grep -o '"count":[0-9]*' | cut -d: -f2)
if [ "$M" -lt 20000 ]; then
  echo "FAIL: recovered count $M lost acknowledged ingest" >&2; exit 1
fi
if [ $((M % 2048)) -ne 0 ] && [ "$M" -ne "$WAL_N" ]; then
  echo "FAIL: recovered count $M is not a whole number of acknowledged chunks" >&2; exit 1
fi
echo "recovered $M acknowledged tuples after kill -9"

# Crash-free oracle: same configuration, the same acknowledged prefix of
# the same deterministic stream (corrgen is sequential, so -n M is the
# prefix), the same chunking — its summary must match byte for byte.
start_wal_corrd "$ORACLE_ADDR" "oracle"
ORACLE_PID=$!
"$WORK/corrgen" -dataset uniform -n "$M" -seed 11 -xdom 100001 -ydom 1000001 \
  -target "$OBASE" -chunk 2048
curl -fsS -o "$WORK/recovered.summary" "$WBASE/v1/summary"
curl -fsS -o "$WORK/oracle.summary" "$OBASE/v1/summary"
if ! cmp -s "$WORK/recovered.summary" "$WORK/oracle.summary"; then
  echo "FAIL: recovered /v1/summary differs from crash-free oracle" >&2
  ls -l "$WORK/recovered.summary" "$WORK/oracle.summary" >&2
  exit 1
fi
echo "recovered summary is byte-identical to the crash-free oracle ($(wc -c <"$WORK/recovered.summary") bytes)"

# The recovered daemon keeps serving durable ingest, and the WAL shows
# up in the exposition.
printf '5,7\n' | curl -fsS -X POST -H 'Content-Type: text/csv' \
  --data-binary @- "$WBASE/v1/ingest" >/dev/null
curl -fsS "$WBASE/metrics" -o "$WORK/wal-metrics.txt"
grep -q 'corrd_wal_segments' "$WORK/wal-metrics.txt" \
  || { echo "FAIL: WAL metrics missing" >&2; exit 1; }
curl -fsS "$WBASE/v1/stats" -o "$WORK/wal-stats.json"
grep -q '"wal_enabled":true' "$WORK/wal-stats.json" \
  || { echo "FAIL: stats missing WAL fields" >&2; exit 1; }

kill -TERM "$ORACLE_PID"; wait "$ORACLE_PID" || true
ORACLE_PID=""
kill -TERM "$WAL_PID"; wait "$WAL_PID" || true
WAL_PID=""

echo "== WAL crash-exact recovery under concurrency (8 ingesters, kill -9, group commit)"
# Eight concurrent generators drive the commit pipeline into real groups
# (one fsync per group, not per request), then the daemon dies mid-load.
# With concurrent clients no external oracle can know which requests
# landed in which group, so exactness is checked structurally: every
# acknowledged request is a whole 2048-tuple chunk (count divides), and
# two successive recoveries of the same log must produce byte-identical
# /v1/summary images — replay of the group records is deterministic.
CONC_ADDR="127.0.0.1:17076"; CBASE="http://$CONC_ADDR"
start_wal_corrd "$CONC_ADDR" "walconc"
WAL_PID=$!
GEN_PIDS=()
for i in $(seq 1 8); do
  "$WORK/corrgen" -dataset uniform -n 200000 -seed $((20 + i)) -xdom 100001 \
    -ydom 1000001 -target "$CBASE" -chunk 2048 >/dev/null 2>&1 &
  GEN_PIDS+=($!)
done
for _ in $(seq 1 100); do
  CINGESTED=$(curl -fsS "$CBASE/v1/stats" 2>/dev/null | grep -o '"count":[0-9]*' | cut -d: -f2 || echo 0)
  [ "${CINGESTED:-0}" -ge 30000 ] && break
  sleep 0.1
done
kill -9 "$WAL_PID"; wait "$WAL_PID" 2>/dev/null || true
WAL_PID=""
for pid in "${GEN_PIDS[@]}"; do kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; done

start_wal_corrd "$CONC_ADDR" "walconc"
WAL_PID=$!
CM=$(curl -fsS "$CBASE/v1/stats" | grep -o '"count":[0-9]*' | cut -d: -f2)
if [ "$CM" -lt 30000 ]; then
  echo "FAIL: concurrent recovery count $CM lost acknowledged ingest" >&2; exit 1
fi
if [ $((CM % 2048)) -ne 0 ]; then
  echo "FAIL: concurrent recovery count $CM is not a whole number of acknowledged chunks" >&2; exit 1
fi
# Buffer the exposition before grepping (same EPIPE-under-pipefail
# avoidance as the metrics checks above).
curl -fsS "$CBASE/metrics" -o "$WORK/conc-metrics.txt"
REPLAYED=$(awk '/^corrd_wal_replay_records /{print $2}' "$WORK/conc-metrics.txt")
echo "recovered $CM acknowledged tuples from $REPLAYED replayed records after concurrent kill -9"
curl -fsS -o "$WORK/conc1.summary" "$CBASE/v1/summary"
kill -9 "$WAL_PID"; wait "$WAL_PID" 2>/dev/null || true
WAL_PID=""

start_wal_corrd "$CONC_ADDR" "walconc"
WAL_PID=$!
curl -fsS -o "$WORK/conc2.summary" "$CBASE/v1/summary"
if ! cmp -s "$WORK/conc1.summary" "$WORK/conc2.summary"; then
  echo "FAIL: two recoveries of the same concurrent-ingest log diverged" >&2
  ls -l "$WORK/conc1.summary" "$WORK/conc2.summary" >&2
  exit 1
fi
echo "two successive recoveries are byte-identical ($(wc -c <"$WORK/conc1.summary") bytes)"
kill -TERM "$WAL_PID"; wait "$WAL_PID" || true
WAL_PID=""

echo "== streaming ingest crash-exactness (corrgen -stream + HTTP, kill -9 mid-stream)"
# Mixed transports against one durable daemon: four corrgen clients pump
# the persistent length-framed transport while an HTTP generator runs
# alongside, then the daemon dies mid-stream. Every acknowledged unit —
# HTTP chunk or stream frame — is exactly 2048 tuples, so the recovered
# count must divide by 2048, and two successive recoveries of the same
# log must produce byte-identical summaries (streamed frames ride the
# same group-commit WAL records as HTTP batches).
STRM_ADDR="127.0.0.1:17077"; SBASE="http://$STRM_ADDR"
STRM_INGEST="127.0.0.1:17078"
STRM_N=204800   # 4 clients x 25 frames x 2048 tuples
start_wal_corrd "$STRM_ADDR" "walstream" -stream-addr "$STRM_INGEST"
WAL_PID=$!
"$WORK/corrgen" -dataset uniform -n "$STRM_N" -seed 31 -xdom 100001 -ydom 1000001 \
  -target "$SBASE" -stream "$STRM_INGEST" -chunk 2048 -clients 4 >/dev/null 2>&1 &
STRM_GEN=$!
"$WORK/corrgen" -dataset uniform -n 65536 -seed 32 -xdom 100001 -ydom 1000001 \
  -target "$SBASE" -chunk 2048 >/dev/null 2>&1 &
HTTP_GEN=$!
for _ in $(seq 1 100); do
  SINGESTED=$(curl -fsS "$SBASE/v1/stats" 2>/dev/null | grep -o '"count":[0-9]*' | cut -d: -f2 || echo 0)
  [ "${SINGESTED:-0}" -ge 30000 ] && break
  sleep 0.1
done
kill -9 "$WAL_PID"; wait "$WAL_PID" 2>/dev/null || true
WAL_PID=""
for pid in "$STRM_GEN" "$HTTP_GEN"; do kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; done

start_wal_corrd "$STRM_ADDR" "walstream" -stream-addr "$STRM_INGEST"
WAL_PID=$!
SM=$(curl -fsS "$SBASE/v1/stats" | grep -o '"count":[0-9]*' | cut -d: -f2)
if [ "$SM" -lt 30000 ]; then
  echo "FAIL: stream recovery count $SM lost acknowledged ingest" >&2; exit 1
fi
if [ $((SM % 2048)) -ne 0 ]; then
  echo "FAIL: stream recovery count $SM is not a whole number of acknowledged frames/chunks" >&2; exit 1
fi
echo "recovered $SM acknowledged tuples after kill -9 mid-stream"
# The recovered daemon still serves the streaming transport.
"$WORK/corrgen" -dataset uniform -n 2048 -seed 33 -xdom 100001 -ydom 1000001 \
  -target "$SBASE" -stream "$STRM_INGEST" -chunk 2048 -clients 1 >/dev/null
curl -fsS "$SBASE/metrics" -o "$WORK/stream-metrics.txt"
grep -q 'corrd_stream_tuples_total 2048' "$WORK/stream-metrics.txt" \
  || { echo "FAIL: stream metrics missing after recovery" >&2; exit 1; }
curl -fsS -o "$WORK/stream1.summary" "$SBASE/v1/summary"
kill -9 "$WAL_PID"; wait "$WAL_PID" 2>/dev/null || true
WAL_PID=""

start_wal_corrd "$STRM_ADDR" "walstream"
WAL_PID=$!
curl -fsS -o "$WORK/stream2.summary" "$SBASE/v1/summary"
if ! cmp -s "$WORK/stream1.summary" "$WORK/stream2.summary"; then
  echo "FAIL: two recoveries of the mixed HTTP+stream log diverged" >&2
  ls -l "$WORK/stream1.summary" "$WORK/stream2.summary" >&2
  exit 1
fi
echo "two successive recoveries of the mixed-transport log are byte-identical ($(wc -c <"$WORK/stream1.summary") bytes)"
kill -TERM "$WAL_PID"; wait "$WAL_PID" || true
WAL_PID=""

echo "== multi-tenant crash-exact recovery (4 keyed namespaces, kill -9)"
# Four concurrent generators, one per keyed namespace (?tenant=tNNN),
# all sharing one WAL. Within a tenant ingest is sequential (one awaited
# request at a time), so each tenant's acknowledged prefix is a
# deterministic chunk sequence: a crash-free oracle daemon driven with
# the same per-tenant prefix must match byte for byte — per tenant.
MT_ADDR="127.0.0.1:17079"; MBASE="http://$MT_ADDR"
MTO_ADDR="127.0.0.1:17080"; MOBASE="http://$MTO_ADDR"
MT_TENANTS=4
start_wal_corrd "$MT_ADDR" "walmt" -max-tenants $((MT_TENANTS + 1))
WAL_PID=$!
GEN_PIDS=()
for t in $(seq 0 $((MT_TENANTS - 1))); do
  "$WORK/corrgen" -dataset uniform -n 200000 -seed $((41 + t)) -xdom 100001 \
    -ydom 1000001 -target "$MBASE" -tenant "$(printf 't%03d' "$t")" \
    -chunk 2048 >/dev/null 2>&1 &
  GEN_PIDS+=($!)
done
# Wait until the slowest tenant has several acknowledged chunks, so the
# kill lands mid-ingest for every namespace.
for _ in $(seq 1 200); do
  MT_MIN=999999999
  for t in $(seq 0 $((MT_TENANTS - 1))); do
    TC=$(curl -fsS "$MBASE/v1/stats?tenant=$(printf 't%03d' "$t")" 2>/dev/null \
      | grep -o '"count":[0-9]*' | cut -d: -f2 || echo 0)
    [ "${TC:-0}" -lt "$MT_MIN" ] && MT_MIN=${TC:-0}
  done
  [ "$MT_MIN" -ge 8192 ] && break
  sleep 0.1
done
kill -9 "$WAL_PID"; wait "$WAL_PID" 2>/dev/null || true
WAL_PID=""
for pid in "${GEN_PIDS[@]}"; do kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; done

start_wal_corrd "$MT_ADDR" "walmt" -max-tenants $((MT_TENANTS + 1))
WAL_PID=$!
MT_SEEN=$(curl -fsS "$MBASE/v1/stats" | grep -o '"tenants":[0-9]*' | cut -d: -f2)
if [ "$MT_SEEN" != "$((MT_TENANTS + 1))" ]; then
  echo "FAIL: recovery registered $MT_SEEN tenants, want $((MT_TENANTS + 1)) (default included)" >&2; exit 1
fi
start_wal_corrd "$MTO_ADDR" "mtoracle"
ORACLE_PID=$!
for t in $(seq 0 $((MT_TENANTS - 1))); do
  NAME=$(printf 't%03d' "$t")
  TM=$(curl -fsS "$MBASE/v1/stats?tenant=$NAME" | grep -o '"count":[0-9]*' | cut -d: -f2)
  if [ "${TM:-0}" -lt 8192 ] || [ $((TM % 2048)) -ne 0 ]; then
    echo "FAIL: tenant $NAME recovered count ${TM:-0} is not a whole chunk sequence" >&2; exit 1
  fi
  "$WORK/corrgen" -dataset uniform -n "$TM" -seed $((41 + t)) -xdom 100001 \
    -ydom 1000001 -target "$MOBASE" -tenant "$NAME" -chunk 2048
  curl -fsS -o "$WORK/mt-$NAME.rec" "$MBASE/v1/summary?tenant=$NAME"
  curl -fsS -o "$WORK/mt-$NAME.ora" "$MOBASE/v1/summary?tenant=$NAME"
  if ! cmp -s "$WORK/mt-$NAME.rec" "$WORK/mt-$NAME.ora"; then
    echo "FAIL: tenant $NAME recovered summary differs from its crash-free oracle" >&2
    ls -l "$WORK/mt-$NAME.rec" "$WORK/mt-$NAME.ora" >&2; exit 1
  fi
  echo "tenant $NAME: $TM tuples recovered, summary byte-identical to its oracle"
done
# The recovered registry sits exactly at the -max-tenants cap, so a new
# namespace must be refused with 429 (and counted) while existing
# tenants keep serving.
MT_CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: text/csv' \
  --data-binary '1,2' "$MBASE/v1/ingest?tenant=overcap")
[ "$MT_CODE" = "429" ] || { echo "FAIL: over-cap tenant got $MT_CODE, want 429" >&2; exit 1; }
curl -fsS "$MBASE/metrics" -o "$WORK/mt-metrics.txt"
grep -q "corrd_tenants $((MT_TENANTS + 1))" "$WORK/mt-metrics.txt" \
  || { echo "FAIL: corrd_tenants gauge missing/wrong" >&2; exit 1; }
grep -q 'corrd_tenant_rejected_total{reason="limit"} 1' "$WORK/mt-metrics.txt" \
  || { echo "FAIL: tenant rejection not counted" >&2; exit 1; }
echo "over-cap namespace refused with 429; all $MT_TENANTS tenants crash-exact"
kill -TERM "$ORACLE_PID"; wait "$ORACLE_PID" || true
ORACLE_PID=""
kill -TERM "$WAL_PID"; wait "$WAL_PID" || true
WAL_PID=""

echo "== observability: stage tracing, access log, request IDs, debug surface"
# A WAL daemon with the access log, a 1ns slow-request threshold (so
# every request promotes), and the pprof listener; ingest through it and
# assert the whole observability surface end to end.
OBS_ADDR="127.0.0.1:17081"; OBSBASE="http://$OBS_ADDR"
OBS_DEBUG="127.0.0.1:17082"
ACCESS_LOG="$WORK/access.log"
start_wal_corrd "$OBS_ADDR" "walobs" \
  -access-log "$ACCESS_LOG" -slow-request 1ns -debug-addr "$OBS_DEBUG"
WAL_PID=$!
"$WORK/corrgen" -dataset uniform -n 20000 -seed 51 -xdom 100001 -ydom 1000001 \
  -target "$OBSBASE" -chunk 2048 -clients 4 >/dev/null 2>&1

# X-Request-ID round trip: supplied IDs are echoed on the response and
# land in the access log; requests without one get a minted ID.
RID="smoke-rid-$$"
ECHOED=$(printf '1,2\n' | curl -fsS -X POST -H 'Content-Type: text/csv' \
  -H "X-Request-ID: $RID" --data-binary @- -o /dev/null \
  -D - "$OBSBASE/v1/ingest" | tr -d '\r' | awk -F': ' 'tolower($1)=="x-request-id"{print $2}')
[ "$ECHOED" = "$RID" ] || { echo "FAIL: X-Request-ID echo: got '$ECHOED', want '$RID'" >&2; exit 1; }
MINTED=$(curl -fsS -o /dev/null -D - "$OBSBASE/v1/stats" | tr -d '\r' \
  | awk -F': ' 'tolower($1)=="x-request-id"{print $2}')
[ -n "$MINTED" ] || { echo "FAIL: no minted X-Request-ID on a bare request" >&2; exit 1; }
# The access-log writer drains asynchronously; poll for the ID.
for _ in $(seq 1 50); do
  grep -q "$RID" "$ACCESS_LOG" 2>/dev/null && break
  sleep 0.1
done
grep -q "\"request_id\":\"$RID\"" "$ACCESS_LOG" \
  || { echo "FAIL: supplied request ID never reached the access log" >&2; cat "$ACCESS_LOG" >&2; exit 1; }
grep -q '"transport":"http"' "$ACCESS_LOG" \
  || { echo "FAIL: access log has no HTTP records" >&2; exit 1; }
grep -q "slow request:" "$LOG" \
  || { echo "FAIL: -slow-request 1ns promoted nothing to the main log" >&2; exit 1; }

# Pipeline-stage histograms: all five stages fired under concurrent
# ingest with -wal-fsync=always, and the group-shape histograms exist.
curl -fsS "$OBSBASE/metrics" -o "$WORK/obs-metrics.txt"
for stage in enqueue apply append fsync ack; do
  SC=$(grep -F "corrd_pipeline_stage_seconds_count{stage=\"$stage\"}" "$WORK/obs-metrics.txt" | awk '{print $2}')
  if [ -z "$SC" ] || [ "$SC" -eq 0 ]; then
    echo "FAIL: pipeline stage '$stage' has no observations (got '$SC')" >&2; exit 1
  fi
done
grep -q 'corrd_ingest_group_size_bucket' "$WORK/obs-metrics.txt" \
  || { echo "FAIL: group-size histogram missing" >&2; exit 1; }
grep -q 'corrd_build_info{' "$WORK/obs-metrics.txt" \
  || { echo "FAIL: corrd_build_info missing" >&2; exit 1; }
grep -q 'corrd_go_goroutines' "$WORK/obs-metrics.txt" \
  || { echo "FAIL: runtime metrics missing" >&2; exit 1; }

# The load-report JSON carries the same stage breakdown.
"$WORK/corrgen" -dataset uniform -n 20000 -seed 52 -xdom 100001 -ydom 1000001 \
  -target "$OBSBASE" -chunk 2048 -clients 4 -load-json "$WORK/obs-load.json" >/dev/null 2>&1
grep -q '"pipeline_stages"' "$WORK/obs-load.json" \
  || { echo "FAIL: load report has no pipeline_stages" >&2; cat "$WORK/obs-load.json" >&2; exit 1; }
grep -q '"fsync"' "$WORK/obs-load.json" \
  || { echo "FAIL: load report stages missing fsync" >&2; exit 1; }

# The debug listener serves pprof; the serving address does not.
curl -fsS "http://$OBS_DEBUG/debug/pprof/cmdline" -o /dev/null \
  || { echo "FAIL: pprof not served on -debug-addr" >&2; exit 1; }
MAIN_PPROF=$(curl -s -o /dev/null -w '%{http_code}' "$OBSBASE/debug/pprof/cmdline")
[ "$MAIN_PPROF" = "404" ] || { echo "FAIL: serving address exposes pprof (HTTP $MAIN_PPROF)" >&2; exit 1; }

kill -TERM "$WAL_PID"; wait "$WAL_PID" || true
WAL_PID=""

echo "== replication failover (replica tails primary, kill -9, promote, byte-identity)"
# A durable primary with a streaming listener and a replica following
# it. A single sequential generator means the acknowledged prefix is
# deterministic, so the promoted replica's state must match a
# crash-free oracle driven with the same prefix — byte for byte.
PRI_ADDR="127.0.0.1:17083"; PBASE="http://$PRI_ADDR"
PRI_STRM="127.0.0.1:17084"
REPL_ADDR="127.0.0.1:17085"; RBASE="http://$REPL_ADDR"
FO_ADDR="127.0.0.1:17086"; FOBASE="http://$FO_ADDR"
ADMIN_TOKEN="smoke-admin-$$"
start_wal_corrd "$PRI_ADDR" "replpri" -stream-addr "$PRI_STRM" \
  -heartbeat-interval 200ms
WAL_PID=$!
start_wal_corrd "$REPL_ADDR" "replstandby" -role=replica -primary "$PRI_STRM" \
  -admin-token "$ADMIN_TOKEN"
REPL_PID=$!

"$WORK/corrgen" -dataset uniform -n 200000 -seed 61 -xdom 100001 -ydom 1000001 \
  -target "$PBASE" -chunk 2048 >/dev/null 2>&1 &
GEN_PID=$!
# Wait until the replica has applied a healthy prefix, so the kill
# lands mid-replication.
for _ in $(seq 1 200); do
  RAPPLIED=$(curl -fsS "$RBASE/v1/stats" 2>/dev/null | grep -o '"count":[0-9]*' | cut -d: -f2 || echo 0)
  [ "${RAPPLIED:-0}" -ge 20000 ] && break
  sleep 0.1
done
# While both are live: the replica declares its role, rejects writes
# with 503, and the primary's exposition shows the follower connection.
curl -fsS "$RBASE/v1/stats" -o "$WORK/repl-stats.json"
grep -q '"role":"replica"' "$WORK/repl-stats.json" \
  || { echo "FAIL: replica stats missing role" >&2; exit 1; }
RW_CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: text/csv' \
  --data-binary '1,2' "$RBASE/v1/ingest")
[ "$RW_CODE" = "503" ] || { echo "FAIL: replica accepted a write (HTTP $RW_CODE)" >&2; exit 1; }
curl -fsS "$PBASE/metrics" -o "$WORK/repl-pri-metrics.txt"
grep -q 'corrd_replica_conns 1' "$WORK/repl-pri-metrics.txt" \
  || { echo "FAIL: primary exposition shows no follower" >&2; exit 1; }

kill -9 "$WAL_PID"; wait "$WAL_PID" 2>/dev/null || true
WAL_PID=""
kill "$GEN_PID" 2>/dev/null || true; wait "$GEN_PID" 2>/dev/null || true

# Promotion is admin-gated: no token and a bad token are refused, the
# real one flips the replica writable in place.
NT_CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$RBASE/v1/promote")
[ "$NT_CODE" = "403" ] || { echo "FAIL: tokenless promote got $NT_CODE, want 403" >&2; exit 1; }
BT_CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -H 'X-Admin-Token: wrong' "$RBASE/v1/promote")
[ "$BT_CODE" = "403" ] || { echo "FAIL: bad-token promote got $BT_CODE, want 403" >&2; exit 1; }
curl -fsS -X POST -H "X-Admin-Token: $ADMIN_TOKEN" "$RBASE/v1/promote" \
  -o "$WORK/promote.json"
grep -q '"promoted":true' "$WORK/promote.json" \
  || { echo "FAIL: promote response: $(cat "$WORK/promote.json")" >&2; exit 1; }

RM=$(curl -fsS "$RBASE/v1/stats" | grep -o '"count":[0-9]*' | cut -d: -f2)
if [ "${RM:-0}" -lt 20000 ] || [ $((RM % 2048)) -ne 0 ]; then
  echo "FAIL: promoted count ${RM:-0} is not a whole number of acknowledged chunks" >&2; exit 1
fi
# Crash-free oracle over the replica's applied prefix.
start_wal_corrd "$FO_ADDR" "failover-oracle"
ORACLE_PID=$!
"$WORK/corrgen" -dataset uniform -n "$RM" -seed 61 -xdom 100001 -ydom 1000001 \
  -target "$FOBASE" -chunk 2048
curl -fsS -o "$WORK/promoted.summary" "$RBASE/v1/summary"
curl -fsS -o "$WORK/failover-oracle.summary" "$FOBASE/v1/summary"
if ! cmp -s "$WORK/promoted.summary" "$WORK/failover-oracle.summary"; then
  echo "FAIL: promoted summary differs from crash-free oracle at the same prefix" >&2
  ls -l "$WORK/promoted.summary" "$WORK/failover-oracle.summary" >&2
  exit 1
fi
echo "promoted replica is byte-identical to the crash-free oracle at $RM tuples"

# The promoted node serves writes durably (its own WAL opened at the
# seal) and counts the promotion.
printf '9,9\n' | curl -fsS -X POST -H 'Content-Type: text/csv' \
  --data-binary @- "$RBASE/v1/ingest" >/dev/null
RM2=$(curl -fsS "$RBASE/v1/stats" | grep -o '"count":[0-9]*' | cut -d: -f2)
[ "$RM2" = "$((RM + 1))" ] || { echo "FAIL: promoted node did not ingest ($RM2)" >&2; exit 1; }
curl -fsS "$RBASE/v1/stats" -o "$WORK/promoted-stats.json"
grep -q '"role":"coordinator"' "$WORK/promoted-stats.json" \
  || { echo "FAIL: promoted node still reports replica role" >&2; exit 1; }
curl -fsS "$RBASE/metrics" -o "$WORK/promoted-metrics.txt"
grep -q 'corrd_replica_promotions_total 1' "$WORK/promoted-metrics.txt" \
  || { echo "FAIL: promotion not counted" >&2; exit 1; }
ls "$WORK/replstandby-wal" | grep -q '\.seg$' \
  || { echo "FAIL: promoted node opened no WAL of its own" >&2; exit 1; }

kill -TERM "$ORACLE_PID"; wait "$ORACLE_PID" || true
ORACLE_PID=""
kill -TERM "$REPL_PID"; wait "$REPL_PID" || true
REPL_PID=""

# --- 11. fault drill: injected ENOSPC, degraded mode, operator recovery
#
# A daemon armed with -fault-plan runs out of (injected) disk mid-
# ingest: writes start failing, the health machine trips degraded
# (writes 503 + Retry-After, /readyz not ready, reads still served,
# /healthz still 200). The operator clears the plan over POST /v1/fault,
# forces recovery with POST /v1/recover, and traffic resumes. A final
# kill -9 + restart proves the log held exactly the acknowledged
# chunks through the whole episode: the recovered summary is
# byte-identical to a crash-free oracle over acked run 1 + run 2.
FAULT_ADDR="127.0.0.1:17087"; FDBASE="http://$FAULT_ADDR"
FORC_ADDR="127.0.0.1:17088"; FORCBASE="http://$FORC_ADDR"
DRILL_TOKEN="drill-admin-$$"
# ~256 KiB of WAL writes succeed, then every write to a wal- file hits
# ENOSPC. Snapshots are pushed out of the window so recovery state is
# purely snapshot-free log replay.
start_wal_corrd "$FAULT_ADDR" "faultdrill" -snapshot-interval 1h \
  -admin-token "$DRILL_TOKEN" -fault-plan "write/wal-:enospc@262144"
WAL_PID=$!
grep -q "FAULT INJECTION ARMED" "$LOG" \
  || { echo "FAIL: armed daemon did not announce its fault plan" >&2; exit 1; }

# Run 1 dies partway through the budget; the generator's error is the
# point, not a failure of the drill.
"$WORK/corrgen" -dataset uniform -n 60000 -seed 71 -xdom 100001 -ydom 1000001 \
  -target "$FDBASE" -chunk 2048 >/dev/null 2>&1 || true
# Keep poking until the failure streak trips the machine.
for _ in $(seq 1 30); do
  curl -s -o /dev/null -X POST -H 'Content-Type: text/csv' \
    --data-binary '1,2' "$FDBASE/v1/ingest" || true
  READY=$(curl -s -o /dev/null -w '%{http_code}' "$FDBASE/readyz")
  [ "$READY" = "503" ] && break
  sleep 0.1
done
[ "$READY" = "503" ] || { echo "FAIL: /readyz still $READY after sustained WAL faults" >&2; cat "$LOG" >&2; exit 1; }

# Degraded contract: writes 503 with Retry-After, stats say degraded,
# reads and liveness still fine.
curl -s -D "$WORK/degraded.hdr" -o /dev/null -X POST -H 'Content-Type: text/csv' \
  --data-binary '1,2' "$FDBASE/v1/ingest"
grep -q '^HTTP/1.1 503' "$WORK/degraded.hdr" \
  || { echo "FAIL: degraded ingest not 503: $(head -1 "$WORK/degraded.hdr")" >&2; exit 1; }
grep -qi '^Retry-After:' "$WORK/degraded.hdr" \
  || { echo "FAIL: degraded 503 carries no Retry-After" >&2; exit 1; }
curl -fsS "$FDBASE/v1/stats" -o "$WORK/degraded-stats.json"
grep -q '"health":"degraded"' "$WORK/degraded-stats.json" \
  || { echo "FAIL: stats do not report degraded" >&2; exit 1; }
curl -fsS "$FDBASE/v1/query?op=le&c=500000" >/dev/null \
  || { echo "FAIL: degraded daemon refused a read" >&2; exit 1; }
curl -fsS "$FDBASE/healthz" >/dev/null \
  || { echo "FAIL: degraded daemon failed liveness" >&2; exit 1; }

# The disk "heals": clear the plan, force recovery, readiness returns.
curl -fsS -X POST --data-binary 'off' "$FDBASE/v1/fault" >/dev/null
curl -fsS -X POST -H "X-Admin-Token: $DRILL_TOKEN" "$FDBASE/v1/recover" \
  -o "$WORK/recover.json"
grep -q '"state":"healthy"' "$WORK/recover.json" \
  || { echo "FAIL: recover response: $(cat "$WORK/recover.json")" >&2; exit 1; }
READY=$(curl -s -o /dev/null -w '%{http_code}' "$FDBASE/readyz")
[ "$READY" = "200" ] || { echo "FAIL: /readyz $READY after recovery" >&2; exit 1; }

# Run 2 lands in full on the healed daemon.
"$WORK/corrgen" -dataset uniform -n 20000 -seed 72 -xdom 100001 -ydom 1000001 \
  -target "$FDBASE" -chunk 2048 >/dev/null

# kill -9 + clean restart: the log must hold exactly the acked chunks.
kill -9 "$WAL_PID"; wait "$WAL_PID" 2>/dev/null || true
start_wal_corrd "$FAULT_ADDR" "faultdrill" -snapshot-interval 1h
WAL_PID=$!
DM=$(curl -fsS "$FDBASE/v1/stats" | grep -o '"count":[0-9]*' | cut -d: -f2)
DM1=$((DM - 20000))
if [ "$DM1" -lt 2048 ] || [ "$DM1" -ge 60000 ] || [ $((DM1 % 2048)) -ne 0 ]; then
  echo "FAIL: recovered drill count $DM implies a non-whole acked run-1 prefix ($DM1)" >&2; exit 1
fi
start_wal_corrd "$FORC_ADDR" "faultdrill-oracle" -snapshot-interval 1h
ORACLE_PID=$!
"$WORK/corrgen" -dataset uniform -n "$DM1" -seed 71 -xdom 100001 -ydom 1000001 \
  -target "$FORCBASE" -chunk 2048 >/dev/null
"$WORK/corrgen" -dataset uniform -n 20000 -seed 72 -xdom 100001 -ydom 1000001 \
  -target "$FORCBASE" -chunk 2048 >/dev/null
curl -fsS -o "$WORK/drill.summary" "$FDBASE/v1/summary"
curl -fsS -o "$WORK/drill-oracle.summary" "$FORCBASE/v1/summary"
if ! cmp -s "$WORK/drill.summary" "$WORK/drill-oracle.summary"; then
  echo "FAIL: post-drill summary differs from crash-free oracle (acked $DM1 + 20000)" >&2
  ls -l "$WORK/drill.summary" "$WORK/drill-oracle.summary" >&2
  exit 1
fi
echo "fault drill recovered byte-identical over $DM1 + 20000 acked tuples"
kill -9 "$WAL_PID" 2>/dev/null || true
wait "$WAL_PID" 2>/dev/null || true
WAL_PID=""
kill -TERM "$ORACLE_PID"; wait "$ORACLE_PID" || true
ORACLE_PID=""
echo "service smoke test PASSED"
