#!/usr/bin/env bash
# Print a before/after table for the service-level load benchmark:
# benchmarks/service-baseline-{ingest,mixed}.json (the recorded pre-change
# numbers) against benchmarks/service-load-{ingest,mixed}.json (the run
# scripts/load-bench.sh just produced). Used by CI's bench job; exits 0
# even without baselines so fresh clones are not penalized.
set -euo pipefail
cd "$(dirname "$0")/.."

field() { # $1 file, $2 json key -> number (0 if absent)
  sed -n 's/.*"'"$2"'": *\([0-9.][0-9.]*\).*/\1/p' "$1" | head -1
}

compare_phase() { # $1 phase name
  local base="benchmarks/service-baseline-$1.json"
  local cur="benchmarks/service-load-$1.json"
  if [[ ! -f "$base" || ! -f "$cur" ]]; then
    echo "($1: no baseline/current pair to compare)"
    return 0
  fi
  echo "== service load: $1 (before -> after)"
  printf '%-24s %14s %14s %10s\n' metric before after change
  for key in ingest_req_per_sec acked_tuples_per_sec ingest_p50_ms ingest_p99_ms query_p50_ms query_p99_ms queries_per_sec; do
    local b c
    b=$(field "$base" "$key"); c=$(field "$cur" "$key")
    [[ -z "$b" || -z "$c" ]] && continue
    awk -v k="$key" -v b="$b" -v c="$c" 'BEGIN {
      if (b + 0 == 0 && c + 0 == 0) exit
      ratio = (b + 0 > 0) ? c / b : 0
      printf "%-24s %14.2f %14.2f %9.2fx\n", k, b, c, ratio
    }'
  done
}

compare_phase ingest
compare_phase mixed
compare_phase stream

# The wire-speed headline: streamed acked tuples/s over HTTP acked
# tuples/s from the same run — both ingest-only at the same small
# per-request batch size, fsync=always (load-bench.sh phase 3).
if [[ -f benchmarks/service-load-stream-http.json && -f benchmarks/service-load-stream.json ]]; then
  h=$(field benchmarks/service-load-stream-http.json acked_tuples_per_sec)
  s=$(field benchmarks/service-load-stream.json acked_tuples_per_sec)
  if [[ -n "$h" && -n "$s" ]]; then
    awk -v h="$h" -v s="$s" 'BEGIN {
      if (h + 0 > 0) printf "== stream vs HTTP ingest-only: %.0f vs %.0f acked tuples/s (%.2fx)\n", s, h, s / h
    }'
  fi
fi
