#!/usr/bin/env bash
# Service-level load benchmark: start a corrd with the WAL on
# (-wal-fsync=always — the durability configuration the group-commit
# pipeline is built for) and drive it with corrgen's concurrent load
# mode, in three phases:
#
#   ingest  8 concurrent ingest clients, no queries — the acknowledged-
#           ingest headline (fsync + drain amortization; on hardware
#           with fast fsync this phase is CPU-bound and roughly flat,
#           but fsyncs-per-request drops to the group-commit ratio).
#   mixed   the same ingest with 4 hot multi-cutoff query loops and a
#           500ms query staleness budget — the serving scenario where
#           the epoch cache keeps queries from taxing ingest with one
#           cross-shard merge per query (the pre-group-commit server
#           collapses here: every query held the ingest lock for a
#           full merge).
#   stream  the same tuples over the persistent length-framed streaming
#           transport (corrd -stream-addr, corrgen -stream) next to an
#           HTTP run at the same chunking — both at wire-speed
#           granularity (small per-request batches, LOAD_STREAM_CHUNK).
#           At large chunks both transports converge on the engine-
#           apply ceiling; at fine granularity HTTP pays a request
#           round trip per handful of tuples while the framed transport
#           pipelines frames ahead of acks with pooled zero-alloc
#           decode — that gap is the wire-speed headline
#           scripts/load-compare.sh prints.
#   tenants the mixed workload fanned out over LOAD_TENANTS keyed
#           namespaces (corrgen -tenants): every chunk and query
#           carries a tenant key, the daemon keeps one engine per
#           namespace behind the shared WAL, and query clients rotate
#           across tenants — the multi-tenant serving headline (keyed
#           routing + per-tenant flush cost on top of group commit).
#   replicas the ingest workload against a primary with 0, 1, and 2
#           attached replicas tailing its WAL over the stream listener
#           (what replication shipping costs the acknowledged ingest
#           path), plus a query-only run against a replica while it
#           tails the live 2-replica ingest (corrgen -query-for) —
#           the read-scaling headline.
#
# Reports land in benchmarks/service-load-{ingest,mixed,stream,
# stream-http,tenants,replicas-0,replicas-1,replicas-2,replica-query}
# .json; promote them to the matching benchmarks/service-baseline-*
# .json to make scripts/load-compare.sh (and CI) print a before/after
# table.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${LOAD_ADDR:-127.0.0.1:17090}"
STREAM_ADDR="${LOAD_STREAM_ADDR:-127.0.0.1:17091}"
BASE="http://$ADDR"
N="${LOAD_N:-100000}"
CLIENTS="${LOAD_CLIENTS:-8}"
QUERY_CLIENTS="${LOAD_QUERY_CLIENTS:-4}"
CHUNK="${LOAD_CHUNK:-512}"
STREAM_CHUNK="${LOAD_STREAM_CHUNK:-16}"
MAX_STALE="${LOAD_QUERY_MAX_STALE:-500ms}"
TENANTS="${LOAD_TENANTS:-64}"
OUT_PREFIX="${LOAD_OUT_PREFIX:-benchmarks/service-load}"
WORK="$(mktemp -d)"

cleanup() {
  [ -n "${CORRD_PID:-}" ] && kill "$CORRD_PID" 2>/dev/null || true
  [ -n "${R1_PID:-}" ] && kill "$R1_PID" 2>/dev/null || true
  [ -n "${R2_PID:-}" ] && kill "$R2_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

mkdir -p benchmarks
go build -o "$WORK/corrd" ./cmd/corrd
go build -o "$WORK/corrgen" ./cmd/corrgen

start_corrd() { # extra corrd flags in "$@"
  rm -rf "$WORK/wal" "$WORK/corrd.snapshot"
  "$WORK/corrd" -addr "$ADDR" -agg f2 -eps 0.15 -delta 0.1 \
    -ymax 1000000 -maxn 1048576 -maxx 500001 -seed 42 -shards 2 \
    -snapshot "$WORK/corrd.snapshot" -snapshot-interval 1h \
    -wal-dir "$WORK/wal" -wal-fsync always "$@" >"$WORK/corrd.log" 2>&1 &
  CORRD_PID=$!
  for _ in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "corrd did not start:" >&2; cat "$WORK/corrd.log" >&2; exit 1
}

stop_corrd() {
  kill -TERM "$CORRD_PID" 2>/dev/null || true
  wait "$CORRD_PID" 2>/dev/null || true
  CORRD_PID=""
}

# One read replica following the benchmark primary over $STREAM_ADDR.
# Its own (empty until promotion) WAL dir and snapshot path, keyed by
# name; the caller captures $! as the pid.
start_replica() { # $1 addr, $2 name
  rm -rf "$WORK/$2-wal" "$WORK/$2.snapshot"
  "$WORK/corrd" -addr "$1" -agg f2 -eps 0.15 -delta 0.1 \
    -ymax 1000000 -maxn 1048576 -maxx 500001 -seed 42 -shards 2 \
    -role=replica -primary "$STREAM_ADDR" \
    -snapshot "$WORK/$2.snapshot" -snapshot-interval 1h \
    -wal-dir "$WORK/$2-wal" -wal-fsync always >"$WORK/$2.log" 2>&1 &
  for _ in $(seq 1 50); do
    if curl -fsS "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "replica $2 did not start:" >&2; cat "$WORK/$2.log" >&2; exit 1
}

echo "== phase 1: ingest-only ($CLIENTS clients, fsync=always)"
start_corrd
"$WORK/corrgen" -dataset uniform -n "$N" -seed 11 -xdom 100001 -ydom 1000001 \
  -target "$BASE" -chunk "$CHUNK" -clients "$CLIENTS" \
  -load-json "${OUT_PREFIX}-ingest.json"
curl -fsS "$BASE/metrics" | grep -E '^corrd_(ingest_requests_total|ingest_groups_total|wal_fsyncs_total)' || true
stop_corrd

echo "== phase 2: mixed ($CLIENTS ingest + $QUERY_CLIENTS query clients, -query-max-stale $MAX_STALE)"
# The mixed phase also runs the structured access log, so the run leaves
# a sample of real access records next to the load reports (CI uploads
# it with the bench artifacts).
start_corrd -query-max-stale "$MAX_STALE" -access-log "$WORK/access.log"
"$WORK/corrgen" -dataset uniform -n "$N" -seed 11 -xdom 100001 -ydom 1000001 \
  -target "$BASE" -chunk "$CHUNK" -clients "$CLIENTS" \
  -query-clients "$QUERY_CLIENTS" -query-cutoffs 250000,500000,750000 \
  -load-json "${OUT_PREFIX}-mixed.json"
curl -fsS "$BASE/metrics" | grep -E '^corrd_(ingest_requests_total|ingest_groups_total|wal_fsyncs_total|query_cache_(hits|rebuilds)_total|pipeline_stage_seconds_count)' || true
stop_corrd
head -n 200 "$WORK/access.log" > "${OUT_PREFIX}-access.log" 2>/dev/null || true

echo "== phase 3: stream vs HTTP at wire-speed granularity ($CLIENTS clients, $STREAM_CHUNK-tuple batches, fsync=always)"
start_corrd -stream-addr "$STREAM_ADDR"
"$WORK/corrgen" -dataset uniform -n "$N" -seed 11 -xdom 100001 -ydom 1000001 \
  -target "$BASE" -chunk "$STREAM_CHUNK" -clients "$CLIENTS" \
  -load-json "${OUT_PREFIX}-stream-http.json"
"$WORK/corrgen" -dataset uniform -n "$N" -seed 11 -xdom 100001 -ydom 1000001 \
  -target "$BASE" -stream "$STREAM_ADDR" -chunk "$STREAM_CHUNK" -clients "$CLIENTS" \
  -load-json "${OUT_PREFIX}-stream.json"
curl -fsS "$BASE/metrics" | grep -E '^corrd_(stream_(conns_total|frames_total|tuples_total)|ingest_groups_total|wal_fsyncs_total)' || true
stop_corrd

echo "== phase 4: multi-tenant mixed load ($TENANTS tenants over $CLIENTS clients + $QUERY_CLIENTS query clients)"
start_corrd -query-max-stale "$MAX_STALE" -max-tenants $((TENANTS + 8))
"$WORK/corrgen" -dataset uniform -n "$N" -seed 11 -xdom 100001 -ydom 1000001 \
  -target "$BASE" -chunk "$CHUNK" -clients "$CLIENTS" -tenants "$TENANTS" \
  -query-clients "$QUERY_CLIENTS" -query-cutoffs 250000,500000,750000 \
  -load-json "${OUT_PREFIX}-tenants.json"
curl -fsS "$BASE/metrics" | grep -E '^corrd_(tenants|tenant_bytes|tenant_created_total|ingest_groups_total|wal_fsyncs_total)' || true
stop_corrd

echo "== phase 5: replication (ingest with 0/1/2 attached replicas + replica reads)"
# Each run restarts the primary fresh (same wiped WAL and snapshot) so
# the three ingest numbers differ only in how many followers tail the
# log. The replica-query run rides the 2-replica phase: a query-only
# corrgen (-query-for) hammers replica 1 while it applies the live
# ingest — read throughput on a node that is simultaneously replaying.
R1_ADDR="${LOAD_REPLICA1_ADDR:-127.0.0.1:17092}"
R2_ADDR="${LOAD_REPLICA2_ADDR:-127.0.0.1:17093}"
QUERY_FOR="${LOAD_REPLICA_QUERY_FOR:-5s}"

start_corrd -stream-addr "$STREAM_ADDR"
"$WORK/corrgen" -dataset uniform -n "$N" -seed 11 -xdom 100001 -ydom 1000001 \
  -target "$BASE" -chunk "$CHUNK" -clients "$CLIENTS" \
  -load-json "${OUT_PREFIX}-replicas-0.json"
stop_corrd

start_corrd -stream-addr "$STREAM_ADDR"
start_replica "$R1_ADDR" replica1
R1_PID=$!
"$WORK/corrgen" -dataset uniform -n "$N" -seed 11 -xdom 100001 -ydom 1000001 \
  -target "$BASE" -chunk "$CHUNK" -clients "$CLIENTS" \
  -load-json "${OUT_PREFIX}-replicas-1.json"
kill -TERM "$R1_PID" 2>/dev/null || true; wait "$R1_PID" 2>/dev/null || true
R1_PID=""
stop_corrd

start_corrd -stream-addr "$STREAM_ADDR"
start_replica "$R1_ADDR" replica1
R1_PID=$!
start_replica "$R2_ADDR" replica2
R2_PID=$!
"$WORK/corrgen" -dataset uniform -n "$N" -seed 11 -xdom 100001 -ydom 1000001 \
  -target "$BASE" -chunk "$CHUNK" -clients "$CLIENTS" \
  -load-json "${OUT_PREFIX}-replicas-2.json" &
INGEST_PID=$!
"$WORK/corrgen" -target "http://$R1_ADDR" -n 0 \
  -query-clients "$QUERY_CLIENTS" -query-cutoffs 250000,500000,750000 \
  -query-for "$QUERY_FOR" -load-json "${OUT_PREFIX}-replica-query.json"
wait "$INGEST_PID"
curl -fsS "$BASE/metrics" | grep -E '^corrd_replica_(conns|records_sent_total|heartbeats_sent_total)' || true
curl -fsS "http://$R1_ADDR/metrics" | grep -E '^corrd_replica_(records_applied_total|applied_lsn|lag_records)' || true
kill -TERM "$R1_PID" 2>/dev/null || true; wait "$R1_PID" 2>/dev/null || true
R1_PID=""
kill -TERM "$R2_PID" 2>/dev/null || true; wait "$R2_PID" 2>/dev/null || true
R2_PID=""
stop_corrd

echo "Wrote ${OUT_PREFIX}-{ingest,mixed,stream,stream-http,tenants,replicas-0,replicas-1,replicas-2,replica-query}.json (+ ${OUT_PREFIX}-access.log sample)"
