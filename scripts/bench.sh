#!/usr/bin/env bash
# Run the regression-tracked benchmark suite and write both
# benchmarks/latest.txt (human-diffable) and benchmarks/latest.json
# (machine-readable: per-benchmark ns/op, B/op, allocs/op plus the
# machine disclosure and, when run, the service-level load reports).
#
# Workflow (see benchmarks/README.md):
#   scripts/bench.sh          # generate benchmarks/latest.{txt,json}
#   scripts/bench-update.sh   # promote latest.txt to baseline.txt
#
# BENCH_SKIP_LOAD=1 skips the service-level load benchmark (it builds
# and runs a live corrd; see scripts/load-bench.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p benchmarks

# Fixed iteration counts keep runs comparable across invocations: the
# summaries' per-tuple cost depends on the stream position, so adaptive
# benchtime would measure different regimes on different machines.
BENCH_COUNT="${BENCH_COUNT:-1}"

{
  go test -run '^$' -bench 'BenchmarkCoreAdd$|BenchmarkCoreAddBatch$|BenchmarkCoreQuery$' \
    -benchmem -count="$BENCH_COUNT" ./internal/core/
  go test -run '^$' -bench 'BenchmarkCountSketch' -benchmem -count="$BENCH_COUNT" ./internal/sketch/
  go test -run '^$' -bench 'BenchmarkTableB_UpdateThroughput' -benchmem -benchtime=200000x \
    -count="$BENCH_COUNT" .
  # Sharded ingest: P=1 is comparable with TableB/F2; P>1 needs that many
  # free cores to show wall-clock scaling (see benchmarks/README.md).
  go test -run '^$' -bench 'BenchmarkShardedAdd' -benchmem -benchtime=500000x \
    -count="$BENCH_COUNT" ./shard/
  # Site-push hot path (corrd /v1/push): coordinator folding a marshaled
  # site image; MB/s is push bandwidth per coordinator core.
  go test -run '^$' -bench 'BenchmarkMergeMarshaled' -benchmem -benchtime=20x \
    -count="$BENCH_COUNT" .
  # Durable-ingest ack path: what each WAL fsync policy adds to a
  # /v1/ingest acknowledgement (fsync=always is the durability barrier).
  go test -run '^$' -bench 'BenchmarkWALAppend' -benchmem -benchtime=500x \
    -count="$BENCH_COUNT" ./internal/wal/
  # Per-frame server decode paths, both transports: the streaming
  # frame+batch decode and the HTTP body copy+decode, through the shared
  # buffer pool. The contract is 0 allocs/op at steady state (also
  # pinned by TestStreamDecodeZeroAlloc / TestHTTPIngestDecodeZeroAlloc).
  go test -run '^$' -bench 'BenchmarkStreamDecode$|BenchmarkHTTPIngestDecode$' \
    -benchmem -benchtime=100000x -count="$BENCH_COUNT" ./service/
} | tee benchmarks/latest.txt

# Service-level load benchmark: acknowledged-ingest throughput and query
# latency against a live corrd with the WAL on — the end-to-end view the
# microbenchmarks above cannot give (fsync amortization, lock contention).
# When skipped, no -load args are passed, so a stale (possibly committed,
# other-machine) load report is never folded into this run's latest.json.
LOAD_ARGS=()
if [ "${BENCH_SKIP_LOAD:-0}" != "1" ]; then
  scripts/load-bench.sh
  LOAD_ARGS=(-load ingest=benchmarks/service-load-ingest.json
             -load mixed=benchmarks/service-load-mixed.json
             -load stream=benchmarks/service-load-stream.json
             -load stream-http=benchmarks/service-load-stream-http.json
             -load tenants=benchmarks/service-load-tenants.json
             -load replicas-0=benchmarks/service-load-replicas-0.json
             -load replicas-1=benchmarks/service-load-replicas-1.json
             -load replicas-2=benchmarks/service-load-replicas-2.json
             -load replica-query=benchmarks/service-load-replica-query.json)
fi

go run ./cmd/benchjson -in benchmarks/latest.txt -out benchmarks/latest.json \
  ${LOAD_ARGS[@]+"${LOAD_ARGS[@]}"}

echo
echo "Wrote benchmarks/latest.txt and latest.json — review, then run scripts/bench-update.sh to promote as baseline."
