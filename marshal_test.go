package correlated_test

import (
	"testing"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/gen"
)

func TestF2SummaryRoundTrip(t *testing.T) {
	o := opts(correlated.Both, 31)
	src, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	st := gen.Uniform(60000, 2000, 1<<16, 33)
	for {
		tp, ok := st.Next()
		if !ok {
			break
		}
		if err := src.Add(tp.X, tp.Y); err != nil {
			t.Fatal(err)
		}
	}
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dst, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for _, c := range []uint64{1 << 12, 1 << 15} {
		a, _ := src.QueryLE(c)
		b, _ := dst.QueryLE(c)
		if a != b {
			t.Fatalf("LE %d: %v vs %v", c, a, b)
		}
		a, _ = src.QueryGE(c)
		b, _ = dst.QueryGE(c)
		if a != b {
			t.Fatalf("GE %d: %v vs %v", c, a, b)
		}
	}
	if src.Space() != dst.Space() {
		t.Fatalf("space %d vs %d", src.Space(), dst.Space())
	}
}

func TestCountAndSumRoundTrip(t *testing.T) {
	o := opts(correlated.LE, 37)
	cs, err := correlated.NewCountSummary(o)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := correlated.NewSumSummary(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 30000; i++ {
		y := (i * 2654435761) % (1 << 16)
		if err := cs.Add(i%1000, y); err != nil {
			t.Fatal(err)
		}
		if err := ss.Add(i%1000+1, y); err != nil {
			t.Fatal(err)
		}
	}
	csData, err := cs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ssData, err := ss.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cs2, _ := correlated.NewCountSummary(o)
	ss2, _ := correlated.NewSumSummary(o)
	if err := cs2.UnmarshalBinary(csData); err != nil {
		t.Fatal(err)
	}
	if err := ss2.UnmarshalBinary(ssData); err != nil {
		t.Fatal(err)
	}
	a, _ := cs.QueryLE(1 << 14)
	b, _ := cs2.QueryLE(1 << 14)
	if a != b {
		t.Fatalf("count: %v vs %v", a, b)
	}
	a, _ = ss.QueryLE(1 << 14)
	b, _ = ss2.QueryLE(1 << 14)
	if a != b {
		t.Fatalf("sum: %v vs %v", a, b)
	}
	// Cross-type restore must fail (COUNT bytes into SUM summary).
	if err := ss2.UnmarshalBinary(csData); err == nil {
		t.Fatal("COUNT bytes accepted by SUM summary")
	}
}

func TestFkSummaryRoundTrip(t *testing.T) {
	o := opts(correlated.LE, 41)
	o.Eps = 0.3
	src, err := correlated.NewFkSummary(3, o)
	if err != nil {
		t.Fatal(err)
	}
	st := gen.Zipf(40000, 3000, 1<<16, 1.4, 43)
	for {
		tp, ok := st.Next()
		if !ok {
			break
		}
		if err := src.Add(tp.X, tp.Y); err != nil {
			t.Fatal(err)
		}
	}
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dst, _ := correlated.NewFkSummary(3, o)
	if err := dst.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	a, _ := src.QueryLE(1 << 15)
	b, _ := dst.QueryLE(1 << 15)
	if a != b {
		t.Fatalf("Fk: %v vs %v", a, b)
	}
}

func TestF0SummaryRoundTrip(t *testing.T) {
	o := opts(correlated.Both, 47)
	o.MaxX = 1 << 16
	src, err := correlated.NewF0Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	st := gen.Uniform(80000, 1<<16, 1<<16, 49)
	for {
		tp, ok := st.Next()
		if !ok {
			break
		}
		if err := src.Add(tp.X, tp.Y); err != nil {
			t.Fatal(err)
		}
	}
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dst, _ := correlated.NewF0Summary(o)
	if err := dst.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for _, c := range []uint64{1 << 12, 1 << 15} {
		a, _ := src.QueryLE(c)
		b, _ := dst.QueryLE(c)
		if a != b {
			t.Fatalf("F0 LE %d: %v vs %v", c, a, b)
		}
		ra, _ := src.RarityLE(c)
		rb, _ := dst.RarityLE(c)
		if ra != rb {
			t.Fatalf("rarity %d: %v vs %v", c, ra, rb)
		}
	}
	if src.Count() != dst.Count() || src.Space() != dst.Space() {
		t.Fatal("bookkeeping differs after restore")
	}
	// Restored structure keeps ingesting identically.
	for i := uint64(0); i < 10000; i++ {
		x, y := i%(1<<16), (i*31)%(1<<16)
		if err := src.Add(x, y); err != nil {
			t.Fatal(err)
		}
		if err := dst.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := src.QueryLE(1 << 14)
	b, _ := dst.QueryLE(1 << 14)
	if a != b {
		t.Fatalf("post-restore divergence: %v vs %v", a, b)
	}
}

func TestRoundTripPredicateMismatch(t *testing.T) {
	src, _ := correlated.NewF2Summary(opts(correlated.LE, 51))
	if err := src.Add(1, 1); err != nil {
		t.Fatal(err)
	}
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dst, _ := correlated.NewF2Summary(opts(correlated.Both, 51))
	if err := dst.UnmarshalBinary(data); err == nil {
		t.Fatal("predicate mismatch accepted")
	}
}
