// Command corrgen emits the paper's evaluation datasets as CSV on stdout:
// one "x,y" tuple per line.
//
// Usage:
//
//	corrgen -dataset uniform|zipf1|zipf2|ethernet [-n 1000000] [-seed 1]
//	        [-xdom 500001] [-ydom 1000001]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/streamagg/correlated/internal/gen"
)

func main() {
	var (
		dataset = flag.String("dataset", "uniform", "uniform, zipf1, zipf2, or ethernet")
		n       = flag.Int("n", 1_000_000, "number of tuples")
		seed    = flag.Uint64("seed", 1, "random seed")
		xdom    = flag.Uint64("xdom", 500_001, "identifier domain size (not used by ethernet)")
		ydom    = flag.Uint64("ydom", 1_000_001, "y domain size (not used by ethernet)")
	)
	flag.Parse()

	var s gen.Stream
	switch *dataset {
	case "uniform":
		s = gen.Uniform(*n, *xdom, *ydom, *seed)
	case "zipf1":
		s = gen.Zipf(*n, *xdom, *ydom, 1.0, *seed)
	case "zipf2":
		s = gen.Zipf(*n, *xdom, *ydom, 2.0, *seed)
	case "ethernet":
		s = gen.Ethernet(*n, *seed)
	default:
		fmt.Fprintf(os.Stderr, "corrgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer w.Flush()
	buf := make([]byte, 0, 64)
	for {
		t, ok := s.Next()
		if !ok {
			return
		}
		buf = strconv.AppendUint(buf[:0], t.X, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, t.Y, 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			fmt.Fprintf(os.Stderr, "corrgen: %v\n", err)
			os.Exit(1)
		}
	}
}
