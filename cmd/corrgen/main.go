// Command corrgen emits the paper's evaluation datasets as CSV on stdout
// — one "x,y" tuple per line — or, with -target, streams them straight
// into a running corrd daemon through the client's chunked batch ingest,
// turning the generator into a self-contained load driver for the
// network service.
//
// Usage:
//
//	corrgen -dataset uniform|zipf1|zipf2|ethernet [-n 1000000] [-seed 1]
//	        [-xdom 500001] [-ydom 1000001]
//	        [-target http://localhost:7070] [-chunk 8192]
//	        [-clients 8] [-query-clients 2] [-query-cutoffs 250000,500000]
//	        [-load-json load.json]
//
// With -clients N (and -target) the tuples are split across N concurrent
// ingest clients — the service-level load mode — and with -query-clients
// M another M loops issue multi-cutoff queries for the duration of the
// ingest. The run reports req/s, acked tuples/s, and ingest/query latency
// percentiles, optionally as JSON with -load-json (see load.go and
// scripts/load-bench.sh).
//
// With -stream host:port the ingest side switches to corrd's persistent
// streaming transport (-stream-addr): one connection per client, frames
// pipelined ahead of the server's acks, the wire-speed alternative to
// HTTP. -target is still required for the health check and any query
// clients.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/client"
	"github.com/streamagg/correlated/internal/gen"
)

func main() {
	var (
		dataset  = flag.String("dataset", "uniform", "uniform, zipf1, zipf2, or ethernet")
		n        = flag.Int("n", 1_000_000, "number of tuples")
		seed     = flag.Uint64("seed", 1, "random seed")
		xdom     = flag.Uint64("xdom", 500_001, "identifier domain size (not used by ethernet)")
		ydom     = flag.Uint64("ydom", 1_000_001, "y domain size (not used by ethernet)")
		target   = flag.String("target", "", "corrd base URL; send tuples there instead of stdout")
		streamTo = flag.String("stream", "", "corrd -stream-addr host:port; ingest over the persistent streaming transport instead of HTTP")
		chunk    = flag.Int("chunk", 8192, "tuples per ingest request with -target")

		clients      = flag.Int("clients", 1, "concurrent ingest clients with -target (load mode when > 1)")
		queryClients = flag.Int("query-clients", 0, "concurrent multi-cutoff query loops during the ingest")
		queryCutoffs = flag.String("query-cutoffs", "250000,500000,750000", "comma-separated cutoffs for -query-clients")
		queryFor     = flag.Duration("query-for", 0, "query-only load: run the -query-clients loops against -target for this long, with no ingest (measures a read replica)")
		loadJSON     = flag.String("load-json", "", "write the load-mode report as JSON to this file")

		tenant  = flag.String("tenant", "", "tenant key scoping every request (with -target)")
		tenants = flag.Int("tenants", 1, "load mode: fan the tuples out across this many tenants t000..tNNN (forces load mode when > 1)")
	)
	flag.Parse()

	var s gen.Stream
	switch *dataset {
	case "uniform":
		s = gen.Uniform(*n, *xdom, *ydom, *seed)
	case "zipf1":
		s = gen.Zipf(*n, *xdom, *ydom, 1.0, *seed)
	case "zipf2":
		s = gen.Zipf(*n, *xdom, *ydom, 2.0, *seed)
	case "ethernet":
		s = gen.Ethernet(*n, *seed)
	default:
		fmt.Fprintf(os.Stderr, "corrgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	if *target != "" {
		if *queryFor > 0 && *queryClients <= 0 {
			fmt.Fprintln(os.Stderr, "corrgen: -query-for needs -query-clients")
			os.Exit(2)
		}
		if *clients > 1 || *queryClients > 0 || *streamTo != "" || *tenants > 1 {
			cutoffs, err := parseCutoffs(*queryCutoffs)
			if err != nil {
				fmt.Fprintf(os.Stderr, "corrgen: %v\n", err)
				os.Exit(2)
			}
			cfg := &loadConfig{
				target: *target, streamAddr: *streamTo, dataset: *dataset, n: *n, seed: *seed,
				xdom: *xdom, ydom: *ydom, chunk: max(*chunk, 1),
				clients: max(*clients, 1), queryClients: *queryClients,
				queryFor: *queryFor,
				cutoffs:  cutoffs, jsonPath: *loadJSON,
				tenant: *tenant, tenants: max(*tenants, 1),
			}
			if err := runLoad(cfg); err != nil {
				fmt.Fprintf(os.Stderr, "corrgen: %v\n", err)
				os.Exit(1)
			}
			return
		}
		if err := stream(s, *target, *chunk, *tenant); err != nil {
			fmt.Fprintf(os.Stderr, "corrgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer w.Flush()
	buf := make([]byte, 0, 64)
	for {
		t, ok := s.Next()
		if !ok {
			return
		}
		buf = strconv.AppendUint(buf[:0], t.X, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, t.Y, 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			fmt.Fprintf(os.Stderr, "corrgen: %v\n", err)
			os.Exit(1)
		}
	}
}

// stream drives the generated tuples into a corrd daemon in chunked
// batches (scoped to tenant when non-empty), reporting throughput on
// stderr.
func stream(s gen.Stream, target string, chunk int, tenant string) error {
	if chunk < 1 {
		chunk = 1
	}
	opts := []client.Option{client.WithChunkSize(chunk)}
	if tenant != "" {
		opts = append(opts, client.WithTenant(tenant))
	}
	cl := client.New(target, opts...)
	ctx := context.Background()
	if err := cl.Healthy(ctx); err != nil {
		return fmt.Errorf("target %s not healthy: %w", target, err)
	}
	batch := make([]correlated.Tuple, 0, chunk)
	start := time.Now()
	sent := 0
	for {
		t, ok := s.Next()
		if !ok {
			break
		}
		batch = append(batch, correlated.Tuple{X: t.X, Y: t.Y, W: 1})
		if len(batch) == chunk {
			if err := cl.AddBatch(ctx, batch); err != nil {
				return fmt.Errorf("after %d tuples: %w", sent, err)
			}
			sent += len(batch)
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := cl.AddBatch(ctx, batch); err != nil {
			return fmt.Errorf("after %d tuples: %w", sent, err)
		}
		sent += len(batch)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "corrgen: sent %d tuples to %s in %v (%.0f tuples/s)\n",
		sent, target, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
	return nil
}
