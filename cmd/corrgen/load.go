package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/client"
	"github.com/streamagg/correlated/internal/gen"
)

// Load mode: corrgen as a service-level load driver. With -clients N the
// n tuples are split across N concurrent clients, each ingesting its own
// deterministic substream in chunked requests (one AddBatch call with a
// full chunk is exactly one /v1/ingest request), and with -query-clients
// M another M loops hammer GET /v1/query with the -query-cutoffs set for
// the duration of the ingest. The report — req/s, acked tuples/s, and
// ingest/query latency percentiles — is what scripts/load-bench.sh
// records before/after serving-core changes: it measures the acknowledged
// ingest path end-to-end, fsync and engine drain included.

// loadReport is the machine-readable result of one load run.
type loadReport struct {
	Target       string  `json:"target"`
	Transport    string  `json:"transport"` // "http" or "stream"
	Dataset      string  `json:"dataset"`
	Tuples       int     `json:"tuples"`
	Chunk        int     `json:"chunk"`
	Clients      int     `json:"clients"`
	Tenants      int     `json:"tenants,omitempty"`
	QueryClients int     `json:"query_clients"`
	QueryCutoffs int     `json:"query_cutoffs"`
	Seconds      float64 `json:"seconds"`

	IngestRequests int     `json:"ingest_requests"`
	AckedTuples    int     `json:"acked_tuples"`
	IngestReqSec   float64 `json:"ingest_req_per_sec"`
	AckedTuplesSec float64 `json:"acked_tuples_per_sec"`
	IngestP50Ms    float64 `json:"ingest_p50_ms"`
	IngestP99Ms    float64 `json:"ingest_p99_ms"`

	Queries    int     `json:"queries"`
	QuerySec   float64 `json:"queries_per_sec"`
	QueryP50Ms float64 `json:"query_p50_ms"`
	QueryP99Ms float64 `json:"query_p99_ms"`

	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`

	// Server-side commit-pipeline stage breakdown (enqueue, apply,
	// append, fsync, ack), fetched from /v1/stats after the run — how
	// the acknowledged ingest latency above decomposes inside corrd.
	Stages map[string]client.StageStats `json:"pipeline_stages,omitempty"`
}

// loadConfig carries the flag values the load mode needs.
type loadConfig struct {
	target       string
	streamAddr   string // non-empty: ingest over the streaming transport
	dataset      string
	n            int
	seed         uint64
	xdom, ydom   uint64
	chunk        int
	clients      int
	queryClients int
	queryFor     time.Duration // > 0: query-only run of that length, no ingest
	cutoffs      []uint64
	jsonPath     string
	tenant       string // scope the whole run to one tenant ("" = default)
	tenants      int    // > 1: fan the tuples out across this many tenants
}

func (cfg *loadConfig) transport() string {
	if cfg.streamAddr != "" {
		return "stream"
	}
	return "http"
}

// parseCutoffs parses the -query-cutoffs comma list.
func parseCutoffs(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad cutoff %q: %w", part, err)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no cutoffs in %q", s)
	}
	return out, nil
}

// makeStream builds one substream of the configured dataset family.
func makeStream(cfg *loadConfig, share int, seed uint64) (gen.Stream, error) {
	switch cfg.dataset {
	case "uniform":
		return gen.Uniform(share, cfg.xdom, cfg.ydom, seed), nil
	case "zipf1":
		return gen.Zipf(share, cfg.xdom, cfg.ydom, 1.0, seed), nil
	case "zipf2":
		return gen.Zipf(share, cfg.xdom, cfg.ydom, 2.0, seed), nil
	case "ethernet":
		return gen.Ethernet(share, seed), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", cfg.dataset)
	}
}

// clientStream builds the i-th client's substream: the same dataset
// family, a per-client seed, and an even share of the tuple budget.
func clientStream(cfg *loadConfig, i int) (gen.Stream, error) {
	share := cfg.n / cfg.clients
	if i < cfg.n%cfg.clients {
		share++
	}
	return makeStream(cfg, share, cfg.seed+uint64(i)*1_000_003)
}

// tenantName is the canonical load-mode key for tenant index t.
func tenantName(t int) string { return fmt.Sprintf("t%03d", t) }

// tenantStream builds tenant t's substream in -tenants mode: the same
// per-index seed scheme as clientStream, an even share of the budget.
// A single-tenant oracle regenerates tenant t's exact stream with
// -seed seed+t*1000003 -n share.
func tenantStream(cfg *loadConfig, t int) (gen.Stream, error) {
	share := cfg.n / cfg.tenants
	if t < cfg.n%cfg.tenants {
		share++
	}
	return makeStream(cfg, share, cfg.seed+uint64(t)*1_000_003)
}

// percentile returns the p-th percentile (0 < p <= 100) of sorted
// durations, in milliseconds.
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted)-1) * p / 100)
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// loadClient builds one load goroutine's client: its own transport so
// N concurrent clients really hold N connections (the default
// transport's 2-idle-conns-per-host pruning would otherwise churn
// connections and serialize what should be concurrent offered load).
func loadClient(cfg *loadConfig) *client.Client {
	return loadClientTenant(cfg, cfg.tenant)
}

// loadClientTenant is loadClient scoped to one tenant key.
func loadClientTenant(cfg *loadConfig, tenant string) *client.Client {
	tr := &http.Transport{MaxIdleConns: 4, MaxIdleConnsPerHost: 4}
	opts := []client.Option{
		client.WithChunkSize(cfg.chunk),
		client.WithHTTPClient(&http.Client{Timeout: 60 * time.Second, Transport: tr}),
	}
	if tenant != "" {
		opts = append(opts, client.WithTenant(tenant))
	}
	return client.New(cfg.target, opts...)
}

// streamAckBuffer sizes the per-connection ack channel: deep enough
// that the stream's internal ack reader never stalls behind the drain
// goroutine's latency bookkeeping.
const streamAckBuffer = 512

// streamIngest drives one client's substream over the streaming
// transport: a single persistent connection, frames pipelined up to the
// window, a drain goroutine consuming acks. Latency is measured per
// Send (one chunk, normally one frame): the drain matches in-order acks
// back to Send timestamps by covered tuple count, so the numbers mean
// "time from handing the chunk to the transport until the server
// acknowledged its commit" — the streaming analogue of the HTTP
// request latency, with pipelining instead of lockstep.
func streamIngest(ctx context.Context, cfg *loadConfig, i int) (lats []time.Duration, reqs, nAcked int, err error) {
	s, err := clientStream(cfg, i)
	if err != nil {
		return nil, 0, 0, err
	}
	return streamDrive(ctx, cfg, s, cfg.tenant)
}

// streamDrive pumps one substream over one streaming connection
// (tenant-scoped when tenant is non-empty) and measures per-Send
// commit latency.
func streamDrive(ctx context.Context, cfg *loadConfig, s gen.Stream, tenant string) (lats []time.Duration, reqs, nAcked int, err error) {
	opts := []client.StreamOption{client.WithAckBuffer(streamAckBuffer)}
	if tenant != "" {
		opts = append(opts, client.WithStreamTenant(tenant))
	}
	st, err := client.DialStream(ctx, cfg.streamAddr, opts...)
	if err != nil {
		return nil, 0, 0, err
	}
	type sendMeta struct {
		t0 time.Time
		n  int
	}
	metas := make(chan sendMeta, 4096)
	lats = make([]time.Duration, 0, s.Len()/cfg.chunk+1)
	drained := make(chan error, 1)
	go func() {
		var derr error
		remaining := 0 // tuples of the pending Send not yet covered by acks
		var t0 time.Time
		for a := range st.Acks() {
			if aerr := a.Err(); aerr != nil && derr == nil {
				derr = aerr
			} else if aerr == nil {
				nAcked += a.Tuples
			}
			for n := a.Tuples; n > 0; {
				if remaining == 0 {
					m := <-metas // pushed right after the Send the ack covers
					remaining, t0 = m.n, m.t0
				}
				if n < remaining {
					remaining -= n
					break
				}
				n -= remaining
				remaining = 0
				lats = append(lats, time.Since(t0))
			}
		}
		drained <- derr
	}()

	batch := make([]correlated.Tuple, 0, cfg.chunk)
	flush := func() error {
		t0 := time.Now()
		n := len(batch)
		if err := st.Send(batch); err != nil {
			return err
		}
		metas <- sendMeta{t0: t0, n: n}
		reqs++
		batch = batch[:0]
		return nil
	}
	var sendErr error
	for sendErr == nil {
		t, ok := s.Next()
		if !ok {
			break
		}
		batch = append(batch, correlated.Tuple{X: t.X, Y: t.Y, W: 1})
		if len(batch) == cfg.chunk {
			sendErr = flush()
		}
	}
	if sendErr == nil && len(batch) > 0 {
		sendErr = flush()
	}
	// Close waits for every in-flight ack, then the ack channel closes
	// and the drain reports the first non-OK outcome.
	closeErr := st.Close()
	drainErr := <-drained
	switch {
	case sendErr != nil:
		err = sendErr
	case drainErr != nil:
		err = drainErr
	case closeErr != nil:
		err = closeErr
	}
	return lats, reqs, nAcked, err
}

// ingestTenants drives client i's share of the -tenants fan-out: the
// tenants t ≡ i (mod clients), each as its own substream over its own
// tenant-scoped transport, one after the other — so the daemon sees
// cfg.clients different tenants ingesting at any moment, rotating
// through all cfg.tenants over the run.
func ingestTenants(ctx context.Context, cfg *loadConfig, i int) (lats []time.Duration, reqs, nAcked int, err error) {
	for t := i; t < cfg.tenants; t += cfg.clients {
		s, serr := tenantStream(cfg, t)
		if serr != nil {
			return lats, reqs, nAcked, serr
		}
		var l []time.Duration
		var r, a int
		if cfg.streamAddr != "" {
			l, r, a, err = streamDrive(ctx, cfg, s, tenantName(t))
		} else {
			l, r, a, err = httpDrive(ctx, cfg, s, tenantName(t))
		}
		lats = append(lats, l...)
		reqs += r
		nAcked += a
		if err != nil {
			return lats, reqs, nAcked, fmt.Errorf("tenant %s: %w", tenantName(t), err)
		}
	}
	return lats, reqs, nAcked, nil
}

// httpDrive is streamDrive's HTTP analogue: chunked AddBatch calls on a
// tenant-scoped client, one request's latency per chunk.
func httpDrive(ctx context.Context, cfg *loadConfig, s gen.Stream, tenant string) (lats []time.Duration, reqs, nAcked int, err error) {
	cl := loadClientTenant(cfg, tenant)
	lats = make([]time.Duration, 0, s.Len()/cfg.chunk+1)
	batch := make([]correlated.Tuple, 0, cfg.chunk)
	flush := func() error {
		t0 := time.Now()
		if err := cl.AddBatch(ctx, batch); err != nil {
			return err
		}
		lats = append(lats, time.Since(t0))
		reqs++
		nAcked += len(batch)
		batch = batch[:0]
		return nil
	}
	for {
		t, ok := s.Next()
		if !ok {
			break
		}
		batch = append(batch, correlated.Tuple{X: t.X, Y: t.Y, W: 1})
		if len(batch) == cfg.chunk {
			if err := flush(); err != nil {
				return lats, reqs, nAcked, err
			}
		}
	}
	if len(batch) > 0 {
		if err := flush(); err != nil {
			return lats, reqs, nAcked, err
		}
	}
	return lats, reqs, nAcked, nil
}

// isNotFound reports an HTTP 404 — in -tenants mode, a query racing the
// tenant's first ingest.
func isNotFound(err error) bool {
	var ae *client.APIError
	return errors.As(err, &ae) && ae.Status == http.StatusNotFound
}

// runLoad drives the concurrent load and prints (and optionally writes)
// the report. Any client error aborts the whole run.
func runLoad(cfg *loadConfig) error {
	ctx := context.Background()
	if err := loadClient(cfg).Healthy(ctx); err != nil {
		return fmt.Errorf("target %s not healthy: %w", cfg.target, err)
	}

	var (
		ingestWG   sync.WaitGroup
		queryWG    sync.WaitGroup
		mu         sync.Mutex
		firstErr   error
		ingestLats = make([][]time.Duration, cfg.clients)
		queryLats  = make([][]time.Duration, cfg.queryClients)
		queries    = make([]int, cfg.queryClients)
		acked      atomic.Int64
		requests   atomic.Int64
		ingesting  atomic.Bool
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	ingesting.Store(true)
	start := time.Now()

	// Query-only mode (-query-for): no ingest clients at all; the query
	// loops below run for the configured window. This is how a read
	// replica — which refuses ingest — gets a throughput number.
	ingestClients := cfg.clients
	if cfg.queryFor > 0 {
		ingestClients = 0
	}
	for i := 0; i < ingestClients; i++ {
		ingestWG.Add(1)
		go func(i int) {
			defer ingestWG.Done()
			if cfg.tenants > 1 {
				lats, reqs, nAcked, err := ingestTenants(ctx, cfg, i)
				if err != nil {
					fail(fmt.Errorf("client %d: %w", i, err))
					return
				}
				requests.Add(int64(reqs))
				acked.Add(int64(nAcked))
				ingestLats[i] = lats
				return
			}
			if cfg.streamAddr != "" {
				lats, reqs, nAcked, err := streamIngest(ctx, cfg, i)
				if err != nil {
					fail(fmt.Errorf("stream client %d: %w", i, err))
					return
				}
				requests.Add(int64(reqs))
				acked.Add(int64(nAcked))
				ingestLats[i] = lats
				return
			}
			cl := loadClient(cfg)
			s, err := clientStream(cfg, i)
			if err != nil {
				fail(err)
				return
			}
			lats := make([]time.Duration, 0, s.Len()/cfg.chunk+1)
			batch := make([]correlated.Tuple, 0, cfg.chunk)
			flush := func() bool {
				t0 := time.Now()
				if err := cl.AddBatch(ctx, batch); err != nil {
					fail(fmt.Errorf("client %d: %w", i, err))
					return false
				}
				lats = append(lats, time.Since(t0))
				requests.Add(1)
				acked.Add(int64(len(batch)))
				batch = batch[:0]
				return true
			}
			for {
				t, ok := s.Next()
				if !ok {
					break
				}
				batch = append(batch, correlated.Tuple{X: t.X, Y: t.Y, W: 1})
				if len(batch) == cfg.chunk && !flush() {
					return
				}
			}
			if len(batch) > 0 {
				flush()
			}
			ingestLats[i] = lats
		}(i)
	}
	for q := 0; q < cfg.queryClients; q++ {
		queryWG.Add(1)
		go func(q int) {
			defer queryWG.Done()
			cl := loadClient(cfg)
			if cfg.tenants > 1 {
				// Each query loop hammers one tenant of the fan-out.
				cl = loadClientTenant(cfg, tenantName(q%cfg.tenants))
			}
			var lats []time.Duration
			for ingesting.Load() {
				t0 := time.Now()
				if _, err := cl.QueryBatch(ctx, "le", cfg.cutoffs); err != nil {
					if cfg.tenants > 1 && isNotFound(err) {
						// The tenant's first ingest has not landed yet.
						time.Sleep(time.Millisecond)
						continue
					}
					fail(fmt.Errorf("query client %d: %w", q, err))
					return
				}
				lats = append(lats, time.Since(t0))
				queries[q]++
			}
			queryLats[q] = lats
		}(q)
	}

	// The query loops run exactly as long as the ingest does: the
	// measurement window closes when the last ingest client finishes —
	// or, in query-only mode, when the -query-for window elapses.
	ingestWG.Wait()
	if cfg.queryFor > 0 {
		time.Sleep(cfg.queryFor)
	}
	elapsed := time.Since(start)
	ingesting.Store(false)
	queryWG.Wait()
	if firstErr != nil {
		return firstErr
	}

	var allIngest, allQuery []time.Duration
	for _, l := range ingestLats {
		allIngest = append(allIngest, l...)
	}
	for _, l := range queryLats {
		allQuery = append(allQuery, l...)
	}
	sort.Slice(allIngest, func(i, j int) bool { return allIngest[i] < allIngest[j] })
	sort.Slice(allQuery, func(i, j int) bool { return allQuery[i] < allQuery[j] })
	totalQueries := 0
	for _, n := range queries {
		totalQueries += n
	}

	rep := loadReport{
		Target:       cfg.target,
		Transport:    cfg.transport(),
		Dataset:      cfg.dataset,
		Tuples:       cfg.n,
		Chunk:        cfg.chunk,
		Clients:      cfg.clients,
		QueryClients: cfg.queryClients,
		QueryCutoffs: len(cfg.cutoffs),
		Seconds:      elapsed.Seconds(),

		IngestRequests: int(requests.Load()),
		AckedTuples:    int(acked.Load()),
		IngestReqSec:   float64(requests.Load()) / elapsed.Seconds(),
		AckedTuplesSec: float64(acked.Load()) / elapsed.Seconds(),
		IngestP50Ms:    percentileMs(allIngest, 50),
		IngestP99Ms:    percentileMs(allIngest, 99),

		Queries:    totalQueries,
		QuerySec:   float64(totalQueries) / elapsed.Seconds(),
		QueryP50Ms: percentileMs(allQuery, 50),
		QueryP99Ms: percentileMs(allQuery, 99),

		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}
	if cfg.tenants > 1 {
		rep.Tenants = cfg.tenants
	}
	// Attach the server's stage breakdown so the load report carries
	// where the acknowledged latency went. Best-effort: a stats failure
	// degrades the report, never the run.
	if st, err := loadClient(cfg).Stats(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "corrgen load: stats fetch failed (no stage breakdown): %v\n", err)
	} else {
		rep.Stages = st.PipelineStages
	}

	fmt.Fprintf(os.Stderr,
		"corrgen load (%s): %d clients acked %d tuples in %d requests over %v (%.0f req/s, %.0f tuples/s, ingest p50 %.2fms p99 %.2fms)\n",
		rep.Transport, rep.Clients, rep.AckedTuples, rep.IngestRequests, elapsed.Round(time.Millisecond),
		rep.IngestReqSec, rep.AckedTuplesSec, rep.IngestP50Ms, rep.IngestP99Ms)
	if cfg.queryClients > 0 {
		fmt.Fprintf(os.Stderr,
			"corrgen load: %d query clients answered %d multi-cutoff queries (%.0f q/s, p50 %.2fms p99 %.2fms)\n",
			rep.QueryClients, rep.Queries, rep.QuerySec, rep.QueryP50Ms, rep.QueryP99Ms)
	}
	if cfg.jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "corrgen load: wrote %s\n", cfg.jsonPath)
	}
	return nil
}
