// Command corrbench regenerates the paper's evaluation (Section 5): every
// figure and the prose accuracy/throughput claims, plus the Section 4
// demonstrations. Output is TSV on stdout with '#' comment headers, one
// block per experiment, ready for plotting.
//
// Usage:
//
//	corrbench -fig 2            # F2: space vs epsilon        (Figure 2)
//	corrbench -fig 3            # F2: space vs stream size, eps=0.15 (Figure 3)
//	corrbench -fig 4            #                         eps=0.20 (Figure 4)
//	corrbench -fig 5            #                         eps=0.25 (Figure 5)
//	corrbench -fig 6            # F0: space vs epsilon        (Figure 6)
//	corrbench -fig 7            # F0: space vs stream size    (Figure 7)
//	corrbench -table accuracy-f2
//	corrbench -table accuracy-f0
//	corrbench -table throughput
//	corrbench -table throughput -shards 4   # sharded-engine ingest
//	corrbench -table sharded-scaling        # tuples/sec at P = 1, 2, 4, 8
//	corrbench -table greater-than
//	corrbench -table multipass
//	corrbench -all              # everything, at the default sizes
//
// The paper ran 40–50M-tuple streams; the defaults here are scaled down
// (the findings are visible from ~1M tuples) and -n restores full scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/exact"
	"github.com/streamagg/correlated/internal/gen"
	"github.com/streamagg/correlated/internal/hash"
	"github.com/streamagg/correlated/internal/turnstile"
	"github.com/streamagg/correlated/shard"
)

const (
	ymaxPaper = 1_000_000 // y drawn from [0, 1e6] as in the paper
	xdomF2    = 500_001   // F2 datasets: x in [0, 500000]
	xdomF0    = 1_000_001 // F0 datasets: x in [0, 1000000]
)

var (
	seed   = flag.Uint64("seed", 1, "random seed for generators and sketches")
	shards = flag.Int("shards", 1, "shard the F2 throughput run across N worker goroutines")
)

func main() {
	var (
		fig   = flag.Int("fig", 0, "figure to regenerate (2-7)")
		table = flag.String("table", "", "table to regenerate")
		n     = flag.Int("n", 0, "stream size (0 = per-experiment default)")
		all   = flag.Bool("all", false, "run every experiment")
	)
	flag.Parse()

	switch {
	case *all:
		for f := 2; f <= 7; f++ {
			runFig(f, *n)
		}
		for _, t := range []string{"accuracy-f2", "accuracy-f0", "throughput", "greater-than", "multipass", "multipass-f1"} {
			runTable(t, *n)
		}
	case *fig != 0:
		runFig(*fig, *n)
	case *table != "":
		runTable(*table, *n)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runFig(fig, n int) {
	switch fig {
	case 2:
		fig2(orDefault(n, 2_000_000))
	case 3:
		figSpaceVsN(3, 0.15, orDefault(n, 5_000_000))
	case 4:
		figSpaceVsN(4, 0.20, orDefault(n, 5_000_000))
	case 5:
		figSpaceVsN(5, 0.25, orDefault(n, 5_000_000))
	case 6:
		fig6(orDefault(n, 2_000_000))
	case 7:
		fig7(orDefault(n, 5_000_000))
	default:
		fmt.Fprintf(os.Stderr, "corrbench: unknown figure %d\n", fig)
		os.Exit(2)
	}
}

func runTable(table string, n int) {
	switch table {
	case "accuracy-f2":
		accuracyF2(orDefault(n, 1_000_000))
	case "accuracy-f0":
		accuracyF0(orDefault(n, 1_000_000))
	case "throughput":
		throughput(orDefault(n, 1_000_000))
	case "greater-than":
		greaterThanTable()
	case "multipass":
		multipassTable(orDefault(n, 200_000))
	case "multipass-f1":
		multipassF1Table(orDefault(n, 100_000))
	case "sharded-scaling":
		shardedScaling(orDefault(n, 2_000_000))
	default:
		fmt.Fprintf(os.Stderr, "corrbench: unknown table %q\n", table)
		os.Exit(2)
	}
}

func orDefault(n, def int) int {
	if n > 0 {
		return n
	}
	return def
}

// f2Datasets returns the three Section 5.1 dataset generators.
func f2Datasets(n int) map[string]func() gen.Stream {
	return map[string]func() gen.Stream{
		"uniform": func() gen.Stream { return gen.Uniform(n, xdomF2, ymaxPaper+1, *seed) },
		"zipf1":   func() gen.Stream { return gen.Zipf(n, xdomF2, ymaxPaper+1, 1.0, *seed) },
		"zipf2":   func() gen.Stream { return gen.Zipf(n, xdomF2, ymaxPaper+1, 2.0, *seed) },
	}
}

var f2Order = []string{"uniform", "zipf1", "zipf2"}

func f2Options(eps float64, n int) correlated.Options {
	return correlated.Options{
		Eps: eps, Delta: 0.1, YMax: ymaxPaper,
		MaxStreamLen: uint64(n), MaxX: xdomF2, Seed: *seed,
	}
}

func newF2(eps float64, n int) *correlated.F2Summary {
	s, err := correlated.NewF2Summary(f2Options(eps, n))
	die(err)
	return s
}

// fig2: F2 sketch space versus epsilon (paper Figure 2).
func fig2(n int) {
	fmt.Printf("# Figure 2: F2 summary space (counters) vs epsilon; n=%d, y in [0,1e6], x in [0,500000]\n", n)
	fmt.Println("eps\tdataset\tspace\tstream_tuples")
	for _, eps := range []float64{0.14, 0.16, 0.18, 0.20, 0.22, 0.25} {
		for _, name := range f2Order {
			s := newF2(eps, n)
			feed(f2Datasets(n)[name](), func(x, y uint64) { die(s.Add(x, y)) })
			fmt.Printf("%.2f\t%s\t%d\t%d\n", eps, name, s.Space(), n)
		}
	}
}

// figSpaceVsN: F2 sketch space versus stream size at fixed epsilon
// (paper Figures 3, 4, 5).
func figSpaceVsN(fig int, eps float64, n int) {
	fmt.Printf("# Figure %d: F2 summary space (counters) vs stream size; eps=%.2f\n", fig, eps)
	fmt.Println("n\tdataset\tspace")
	checkpoints := 10
	for _, name := range f2Order {
		s := newF2(eps, n)
		st := f2Datasets(n)[name]()
		step := n / checkpoints
		i := 0
		feed(st, func(x, y uint64) {
			die(s.Add(x, y))
			i++
			if i%step == 0 {
				fmt.Printf("%d\t%s\t%d\n", i, name, s.Space())
			}
		})
	}
}

// f0Datasets returns the four Section 5.2 dataset generators.
func f0Datasets(n int) map[string]func() gen.Stream {
	return map[string]func() gen.Stream{
		"ethernet": func() gen.Stream { return gen.Ethernet(n, *seed) },
		"uniform":  func() gen.Stream { return gen.Uniform(n, xdomF0, ymaxPaper+1, *seed) },
		"zipf1":    func() gen.Stream { return gen.Zipf(n, xdomF0, ymaxPaper+1, 1.0, *seed) },
		"zipf2":    func() gen.Stream { return gen.Zipf(n, xdomF0, ymaxPaper+1, 2.0, *seed) },
	}
}

var f0Order = []string{"ethernet", "uniform", "zipf1", "zipf2"}

func newF0(eps float64, n int, xdom uint64, ymax uint64) *correlated.F0Summary {
	s, err := correlated.NewF0Summary(correlated.Options{
		Eps: eps, Delta: 0.1, YMax: ymax,
		MaxStreamLen: uint64(n), MaxX: xdom, Seed: *seed,
	})
	die(err)
	return s
}

// fig6: F0 sketch space versus epsilon (paper Figure 6). The Ethernet
// trace's small identifier domain (packet sizes) needs far fewer sampling
// levels, reproducing the separated curve of the paper.
func fig6(n int) {
	fmt.Printf("# Figure 6: F0 summary space (sample tuples) vs epsilon; n=%d\n", n)
	fmt.Println("eps\tdataset\tspace\tstream_tuples")
	for _, eps := range []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30} {
		for _, name := range f0Order {
			xdom := uint64(xdomF0)
			ymax := uint64(ymaxPaper)
			if name == "ethernet" {
				xdom = gen.EthernetXDomain
				ymax = uint64(n) // millisecond timestamps
			}
			s := newF0(eps, n, xdom, ymax)
			feed(f0Datasets(n)[name](), func(x, y uint64) { die(s.Add(x, y)) })
			fmt.Printf("%.2f\t%s\t%d\t%d\n", eps, name, s.Space(), n)
		}
	}
}

// fig7: F0 sketch space versus stream size at eps=0.1 (paper Figure 7).
func fig7(n int) {
	fmt.Printf("# Figure 7: F0 summary space (sample tuples) vs stream size; eps=0.1\n")
	fmt.Println("n\tdataset\tspace")
	checkpoints := 10
	for _, name := range []string{"uniform", "zipf1", "zipf2"} {
		s := newF0(0.1, n, xdomF0, ymaxPaper)
		st := f0Datasets(n)[name]()
		step := n / checkpoints
		i := 0
		feed(st, func(x, y uint64) {
			die(s.Add(x, y))
			i++
			if i%step == 0 {
				fmt.Printf("%d\t%s\t%d\n", i, name, s.Space())
			}
		})
	}
}

// accuracyF2 reproduces the prose claim of Section 5.1: relative error
// within eps for the large majority of query cutoffs.
func accuracyF2(n int) {
	fmt.Printf("# Table A (Sec 5.1 prose): correlated F2 relative error vs eps; n=%d\n", n)
	fmt.Println("eps\tdataset\tmean_rel_err\tmax_rel_err\twithin_eps")
	cuts := cutoffs()
	for _, eps := range []float64{0.15, 0.20, 0.25} {
		for _, name := range f2Order {
			s := newF2(eps, n)
			base := exact.New()
			feed(f2Datasets(n)[name](), func(x, y uint64) {
				die(s.Add(x, y))
				base.Add(x, y)
			})
			var sum, max float64
			within := 0
			for _, c := range cuts {
				got, err := s.QueryLE(c)
				die(err)
				want := base.F2(c)
				rel := relErr(got, want)
				sum += rel
				if rel > max {
					max = rel
				}
				if rel <= eps {
					within++
				}
			}
			fmt.Printf("%.2f\t%s\t%.4f\t%.4f\t%d/%d\n",
				eps, name, sum/float64(len(cuts)), max, within, len(cuts))
		}
	}
}

// accuracyF0 does the same for correlated distinct counts (Section 5.2).
func accuracyF0(n int) {
	fmt.Printf("# Table C (Sec 5.2 prose): correlated F0 relative error vs eps; n=%d\n", n)
	fmt.Println("eps\tdataset\tmean_rel_err\tmax_rel_err\twithin_eps")
	cuts := cutoffs()
	for _, eps := range []float64{0.10, 0.20, 0.30} {
		for _, name := range []string{"uniform", "zipf1", "zipf2"} {
			s := newF0(eps, n, xdomF0, ymaxPaper)
			base := exact.New()
			feed(f0Datasets(n)[name](), func(x, y uint64) {
				die(s.Add(x, y))
				base.Add(x, y)
			})
			var sum, max float64
			within := 0
			for _, c := range cuts {
				got, err := s.QueryLE(c)
				die(err)
				want := base.F0(c)
				rel := relErr(got, want)
				sum += rel
				if rel > max {
					max = rel
				}
				if rel <= eps {
					within++
				}
			}
			fmt.Printf("%.2f\t%s\t%.4f\t%.4f\t%d/%d\n",
				eps, name, sum/float64(len(cuts)), max, within, len(cuts))
		}
	}
}

// throughput reports per-record processing rates (Section 5.1 prose).
// With -shards > 1 the F2 rows run through the sharded ingest engine
// instead of a single summary.
func throughput(n int) {
	fmt.Printf("# Table B (Sec 5.1 prose): update throughput; n=%d, eps=0.2, shards=%d\n", n, *shards)
	fmt.Println("summary\tdataset\tadds_per_sec")
	for _, name := range f2Order {
		st := f2Datasets(n)[name]()
		label := "F2"
		var el float64
		if *shards > 1 {
			label = fmt.Sprintf("F2/sharded%d", *shards)
			eng, err := shard.NewF2(f2Options(0.2, n), *shards)
			die(err)
			start := time.Now()
			feed(st, func(x, y uint64) { die(eng.Add(x, y)) })
			die(eng.Flush())
			el = time.Since(start).Seconds()
			die(eng.Close())
		} else {
			s := newF2(0.2, n)
			start := time.Now()
			feed(st, func(x, y uint64) { die(s.Add(x, y)) })
			el = time.Since(start).Seconds()
		}
		fmt.Printf("%s\t%s\t%.0f\n", label, name, float64(n)/el)
	}
	for _, name := range f0Order {
		xdom := uint64(xdomF0)
		ymax := uint64(ymaxPaper)
		if name == "ethernet" {
			xdom, ymax = gen.EthernetXDomain, uint64(n)
		}
		s := newF0(0.1, n, xdom, ymax)
		st := f0Datasets(n)[name]()
		start := time.Now()
		feed(st, func(x, y uint64) { die(s.Add(x, y)) })
		el := time.Since(start).Seconds()
		fmt.Printf("F0\t%s\t%.0f\n", name, float64(n)/el)
	}
}

// greaterThanTable demonstrates Theorem 6/7: single-pass success collapses
// with its space budget; multipass stays exact with polylog space.
func greaterThanTable() {
	const bits = 256
	const trials = 50
	fmt.Printf("# Theorem 6/7 demo: GREATER-THAN on %d-bit inputs, %d trials\n", bits, trials)
	fmt.Println("protocol\tbudget_blocks\tcorrect\tpasses\tspace_counters")
	rng := hash.New(*seed)
	instances := make([][2][]bool, trials)
	for t := range instances {
		a := randomBits(bits, rng)
		b := append([]bool(nil), a...)
		d := 16 + int(rng.Uint64n(bits-32))
		b[d] = !b[d]
		for i := d + 1; i < bits; i++ {
			b[i] = rng.Uint64()&1 == 1
		}
		instances[t] = [2][]bool{a, b}
	}
	for _, budget := range []int{4, 16, 64, 256} {
		right := 0
		var space int64
		for t, inst := range instances {
			res := turnstile.SinglePassGT(inst[0], inst[1], budget, 500+uint64(t))
			if res.Comparison == turnstile.CompareBits(inst[0], inst[1]) {
				right++
			}
			space = res.Space
		}
		fmt.Printf("single-pass\t%d\t%d/%d\t1\t%d\n", budget, right, trials, space)
	}
	right := 0
	var passes int
	var space int64
	for t, inst := range instances {
		res, err := turnstile.SolveGreaterThan(inst[0], inst[1], 0.3, 0.05, 900+uint64(t))
		die(err)
		if res.Comparison == turnstile.CompareBits(inst[0], inst[1]) {
			right++
		}
		passes, space = res.Passes, res.Space
	}
	fmt.Printf("multipass\t-\t%d/%d\t%d\t%d\n", right, trials, passes, space)
}

// multipassTable reports MULTIPASS accuracy/passes/space on ±-weighted
// streams (Theorem 7).
func multipassTable(n int) {
	fmt.Printf("# Theorem 7 demo: MULTIPASS on turnstile streams; n=%d with 40%% deletions\n", n)
	fmt.Println("eps\tmax_rel_err\tallowed\tpasses\tspace_counters")
	const ymax = 1<<16 - 1
	rng := hash.New(*seed + 7)
	tape := correlated.NewTape(nil)
	base := exact.New()
	for i := 0; i < n/5; i++ {
		y := rng.Uint64n(ymax + 1)
		var xs [5]uint64
		for k := 0; k < 5; k++ {
			xs[k] = rng.Uint64n(10_000)
			tape.Append(correlated.Record{X: xs[k], Y: y, W: 1})
			base.AddWeighted(xs[k], y, 1)
		}
		for k := 0; k < 2; k++ {
			tape.Append(correlated.Record{X: xs[k], Y: y, W: -1})
			base.AddWeighted(xs[k], y, -1)
		}
	}
	for _, eps := range []float64{0.10, 0.20, 0.30} {
		res, err := correlated.RunMultipass(tape, correlated.MultipassConfig{
			Eps: eps, Delta: 0.05, YMax: ymax, Seed: *seed,
		})
		die(err)
		var maxRel float64
		for _, c := range []uint64{1 << 10, 1 << 12, 1 << 14, ymax} {
			rel := relErr(res.Query(c), base.F2(c))
			if rel > maxRel {
				maxRel = rel
			}
		}
		allowed := (1+eps)*(1+eps) - 1
		fmt.Printf("%.2f\t%.4f\t%.4f\t%d\t%d\n", eps, maxRel, allowed, res.Passes, res.Space)
	}
}

// multipassF1Table runs MULTIPASS with the Cauchy L1 estimator: correlated
// first moment of net weights over a turnstile stream.
func multipassF1Table(n int) {
	fmt.Printf("# Theorem 7 demo (F1 variant): MULTIPASS with the Cauchy L1 estimator; n=%d\n", n)
	fmt.Println("eps\tmax_rel_err\tallowed\tpasses\tspace_counters")
	const ymax = 1<<12 - 1
	rng := hash.New(*seed + 11)
	tape := correlated.NewTape(nil)
	base := exact.New()
	for i := 0; i < n/3; i++ {
		y := rng.Uint64n(ymax + 1)
		x := rng.Uint64n(5_000)
		tape.Append(correlated.Record{X: x, Y: y, W: 2})
		base.AddWeighted(x, y, 2)
		tape.Append(correlated.Record{X: x, Y: y, W: -1})
		base.AddWeighted(x, y, -1)
	}
	for _, eps := range []float64{0.20, 0.30} {
		res, err := correlated.RunMultipass(tape, correlated.MultipassConfig{
			Eps: eps, Delta: 0.05, YMax: ymax, F: correlated.MultipassF1, Seed: *seed,
		})
		die(err)
		var maxRel float64
		for _, c := range []uint64{1 << 8, 1 << 10, ymax} {
			rel := relErr(res.Query(c), base.Fk(c, 1))
			if rel > maxRel {
				maxRel = rel
			}
		}
		allowed := (1+eps)*(1+eps) - 1
		fmt.Printf("%.2f\t%.4f\t%.4f\t%d\t%d\n", eps, maxRel, allowed, res.Passes, res.Space)
	}
}

// shardedScaling sweeps the sharded F2 engine over P = 1, 2, 4, 8 on the
// uniform dataset and reports ingest throughput plus a query sanity
// check. Scaling past P=1 requires at least P+1 free cores.
func shardedScaling(n int) {
	fmt.Printf("# Sharded ingest scaling: F2, uniform dataset, eps=0.2, n=%d, GOMAXPROCS=%d\n",
		n, runtime.GOMAXPROCS(0))
	fmt.Println("shards\tadds_per_sec\tquery_le_half")
	for _, p := range []int{1, 2, 4, 8} {
		eng, err := shard.NewF2(f2Options(0.2, n), p)
		die(err)
		st := gen.Uniform(n, xdomF2, ymaxPaper+1, *seed)
		start := time.Now()
		feed(st, func(x, y uint64) { die(eng.Add(x, y)) })
		die(eng.Flush())
		el := time.Since(start).Seconds()
		est, err := eng.QueryLE(ymaxPaper / 2)
		die(err)
		die(eng.Close())
		fmt.Printf("%d\t%.0f\t%.3g\n", p, float64(n)/el, est)
	}
}

func cutoffs() []uint64 {
	var out []uint64
	for i := 1; i <= 10; i++ {
		out = append(out, uint64(i)*ymaxPaper/10)
	}
	return out
}

func feed(st gen.Stream, fn func(x, y uint64)) {
	for {
		t, ok := st.Next()
		if !ok {
			return
		}
		fn(t.X, t.Y)
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

func randomBits(n int, rng *hash.RNG) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Uint64()&1 == 1
	}
	return out
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "corrbench: %v\n", err)
		os.Exit(1)
	}
}
