// Command corrquery ingests a CSV stream of "x,y" tuples (as produced by
// corrgen, or exported flow logs) and answers interactive drill-down
// queries from stdin — the paper's motivating workflow as a tool.
//
// Usage:
//
//	corrquery -in data.csv [-eps 0.15] [-delta 0.1] [-ymax 1048575]
//	          [-xdom 1048576] [-n 16777216] [-seed 1]
//
// Then on stdin, one query per line:
//
//	quantile 0.95      → the 95th-percentile y value
//	count le 5000      → COUNT of tuples with y <= 5000
//	count ge 5000
//	f2 le 5000         → F2 of identifiers among tuples with y <= 5000
//	f2 ge 5000
//	f0 le 5000         → distinct identifiers among tuples with y <= 5000
//	f0 ge 5000
//	rarity le 5000     → fraction of selected identifiers seen exactly once
//	space              → summary sizes
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	correlated "github.com/streamagg/correlated"
)

func main() {
	var (
		in    = flag.String("in", "", "input CSV of x,y tuples (required)")
		eps   = flag.Float64("eps", 0.15, "relative error")
		delta = flag.Float64("delta", 0.1, "failure probability")
		ymax  = flag.Uint64("ymax", 1<<20-1, "largest y value")
		xdom  = flag.Uint64("xdom", 1<<20, "identifier domain size")
		n     = flag.Uint64("n", 1<<24, "stream length bound")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "corrquery: -in is required")
		os.Exit(2)
	}

	opts := correlated.Options{
		Eps: *eps, Delta: *delta, YMax: *ymax,
		MaxStreamLen: *n, MaxX: *xdom, Seed: *seed,
		Predicate: correlated.Both,
	}
	f2, err := correlated.NewF2Summary(opts)
	die(err)
	f0, err := correlated.NewF0Summary(opts)
	die(err)
	cnt, err := correlated.NewCountSummary(opts)
	die(err)
	quant, err := correlated.NewQuantiles(minf(*eps, 0.02))
	die(err)

	f, err := os.Open(*in)
	die(err)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var rows uint64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		comma := strings.IndexByte(line, ',')
		if comma < 0 {
			continue
		}
		x, err1 := strconv.ParseUint(line[:comma], 10, 64)
		y, err2 := strconv.ParseUint(line[comma+1:], 10, 64)
		if err1 != nil || err2 != nil {
			continue
		}
		die(f2.Add(x, y))
		die(f0.Add(x, y))
		die(cnt.Add(x, y))
		quant.Add(y)
		rows++
	}
	die(sc.Err())
	f.Close()
	fmt.Printf("ingested %d tuples; ready (type 'help')\n", rows)

	repl := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !repl.Scan() {
			return
		}
		fields := strings.Fields(strings.ToLower(repl.Text()))
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("quantile <phi> | count|f2|f0|rarity le|ge <c> | space | quit")
		case "space":
			fmt.Printf("f2=%d f0=%d count=%d quantiles=%d (stream=%d)\n",
				f2.Space(), f0.Space(), cnt.Space(), quant.Space(), rows)
		case "quantile":
			if len(fields) != 2 {
				fmt.Println("usage: quantile <phi>")
				continue
			}
			phi, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				fmt.Println("bad phi:", err)
				continue
			}
			v, err := quant.Query(phi)
			answer(float64(v), err)
		case "count", "f2", "f0", "rarity":
			if len(fields) != 3 || (fields[1] != "le" && fields[1] != "ge") {
				fmt.Printf("usage: %s le|ge <c>\n", fields[0])
				continue
			}
			c, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				fmt.Println("bad cutoff:", err)
				continue
			}
			le := fields[1] == "le"
			switch fields[0] {
			case "count":
				answer(dir(le, cnt.QueryLE, cnt.QueryGE)(c))
			case "f2":
				answer(dir(le, f2.QueryLE, f2.QueryGE)(c))
			case "f0":
				answer(dir(le, f0.QueryLE, f0.QueryGE)(c))
			case "rarity":
				answer(dir(le, f0.RarityLE, f0.RarityGE)(c))
			}
		default:
			fmt.Println("unknown command; type 'help'")
		}
	}
}

func dir(le bool, leFn, geFn func(uint64) (float64, error)) func(uint64) (float64, error) {
	if le {
		return leFn
	}
	return geFn
}

func answer(v float64, err error) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%.6g\n", v)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "corrquery: %v\n", err)
		os.Exit(1)
	}
}
