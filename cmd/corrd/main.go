// Command corrd is the correlated-aggregation network daemon: the
// paper's site/coordinator model as an HTTP service over the mergeable
// summaries and the sharded ingest engine.
//
// Coordinator (the default role) — ingest tuples, merge site pushes,
// answer queries:
//
//	corrd -addr :7070 -agg f2 -eps 0.15 -delta 0.1 -ymax 1048575 \
//	      -shards 4 -snapshot /var/lib/corrd/f2.snapshot \
//	      -wal-dir /var/lib/corrd/wal -wal-fsync always
//
// With -wal-dir set, every acknowledged ingest batch and push image is
// appended to a write-ahead log before the HTTP 200; startup restores
// the snapshot and replays the log suffix, so a kill -9 loses nothing
// that was acknowledged (under -wal-fsync=always). Snapshots checkpoint
// and prune the log. Concurrent ingest requests are group-committed:
// everything queued while the previous group was fsyncing is applied,
// drained, and made durable as one unit (one fsync, one engine drain,
// up to -ingest-group-max requests), so acknowledged throughput under
// -wal-fsync=always scales with the offered concurrency instead of
// being gated by fsync latency times request count. Queries are served
// from an epoch-keyed merged-summary cache and do not block ingest.
//
// With -stream-addr set, the daemon also serves the persistent
// length-framed streaming-ingest transport on that address: clients
// (client.DialStream, corrgen -stream) hold one TCP connection, pump
// counted tuple-batch frames back-to-back, and read per-frame acks that
// carry the WAL group LSN — the wire-speed alternative to per-request
// HTTP ingest, riding the same group-commit pipeline and the same
// durability contract.
//
// Every ingest, push, and query endpoint accepts a ?tenant=NAME key
// selecting one of N independent summaries behind the same daemon (the
// streaming transport carries the key per frame); the WAL and snapshot
// keep each tenant's recovery byte-exact. -max-tenants and
// -max-tenant-bytes cap the namespace, and -tenant-idle-spill compacts
// idle tenants to their marshaled images until their next touch.
//
// Site — summarize a local stream and push merged images upstream every
// -push-interval, resetting after each acknowledged push:
//
//	corrd -addr :7071 -push-to http://coordinator:7070 \
//	      -agg f2 -eps 0.15 -delta 0.1 -ymax 1048575 -seed 42
//
// Sites and their coordinator must share every summary flag (-agg, -k,
// -eps, -delta, -ymax, -maxn, -maxx, -seed, -pred, and the alpha
// overrides) verbatim: the seed regenerates the hash functions, and
// mismatched configurations are rejected at push time with HTTP 409.
//
// Replica — follow a primary's WAL over its -stream-addr and serve the
// read path as a warm standby:
//
//	corrd -addr :7072 -role=replica -primary coordinator:7071 \
//	      -primary-timeout 10s -admin-token s3cret \
//	      -agg f2 -eps 0.15 -delta 0.1 -ymax 1048575 -seed 42
//
// A replica replays the primary's log continuously into a live engine
// registry (every tenant, byte-exact), answers /v1/query, /v1/stats,
// and /v1/summary from the same epoch-cached read path as a primary,
// and rejects writes with HTTP 503. /v1/stats and /metrics expose the
// replication lag in records and seconds. Failover: POST /v1/promote
// (gated by -admin-token) — or -primary-timeout of total primary
// silence — promotes the replica in place: it seals its replayed log
// position, opens its own WAL in -wal-dir numbered from the next LSN,
// and begins accepting writes. Replicas must share the primary's
// summary flags, exactly like sites.
//
// Endpoints: POST /v1/ingest (binary tuple stream or text/csv
// "x,y[,w]" lines), POST /v1/push (marshaled summary image),
// GET /v1/query?op=le|ge&c=N, GET /v1/stats, GET /v1/summary,
// POST /v1/promote (replica → primary, admin-gated),
// GET /healthz, GET /metrics (Prometheus text).
//
// Edge hardening: -http-read-header-timeout, -http-read-timeout, and
// -http-idle-timeout bound slow-loris and idle keep-alive connections
// on the main and debug listeners (the streaming transport enforces its
// own per-frame deadlines), alongside the -max-body request cap.
//
// Observability: -access-log writes one JSON line per HTTP request and
// stream frame (request IDs accepted or minted via X-Request-ID) from a
// lock-cheap ring buffer that drops rather than blocks the hot path;
// -slow-request promotes slow requests to the main logger; -debug-addr
// serves net/http/pprof on a separate listener. /metrics carries the
// commit pipeline's per-stage latency histograms
// (corrd_pipeline_stage_seconds) alongside WAL, snapshot, tenant, and
// Go runtime series.
//
// SIGINT/SIGTERM trigger a graceful shutdown: drain HTTP, flush the
// shards, final push (site role), final snapshot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/fault"
	"github.com/streamagg/correlated/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":7070", "listen address")
		streamAddr = flag.String("stream-addr", "", "streaming-ingest listen address (empty = disabled); serves the persistent length-framed transport")
		agg        = flag.String("agg", "f2", "aggregate: f2, fk, count, or sum")
		k          = flag.Int("k", 3, "moment order for -agg fk")
		eps        = flag.Float64("eps", 0.15, "target relative error ε ∈ (0,1)")
		delta      = flag.Float64("delta", 0.1, "failure probability δ ∈ (0,1)")
		ymax       = flag.Uint64("ymax", 1<<20-1, "largest y value")
		maxn       = flag.Uint64("maxn", 1<<32, "stream length bound")
		maxx       = flag.Uint64("maxx", 1<<32, "identifier bound (SUM/F0 sizing)")
		seed       = flag.Uint64("seed", 1, "hash seed; must match across sites and coordinator")
		pred       = flag.String("pred", "both", "query directions: le, ge, or both")
		alpha      = flag.Int("alpha", 0, "per-level bucket capacity override (0 = derive)")
		shards     = flag.Int("shards", 1, "parallel ingest shards")
		groupMax   = flag.Int("ingest-group-max", 256, "max ingest requests committed (and fsynced) as one group")
		maxStale   = flag.Duration("query-max-stale", 0, "serve queries from a cached merged summary up to this old (0 = rebuild whenever state moved)")

		snapshot     = flag.String("snapshot", "", "snapshot file path (empty = no durability)")
		snapInterval = flag.Duration("snapshot-interval", 30*time.Second, "time between snapshots")
		snapKeep     = flag.Int("snapshot-keep", 2, "snapshot retention slots (path, path.1, ...); restore falls back past a corrupt newest")

		walDir      = flag.String("wal-dir", "", "write-ahead log directory (empty = no WAL); with a WAL every acknowledged ingest/push survives kill -9")
		walFsync    = flag.String("wal-fsync", "always", "WAL fsync policy: always, interval, or off")
		walFsyncInt = flag.Duration("wal-fsync-interval", 100*time.Millisecond, "fsync ticker period for -wal-fsync=interval")
		walSegBytes = flag.Int64("wal-segment-bytes", 64<<20, "WAL segment rotation threshold")

		pushTo       = flag.String("push-to", "", "coordinator base URL; setting it makes this daemon a site")
		pushInterval = flag.Duration("push-interval", 5*time.Second, "time between site pushes")

		roleFlag       = flag.String("role", "", `force the role: "replica" follows -primary and serves reads only (empty = coordinator, or site with -push-to)`)
		primary        = flag.String("primary", "", "primary's stream address (host:port) to replicate the WAL from; requires -role=replica")
		primaryTimeout = flag.Duration("primary-timeout", 0, "replica auto-promotes itself after this much total primary silence (0 = promote only on POST /v1/promote)")
		heartbeatInt   = flag.Duration("heartbeat-interval", time.Second, "primary→replica heartbeat period on replication connections")
		adminToken     = flag.String("admin-token", "", "X-Admin-Token required on POST /v1/promote (empty = promotion over HTTP disabled)")

		maxBody = flag.Int64("max-body", 64<<20, "request body cap in bytes")

		readHeaderTO = flag.Duration("http-read-header-timeout", 10*time.Second, "time allowed to read a request's headers on the main and debug listeners")
		readTO       = flag.Duration("http-read-timeout", 0, "time allowed to read a full request including body (0 = unlimited; bodies are capped by -max-body)")
		idleTO       = flag.Duration("http-idle-timeout", 2*time.Minute, "keep-alive connections idle longer than this are closed (0 = unlimited)")

		accessLog = flag.String("access-log", "", `structured access-log file path ("-" = stderr, empty = disabled); one JSON line per HTTP request and stream frame`)
		slowReq   = flag.Duration("slow-request", 0, "also log requests slower than this to the main logger (0 = never)")
		debugAddr = flag.String("debug-addr", "", "net/http/pprof listen address (empty = disabled); keep it loopback-only in production")

		maxTenants     = flag.Int("max-tenants", 0, "tenant count cap (0 = unlimited); creation past it gets HTTP 429")
		maxTenantBytes = flag.Int64("max-tenant-bytes", 0, "aggregate tenant memory cap in bytes (0 = unlimited); creation past it gets HTTP 413")
		tenantIdle     = flag.Duration("tenant-idle-spill", 0, "spill tenants idle longer than this to compact in-memory images (0 = never)")

		queueMax  = flag.Int("ingest-queue-max", 4096, "commit-pipeline queue bound; requests past it are shed with HTTP 429 / AckBusy (0 = unbounded)")
		faultPlan = flag.String("fault-plan", "", `fault-injection plan for WAL/snapshot I/O, e.g. "sync:err@3+;write:enospc@4096" (testing only; empty = disabled, "off" = injector armed but idle, reconfigurable via POST /v1/fault)`)
	)
	flag.Parse()

	var predicate correlated.Predicate
	switch *pred {
	case "le":
		predicate = correlated.LE
	case "ge":
		predicate = correlated.GE
	case "both":
		predicate = correlated.Both
	default:
		fmt.Fprintf(os.Stderr, "corrd: bad -pred %q (want le, ge, or both)\n", *pred)
		os.Exit(2)
	}

	switch *roleFlag {
	case "":
		if *primary != "" {
			fmt.Fprintln(os.Stderr, "corrd: -primary requires -role=replica")
			os.Exit(2)
		}
	case "replica":
		if *primary == "" {
			fmt.Fprintln(os.Stderr, "corrd: -role=replica requires -primary=HOST:PORT")
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "corrd: bad -role %q (want replica or empty)\n", *roleFlag)
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)

	// A non-empty -fault-plan arms the injector between corrd and the
	// real filesystem — "off" arms it with no active rules, so a test
	// harness can inject later through POST /v1/fault. An armed injector
	// is loudly logged: it exists to break durability on purpose.
	var faultFS fault.FS
	if *faultPlan != "" {
		plan, err := fault.ParsePlan(*faultPlan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "corrd: -fault-plan: %v\n", err)
			os.Exit(2)
		}
		inj := fault.NewInjector(fault.OS())
		inj.SetPlan(plan)
		faultFS = inj
		logger.Printf("corrd: FAULT INJECTION ARMED (testing only): plan %q", *faultPlan)
	}

	var accessW io.Writer
	var accessFile *os.File
	switch *accessLog {
	case "":
	case "-":
		accessW = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "corrd: access log: %v\n", err)
			os.Exit(1)
		}
		accessW, accessFile = f, f
	}

	svc, err := service.New(service.Config{
		Aggregate: *agg,
		K:         *k,
		Options: correlated.Options{
			Eps: *eps, Delta: *delta, YMax: *ymax,
			MaxStreamLen: *maxn, MaxX: *maxx, Seed: *seed,
			Predicate: predicate, Alpha: *alpha,
		},
		Shards:            *shards,
		IngestGroupMax:    *groupMax,
		QueryMaxStale:     *maxStale,
		SnapshotPath:      *snapshot,
		SnapshotInterval:  *snapInterval,
		SnapshotKeep:      *snapKeep,
		WALDir:            *walDir,
		WALFsync:          *walFsync,
		WALFsyncInterval:  *walFsyncInt,
		WALSegmentBytes:   *walSegBytes,
		PushTo:            *pushTo,
		PushInterval:      *pushInterval,
		PrimaryAddr:       *primary,
		PrimaryTimeout:    *primaryTimeout,
		HeartbeatInterval: *heartbeatInt,
		AdminToken:        *adminToken,
		MaxBodyBytes:      *maxBody,
		IngestQueueMax:    *queueMax,
		FS:                faultFS,
		MaxTenants:        *maxTenants,
		MaxTenantBytes:    *maxTenantBytes,
		TenantIdleSpill:   *tenantIdle,
		AccessLog:         accessW,
		SlowRequest:       *slowReq,
		Logger:            logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "corrd: %v\n", err)
		os.Exit(1)
	}
	if svc.Restored() {
		logger.Printf("corrd: restored state from %s", *snapshot)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: *readHeaderTO,
		ReadTimeout:       *readTO,
		IdleTimeout:       *idleTO,
	}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("corrd: %s role listening on %s (agg=%s shards=%d)",
			roleOf(*pushTo, *primary), *addr, *agg, *shards)
		errc <- httpSrv.ListenAndServe()
	}()
	if *streamAddr != "" {
		ln, err := net.Listen("tcp", *streamAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "corrd: stream listen: %v\n", err)
			svc.Close()
			os.Exit(1)
		}
		go func() {
			logger.Printf("corrd: streaming ingest listening on %s", *streamAddr)
			if err := svc.ServeStream(ln); err != nil {
				errc <- fmt.Errorf("stream serve: %w", err)
			}
		}()
	}
	if *debugAddr != "" {
		// The profiling surface is its own listener on purpose: the
		// serving address never exposes pprof, and a debug-listener
		// failure only loses profiling, never the daemon.
		debugSrv := &http.Server{
			Addr:              *debugAddr,
			Handler:           service.DebugHandler(),
			ReadHeaderTimeout: *readHeaderTO,
			ReadTimeout:       *readTO,
			IdleTimeout:       *idleTO,
		}
		go func() {
			logger.Printf("corrd: debug (pprof) listening on %s", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("corrd: debug serve: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Printf("corrd: shutting down")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "corrd: serve: %v\n", err)
		svc.Close()
		os.Exit(1)
	}

	// Drain in-flight requests, then flush/push/snapshot via Close.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("corrd: http shutdown: %v", err)
	}
	if err := svc.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "corrd: close: %v\n", err)
		os.Exit(1)
	}
	if accessFile != nil {
		// Close drained the access-log ring; the file can close now.
		if err := accessFile.Close(); err != nil {
			logger.Printf("corrd: access log close: %v", err)
		}
	}
	logger.Printf("corrd: clean shutdown")
}

func roleOf(pushTo, primary string) string {
	switch {
	case primary != "":
		return "replica"
	case pushTo != "":
		return "site"
	}
	return "coordinator"
}
