// Command benchjson converts `go test -bench` text output (the format
// benchmarks/latest.txt stores) into the machine-readable
// benchmarks/latest.json, folding in the service-level load reports when
// they exist — one JSON file per bench run, so the perf trajectory is
// trackable across PRs by tooling instead of by eyeball.
//
// Usage:
//
//	benchjson -in benchmarks/latest.txt -out benchmarks/latest.json \
//	          -load ingest=benchmarks/service-load-ingest.json \
//	          -load mixed=benchmarks/service-load-mixed.json
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// Output is the benchmarks/latest.json document: the benchmark table
// plus the machine disclosure the text format carries in its headers,
// and the service-level load reports keyed by phase.
type Output struct {
	GOOS        string                     `json:"goos,omitempty"`
	GOARCH      string                     `json:"goarch,omitempty"`
	CPU         string                     `json:"cpu,omitempty"`
	Benchmarks  []Benchmark                `json:"benchmarks"`
	ServiceLoad map[string]json.RawMessage `json:"service_load,omitempty"`
}

// loadFlags collects repeated -load phase=path arguments.
type loadFlags map[string]string

func (l loadFlags) String() string { return fmt.Sprint(map[string]string(l)) }
func (l loadFlags) Set(v string) error {
	phase, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want phase=path, got %q", v)
	}
	l[phase] = path
	return nil
}

func main() {
	in := flag.String("in", "benchmarks/latest.txt", "go test -bench output to parse")
	out := flag.String("out", "benchmarks/latest.json", "JSON file to write")
	loads := loadFlags{}
	flag.Var(&loads, "load", "service load report to fold in, as phase=path (repeatable; missing files are skipped)")
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	var doc Output
	pkg := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				b.Pkg = pkg
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	for phase, path := range loads {
		raw, err := os.ReadFile(path)
		if errors.Is(err, fs.ErrNotExist) {
			continue // a phase that was not run this time is not an error
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if !json.Valid(raw) {
			fmt.Fprintf(os.Stderr, "benchjson: %s is not valid JSON\n", path)
			os.Exit(1)
		}
		if doc.ServiceLoad == nil {
			doc.ServiceLoad = map[string]json.RawMessage{}
		}
		doc.ServiceLoad[phase] = json.RawMessage(raw)
	}

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks, %d load phases)\n", *out, len(doc.Benchmarks), len(doc.ServiceLoad))
}

// parseBench parses one result line:
//
//	BenchmarkName-8   500000   1207 ns/op   46 B/op   0 allocs/op
//
// The GOMAXPROCS suffix is stripped from the name so results compare
// across machines, matching scripts/bench-compare.sh.
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "MB/s":
			b.MBPerS = v
		}
	}
	if b.NsPerOp == 0 && b.MBPerS == 0 {
		return Benchmark{}, false
	}
	return b, true
}
