package correlated

import (
	"errors"

	"github.com/streamagg/correlated/internal/dyadic"
	"github.com/streamagg/correlated/internal/heavy"
)

// HeavyHitter is one reported correlated heavy hitter.
type HeavyHitter struct {
	// X is the identifier.
	X uint64
	// Freq is the estimated frequency among selected tuples.
	Freq float64
}

// HeavyHittersSummary reports the correlated F2 heavy hitters of
// Section 3.3: identifiers whose squared selected frequency is at least
// phi·F2(c), with phi supplied at query time alongside the cutoff.
type HeavyHittersSummary struct {
	le   *heavy.Summary
	ge   *heavy.Summary
	ymax uint64
}

// NewHeavyHittersSummary builds a heavy-hitters summary.
func NewHeavyHittersSummary(o Options) (*HeavyHittersSummary, error) {
	if o.YMax == 0 {
		return nil, errors.New("correlated: YMax must be positive")
	}
	cfg := heavy.Config{
		Eps: o.Eps, Delta: o.Delta, YMax: o.YMax,
		MaxStreamLen: o.MaxStreamLen, Seed: o.Seed,
	}
	s := &HeavyHittersSummary{ymax: dyadic.RoundYMax(o.YMax)}
	var err error
	if o.Predicate == LE || o.Predicate == Both {
		if s.le, err = heavy.New(cfg); err != nil {
			return nil, err
		}
	}
	if o.Predicate == GE || o.Predicate == Both {
		cfg.Seed ^= 0x6d6972726f72
		if s.ge, err = heavy.New(cfg); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Add inserts the tuple (x, y).
func (s *HeavyHittersSummary) Add(x, y uint64) error {
	if y > s.ymax {
		return errors.New("correlated: y exceeds YMax")
	}
	if s.le != nil {
		if err := s.le.Add(x, y); err != nil {
			return err
		}
	}
	if s.ge != nil {
		if err := s.ge.Add(x, s.ymax-y); err != nil {
			return err
		}
	}
	return nil
}

// QueryLE reports heavy hitters among tuples with y <= c.
func (s *HeavyHittersSummary) QueryLE(c uint64, phi float64) ([]HeavyHitter, error) {
	if s.le == nil {
		return nil, ErrDirection
	}
	return convertHH(s.le.Query(c, phi))
}

// QueryGE reports heavy hitters among tuples with y >= c.
func (s *HeavyHittersSummary) QueryGE(c uint64, phi float64) ([]HeavyHitter, error) {
	if s.ge == nil {
		return nil, ErrDirection
	}
	if c > s.ymax {
		return nil, nil
	}
	return convertHH(s.ge.Query(s.ymax-c, phi))
}

// F2LE estimates F2 over tuples with y <= c on the same structure.
func (s *HeavyHittersSummary) F2LE(c uint64) (float64, error) {
	if s.le == nil {
		return 0, ErrDirection
	}
	return s.le.F2(c)
}

// Space reports stored counters/tuples.
func (s *HeavyHittersSummary) Space() int64 {
	var sp int64
	if s.le != nil {
		sp += s.le.Space()
	}
	if s.ge != nil {
		sp += s.ge.Space()
	}
	return sp
}

// FkHeavyHittersSummary generalizes the correlated heavy hitters to any
// moment order k >= 2: QueryLE reports identifiers whose selected
// frequency to the k-th power reaches phi·Fk(c).
type FkHeavyHittersSummary struct {
	le   *heavy.FkSummary
	ge   *heavy.FkSummary
	ymax uint64
}

// NewFkHeavyHittersSummary builds an Fk heavy-hitters summary.
func NewFkHeavyHittersSummary(k int, o Options) (*FkHeavyHittersSummary, error) {
	if o.YMax == 0 {
		return nil, errors.New("correlated: YMax must be positive")
	}
	cfg := heavy.Config{
		Eps: o.Eps, Delta: o.Delta, YMax: o.YMax,
		MaxStreamLen: o.MaxStreamLen, Seed: o.Seed,
	}
	s := &FkHeavyHittersSummary{ymax: dyadic.RoundYMax(o.YMax)}
	var err error
	if o.Predicate == LE || o.Predicate == Both {
		if s.le, err = heavy.NewFk(k, cfg); err != nil {
			return nil, err
		}
	}
	if o.Predicate == GE || o.Predicate == Both {
		cfg.Seed ^= 0x6d6972726f72
		if s.ge, err = heavy.NewFk(k, cfg); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Add inserts the tuple (x, y).
func (s *FkHeavyHittersSummary) Add(x, y uint64) error {
	if y > s.ymax {
		return errors.New("correlated: y exceeds YMax")
	}
	if s.le != nil {
		if err := s.le.Add(x, y); err != nil {
			return err
		}
	}
	if s.ge != nil {
		if err := s.ge.Add(x, s.ymax-y); err != nil {
			return err
		}
	}
	return nil
}

// QueryLE reports Fk heavy hitters among tuples with y <= c.
func (s *FkHeavyHittersSummary) QueryLE(c uint64, phi float64) ([]HeavyHitter, error) {
	if s.le == nil {
		return nil, ErrDirection
	}
	return convertHH(s.le.Query(c, phi))
}

// QueryGE reports Fk heavy hitters among tuples with y >= c.
func (s *FkHeavyHittersSummary) QueryGE(c uint64, phi float64) ([]HeavyHitter, error) {
	if s.ge == nil {
		return nil, ErrDirection
	}
	if c > s.ymax {
		return nil, nil
	}
	return convertHH(s.ge.Query(s.ymax-c, phi))
}

// Space reports stored counters/tuples.
func (s *FkHeavyHittersSummary) Space() int64 {
	var sp int64
	if s.le != nil {
		sp += s.le.Space()
	}
	if s.ge != nil {
		sp += s.ge.Space()
	}
	return sp
}

func convertHH(items []heavy.Item, err error) ([]HeavyHitter, error) {
	if err != nil {
		return nil, err
	}
	out := make([]HeavyHitter, len(items))
	for i, it := range items {
		out[i] = HeavyHitter{X: it.X, Freq: it.Freq}
	}
	return out, nil
}
