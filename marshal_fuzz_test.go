package correlated_test

import (
	"testing"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/hash"
)

// FuzzMergeMarshaled exercises the exact byte surface corrd's /v1/push
// hands to the library: the dual-summary wire framing plus the embedded
// core images, against a dual-direction receiver. Hostile bytes must be
// rejected with typed errors, never panic, and never leave the receiver
// unusable. (The per-format decode walks have their own fuzz targets in
// internal/core and internal/corrf0; this one covers the outer framing
// and the two-phase parse/apply atomicity.)
func FuzzMergeMarshaled(f *testing.F) {
	opts := correlated.Options{
		Eps: 0.25, Delta: 0.1, YMax: 1<<10 - 1,
		MaxStreamLen: 1 << 14, MaxX: 1 << 10,
		Alpha: 8, Seed: 11, Predicate: correlated.Both,
	}
	newSum := func(tb testing.TB) *correlated.F2Summary {
		s, err := correlated.NewF2Summary(opts)
		if err != nil {
			tb.Fatal(err)
		}
		return s
	}
	site := newSum(f)
	rng := hash.New(2)
	for i := 0; i < 4_000; i++ {
		if err := site.Add(rng.Uint64n(1<<9), rng.Uint64n(1<<10)); err != nil {
			f.Fatal(err)
		}
	}
	img, err := site.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:len(img)/2])
	f.Add(img[:2])
	corrupt := append([]byte(nil), img...)
	corrupt[len(corrupt)/2] ^= 0x10
	f.Add(corrupt)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recv := newSum(t)
		for i := 0; i < 50; i++ {
			if err := recv.Add(uint64(i), uint64(i%1024)); err != nil {
				t.Fatal(err)
			}
		}
		if err := recv.MergeMarshaled(data); err != nil {
			return
		}
		if err := recv.Add(1, 1); err != nil {
			t.Fatalf("add after accepted push: %v", err)
		}
		if _, err := recv.MarshalBinary(); err != nil {
			t.Fatalf("re-marshal after accepted push: %v", err)
		}
		if _, err := recv.QueryLE(1 << 9); err != nil && err != correlated.ErrNoLevel {
			t.Fatalf("query after accepted push: %v", err)
		}
	})
}
