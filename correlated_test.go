package correlated_test

import (
	"math"
	"testing"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/exact"
	"github.com/streamagg/correlated/internal/gen"
)

func opts(pred correlated.Predicate, seed uint64) correlated.Options {
	return correlated.Options{
		Eps: 0.15, Delta: 0.1, YMax: 1<<16 - 1,
		MaxStreamLen: 1 << 20, MaxX: 1 << 20,
		Seed: seed, Predicate: pred,
	}
}

func TestF2SummaryBothDirections(t *testing.T) {
	s, err := correlated.NewF2Summary(opts(correlated.Both, 1))
	if err != nil {
		t.Fatal(err)
	}
	base := exact.New()
	st := gen.Uniform(150000, 3000, 1<<16, 7)
	for {
		tp, ok := st.Next()
		if !ok {
			break
		}
		if err := s.Add(tp.X, tp.Y); err != nil {
			t.Fatal(err)
		}
		base.Add(tp.X, tp.Y)
	}
	for _, c := range []uint64{1 << 13, 1 << 14, 1 << 15} {
		le, err := s.QueryLE(c)
		if err != nil {
			t.Fatalf("LE %d: %v", c, err)
		}
		if want := base.F2(c); math.Abs(le-want)/want > 0.25 {
			t.Errorf("F2 LE %d = %v, want %v", c, le, want)
		}
		ge, err := s.QueryGE(c)
		if err != nil {
			t.Fatalf("GE %d: %v", c, err)
		}
		// Exact F2 of {y >= c} = F2(total) restricted; compute directly.
		wantGE := geF2(base, c)
		if math.Abs(ge-wantGE)/wantGE > 0.25 {
			t.Errorf("F2 GE %d = %v, want %v", c, ge, wantGE)
		}
	}
	if s.Count() != 150000 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Space() <= 0 {
		t.Fatal("space must be positive")
	}
}

func geF2(b *exact.Baseline, c uint64) float64 { return b.F2Complement(c) }

func TestF2DirectionErrors(t *testing.T) {
	s, err := correlated.NewF2Summary(opts(correlated.LE, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryGE(0); err != correlated.ErrDirection {
		t.Fatalf("GE on LE-only summary: %v", err)
	}
	g, err := correlated.NewF2Summary(opts(correlated.GE, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Add(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.QueryLE(0); err != correlated.ErrDirection {
		t.Fatalf("LE on GE-only summary: %v", err)
	}
	if v, err := g.QueryGE(1 << 40); err != nil || v != 0 {
		t.Fatalf("GE beyond ymax: %v %v", v, err)
	}
}

func TestCountAndSumSummaries(t *testing.T) {
	cs, err := correlated.NewCountSummary(opts(correlated.LE, 3))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := correlated.NewSumSummary(opts(correlated.LE, 3))
	if err != nil {
		t.Fatal(err)
	}
	base := exact.New()
	st := gen.Zipf(100000, 10000, 1<<16, 1.1, 9)
	for {
		tp, ok := st.Next()
		if !ok {
			break
		}
		if err := cs.Add(tp.X, tp.Y); err != nil {
			t.Fatal(err)
		}
		if err := ss.Add(tp.X, tp.Y); err != nil {
			t.Fatal(err)
		}
		base.Add(tp.X, tp.Y)
	}
	for _, c := range []uint64{1 << 12, 1 << 14, 1 << 15} {
		cnt, err := cs.QueryLE(c)
		if err != nil {
			t.Fatal(err)
		}
		if want := base.Count1(c); math.Abs(cnt-want)/want > 0.15 {
			t.Errorf("count(%d) = %v, want %v", c, cnt, want)
		}
		sum, err := ss.QueryLE(c)
		if err != nil {
			t.Fatal(err)
		}
		if want := base.Sum(c); math.Abs(sum-want)/want > 0.15 {
			t.Errorf("sum(%d) = %v, want %v", c, sum, want)
		}
	}
}

func TestFkSummaryF3(t *testing.T) {
	o := opts(correlated.LE, 4)
	o.Eps = 0.3
	s, err := correlated.NewFkSummary(3, o)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 3 {
		t.Fatalf("K = %d", s.K())
	}
	base := exact.New()
	st := gen.Zipf(100000, 5000, 1<<16, 1.4, 11)
	for {
		tp, ok := st.Next()
		if !ok {
			break
		}
		if err := s.Add(tp.X, tp.Y); err != nil {
			t.Fatal(err)
		}
		base.Add(tp.X, tp.Y)
	}
	got, err := s.QueryLE(1<<16 - 1)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Fk(1<<16-1, 3)
	if rel := math.Abs(got-want) / want; rel > 0.5 {
		t.Fatalf("F3 = %v, want %v (rel %v)", got, want, rel)
	}
}

func TestF0SummaryAndRarity(t *testing.T) {
	o := opts(correlated.Both, 5)
	o.Eps = 0.1
	o.MaxX = 1 << 18
	s, err := correlated.NewF0Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	base := exact.New()
	st := gen.Uniform(200000, 1<<18, 1<<16, 13)
	for {
		tp, ok := st.Next()
		if !ok {
			break
		}
		if err := s.Add(tp.X, tp.Y); err != nil {
			t.Fatal(err)
		}
		base.Add(tp.X, tp.Y)
	}
	c := uint64(1 << 15)
	le, err := s.QueryLE(c)
	if err != nil {
		t.Fatal(err)
	}
	if want := base.F0(c); math.Abs(le-want)/want > 0.15 {
		t.Errorf("F0 LE = %v, want %v", le, want)
	}
	r, err := s.RarityLE(c)
	if err != nil {
		t.Fatal(err)
	}
	if want := base.Rarity(c); math.Abs(r-want) > 0.1 {
		t.Errorf("rarity = %v, want %v", r, want)
	}
	if _, err := s.QueryGE(c); err != nil {
		t.Errorf("GE query failed: %v", err)
	}
	if _, err := s.RarityGE(c); err != nil {
		t.Errorf("GE rarity failed: %v", err)
	}
}

func TestHeavyHittersSummaryAPI(t *testing.T) {
	o := opts(correlated.LE, 6)
	s, err := correlated.NewHeavyHittersSummary(o)
	if err != nil {
		t.Fatal(err)
	}
	// One dominant identifier below the cutoff.
	for i := 0; i < 20000; i++ {
		if err := s.Add(777, uint64(i%(1<<14))); err != nil {
			t.Fatal(err)
		}
	}
	st := gen.Uniform(50000, 5000, 1<<16, 15)
	for {
		tp, ok := st.Next()
		if !ok {
			break
		}
		if err := s.Add(tp.X+1000, tp.Y); err != nil {
			t.Fatal(err)
		}
	}
	hh, err := s.QueryLE(1<<14, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hh) == 0 || hh[0].X != 777 {
		t.Fatalf("heavy hitters = %+v, want 777 first", hh)
	}
	if _, err := s.F2LE(1 << 14); err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryGE(0, 0.1); err != correlated.ErrDirection {
		t.Fatalf("GE on LE-only: %v", err)
	}
}

func TestQuantilesCompanion(t *testing.T) {
	q, err := correlated.NewQuantiles(0.01)
	if err != nil {
		t.Fatal(err)
	}
	for y := uint64(0); y < 100000; y++ {
		q.Add(y)
	}
	med, err := q.Median()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(med)-50000) > 2000 {
		t.Fatalf("median = %d, want ~50000", med)
	}
	p95, err := q.Query(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(p95)-95000) > 2000 {
		t.Fatalf("p95 = %d, want ~95000", p95)
	}
	if q.Count() != 100000 || q.Space() <= 0 {
		t.Fatal("bookkeeping wrong")
	}
}

func TestWindowsAPI(t *testing.T) {
	o := opts(correlated.LE, 7)
	cw, err := correlated.NewCountWindow(o, 1<<12-1)
	if err != nil {
		t.Fatal(err)
	}
	f2w, err := correlated.NewF2Window(o, 1<<12-1)
	if err != nil {
		t.Fatal(err)
	}
	o.MaxX = 1 << 16
	f0w, err := correlated.NewF0Window(o, 1<<12-1)
	if err != nil {
		t.Fatal(err)
	}
	st := gen.Uniform(50000, 1<<16, 1<<12, 17)
	for {
		tp, ok := st.Next()
		if !ok {
			break
		}
		for _, w := range []interface{ Add(x, ts uint64) error }{cw, f2w, f0w} {
			if err := w.Add(tp.X, tp.Y); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Half the horizon: expect ~half the counts.
	cnt, err := cw.Query(1<<12-1, 1<<11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cnt-25000)/25000 > 0.15 {
		t.Fatalf("window count = %v, want ~25000", cnt)
	}
	if _, err := f2w.Query(1<<12-1, 1<<11); err != nil {
		t.Fatal(err)
	}
	f0, err := f0w.Query(1<<12-1, 1<<11)
	if err != nil {
		t.Fatal(err)
	}
	if f0 <= 0 {
		t.Fatal("window F0 not positive")
	}
}

func TestMultipassReexports(t *testing.T) {
	tape := correlated.NewTape([]correlated.Record{
		{X: 1, Y: 3, W: 1}, {X: 1, Y: 5, W: 1}, {X: 2, Y: 9, W: 1},
	})
	res, err := correlated.RunMultipass(tape, correlated.MultipassConfig{
		Eps: 0.3, Delta: 0.1, YMax: 15, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Query(15); got < 5/1.7 || got > 5*1.7 {
		t.Fatalf("multipass F2 = %v, want ~5", got)
	}
	cmp, err := correlated.SolveGreaterThan(
		[]bool{true, false, true}, []bool{true, false, false}, 0.3, 0.1, 21)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Comparison != 1 {
		t.Fatalf("comparison = %d, want 1", cmp.Comparison)
	}
}

func TestFkHeavyHittersSummaryAPI(t *testing.T) {
	o := opts(correlated.Both, 8)
	o.Eps = 0.2
	s, err := correlated.NewFkHeavyHittersSummary(3, o)
	if err != nil {
		t.Fatal(err)
	}
	// One dominant identifier spread across the whole y domain, so both
	// predicate directions see it as heavy.
	for i := 0; i < 15000; i++ {
		if err := s.Add(55, (uint64(i)*7919)%(1<<16)); err != nil {
			t.Fatal(err)
		}
	}
	st := gen.Uniform(60000, 8000, 1<<16, 19)
	for {
		tp, ok := st.Next()
		if !ok {
			break
		}
		if err := s.Add(tp.X+1000, tp.Y); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []func(uint64, float64) ([]correlated.HeavyHitter, error){s.QueryLE, s.QueryGE} {
		hh, err := q(1<<15, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if len(hh) == 0 || hh[0].X != 55 {
			t.Fatalf("Fk heavy hitters = %+v, want 55 first", hh)
		}
	}
	if s.Space() <= 0 {
		t.Fatal("space not positive")
	}
}

func TestMultipassF1PublicAPI(t *testing.T) {
	tape := correlated.NewTape(nil)
	for y := uint64(0); y < 64; y++ {
		tape.Append(correlated.Record{X: y % 16, Y: y, W: 3})
		tape.Append(correlated.Record{X: y % 16, Y: y, W: -1})
	}
	res, err := correlated.RunMultipass(tape, correlated.MultipassConfig{
		Eps: 0.3, Delta: 0.1, YMax: 63, F: correlated.MultipassF1, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Net weight 2 per record position: F1(y<=63) = 128.
	got := res.Query(63)
	if got < 128/1.7 || got > 128*1.7 {
		t.Fatalf("F1 multipass = %v, want ~128", got)
	}
}

func TestF0SummaryMergeDistributed(t *testing.T) {
	o := opts(correlated.LE, 61)
	o.MaxX = 1 << 16
	o.Eps = 0.1
	// Two ingest nodes, one query node.
	nodeA, err := correlated.NewF0Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	nodeB, err := correlated.NewF0Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	base := exact.New()
	st := gen.Uniform(120000, 1<<16, 1<<16, 63)
	i := 0
	for {
		tp, ok := st.Next()
		if !ok {
			break
		}
		node := nodeA
		if i%2 == 1 {
			node = nodeB
		}
		if err := node.Add(tp.X, tp.Y); err != nil {
			t.Fatal(err)
		}
		base.Add(tp.X, tp.Y)
		i++
	}
	if err := nodeA.Merge(nodeB); err != nil {
		t.Fatal(err)
	}
	for _, c := range []uint64{1 << 13, 1 << 15} {
		got, err := nodeA.QueryLE(c)
		if err != nil {
			t.Fatal(err)
		}
		want := base.F0(c)
		if math.Abs(got-want)/want > 0.15 {
			t.Fatalf("merged F0(y<=%d) = %v, want %v", c, got, want)
		}
	}
	// Mismatched predicates must not merge.
	other, _ := correlated.NewF0Summary(opts(correlated.Both, 61))
	if err := nodeA.Merge(other); err == nil {
		t.Fatal("predicate mismatch merged")
	}
}
