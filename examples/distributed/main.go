// Command distributed demonstrates the paper's distributed model on both
// of its rungs:
//
//  1. Multi-site ingest → coordinator merge: four "sites" each summarize
//     their local substream, serialize their summary (MarshalBinary — the
//     bytes a real deployment would ship over the network), and a
//     coordinator folds the wire images into one summary with
//     MergeMarshaled, then answers cutoff queries over the union stream.
//  2. Single-process sharding: the shard package runs the same
//     partition/merge loop across worker goroutines, turning the merge
//     layer into a parallel ingest engine.
//
// Both answers are compared against exact brute-force aggregation.
package main

import (
	"fmt"
	"log"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/shard"
)

const (
	sites  = 4
	nTotal = 400_000
	ymax   = 1 << 20
	xdom   = 1 << 14
)

func main() {
	// All participants must share the same Options — the Seed regenerates
	// the hash functions, which is what makes the summaries mergeable.
	opts := correlated.Options{
		Eps: 0.15, Delta: 0.1, YMax: ymax,
		MaxStreamLen: nTotal, MaxX: xdom, Seed: 42,
	}

	// ---- Part 1: sites → coordinator ------------------------------------
	site := make([]*correlated.F2Summary, sites)
	for i := range site {
		s, err := correlated.NewF2Summary(opts)
		if err != nil {
			log.Fatal(err)
		}
		site[i] = s
	}
	// Synthetic stream, partitioned round-robin across sites; keep exact
	// frequencies per cutoff band for verification.
	freq := make(map[uint64]map[uint64]float64) // cutoff -> x -> weight
	cuts := []uint64{ymax / 8, ymax / 2, ymax - 1}
	for _, c := range cuts {
		freq[c] = make(map[uint64]float64)
	}
	rng := uint64(1)
	next := func() uint64 { // xorshift, deterministic and dependency-free
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < nTotal; i++ {
		x := next() % xdom
		y := next() % (ymax + 1)
		if err := site[i%sites].Add(x, y); err != nil {
			log.Fatal(err)
		}
		for _, c := range cuts {
			if y <= c {
				freq[c][x]++
			}
		}
	}

	// Each site ships its summary; the coordinator merges the wire images
	// into a fresh summary built from the same Options.
	coord, err := correlated.NewF2Summary(opts)
	if err != nil {
		log.Fatal(err)
	}
	var wireBytes int
	for i, s := range site {
		wire, err := s.MarshalBinary()
		if err != nil {
			log.Fatal(err)
		}
		wireBytes += len(wire)
		if err := coord.MergeMarshaled(wire); err != nil {
			log.Fatalf("merging site %d: %v", i, err)
		}
	}
	fmt.Printf("coordinator merged %d sites (%d wire bytes, %d tuples)\n",
		sites, wireBytes, coord.Count())
	fmt.Println("cutoff\t\texact F2\tmerged est\trel err")
	for _, c := range cuts {
		var exact float64
		for _, f := range freq[c] {
			exact += f * f
		}
		est, err := coord.QueryLE(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9d\t%.4g\t%.4g\t%+.3f\n", c, exact, est, est/exact-1)
	}

	// Merging mismatched configurations is rejected with a typed error —
	// on the live path and on the wire path (the image carries the source
	// configuration).
	other, _ := correlated.NewF2Summary(correlated.Options{
		Eps: 0.15, Delta: 0.1, YMax: ymax, MaxStreamLen: nTotal, MaxX: xdom,
		Seed: 43, // different seed: different hash functions
	})
	if err := coord.Merge(other); err != nil {
		fmt.Printf("mismatched site rejected (live): %v\n", err)
	}
	if badWire, err := other.MarshalBinary(); err == nil {
		if err := coord.MergeMarshaled(badWire); err != nil {
			fmt.Printf("mismatched site rejected (wire): %v\n", err)
		}
	}

	// ---- Part 2: sharded parallel ingest --------------------------------
	eng, err := shard.NewF2(opts, sites)
	if err != nil {
		log.Fatal(err)
	}
	rng = 1 // replay the same stream
	start := time.Now()
	for i := 0; i < nTotal; i++ {
		x := next() % xdom
		y := next() % (ymax + 1)
		if err := eng.Add(x, y); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Flush(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("\nsharded engine: %d shards ingested %d tuples in %v (%.0f tuples/sec)\n",
		eng.Shards(), nTotal, elapsed.Round(time.Millisecond),
		float64(nTotal)/elapsed.Seconds())
	for _, c := range cuts {
		var exact float64
		for _, f := range freq[c] {
			exact += f * f
		}
		est, err := eng.QueryLE(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shard query c=%-9d est %.4g (rel err %+.3f)\n", c, est, est/exact-1)
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
}
