// Netflow drill-down: the scenario from the paper's introduction.
//
// A router emits flow records (destination, bytes). We maintain two small
// structures online: a whole-stream quantile summary over flow sizes and
// correlated-aggregate summaries keyed on flow size. After the stream has
// gone by, an operator can ask questions whose thresholds depend on what
// the data turned out to look like:
//
//  1. "What is the median flow size?"            → quantile summary
//  2. "What is F2 of destinations among flows    → correlated F2,
//     larger than the median?" (traffic skew       predicate y >= median
//     among big flows)
//  3. "That looks interesting — same question
//     for the top five percent of flows."       → same summary, new cutoff
//  4. "How many distinct destinations do those
//     elephant flows hit?"                      → correlated F0
//
// Run with:
//
//	go run ./examples/netflow
package main

import (
	"fmt"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/hash"
)

func main() {
	const (
		flows = 400_000
		dsts  = 20_000
		ymax  = 1<<20 - 1 // flow sizes in bytes, up to ~1MB
	)
	opts := correlated.Options{
		Eps: 0.15, Delta: 0.1, YMax: ymax,
		MaxStreamLen: flows, MaxX: dsts,
		Seed:      1,
		Predicate: correlated.GE, // drill-down asks about *large* flows
	}

	f2, err := correlated.NewF2Summary(opts)
	check(err)
	f0, err := correlated.NewF0Summary(opts)
	check(err)
	quant, err := correlated.NewQuantiles(0.01)
	check(err)

	// Synthesize traffic: most flows are mice; a handful of busy
	// destinations receive disproportionately many elephants.
	rng := hash.New(99)
	fmt.Printf("observing %d flow records...\n", flows)
	for i := 0; i < flows; i++ {
		var dst, bytes uint64
		switch {
		case rng.Float64() < 0.02:
			// Elephants, concentrated on 20 busy destinations.
			dst = rng.Uint64n(20)
			bytes = 200_000 + rng.Uint64n(800_000)
		default:
			dst = rng.Uint64n(dsts)
			bytes = 40 + rng.Uint64n(20_000)
		}
		check(f2.Add(dst, bytes))
		check(f0.Add(dst, bytes))
		quant.Add(bytes)
	}

	// Drill-down, thresholds computed from the stream itself.
	median, err := quant.Median()
	check(err)
	p95, err := quant.Query(0.95)
	check(err)
	fmt.Printf("\nmedian flow size: %d bytes; 95th percentile: %d bytes\n", median, p95)

	f2med, err := f2.QueryGE(median)
	check(err)
	f0med, err := f0.QueryGE(median)
	check(err)
	fmt.Printf("\nflows >= median:  F2(dst) = %.3g over ~%.0f distinct destinations\n", f2med, f0med)

	f2p95, err := f2.QueryGE(p95)
	check(err)
	f0p95, err := f0.QueryGE(p95)
	check(err)
	fmt.Printf("flows >= p95:     F2(dst) = %.3g over ~%.0f distinct destinations\n", f2p95, f0p95)

	// F2/(count²/F0) style skew reading: compare concentration.
	fmt.Printf("\nconcentration check: the top 5%% of flows hit ~%.0f destinations —\n", f0p95)
	fmt.Printf("if that is far below the distinct count at the median (~%.0f),\n", f0med)
	fmt.Println("the biggest flows are aimed at a small set of targets.")

	fmt.Printf("\ntotal summary space: %d counters/samples + %d quantile tuples.\n",
		f2.Space()+f0.Space(), quant.Space())
	fmt.Println("The summaries stay this size no matter how long the router runs;")
	fmt.Println("storing raw records grows without bound (Figures 3-5 of the paper).")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
