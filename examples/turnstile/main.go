// Turnstile streams (Section 4): correlated aggregation with deletions.
//
// Part 1 — symmetric difference. Two datasets are encoded as one stream
// (+1 weights for the first, −1 for the second); the correlated F2 of the
// net weights measures how much the datasets disagree below each cutoff.
// A single pass provably cannot answer this in small space (Theorem 6),
// but MULTIPASS answers it with O(log ymax) sequential scans (Theorem 7).
//
// Part 2 — the GREATER-THAN reduction behind the lower bound, run in both
// directions: MULTIPASS solves every instance; a single-pass small-space
// protocol is reduced to guessing.
//
// Run with:
//
//	go run ./examples/turnstile
package main

import (
	"fmt"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/exact"
	"github.com/streamagg/correlated/internal/gen"
	"github.com/streamagg/correlated/internal/hash"
	"github.com/streamagg/correlated/internal/turnstile"
)

func main() {
	symmetricDifference()
	greaterThan()
}

func symmetricDifference() {
	const ymax = 1<<12 - 1
	rng := hash.New(5)

	// Dataset A: readings from all sensors. Dataset B: yesterday's
	// readings — mostly identical, except sensors 0..49 changed at low
	// y values.
	var a, b []gen.Tuple
	for i := 0; i < 150_000; i++ {
		t := gen.Tuple{X: rng.Uint64n(2_000), Y: rng.Uint64n(ymax + 1)}
		a = append(a, t)
		b = append(b, t)
	}
	for i := 0; i < 4_000; i++ {
		a = append(a, gen.Tuple{X: rng.Uint64n(50), Y: rng.Uint64n(256)})
	}

	var recs []correlated.Record
	for _, w := range gen.SymmetricDifference(a, b) {
		recs = append(recs, correlated.Record{X: w.X, Y: w.Y, W: w.W})
	}
	tape := correlated.NewTape(recs)

	// Deletions are co-located in y with insertions, so prefix F2 of the
	// net weights is non-decreasing and MULTIPASS applies.
	res, err := correlated.RunMultipass(tape, correlated.MultipassConfig{
		Eps: 0.2, Delta: 0.05, YMax: ymax, Seed: 11,
	})
	check(err)

	base := exact.New()
	tape.Scan(func(r correlated.Record) { base.AddWeighted(r.X, r.Y, r.W) })

	fmt.Println("symmetric difference of two datasets, F2 of net weights:")
	fmt.Println("cutoff c | multipass est | exact")
	for _, c := range []uint64{63, 255, 1023, ymax} {
		fmt.Printf("%8d | %13.0f | %.0f\n", c, res.Query(c), base.F2(c))
	}
	fmt.Printf("(%d passes over %d records, %d counters of working memory)\n\n",
		res.Passes, tape.Len(), res.Space)
}

func greaterThan() {
	const bits = 256
	const trials = 30
	rng := hash.New(7)

	fmt.Printf("GREATER-THAN via correlated aggregation (%d-bit numbers, %d trials):\n", bits, trials)
	mpRight, spRight := 0, 0
	var passes int
	var space int64
	for trial := 0; trial < trials; trial++ {
		a := randomBits(bits, rng)
		bb := append([]bool(nil), a...)
		d := 16 + int(rng.Uint64n(bits-32))
		bb[d] = !bb[d]
		for i := d + 1; i < bits; i++ {
			bb[i] = rng.Uint64()&1 == 1
		}
		want := turnstile.CompareBits(a, bb)

		mp, err := correlated.SolveGreaterThan(a, bb, 0.3, 0.05, 100+uint64(trial))
		check(err)
		if mp.Comparison == want {
			mpRight++
		}
		passes, space = mp.Passes, mp.Space

		sp := turnstile.SinglePassGT(a, bb, 8, 200+uint64(trial))
		if sp.Comparison == want {
			spRight++
		}
	}
	fmt.Printf("  multipass  (log-passes, small space): %2d/%d correct, %d passes, %d counters\n",
		mpRight, trials, passes, space)
	fmt.Printf("  single pass (8-block budget):          %2d/%d correct — Theorem 6 in action\n",
		spRight, trials)
}

func randomBits(n int, rng *hash.RNG) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Uint64()&1 == 1
	}
	return out
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
