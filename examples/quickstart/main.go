// Quickstart: build correlated-aggregate summaries over a synthetic
// stream, then answer cutoff queries chosen only after ingestion —
// comparing every estimate against exact recomputation.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/exact"
	"github.com/streamagg/correlated/internal/gen"
)

func main() {
	const (
		n    = 500_000
		xdom = 50_000
		ymax = 1<<20 - 1
	)
	opts := correlated.Options{
		Eps:          0.15,
		Delta:        0.1,
		YMax:         ymax,
		MaxStreamLen: n,
		MaxX:         xdom,
		Seed:         42,
	}

	f2, err := correlated.NewF2Summary(opts)
	check(err)
	cnt, err := correlated.NewCountSummary(opts)
	check(err)
	f0, err := correlated.NewF0Summary(opts)
	check(err)
	base := exact.New()

	fmt.Printf("ingesting %d tuples (x uniform over %d ids, y uniform over [0, 2^20))...\n", n, xdom)
	stream := gen.Uniform(n, xdom, ymax+1, 7)
	for {
		t, ok := stream.Next()
		if !ok {
			break
		}
		check(f2.Add(t.X, t.Y))
		check(cnt.Add(t.X, t.Y))
		check(f0.Add(t.X, t.Y))
		base.Add(t.X, t.Y)
	}

	fmt.Printf("\nsummary space: F2 %d counters, COUNT %d counters, F0 %d samples (stream: %d tuples)\n",
		f2.Space(), cnt.Space(), f0.Space(), base.Space())
	fmt.Println("\ncutoff c      | aggregate | estimate     | exact        | rel.err")
	fmt.Println("--------------+-----------+--------------+--------------+--------")

	for _, c := range []uint64{1 << 16, 1 << 18, 1 << 19, ymax} {
		report(c, "COUNT", query(cnt.QueryLE, c), base.Count1(c))
		report(c, "F2", query(f2.QueryLE, c), base.F2(c))
		report(c, "F0", query(f0.QueryLE, c), base.F0(c))
	}
}

func query(f func(uint64) (float64, error), c uint64) float64 {
	v, err := f(c)
	check(err)
	return v
}

func report(c uint64, name string, est, want float64) {
	rel := 0.0
	if want != 0 {
		rel = (est - want) / want
	}
	fmt.Printf("%-13d | %-9s | %12.0f | %12.0f | %+.3f\n", c, name, est, want, rel)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
