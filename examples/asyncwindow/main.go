// Asynchronous sliding windows: sensor readings arrive out of order (late
// by network retries, clock skew, buffering), and we continuously ask
// "how many readings, and from how many distinct sensors, in the last W
// ticks?" — the Section 1.1 reduction of sliding-window aggregation over
// asynchronous streams to correlated aggregation.
//
// Run with:
//
//	go run ./examples/asyncwindow
package main

import (
	"fmt"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/hash"
)

func main() {
	const (
		horizon = 1<<20 - 1 // timestamp domain
		sensors = 5_000
		events  = 600_000
		maxLate = 5_000 // how late a reading can arrive, in ticks
	)
	opts := correlated.Options{
		Eps: 0.1, Delta: 0.1,
		MaxStreamLen: events, MaxX: sensors, Seed: 3,
	}
	cw, err := correlated.NewCountWindow(opts, horizon)
	check(err)
	f0w, err := correlated.NewF0Window(opts, horizon)
	check(err)

	// Ground truth kept naively for the demo.
	counts := make([]uint32, horizon+1)
	bySensor := make([]map[uint64]struct{}, 0)

	rng := hash.New(17)
	now := uint64(maxLate)
	fmt.Printf("ingesting %d out-of-order readings from %d sensors...\n", events, sensors)
	type reading struct{ sensor, ts uint64 }
	var log []reading
	for i := 0; i < events; i++ {
		// Wall clock advances; each reading is stamped up to maxLate
		// ticks in the past (asynchrony).
		now += rng.Uint64n(2)
		if now > horizon {
			now = horizon
		}
		ts := now - rng.Uint64n(maxLate)
		sensor := rng.Uint64n(sensors)
		check(cw.Add(sensor, ts))
		check(f0w.Add(sensor, ts))
		counts[ts]++
		log = append(log, reading{sensor, ts})
	}
	_ = bySensor

	fmt.Printf("wall clock is now %d\n\n", now)
	fmt.Println("window W   | count est | count exact | distinct est | distinct exact")
	fmt.Println("-----------+-----------+-------------+--------------+---------------")
	for _, w := range []uint64{1_000, 10_000, 100_000, now + 1} {
		gotC, err := cw.Query(now, w)
		check(err)
		gotD, err := f0w.Query(now, w)
		check(err)
		var start uint64
		if w <= now {
			start = now - w + 1
		}
		var exactC float64
		seen := map[uint64]struct{}{}
		for _, r := range log {
			if r.ts >= start && r.ts <= now {
				exactC++
				seen[r.sensor] = struct{}{}
			}
		}
		fmt.Printf("%-10d | %9.0f | %11.0f | %12.0f | %d\n", w, gotC, exactC, gotD, len(seen))
	}
	fmt.Printf("\nwindow summary space: count %d, distinct %d (vs %d raw readings)\n",
		cw.Space(), f0w.Space(), events)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
