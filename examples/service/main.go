// Command service demonstrates the corrd network subsystem end-to-end,
// in one process and over real HTTP sockets:
//
//  1. A coordinator server answers queries over everything it hears.
//  2. Two site servers ingest disjoint substreams and push their merged
//     summary images to the coordinator on a short ticker (the paper's
//     site→coordinator path, shipped as bytes through POST /v1/push).
//  3. A third substream is ingested directly into the coordinator
//     through the client's chunked AddBatch — the remote-ingest path.
//
// The coordinator's answers over the union stream are then compared
// against exact brute-force aggregation, and the coordinator state is
// snapshotted and restored into a second server to show the durability
// path producing identical answers.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/client"
	"github.com/streamagg/correlated/internal/gen"
	"github.com/streamagg/correlated/service"
)

const (
	nPerStream = 120_000
	ymax       = 1<<20 - 1
	xdom       = 1 << 14
)

func main() {
	opts := correlated.Options{
		Eps: 0.15, Delta: 0.1, YMax: ymax,
		MaxStreamLen: 1 << 20, MaxX: xdom, Seed: 42,
	}
	ctx := context.Background()

	// ---- Coordinator ----------------------------------------------------
	coord, err := service.New(service.Config{Options: opts, Shards: 2})
	if err != nil {
		log.Fatal(err)
	}
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()
	fmt.Printf("coordinator listening on %s\n", coordSrv.URL)

	// ---- Two sites pushing deltas upstream ------------------------------
	var sites []*service.Server
	var siteClients []*client.Client
	for i := 0; i < 2; i++ {
		site, err := service.New(service.Config{
			Options: opts, Shards: 2,
			PushTo: coordSrv.URL, PushInterval: 100 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		srv := httptest.NewServer(site.Handler())
		defer srv.Close()
		sites = append(sites, site)
		siteClients = append(siteClients, client.New(srv.URL))
		fmt.Printf("site %d listening on %s, pushing to coordinator\n", i, srv.URL)
	}

	// ---- Streams: two through the sites, one direct ----------------------
	var all []gen.Tuple
	ingest := func(cl *client.Client, seed uint64) {
		s := gen.Zipf(nPerStream, xdom, ymax+1, 1.0, seed)
		batch := make([]correlated.Tuple, 0, 8192)
		for {
			t, ok := s.Next()
			if !ok {
				break
			}
			all = append(all, t)
			batch = append(batch, correlated.Tuple{X: t.X, Y: t.Y, W: 1})
			if len(batch) == cap(batch) {
				if err := cl.AddBatch(ctx, batch); err != nil {
					log.Fatal(err)
				}
				batch = batch[:0]
			}
		}
		if err := cl.AddBatch(ctx, batch); err != nil {
			log.Fatal(err)
		}
	}
	start := time.Now()
	ingest(siteClients[0], 7)
	ingest(siteClients[1], 8)
	coordCl := client.New(coordSrv.URL)
	ingest(coordCl, 9) // direct remote ingest into the coordinator
	fmt.Printf("ingested %d tuples over HTTP in %v\n", 3*nPerStream, time.Since(start).Round(time.Millisecond))

	// Close the sites: their final pushes ship whatever the ticker missed.
	for _, s := range sites {
		if err := s.Close(); err != nil {
			log.Fatal(err)
		}
	}

	st, err := coordCl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordinator: %d tuples, %d pushes merged, space %d\n",
		st.Count, st.PushesMerged, st.Space)

	// ---- Queries vs exact ------------------------------------------------
	cuts := []uint64{ymax / 8, ymax / 2, ymax}
	for _, c := range cuts {
		got, err := coordCl.QueryLE(ctx, c)
		if err != nil {
			log.Fatal(err)
		}
		want := exactF2LE(all, c)
		fmt.Printf("F2{x : y <= %8d}  service %14.0f   exact %14.0f   rel.err %+.3f\n",
			c, got, want, got/want-1)
	}

	// ---- Durability: snapshot, restore into a fresh server ---------------
	snap := filepath.Join(os.TempDir(), fmt.Sprintf("corrd-example-%d.snapshot", os.Getpid()))
	defer os.Remove(snap)
	img, err := coord.Engine().MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(snap, img, 0o644); err != nil {
		log.Fatal(err)
	}
	restoredSvc, err := service.New(service.Config{
		Options: opts, Shards: 2, SnapshotPath: snap, SnapshotInterval: time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer restoredSvc.Close()
	restoredSrv := httptest.NewServer(restoredSvc.Handler())
	defer restoredSrv.Close()
	restoredCl := client.New(restoredSrv.URL)
	for _, c := range cuts {
		a, err1 := coordCl.QueryLE(ctx, c)
		b, err2 := restoredCl.QueryLE(ctx, c)
		if err1 != nil || err2 != nil {
			log.Fatal(err1, err2)
		}
		if a != b {
			log.Fatalf("restored server diverged at c=%d: %v vs %v", c, a, b)
		}
	}
	fmt.Printf("restored-from-snapshot server answers identically at %d cutoffs\n", len(cuts))
	if err := coord.Close(); err != nil {
		log.Fatal(err)
	}
}

// exactF2LE brute-forces F2 over the selected substream.
func exactF2LE(all []gen.Tuple, c uint64) float64 {
	freq := make(map[uint64]float64)
	for _, t := range all {
		if t.Y <= c {
			freq[t.X]++
		}
	}
	var f2 float64
	for _, f := range freq {
		f2 += f * f
	}
	return f2
}
