package correlated

import (
	"encoding/binary"
	"errors"

	"github.com/streamagg/correlated/internal/compat"
	"github.com/streamagg/correlated/internal/core"
	"github.com/streamagg/correlated/internal/corrf0"
)

// Binary serialization for the moment and distinct-count summaries, for
// checkpoint/restore and for shipping a summary from the ingest node to a
// query node. The configuration is deliberately NOT part of the encoding:
// deserialize by constructing a summary with the *same Options* (including
// Seed — it regenerates the hash functions) and calling UnmarshalBinary on
// it. Mismatched configurations are detected and rejected where possible.

const apiMarshalVersion = 1

// ErrBadEncoding reports malformed or configuration-incompatible bytes.
var ErrBadEncoding = errors.New("correlated: bad or incompatible encoding")

type binaryCodec interface {
	MarshalBinary() ([]byte, error)
	UnmarshalBinary([]byte) error
}

// codecOrNil converts a possibly-nil concrete summary into a clean nil
// interface (a typed nil inside an interface would defeat nil checks).
func codecOrNil(s *core.Summary) binaryCodec {
	if s == nil {
		return nil
	}
	return s
}

func nilF0(s *corrf0.Summary) binaryCodec {
	if s == nil {
		return nil
	}
	return s
}

func (d *dual) marshal() ([]byte, error) {
	buf := []byte{apiMarshalVersion, byte(d.pred)}
	for _, side := range []binaryCodec{codecOrNil(d.le), codecOrNil(d.ge)} {
		if side == nil {
			buf = binary.AppendUvarint(buf, 0)
			continue
		}
		payload, err := side.MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = binary.AppendUvarint(buf, uint64(len(payload))+1)
		buf = append(buf, payload...)
	}
	return buf, nil
}

// frames splits a dual wire image into its per-direction payloads,
// validating the framing against the receiver's shape (version,
// predicate, which sides are present). frames[i] is nil for an absent
// side. Shared by unmarshal (restore) and mergeMarshaled (fold in).
func (d *dual) frames(data []byte) ([2][]byte, error) {
	var out [2][]byte
	if len(data) < 2 || data[0] != apiMarshalVersion {
		return out, ErrBadEncoding
	}
	if Predicate(data[1]) != d.pred {
		return out, compat.Mismatch("predicate", d.pred, Predicate(data[1]))
	}
	data = data[2:]
	for i, side := range []*core.Summary{d.le, d.ge} {
		n, sz := binary.Uvarint(data)
		if sz <= 0 {
			return out, ErrBadEncoding
		}
		data = data[sz:]
		if n == 0 {
			if side != nil {
				return out, ErrBadEncoding
			}
			continue
		}
		n-- // length was stored +1 to distinguish "absent"
		if uint64(len(data)) < n || side == nil {
			return out, ErrBadEncoding
		}
		out[i] = data[:n]
		data = data[n:]
	}
	if len(data) != 0 {
		return out, ErrBadEncoding
	}
	return out, nil
}

func (d *dual) unmarshal(data []byte) error {
	frames, err := d.frames(data)
	if err != nil {
		return err
	}
	if frames[0] != nil {
		if err := d.le.UnmarshalBinary(frames[0]); err != nil {
			return err
		}
	}
	if frames[1] != nil {
		if err := d.ge.UnmarshalBinary(frames[1]); err != nil {
			return err
		}
	}
	return nil
}

// mergeMarshaled folds a summary serialized by dual.marshal into d
// without materializing a second summary. Both directions are parsed
// before either is applied, so a malformed or incompatible image leaves d
// untouched.
func (d *dual) mergeMarshaled(data []byte) error {
	frames, err := d.frames(data)
	if err != nil {
		return err
	}
	var imgs [2]*core.MergeImage
	if frames[0] != nil {
		if imgs[0], err = d.le.ParseMergeImage(frames[0]); err != nil {
			return err
		}
	}
	if frames[1] != nil {
		if imgs[1], err = d.ge.ParseMergeImage(frames[1]); err != nil {
			return err
		}
	}
	if imgs[0] != nil {
		if err := d.le.ApplyMergeImage(imgs[0]); err != nil {
			return err
		}
	}
	if imgs[1] != nil {
		if err := d.ge.ApplyMergeImage(imgs[1]); err != nil {
			return err
		}
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *F2Summary) MarshalBinary() ([]byte, error) { return s.d.marshal() }

// UnmarshalBinary restores a summary serialized from an identically
// configured F2Summary.
func (s *F2Summary) UnmarshalBinary(data []byte) error { return s.d.unmarshal(data) }

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *FkSummary) MarshalBinary() ([]byte, error) { return s.d.marshal() }

// UnmarshalBinary restores a summary serialized from an identically
// configured FkSummary.
func (s *FkSummary) UnmarshalBinary(data []byte) error { return s.d.unmarshal(data) }

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *CountSummary) MarshalBinary() ([]byte, error) { return s.d.marshal() }

// UnmarshalBinary restores a summary serialized from an identically
// configured CountSummary.
func (s *CountSummary) UnmarshalBinary(data []byte) error { return s.d.unmarshal(data) }

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *SumSummary) MarshalBinary() ([]byte, error) { return s.d.marshal() }

// UnmarshalBinary restores a summary serialized from an identically
// configured SumSummary.
func (s *SumSummary) UnmarshalBinary(data []byte) error { return s.d.unmarshal(data) }

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *F0Summary) MarshalBinary() ([]byte, error) {
	buf := []byte{apiMarshalVersion}
	buf = binary.AppendUvarint(buf, s.n)
	for _, side := range []binaryCodec{nilF0(s.le), nilF0(s.ge)} {
		if side == nil {
			buf = binary.AppendUvarint(buf, 0)
			continue
		}
		payload, err := side.MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = binary.AppendUvarint(buf, uint64(len(payload))+1)
		buf = append(buf, payload...)
	}
	return buf, nil
}

// UnmarshalBinary restores a summary serialized from an identically
// configured F0Summary.
func (s *F0Summary) UnmarshalBinary(data []byte) error {
	if len(data) < 1 || data[0] != apiMarshalVersion {
		return ErrBadEncoding
	}
	data = data[1:]
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return ErrBadEncoding
	}
	s.n = n
	data = data[sz:]
	for _, side := range []binaryCodec{nilF0(s.le), nilF0(s.ge)} {
		ln, sz := binary.Uvarint(data)
		if sz <= 0 {
			return ErrBadEncoding
		}
		data = data[sz:]
		if ln == 0 {
			if side != nil {
				return ErrBadEncoding
			}
			continue
		}
		ln--
		if uint64(len(data)) < ln || side == nil {
			return ErrBadEncoding
		}
		if err := side.UnmarshalBinary(data[:ln]); err != nil {
			return err
		}
		data = data[ln:]
	}
	if len(data) != 0 {
		return ErrBadEncoding
	}
	return nil
}
