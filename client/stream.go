package client

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/tupleio"
)

// Streaming ingest client: one persistent connection to corrd's
// -stream-addr listener, frames pipelined ahead of the server's acks.
// Send never waits for a round trip — it blocks only when the window
// (unacked frames in flight) is full — so a single goroutine calling
// Send in a loop keeps the server's commit pipeline fed at wire speed,
// where the HTTP path pays a full request/response per batch.
//
// Acks arrive in frame order (the protocol guarantees it), and by
// default the Stream consumes them internally: it advances the acked
// window, counts acked tuples, and latches the first failure so Close
// can report it. A caller that needs per-frame outcomes — e.g. the load
// generator's latency measurement — opts in with WithAckBuffer, which
// exposes the Acks channel and transfers the draining duty: an
// unconsumed channel eventually fills the window and stalls Send.
//
// Delivery is at-least-once across reconnects, exactly like HTTP
// retries: a client that dies before reading a frame's ack cannot know
// whether that frame committed, and re-sending it on a new connection
// duplicates the batch.

// ErrStreamClosed is returned by Send after Close (or after the stream
// failed and latched its error).
var ErrStreamClosed = errors.New("client: stream closed")

// DefaultStreamWindow is the default cap on unacked frames in flight.
const DefaultStreamWindow = 128

// Ack is one per-frame outcome from the server: the frame's sequence
// number, the WAL LSN of the commit group it rode in (0 without a WAL),
// and a tupleio.Ack* status byte.
type Ack struct {
	Seq    uint64
	LSN    uint64
	Status uint8
	// Tuples is the frame's batch size, tracked client-side so ack
	// consumers can count throughput without keeping their own map.
	Tuples int
}

// Err converts a non-OK ack into an error (nil for AckOK).
func (a Ack) Err() error {
	switch a.Status {
	case tupleio.AckOK:
		return nil
	case tupleio.AckInvalid:
		return fmt.Errorf("client: frame %d rejected as invalid", a.Seq)
	case tupleio.AckEngine:
		return fmt.Errorf("client: frame %d failed in the engine", a.Seq)
	case tupleio.AckWAL:
		return fmt.Errorf("client: frame %d applied but not durable (WAL append failed)", a.Seq)
	case tupleio.AckShutdown:
		return fmt.Errorf("client: frame %d refused, server shutting down", a.Seq)
	case tupleio.AckTenant:
		return fmt.Errorf("client: frame %d refused by a tenant governance cap", a.Seq)
	case tupleio.AckReadOnly:
		return fmt.Errorf("client: frame %d refused, server is a read-only replica", a.Seq)
	case tupleio.AckDegraded:
		// The connection survives a degraded nack: match with IsDegraded,
		// back off, and resend the batch on the same stream.
		return fmt.Errorf("client: frame %d refused: %w", a.Seq, ErrDegraded)
	case tupleio.AckBusy:
		// Same for overload sheds: IsBusy, back off, resend.
		return fmt.Errorf("client: frame %d refused: %w", a.Seq, ErrBusy)
	default:
		return fmt.Errorf("client: frame %d: unknown ack status %d", a.Seq, a.Status)
	}
}

// StreamOption configures DialStream.
type StreamOption func(*streamConfig)

type streamConfig struct {
	window      int
	ackBuf      int
	dialTimeout time.Duration
	tenant      string
}

// WithStreamWindow caps how many frames may be in flight (sent,
// unacked) before Send blocks; n < 1 is ignored.
func WithStreamWindow(n int) StreamOption {
	return func(c *streamConfig) {
		if n >= 1 {
			c.window = n
		}
	}
}

// WithAckBuffer exposes per-frame acks on the Acks channel (buffered to
// n, minimum 1). The caller MUST drain the channel: once it and the
// window fill, Send blocks. Without this option acks are consumed
// internally and surfaced only as Close's error.
func WithAckBuffer(n int) StreamOption {
	return func(c *streamConfig) {
		if n < 1 {
			n = 1
		}
		c.ackBuf = n
	}
}

// WithStreamTenant scopes every frame on the stream to the named
// tenant: the handshake negotiates the keyed frame format and each
// frame carries the tenant prefix. An empty name keeps the legacy
// counted format (the default tenant). Invalid names are rejected at
// dial time, before any connection is opened.
func WithStreamTenant(name string) StreamOption {
	return func(c *streamConfig) {
		c.tenant = name
	}
}

// WithDialTimeout bounds the TCP connect plus handshake; d <= 0 is
// ignored. The default is 10s.
func WithDialTimeout(d time.Duration) StreamOption {
	return func(c *streamConfig) {
		if d > 0 {
			c.dialTimeout = d
		}
	}
}

// Stream is one streaming-ingest connection. It is safe for one
// goroutine to Send while another consumes Acks; Send itself must not
// be called concurrently.
type Stream struct {
	conn     net.Conn
	bw       *bufio.Writer
	maxFrame uint32
	window   int
	tenant   string // non-empty: keyed frames, prefixed with this name

	acks chan Ack // nil unless WithAckBuffer

	mu       sync.Mutex
	cond     *sync.Cond
	seq      uint64        // last seq sent
	ackedSeq uint64        // last seq acked
	sizes    []int         // tuple counts of in-flight frames, FIFO
	err      error         // latched terminal error
	closed   bool          // Send refused (Close called or stream failed)
	done     chan struct{} // lazily made; closed on termination
	acked    uint64        // tuples acked OK (internal-consumption mode)
	ackErr   error         // first non-OK ack (internal-consumption mode)
	readerWg sync.WaitGroup

	hdr []byte // frame encode scratch (header + payload)
}

// DialStream opens a streaming-ingest connection to addr (host:port of
// corrd's -stream-addr listener) and performs the handshake. The
// context bounds the dial and handshake and, after that, cancels the
// stream: when ctx ends, in-flight Sends unblock with ctx's error and
// the connection closes.
func DialStream(ctx context.Context, addr string, opts ...StreamOption) (*Stream, error) {
	cfg := streamConfig{window: DefaultStreamWindow, dialTimeout: 10 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	var format uint8 = tupleio.StreamFormatCounted
	if cfg.tenant != "" {
		if err := tupleio.ValidateTenant([]byte(cfg.tenant)); err != nil {
			return nil, fmt.Errorf("client: stream tenant: %w", err)
		}
		format = tupleio.StreamFormatKeyed
	}
	dctx := ctx
	if cfg.dialTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, cfg.dialTimeout)
		defer cancel()
	}
	var d net.Dialer
	conn, err := d.DialContext(dctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if dl, ok := dctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	hello := tupleio.AppendHello(make([]byte, 0, tupleio.HelloSize), format)
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: stream hello: %w", err)
	}
	var reply [tupleio.HelloReplySize]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: stream hello reply: %w", err)
	}
	status, maxFrame, err := tupleio.ParseHelloReply(reply[:])
	if err != nil {
		conn.Close()
		return nil, err
	}
	if status != tupleio.HelloOK {
		conn.Close()
		return nil, fmt.Errorf("client: server refused stream (status %d)", status)
	}
	conn.SetDeadline(time.Time{})

	s := &Stream{
		conn:     conn,
		bw:       bufio.NewWriterSize(conn, 64<<10),
		maxFrame: maxFrame,
		window:   cfg.window,
		sizes:    make([]int, 0, cfg.window),
		hdr:      make([]byte, 0, tupleio.FrameHeaderSize),
	}
	s.tenant = cfg.tenant
	s.cond = sync.NewCond(&s.mu)
	if cfg.ackBuf > 0 {
		s.acks = make(chan Ack, cfg.ackBuf)
	}
	s.readerWg.Add(1)
	go s.readAcks()
	if ctx.Done() != nil {
		// The watcher turns context cancellation into a stream failure:
		// closing the conn unblocks the ack reader, which latches the
		// error and wakes every blocked Send.
		s.readerWg.Add(1)
		go func() {
			defer s.readerWg.Done()
			select {
			case <-ctx.Done():
				s.fail(ctx.Err())
			case <-s.doneCh():
			}
		}()
	}
	return s, nil
}

// done is closed (lazily, by doneCh's first caller racing fail/Close)
// when the stream terminates, so the context watcher exits.
func (s *Stream) doneCh() chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done == nil {
		s.done = make(chan struct{})
		if s.closed {
			close(s.done)
		}
	}
	return s.done
}

// Acks returns the per-frame outcome channel, or nil unless the stream
// was dialed with WithAckBuffer. The channel closes when the server's
// ack stream ends (after Close, or on failure).
func (s *Stream) Acks() <-chan Ack { return s.acks }

// MaxFrame reports the server's advertised per-frame payload cap.
func (s *Stream) MaxFrame() uint32 { return s.maxFrame }

// Send frames one batch and hands it to the transport, blocking only
// while the in-flight window is full. A nil return means the frame was
// written toward the server, not that it committed — commit outcomes
// arrive as acks. Batches too large for one frame are split.
func (s *Stream) Send(batch []correlated.Tuple) error {
	for len(batch) > 0 {
		n := len(batch)
		// A tuple encodes to at most 27 bytes (3 uvarint64s) and the
		// counted batch carries a <=10-byte count prefix; keep every
		// frame under the server's cap with that worst case. A keyed
		// frame also spends its tenant prefix (uvarint length, <=2
		// bytes for the 128-byte name cap, plus the name itself).
		overhead := 10
		if s.tenant != "" {
			overhead += 2 + len(s.tenant)
		}
		maxT := (int(s.maxFrame) - overhead) / 27
		if maxT < 1 {
			maxT = 1
		}
		if n > maxT {
			n = maxT
		}
		if err := s.sendFrame(batch[:n]); err != nil {
			return err
		}
		batch = batch[n:]
	}
	return nil
}

func (s *Stream) sendFrame(batch []correlated.Tuple) error {
	s.mu.Lock()
	for !s.closed && len(s.sizes) >= s.window {
		s.cond.Wait()
	}
	if s.closed {
		err := s.err
		s.mu.Unlock()
		if err != nil {
			return err
		}
		return ErrStreamClosed
	}
	s.seq++
	seq := s.seq
	s.sizes = append(s.sizes, len(batch))
	s.mu.Unlock()

	// Encode header + payload into the reused scratch and write it as
	// one buffered chunk; flush so the server sees the frame without
	// waiting for the next Send to push it out. The length is patched
	// in after the payload is encoded (its size is not known before).
	buf := tupleio.AppendFrameHeader(s.hdr[:0], seq, 0)
	if s.tenant != "" {
		buf = tupleio.AppendKeyedBatch(buf, s.tenant, batch)
	} else {
		buf = tupleio.AppendCountedBatch(buf, batch)
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(buf)-tupleio.FrameHeaderSize))
	s.hdr = buf
	if _, err := s.bw.Write(buf); err != nil {
		s.fail(err)
		return err
	}
	if err := s.bw.Flush(); err != nil {
		s.fail(err)
		return err
	}
	return nil
}

// readAcks is the single reader of the server's ack stream: it advances
// the window (waking blocked Sends), forwards acks to the channel when
// one was requested, and otherwise folds them into the internal tally.
func (s *Stream) readAcks() {
	defer s.readerWg.Done()
	br := bufio.NewReaderSize(s.conn, 16<<10)
	var buf [tupleio.AckSize]byte
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			// io.EOF after Close's half-close with an empty window is
			// the clean end; anything else latches as the stream error.
			s.mu.Lock()
			clean := err == io.EOF && s.closed && len(s.sizes) == 0
			s.mu.Unlock()
			if !clean {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				s.fail(fmt.Errorf("client: ack stream: %w", err))
			} else {
				s.fail(nil)
			}
			if s.acks != nil {
				close(s.acks)
			}
			return
		}
		seq, lsn, status, _ := tupleio.ParseAck(buf[:]) // len is fixed; err impossible
		s.mu.Lock()
		var tuples int
		if seq == s.ackedSeq+1 && len(s.sizes) > 0 {
			tuples = s.sizes[0]
			s.sizes = s.sizes[:copy(s.sizes, s.sizes[1:])]
			s.ackedSeq = seq
			s.cond.Broadcast()
		}
		if s.acks == nil {
			if status == tupleio.AckOK {
				s.acked += uint64(tuples)
			} else if s.ackErr == nil {
				s.ackErr = Ack{Seq: seq, Status: status}.Err()
			}
		}
		s.mu.Unlock()
		if s.acks != nil {
			s.acks <- Ack{Seq: seq, LSN: lsn, Status: status, Tuples: tuples}
		}
	}
}

// fail latches err (first one wins), refuses further Sends, wakes
// blocked ones, and closes the connection.
func (s *Stream) fail(err error) {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		if s.done != nil {
			close(s.done)
		}
	}
	if s.err == nil && err != nil {
		s.err = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.conn.Close()
}

// Acked reports tuples acknowledged OK so far (always 0 when acks are
// delivered on the channel instead — count them there).
func (s *Stream) Acked() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked
}

// Close ends the stream gracefully: stop Sends, wait for every
// in-flight frame's ack, half-close the write side so the server sees
// a clean end, and report the first error the stream encountered — a
// transport failure, or (in internal-consumption mode) the first
// non-OK ack.
func (s *Stream) Close() error {
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	if s.done != nil && !wasClosed {
		close(s.done)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if !wasClosed {
		// Half-close: no more frames will come, but the read side stays
		// open for the remaining acks. Listeners without CloseWrite
		// (rare for TCP) just get the full Close below.
		type closeWriter interface{ CloseWrite() error }
		if cw, ok := s.conn.(closeWriter); ok {
			cw.CloseWrite()
		} else {
			s.conn.Close()
		}
	}
	s.readerWg.Wait()
	s.conn.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.ackErr
}
