package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// replicaStub serves /v1/stats with the given role and answers queries
// and summaries; writes are rejected 503 read-only when role=replica.
func replicaStub(t *testing.T, role string, estimate float64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var writes atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/stats":
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"role":%q,"count":1}`, role)
		case "/v1/query":
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"op":"le","c":1,"estimate":%g}`, estimate)
		case "/v1/summary":
			io.WriteString(w, "summary-bytes-"+role)
		case "/v1/push", "/v1/ingest":
			io.Copy(io.Discard, r.Body)
			if role == "replica" {
				w.WriteHeader(http.StatusServiceUnavailable)
				io.WriteString(w, `{"error":"read-only replica: writes go to the primary"}`)
				return
			}
			writes.Add(1)
			io.WriteString(w, `{"merged":true}`)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(srv.Close)
	return srv, &writes
}

// TestReadFailover: with WithReplicas configured, a dead primary moves
// queries, stats, and summaries to the replica instead of erroring.
func TestReadFailover(t *testing.T) {
	replica, _ := replicaStub(t, "replica", 42)
	dead := httptest.NewServer(http.HandlerFunc(nil))
	dead.Close() // connection refused from here on

	cl := New(dead.URL, WithReplicas(replica.URL), WithRetries(0))
	got, err := cl.QueryLE(context.Background(), 1)
	if err != nil || got != 42 {
		t.Fatalf("query did not fail over: %v %v", got, err)
	}
	st, err := cl.Stats(context.Background())
	if err != nil || st.Role != "replica" {
		t.Fatalf("stats did not fail over: %+v %v", st, err)
	}
	sum, err := cl.Summary(context.Background())
	if err != nil || string(sum) != "summary-bytes-replica" {
		t.Fatalf("summary did not fail over: %q %v", sum, err)
	}
}

// TestReadFailoverOn5xx: in multi-base mode a delivered 5xx also moves
// the read — another base may hold the same state and answer.
func TestReadFailover5xx(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":"engine wedged"}`)
	}))
	t.Cleanup(broken.Close)
	replica, _ := replicaStub(t, "replica", 7)

	cl := New(broken.URL, WithReplicas(replica.URL), WithRetries(0))
	if got, err := cl.QueryLE(context.Background(), 1); err != nil || got != 7 {
		t.Fatalf("query did not fail over on 5xx: %v %v", got, err)
	}

	// Single-base clients keep the old contract: the 5xx is the answer.
	solo := New(broken.URL, WithRetries(0))
	if _, err := solo.QueryLE(context.Background(), 1); err == nil {
		t.Fatal("single-base 5xx swallowed")
	}
}

// TestWriteRedirect: a 503 read-only rejection from the base triggers
// one probe across the bases and redirects the write to the server
// currently accepting writes (the promoted replica).
func TestWriteRedirect(t *testing.T) {
	demoted, demotedWrites := replicaStub(t, "replica", 0)
	promoted, promotedWrites := replicaStub(t, "coordinator", 0)

	cl := New(demoted.URL, WithReplicas(promoted.URL), WithRetries(0))
	if err := cl.Push(context.Background(), []byte{1}); err != nil {
		t.Fatalf("Push not redirected: %v", err)
	}
	if demotedWrites.Load() != 0 || promotedWrites.Load() != 1 {
		t.Fatalf("writes landed wrong: demoted=%d promoted=%d", demotedWrites.Load(), promotedWrites.Load())
	}
	if err := cl.AddBatch(context.Background(), nil); err != nil {
		t.Fatalf("empty AddBatch: %v", err)
	}

	// Without replicas to probe, the 503 is surfaced as IsReadOnly.
	solo := New(demoted.URL, WithRetries(0))
	err := solo.Push(context.Background(), []byte{1})
	if !IsReadOnly(err) {
		t.Fatalf("want IsReadOnly error, got %v", err)
	}
}

// TestIsReadOnly: only the replica rejection shape qualifies.
func TestIsReadOnly(t *testing.T) {
	if IsReadOnly(nil) {
		t.Fatal("nil is read-only")
	}
	if IsReadOnly(errors.New("read-only replica")) {
		t.Fatal("non-APIError matched")
	}
	if IsReadOnly(&APIError{Status: http.StatusServiceUnavailable, Message: "shutting down"}) {
		t.Fatal("plain 503 matched")
	}
	if !IsReadOnly(&APIError{Status: http.StatusServiceUnavailable, Message: "read-only replica: writes go to the primary"}) {
		t.Fatal("replica rejection not matched")
	}
}

// TestPromoteWire: Promote posts /v1/promote with the admin token and
// surfaces the server's error body.
func TestPromoteWire(t *testing.T) {
	var gotToken atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/promote" {
			t.Errorf("unexpected request: %s %s", r.Method, r.URL.Path)
		}
		gotToken.Store(r.Header.Get("X-Admin-Token"))
		io.WriteString(w, `{"promoted":true,"lsn":9}`)
	}))
	t.Cleanup(srv.Close)
	cl := New(srv.URL, WithAdminToken("s3cret"))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.Promote(ctx); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if got, _ := gotToken.Load().(string); got != "s3cret" {
		t.Fatalf("admin token on the wire: %q", got)
	}
}
