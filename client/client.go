// Package client is the Go client for the corrd network service
// (cmd/corrd): batched tuple ingest, site→coordinator summary pushes,
// and correlated-aggregate queries over plain HTTP with no dependencies
// beyond the standard library.
//
// A Client is safe for concurrent use; it reuses connections through a
// shared http.Transport and recycles its encode buffers through a pool.
// Large batches are split into chunks (WithChunkSize) so a single
// request body stays bounded no matter how much the caller hands over.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/tupleio"
)

// DefaultChunkSize is the maximum tuples encoded into one ingest
// request: large enough to amortize the HTTP round trip, small enough
// to stay far below the server's default body limit.
const DefaultChunkSize = 16384

// APIError is a non-2xx response from the service, carrying the
// server's JSON error message.
type APIError struct {
	Status  int    // HTTP status code
	Message string // server-provided description
	// RetryAfter is the server's Retry-After hint (zero when absent).
	// corrd sends it on 429 overload sheds and 503 degraded rejections —
	// both definite refusals, applied nowhere — and the retry loop
	// honors it as a backoff floor.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("corrd: %s (HTTP %d)", e.Message, e.Status)
}

// Stats is the /v1/stats response (also what the service renders).
type Stats struct {
	Role           string `json:"role"`
	Aggregate      string `json:"aggregate"`
	Shards         int    `json:"shards"`
	Count          uint64 `json:"count"`
	Space          int64  `json:"space"`
	TuplesIngested uint64 `json:"tuples_ingested"`
	PushesMerged   uint64 `json:"pushes_merged"`
	QueriesServed  uint64 `json:"queries_served"`

	// Group commit and epoch cache: requests/groups is the live fsync
	// amortization factor, hits/(hits+rebuilds) the fraction of queries
	// that skipped the shard merge entirely.
	IngestGroups       uint64 `json:"ingest_groups,omitempty"`
	IngestGroupReqs    uint64 `json:"ingest_group_requests,omitempty"`
	QueryCacheHits     uint64 `json:"query_cache_hits,omitempty"`
	QueryCacheRebuilds uint64 `json:"query_cache_rebuilds,omitempty"`

	// Streaming-ingest transport counters (present when the server runs
	// with -stream-addr and has seen stream traffic).
	StreamConns      int64   `json:"stream_conns,omitempty"`
	StreamConnsTotal uint64  `json:"stream_conns_total,omitempty"`
	StreamFrames     uint64  `json:"stream_frames,omitempty"`
	StreamTuples     uint64  `json:"stream_tuples,omitempty"`
	Restored         bool    `json:"restored_from_snapshot"`
	LastSnapshot     int64   `json:"last_snapshot_unix"`
	UptimeSeconds    float64 `json:"uptime_seconds"`

	// WAL fields are present when the server runs with -wal-dir.
	WALEnabled       bool    `json:"wal_enabled,omitempty"`
	WALFsync         string  `json:"wal_fsync,omitempty"`
	WALFsyncs        uint64  `json:"wal_fsyncs,omitempty"`
	WALSyncErrors    uint64  `json:"wal_sync_errors,omitempty"`
	WALSegments      int64   `json:"wal_segments,omitempty"`
	WALAppendedBytes uint64  `json:"wal_appended_bytes,omitempty"`
	WALLastLSN       uint64  `json:"wal_last_lsn,omitempty"`
	WALReplayRecords uint64  `json:"wal_replay_records,omitempty"`
	WALReplaySeconds float64 `json:"wal_replay_seconds,omitempty"`

	// Multi-tenant registry aggregates; the engine fields above (count,
	// space, shards) always describe one tenant — the default without
	// ?tenant=, the named one with it.
	Tenants     int   `json:"tenants,omitempty"`
	TenantsLive int   `json:"tenants_live,omitempty"`
	TenantBytes int64 `json:"tenant_bytes,omitempty"`

	// Per-tenant view (?tenant=): which namespace the engine fields and
	// the Tenant* counters below describe. TenantSpills/TenantRestores
	// are server-wide without ?tenant=, that tenant's with it.
	Tenant               string `json:"tenant,omitempty"`
	TenantTuplesIngested uint64 `json:"tenant_tuples_ingested,omitempty"`
	TenantPushesMerged   uint64 `json:"tenant_pushes_merged,omitempty"`
	TenantQueriesServed  uint64 `json:"tenant_queries_served,omitempty"`
	TenantSpills         uint64 `json:"tenant_spills,omitempty"`
	TenantRestores       uint64 `json:"tenant_restores,omitempty"`

	// Pipeline-stage latency breakdown, keyed by stage name (enqueue,
	// apply, append, fsync, ack). Present once the server has committed
	// at least one ingest; stages that never fired are omitted.
	PipelineStages map[string]StageStats `json:"pipeline_stages,omitempty"`

	// Replication fields are present when the server was started as a
	// replica (-role=replica). Promoted reports that it has since been
	// promoted to primary; lag is against the primary's last observed
	// WAL frontier.
	ReplicaOf         string  `json:"replica_of,omitempty"`
	ReplicaAppliedLSN uint64  `json:"replica_applied_lsn,omitempty"`
	ReplicaPrimaryLSN uint64  `json:"replica_primary_lsn,omitempty"`
	ReplicaLagRecords uint64  `json:"replica_lag_records,omitempty"`
	ReplicaLagSeconds float64 `json:"replica_lag_seconds,omitempty"`
	Promoted          bool    `json:"promoted,omitempty"`

	// Health is the degraded-mode state machine's position ("healthy",
	// "degraded", "recovering"); DegradedSeconds the cumulative time
	// spent out of healthy.
	Health          string  `json:"health,omitempty"`
	DegradedSeconds float64 `json:"degraded_seconds,omitempty"`
}

// StageStats summarizes one commit-pipeline stage's latency histogram:
// how many times the stage ran and its mean, median, and tail cost in
// milliseconds. The full bucket data lives in the Prometheus exposition
// (corrd_pipeline_stage_seconds); this is the JSON-friendly digest the
// stats endpoint and the load generator's report carry.
// The observation count is deliberately not named "count" on the wire:
// the top-level Stats carries the engine tuple count under that key,
// and scripted consumers grep the flat JSON.
type StageStats struct {
	Count uint64  `json:"samples"`
	AvgMs float64 `json:"avg_ms"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// QueryResult is the /v1/query response for a single cutoff.
type QueryResult struct {
	Op       string  `json:"op"`
	C        uint64  `json:"c"`
	Estimate float64 `json:"estimate"`
}

// MultiQueryResult is the /v1/query response when the c parameter
// repeats: every cutoff answered over one engine barrier.
type MultiQueryResult struct {
	Op      string        `json:"op"`
	Results []QueryResult `json:"results"`
}

// ingestResult is the /v1/ingest and /v1/push acknowledgement.
type ingestResult struct {
	Tuples uint64 `json:"tuples,omitempty"`
	Merged bool   `json:"merged,omitempty"`
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// custom transports, httptest clients).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithChunkSize caps tuples per ingest request; n < 1 is ignored.
func WithChunkSize(n int) Option {
	return func(c *Client) {
		if n >= 1 {
			c.chunk = n
		}
	}
}

// WithRetries sets how many times a request is retried after a
// transient transport error — the connection was refused, reset, or
// timed out before any HTTP response arrived — before the error is
// returned; n < 0 disables retries. The default is 3. Retries respect
// the request context and back off exponentially with jitter
// (WithRetryBackoff). Once a response status line has been received the
// request is never retried: every HTTP status (4xx and 5xx included) is
// the server speaking — for corrd a 503 is a semantic answer (the
// paper's FAIL, or shutdown) — and a body that dies mid-read may have
// already been applied, so replaying it could double-ingest.
//
// Non-idempotent calls narrow the policy further: Push never retries an
// ambiguous timeout (the image may already have been merged) and
// Promote is strictly single-attempt — see their doc comments.
func WithRetries(n int) Option {
	return func(c *Client) {
		if n < 0 {
			n = 0
		}
		c.retries = n
	}
}

// WithRetryBackoff sets the first retry delay and the cap it doubles
// toward. Defaults: 50ms base, 1s cap. Each delay is jittered uniformly
// over [base/2, base) so synchronized clients fan out.
func WithRetryBackoff(base, max time.Duration) Option {
	return func(c *Client) {
		if base > 0 {
			c.backoffBase = base
		}
		if max > 0 {
			c.backoffMax = max
		}
	}
}

// WithTenant scopes every request to one of the daemon's keyed
// namespaces: ingest and push address (and, subject to the server's
// caps, create) that tenant, queries, stats, and summaries read it. The
// default is the empty key — the default tenant, which is also where
// every request from a pre-tenant client lands.
func WithTenant(name string) Option {
	return func(c *Client) { c.tenant = name }
}

// WithReplicas names read replicas of the base server (base URLs like
// the primary's). With at least one replica configured, reads (query,
// stats, summary, health) fail over: the primary is tried first, and a
// transport error — or any 5xx, which a lone-server client would
// surface as the semantic answer it is — moves the read to the next
// base. Writes still go to the primary, but a 503 "read-only replica"
// rejection (the base has been demoted, or the deployment failed over
// behind this client's back) triggers one probe across all bases for a
// server currently accepting writes, and the write is redirected there.
func WithReplicas(bases ...string) Option {
	return func(c *Client) {
		for _, b := range bases {
			c.replicas = append(c.replicas, strings.TrimRight(b, "/"))
		}
	}
}

// WithAdminToken carries the server's -admin-token on admin calls
// (Promote). Without it Promote is rejected by any corrd whose
// operator configured a token.
func WithAdminToken(token string) Option {
	return func(c *Client) { c.adminToken = token }
}

// Client talks to one corrd base URL (plus optional read replicas).
type Client struct {
	base        string
	replicas    []string // WithReplicas: read-failover bases after base
	adminToken  string
	hc          *http.Client
	chunk       int
	tenant      string
	retries     int
	backoffBase time.Duration
	backoffMax  time.Duration
	bufs        sync.Pool // *[]byte encode buffers
}

// endpoint joins a path (optionally already carrying a query string)
// with the client's tenant scope.
func (c *Client) endpoint(path string) string {
	if c.tenant == "" {
		return path
	}
	sep := "?"
	if strings.ContainsRune(path, '?') {
		sep = "&"
	}
	return path + sep + "tenant=" + url.QueryEscape(c.tenant)
}

// New builds a client for a base URL like "http://localhost:7070". The
// default http.Client has a 30s overall timeout; pass WithHTTPClient to
// change it.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:        strings.TrimRight(base, "/"),
		hc:          &http.Client{Timeout: 30 * time.Second},
		chunk:       DefaultChunkSize,
		retries:     3,
		backoffBase: 50 * time.Millisecond,
		backoffMax:  time.Second,
	}
	c.bufs.New = func() any { b := make([]byte, 0, 64<<10); return &b }
	for _, o := range opts {
		o(c)
	}
	return c
}

// AddBatch streams the batch to POST /v1/ingest in chunks of at most
// the configured chunk size. Chunks already accepted stay ingested when
// a later chunk fails; the returned error reports how many tuples made
// it. Zero weights count as 1, like the library's AddBatch.
func (c *Client) AddBatch(ctx context.Context, batch []correlated.Tuple) error {
	bp := c.bufs.Get().(*[]byte)
	defer c.bufs.Put(bp)
	for off := 0; off < len(batch); off += c.chunk {
		end := off + c.chunk
		if end > len(batch) {
			end = len(batch)
		}
		*bp = tupleio.AppendBatch((*bp)[:0], batch[off:end])
		if err := c.post(ctx, c.endpoint("/v1/ingest"), tupleio.ContentType, *bp, nil); err != nil {
			return fmt.Errorf("after %d of %d tuples: %w", off, len(batch), err)
		}
	}
	return nil
}

// Push ships a marshaled summary image — a summary's MarshalBinary or a
// shard engine's MarshalMerged — to POST /v1/push, the paper's
// site→coordinator path.
//
// Push is not idempotent: merging the same delta image twice
// double-counts it permanently (ingest duplicates merely re-add
// tuples; a push image summarizes many). It therefore retries only
// definite transport failures — refused, reset, or slammed
// connections, where no response means no merge — and never an
// ambiguous timeout, where the coordinator may have merged the image
// and the acknowledgement simply never arrived. On such a timeout the
// error is surfaced and the caller must decide — corrd's own site role
// folds the image back locally and re-ships the union next round. A
// definite 503 "read-only replica" rejection (nothing was merged) is
// redirected to a promoted primary when WithReplicas knows of one.
func (c *Client) Push(ctx context.Context, image []byte) error {
	return c.postPolicy(ctx, c.endpoint("/v1/push"), "application/octet-stream", image, nil, false)
}

// Promote asks the base server to promote itself from replica to
// primary (POST /v1/promote, gated by WithAdminToken). Promote is
// strictly single-attempt — stricter even than Push's no-ambiguous-
// timeout policy: a promote that succeeded server-side but lost its
// response would, on retry, surface a confusing 409, and blindly
// re-promoting during a failover window is how split-brain happens.
// A 409 means the server is not a replica (already primary).
func (c *Client) Promote(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/promote", nil)
	if err != nil {
		return err
	}
	if c.adminToken != "" {
		req.Header.Set("X-Admin-Token", c.adminToken)
	}
	return c.doOnce(req, nil)
}

// QueryLE estimates AGG{x : y <= cutoff} on the server.
func (c *Client) QueryLE(ctx context.Context, cutoff uint64) (float64, error) {
	return c.query(ctx, "le", cutoff)
}

// QueryGE estimates AGG{x : y >= cutoff} on the server.
func (c *Client) QueryGE(ctx context.Context, cutoff uint64) (float64, error) {
	return c.query(ctx, "ge", cutoff)
}

func (c *Client) query(ctx context.Context, op string, cutoff uint64) (float64, error) {
	var res QueryResult
	q := url.Values{"op": {op}, "c": {strconv.FormatUint(cutoff, 10)}}
	if err := c.get(ctx, c.endpoint("/v1/query?"+q.Encode()), &res); err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// QueryBatch answers every cutoff in one round trip (repeated c=
// parameters on GET /v1/query), in the order given — the drill-down
// loop's bulk path. op is "le" or "ge".
func (c *Client) QueryBatch(ctx context.Context, op string, cutoffs []uint64) ([]QueryResult, error) {
	if len(cutoffs) == 0 {
		return nil, nil
	}
	cs := make([]string, len(cutoffs))
	for i, cu := range cutoffs {
		cs[i] = strconv.FormatUint(cu, 10)
	}
	q := url.Values{"op": {op}, "c": cs}
	if len(cutoffs) == 1 {
		var res QueryResult
		if err := c.get(ctx, c.endpoint("/v1/query?"+q.Encode()), &res); err != nil {
			return nil, err
		}
		return []QueryResult{res}, nil
	}
	var res MultiQueryResult
	if err := c.get(ctx, c.endpoint("/v1/query?"+q.Encode()), &res); err != nil {
		return nil, err
	}
	return res.Results, nil
}

// Stats fetches the server's /v1/stats (the tenant's view when the
// client is tenant-scoped).
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var s Stats
	err := c.get(ctx, c.endpoint("/v1/stats"), &s)
	return s, err
}

// Summary fetches the server's merged summary image (GET /v1/summary) —
// the same bytes the server would Push as a site, usable with
// MergeMarshaled or UnmarshalBinary on an identically configured
// summary.
func (c *Client) Summary(ctx context.Context) ([]byte, error) {
	bases := c.readBases()
	var lastErr error
	for i, b := range bases {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b+c.endpoint("/v1/summary"), nil)
		if err != nil {
			return nil, err
		}
		resp, err := c.hc.Do(req)
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				defer resp.Body.Close()
				return io.ReadAll(resp.Body)
			}
			err = apiError(resp)
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}
		lastErr = err
		if i == len(bases)-1 || !failsOver(ctx, err) {
			return nil, err
		}
	}
	return nil, lastErr
}

// Healthy checks /healthz.
func (c *Client) Healthy(ctx context.Context) error {
	return c.get(ctx, "/healthz", nil)
}

func (c *Client) post(ctx context.Context, path, contentType string, body []byte, out any) error {
	return c.postPolicy(ctx, path, contentType, body, out, true)
}

// postPolicy is post with an explicit retry policy: idempotent=false
// (Push) refuses to retry an ambiguous timeout, where the request may
// already have been applied server-side.
func (c *Client) postPolicy(ctx context.Context, path, contentType string, body []byte, out any, idempotent bool) error {
	err := c.doRetry(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", contentType)
		return req, nil
	}, out, idempotent)
	if err != nil && len(c.replicas) > 0 && IsReadOnly(err) {
		// The base is (now) a replica: one probe across the configured
		// bases for a server accepting writes, then redirect. The 503
		// was a definite refusal, so re-sending cannot double-apply.
		if alt := c.findWritable(ctx); alt != "" {
			return c.postOnce(ctx, alt, path, contentType, body, out)
		}
	}
	return err
}

// postOnce is a single-attempt POST to an explicit base: no transport
// retries, for requests whose duplicate application is worse than a
// surfaced error (Push) or that must not race a failover (Promote's
// redirect target).
func (c *Client) postOnce(ctx context.Context, base, path, contentType string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	return c.doOnce(req, out)
}

// findWritable probes every configured base's /v1/stats and returns
// the first whose role currently accepts writes — the failover target
// after a 503 read-only rejection. Empty when none answers as primary.
func (c *Client) findWritable(ctx context.Context) string {
	for _, b := range append([]string{c.base}, c.replicas...) {
		var s Stats
		err := c.do(ctx, func() (*http.Request, error) {
			return http.NewRequestWithContext(ctx, http.MethodGet, b+"/v1/stats", nil)
		}, &s)
		if err == nil && s.Role != "replica" {
			return b
		}
	}
	return ""
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	bases := c.readBases()
	var err error
	for i, b := range bases {
		base := b
		err = c.do(ctx, func() (*http.Request, error) {
			return http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
		}, out)
		if err == nil || i == len(bases)-1 || !failsOver(ctx, err) {
			return err
		}
	}
	return err
}

// readBases is the read-failover order: the primary first, then every
// configured replica. A client without WithReplicas reads only from
// its base, exactly as before.
func (c *Client) readBases() []string {
	if len(c.replicas) == 0 {
		return []string{c.base}
	}
	return append([]string{c.base}, c.replicas...)
}

// failsOver reports whether a read error is worth moving to the next
// base: transport failures always, and — only in multi-base mode, which
// is the sole caller — any 5xx, since another server may well hold the
// same state and answer. 4xx is the request's own fault everywhere.
func failsOver(ctx context.Context, err error) bool {
	if isTransient(ctx, err) {
		return true
	}
	var ae *APIError
	return errors.As(err, &ae) && ae.Status >= 500
}

// do runs the request, retrying transient transport errors with
// exponential backoff and jitter. build constructs a fresh request per
// attempt (the body reader is consumed by each try).
//
// Retrying a POST is at-least-once, not exactly-once: a connection that
// dies after the server applied (and WAL-logged) the batch but before
// the response arrived looks identical to one refused outright, and the
// retry applies the batch again — on a durable server the duplicate
// survives restarts. Callers for whom a rare duplicate is worse than a
// surfaced error should set WithRetries(0) and handle the transport
// error themselves; no retry policy can distinguish the two cases
// without server-side request dedup.
func (c *Client) do(ctx context.Context, build func() (*http.Request, error), out any) error {
	return c.doRetry(ctx, build, out, true)
}

// doRetry is the retry loop behind do, with the non-idempotent
// carve-out: when idempotent is false (Push), an attempt that ends in
// an ambiguous timeout — the request was sent, the response never came,
// and the server may have applied it — is surfaced immediately instead
// of retried. Definite failures (refused, reset, slammed before any
// response) stay retryable for everyone: no response status line means
// the server never spoke, and for those errors nothing was applied.
func (c *Client) doRetry(ctx context.Context, build func() (*http.Request, error), out any, idempotent bool) error {
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return err
		}
		err = c.doOnce(req, out)
		if err == nil {
			return nil
		}
		// A 429/503 carrying Retry-After is a definite refusal — the
		// server said so before applying anything, so retrying is safe
		// even for non-idempotent requests. The hint floors the delay:
		// the server knows its own recovery cadence better than our
		// exponential schedule does.
		if hint, ok := retryAfterHint(err); ok {
			if attempt >= c.retries || ctx.Err() != nil {
				return err
			}
			if werr := c.backoffFloor(ctx, attempt, hint); werr != nil {
				return errors.Join(err, werr)
			}
			continue
		}
		if attempt >= c.retries || !isTransient(ctx, err) {
			return err
		}
		if !idempotent && isAmbiguousTimeout(err) {
			return fmt.Errorf("client: not retrying non-idempotent request after ambiguous timeout (it may already have been applied): %w", err)
		}
		if werr := c.backoff(ctx, attempt); werr != nil {
			return errors.Join(err, werr)
		}
	}
}

// retryAfterHint extracts the server's Retry-After from an overload
// (429) or degraded (503) refusal. Only statuses corrd stamps the
// header on qualify: a read-only replica's 503 has no hint and must
// fail over, not spin here.
func retryAfterHint(err error) (time.Duration, bool) {
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > 0 &&
		(ae.Status == http.StatusTooManyRequests || ae.Status == http.StatusServiceUnavailable) {
		return ae.RetryAfter, true
	}
	return 0, false
}

// isTransient reports whether err is a transport-level failure worth
// retrying: the server never delivered a response, and the caller's
// context is still live. Liveness is judged from ctx itself, not from
// the error chain — an http.Client.Timeout expiring on a blackholed
// connection also surfaces as context.DeadlineExceeded, and that one IS
// the transient class retries exist for. Anything the server actually
// said — every *APIError, every status code — is final.
func isTransient(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false // the caller's own deadline or cancellation
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// isAmbiguousTimeout reports whether a transport error is a timeout
// that fired after the request may have been delivered: the attempt's
// outcome is unknown, so a non-idempotent request must not be replayed.
// Covers http.Client.Timeout (url.Error with Timeout()=true) and a
// per-attempt deadline surfacing as context.DeadlineExceeded.
func isAmbiguousTimeout(err error) bool {
	var ue *url.Error
	if errors.As(err, &ue) && ue.Timeout() {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// backoff sleeps for the attempt's jittered exponential delay, or
// returns early when ctx is done.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	return c.backoffFloor(ctx, attempt, 0)
}

// backoffFloor is backoff with a minimum delay — the server's
// Retry-After hint outranks the exponential schedule but still gets
// the fan-out jitter on top.
func (c *Client) backoffFloor(ctx context.Context, attempt int, floor time.Duration) error {
	d := c.backoffBase << attempt
	if d > c.backoffMax || d <= 0 {
		d = c.backoffMax
	}
	// Uniform jitter over [d/2, d): synchronized retriers fan out.
	if half := d / 2; half > 0 {
		d = half + rand.N(half)
	}
	if d < floor {
		d = floor
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Client) doOnce(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// apiError turns a non-2xx response into an *APIError, preferring the
// server's JSON error body.
func apiError(resp *http.Response) error {
	var payload struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err := json.Unmarshal(body, &payload); err != nil || payload.Error == "" {
		payload.Error = strings.TrimSpace(string(body))
	}
	if payload.Error == "" {
		payload.Error = http.StatusText(resp.StatusCode)
	}
	ae := &APIError{Status: resp.StatusCode, Message: payload.Error}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// IsIncompatible reports whether err is the service rejecting a push or
// restore because the image was built from different Options (HTTP 409).
func IsIncompatible(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusConflict
}

// IsTenantRejected reports whether err is a governance cap refusing to
// create a tenant: the count cap (HTTP 429) or the memory cap (413).
func IsTenantRejected(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) &&
		(ae.Status == http.StatusTooManyRequests || ae.Status == http.StatusRequestEntityTooLarge)
}

// IsReadOnly reports whether err is a read-only replica refusing a
// write (HTTP 503 with the replica rejection message): the write must
// go to the primary — or wait for this server's promotion.
func IsReadOnly(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusServiceUnavailable &&
		strings.Contains(ae.Message, "read-only replica")
}

// ErrBusy is the stream transport's AckBusy: the server shed the frame
// because its commit queue is full. Nothing was applied; back off and
// resend on the same connection.
var ErrBusy = errors.New("corrd: server overloaded, try again later")

// ErrDegraded is the stream transport's AckDegraded: the server's
// durability path is broken and writes are suspended until it recovers.
// Nothing was applied; the connection stays usable.
var ErrDegraded = errors.New("corrd: server degraded (writes suspended)")

// IsBusy reports whether err is the server shedding load — the stream's
// AckBusy or HTTP 429 from the bounded commit queue. The request was
// refused before anything was applied, so resending after the error's
// Retry-After (when it carries one) is always safe.
func IsBusy(err error) bool {
	if errors.Is(err, ErrBusy) {
		return true
	}
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests &&
		strings.Contains(ae.Message, "overload")
}

// IsDegraded reports whether err is a degraded server refusing writes —
// the stream's AckDegraded or HTTP 503 with the degraded message.
// Queries still work; writes should wait out Retry-After or go to
// another server.
func IsDegraded(err error) bool {
	if errors.Is(err, ErrDegraded) {
		return true
	}
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusServiceUnavailable &&
		strings.Contains(ae.Message, "degraded")
}
