// Package client is the Go client for the corrd network service
// (cmd/corrd): batched tuple ingest, site→coordinator summary pushes,
// and correlated-aggregate queries over plain HTTP with no dependencies
// beyond the standard library.
//
// A Client is safe for concurrent use; it reuses connections through a
// shared http.Transport and recycles its encode buffers through a pool.
// Large batches are split into chunks (WithChunkSize) so a single
// request body stays bounded no matter how much the caller hands over.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/tupleio"
)

// DefaultChunkSize is the maximum tuples encoded into one ingest
// request: large enough to amortize the HTTP round trip, small enough
// to stay far below the server's default body limit.
const DefaultChunkSize = 16384

// APIError is a non-2xx response from the service, carrying the
// server's JSON error message.
type APIError struct {
	Status  int    // HTTP status code
	Message string // server-provided description
}

func (e *APIError) Error() string {
	return fmt.Sprintf("corrd: %s (HTTP %d)", e.Message, e.Status)
}

// Stats is the /v1/stats response (also what the service renders).
type Stats struct {
	Role           string  `json:"role"`
	Aggregate      string  `json:"aggregate"`
	Shards         int     `json:"shards"`
	Count          uint64  `json:"count"`
	Space          int64   `json:"space"`
	TuplesIngested uint64  `json:"tuples_ingested"`
	PushesMerged   uint64  `json:"pushes_merged"`
	QueriesServed  uint64  `json:"queries_served"`
	Restored       bool    `json:"restored_from_snapshot"`
	LastSnapshot   int64   `json:"last_snapshot_unix"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
}

// QueryResult is the /v1/query response.
type QueryResult struct {
	Op       string  `json:"op"`
	C        uint64  `json:"c"`
	Estimate float64 `json:"estimate"`
}

// ingestResult is the /v1/ingest and /v1/push acknowledgement.
type ingestResult struct {
	Tuples uint64 `json:"tuples,omitempty"`
	Merged bool   `json:"merged,omitempty"`
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// custom transports, httptest clients).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithChunkSize caps tuples per ingest request; n < 1 is ignored.
func WithChunkSize(n int) Option {
	return func(c *Client) {
		if n >= 1 {
			c.chunk = n
		}
	}
}

// Client talks to one corrd base URL.
type Client struct {
	base  string
	hc    *http.Client
	chunk int
	bufs  sync.Pool // *[]byte encode buffers
}

// New builds a client for a base URL like "http://localhost:7070". The
// default http.Client has a 30s overall timeout; pass WithHTTPClient to
// change it.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:  strings.TrimRight(base, "/"),
		hc:    &http.Client{Timeout: 30 * time.Second},
		chunk: DefaultChunkSize,
	}
	c.bufs.New = func() any { b := make([]byte, 0, 64<<10); return &b }
	for _, o := range opts {
		o(c)
	}
	return c
}

// AddBatch streams the batch to POST /v1/ingest in chunks of at most
// the configured chunk size. Chunks already accepted stay ingested when
// a later chunk fails; the returned error reports how many tuples made
// it. Zero weights count as 1, like the library's AddBatch.
func (c *Client) AddBatch(ctx context.Context, batch []correlated.Tuple) error {
	bp := c.bufs.Get().(*[]byte)
	defer c.bufs.Put(bp)
	for off := 0; off < len(batch); off += c.chunk {
		end := off + c.chunk
		if end > len(batch) {
			end = len(batch)
		}
		*bp = tupleio.AppendBatch((*bp)[:0], batch[off:end])
		if err := c.post(ctx, "/v1/ingest", tupleio.ContentType, *bp, nil); err != nil {
			return fmt.Errorf("after %d of %d tuples: %w", off, len(batch), err)
		}
	}
	return nil
}

// Push ships a marshaled summary image — a summary's MarshalBinary or a
// shard engine's MarshalMerged — to POST /v1/push, the paper's
// site→coordinator path.
func (c *Client) Push(ctx context.Context, image []byte) error {
	return c.post(ctx, "/v1/push", "application/octet-stream", image, nil)
}

// QueryLE estimates AGG{x : y <= cutoff} on the server.
func (c *Client) QueryLE(ctx context.Context, cutoff uint64) (float64, error) {
	return c.query(ctx, "le", cutoff)
}

// QueryGE estimates AGG{x : y >= cutoff} on the server.
func (c *Client) QueryGE(ctx context.Context, cutoff uint64) (float64, error) {
	return c.query(ctx, "ge", cutoff)
}

func (c *Client) query(ctx context.Context, op string, cutoff uint64) (float64, error) {
	var res QueryResult
	q := url.Values{"op": {op}, "c": {strconv.FormatUint(cutoff, 10)}}
	if err := c.get(ctx, "/v1/query?"+q.Encode(), &res); err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// Stats fetches the server's /v1/stats.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var s Stats
	err := c.get(ctx, "/v1/stats", &s)
	return s, err
}

// Summary fetches the server's merged summary image (GET /v1/summary) —
// the same bytes the server would Push as a site, usable with
// MergeMarshaled or UnmarshalBinary on an identically configured
// summary.
func (c *Client) Summary(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/summary", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Healthy checks /healthz.
func (c *Client) Healthy(ctx context.Context) error {
	return c.get(ctx, "/healthz", nil)
}

func (c *Client) post(ctx context.Context, path, contentType string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// apiError turns a non-2xx response into an *APIError, preferring the
// server's JSON error body.
func apiError(resp *http.Response) error {
	var payload struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err := json.Unmarshal(body, &payload); err != nil || payload.Error == "" {
		payload.Error = strings.TrimSpace(string(body))
	}
	if payload.Error == "" {
		payload.Error = http.StatusText(resp.StatusCode)
	}
	return &APIError{Status: resp.StatusCode, Message: payload.Error}
}

// IsIncompatible reports whether err is the service rejecting a push or
// restore because the image was built from different Options (HTTP 409).
func IsIncompatible(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusConflict
}
