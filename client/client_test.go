package client

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/tupleio"
)

// TestAddBatchChunking: a batch larger than the chunk size splits into
// ceil(n/chunk) requests whose decoded tuples reassemble the original
// batch in order.
func TestAddBatchChunking(t *testing.T) {
	var requests int
	var got []correlated.Tuple
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/ingest" || r.Header.Get("Content-Type") != tupleio.ContentType {
			t.Errorf("unexpected request: %s %s %s", r.Method, r.URL.Path, r.Header.Get("Content-Type"))
		}
		requests++
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		tuples, err := tupleio.Decode(nil, body)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tuples...)
		json.NewEncoder(w).Encode(map[string]int{"tuples": len(tuples)})
	}))
	defer srv.Close()

	batch := make([]correlated.Tuple, 2500)
	for i := range batch {
		batch[i] = correlated.Tuple{X: uint64(i), Y: uint64(i * 2), W: 1}
	}
	cl := New(srv.URL, WithChunkSize(1000))
	if err := cl.AddBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if requests != 3 {
		t.Fatalf("2500 tuples at chunk 1000: %d requests, want 3", requests)
	}
	if len(got) != len(batch) {
		t.Fatalf("reassembled %d tuples, want %d", len(got), len(batch))
	}
	for i := range batch {
		if got[i] != batch[i] {
			t.Fatalf("tuple %d: got %+v want %+v", i, got[i], batch[i])
		}
	}
}

// TestAPIErrorMapping: non-2xx responses surface the server's JSON
// error message and status, and 409 is detectable as incompatibility.
func TestAPIErrorMapping(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		io.WriteString(w, `{"error":"seed mismatch"}`)
	}))
	defer srv.Close()
	err := New(srv.URL).Push(context.Background(), []byte{1})
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("want *APIError, got %T: %v", err, err)
	}
	if ae.Status != http.StatusConflict || ae.Message != "seed mismatch" {
		t.Fatalf("APIError: %+v", ae)
	}
	if !IsIncompatible(err) {
		t.Fatal("409 not detected as incompatible")
	}
}
