package client

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/tupleio"
)

// TestAddBatchChunking: a batch larger than the chunk size splits into
// ceil(n/chunk) requests whose decoded tuples reassemble the original
// batch in order.
func TestAddBatchChunking(t *testing.T) {
	var requests int
	var got []correlated.Tuple
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/ingest" || r.Header.Get("Content-Type") != tupleio.ContentType {
			t.Errorf("unexpected request: %s %s %s", r.Method, r.URL.Path, r.Header.Get("Content-Type"))
		}
		requests++
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		tuples, err := tupleio.Decode(nil, body)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tuples...)
		json.NewEncoder(w).Encode(map[string]int{"tuples": len(tuples)})
	}))
	defer srv.Close()

	batch := make([]correlated.Tuple, 2500)
	for i := range batch {
		batch[i] = correlated.Tuple{X: uint64(i), Y: uint64(i * 2), W: 1}
	}
	cl := New(srv.URL, WithChunkSize(1000))
	if err := cl.AddBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if requests != 3 {
		t.Fatalf("2500 tuples at chunk 1000: %d requests, want 3", requests)
	}
	if len(got) != len(batch) {
		t.Fatalf("reassembled %d tuples, want %d", len(got), len(batch))
	}
	for i := range batch {
		if got[i] != batch[i] {
			t.Fatalf("tuple %d: got %+v want %+v", i, got[i], batch[i])
		}
	}
}

// TestAPIErrorMapping: non-2xx responses surface the server's JSON
// error message and status, and 409 is detectable as incompatibility.
func TestAPIErrorMapping(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		io.WriteString(w, `{"error":"seed mismatch"}`)
	}))
	defer srv.Close()
	err := New(srv.URL).Push(context.Background(), []byte{1})
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("want *APIError, got %T: %v", err, err)
	}
	if ae.Status != http.StatusConflict || ae.Message != "seed mismatch" {
		t.Fatalf("APIError: %+v", ae)
	}
	if !IsIncompatible(err) {
		t.Fatal("409 not detected as incompatible")
	}
}

// flakyServer drops the first failures connections at the TCP level
// (the transport sees a reset with no HTTP response — the transient
// class the client retries), then serves normally.
func flakyServer(t *testing.T, failures int, h http.Handler) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= int64(failures) {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("response writer cannot hijack")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close() // slam the door: no response bytes at all
			return
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &attempts
}

// TestRetryTransientTransportErrors: AddBatch and Push survive dropped
// connections within the retry budget, with backoff between attempts.
func TestRetryTransientTransportErrors(t *testing.T) {
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"tuples":3}`)
	})
	srv, attempts := flakyServer(t, 2, ok)
	cl := New(srv.URL, WithRetries(3), WithRetryBackoff(time.Millisecond, 10*time.Millisecond))
	batch := []correlated.Tuple{{X: 1, Y: 2, W: 1}, {X: 3, Y: 4, W: 1}, {X: 5, Y: 6, W: 1}}
	if err := cl.AddBatch(context.Background(), batch); err != nil {
		t.Fatalf("AddBatch through flaky transport: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (2 drops + 1 success)", got)
	}

	srv2, attempts2 := flakyServer(t, 1, ok)
	cl2 := New(srv2.URL, WithRetries(2), WithRetryBackoff(time.Millisecond, 10*time.Millisecond))
	if err := cl2.Push(context.Background(), []byte{9, 9, 9}); err != nil {
		t.Fatalf("Push through flaky transport: %v", err)
	}
	if got := attempts2.Load(); got != 2 {
		t.Fatalf("push attempts: %d", got)
	}
}

// TestRetryBudgetExhausted: a server that never recovers still fails,
// after exactly retries+1 attempts.
func TestRetryBudgetExhausted(t *testing.T) {
	srv, attempts := flakyServer(t, 1<<30, nil)
	cl := New(srv.URL, WithRetries(2), WithRetryBackoff(time.Millisecond, 5*time.Millisecond))
	if err := cl.Push(context.Background(), []byte{1}); err == nil {
		t.Fatal("push to always-failing server succeeded")
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts: %d, want 3", got)
	}
}

// TestNoRetryOnHTTPErrors: a delivered HTTP response — even a 5xx — is
// the server speaking, not a transport fault; it must not be retried.
func TestNoRetryOnHTTPErrors(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"FAIL"}`)
	}))
	defer srv.Close()
	cl := New(srv.URL, WithRetries(5), WithRetryBackoff(time.Millisecond, 5*time.Millisecond))
	if _, err := cl.QueryLE(context.Background(), 7); err == nil {
		t.Fatal("503 reported as success")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("5xx retried: %d attempts", got)
	}
}

// TestRetryHonorsContext: cancellation mid-backoff stops the loop
// promptly with the context error.
func TestRetryHonorsContext(t *testing.T) {
	srv, attempts := flakyServer(t, 1<<30, nil)
	cl := New(srv.URL, WithRetries(1000), WithRetryBackoff(time.Hour, time.Hour))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- cl.Push(ctx, []byte{1}) }()
	// Let the first attempt fail and the backoff begin, then cancel.
	for attempts.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry loop ignored cancellation")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts after cancel: %d", got)
	}
}

// TestQueryBatchWire: QueryBatch hits /v1/query with repeated c= and
// decodes the multi-result shape.
func TestQueryBatchWire(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cs := r.URL.Query()["c"]
		if len(cs) != 3 || r.URL.Query().Get("op") != "le" {
			t.Errorf("query params: %v", r.URL.Query())
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"op":"le","results":[{"op":"le","c":1,"estimate":10},{"op":"le","c":2,"estimate":20},{"op":"le","c":3,"estimate":30}]}`)
	}))
	defer srv.Close()
	got, err := New(srv.URL).QueryBatch(context.Background(), "le", []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1].C != 2 || got[1].Estimate != 20 {
		t.Fatalf("QueryBatch: %+v", got)
	}
	if res, err := New(srv.URL).QueryBatch(context.Background(), "le", nil); err != nil || res != nil {
		t.Fatalf("empty QueryBatch: %v %v", res, err)
	}
}

// TestRetryOnClientTimeout: an http.Client.Timeout expiring with no
// response (blackholed connection) is transient and retried for
// idempotent-policy calls like ingest; only the caller's own context
// deadline ends the loop. (Push is carved out — see the ambiguous
// timeout tests below.)
func TestRetryOnClientTimeout(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			io.Copy(io.Discard, r.Body)
			time.Sleep(600 * time.Millisecond) // past the client timeout
			return
		}
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, `{"tuples":1}`)
	}))
	defer srv.Close()
	cl := New(srv.URL,
		WithHTTPClient(&http.Client{Timeout: 100 * time.Millisecond}),
		WithRetries(2), WithRetryBackoff(time.Millisecond, 5*time.Millisecond))
	if err := cl.AddBatch(context.Background(), []correlated.Tuple{{X: 1, Y: 2, W: 1}}); err != nil {
		t.Fatalf("timed-out first attempt not retried: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts: %d, want 2", got)
	}
}

// TestPushNoRetryOnAmbiguousTimeout: a Push attempt that times out with
// the request delivered but unacknowledged may already have been merged
// by the coordinator; replaying the image would double-count it, so the
// client must surface the timeout after exactly one attempt even with
// retry budget to spare.
func TestPushNoRetryOnAmbiguousTimeout(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		io.Copy(io.Discard, r.Body)
		time.Sleep(600 * time.Millisecond) // past the client timeout, every time
	}))
	defer srv.Close()
	cl := New(srv.URL,
		WithHTTPClient(&http.Client{Timeout: 100 * time.Millisecond}),
		WithRetries(5), WithRetryBackoff(time.Millisecond, 5*time.Millisecond))
	err := cl.Push(context.Background(), []byte{1})
	if err == nil {
		t.Fatal("Push through a blackholed server succeeded")
	}
	if !strings.Contains(err.Error(), "ambiguous timeout") {
		t.Fatalf("error does not explain the carve-out: %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("ambiguous timeout retried: %d attempts, want 1", got)
	}
}

// TestPushRetriesDefiniteFailures: the carve-out is only for ambiguous
// timeouts — a slammed connection with no response bytes is a definite
// "nothing was merged", and Push still retries through it.
func TestPushRetriesDefiniteFailures(t *testing.T) {
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"merged":true}`)
	})
	srv, attempts := flakyServer(t, 2, ok)
	cl := New(srv.URL, WithRetries(3), WithRetryBackoff(time.Millisecond, 5*time.Millisecond))
	if err := cl.Push(context.Background(), []byte{7}); err != nil {
		t.Fatalf("Push through flaky transport: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts: %d, want 3 (2 drops + 1 success)", got)
	}
}

// TestPromoteSingleAttempt: Promote never retries anything — a promote
// whose response was lost already changed the cluster's shape, and a
// blind second attempt during a failover window risks split-brain. One
// slammed connection means one error, budget be damned.
func TestPromoteSingleAttempt(t *testing.T) {
	srv, attempts := flakyServer(t, 1<<30, nil)
	cl := New(srv.URL, WithRetries(5), WithRetryBackoff(time.Millisecond, 5*time.Millisecond))
	if err := cl.Promote(context.Background()); err == nil {
		t.Fatal("Promote through a dead server succeeded")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("Promote retried: %d attempts, want 1", got)
	}
}

// TestRetryAfterFloorsBackoff: a 429/503 carrying Retry-After is a
// definite refusal — retried even for non-idempotent requests, with the
// server's hint flooring the exponential schedule. A Push (the
// non-idempotent verb the ambiguous-timeout carve-out normally
// protects) must come back after the hinted delay and succeed.
func TestRetryAfterFloorsBackoff(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		if attempts.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			io.WriteString(w, `{"error":"overload: ingest queue full"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ok":true}`)
	}))
	defer srv.Close()
	cl := New(srv.URL, WithRetries(2), WithRetryBackoff(time.Millisecond, 5*time.Millisecond))
	start := time.Now()
	if err := cl.Push(context.Background(), []byte{1, 2, 3}); err != nil {
		t.Fatalf("push through a shedding server: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts: %d, want 2 (one shed + one success)", got)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry came back after %v; Retry-After: 1 must floor the 1ms backoff schedule", elapsed)
	}
}

// TestRetryAfterBudgetStillBounds: the hint floors the delay but does
// not grant extra attempts — a server that sheds forever exhausts the
// normal retry budget and surfaces the refusal.
func TestRetryAfterBudgetStillBounds(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"service degraded: wal probe failing"}`)
	}))
	defer srv.Close()
	// Context deadline cuts the waits short so the test does not sit out
	// two full 1s floors; the refusal must still surface as the error.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err := New(srv.URL, WithRetries(5), WithRetryBackoff(time.Millisecond, 5*time.Millisecond)).
		Push(ctx, []byte{1})
	if !IsDegraded(err) {
		t.Fatalf("want the degraded refusal surfaced, got: %v", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.RetryAfter != time.Second {
		t.Fatalf("Retry-After not parsed onto APIError: %v", err)
	}
}

// TestIsBusyIsDegraded: the typed-error predicates recognize both the
// HTTP shapes corrd sends and the stream sentinels, and nothing else.
func TestIsBusyIsDegraded(t *testing.T) {
	busy := &APIError{Status: http.StatusTooManyRequests, Message: "overload: ingest queue full", RetryAfter: 2 * time.Second}
	degraded := &APIError{Status: http.StatusServiceUnavailable, Message: "service degraded: disk fault", RetryAfter: time.Second}
	readOnly := &APIError{Status: http.StatusServiceUnavailable, Message: "replica is read-only"}
	for _, tc := range []struct {
		name       string
		err        error
		busy, degr bool
	}{
		{"http 429 overload", busy, true, false},
		{"http 503 degraded", degraded, false, true},
		{"http 503 read-only", readOnly, false, false},
		{"stream ErrBusy", ErrBusy, true, false},
		{"stream ErrDegraded", ErrDegraded, false, true},
		{"wrapped ErrBusy", errors.Join(errors.New("frame 3"), ErrBusy), true, false},
		{"plain error", errors.New("boom"), false, false},
		{"nil", nil, false, false},
	} {
		if got := IsBusy(tc.err); got != tc.busy {
			t.Errorf("%s: IsBusy = %v, want %v", tc.name, got, tc.busy)
		}
		if got := IsDegraded(tc.err); got != tc.degr {
			t.Errorf("%s: IsDegraded = %v, want %v", tc.name, got, tc.degr)
		}
	}
	// Both refusal shapes carry the server's pacing hint for callers
	// that want it without string-matching.
	if hint, ok := retryAfterHint(busy); !ok || hint != 2*time.Second {
		t.Fatalf("retryAfterHint(busy) = %v, %v", hint, ok)
	}
	if _, ok := retryAfterHint(readOnly); ok {
		t.Fatal("read-only 503 without Retry-After must not look retryable in place")
	}
}
