package correlated_test

import (
	"fmt"

	correlated "github.com/streamagg/correlated"
)

// The basic workflow: ingest (x, y) tuples once, then query correlated
// aggregates for cutoffs chosen afterwards.
func ExampleF2Summary() {
	s, err := correlated.NewF2Summary(correlated.Options{
		Eps: 0.2, Delta: 0.1, YMax: 1023, MaxStreamLen: 1 << 16, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	// Identifier 7 appears three times with y <= 100, once above.
	for _, t := range []struct{ x, y uint64 }{
		{7, 10}, {7, 50}, {7, 100}, {7, 900}, {8, 40}, {9, 800},
	} {
		if err := s.Add(t.x, t.y); err != nil {
			panic(err)
		}
	}
	// F2 of {x : y <= 100} = 3^2 + 1^2 = 10 (small streams are exact:
	// they are answered from the singleton level).
	est, err := s.QueryLE(100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("F2(y<=100) = %.0f\n", est)
	// Output: F2(y<=100) = 10
}

// Correlated distinct counting with rarity.
func ExampleF0Summary() {
	s, err := correlated.NewF0Summary(correlated.Options{
		Eps: 0.2, Delta: 0.1, YMax: 1023, MaxX: 1 << 16, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	// Items 1..3 below the cutoff; item 2 twice (so 2 of 3 are "rare").
	for _, t := range []struct{ x, y uint64 }{
		{1, 10}, {2, 20}, {2, 30}, {3, 40}, {4, 500},
	} {
		if err := s.Add(t.x, t.y); err != nil {
			panic(err)
		}
	}
	distinct, _ := s.QueryLE(100)
	rarity, _ := s.RarityLE(100)
	fmt.Printf("distinct(y<=100) = %.0f, rarity = %.2f\n", distinct, rarity)
	// Output: distinct(y<=100) = 3, rarity = 0.67
}

// The drill-down pattern from the paper's introduction: a quantile summary
// picks the threshold, the correlated summary aggregates above it.
func ExampleQuantiles() {
	q, err := correlated.NewQuantiles(0.01)
	if err != nil {
		panic(err)
	}
	sum, err := correlated.NewSumSummary(correlated.Options{
		Eps: 0.1, Delta: 0.1, YMax: 1 << 20, MaxX: 1 << 20,
		Seed: 1, Predicate: correlated.GE,
	})
	if err != nil {
		panic(err)
	}
	for i := uint64(1); i <= 1000; i++ {
		size := i * 10 // flow sizes 10..10000
		q.Add(size)
		if err := sum.Add(size, size); err != nil {
			panic(err)
		}
	}
	median, _ := q.Median()
	total, _ := sum.QueryGE(median)
	// Both answers are approximations (rank error εn for the quantile,
	// relative error ε for the sum); assert the guarantees rather than
	// exact values.
	exactSum := 0.0
	for size := uint64(10); size <= 10000; size += 10 {
		if size >= median {
			exactSum += float64(size)
		}
	}
	fmt.Printf("median within 1%%: %v\n", median >= 4900 && median <= 5100)
	fmt.Printf("sum within 10%%: %v\n", total >= 0.9*exactSum && total <= 1.1*exactSum)
	// Output:
	// median within 1%: true
	// sum within 10%: true
}

// Turnstile streams: MULTIPASS answers correlated F2 over ±-weighted data
// in O(log ymax) passes (a single pass provably cannot).
func ExampleRunMultipass() {
	tape := correlated.NewTape(nil)
	for y := uint64(0); y < 16; y++ {
		tape.Append(correlated.Record{X: y % 4, Y: y, W: 2})
		tape.Append(correlated.Record{X: y % 4, Y: y, W: -1}) // deletion
	}
	res, err := correlated.RunMultipass(tape, correlated.MultipassConfig{
		Eps: 0.25, Delta: 0.1, YMax: 15, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("passes = %d\n", res.Passes)
	// Output: passes = 5
}
