// Package correlated implements streaming estimation of correlated
// aggregates, reproducing Tirthapura and Woodruff, "A General Method for
// Estimating Correlated Aggregates Over a Data Stream" (ICDE 2012;
// Algorithmica 73(2), 2015).
//
// On a stream of tuples (x, y) — x an item identifier, y a numeric
// attribute — a correlated aggregate query applies a selection predicate
// on y first and an aggregation on x second:
//
//	C(σ, AGG, S) = AGG{ x_i | σ(y_i) }
//
// The predicate is of the form y <= c (or y >= c), with the cutoff c
// supplied only at query time. That late binding is the point: one small
// summary, built online in a single pass, supports interactive drill-down
// ("aggregate the flows larger than the median; now only the top five
// percent") over cutoffs chosen after the data has gone by.
//
// # Summaries
//
//   - F2Summary, FkSummary — correlated frequency moments via the paper's
//     general reduction (Section 2) over AMS/CountSketch and
//     Indyk–Woodruff sketches.
//   - SumSummary, CountSummary — correlated SUM and COUNT through the same
//     reduction with exact counter "sketches".
//   - F0Summary — correlated distinct counting (Section 3.2) by distinct
//     sampling with y-priority eviction; also answers rarity queries
//     (Section 3.3).
//   - HeavyHittersSummary — correlated F2 heavy hitters (Section 3.3).
//   - Quantiles — a Greenwald–Khanna whole-stream quantile summary over
//     the y dimension, the companion structure for drill-down queries.
//   - CountWindow, F2Window, F0Window — sliding-window aggregation over
//     asynchronous (out-of-order) streams via the reduction of
//     Section 1.1.
//   - RunMultipass and the GREATER-THAN helpers — the turnstile
//     (positive and negative weights) results of Section 4.
//
// # Paper-to-package map
//
// The implementation follows the paper's structure closely:
//
//	§2 general reduction      internal/core     level/bucket trees, Algorithms 1–3,
//	                                            hash-once ingest, AddBatch, Merge
//	§3.1 F2 and Fk sketches   internal/sketch   CountSketch/AMS (Thorup–Zhang layout),
//	                                            Indyk–Woodruff level sets, pooling,
//	                                            the SlotMaker/SlotAdder fast path
//	§3.2 distinct counts      internal/corrf0   distinct sampling with y-priority
//	                                            eviction and per-level watermarks
//	§3.3 heavy hitters        internal/heavy    candidate tracking over the §2 sketch
//	§1.1 sliding windows      internal/window   timestamp-as-y reduction
//	§4 turnstile/multipass    internal/turnstile  MULTIPASS, GREATER-THAN bounds
//	distributed model         shard             P worker-owned summaries, channel-fed
//	                                            ingest, merge-then-query coordinator,
//	                                            engine snapshots and push images
//	                          service, client   corrd, the site/coordinator network
//	                                            daemon (cmd/corrd): HTTP ingest and
//	                                            wire-image pushes, snapshot
//	                                            durability, Prometheus metrics, and
//	                                            the Go client driving it
//	concurrent serving        service           group-commit ingest pipeline (one
//	                                            fsync + one engine drain per group
//	                                            of concurrent requests) and the
//	                                            epoch-cached query path (merged
//	                                            summary rebuilt only when state
//	                                            moved, served outside the ingest
//	                                            lock; -query-max-stale bounds the
//	                                            rebuild rate)
//	streaming ingest          service, client   persistent length-framed ingest
//	                                            transport (corrd -stream-addr):
//	                                            counted tupleio frames pipelined
//	                                            ahead of per-frame acks carrying
//	                                            the WAL group LSN, pooled
//	                                            zero-alloc server decode, and the
//	                                            client.DialStream handle driving
//	                                            it (corrgen -stream for load)
//	multi-tenancy             service, client   keyed namespaces (?tenant=,
//	                                            keyed stream frames): one engine
//	                                            per tenant behind the shared WAL
//	                                            and group-commit pipeline,
//	                                            tenant-tagged log records and
//	                                            snapshot framing for per-tenant
//	                                            crash-exact recovery, count and
//	                                            memory governance caps (429/413),
//	                                            idle-tenant spill to compact
//	                                            images with restore-on-touch
//	observability             service           pipeline-stage tracing (per-stage
//	                                            latency histograms over the commit
//	                                            pipeline: enqueue, apply, append,
//	                                            fsync, ack — in /metrics, /v1/stats,
//	                                            and corrgen load reports), the
//	                                            ring-buffered JSON access log with
//	                                            X-Request-ID accept/mint/echo
//	                                            (corrd -access-log, -slow-request),
//	                                            Go runtime metrics and build info
//	                                            in the exposition, and the opt-in
//	                                            pprof listener (-debug-addr)
//	replication & HA          service, client,  WAL-shipped warm standby (corrd
//	                          internal/replica  -role=replica -primary ADDR): the
//	                                            primary tails its durable log over
//	                                            the stream listener (records,
//	                                            heartbeats, snapshot re-seeds for
//	                                            pruned positions); the replica
//	                                            replays through the crash-recovery
//	                                            grammar and serves epoch-cached
//	                                            reads, rejecting writes with 503;
//	                                            POST /v1/promote (admin-gated) or
//	                                            heartbeat-loss auto-promotion seals
//	                                            the applied LSN and flips the node
//	                                            writable, byte-identical to a
//	                                            crash-free primary at the seal;
//	                                            the Go client fails reads over
//	                                            and redirects writes
//	durable ingest            internal/wal      segmented CRC32C write-ahead log
//	                                            under the daemon: log-before-ack,
//	                                            group records, fsync policies,
//	                                            torn-tail recovery, checkpoint
//	                                            pruning — restart replays to
//	                                            crash-exact state, concurrent
//	                                            ingest included
//	robustness                service,          degraded-mode state machine
//	                          internal/fault    (service/health.go: healthy →
//	                                            degraded → recovering; writes 503/
//	                                            AckDegraded while reads keep
//	                                            serving, /readyz for LB drain,
//	                                            probe loop + POST /v1/recover), a
//	                                            failed group fsync rewinds the
//	                                            unacked log suffix, overload
//	                                            shedding (-ingest-queue-max → 429/
//	                                            AckBusy with EWMA-priced
//	                                            Retry-After), snapshot retention
//	                                            with corrupt-newest fallback
//	                                            (-snapshot-keep), and the fault-
//	                                            injection harness behind it all:
//	                                            an error-plan DSL over a swappable
//	                                            filesystem (corrd -fault-plan,
//	                                            POST /v1/fault) driving the chaos
//	                                            suite's byte-identity proofs
//	support                   internal/dyadic, internal/hash, internal/quantile,
//	                          internal/gen, internal/exact, internal/tupleio —
//	                          interval arithmetic, seeded universal hashing, GK
//	                          quantiles, generators, brute-force references, and
//	                          the tuple wire codec
//
// # Accuracy guarantees
//
// Options.Eps and Options.Delta carry the paper's (ε, δ) contract: each
// query's estimate is within a (1 ± ε) factor of the true aggregate over
// the selected substream with probability at least 1 − δ (per query), with
// space polylogarithmic in the stream length. The constants follow the
// paper's own experimental configuration rather than the worst-case proofs
// (set Options.StrictTheory for the proof constants where feasible —
// practical only for SUM/COUNT). A query can also fail explicitly with
// ErrNoLevel — the FAIL output of Algorithm 3 — with probability at most δ.
//
// # Mergeability and distribution
//
// Summaries built from identical Options (Seed included: it regenerates
// the hash functions) are mergeable — the paper's distributed model, where
// each site summarizes its local substream and a coordinator combines site
// summaries to answer queries over the union. Merge folds a live summary
// into another; MergeMarshaled folds the serialized wire form directly,
// without materializing an intermediate summary. Incompatible summaries
// are rejected with an *IncompatibleError (matching ErrIncompatible)
// naming the differing option. Merging k site summaries keeps every
// structural guarantee but scales the bucket-straddling error term
// (Lemma 4) by up to k; use Eps/k at the sites when a strict ε must
// survive a k-way merge. The shard subpackage builds a parallel ingest
// engine on exactly this merge layer, and the service and client
// subpackages (with cmd/corrd) expose the whole model over HTTP: remote
// sites stream tuples or push marshaled summary images, the coordinator
// daemon serves queries from the merged state, and snapshots make the
// serving tier restartable.
//
// # Concurrency
//
// Summaries are not safe for concurrent use. Both ingestion and queries
// mutate internal state (sketch free lists and scratch buffers are pooled
// per summary for allocation-free steady-state operation), so all access —
// including read-only queries — must be serialized by the caller. For
// multi-core ingest, use the shard subpackage, which owns one summary per
// worker goroutine and merges at query time.
//
// # Quick example
//
//	s, _ := correlated.NewF2Summary(correlated.Options{
//		Eps: 0.2, Delta: 0.1, YMax: 1 << 20, MaxStreamLen: 1 << 24,
//	})
//	for _, t := range tuples {
//		_ = s.Add(t.X, t.Y)
//	}
//	est, _ := s.QueryLE(cutoff) // F2 of {x : y <= cutoff}
//
// All summaries are deterministic in their Seed option and built only on
// the Go standard library.
package correlated
