// Package correlated implements streaming estimation of correlated
// aggregates, reproducing Tirthapura and Woodruff, "A General Method for
// Estimating Correlated Aggregates Over a Data Stream" (ICDE 2012;
// Algorithmica 73(2), 2015).
//
// On a stream of tuples (x, y) — x an item identifier, y a numeric
// attribute — a correlated aggregate query applies a selection predicate
// on y first and an aggregation on x second:
//
//	C(σ, AGG, S) = AGG{ x_i | σ(y_i) }
//
// The predicate is of the form y <= c (or y >= c), with the cutoff c
// supplied only at query time. That late binding is the point: one small
// summary, built online in a single pass, supports interactive drill-down
// ("aggregate the flows larger than the median; now only the top five
// percent") over cutoffs chosen after the data has gone by.
//
// # Summaries
//
//   - F2Summary, FkSummary — correlated frequency moments via the paper's
//     general reduction (Section 2) over AMS/CountSketch and
//     Indyk–Woodruff sketches.
//   - SumSummary, CountSummary — correlated SUM and COUNT through the same
//     reduction with exact counter "sketches".
//   - F0Summary — correlated distinct counting (Section 3.2) by distinct
//     sampling with y-priority eviction; also answers rarity queries
//     (Section 3.3).
//   - HeavyHittersSummary — correlated F2 heavy hitters (Section 3.3).
//   - Quantiles — a Greenwald–Khanna whole-stream quantile summary over
//     the y dimension, the companion structure for drill-down queries.
//   - CountWindow, F2Window, F0Window — sliding-window aggregation over
//     asynchronous (out-of-order) streams via the reduction of
//     Section 1.1.
//   - RunMultipass and the GREATER-THAN helpers — the turnstile
//     (positive and negative weights) results of Section 4.
//
// All summaries are deterministic in their Seed option and built only on
// the Go standard library.
//
// # Concurrency
//
// Summaries are not safe for concurrent use. Both ingestion and queries
// mutate internal state (sketch free lists and scratch buffers are pooled
// per summary for allocation-free steady-state operation), so all access —
// including read-only queries — must be serialized by the caller.
//
// # Quick example
//
//	s, _ := correlated.NewF2Summary(correlated.Options{
//		Eps: 0.2, Delta: 0.1, YMax: 1 << 20, MaxStreamLen: 1 << 24,
//	})
//	for _, t := range tuples {
//		_ = s.Add(t.X, t.Y)
//	}
//	est, _ := s.QueryLE(cutoff) // F2 of {x : y <= cutoff}
package correlated
