// Benchmarks regenerating the paper's evaluation, one per figure and
// table (see DESIGN.md's experiment index). Each bench processes a scaled
// stream and reports the paper's metric (summary space in
// counters/tuples, or relative error ×1000) via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the series the figures plot. cmd/corrbench regenerates the same
// series at full scale with plot-ready TSV output.
package correlated_test

import (
	"fmt"
	"sort"
	"testing"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/exact"
	"github.com/streamagg/correlated/internal/gen"
	"github.com/streamagg/correlated/internal/hash"
	"github.com/streamagg/correlated/internal/turnstile"
)

const (
	benchN    = 200_000 // per-iteration stream size for figure benches
	benchYMax = 1_000_000
	benchXF2  = 500_001
	benchXF0  = 1_000_001
)

func f2Stream(name string, n int) gen.Stream {
	switch name {
	case "uniform":
		return gen.Uniform(n, benchXF2, benchYMax+1, 1)
	case "zipf1":
		return gen.Zipf(n, benchXF2, benchYMax+1, 1.0, 1)
	case "zipf2":
		return gen.Zipf(n, benchXF2, benchYMax+1, 2.0, 1)
	}
	panic("unknown dataset " + name)
}

func f0Stream(name string, n int) gen.Stream {
	switch name {
	case "ethernet":
		return gen.Ethernet(n, 1)
	case "uniform":
		return gen.Uniform(n, benchXF0, benchYMax+1, 1)
	case "zipf1":
		return gen.Zipf(n, benchXF0, benchYMax+1, 1.0, 1)
	case "zipf2":
		return gen.Zipf(n, benchXF0, benchYMax+1, 2.0, 1)
	}
	panic("unknown dataset " + name)
}

func buildF2(b *testing.B, eps float64, name string, n int) *correlated.F2Summary {
	b.Helper()
	s, err := correlated.NewF2Summary(correlated.Options{
		Eps: eps, Delta: 0.1, YMax: benchYMax,
		MaxStreamLen: uint64(n), MaxX: benchXF2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	st := f2Stream(name, n)
	for {
		t, ok := st.Next()
		if !ok {
			return s
		}
		if err := s.Add(t.X, t.Y); err != nil {
			b.Fatal(err)
		}
	}
}

func buildF0(b *testing.B, eps float64, name string, n int) *correlated.F0Summary {
	b.Helper()
	xdom, ymax := uint64(benchXF0), uint64(benchYMax)
	if name == "ethernet" {
		xdom, ymax = gen.EthernetXDomain, uint64(n)
	}
	s, err := correlated.NewF0Summary(correlated.Options{
		Eps: eps, Delta: 0.1, YMax: ymax,
		MaxStreamLen: uint64(n), MaxX: xdom, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	st := f0Stream(name, n)
	for {
		t, ok := st.Next()
		if !ok {
			return s
		}
		if err := s.Add(t.X, t.Y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2_F2SpaceVsEpsilon regenerates Figure 2: F2 summary space as
// ε varies, for the three Section 5.1 datasets.
func BenchmarkFig2_F2SpaceVsEpsilon(b *testing.B) {
	for _, eps := range []float64{0.14, 0.20, 0.25} {
		for _, ds := range []string{"uniform", "zipf1", "zipf2"} {
			b.Run(fmt.Sprintf("eps=%.2f/%s", eps, ds), func(b *testing.B) {
				var space int64
				for i := 0; i < b.N; i++ {
					space = buildF2(b, eps, ds, benchN).Space()
				}
				b.ReportMetric(float64(space), "counters")
				b.ReportMetric(float64(space)/float64(benchN), "counters/tuple")
			})
		}
	}
}

// spaceVsN regenerates Figures 3-5: F2 summary space as the stream grows,
// at a fixed ε.
func spaceVsN(b *testing.B, eps float64) {
	for _, n := range []int{benchN, 2 * benchN, 4 * benchN} {
		b.Run(fmt.Sprintf("n=%d/uniform", n), func(b *testing.B) {
			var space int64
			for i := 0; i < b.N; i++ {
				space = buildF2(b, eps, "uniform", n).Space()
			}
			b.ReportMetric(float64(space), "counters")
		})
	}
}

// BenchmarkFig3_F2SpaceVsN_Eps015 regenerates Figure 3 (ε = 0.15).
func BenchmarkFig3_F2SpaceVsN_Eps015(b *testing.B) { spaceVsN(b, 0.15) }

// BenchmarkFig4_F2SpaceVsN_Eps020 regenerates Figure 4 (ε = 0.20).
func BenchmarkFig4_F2SpaceVsN_Eps020(b *testing.B) { spaceVsN(b, 0.20) }

// BenchmarkFig5_F2SpaceVsN_Eps025 regenerates Figure 5 (ε = 0.25).
func BenchmarkFig5_F2SpaceVsN_Eps025(b *testing.B) { spaceVsN(b, 0.25) }

// BenchmarkFig6_F0SpaceVsEpsilon regenerates Figure 6: F0 summary space vs
// ε across the four Section 5.2 datasets; the Ethernet trace's small
// identifier domain makes it far cheaper.
func BenchmarkFig6_F0SpaceVsEpsilon(b *testing.B) {
	for _, eps := range []float64{0.05, 0.10, 0.20, 0.30} {
		for _, ds := range []string{"ethernet", "uniform", "zipf1", "zipf2"} {
			b.Run(fmt.Sprintf("eps=%.2f/%s", eps, ds), func(b *testing.B) {
				var space int64
				for i := 0; i < b.N; i++ {
					space = buildF0(b, eps, ds, benchN).Space()
				}
				b.ReportMetric(float64(space), "tuples")
			})
		}
	}
}

// BenchmarkFig7_F0SpaceVsN regenerates Figure 7: F0 summary space vs
// stream size at ε = 0.1 (near-flat).
func BenchmarkFig7_F0SpaceVsN(b *testing.B) {
	for _, n := range []int{benchN, 2 * benchN, 4 * benchN} {
		b.Run(fmt.Sprintf("n=%d/uniform", n), func(b *testing.B) {
			var space int64
			for i := 0; i < b.N; i++ {
				space = buildF0(b, 0.1, "uniform", n).Space()
			}
			b.ReportMetric(float64(space), "tuples")
		})
	}
}

// BenchmarkTableA_F2Accuracy regenerates the Section 5.1 prose claim:
// relative error within ε. The reported metric is max relative error
// ×1000 over decile cutoffs.
func BenchmarkTableA_F2Accuracy(b *testing.B) {
	for _, eps := range []float64{0.15, 0.25} {
		b.Run(fmt.Sprintf("eps=%.2f/uniform", eps), func(b *testing.B) {
			var maxRel float64
			for i := 0; i < b.N; i++ {
				s := buildF2(b, eps, "uniform", benchN)
				base := exact.New()
				st := f2Stream("uniform", benchN)
				for {
					t, ok := st.Next()
					if !ok {
						break
					}
					base.Add(t.X, t.Y)
				}
				maxRel = 0
				for d := 1; d <= 10; d++ {
					c := uint64(d) * benchYMax / 10
					got, err := s.QueryLE(c)
					if err != nil {
						b.Fatal(err)
					}
					want := base.F2(c)
					rel := (got - want) / want
					if rel < 0 {
						rel = -rel
					}
					if rel > maxRel {
						maxRel = rel
					}
				}
				if maxRel > eps {
					b.Errorf("max rel err %v exceeds eps %v", maxRel, eps)
				}
			}
			b.ReportMetric(maxRel*1000, "maxRelErr*1e3")
		})
	}
}

// BenchmarkTableB_UpdateThroughput regenerates the per-record processing
// time claim: ns/op is the per-tuple update cost.
func BenchmarkTableB_UpdateThroughput(b *testing.B) {
	for _, ds := range []string{"uniform", "zipf1", "zipf2"} {
		b.Run("F2/"+ds, func(b *testing.B) {
			s, err := correlated.NewF2Summary(correlated.Options{
				Eps: 0.2, Delta: 0.1, YMax: benchYMax,
				MaxStreamLen: uint64(b.N) + 1, MaxX: benchXF2, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			tuples := gen.Collect(f2Stream(ds, benchN))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := tuples[i%len(tuples)]
				if err := s.Add(t.X, t.Y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("F0/uniform", func(b *testing.B) {
		s, err := correlated.NewF0Summary(correlated.Options{
			Eps: 0.1, Delta: 0.1, YMax: benchYMax,
			MaxStreamLen: uint64(b.N) + 1, MaxX: benchXF0, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		tuples := gen.Collect(f0Stream("uniform", benchN))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := tuples[i%len(tuples)]
			if err := s.Add(t.X, t.Y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTableC_F0Accuracy regenerates the Section 5.2 accuracy claim.
func BenchmarkTableC_F0Accuracy(b *testing.B) {
	b.Run("eps=0.10/uniform", func(b *testing.B) {
		var maxRel float64
		for i := 0; i < b.N; i++ {
			s := buildF0(b, 0.1, "uniform", benchN)
			base := exact.New()
			st := f0Stream("uniform", benchN)
			for {
				t, ok := st.Next()
				if !ok {
					break
				}
				base.Add(t.X, t.Y)
			}
			maxRel = 0
			for d := 1; d <= 10; d++ {
				c := uint64(d) * benchYMax / 10
				got, err := s.QueryLE(c)
				if err != nil {
					b.Fatal(err)
				}
				want := base.F0(c)
				rel := (got - want) / want
				if rel < 0 {
					rel = -rel
				}
				if rel > maxRel {
					maxRel = rel
				}
			}
		}
		b.ReportMetric(maxRel*1000, "maxRelErr*1e3")
	})
}

// BenchmarkGreaterThanMultipass measures the Theorem 7 side of the
// Section 4 tradeoff: solving a 256-bit GREATER-THAN instance exactly in
// O(log ymax) passes.
func BenchmarkGreaterThanMultipass(b *testing.B) {
	rng := hash.New(7)
	a := make([]bool, 256)
	bb := make([]bool, 256)
	for i := range a {
		a[i] = rng.Uint64()&1 == 1
		bb[i] = a[i]
	}
	bb[137] = !bb[137]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := correlated.SolveGreaterThan(a, bb, 0.3, 0.05, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.FirstDiff != 137 {
			b.Fatalf("first diff %d, want 137", res.FirstDiff)
		}
	}
}

// BenchmarkGreaterThanSinglePass measures the doomed single-pass strawman
// for cost comparison (it is fast — and wrong half the time; see
// cmd/corrbench -table greater-than).
func BenchmarkGreaterThanSinglePass(b *testing.B) {
	rng := hash.New(7)
	a := make([]bool, 256)
	bb := make([]bool, 256)
	for i := range a {
		a[i] = rng.Uint64()&1 == 1
		bb[i] = a[i]
	}
	bb[137] = !bb[137]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		turnstile.SinglePassGT(a, bb, 8, uint64(i))
	}
}

// BenchmarkMultipassTurnstile measures MULTIPASS over a ±-weighted stream
// (Theorem 7), reporting passes and working space.
func BenchmarkMultipassTurnstile(b *testing.B) {
	rng := hash.New(11)
	tape := correlated.NewTape(nil)
	const ymax = 1<<14 - 1
	for i := 0; i < 20_000; i++ {
		y := rng.Uint64n(ymax + 1)
		x := rng.Uint64n(1000)
		tape.Append(correlated.Record{X: x, Y: y, W: 1})
		if i%3 == 0 {
			tape.Append(correlated.Record{X: x, Y: y, W: -1})
		}
	}
	var res *correlated.MultipassResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = correlated.RunMultipass(tape, correlated.MultipassConfig{
			Eps: 0.2, Delta: 0.05, YMax: ymax, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Passes), "passes")
	b.ReportMetric(float64(res.Space), "counters")
}

// BenchmarkAblationAlphaScale quantifies the bucket-capacity knob the
// design calls out: space and accuracy as α scales.
func BenchmarkAblationAlphaScale(b *testing.B) {
	for _, scale := range []float64{0.5, 1.0, 2.0} {
		b.Run(fmt.Sprintf("alphaScale=%.1f", scale), func(b *testing.B) {
			var space int64
			var maxRel float64
			for i := 0; i < b.N; i++ {
				s, err := correlated.NewF2Summary(correlated.Options{
					Eps: 0.2, Delta: 0.1, YMax: benchYMax,
					MaxStreamLen: benchN, MaxX: benchXF2,
					AlphaScale: scale, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				base := exact.New()
				st := f2Stream("uniform", benchN)
				for {
					t, ok := st.Next()
					if !ok {
						break
					}
					if err := s.Add(t.X, t.Y); err != nil {
						b.Fatal(err)
					}
					base.Add(t.X, t.Y)
				}
				space = s.Space()
				maxRel = 0
				for d := 2; d <= 10; d += 2 {
					c := uint64(d) * benchYMax / 10
					got, err := s.QueryLE(c)
					if err != nil {
						b.Fatal(err)
					}
					want := base.F2(c)
					rel := (got - want) / want
					if rel < 0 {
						rel = -rel
					}
					if rel > maxRel {
						maxRel = rel
					}
				}
			}
			b.ReportMetric(float64(space), "counters")
			b.ReportMetric(maxRel*1000, "maxRelErr*1e3")
		})
	}
}

// BenchmarkAblationBatchedUpdates quantifies the Lemma 9 amortization:
// y-sorted batches hit the per-level leaf cache.
func BenchmarkAblationBatchedUpdates(b *testing.B) {
	tuples := gen.Collect(gen.Uniform(benchN, benchXF2, benchYMax+1, 3))
	b.Run("sequential-random-order", func(b *testing.B) {
		s, err := correlated.NewCountSummary(correlated.Options{
			Eps: 0.1, Delta: 0.1, YMax: benchYMax, MaxStreamLen: uint64(b.N) + 1, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := tuples[i%len(tuples)]
			if err := s.Add(t.X, t.Y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batched-sorted-order", func(b *testing.B) {
		s, err := correlated.NewCountSummary(correlated.Options{
			Eps: 0.1, Delta: 0.1, YMax: benchYMax, MaxStreamLen: uint64(b.N) + 1, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		sorted := append([]gen.Tuple(nil), tuples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Y < sorted[j].Y })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := sorted[i%len(sorted)]
			if err := s.Add(t.X, t.Y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationF0Reps quantifies the repetition knob of the correlated
// F0 structure (median-of-reps drives δ down at linear space cost).
func BenchmarkAblationF0Reps(b *testing.B) {
	for _, reps := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("reps=%d", reps), func(b *testing.B) {
			var space int64
			for i := 0; i < b.N; i++ {
				s, err := correlated.NewF0Summary(correlated.Options{
					Eps: 0.1, Delta: deltaForReps(reps), YMax: benchYMax,
					MaxX: benchXF0, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				st := f0Stream("uniform", benchN)
				for {
					t, ok := st.Next()
					if !ok {
						break
					}
					if err := s.Add(t.X, t.Y); err != nil {
						b.Fatal(err)
					}
				}
				space = s.Space()
			}
			b.ReportMetric(float64(space), "tuples")
		})
	}
}

// deltaForReps picks a Delta whose derived repetition count is reps.
func deltaForReps(reps int) float64 {
	switch reps {
	case 1:
		return 0.5
	case 3:
		return 0.15
	default:
		return 0.04
	}
}

// BenchmarkMergeMarshaled measures the site→coordinator hot path: a
// coordinator folding a site's marshaled summary image straight into
// its own state (the work behind one corrd /v1/push). Each iteration
// resets the pooled coordinator and re-merges the same image, so the
// steady state exercises the recycled-sketch decode path; bytes/op is
// the image size, making the reported MB/s the sustainable push
// bandwidth per coordinator core.
func BenchmarkMergeMarshaled(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("site_n=%d", n), func(b *testing.B) {
			o := correlated.Options{
				Eps: 0.15, Delta: 0.1, YMax: benchYMax,
				MaxStreamLen: uint64(n), MaxX: benchXF2, Seed: 1,
			}
			site := buildF2(b, 0.15, "zipf1", n)
			img, err := site.MarshalBinary()
			if err != nil {
				b.Fatal(err)
			}
			coord, err := correlated.NewF2Summary(o)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(img)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				coord.Reset()
				if err := coord.MergeMarshaled(img); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
