package correlated

import (
	"errors"

	"github.com/streamagg/correlated/internal/compat"
	"github.com/streamagg/correlated/internal/corrf0"
	"github.com/streamagg/correlated/internal/dyadic"
)

// F0Summary estimates the correlated number of distinct elements,
// |{x : (x, y) ∈ S ∧ y <= c}| (the paper's Section 3.2), and the rarity —
// the fraction of selected distinct identifiers occurring exactly once
// (Section 3.3).
type F0Summary struct {
	le   *corrf0.Summary
	ge   *corrf0.Summary
	ymax uint64
	n    uint64
}

// NewF0Summary builds an F0 summary. Options.MaxX bounds the identifier
// domain (m in the paper); the summary's size scales with log MaxX, which
// is why small-domain streams like packet-size traces are much cheaper
// (the paper's Figure 6).
func NewF0Summary(o Options) (*F0Summary, error) {
	if o.YMax == 0 {
		return nil, errors.New("correlated: YMax must be positive")
	}
	xdom := o.MaxX
	if xdom == 0 {
		xdom = 1 << 32
	}
	cfg := corrf0.Config{
		Eps: o.Eps, Delta: o.Delta, XDomain: xdom,
		Alpha: o.Alpha, Seed: o.Seed,
	}
	s := &F0Summary{ymax: dyadic.RoundYMax(o.YMax)}
	var err error
	if o.Predicate == LE || o.Predicate == Both {
		if s.le, err = corrf0.New(cfg); err != nil {
			return nil, err
		}
	}
	if o.Predicate == GE || o.Predicate == Both {
		cfg.Seed ^= 0x6d6972726f72
		if s.ge, err = corrf0.New(cfg); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Add inserts the tuple (x, y).
func (s *F0Summary) Add(x, y uint64) error {
	if y > s.ymax {
		return errors.New("correlated: y exceeds YMax")
	}
	s.n++
	if s.le != nil {
		s.le.Add(x, y)
	}
	if s.ge != nil {
		s.ge.Add(x, s.ymax-y)
	}
	return nil
}

// QueryLE estimates the number of distinct x among tuples with y <= c.
func (s *F0Summary) QueryLE(c uint64) (float64, error) {
	if s.le == nil {
		return 0, ErrDirection
	}
	return s.le.Query(c)
}

// QueryGE estimates the number of distinct x among tuples with y >= c.
func (s *F0Summary) QueryGE(c uint64) (float64, error) {
	if s.ge == nil {
		return 0, ErrDirection
	}
	if c > s.ymax {
		return 0, nil
	}
	return s.ge.Query(s.ymax - c)
}

// RarityLE estimates the fraction of distinct identifiers occurring
// exactly once among tuples with y <= c.
func (s *F0Summary) RarityLE(c uint64) (float64, error) {
	if s.le == nil {
		return 0, ErrDirection
	}
	return s.le.Rarity(c)
}

// RarityGE estimates the fraction of distinct identifiers occurring
// exactly once among tuples with y >= c.
func (s *F0Summary) RarityGE(c uint64) (float64, error) {
	if s.ge == nil {
		return 0, ErrDirection
	}
	if c > s.ymax {
		return 0, nil
	}
	return s.ge.Rarity(s.ymax - c)
}

// Merge folds other — an F0Summary built with identical Options over a
// different substream — into the receiver, producing the summary of the
// combined stream (the distributed-streams use case). Distinct sampling
// is order- and partition-oblivious, so merged queries carry the same
// (Eps, Delta) guarantee as single-summary ingestion of the union. A
// summary built from different Options is rejected with an
// *IncompatibleError (matching ErrIncompatible) naming the differing
// field, before any state changes.
func (s *F0Summary) Merge(other *F0Summary) error {
	if other == nil {
		return errors.New("correlated: cannot merge a nil summary")
	}
	if other == s {
		return errors.New("correlated: cannot merge a summary into itself")
	}
	if (s.le == nil) != (other.le == nil) || (s.ge == nil) != (other.ge == nil) {
		return compat.Mismatch("predicate", s.predicateName(), other.predicateName())
	}
	if s.ymax != other.ymax {
		return compat.Mismatch("ymax", s.ymax, other.ymax)
	}
	if s.le != nil {
		if err := s.le.Merge(other.le); err != nil {
			return err
		}
	}
	if s.ge != nil {
		if err := s.ge.Merge(other.ge); err != nil {
			return err
		}
	}
	s.n += other.n
	return nil
}

// predicateName reports which query directions the summary supports, for
// incompatibility errors.
func (s *F0Summary) predicateName() string {
	switch {
	case s.le != nil && s.ge != nil:
		return "Both"
	case s.ge != nil:
		return "GE"
	default:
		return "LE"
	}
}

// MergeMarshaled folds a summary serialized with MarshalBinary — the wire
// form a site ships to the coordinator — into the receiver. The bytes
// must come from an F0Summary built with identical Options. The receiver
// is untouched on error.
func (s *F0Summary) MergeMarshaled(data []byte) error {
	tmp := &F0Summary{ymax: s.ymax}
	var err error
	if s.le != nil {
		if tmp.le, err = corrf0.New(s.le.Config()); err != nil {
			return err
		}
	}
	if s.ge != nil {
		if tmp.ge, err = corrf0.New(s.ge.Config()); err != nil {
			return err
		}
	}
	if err := tmp.UnmarshalBinary(data); err != nil {
		return err
	}
	return s.Merge(tmp)
}

// Space reports stored sample tuples.
func (s *F0Summary) Space() int64 {
	var sp int64
	if s.le != nil {
		sp += s.le.Space()
	}
	if s.ge != nil {
		sp += s.ge.Space()
	}
	return sp
}

// Count reports tuples inserted.
func (s *F0Summary) Count() uint64 { return s.n }
