package service

import (
	"fmt"
	"time"

	"github.com/streamagg/correlated/internal/tupleio"
	"github.com/streamagg/correlated/internal/wal"
)

// Durable ingest: with Config.WALDir set, every accepted ingest batch
// and push image is appended to a write-ahead log *before* the HTTP
// acknowledgement, and startup becomes restore-snapshot-then-replay-
// suffix. Under -wal-fsync=always an acknowledged request therefore
// survives kill -9 — the durability window shrinks from the snapshot
// interval to zero.
//
// Two invariants make recovery crash-exact. First, "log order == apply
// order": the engine apply and the WAL append for one commit group (or
// push) happen under the same critical section of the driver lock
// (s.mu), so the replayer — which re-applies records through the very
// same engine entry points (AddBatch, MergeMarshaled, Reset) —
// reconstructs the identical sequence of engine calls. Second,
// "boundaries are a function of the log": the shard summaries' state
// depends on where worker batch handoffs fall, and untimed barriers (a
// snapshot tick, a query) would move those boundaries in ways no log
// can reproduce — so with the WAL on, every commit group drains the
// engine before its members are acknowledged, and the group boundary
// itself is durable: the group's one record carries its member batches
// in commit order, and replay re-applies them and then flushes once,
// exactly as the live group did. Together with the canonical marshaling
// ("equal state ⇒ equal bytes"), a recovered server's /v1/summary is
// byte-identical to a crash-free run over the same acknowledged
// requests grouped the same way.
//
// Snapshots and the WAL compose rather than compete: the snapshot file
// embeds the LSN it covers, a completed snapshot appends a checkpoint
// marker, and the WAL then prunes every sealed segment whose records
// the snapshot already captures.
//
// The site role's push-then-reset delta protocol is a two-record round:
// RecordReset — appended in the same critical section as the engine
// Reset, carrying the marshaled image that is about to ship — then
// either RecordPushAck (the coordinator acknowledged) or RecordFoldback
// (the ship failed and the image was merged back; one record carries
// both the merge and the round close, so replay can never double-apply
// it). Replay applies the reset at its logged position (so ingests
// interleaved with the HTTP push land in the post-reset state, exactly
// as they did live), stashes the image, and discards it when the round
// closes; a round the crash cut short folds the stashed image back into
// the engine — the same fold-back the live path performs when the
// coordinator is unreachable — so acknowledged ingest is never lost,
// and once the ack record is durable the image is never re-pushed
// upstream. The remaining at-least-once window is a crash after the
// coordinator processed the image but before the ack record's fsync —
// one append, not a whole snapshot write.

// openWAL opens the log and wires its fsync-latency hook into the
// metrics registry.
func (s *Server) openWAL() error {
	policy, err := wal.ParseSyncPolicy(s.cfg.WALFsync)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	w, err := wal.Open(s.cfg.WALDir, wal.Options{
		SegmentBytes: s.cfg.WALSegmentBytes,
		Sync:         policy,
		SyncEvery:    s.cfg.WALFsyncInterval,
		FS:           s.fs,
		OnFsync:      func(d time.Duration) { s.metrics.walFsync.Observe(d.Seconds()) },
		OnSyncError: func(err error) {
			s.logf("wal: background fsync: %v", err)
			s.noteBgSyncError(err)
		},
	})
	if err != nil {
		return fmt.Errorf("service: wal: %w", err)
	}
	s.wal = w
	s.walSyncAlways = policy == wal.SyncAlways
	return nil
}

// logPush appends a merged push image to the WAL (callers hold s.mu).
// A push into the default tenant keeps the legacy RecordPush form
// (byte-identical to pre-tenant logs); a keyed tenant's push writes a
// RecordKeyedPush with the tenant prefix before the image. Ingest is
// logged by the commit pipeline's logIngestGroup (pipeline.go): one
// record per commit group, carrying the member batches in commit order.
func (s *Server) logPush(t *tenant, image []byte) error {
	if s.wal == nil {
		return nil
	}
	if t == s.def {
		_, err := s.wal.Append(wal.RecordPush, image)
		return err
	}
	buf := s.groupBuf[:0]
	buf = tupleio.AppendTenant(buf, t.name)
	buf = append(buf, image...)
	_, err := s.wal.Append(wal.RecordKeyedPush, buf)
	if cap(buf) > maxPooledBuffer {
		buf = nil
	}
	s.groupBuf = buf
	return err
}

// logReset appends the site role's push-round begin record: the engine
// was reset here and image is in flight. Callers hold s.mu, immediately
// after the engine Reset it records.
func (s *Server) logReset(image []byte) error {
	if s.wal == nil {
		return nil
	}
	_, err := s.wal.Append(wal.RecordReset, image)
	return err
}

// logPushAck closes the push round opened by logReset: the coordinator
// has the image, so replay must never re-push it.
func (s *Server) logPushAck() error {
	if s.wal == nil {
		return nil
	}
	_, err := s.wal.Append(wal.RecordPushAck, nil)
	return err
}

// logFoldback closes a push round whose ship failed: the image was
// merged back into the engine. Callers hold s.mu around the merge and
// this append.
func (s *Server) logFoldback(image []byte) error {
	if s.wal == nil {
		return nil
	}
	_, err := s.wal.Append(wal.RecordFoldback, image)
	return err
}

// replayWAL re-applies every record the snapshot does not cover, in log
// order, through the same engine entry points the handlers use — the
// shared applyRecord switch (replication.go), which a live replica also
// speaks. Any failure is fatal to startup: a daemon must not serve
// state it knows is missing acknowledged data. Replay runs before any
// goroutine is started, so calling the *Locked tenant helpers without
// s.mu is safe; tenant creation during replay bypasses the governance
// caps — acknowledged data outranks a cap that may have been lowered
// since.
func (s *Server) replayWAL(covered uint64) error {
	start := time.Now()
	var records uint64
	st := newReplayState(covered, true)
	st.fallback = s.snapFellBack
	first := true
	err := s.wal.Replay(covered, func(lsn uint64, typ wal.RecordType, payload []byte) error {
		if first {
			first = false
			// Continuity: the suffix must begin exactly where the
			// snapshot left off. A later first LSN means records between
			// were pruned (a checkpoint for a newer snapshot this boot
			// did not restore) — replaying around the hole would silently
			// drop acknowledged data.
			if lsn > covered+1 {
				return fmt.Errorf("service: wal replay: log starts at LSN %d but the restored snapshot covers only %d — the records between were pruned; restore the snapshot the log was checkpointed against", lsn, covered)
			}
		}
		counted, err := s.applyRecord(lsn, typ, payload, st)
		if err != nil {
			return err
		}
		if counted {
			records++
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(st.inFlight) > 0 {
		// The crash cut a push round short: the coordinator may or may
		// not have received this image. Fold it back — the same choice
		// the live path makes when a push fails — so the next round
		// ships the union. Delivery is at-least-once across this one
		// window; it is never silent loss.
		if err := s.def.eng.MergeMarshaled(st.inFlight); err != nil {
			return fmt.Errorf("service: wal replay: fold back in-flight push image: %w", err)
		}
		s.logf("wal: push round was in flight at crash; image folded back for re-push")
	}
	for _, t := range s.tenantList() {
		if t.eng == nil {
			continue // restored spilled and never touched by the log suffix
		}
		if err := t.eng.Flush(); err != nil {
			return fmt.Errorf("service: wal replay: tenant %q: %w", t.name, err)
		}
	}
	dur := time.Since(start)
	s.walReplayed = records
	s.metrics.walReplayRecords.Set(int64(records))
	s.metrics.walReplaySeconds.Set(dur.Seconds())
	if records > 0 {
		s.logf("wal: replayed %d records in %s (log suffix past LSN %d)", records, dur, covered)
	}
	return nil
}
