package service

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/client"
	"github.com/streamagg/correlated/internal/hash"
)

// testOptions keeps streams in the singleton regime (distinct y values
// below Alpha), where merge-then-query is bit-identical to a single
// whole-stream summary — the regime where "identical to an offline
// summary" is an exact float comparison, not a tolerance.
func testOptions() correlated.Options {
	return correlated.Options{
		Eps: 0.2, Delta: 0.1, YMax: 1<<16 - 1,
		MaxStreamLen: 1 << 20, MaxX: 1 << 14,
		Alpha: 512, Seed: 7, Predicate: correlated.Both,
	}
}

const distinctY = 300 // < Alpha: singleton regime

func testStream(n int, seed uint64) []correlated.Tuple {
	rng := hash.New(seed)
	batch := make([]correlated.Tuple, n)
	for i := range batch {
		batch[i] = correlated.Tuple{X: rng.Uint64n(1 << 12), Y: rng.Uint64n(distinctY), W: 1}
	}
	return batch
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *client.Client) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts, client.New(ts.URL, client.WithChunkSize(777))
}

// TestIngestQueryStatsRoundTrip: tuples ingested over HTTP answer
// queries identically to an offline summary built from the same stream
// with the same seed, and /v1/stats reflects the traffic.
func TestIngestQueryStatsRoundTrip(t *testing.T) {
	o := testOptions()
	_, _, cl := newTestServer(t, Config{Options: o, Shards: 2, BatchSize: 64})
	stream := testStream(10_000, 42)
	if err := cl.AddBatch(context.Background(), stream); err != nil {
		t.Fatal(err)
	}
	offline, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := offline.AddBatch(append([]correlated.Tuple(nil), stream...)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, c := range []uint64{0, 50, 150, distinctY, 1 << 15} {
		want, err := offline.QueryLE(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.QueryLE(ctx, c)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("LE c=%d: service %v offline %v", c, got, want)
		}
		wantGE, err := offline.QueryGE(c)
		if err != nil {
			t.Fatal(err)
		}
		gotGE, err := cl.QueryGE(ctx, c)
		if err != nil {
			t.Fatal(err)
		}
		if gotGE != wantGE {
			t.Fatalf("GE c=%d: service %v offline %v", c, gotGE, wantGE)
		}
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != uint64(len(stream)) || st.TuplesIngested != uint64(len(stream)) {
		t.Fatalf("stats: %+v", st)
	}
	if st.Role != "coordinator" || st.Aggregate != "f2" || st.Shards != 2 {
		t.Fatalf("stats identity: %+v", st)
	}
	if st.QueriesServed == 0 || st.Space <= 0 {
		t.Fatalf("stats counters: %+v", st)
	}
}

// TestIngestTextFormat: the curl-friendly text body works and bad lines
// reject the whole batch atomically.
func TestIngestTextFormat(t *testing.T) {
	_, ts, cl := newTestServer(t, Config{Options: testOptions()})
	body := "# comment\n1,10\n2,20,3\n\n3,30\n"
	resp, err := http.Post(ts.URL+"/v1/ingest", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text ingest: HTTP %d", resp.StatusCode)
	}
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 3 { // three records (weights do not inflate Count)
		t.Fatalf("count after text ingest: %d", st.Count)
	}
	resp, err = http.Post(ts.URL+"/v1/ingest", "text/csv", strings.NewReader("1,2\nnope\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad line: HTTP %d", resp.StatusCode)
	}
	if st, _ = cl.Stats(context.Background()); st.Count != 3 {
		t.Fatalf("rejected batch changed count: %d", st.Count)
	}
}

// TestPushPathBitIdentical: a site image pushed through /v1/push yields
// query answers identical to offline MergeMarshaled of the same image,
// and the served /v1/summary re-marshals to the offline bytes.
func TestPushPathBitIdentical(t *testing.T) {
	o := testOptions()
	_, _, cl := newTestServer(t, Config{Options: o, Shards: 1})
	site, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := site.AddBatch(testStream(5_000, 99)); err != nil {
		t.Fatal(err)
	}
	img, err := site.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := cl.Push(ctx, img); err != nil {
		t.Fatal(err)
	}
	offline, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := offline.MergeMarshaled(img); err != nil {
		t.Fatal(err)
	}
	for _, c := range []uint64{0, 100, distinctY, 1 << 15} {
		want, err1 := offline.QueryLE(c)
		got, err2 := cl.QueryLE(ctx, c)
		if err1 != nil || err2 != nil {
			t.Fatalf("c=%d: %v / %v", c, err1, err2)
		}
		if got != want {
			t.Fatalf("c=%d: pushed %v offline %v", c, got, want)
		}
	}
	served, err := cl.Summary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	offlineImg, err := offline.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, offlineImg) {
		t.Fatalf("served summary differs from offline merge (%d vs %d bytes)", len(served), len(offlineImg))
	}
	// Garbage push: 400, engine untouched.
	if err := cl.Push(ctx, []byte{1, 2, 3}); err == nil {
		t.Fatal("garbage push accepted")
	}
	// Incompatible push (different seed): 409, detectable via helper.
	o2 := o
	o2.Seed++
	foreign, err := correlated.NewF2Summary(o2)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := foreign.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	err = cl.Push(ctx, bad)
	if !client.IsIncompatible(err) {
		t.Fatalf("incompatible push: %v", err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != site.Count() || st.PushesMerged != 1 {
		t.Fatalf("stats after rejected pushes: %+v", st)
	}
}

// TestSnapshotCrashRecovery is the durability contract: snapshot, keep
// ingesting, crash without a graceful shutdown — the restarted server
// resumes from the snapshot with a bit-identical marshaled state.
func TestSnapshotCrashRecovery(t *testing.T) {
	o := testOptions()
	snap := filepath.Join(t.TempDir(), "corrd.snapshot")
	cfg := Config{
		Options: o, Shards: 2, BatchSize: 32,
		SnapshotPath: snap, SnapshotInterval: time.Hour, // only explicit snapshots
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	cl := client.New(ts.URL)
	ctx := context.Background()
	if err := cl.AddBatch(ctx, testStream(6_000, 5)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Snapshot(); err != nil {
		t.Fatal(err)
	}
	snapFile, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	_, snapBytes, err := decodeSnapshotFile(snapFile)
	if err != nil {
		t.Fatal(err)
	}
	wantLE, err := cl.QueryLE(ctx, 150)
	if err != nil {
		t.Fatal(err)
	}
	// Keep ingesting past the snapshot, then crash: engine goroutines
	// die, no final snapshot is written — disk still holds the old
	// image, exactly like a SIGKILL mid-ingest.
	if err := cl.AddBatch(ctx, testStream(2_000, 6)); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	svc.Engine().Close()

	svc2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if !svc2.Restored() {
		t.Fatal("restart did not restore from snapshot")
	}
	img, err := svc2.Engine().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, snapBytes) {
		t.Fatalf("restored state is not bit-identical to the snapshot image (%d vs %d bytes)",
			len(img), len(snapBytes))
	}
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	cl2 := client.New(ts2.URL)
	got, err := cl2.QueryLE(ctx, 150)
	if err != nil {
		t.Fatal(err)
	}
	if got != wantLE {
		t.Fatalf("post-restore query %v, pre-crash %v", got, wantLE)
	}
	st, err := cl2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 6_000 || !st.Restored {
		t.Fatalf("post-restore stats: %+v", st)
	}
}

// TestGracefulShutdownFlush: Close flushes shard buffers and writes a
// final snapshot, so a restart serves every accepted tuple.
func TestGracefulShutdownFlush(t *testing.T) {
	o := testOptions()
	snap := filepath.Join(t.TempDir(), "corrd.snapshot")
	cfg := Config{
		Options: o, Shards: 2,
		BatchSize:    4096, // large: tuples sit in pending buffers until a barrier
		SnapshotPath: snap, SnapshotInterval: time.Hour,
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	if err := client.New(srv.URL).AddBatch(context.Background(), testStream(500, 3)); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	svc2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	n, err := svc2.Engine().Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("restart after graceful shutdown: count %d, want 500", n)
	}
}

// TestSiteCoordinatorPushLoop: a site server pushes its deltas to a
// coordinator on a ticker; after the site's final push on Close, the
// coordinator answers exactly like a whole-stream offline summary.
func TestSiteCoordinatorPushLoop(t *testing.T) {
	o := testOptions()
	_, coordTS, coordCl := newTestServer(t, Config{Options: o, Shards: 2})
	site, err := New(Config{
		Options: o, Shards: 2,
		PushTo: coordTS.URL, PushInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	siteTS := httptest.NewServer(site.Handler())
	stream := testStream(4_000, 88)
	ctx := context.Background()
	if err := client.New(siteTS.URL).AddBatch(ctx, stream); err != nil {
		t.Fatal(err)
	}
	time.Sleep(90 * time.Millisecond) // let at least one ticker push land
	siteTS.Close()
	if err := site.Close(); err != nil { // final push ships the remainder
		t.Fatal(err)
	}
	st, err := coordCl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != uint64(len(stream)) {
		t.Fatalf("coordinator count %d, want %d", st.Count, len(stream))
	}
	if st.PushesMerged == 0 {
		t.Fatalf("no pushes recorded: %+v", st)
	}
	offline, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := offline.AddBatch(append([]correlated.Tuple(nil), stream...)); err != nil {
		t.Fatal(err)
	}
	for _, c := range []uint64{0, 120, distinctY} {
		want, err1 := offline.QueryLE(c)
		got, err2 := coordCl.QueryLE(ctx, c)
		if err1 != nil || err2 != nil {
			t.Fatalf("c=%d: %v / %v", c, err1, err2)
		}
		if got != want {
			t.Fatalf("c=%d: coordinator %v offline %v", c, got, want)
		}
	}
}

// TestHealthzAndMetrics: liveness and the Prometheus exposition.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts, cl := newTestServer(t, Config{Options: testOptions()})
	ctx := context.Background()
	if err := cl.Healthy(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddBatch(ctx, testStream(100, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.QueryLE(ctx, 10); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"corrd_tuples_ingested_total 100",
		`corrd_queries_served_total{op="le"} 1`,
		"corrd_engine_tuples 100",
		"corrd_engine_shards 1",
		`corrd_http_request_duration_seconds_count{handler="ingest"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestQueryErrorMapping: misuse is 400, the paper's FAIL is 503.
func TestQueryErrorMapping(t *testing.T) {
	o := testOptions()
	o.Predicate = correlated.LE // GE disabled
	_, ts, cl := newTestServer(t, Config{Options: o})
	ctx := context.Background()
	var ae *client.APIError
	if _, err := cl.QueryGE(ctx, 5); !asAPIError(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("disabled direction: %v", err)
	}
	resp, err := http.Get(ts.URL + "/v1/query?op=weird&c=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad op: HTTP %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/query?op=le&c=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cutoff: HTTP %d", resp.StatusCode)
	}
}

func asAPIError(err error, ae **client.APIError) bool { return errors.As(err, ae) }

// walConfig is the standard durable-ingest test configuration: WAL with
// fsync=always plus a snapshot path whose ticker never fires, so every
// recovery path exercises the log.
func walConfig(t *testing.T, shards int) Config {
	t.Helper()
	dir := t.TempDir()
	return Config{
		Options: testOptions(), Shards: shards, BatchSize: 32,
		SnapshotPath: filepath.Join(dir, "corrd.snapshot"), SnapshotInterval: time.Hour,
		WALDir: filepath.Join(dir, "wal"), WALFsync: "always",
	}
}

// crash simulates kill -9 for an in-process server: drop the listener
// and kill the engine goroutines. No graceful Close, no final snapshot,
// no WAL close — exactly the state a SIGKILL leaves on disk.
func crash(ts *httptest.Server, svc *Server) {
	ts.Close()
	svc.Engine().Close()
}

// TestWALCrashRecoveryExact is the acceptance contract: a server killed
// without warning restarts — restore snapshot, replay WAL suffix — to
// a merged summary byte-identical to a crash-free oracle that performed
// the same acknowledged operations.
func TestWALCrashRecoveryExact(t *testing.T) {
	o := testOptions()
	cfg := walConfig(t, 2)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	cl := client.New(ts.URL, client.WithChunkSize(512))
	ctx := context.Background()

	// Phase 1: ingest, then snapshot (covers a WAL prefix and prunes).
	// The odd count leaves the engine's round-robin cursor mid-cycle at
	// the snapshot, so this test also proves the cursor is restored —
	// otherwise replayed tuples would route to the opposite shards.
	s1 := testStream(2_999, 11)
	if err := cl.AddBatch(ctx, s1); err != nil {
		t.Fatal(err)
	}
	if err := svc.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Phase 2: more ingest plus a push image — the replay suffix.
	s2 := testStream(2_000, 12)
	if err := cl.AddBatch(ctx, s2); err != nil {
		t.Fatal(err)
	}
	site, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	s3 := testStream(1_000, 13)
	if err := site.AddBatch(append([]correlated.Tuple(nil), s3...)); err != nil {
		t.Fatal(err)
	}
	img, err := site.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Push(ctx, img); err != nil {
		t.Fatal(err)
	}
	crash(ts, svc)

	// Restart: snapshot + suffix replay.
	svc2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if !svc2.Restored() {
		t.Fatal("restart did not restore the snapshot")
	}
	if svc2.walReplayed == 0 {
		t.Fatal("restart replayed no WAL records")
	}
	got, err := svc2.Engine().MarshalMerged()
	if err != nil {
		t.Fatal(err)
	}

	// Crash-free oracle: the same configuration (WAL included — the
	// durable ingest path drains per request) fed the same acknowledged
	// operations, never killed.
	oracle, err := New(walConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	ots := httptest.NewServer(oracle.Handler())
	defer ots.Close()
	ocl := client.New(ots.URL, client.WithChunkSize(512))
	if err := ocl.AddBatch(ctx, s1); err != nil {
		t.Fatal(err)
	}
	if err := ocl.AddBatch(ctx, s2); err != nil {
		t.Fatal(err)
	}
	if err := ocl.Push(ctx, img); err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Engine().MarshalMerged()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered merged summary differs from crash-free oracle (%d vs %d bytes)",
			len(got), len(want))
	}
	// Stronger than the merged image: the per-shard snapshot form must
	// match too, which requires replayed tuples to have routed to the
	// same shards as the crash-free run (restored round-robin cursors).
	gotShards, err := svc2.Engine().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	wantShards, err := oracle.Engine().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotShards, wantShards) {
		t.Fatalf("recovered per-shard state differs from crash-free oracle (%d vs %d bytes): shard routing diverged",
			len(gotShards), len(wantShards))
	}

	// The recovered server keeps serving: /v1/summary equals the oracle
	// bytes over HTTP too, and new ingest still works.
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	cl2 := client.New(ts2.URL)
	served, err := cl2.Summary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want) {
		t.Fatal("served /v1/summary differs from oracle after recovery")
	}
	if err := cl2.AddBatch(ctx, testStream(100, 14)); err != nil {
		t.Fatal(err)
	}
	st, err := cl2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.WALEnabled || st.WALReplayRecords == 0 || st.WALLastLSN == 0 {
		t.Fatalf("wal stats after recovery: %+v", st)
	}
}

// TestWALRecoveryWithoutSnapshot: with no snapshot ever written, the
// whole log replays into a fresh engine.
func TestWALRecoveryWithoutSnapshot(t *testing.T) {
	cfg := Config{
		Options: testOptions(), Shards: 1,
		WALDir: filepath.Join(t.TempDir(), "wal"), WALFsync: "always",
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	cl := client.New(ts.URL)
	stream := testStream(1_500, 21)
	if err := cl.AddBatch(context.Background(), stream); err != nil {
		t.Fatal(err)
	}
	want, err := svc.Engine().MarshalMerged()
	if err != nil {
		t.Fatal(err)
	}
	crash(ts, svc)
	svc2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if svc2.Restored() {
		t.Fatal("no snapshot existed, yet Restored reports true")
	}
	got, err := svc2.Engine().MarshalMerged()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("pure-WAL recovery differs from pre-crash state")
	}
}

// TestWALSitePushRound: the site role's journaled push protocol. After
// an acknowledged push, a crashed site recovers to the post-push state
// and does not re-push; a push round cut short by the crash folds its
// image back so nothing is lost.
func TestWALSitePushRound(t *testing.T) {
	o := testOptions()
	_, coordTS, coordCl := newTestServer(t, Config{Options: o, Shards: 1})
	cfg := walConfig(t, 1)
	cfg.PushTo = coordTS.URL
	cfg.PushInterval = time.Hour // pushes only when we say so
	site, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(site.Handler())
	cl := client.New(ts.URL)
	ctx := context.Background()
	stream := testStream(2_000, 31)
	if err := cl.AddBatch(ctx, stream); err != nil {
		t.Fatal(err)
	}
	if err := site.pushOnce(); err != nil {
		t.Fatal(err)
	}
	coordCount := func() uint64 {
		st, err := coordCl.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return st.Count
	}
	if got := coordCount(); got != uint64(len(stream)) {
		t.Fatalf("coordinator count after push: %d", got)
	}
	// Ingest a little more after the acknowledged push, then crash.
	post := testStream(300, 32)
	if err := cl.AddBatch(ctx, post); err != nil {
		t.Fatal(err)
	}
	crash(ts, site)
	site2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := site2.Engine().Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(post)) {
		t.Fatalf("recovered site count %d, want %d (acknowledged push must not be replayed locally)",
			n, len(post))
	}
	// The recovered site pushes only the post-push delta upstream.
	if err := site2.pushOnce(); err != nil {
		t.Fatal(err)
	}
	if got := coordCount(); got != uint64(len(stream)+len(post)) {
		t.Fatalf("coordinator count after recovered push: %d, want %d (no duplicate push)",
			got, len(stream)+len(post))
	}
	site2.Close()
}

// TestWALInFlightPushFoldsBack: a crash with a push round open (reset
// logged, no ack) folds the in-flight image back at replay, so the
// acknowledged ingest behind it is never lost.
func TestWALInFlightPushFoldsBack(t *testing.T) {
	cfg := walConfig(t, 1)
	cfg.PushTo = "http://127.0.0.1:1" // unreachable coordinator
	cfg.PushInterval = time.Hour
	site, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(site.Handler())
	cl := client.New(ts.URL, client.WithRetries(0))
	ctx := context.Background()
	stream := testStream(1_200, 41)
	if err := cl.AddBatch(ctx, stream); err != nil {
		t.Fatal(err)
	}
	// Open a push round by hand: marshal + reset + RecordReset, exactly
	// what pushOnce does before shipping — then "crash" before any
	// fold-back or ack is logged.
	site.mu.Lock()
	img, err := site.def.eng.MarshalMerged()
	if err == nil {
		err = site.def.eng.Reset()
	}
	if err == nil {
		err = site.logReset(img)
	}
	site.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	crash(ts, site)

	site2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer site2.Close()
	n, err := site2.Engine().Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(stream)) {
		t.Fatalf("recovered count %d, want %d (in-flight image must fold back)", n, len(stream))
	}
}

// TestMultiCutoffQuery: repeated c= values come back in one response,
// each answer identical to its single-cutoff counterpart.
func TestMultiCutoffQuery(t *testing.T) {
	_, ts, cl := newTestServer(t, Config{Options: testOptions(), Shards: 2})
	ctx := context.Background()
	if err := cl.AddBatch(ctx, testStream(5_000, 51)); err != nil {
		t.Fatal(err)
	}
	cutoffs := []uint64{0, 10, 50, 100, 200, distinctY, 1 << 15}
	got, err := cl.QueryBatch(ctx, "le", cutoffs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cutoffs) {
		t.Fatalf("%d results for %d cutoffs", len(got), len(cutoffs))
	}
	for i, c := range cutoffs {
		want, err := cl.QueryLE(ctx, c)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].C != c || got[i].Estimate != want || got[i].Op != "le" {
			t.Fatalf("cutoff %d: batch %+v, single %v", c, got[i], want)
		}
	}
	// Single-cutoff QueryBatch keeps the single-result wire shape.
	one, err := cl.QueryBatch(ctx, "ge", cutoffs[:1])
	if err != nil || len(one) != 1 || one[0].Op != "ge" {
		t.Fatalf("single-cutoff batch: %v %+v", err, one)
	}
	// A bad cutoff rejects the whole request.
	resp, err := http.Get(ts.URL + "/v1/query?op=le&c=1&c=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cutoff in batch: HTTP %d", resp.StatusCode)
	}
}

// TestWALMetricsExposed: the Prometheus exposition carries the WAL
// family when (and only when) the WAL is on.
func TestWALMetricsExposed(t *testing.T) {
	_, ts, cl := newTestServer(t, walConfig(t, 1))
	ctx := context.Background()
	if err := cl.AddBatch(ctx, testStream(100, 61)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"corrd_wal_segments 1",
		"corrd_wal_appends_total 1",
		"corrd_wal_fsyncs_total",
		"corrd_wal_fsync_duration_seconds_count",
		`corrd_wal_fsync_duration_seconds_bucket{le="+Inf"}`,
		"corrd_wal_last_lsn 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
	_, ts2, _ := newTestServer(t, Config{Options: testOptions()})
	resp2, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if strings.Contains(string(raw2), "corrd_wal_") {
		t.Fatal("WAL metrics exposed without a WAL")
	}
}

// TestWALFoldbackRoundSurvivesCrash: a push whose ship fails folds the
// image back and journals it as one atomic record — after a crash the
// recovered state holds the stream exactly once, not twice.
func TestWALFoldbackRoundSurvivesCrash(t *testing.T) {
	cfg := walConfig(t, 1)
	cfg.PushTo = "http://127.0.0.1:1" // nothing listens there
	cfg.PushInterval = time.Hour
	site, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(site.Handler())
	cl := client.New(ts.URL)
	ctx := context.Background()
	stream := testStream(900, 71)
	if err := cl.AddBatch(ctx, stream); err != nil {
		t.Fatal(err)
	}
	if err := site.pushOnce(); err == nil {
		t.Fatal("push to an unreachable coordinator succeeded")
	}
	n, err := site.Engine().Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(stream)) {
		t.Fatalf("live fold-back count %d, want %d", n, len(stream))
	}
	crash(ts, site)
	site2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer site2.Close()
	n2, err := site2.Engine().Count()
	if err != nil {
		t.Fatal(err)
	}
	if n2 != uint64(len(stream)) {
		t.Fatalf("recovered count %d, want %d (fold-back must apply exactly once)", n2, len(stream))
	}
}

// TestWALRefusesStaleSnapshot: the log's checkpoint markers witness
// that a snapshot covering LSN N existed; if the restored snapshot
// covers less (deleted, replaced, or written during a WAL-less run),
// startup must refuse instead of double-applying the retained log.
func TestWALRefusesStaleSnapshot(t *testing.T) {
	cfg := walConfig(t, 1)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	cl := client.New(ts.URL)
	ctx := context.Background()
	if err := cl.AddBatch(ctx, testStream(500, 81)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Snapshot(); err != nil { // writes the checkpoint marker
		t.Fatal(err)
	}
	if err := cl.AddBatch(ctx, testStream(100, 82)); err != nil {
		t.Fatal(err)
	}
	crash(ts, svc)
	if err := os.Remove(cfg.SnapshotPath); err != nil { // lose the snapshot
		t.Fatal(err)
	}
	svc2, err := New(cfg)
	if err == nil {
		svc2.Close()
		t.Fatal("startup over a checkpointed WAL with no snapshot must refuse")
	}
	if !strings.Contains(err.Error(), "stale or missing") {
		t.Fatalf("unexpected refusal error: %v", err)
	}
}
