package service

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/client"
	"github.com/streamagg/correlated/internal/hash"
)

// testOptions keeps streams in the singleton regime (distinct y values
// below Alpha), where merge-then-query is bit-identical to a single
// whole-stream summary — the regime where "identical to an offline
// summary" is an exact float comparison, not a tolerance.
func testOptions() correlated.Options {
	return correlated.Options{
		Eps: 0.2, Delta: 0.1, YMax: 1<<16 - 1,
		MaxStreamLen: 1 << 20, MaxX: 1 << 14,
		Alpha: 512, Seed: 7, Predicate: correlated.Both,
	}
}

const distinctY = 300 // < Alpha: singleton regime

func testStream(n int, seed uint64) []correlated.Tuple {
	rng := hash.New(seed)
	batch := make([]correlated.Tuple, n)
	for i := range batch {
		batch[i] = correlated.Tuple{X: rng.Uint64n(1 << 12), Y: rng.Uint64n(distinctY), W: 1}
	}
	return batch
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *client.Client) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts, client.New(ts.URL, client.WithChunkSize(777))
}

// TestIngestQueryStatsRoundTrip: tuples ingested over HTTP answer
// queries identically to an offline summary built from the same stream
// with the same seed, and /v1/stats reflects the traffic.
func TestIngestQueryStatsRoundTrip(t *testing.T) {
	o := testOptions()
	_, _, cl := newTestServer(t, Config{Options: o, Shards: 2, BatchSize: 64})
	stream := testStream(10_000, 42)
	if err := cl.AddBatch(context.Background(), stream); err != nil {
		t.Fatal(err)
	}
	offline, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := offline.AddBatch(append([]correlated.Tuple(nil), stream...)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, c := range []uint64{0, 50, 150, distinctY, 1 << 15} {
		want, err := offline.QueryLE(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.QueryLE(ctx, c)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("LE c=%d: service %v offline %v", c, got, want)
		}
		wantGE, err := offline.QueryGE(c)
		if err != nil {
			t.Fatal(err)
		}
		gotGE, err := cl.QueryGE(ctx, c)
		if err != nil {
			t.Fatal(err)
		}
		if gotGE != wantGE {
			t.Fatalf("GE c=%d: service %v offline %v", c, gotGE, wantGE)
		}
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != uint64(len(stream)) || st.TuplesIngested != uint64(len(stream)) {
		t.Fatalf("stats: %+v", st)
	}
	if st.Role != "coordinator" || st.Aggregate != "f2" || st.Shards != 2 {
		t.Fatalf("stats identity: %+v", st)
	}
	if st.QueriesServed == 0 || st.Space <= 0 {
		t.Fatalf("stats counters: %+v", st)
	}
}

// TestIngestTextFormat: the curl-friendly text body works and bad lines
// reject the whole batch atomically.
func TestIngestTextFormat(t *testing.T) {
	_, ts, cl := newTestServer(t, Config{Options: testOptions()})
	body := "# comment\n1,10\n2,20,3\n\n3,30\n"
	resp, err := http.Post(ts.URL+"/v1/ingest", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text ingest: HTTP %d", resp.StatusCode)
	}
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 3 { // three records (weights do not inflate Count)
		t.Fatalf("count after text ingest: %d", st.Count)
	}
	resp, err = http.Post(ts.URL+"/v1/ingest", "text/csv", strings.NewReader("1,2\nnope\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad line: HTTP %d", resp.StatusCode)
	}
	if st, _ = cl.Stats(context.Background()); st.Count != 3 {
		t.Fatalf("rejected batch changed count: %d", st.Count)
	}
}

// TestPushPathBitIdentical: a site image pushed through /v1/push yields
// query answers identical to offline MergeMarshaled of the same image,
// and the served /v1/summary re-marshals to the offline bytes.
func TestPushPathBitIdentical(t *testing.T) {
	o := testOptions()
	_, _, cl := newTestServer(t, Config{Options: o, Shards: 1})
	site, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := site.AddBatch(testStream(5_000, 99)); err != nil {
		t.Fatal(err)
	}
	img, err := site.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := cl.Push(ctx, img); err != nil {
		t.Fatal(err)
	}
	offline, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := offline.MergeMarshaled(img); err != nil {
		t.Fatal(err)
	}
	for _, c := range []uint64{0, 100, distinctY, 1 << 15} {
		want, err1 := offline.QueryLE(c)
		got, err2 := cl.QueryLE(ctx, c)
		if err1 != nil || err2 != nil {
			t.Fatalf("c=%d: %v / %v", c, err1, err2)
		}
		if got != want {
			t.Fatalf("c=%d: pushed %v offline %v", c, got, want)
		}
	}
	served, err := cl.Summary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	offlineImg, err := offline.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, offlineImg) {
		t.Fatalf("served summary differs from offline merge (%d vs %d bytes)", len(served), len(offlineImg))
	}
	// Garbage push: 400, engine untouched.
	if err := cl.Push(ctx, []byte{1, 2, 3}); err == nil {
		t.Fatal("garbage push accepted")
	}
	// Incompatible push (different seed): 409, detectable via helper.
	o2 := o
	o2.Seed++
	foreign, err := correlated.NewF2Summary(o2)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := foreign.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	err = cl.Push(ctx, bad)
	if !client.IsIncompatible(err) {
		t.Fatalf("incompatible push: %v", err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != site.Count() || st.PushesMerged != 1 {
		t.Fatalf("stats after rejected pushes: %+v", st)
	}
}

// TestSnapshotCrashRecovery is the durability contract: snapshot, keep
// ingesting, crash without a graceful shutdown — the restarted server
// resumes from the snapshot with a bit-identical marshaled state.
func TestSnapshotCrashRecovery(t *testing.T) {
	o := testOptions()
	snap := filepath.Join(t.TempDir(), "corrd.snapshot")
	cfg := Config{
		Options: o, Shards: 2, BatchSize: 32,
		SnapshotPath: snap, SnapshotInterval: time.Hour, // only explicit snapshots
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	cl := client.New(ts.URL)
	ctx := context.Background()
	if err := cl.AddBatch(ctx, testStream(6_000, 5)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Snapshot(); err != nil {
		t.Fatal(err)
	}
	snapBytes, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	wantLE, err := cl.QueryLE(ctx, 150)
	if err != nil {
		t.Fatal(err)
	}
	// Keep ingesting past the snapshot, then crash: engine goroutines
	// die, no final snapshot is written — disk still holds the old
	// image, exactly like a SIGKILL mid-ingest.
	if err := cl.AddBatch(ctx, testStream(2_000, 6)); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	svc.Engine().Close()

	svc2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if !svc2.Restored() {
		t.Fatal("restart did not restore from snapshot")
	}
	img, err := svc2.Engine().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, snapBytes) {
		t.Fatalf("restored state is not bit-identical to the snapshot image (%d vs %d bytes)",
			len(img), len(snapBytes))
	}
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	cl2 := client.New(ts2.URL)
	got, err := cl2.QueryLE(ctx, 150)
	if err != nil {
		t.Fatal(err)
	}
	if got != wantLE {
		t.Fatalf("post-restore query %v, pre-crash %v", got, wantLE)
	}
	st, err := cl2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 6_000 || !st.Restored {
		t.Fatalf("post-restore stats: %+v", st)
	}
}

// TestGracefulShutdownFlush: Close flushes shard buffers and writes a
// final snapshot, so a restart serves every accepted tuple.
func TestGracefulShutdownFlush(t *testing.T) {
	o := testOptions()
	snap := filepath.Join(t.TempDir(), "corrd.snapshot")
	cfg := Config{
		Options: o, Shards: 2,
		BatchSize:    4096, // large: tuples sit in pending buffers until a barrier
		SnapshotPath: snap, SnapshotInterval: time.Hour,
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	if err := client.New(srv.URL).AddBatch(context.Background(), testStream(500, 3)); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	svc2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	n, err := svc2.Engine().Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("restart after graceful shutdown: count %d, want 500", n)
	}
}

// TestSiteCoordinatorPushLoop: a site server pushes its deltas to a
// coordinator on a ticker; after the site's final push on Close, the
// coordinator answers exactly like a whole-stream offline summary.
func TestSiteCoordinatorPushLoop(t *testing.T) {
	o := testOptions()
	_, coordTS, coordCl := newTestServer(t, Config{Options: o, Shards: 2})
	site, err := New(Config{
		Options: o, Shards: 2,
		PushTo: coordTS.URL, PushInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	siteTS := httptest.NewServer(site.Handler())
	stream := testStream(4_000, 88)
	ctx := context.Background()
	if err := client.New(siteTS.URL).AddBatch(ctx, stream); err != nil {
		t.Fatal(err)
	}
	time.Sleep(90 * time.Millisecond) // let at least one ticker push land
	siteTS.Close()
	if err := site.Close(); err != nil { // final push ships the remainder
		t.Fatal(err)
	}
	st, err := coordCl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != uint64(len(stream)) {
		t.Fatalf("coordinator count %d, want %d", st.Count, len(stream))
	}
	if st.PushesMerged == 0 {
		t.Fatalf("no pushes recorded: %+v", st)
	}
	offline, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := offline.AddBatch(append([]correlated.Tuple(nil), stream...)); err != nil {
		t.Fatal(err)
	}
	for _, c := range []uint64{0, 120, distinctY} {
		want, err1 := offline.QueryLE(c)
		got, err2 := coordCl.QueryLE(ctx, c)
		if err1 != nil || err2 != nil {
			t.Fatalf("c=%d: %v / %v", c, err1, err2)
		}
		if got != want {
			t.Fatalf("c=%d: coordinator %v offline %v", c, got, want)
		}
	}
}

// TestHealthzAndMetrics: liveness and the Prometheus exposition.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts, cl := newTestServer(t, Config{Options: testOptions()})
	ctx := context.Background()
	if err := cl.Healthy(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddBatch(ctx, testStream(100, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.QueryLE(ctx, 10); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"corrd_tuples_ingested_total 100",
		`corrd_queries_served_total{op="le"} 1`,
		"corrd_engine_tuples 100",
		"corrd_engine_shards 1",
		`corrd_http_request_duration_seconds_count{handler="ingest"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestQueryErrorMapping: misuse is 400, the paper's FAIL is 503.
func TestQueryErrorMapping(t *testing.T) {
	o := testOptions()
	o.Predicate = correlated.LE // GE disabled
	_, ts, cl := newTestServer(t, Config{Options: o})
	ctx := context.Background()
	var ae *client.APIError
	if _, err := cl.QueryGE(ctx, 5); !asAPIError(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("disabled direction: %v", err)
	}
	resp, err := http.Get(ts.URL + "/v1/query?op=weird&c=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad op: HTTP %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/query?op=le&c=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cutoff: HTTP %d", resp.StatusCode)
	}
}

func asAPIError(err error, ae **client.APIError) bool { return errors.As(err, ae) }
