package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/client"
	"github.com/streamagg/correlated/internal/fault"
	"github.com/streamagg/correlated/internal/tupleio"
	"github.com/streamagg/correlated/internal/wal"
	"github.com/streamagg/correlated/shard"
)

// routes wires the HTTP surface. Method-qualified patterns (Go 1.22
// ServeMux) give wrong-method requests a 405 for free.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/ingest", s.instrument("ingest", s.handleIngest))
	s.mux.HandleFunc("POST /v1/push", s.instrument("push", s.handlePush))
	s.mux.HandleFunc("GET /v1/query", s.instrument("query", s.handleQuery))
	s.mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	s.mux.HandleFunc("GET /v1/summary", s.instrument("summary", s.handleSummary))
	s.mux.HandleFunc("POST /v1/promote", s.instrument("promote", s.handlePromote))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("POST /v1/recover", s.handleRecover)
	// The fault surface exists only when the process was started with an
	// injector (cmd/corrd -fault-plan): a production daemon has no
	// endpoint to find, let alone abuse.
	if inj, ok := s.cfg.FS.(*fault.Injector); ok {
		s.mux.HandleFunc("POST /v1/fault", s.handleFault(inj))
	}
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// handleFault is POST /v1/fault: install (or clear, with "off") a new
// fault plan on the live injector. The body is the plan DSL text.
func (s *Server) handleFault(inj *fault.Injector) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 4096))
		if err != nil {
			s.httpError(w, http.StatusBadRequest, err)
			return
		}
		plan, err := fault.ParsePlan(string(body))
		if err != nil {
			s.httpError(w, http.StatusBadRequest, err)
			return
		}
		inj.SetPlan(plan)
		s.logf("fault: plan set to %q (injected so far: %d)", plan.String(), inj.Injected())
		writeJSON(w, http.StatusOK, map[string]any{"plan": plan.String(), "injected": inj.Injected()})
	}
}

// maxPooledBuffer caps what a recycled decodeState may retain: a rare
// near-MaxBodyBytes request must not leave a pool entry permanently
// pinning tens of MiB, so oversized buffers are dropped and reallocated
// by the next large request instead.
const maxPooledBuffer = 4 << 20

// putDecodeState recycles d unless a large request inflated it. The
// job's tuple reference is always dropped: it aliases d.tuples, and
// leaving it set would keep an oversized backing array alive through
// the pool even after the trim below released d.tuples itself.
func (s *Server) putDecodeState(d *decodeState) {
	d.job.tuples, d.job.err, d.job.tn = nil, nil, nil
	d.job.lsn, d.streamSeq = 0, 0
	if cap(d.body) > maxPooledBuffer {
		d.body = nil
	}
	if cap(d.tuples)*24 > maxPooledBuffer { // 24 bytes per Tuple
		d.tuples = nil
	}
	s.dec.Put(d)
}

// instrument wraps a handler with the observability spine: the
// per-handler latency histogram, X-Request-ID accept/generate/echo,
// the access-log record, and the slow-request promotion. The ID is
// echoed on every response — success or rejection — so a client can
// correlate any outcome with the server's access log.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = newRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		sw := statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(&sw, r)
		d := time.Since(start)
		s.metrics.observe(name, d)
		if s.access != nil {
			s.access.record(accessRecord{
				ts:        start,
				transport: "http",
				method:    r.Method,
				path:      r.URL.Path,
				tenant:    r.URL.Query().Get("tenant"),
				requestID: rid,
				status:    sw.status,
				bytesIn:   r.ContentLength,
				bytesOut:  sw.bytes,
				dur:       d,
			})
		}
		if s.cfg.SlowRequest > 0 && d >= s.cfg.SlowRequest {
			s.metrics.slowRequests.Inc()
			s.logf("slow request: %s %s status=%d dur=%s request_id=%s",
				r.Method, r.URL.Path, sw.status, d.Round(time.Microsecond), rid)
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func (s *Server) httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusForTenant maps tenant-creation failures: the governance caps
// get their typed statuses (429 for the count cap, 413 for the memory
// cap), an invalid key is the client's error.
func statusForTenant(err error) int {
	switch {
	case errors.Is(err, ErrTenantLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrTenantMemory):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, tupleio.ErrBadStream):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// writeTenant resolves the request's ?tenant= key for a write path
// (ingest, push), creating the tenant subject to the governance caps;
// on failure it writes the typed rejection itself and returns nil.
func (s *Server) writeTenant(w http.ResponseWriter, r *http.Request) *tenant {
	name := r.URL.Query().Get("tenant")
	t, err := s.getOrCreateTenant([]byte(name), false)
	if err != nil {
		s.httpError(w, statusForTenant(err), err)
		return nil
	}
	return t
}

// readTenant resolves ?tenant= for a read path (query, summary, stats):
// reads never create a namespace, so an unknown key is a plain 404.
func (s *Server) readTenant(w http.ResponseWriter, r *http.Request) *tenant {
	name := r.URL.Query().Get("tenant")
	t := s.tenantByName(name)
	if t == nil {
		s.httpError(w, http.StatusNotFound, fmt.Errorf("unknown tenant %q", name))
		return nil
	}
	return t
}

// readBody drains the request body into dst (reusing its capacity),
// enforcing the configured byte cap. It reports 413 on overflow itself
// and returns ok=false.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, dst []byte) ([]byte, bool) {
	rd := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dst = dst[:0]
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := rd.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, true
		}
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				s.httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("body exceeds %d bytes", mbe.Limit))
			} else {
				s.httpError(w, http.StatusBadRequest, err)
			}
			return dst, false
		}
	}
}

// handleIngest accepts a batch of tuples — the binary tupleio stream
// from the Go client, or text lines "x,y[,w]" for curl-friendly ingest —
// and drives it through the shard engine's atomic AddBatch: a rejected
// batch has ingested nothing.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.metrics.ingestRequests.Inc()
	if s.replicaMode.Load() {
		s.metrics.ingestErrors.Inc()
		s.httpError(w, http.StatusServiceUnavailable, errReadOnlyReplica)
		return
	}
	if s.healthDegraded() {
		s.metrics.ingestErrors.Inc()
		s.metrics.degradedRejects.Inc()
		w.Header().Set("Retry-After", retryAfterSeconds(healthProbeInterval))
		s.httpError(w, http.StatusServiceUnavailable, errDegraded)
		return
	}
	d := s.dec.Get().(*decodeState)
	defer s.putDecodeState(d)
	var ok bool
	if d.body, ok = s.readBody(w, r, d.body); !ok {
		s.metrics.ingestErrors.Inc()
		return
	}
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = strings.TrimSpace(ct[:i])
	}
	var err error
	switch ct {
	case tupleio.ContentType, "application/octet-stream", "":
		d.tuples, err = tupleio.Decode(d.tuples, d.body)
	case "text/csv", "text/plain":
		d.tuples, err = parseTextTuples(d.tuples, d.body)
	default:
		s.metrics.ingestErrors.Inc()
		s.httpError(w, http.StatusUnsupportedMediaType,
			fmt.Errorf("unsupported Content-Type %q (want %s or text/csv)", ct, tupleio.ContentType))
		return
	}
	if err != nil {
		s.metrics.ingestErrors.Inc()
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	tn := s.writeTenant(w, r)
	if tn == nil {
		s.metrics.ingestErrors.Inc()
		return
	}
	// Hand the decoded batch to the commit pipeline and wait for its
	// group to commit: the committer applies the whole group's members
	// under one driver-lock critical section, drains each touched
	// tenant's engine once, and makes them durable behind one WAL fsync —
	// so under concurrent clients the per-request ack cost is the group
	// cost divided by the group size (see pipeline.go). The reply below
	// is sent only after that group-wide durability barrier.
	d.job.tuples, d.job.err, d.job.kind = d.tuples, nil, ingestOK
	d.job.tn = tn
	if err := s.enqueueIngest(&d.job); err != nil {
		s.metrics.ingestErrors.Inc()
		if errors.Is(err, errOverloaded) {
			w.Header().Set("Retry-After", retryAfterSeconds(s.overloadRetryAfter()))
			s.httpError(w, http.StatusTooManyRequests, err)
			return
		}
		s.httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	<-d.job.done
	s.metrics.stages[stageAck].Observe(time.Since(d.job.wakeAt).Seconds())
	switch d.job.kind {
	case ingestErrValidate:
		// AddBatch fails only on synchronous validation (y bound,
		// weight) — the batch was rejected atomically, so this is the
		// client's error; a closed engine is the exception.
		s.metrics.ingestErrors.Inc()
		status := http.StatusBadRequest
		if errors.Is(d.job.err, shard.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		s.httpError(w, status, d.job.err)
		return
	case ingestErrEngine:
		// A worker rejected part of the group (or the engine died):
		// not logged, not acknowledged.
		s.metrics.ingestErrors.Inc()
		s.httpError(w, statusForEngine(d.job.err), d.job.err)
		return
	case ingestErrWAL:
		// The engine holds the group but the log does not: the tuples
		// were never acknowledged, so a crash dropping them is within
		// contract — but tell the client the write is not durable.
		s.metrics.ingestErrors.Inc()
		s.metrics.walAppendErrors.Inc()
		s.httpError(w, http.StatusInternalServerError, fmt.Errorf("wal append: %w", d.job.err))
		return
	}
	s.metrics.tuplesIngested.Add(uint64(len(d.tuples)))
	tn.tuplesIngested.Add(uint64(len(d.tuples)))
	writeJSON(w, http.StatusOK, map[string]uint64{"tuples": uint64(len(d.tuples))})
}

// parseTextTuples parses newline-separated "x,y" or "x,y,w" records
// (blank lines and #-comments ignored) into dst.
func parseTextTuples(dst []correlated.Tuple, body []byte) ([]correlated.Tuple, error) {
	dst = dst[:0]
	for lineNo, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 && len(parts) != 3 {
			return dst[:0], fmt.Errorf("line %d: want x,y or x,y,w", lineNo+1)
		}
		var t correlated.Tuple
		var err error
		if t.X, err = strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 64); err != nil {
			return dst[:0], fmt.Errorf("line %d: bad x: %w", lineNo+1, err)
		}
		if t.Y, err = strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 64); err != nil {
			return dst[:0], fmt.Errorf("line %d: bad y: %w", lineNo+1, err)
		}
		t.W = 1
		if len(parts) == 3 {
			if t.W, err = strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64); err != nil {
				return dst[:0], fmt.Errorf("line %d: bad weight: %w", lineNo+1, err)
			}
		}
		dst = append(dst, t)
	}
	return dst, nil
}

// handlePush folds a marshaled site summary image into the engine —
// attacker-controlled bytes by definition, so the decode path is the
// fuzz-hardened MergeMarshaled, and every failure is a typed rejection
// that leaves the engine untouched.
func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	if s.replicaMode.Load() {
		s.metrics.pushErrors.Inc()
		s.httpError(w, http.StatusServiceUnavailable, errReadOnlyReplica)
		return
	}
	if s.healthDegraded() {
		s.metrics.pushErrors.Inc()
		s.metrics.degradedRejects.Inc()
		w.Header().Set("Retry-After", retryAfterSeconds(healthProbeInterval))
		s.httpError(w, http.StatusServiceUnavailable, errDegraded)
		return
	}
	d := s.dec.Get().(*decodeState)
	defer s.putDecodeState(d)
	var ok bool
	if d.body, ok = s.readBody(w, r, d.body); !ok {
		s.metrics.pushErrors.Inc()
		return
	}
	if len(d.body) == 0 {
		s.metrics.pushErrors.Inc()
		s.httpError(w, http.StatusBadRequest, errors.New("empty push body"))
		return
	}
	tn := s.writeTenant(w, r)
	if tn == nil {
		s.metrics.pushErrors.Inc()
		return
	}
	s.mu.Lock()
	eng, engErr := s.ensureEngineLocked(tn)
	if engErr != nil {
		s.mu.Unlock()
		s.metrics.pushErrors.Inc()
		s.httpError(w, statusForEngine(engErr), engErr)
		return
	}
	err := eng.MergeMarshaled(d.body)
	var walErr error
	if err == nil {
		walErr = s.logPush(tn, d.body)
		tn.epoch.Add(1)
		tn.touch()
	}
	s.mu.Unlock()
	if err != nil {
		s.metrics.pushErrors.Inc()
		status := http.StatusBadRequest
		if errors.Is(err, correlated.ErrIncompatible) {
			status = http.StatusConflict
		}
		s.httpError(w, status, err)
		return
	}
	if walErr != nil {
		s.metrics.pushErrors.Inc()
		s.metrics.walAppendErrors.Inc()
		s.noteWALError(walErr)
		s.httpError(w, http.StatusInternalServerError, fmt.Errorf("wal append: %w", walErr))
		return
	}
	s.metrics.pushesMerged.Inc()
	tn.pushesMerged.Add(1)
	writeJSON(w, http.StatusOK, map[string]bool{"merged": true})
}

// handleQuery answers GET /v1/query?op=le|ge&c=N. The c parameter may
// repeat (?op=le&c=10&c=100&c=1000): all cutoffs are answered together,
// so a drill-down loop pays one round trip instead of one per cutoff. A
// single c keeps the original wire shape; multiple return
// {"op":...,"results":[...]}.
//
// Queries are served from the epoch cache: a merged summary rebuilt
// (one barrier + one shard merge, under the driver lock) only when the
// engine state has actually moved since the cache was built, and read
// without the driver lock otherwise. Repeated queries against unmoved
// state cost zero merges and never block ingest; under sustained ingest
// the rebuild happens at most once per committed group, shared by every
// query that arrives within the epoch. Read-your-writes holds: an
// acknowledged ingest bumped the epoch before its ack, so a later query
// sees a stale cache and rebuilds.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	op := q.Get("op")
	if op == "" {
		op = "le"
	}
	if op != "le" && op != "ge" {
		s.metrics.queryErrors.Inc()
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("bad op %q (want le or ge)", op))
		return
	}
	raw := q["c"]
	if len(raw) == 0 {
		s.metrics.queryErrors.Inc()
		s.httpError(w, http.StatusBadRequest, errors.New("missing cutoff c"))
		return
	}
	if len(raw) > maxCutoffsPerQuery {
		s.metrics.queryErrors.Inc()
		s.httpError(w, http.StatusBadRequest,
			fmt.Errorf("%d cutoffs in one query (cap is %d)", len(raw), maxCutoffsPerQuery))
		return
	}
	cutoffs := make([]uint64, len(raw))
	for i, rc := range raw {
		c, err := strconv.ParseUint(rc, 10, 64)
		if err != nil {
			s.metrics.queryErrors.Inc()
			s.httpError(w, http.StatusBadRequest, fmt.Errorf("bad cutoff c=%q: %w", rc, err))
			return
		}
		cutoffs[i] = c
	}
	tn := s.readTenant(w, r)
	if tn == nil {
		s.metrics.queryErrors.Inc()
		return
	}
	// Serve from the tenant's cached merged summary, rebuilding it first
	// if its epoch moved. queryMu serializes queries among themselves
	// per tenant (the cached summary's query path uses pooled scratch);
	// the driver lock is taken only for the rebuild — which also
	// materializes a spilled tenant — so evaluation never blocks ingest.
	// A spilled tenant always rebuilds: its spill invalidated the cache
	// under this same queryMu.
	estimates := make([]float64, len(cutoffs))
	var err error
	tn.queryMu.Lock()
	eng := tn.cacheEng
	stale := !tn.cacheValid || tn.cacheEpoch != tn.epoch.Load()
	if stale && tn.cacheValid && s.cfg.QueryMaxStale > 0 &&
		time.Since(tn.cacheBuilt) < s.cfg.QueryMaxStale {
		// The state moved, but the cache is within the configured
		// staleness budget: keep serving it, so a hot query loop costs
		// at most one rebuild per window instead of one per commit.
		stale = false
	}
	if stale {
		s.mu.Lock()
		eng, err = s.ensureEngineLocked(tn)
		if err == nil {
			err = eng.RefreshCached()
		}
		epoch := tn.epoch.Load() // stable while mu is held: bumps happen under mu
		s.mu.Unlock()
		if err != nil {
			tn.queryMu.Unlock()
			s.metrics.queryErrors.Inc()
			s.httpError(w, statusForQuery(err), err)
			return
		}
		tn.cacheEpoch, tn.cacheValid, tn.cacheBuilt = epoch, true, time.Now()
		tn.cacheEng = eng
		s.metrics.queryCacheRebuilds.Inc()
	} else {
		s.metrics.queryCacheHits.Inc()
	}
	if op == "le" {
		err = eng.CachedQueryLEBatch(cutoffs, estimates)
	} else {
		err = eng.CachedQueryGEBatch(cutoffs, estimates)
	}
	tn.queryMu.Unlock()
	tn.touch()
	tn.queries.Add(uint64(len(cutoffs)))
	if err != nil {
		s.metrics.queryErrors.Inc()
		s.httpError(w, statusForQuery(err), err)
		return
	}
	results := make([]client.QueryResult, len(cutoffs))
	for i, c := range cutoffs {
		results[i] = client.QueryResult{Op: op, C: c, Estimate: estimates[i]}
	}
	if op == "le" {
		s.metrics.queriesLE.Add(uint64(len(cutoffs)))
	} else {
		s.metrics.queriesGE.Add(uint64(len(cutoffs)))
	}
	if len(results) == 1 {
		writeJSON(w, http.StatusOK, results[0])
		return
	}
	writeJSON(w, http.StatusOK, client.MultiQueryResult{Op: op, Results: results})
}

// maxCutoffsPerQuery bounds the per-request work of a multi-cutoff
// query; each cutoff costs a merge-composed query on the engine.
const maxCutoffsPerQuery = 1024

// statusForQuery maps query errors: misuse is 400, the paper's FAIL
// output (ErrNoLevel, probability <= Delta) is 503 — the client may
// retry a nearby cutoff — and a closed engine is 503 too.
func statusForQuery(err error) int {
	switch {
	case errors.Is(err, correlated.ErrDirection):
		return http.StatusBadRequest
	case errors.Is(err, correlated.ErrNoLevel), errors.Is(err, shard.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// statusForEngine maps errors surfacing from engine barriers (stats,
// summary): a closed engine is 503, anything else is server state gone
// wrong — e.g. a worker's sticky async ingest error — not the caller's
// fault.
func statusForEngine(err error) int {
	if errors.Is(err, shard.ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// handleStats reports the serving-state counters as JSON. Without a
// ?tenant= key the engine fields describe the default tenant (the
// single-tenant wire shape, unchanged) plus registry-wide aggregates;
// with one, the engine fields and per-tenant counters describe that
// tenant — materializing it if it was spilled, like any other touch.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	tn := s.def
	named := r.URL.Query().Has("tenant")
	if named {
		if tn = s.readTenant(w, r); tn == nil {
			return
		}
	}
	s.mu.Lock()
	eng, err := s.ensureEngineLocked(tn)
	var count uint64
	var space int64
	if err == nil {
		count, err = eng.Count()
	}
	if err == nil {
		space, err = eng.Space()
	}
	var shards int
	if err == nil {
		shards = eng.Shards()
	}
	s.mu.Unlock()
	if err != nil {
		s.httpError(w, statusForEngine(err), err)
		return
	}
	if named {
		tn.touch()
	}
	total, live := s.tenantCounts()
	st := client.Stats{
		Role:           s.roleNow(),
		Aggregate:      s.cfg.aggregate(),
		Shards:         shards,
		Count:          count,
		Space:          space,
		TuplesIngested: s.metrics.tuplesIngested.Load(),
		PushesMerged:   s.metrics.pushesMerged.Load(),
		QueriesServed:  s.metrics.queriesLE.Load() + s.metrics.queriesGE.Load(),
		Restored:       s.restored,
		LastSnapshot:   s.metrics.lastSnapshotUnix.Load(),
		UptimeSeconds:  time.Since(s.metrics.start).Seconds(),

		IngestGroups:       s.metrics.ingestGroups.Load(),
		IngestGroupReqs:    s.metrics.ingestGroupMembers.Load(),
		QueryCacheHits:     s.metrics.queryCacheHits.Load(),
		QueryCacheRebuilds: s.metrics.queryCacheRebuilds.Load(),

		StreamConns:      s.metrics.streamConns.Load(),
		StreamConnsTotal: s.metrics.streamConnsTotal.Load(),
		StreamFrames:     s.metrics.streamFrames.Load(),
		StreamTuples:     s.metrics.streamTuples.Load(),

		Tenants:        total,
		TenantsLive:    live,
		TenantBytes:    s.tenantBytes.Load(),
		TenantSpills:   s.metrics.tenantsSpilled.Load(),
		TenantRestores: s.metrics.tenantsRestored.Load(),

		PipelineStages: s.metrics.stageBreakdown(),

		Health:          healthName(s.health.state.Load()),
		DegradedSeconds: s.degradedSeconds(),
	}
	if named {
		st.Tenant = tn.name
		st.TenantTuplesIngested = tn.tuplesIngested.Load()
		st.TenantPushesMerged = tn.pushesMerged.Load()
		st.TenantQueriesServed = tn.queries.Load()
		st.TenantSpills = tn.spills.Load()
		st.TenantRestores = tn.restores.Load()
	}
	if wl := s.walRef(); wl != nil {
		ws := wl.Stats()
		st.WALEnabled = true
		st.WALFsync = s.cfg.walFsync()
		st.WALFsyncs = ws.Fsyncs
		st.WALSyncErrors = ws.SyncErrors
		st.WALSegments = ws.Segments
		st.WALAppendedBytes = ws.AppendedBytes
		st.WALLastLSN = ws.LastLSN
		st.WALReplayRecords = s.walReplayed
		st.WALReplaySeconds = s.metrics.walReplaySeconds.Load()
	}
	if s.cfg.PrimaryAddr != "" {
		lagRecords, lagSeconds := s.replicationLag()
		st.ReplicaOf = s.cfg.PrimaryAddr
		st.ReplicaAppliedLSN = s.appliedLSN.Load()
		st.ReplicaPrimaryLSN = s.primaryLSN.Load()
		st.ReplicaLagRecords = lagRecords
		st.ReplicaLagSeconds = lagSeconds
		st.Promoted = !s.replicaMode.Load()
	}
	writeJSON(w, http.StatusOK, st)
}

// handleSummary serves a tenant's merged summary image — the same
// bytes a site would push, so a downstream coordinator (or an offline
// tool) can pull instead of being pushed to. ?tenant= selects the
// namespace; unknown keys are 404, and a spilled tenant materializes.
func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	tn := s.readTenant(w, r)
	if tn == nil {
		return
	}
	s.mu.Lock()
	eng, err := s.ensureEngineLocked(tn)
	var img []byte
	if err == nil {
		img, err = eng.MarshalMerged()
	}
	s.mu.Unlock()
	if err != nil {
		s.httpError(w, statusForEngine(err), err)
		return
	}
	tn.touch()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(img)))
	w.Write(img)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		s.httpError(w, http.StatusServiceUnavailable, errors.New("shutting down"))
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, "ok\n")
}

// handleMetrics renders the Prometheus text exposition. Engine gauges
// are sampled under the driver lock (a drain barrier — scrape-rate
// traffic, not hot-path traffic).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var es engineStats
	s.mu.Lock()
	if n, err := s.def.eng.Count(); err == nil {
		es.count = n
	}
	if sp, err := s.def.eng.Space(); err == nil {
		es.space = sp
	}
	es.shards = s.def.eng.Shards()
	s.mu.Unlock()
	var ts tenantStats
	ts.total, ts.live = s.tenantCounts()
	ts.bytes = s.tenantBytes.Load()
	var ws *wal.Stats
	if wl := s.walRef(); wl != nil {
		snap := wl.Stats()
		ws = &snap
	}
	var rs replicationStats
	rs.appliedLSN = s.appliedLSN.Load()
	rs.primaryLSN = s.primaryLSN.Load()
	rs.lagRecords, rs.lagSeconds = s.replicationLag()
	// Health gauges are sampled here so write's signature stays put.
	s.metrics.healthState.Set(int64(s.health.state.Load()))
	s.metrics.degradedSeconds.Set(s.degradedSeconds())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, es, ts, ws, rs)
}
