package service

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/streamagg/correlated/internal/wal"
)

// Degraded-mode state machine. A corrd whose durability path breaks —
// the WAL goes sticky-broken, background fsyncs keep failing, snapshots
// keep failing — must not keep acknowledging writes it cannot make
// durable, and it must not die either: committed state is still intact
// and perfectly servable. So the server degrades instead: writes get
// 503 + Retry-After (AckDegraded on the stream, keeping the
// connection), while queries, stats, summaries, and replication
// shipping keep serving from committed state. A background probe (test
// append + fsync through wal.Probe, plus a snapshot when that was the
// broken class) retries every healthProbeInterval; the operator can
// force the same probe with POST /v1/recover. /readyz reports the
// machine's position for load balancers; /healthz stays pure liveness.
//
//	healthy ──(WAL broken | N consecutive wal/bg-fsync/snapshot errors)──▶ degraded
//	degraded ──(probe starts)──▶ recovering ──(probe ok)──▶ healthy
//	                                  └──(probe fails)──▶ degraded

// Health state machine positions, exposed as corrd_health_state.
const (
	healthHealthy    int32 = 0
	healthDegraded   int32 = 1
	healthRecovering int32 = 2
)

// healthFailThreshold is how many consecutive failures of one class
// (WAL commit-path errors, background fsync errors, snapshot errors)
// trip the degraded transition. A sticky-broken WAL degrades
// immediately regardless.
const healthFailThreshold = 3

// healthProbeInterval is the recovery loop's probe cadence — and
// therefore the Retry-After hint a degraded 503 carries.
const healthProbeInterval = 2 * time.Second

// health is the server's degraded-mode state machine. The state word is
// an atomic so the ingest hot path reads it without a lock; every
// transition happens under mu so reason, timing, and state move
// together.
type health struct {
	state atomic.Int32

	mu            sync.Mutex
	reason        string        // why we degraded; "" when healthy
	degradedSince time.Time     // zero when healthy
	degradedAccum time.Duration // closed degraded intervals

	walErrs    atomic.Int32 // consecutive commit-path WAL errors
	bgSyncErrs atomic.Int32 // consecutive background-fsync errors
	snapErrs   atomic.Int32 // consecutive snapshot failures
	snapBroken atomic.Bool  // snapshots were the broken class: recovery must prove one
}

func healthName(st int32) string {
	switch st {
	case healthDegraded:
		return "degraded"
	case healthRecovering:
		return "recovering"
	}
	return "healthy"
}

// healthDegraded reports whether writes are currently refused. It is
// the write path's single gate, so it must stay one atomic load.
func (s *Server) healthDegraded() bool {
	return s.health.state.Load() != healthHealthy
}

// degradedSeconds is the total time spent out of the healthy state,
// closed intervals plus the live one.
func (s *Server) degradedSeconds() float64 {
	h := &s.health
	h.mu.Lock()
	defer h.mu.Unlock()
	d := h.degradedAccum
	if !h.degradedSince.IsZero() {
		d += time.Since(h.degradedSince)
	}
	return d.Seconds()
}

// healthReason returns the live degrade reason ("" when healthy).
func (s *Server) healthReason() string {
	h := &s.health
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.reason
}

// degrade moves the machine to degraded (from any state) with the given
// reason. Idempotent while already degraded: the first reason wins, so
// operators see the original cause, not the latest symptom.
func (s *Server) degrade(reason string) {
	h := &s.health
	h.mu.Lock()
	prev := h.state.Load()
	if prev == healthHealthy {
		h.degradedSince = time.Now()
		h.reason = reason
	}
	h.state.Store(healthDegraded)
	h.mu.Unlock()
	if prev == healthHealthy {
		s.logf("health: healthy -> degraded (read-only): %s", reason)
	}
}

// noteWALError records a commit-path WAL failure (append or ack-path
// fsync). A sticky-broken log degrades immediately — every future
// append is doomed until the tail is repaired; other errors degrade
// after healthFailThreshold consecutive ones.
func (s *Server) noteWALError(err error) {
	if errors.Is(err, wal.ErrBroken) {
		s.degrade(fmt.Sprintf("wal broken: %v", err))
		return
	}
	if n := s.health.walErrs.Add(1); n >= healthFailThreshold {
		s.degrade(fmt.Sprintf("%d consecutive wal errors, last: %v", n, err))
	}
}

// noteWALOK resets the consecutive WAL error count on any successful
// commit.
func (s *Server) noteWALOK() {
	s.health.walErrs.Store(0)
}

// noteBgSyncError records a background (interval-policy) fsync failure,
// reported by the WAL's sync loop.
func (s *Server) noteBgSyncError(err error) {
	if n := s.health.bgSyncErrs.Add(1); n >= healthFailThreshold {
		s.degrade(fmt.Sprintf("%d consecutive background fsync errors, last: %v", n, err))
	}
}

// noteSnapshotResult tracks snapshot outcomes; repeated failures mean
// the durability floor (restore point) is rotting even if the WAL still
// works, so that too degrades the server.
func (s *Server) noteSnapshotResult(err error) {
	h := &s.health
	if err == nil {
		h.snapErrs.Store(0)
		return
	}
	if n := h.snapErrs.Add(1); n >= healthFailThreshold {
		h.snapBroken.Store(true)
		s.degrade(fmt.Sprintf("%d consecutive snapshot failures, last: %v", n, err))
	}
}

// recoverNow runs one synchronous recovery probe: repair-and-verify the
// WAL tail (append a probe record, fsync it), and — when snapshots were
// the broken class — prove a full snapshot write. On success the
// machine returns to healthy; on failure it falls back to degraded with
// the original reason intact. Safe to call concurrently (the admin
// endpoint racing the background loop): probes are idempotent.
func (s *Server) recoverNow() error {
	h := &s.health
	h.mu.Lock()
	if h.state.Load() == healthHealthy {
		h.mu.Unlock()
		return nil
	}
	reason := h.reason
	h.state.Store(healthRecovering)
	h.mu.Unlock()

	fail := func(err error) error {
		h.mu.Lock()
		// Only fall back if nothing else already resolved the episode.
		if h.state.Load() == healthRecovering {
			h.state.Store(healthDegraded)
		}
		h.mu.Unlock()
		s.logf("health: recovery probe failed (still degraded): %v", err)
		return err
	}

	if w := s.walRef(); w != nil {
		if err := w.Probe(); err != nil {
			return fail(fmt.Errorf("wal probe: %w", err))
		}
	}
	if h.snapBroken.Load() && s.cfg.SnapshotPath != "" {
		if err := s.Snapshot(); err != nil {
			return fail(fmt.Errorf("snapshot probe: %w", err))
		}
	}

	h.mu.Lock()
	if !h.degradedSince.IsZero() {
		h.degradedAccum += time.Since(h.degradedSince)
		h.degradedSince = time.Time{}
	}
	h.reason = ""
	h.state.Store(healthHealthy)
	h.mu.Unlock()
	h.walErrs.Store(0)
	h.bgSyncErrs.Store(0)
	h.snapErrs.Store(0)
	h.snapBroken.Store(false)
	s.logf("health: degraded -> healthy (recovered from: %s)", reason)
	return nil
}

// recoveryLoop probes a degraded server back to health every
// healthProbeInterval until shutdown.
func (s *Server) recoveryLoop() {
	defer s.wg.Done()
	t := time.NewTicker(healthProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			if s.health.state.Load() == healthDegraded {
				s.recoverNow() // logs its own outcome
			}
		}
	}
}

// errDegraded rejects writes while degraded. The message is
// wire-visible; the Go client's IsDegraded matches the 503 status plus
// the "degraded" text.
var errDegraded = errors.New("service degraded: durability path is failing, writes are suspended until recovery")

// handleReadyz is GET /readyz: readiness, as opposed to /healthz's pure
// liveness. A degraded or draining server answers 503 so a load
// balancer routes writes elsewhere while the process itself stays up
// (and /healthz green) serving reads.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.health.state.Load()
	if s.closing.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "state": "shutting-down"})
		return
	}
	if st != healthHealthy {
		w.Header().Set("Retry-After", retryAfterSeconds(healthProbeInterval))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready": false, "state": healthName(st), "reason": s.healthReason(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "state": "healthy"})
}

// handleRecover is POST /v1/recover: admin-forced recovery probe, for
// when the operator has fixed the disk and does not want to wait out
// the background loop. Gated exactly like /v1/promote: disabled
// outright without an admin token.
func (s *Server) handleRecover(w http.ResponseWriter, r *http.Request) {
	if s.cfg.AdminToken == "" {
		s.httpError(w, http.StatusForbidden, errors.New("recovery endpoint disabled: no admin token configured"))
		return
	}
	if subtle.ConstantTimeCompare([]byte(r.Header.Get("X-Admin-Token")), []byte(s.cfg.AdminToken)) != 1 {
		s.httpError(w, http.StatusForbidden, errors.New("bad admin token"))
		return
	}
	if err := s.recoverNow(); err != nil {
		s.httpError(w, http.StatusServiceUnavailable, fmt.Errorf("recovery probe failed: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"state": healthName(s.health.state.Load())})
}

// retryAfterSeconds renders a duration as a whole-second Retry-After
// header value, at least 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}
