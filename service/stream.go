package service

import (
	"bufio"
	"errors"
	"io"
	"net"
	"time"

	"github.com/streamagg/correlated/internal/tupleio"
	"github.com/streamagg/correlated/internal/wal"
)

// Streaming ingest: the wire-speed alternative to POST /v1/ingest. A
// client opens one TCP connection to the -stream-addr listener, sends a
// fixed-size hello, and then pumps length-framed counted tuple batches
// back-to-back; the server decodes each frame straight into the same
// pooled decodeState buffers the HTTP handlers recycle, enqueues the
// batch on the commit pipeline (pipeline.go — the identical group
// commit, WAL record, and fsync the HTTP path rides), and returns
// fixed-size acks (client seq, group LSN, status) asynchronously on the
// same connection. The client pipelines frames ahead of the acks, so
// the per-batch cost collapses to frame decode + its share of the group
// commit: no HTTP parse, no response encode, no request round trip.
//
// Per connection there are two goroutines. The reader owns the receive
// side: hello, then a frame loop that reads into a pooled decodeState,
// decodes, enqueues, and hands the state to the acker through a bounded
// in-flight channel (the bound is the connection's pipelining window —
// when the committer falls behind, the reader blocks and TCP pushes the
// backpressure to the client). The acker owns the send side: it waits
// for each job's commit in FIFO order — the commit pipeline preserves
// enqueue order, so a frame's ack can never overtake an earlier
// frame's — writes the ack, and recycles the decodeState into the
// shared pool. Steady state allocates nothing per frame: the header
// scratch lives in the FrameReader, payload and tuple buffers round-
// trip through the pool, and acks are written from a fixed buffer.
//
// Durability semantics are exactly the HTTP path's: an AckOK frame is
// applied and, with -wal-fsync=always, durable behind the group fsync
// its LSN names — streamed batches ride the same group-commit WAL
// records, so kill -9 recovery stays byte-exact with stream and HTTP
// ingest interleaved. Delivery is at-least-once across reconnects: a
// client that dies before reading an ack cannot know whether the frame
// committed, and re-sending it duplicates the batch (same window the
// HTTP client's retry documentation describes).

// streamInflight bounds how many frames one connection may have in the
// commit pipeline ahead of their acks. It is the server-side pipelining
// window: large enough to keep the committer fed across the fsync gap,
// small enough that one connection cannot queue unbounded memory.
const streamInflight = 256

// streamHelloTimeout bounds how long an accepted connection may dawdle
// before its hello: a connect-and-hold client ties up two goroutines
// otherwise.
const streamHelloTimeout = 10 * time.Second

// ServeStream accepts streaming-ingest connections on ln until the
// listener closes or the server shuts down. Run it on its own goroutine
// per listener; Close closes registered listeners and drains live
// connections (queued frames are committed and acked, not dropped).
func (s *Server) ServeStream(ln net.Listener) error {
	if !s.registerStreamListener(ln) {
		ln.Close()
		return errShuttingDown
	}
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.closing.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !s.registerStreamConn(c) {
			c.Close()
			return nil
		}
		go s.serveStreamConn(c)
	}
}

// registerStreamListener records ln for Close; it refuses when the
// server is already draining.
func (s *Server) registerStreamListener(ln net.Listener) bool {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if s.closing.Load() {
		return false
	}
	s.streamLns = append(s.streamLns, ln)
	return true
}

// registerStreamConn tracks a live connection and joins the server's
// WaitGroup on its behalf; the closing check under streamMu pairs with
// closeStreams so a conn accepted during shutdown is never orphaned
// after wg.Wait has been passed.
func (s *Server) registerStreamConn(c net.Conn) bool {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if s.closing.Load() {
		return false
	}
	if s.streamConns == nil {
		s.streamConns = make(map[net.Conn]struct{})
	}
	s.streamConns[c] = struct{}{}
	s.wg.Add(1)
	s.metrics.streamConns.Add(1)
	s.metrics.streamConnsTotal.Inc()
	return true
}

func (s *Server) unregisterStreamConn(c net.Conn) {
	s.streamMu.Lock()
	delete(s.streamConns, c)
	s.streamMu.Unlock()
	s.metrics.streamConns.Add(-1)
}

// closeStreams stops the streaming transport for shutdown: close the
// listeners (no new connections) and expire every live connection's
// read so its reader goroutine unblocks and begins the drain — acks for
// frames already in the pipeline still go out before the conn closes.
func (s *Server) closeStreams() {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	for _, ln := range s.streamLns {
		ln.Close()
	}
	for c := range s.streamConns {
		c.SetReadDeadline(time.Now())
	}
}

// streamMaxFrame is the per-frame payload cap the server enforces (and
// advertises in its hello reply) — the same body cap as the HTTP path,
// bounded to what a uint32 frame length can carry.
func (s *Server) streamMaxFrame() uint32 {
	maxFrame := s.cfg.MaxBodyBytes
	if maxFrame > 1<<30 {
		maxFrame = 1 << 30
	}
	return uint32(maxFrame)
}

// serveStreamConn runs one connection's reader side and spawns its
// acker. It exits when the client closes its write half (the graceful
// end), the connection breaks, the server drains, or the client
// desynchronizes — and in every case the acker first finishes writing
// the acks for frames already handed to the pipeline.
func (s *Server) serveStreamConn(c net.Conn) {
	defer s.wg.Done()
	defer s.unregisterStreamConn(c)
	defer c.Close()

	c.SetReadDeadline(time.Now().Add(streamHelloTimeout))
	var hello [tupleio.HelloSize]byte
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		s.metrics.streamFrameErrors.Inc()
		return
	}
	version, format, err := tupleio.ParseHello(hello[:])
	status := tupleio.HelloOK
	replWAL := (*wal.WAL)(nil)
	switch {
	case err != nil:
		s.metrics.streamFrameErrors.Inc()
		return // not even our protocol; reply with nothing
	case version != tupleio.StreamVersion:
		status = tupleio.HelloBadVersion
	case format == tupleio.StreamFormatReplica:
		// A replication follower: it needs a log to follow. A replica
		// being asked to replicate has none (until promoted), and
		// neither does a WAL-less primary.
		if replWAL = s.walRef(); replWAL == nil {
			status = tupleio.HelloNoWAL
		}
	case format != tupleio.StreamFormatCounted && format != tupleio.StreamFormatKeyed:
		status = tupleio.HelloBadFormat
	}
	keyed := format == tupleio.StreamFormatKeyed
	maxFrame := s.streamMaxFrame()
	if format == tupleio.StreamFormatReplica {
		// Snapshot re-seed frames carry a whole state image, so the
		// replication cap is the WAL's record bound, not the body cap.
		maxFrame = replicaMaxFrame
	}
	reply := tupleio.AppendHelloReply(nil, status, maxFrame)
	if _, err := c.Write(reply); err != nil || status != tupleio.HelloOK {
		if status != tupleio.HelloOK {
			s.metrics.streamFrameErrors.Inc()
		}
		return
	}
	if format == tupleio.StreamFormatReplica {
		s.serveReplicaConn(c, replWAL)
		return
	}
	c.SetReadDeadline(time.Time{})

	// One request ID per connection, minted at the handshake: every
	// frame's access-log line carries it (plus the frame seq), so an
	// operator can stitch a connection's whole life back together.
	connID := newRequestID()
	s.logf("stream: conn %s open from %s (keyed=%t)", connID, c.RemoteAddr(), keyed)

	// The in-flight queue is the reader→acker handoff: decodeStates
	// whose jobs are queued (or already failed) travel through it in
	// frame order. ackerDone lets the reader wait for the final ack
	// flush before closing the conn (via the deferred Close above).
	inflight := make(chan *decodeState, streamInflight)
	ackerDone := make(chan struct{})
	go s.streamAcker(c, connID, inflight, ackerDone)

	fr := tupleio.NewFrameReader(bufio.NewReaderSize(c, 64<<10), s.streamMaxFrame())
	var expect uint64 // last seq accepted; frames must arrive as expect+1
	for {
		d := s.dec.Get().(*decodeState)
		seq, payload, err := fr.Next(d.body[:cap(d.body)])
		d.body = payload
		if err != nil {
			// io.EOF between frames is the client's half-close — the
			// graceful end. Everything else (truncation, hostile
			// length, read timeout from closeStreams, broken conn)
			// just stops the read side; the acker still drains.
			if !errors.Is(err, io.EOF) {
				s.metrics.streamFrameErrors.Inc()
			}
			s.putDecodeState(d)
			break
		}
		if seq != expect+1 {
			// A gap means the sender and our acks have desynchronized;
			// nothing later on this conn can be trusted or acked
			// truthfully, so drop the conn and let the client redial.
			s.metrics.streamFrameErrors.Inc()
			s.putDecodeState(d)
			break
		}
		expect = seq
		d.streamSeq = seq
		if s.replicaMode.Load() {
			// Read-only replica: nack every ingest frame with the typed
			// status and keep the connection — a client that promotes
			// this node mid-stream can keep the conn and resume. Stage
			// stamps by hand: the job never enters the pipeline.
			d.job.err, d.job.kind, d.job.lsn = errReadOnlyReplica, ingestErrReadOnly, 0
			d.job.enqueuedAt = time.Now()
			d.job.wakeAt = d.job.enqueuedAt
			d.job.done <- struct{}{}
			inflight <- d
			continue
		}
		if s.healthDegraded() {
			// Degraded mode: nack with the typed status and keep the
			// connection — the client's typed error (IsDegraded) tells it
			// to back off, and the same conn resumes after recovery.
			s.metrics.degradedRejects.Inc()
			d.job.err, d.job.kind, d.job.lsn = errDegraded, ingestErrDegraded, 0
			d.job.enqueuedAt = time.Now()
			d.job.wakeAt = d.job.enqueuedAt
			d.job.done <- struct{}{}
			inflight <- d
			continue
		}
		var tn *tenant
		if keyed {
			// Keyed frame: tenant prefix, then the counted batch. The
			// decoded key aliases d.body, which stays untouched until the
			// commit — and the registry lookup indexes by the bytes
			// without allocating; only an actual tenant creation copies.
			var name []byte
			name, d.tuples, err = tupleio.DecodeKeyed(d.tuples, d.body)
			if err == nil {
				tn, err = s.getOrCreateTenant(name, false)
				if err != nil && !errors.Is(err, tupleio.ErrBadStream) {
					// A governance cap refused the tenant: nack with the
					// typed status and keep the connection — frames for
					// existing tenants keep committing. The stage stamps
					// are set by hand: the job never enters the pipeline.
					s.metrics.streamFrameErrors.Inc()
					d.job.err, d.job.kind, d.job.lsn = err, ingestErrTenant, 0
					d.job.enqueuedAt = time.Now()
					d.job.wakeAt = d.job.enqueuedAt
					d.job.done <- struct{}{}
					inflight <- d
					continue
				}
			}
		} else {
			d.tuples, err = tupleio.DecodeCounted(d.tuples, d.body)
		}
		if err != nil {
			// Framing is intact — only this payload is bad. Nack it
			// and keep the connection: the sender's other frames are
			// independent batches. Stage stamps by hand: the job never
			// enters the pipeline.
			s.metrics.streamFrameErrors.Inc()
			d.job.err, d.job.kind, d.job.lsn = err, ingestErrValidate, 0
			d.job.enqueuedAt = time.Now()
			d.job.wakeAt = d.job.enqueuedAt
			d.job.done <- struct{}{}
			inflight <- d
			continue
		}
		d.job.tuples, d.job.err, d.job.kind, d.job.lsn = d.tuples, nil, ingestOK, 0
		d.job.tn = tn
		if err := s.enqueueIngest(&d.job); err != nil {
			// enqueueIngest already stamped enqueuedAt before refusing.
			if errors.Is(err, errOverloaded) {
				// Shed: nack AckBusy and keep the connection — the queue
				// bound is transient backpressure, not a conn problem.
				d.job.err, d.job.kind = err, ingestErrBusy
				d.job.wakeAt = time.Now()
				d.job.done <- struct{}{}
				inflight <- d
				continue
			}
			d.job.err, d.job.kind = err, ingestErrShutdown
			d.job.wakeAt = time.Now()
			d.job.done <- struct{}{}
			inflight <- d
			break
		}
		inflight <- d
	}
	close(inflight)
	<-ackerDone
}

// streamAcker writes one ack per in-flight frame, in order, waiting for
// each job's commit first, then recycles the decodeState. It flushes
// whenever the queue momentarily empties (latency) instead of per ack
// (throughput), and once the reader closes the queue it flushes the
// tail and exits.
func (s *Server) streamAcker(c net.Conn, connID string, inflight <-chan *decodeState, done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriterSize(c, 16<<10)
	var buf [tupleio.AckSize]byte
	for d := range inflight {
		<-d.job.done
		s.metrics.stages[stageAck].Observe(time.Since(d.job.wakeAt).Seconds())
		status := tupleio.AckOK
		switch d.job.kind {
		case ingestErrValidate:
			status = tupleio.AckInvalid
		case ingestErrEngine:
			status = tupleio.AckEngine
		case ingestErrWAL:
			status = tupleio.AckWAL
		case ingestErrShutdown:
			status = tupleio.AckShutdown
		case ingestErrTenant:
			status = tupleio.AckTenant
		case ingestErrReadOnly:
			status = tupleio.AckReadOnly
		case ingestErrDegraded:
			status = tupleio.AckDegraded
		case ingestErrBusy:
			status = tupleio.AckBusy
		default:
			s.metrics.streamFrames.Inc()
			s.metrics.streamTuples.Add(uint64(len(d.job.tuples)))
			if d.job.tn != nil {
				d.job.tn.tuplesIngested.Add(uint64(len(d.job.tuples)))
			}
		}
		if s.access != nil {
			var tname string
			if d.job.tn != nil {
				tname = d.job.tn.name
			}
			s.access.record(accessRecord{
				ts:        d.job.enqueuedAt,
				transport: "stream",
				method:    "FRAME",
				path:      "/stream",
				tenant:    tname,
				requestID: connID,
				status:    int(status),
				bytesIn:   int64(len(d.body)),
				dur:       time.Since(d.job.enqueuedAt),
				seq:       d.streamSeq,
			})
		}
		ack := tupleio.AppendAck(buf[:0], d.streamSeq, d.job.lsn, status)
		_, werr := bw.Write(ack)
		s.putDecodeState(d)
		if werr != nil {
			// The conn is gone; keep draining so every queued job is
			// waited on and recycled, but stop writing.
			for d := range inflight {
				<-d.job.done
				s.putDecodeState(d)
			}
			return
		}
		if len(inflight) == 0 {
			if err := bw.Flush(); err != nil {
				for d := range inflight {
					<-d.job.done
					s.putDecodeState(d)
				}
				return
			}
		}
	}
	bw.Flush()
}
