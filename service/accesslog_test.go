package service

import (
	"bytes"
	"context"
	"encoding/json"
	"log"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer for test log sinks.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestAccessLogRecordZeroAlloc pins the record path at zero allocations
// per call — the property that keeps access logging off the serving
// path's allocation budget. The accessLog is built without its writer
// goroutine (AllocsPerRun measures process-wide allocations, so a
// concurrent drain would pollute the count); with nothing draining, the
// runs exercise both the enqueue path and the ring-full drop path.
func TestAccessLogRecordZeroAlloc(t *testing.T) {
	var dropped counter
	l := &accessLog{
		ring:    make([]accessRecord, 64),
		notify:  make(chan struct{}, 1),
		dropped: &dropped,
	}
	r := accessRecord{
		ts:        time.Now(),
		transport: "http",
		method:    "POST",
		path:      "/v1/ingest",
		tenant:    "t001",
		requestID: "abc-1",
		status:    200,
		bytesIn:   4096,
		bytesOut:  64,
		dur:       3 * time.Millisecond,
	}
	if allocs := testing.AllocsPerRun(1000, func() { l.record(r) }); allocs != 0 {
		t.Fatalf("record allocates %v per call, want 0", allocs)
	}
	if dropped.Load() == 0 {
		t.Fatal("1000+ records into a 64-slot undrained ring should have dropped some")
	}
}

// TestAccessLogOverflowAndOutput: records survive the ring and come out
// the writer as parseable JSON lines, overflow past the capacity is
// dropped and counted rather than blocking, and Close flushes the tail.
func TestAccessLogOverflowAndOutput(t *testing.T) {
	var out syncBuffer
	var dropped counter
	l := newAccessLog(&out, 8, &dropped)
	rec := accessRecord{
		ts:        time.Unix(1700000000, 0).UTC(),
		transport: "http",
		method:    "GET",
		path:      `/v1/query?weird="quoted"`,
		requestID: "rid-7",
		status:    400,
		bytesIn:   -1,
		bytesOut:  12,
		dur:       1500 * time.Microsecond,
		seq:       0,
	}
	for i := 0; i < 200; i++ {
		l.record(rec)
	}
	l.Close() // final drain: everything not dropped is written

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	written := len(lines)
	if written == 0 || lines[0] == "" {
		t.Fatalf("no access-log output; dropped=%d", dropped.Load())
	}
	if uint64(written)+dropped.Load() != 200 {
		t.Fatalf("written %d + dropped %d != 200 records", written, dropped.Load())
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("unparseable access-log line %q: %v", line, err)
		}
		if m["path"] != rec.path {
			t.Fatalf("path = %v, want %q (escaping broken)", m["path"], rec.path)
		}
		if m["status"] != float64(400) || m["method"] != "GET" || m["request_id"] != "rid-7" {
			t.Fatalf("bad record fields in %q", line)
		}
		if _, hasSeq := m["seq"]; hasSeq {
			t.Fatalf("seq rendered for an HTTP record: %q", line)
		}
	}
}

// TestHTTPAccessLogRequestID drives the full middleware: a supplied
// X-Request-ID is echoed on the response and lands in the access log's
// JSON line; a request without one gets a minted ID; and a
// SlowRequest threshold of 1ns promotes every request to the main
// logger.
func TestHTTPAccessLogRequestID(t *testing.T) {
	var access syncBuffer
	var mainLog syncBuffer
	_, ts, cl := newTestServer(t, Config{
		Options:     testOptions(),
		AccessLog:   &access,
		SlowRequest: time.Nanosecond,
		Logger:      log.New(&mainLog, "", 0),
	})
	if err := cl.AddBatch(context.Background(), testStream(100, 9)); err != nil {
		t.Fatal(err)
	}

	const rid = "smoke-rid-42"
	req, err := http.NewRequest("GET", ts.URL+"/v1/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != rid {
		t.Fatalf("echoed X-Request-ID = %q, want %q", got, rid)
	}

	resp2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got == "" {
		t.Fatal("no minted X-Request-ID on a request that supplied none")
	}

	// The writer drains asynchronously; poll for the supplied ID.
	deadline := time.Now().Add(5 * time.Second)
	var line string
	for line == "" {
		for _, l := range strings.Split(access.String(), "\n") {
			if strings.Contains(l, rid) {
				line = l
				break
			}
		}
		if line == "" {
			if time.Now().After(deadline) {
				t.Fatalf("request ID %q never reached the access log:\n%s", rid, access.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("unparseable access-log line %q: %v", line, err)
	}
	if m["method"] != "GET" || m["path"] != "/v1/stats" || m["transport"] != "http" || m["status"] != float64(200) {
		t.Fatalf("bad access record %q", line)
	}
	if !strings.Contains(mainLog.String(), "slow request:") {
		t.Fatalf("SlowRequest=1ns promoted nothing to the main logger:\n%s", mainLog.String())
	}
}
