package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/streamagg/correlated/internal/tupleio"
)

// Multi-tenant namespaces: one corrd daemon serves N independent keyed
// summaries — the ROADMAP's "millions of users" model, where every
// user/flow/metric keys its own correlated-aggregate state. A tenant
// key rides the request surface (?tenant= on the HTTP endpoints, the
// keyed stream frame format) and the durability surface (keyed WAL
// records, the multi-tenant snapshot framing); the empty key is the
// default tenant, which is what every legacy request, WAL record, and
// snapshot file addresses — single-tenant deployments never see a
// change, on the wire or on disk.
//
// Sharing, not duplication: all tenants ride one commit pipeline (one
// group commit, one WAL, one fsync covers batches for many tenants),
// one decode pool, and a cross-tenant free list of reset engines — a
// spilled or failed tenant's engine parks with its warm per-maker
// sketch pools intact and the next tenant creation reuses it, so the
// per-tenant setup cost amortizes the same way the per-request fsync
// does. Every tenant engine is driven under the same single driver
// lock (s.mu): the committer is one goroutine regardless of tenant
// count, so per-tenant locks would buy parallelism nothing and cost a
// lock-order minefield.
//
// Governance: MaxTenants caps the namespace count (HTTP 429 past it),
// MaxTenantBytes caps the summed per-tenant footprint (HTTP 413) —
// sampled at commit and spill time, so enforcement is approximate by
// one group. TenantIdleSpill reclaims idle tenants' memory: the engine
// is marshaled into an in-memory image (its snapshot form — cursors
// included, so restore is bit-identical), the engine parks on the free
// list, and the next touch lazily materializes the same bytes back.
// Spill is pure memory reclamation, never durability: the snapshot and
// the WAL remain the only recovery sources, and snapshots embed a
// spilled tenant's image verbatim (consistent by construction — a
// spilled tenant is untouched since its spill).

// Tenant governance rejections, surfaced as typed HTTP statuses
// (429 and 413 respectively).
var (
	// ErrTenantLimit rejects creating a tenant past Config.MaxTenants.
	ErrTenantLimit = errors.New("service: tenant limit reached")
	// ErrTenantMemory rejects creating a tenant past Config.MaxTenantBytes.
	ErrTenantMemory = errors.New("service: tenant memory cap reached")
)

// engineFreeListCap bounds the cross-tenant free list of reset engines.
// A parked engine keeps its worker goroutines and warm sketch pools, so
// the cap trades reuse against idle goroutines; beyond it engines close.
const engineFreeListCap = 16

// tenant is one keyed namespace: an independent engine plus the
// per-tenant serving state (epoch, query cache, stats) that a
// single-tenant server kept on itself.
type tenant struct {
	name string

	// eng is the live engine; nil while the tenant is spilled, in which
	// case pending holds the marshaled image the next touch restores.
	// Both fields are guarded by the server's driver lock (s.mu), like
	// every engine mutation.
	eng     Engine
	pending []byte

	// epoch counts this tenant's state changes (bumped under s.mu); the
	// query path caches the merged summary keyed by it. queryMu
	// serializes this tenant's cache rebuilds and cached reads — and
	// orders before s.mu, which is why spill takes it first.
	epoch      atomic.Uint64
	queryMu    sync.Mutex
	cacheEpoch uint64    // under queryMu
	cacheValid bool      // under queryMu
	cacheBuilt time.Time // under queryMu; for the QueryMaxStale window
	cacheEng   Engine    // under queryMu: the engine the cache was built on;
	// the cached read path uses it instead of eng so it never races a
	// restore writing eng under s.mu (spill nils it under this queryMu)

	// inGroup marks the tenant as touched by the commit group being
	// built (under s.mu): the committer's first-touch dedup, so each
	// group flushes and epoch-bumps every touched tenant exactly once.
	inGroup bool

	lastTouch atomic.Int64 // unix nanos of the last ingest/push/query
	space     atomic.Int64 // footprint sample: Space at last commit, image length while spilled

	// Per-tenant counters for /v1/stats?tenant=.
	tuplesIngested atomic.Uint64
	pushesMerged   atomic.Uint64
	queries        atomic.Uint64
	spills         atomic.Uint64
	restores       atomic.Uint64
}

func (t *tenant) touch() { t.lastTouch.Store(time.Now().UnixNano()) }

// spilled reports whether the tenant currently lives as a marshaled
// image. Callers hold s.mu.
func (t *tenant) spilledLocked() bool { return t.eng == nil }

// lookupTenant returns the live registry entry for a wire-decoded key,
// or nil. The string conversion in the map index does not allocate.
func (s *Server) lookupTenant(name []byte) *tenant {
	s.regMu.RLock()
	t := s.tenants[string(name)]
	s.regMu.RUnlock()
	return t
}

// tenantByName is lookupTenant for keys already held as strings
// (HTTP query parameters).
func (s *Server) tenantByName(name string) *tenant {
	s.regMu.RLock()
	t := s.tenants[name]
	s.regMu.RUnlock()
	return t
}

// tenantList snapshots the registry (unordered).
func (s *Server) tenantList() []*tenant {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	out := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	return out
}

// getOrCreateTenant resolves name, creating the tenant when it does not
// exist yet — ingest and push are the creation surface; queries never
// create. Creation validates the key and enforces the governance caps
// unless replay is set: WAL replay and snapshot restore re-create
// whatever existed at the crash, because acknowledged data outranks a
// cap that may have been lowered since.
func (s *Server) getOrCreateTenant(name []byte, replay bool) (*tenant, error) {
	if t := s.lookupTenant(name); t != nil {
		return t, nil
	}
	if err := tupleio.ValidateTenant(name); err != nil {
		return nil, err
	}
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if t := s.tenants[string(name)]; t != nil {
		return t, nil // lost the creation race; the winner's entry serves
	}
	if !replay {
		if s.cfg.MaxTenants > 0 && len(s.tenants) >= s.cfg.MaxTenants {
			s.metrics.tenantRejectedLimit.Inc()
			return nil, fmt.Errorf("%w: %d tenants, cap is %d", ErrTenantLimit, len(s.tenants), s.cfg.MaxTenants)
		}
		if s.cfg.MaxTenantBytes > 0 && s.tenantBytes.Load() >= s.cfg.MaxTenantBytes {
			s.metrics.tenantRejectedMemory.Inc()
			return nil, fmt.Errorf("%w: ~%d bytes across %d tenants, cap is %d",
				ErrTenantMemory, s.tenantBytes.Load(), len(s.tenants), s.cfg.MaxTenantBytes)
		}
	}
	eng, err := s.takeEngineLocked()
	if err != nil {
		return nil, err
	}
	t := &tenant{name: string(name), eng: eng}
	t.touch()
	s.tenants[t.name] = t
	s.metrics.tenantsCreated.Inc()
	return t, nil
}

// addRestoredTenant registers a tenant straight from a snapshot image,
// leaving it spilled: the engine materializes lazily on first touch, so
// a daemon restoring ten thousand tenants pays engine construction only
// for the ones traffic actually reaches. Startup-only (single-threaded).
func (s *Server) addRestoredTenant(name string, image []byte) *tenant {
	t := &tenant{name: name, pending: image}
	t.space.Store(int64(len(image)))
	t.touch()
	s.tenants[name] = t
	return t
}

// ensureEngineLocked materializes a spilled tenant's engine from its
// pending image (a free-list engine when one is parked, a fresh one
// otherwise). Callers hold s.mu — engine state only ever changes under
// the driver lock.
func (s *Server) ensureEngineLocked(t *tenant) (Engine, error) {
	if t.eng != nil {
		return t.eng, nil
	}
	eng, err := s.takeEngine()
	if err != nil {
		return nil, err
	}
	if len(t.pending) > 0 {
		if err := eng.UnmarshalBinary(t.pending); err != nil {
			s.parkEngine(eng)
			return nil, fmt.Errorf("service: tenant %q restore: %w", t.name, err)
		}
	}
	t.eng = eng
	t.pending = nil
	t.restores.Add(1)
	s.metrics.tenantsRestored.Inc()
	return eng, nil
}

// takeEngine pops a parked engine or builds a fresh one.
func (s *Server) takeEngine() (Engine, error) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	return s.takeEngineLocked()
}

// takeEngineLocked is takeEngine under an already-held regMu.
func (s *Server) takeEngineLocked() (Engine, error) {
	if n := len(s.engFree); n > 0 {
		e := s.engFree[n-1]
		s.engFree[n-1] = nil
		s.engFree = s.engFree[:n-1]
		s.metrics.tenantEnginesReused.Inc()
		return e, nil
	}
	return newEngine(&s.cfg)
}

// parkEngine resets e and returns it to the cross-tenant free list —
// worker goroutines stay up and the per-maker sketch free lists stay
// warm for the next tenant. A full list (or a failed reset) closes the
// engine instead.
func (s *Server) parkEngine(e Engine) {
	if err := e.Reset(); err != nil {
		e.Close()
		return
	}
	s.regMu.Lock()
	if len(s.engFree) < engineFreeListCap {
		s.engFree = append(s.engFree, e)
		s.regMu.Unlock()
		return
	}
	s.regMu.Unlock()
	e.Close()
}

// spillTenant marshals an idle tenant into its in-memory image and
// parks the engine. Lock order is the query path's (queryMu before
// s.mu), so a query can never observe a half-spilled tenant: the cache
// invalidation below happens under the same queryMu the cached read
// path holds. The default tenant never spills — its engine doubles as
// Engine() and the site role's push source.
func (s *Server) spillTenant(t *tenant) bool {
	if t == s.def {
		return false
	}
	t.queryMu.Lock()
	defer t.queryMu.Unlock()
	s.mu.Lock()
	eng := t.eng
	if eng == nil {
		s.mu.Unlock()
		return false
	}
	img, err := eng.MarshalBinary()
	if err != nil {
		s.mu.Unlock()
		s.logf("tenant %q spill: %v", t.name, err)
		return false
	}
	t.pending = img
	t.eng = nil
	t.cacheValid = false
	t.cacheEng = nil
	t.space.Store(int64(len(img)))
	s.mu.Unlock()
	s.parkEngine(eng)
	t.spills.Add(1)
	s.metrics.tenantsSpilled.Inc()
	return true
}

// spillIdle spills every non-default tenant untouched for at least age
// and refreshes the footprint gauge; it returns how many spilled.
func (s *Server) spillIdle(age time.Duration) int {
	cutoff := time.Now().Add(-age).UnixNano()
	spilled := 0
	for _, t := range s.tenantList() {
		if t == s.def || t.lastTouch.Load() > cutoff {
			continue
		}
		if s.spillTenant(t) {
			spilled++
		}
	}
	s.recomputeFootprint()
	return spilled
}

// spillLoop runs the idle scan on a ticker until Close.
func (s *Server) spillLoop(interval time.Duration) {
	defer s.wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.spillIdle(interval)
		case <-s.done:
			return
		}
	}
}

// recomputeFootprint refreshes the governance gauge from the per-tenant
// samples (engine Space at the last commit; image length while
// spilled). Enforcement against MaxTenantBytes reads this gauge, so it
// lags live state by at most one commit group or spill scan.
func (s *Server) recomputeFootprint() int64 {
	var total int64
	for _, t := range s.tenantList() {
		total += t.space.Load()
	}
	s.tenantBytes.Store(total)
	s.metrics.tenantBytes.Set(total)
	return total
}

// tenantCounts summarizes the registry for /metrics and /v1/stats.
func (s *Server) tenantCounts() (total, live int) {
	s.regMu.RLock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.regMu.RUnlock()
	s.mu.Lock()
	for _, t := range tenants {
		if !t.spilledLocked() {
			live++
		}
	}
	s.mu.Unlock()
	return len(tenants), live
}
