package service

import (
	"encoding/binary"
	"errors"
	"sync"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/tupleio"
	"github.com/streamagg/correlated/internal/wal"
)

// Group commit: the serving core's answer to "every acknowledged ingest
// pays its own fsync and its own engine drain". Ingest handlers no
// longer touch the engine; they decode, enqueue an ingestJob, and block
// until the committer — a single goroutine owning the ingest side of the
// driver lock — has committed the group their job rode in. The committer
// drains everything queued (up to the group caps), applies the member
// batches in queue order under one critical section, drains the engine
// once, appends one WAL record for the whole group (one fsync under
// -wal-fsync=always), and only then wakes the waiters with their
// outcomes. Under K concurrent clients the fsync and drain cost is paid
// once per group instead of once per request — the queue refills while
// the previous group is fsyncing, so the pipeline stays full without any
// timer or artificial batching delay; a lone client degenerates to
// groups of one and keeps its old latency.
//
// Crash-exactness is preserved because the group boundary itself is
// durable: the group's single WAL record (RecordIngestGroup, or a plain
// RecordIngest for a group of one) carries the member batches in commit
// order, and replay re-applies them and then flushes once — the same
// worker batch boundaries as the live run, which is what keeps recovered
// state byte-identical (see wal.go).

// errShuttingDown rejects ingest that arrives after Close began.
var errShuttingDown = errors.New("service: shutting down")

// errOverloaded sheds ingest when the commit queue is at its configured
// bound. The message is wire-visible; the Go client's IsBusy matches
// the 429 status plus the "overload" text.
var errOverloaded = errors.New("service: ingest queue overloaded; back off and retry")

// ingestErrKind classifies a committed job's outcome for HTTP mapping.
type ingestErrKind uint8

const (
	ingestOK          ingestErrKind = iota
	ingestErrValidate               // AddBatch rejected the member (client's error)
	ingestErrEngine                 // the group flush surfaced an engine error
	ingestErrWAL                    // the group's WAL append failed (not durable)
	ingestErrShutdown               // the server is draining; never committed (stream acks only)
	ingestErrTenant                 // a governance cap refused the tenant (stream acks only)
	ingestErrReadOnly               // the server is a replica; writes go to the primary (stream acks only)
	ingestErrDegraded               // degraded mode: durability broken, writes suspended (stream acks only)
	ingestErrBusy                   // commit queue at its bound; the job was shed (stream acks only)
)

// ingestJob is one ingest request in flight through the commit
// pipeline. The done channel (capacity 1, reused across requests via the
// decodeState pool) carries the happens-before edge from the committer's
// writes of err/kind/lsn to the handler's reads. lsn is the WAL LSN of
// the group record the job's batch rode in (0 without a WAL) — what a
// stream ack reports back to the client. tn is the tenant the batch
// addresses; nil means the default tenant.
type ingestJob struct {
	tuples []correlated.Tuple
	tn     *tenant
	err    error
	kind   ingestErrKind
	lsn    uint64
	done   chan struct{}

	// Stage-tracing stamps (trace.go): plain field writes on the pooled
	// struct, overwritten every flight. enqueuedAt opens the "enqueue"
	// stage; wakeAt is set just before the done send so the waiter's
	// resume closes the "ack" stage.
	enqueuedAt time.Time
	wakeAt     time.Time
}

// commitPipeline is the queue between ingest handlers and the committer.
type commitPipeline struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*ingestJob
	closed bool
}

// maxGroupTuples caps the tuple volume of one commit group so a group's
// WAL record stays far below wal.MaxPayload and the critical section
// stays short; the member that crosses the cap waits for the next group.
const maxGroupTuples = 1 << 20

// defaultGroupMax is the member-count cap per group when
// Config.IngestGroupMax is unset.
const defaultGroupMax = 256

// enqueueIngest hands a job to the committer; it fails when the server
// is shutting down or (with IngestQueueMax set) when the queue is at
// its bound — overload is decided here, at admission, so a shed request
// costs no engine or WAL work. The handler then blocks on j.done.
func (s *Server) enqueueIngest(j *ingestJob) error {
	j.enqueuedAt = time.Now()
	p := &s.pipe
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errShuttingDown
	}
	if max := s.cfg.IngestQueueMax; max > 0 && len(p.queue) >= max {
		p.mu.Unlock()
		s.metrics.ingestShed.Inc()
		return errOverloaded
	}
	p.queue = append(p.queue, j)
	s.metrics.queueDepth.Set(int64(len(p.queue)))
	if len(p.queue) == 1 {
		p.cond.Signal()
	}
	p.mu.Unlock()
	return nil
}

// closePipeline stops accepting new ingest and wakes the committer so it
// drains what is already queued (the engine is still open: queued
// requests are committed and acknowledged, not dropped) and exits.
func (s *Server) closePipeline() {
	p := &s.pipe
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// committer is the single goroutine that owns ingest: take everything
// queued (bounded by the group caps), commit it as one group, repeat.
func (s *Server) committer() {
	defer s.wg.Done()
	p := &s.pipe
	var group []*ingestJob
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return // closed and drained
		}
		n := len(p.queue)
		if n > s.groupMax {
			n = s.groupMax
		}
		take, total := 0, 0
		for ; take < n; take++ {
			total += len(p.queue[take].tuples)
			if take > 0 && total > maxGroupTuples {
				break
			}
		}
		group = append(group[:0], p.queue[:take]...)
		rest := copy(p.queue, p.queue[take:])
		for i := rest; i < len(p.queue); i++ {
			p.queue[i] = nil
		}
		p.queue = p.queue[:rest]
		s.metrics.queueDepth.Set(int64(len(p.queue)))
		p.mu.Unlock()
		s.commitGroup(group)
	}
}

// commitGroup applies, drains, and logs one group under a single
// critical section of the driver lock, then wakes every member with its
// outcome. Members that fail the engine's synchronous validation are
// rejected individually and excluded from the group record; a flush or
// WAL failure is group-wide (those members were applied together, so
// they are un-acknowledged together).
//
// A group may span tenants: each member applies to its own tenant's
// engine, and each touched tenant flushes exactly once, in first-touch
// order — the keyed group record preserves member order, so replay
// re-applies the same per-tenant AddBatch sequence and flushes the same
// tenants in the same order. Worker batch boundaries stay a pure
// function of the log, now per tenant. One WAL append and one fsync
// still cover the whole group, however many tenants it touched.
func (s *Server) commitGroup(group []*ingestJob) {
	// Stage tracing (trace.go): the dequeue closes every member's
	// "enqueue" stage; "apply" runs from here through the touched-tenant
	// flushes (driver-lock wait included), "append" is the group's WAL
	// record, "fsync" the durability barrier below.
	dequeued := time.Now()
	for _, j := range group {
		s.metrics.stages[stageEnqueue].Observe(dequeued.Sub(j.enqueuedAt).Seconds())
	}
	s.mu.Lock()
	applied, groupTuples := 0, 0
	touched := s.touchedBuf[:0]
	for _, j := range group {
		if j.tn == nil {
			j.tn = s.def
		}
		eng, err := s.ensureEngineLocked(j.tn)
		if err != nil {
			j.err, j.kind = err, ingestErrEngine
			continue
		}
		if err := eng.AddBatch(j.tuples); err != nil {
			j.err, j.kind = err, ingestErrValidate
			continue
		}
		j.kind = ingestOK
		applied++
		groupTuples += len(j.tuples)
		if !j.tn.inGroup {
			j.tn.inGroup = true
			touched = append(touched, j.tn)
		}
	}
	var flushErr, walErr error
	var groupLSN uint64
	applyEnd := time.Now()
	if applied > 0 && s.wal != nil {
		// One drain per touched tenant pins the group's worker batch
		// boundaries, one append orders the group in the log. The append
		// is deliberately not the fsync: that happens below, outside the
		// driver lock, so the next group's decode and apply (and any
		// query-cache rebuild) overlap this group's disk wait instead of
		// queueing behind it.
		for _, t := range touched {
			if flushErr = t.eng.Flush(); flushErr != nil {
				break
			}
		}
		applyEnd = time.Now()
		if flushErr == nil {
			groupLSN, walErr = s.logIngestGroup(group)
			s.metrics.stages[stageAppend].Observe(time.Since(applyEnd).Seconds())
		}
	}
	if applied > 0 {
		s.metrics.stages[stageApply].Observe(applyEnd.Sub(dequeued).Seconds())
	}
	sample := s.cfg.MaxTenantBytes > 0
	for _, t := range touched {
		t.inGroup = false
		t.epoch.Add(1)
		t.touch()
		if sample && flushErr == nil {
			// The engine just drained for the group flush, so Space is a
			// cheap walk; the sample feeds the MaxTenantBytes cap.
			if sp, err := t.eng.Space(); err == nil {
				t.space.Store(sp)
			}
		}
	}
	s.touchedBuf = touched[:0]
	s.mu.Unlock()
	if sample && applied > 0 {
		s.recomputeFootprint()
	}
	if applied > 0 && flushErr == nil && walErr == nil && s.walSyncAlways {
		// The group-wide durability barrier the acks below stand behind:
		// one fsync for the whole group. (Under fsync=interval/off the
		// ack never promised durability, so there is nothing to wait on.)
		fsyncStart := time.Now()
		walErr = s.wal.Sync()
		s.metrics.stages[stageFsync].Observe(time.Since(fsyncStart).Seconds())
		if walErr != nil {
			// The group record never reached stable storage and its
			// members are nacked below — rewind it out of the log, so a
			// restart replays exactly the acknowledged record set instead
			// of resurrecting batches whose clients were told they failed.
			s.wal.RewindUnsynced()
		}
	}
	if applied > 0 && flushErr == nil && walErr == nil {
		s.metrics.ingestGroups.Inc()
		s.metrics.ingestGroupMembers.Add(uint64(applied))
		s.metrics.groupSize.Observe(float64(applied))
		s.metrics.groupTuples.Observe(float64(groupTuples))
	}
	if applied > 0 {
		// Health bookkeeping: WAL failures on the commit path count
		// toward the degraded transition; any clean commit resets the
		// streak. The group's wall time feeds the EWMA that prices the
		// overload Retry-After hint.
		if walErr != nil {
			s.noteWALError(walErr)
		} else if flushErr == nil {
			s.noteWALOK()
		}
		obs := time.Since(dequeued).Seconds()
		if prev := s.groupLatency.Load(); prev > 0 {
			obs = 0.2*obs + 0.8*prev
		}
		s.groupLatency.Set(obs)
	}
	wake := time.Now()
	for _, j := range group {
		if j.kind == ingestOK {
			if flushErr != nil {
				j.err, j.kind = flushErr, ingestErrEngine
			} else if walErr != nil {
				j.err, j.kind = walErr, ingestErrWAL
			} else {
				j.lsn = groupLSN
			}
		}
		j.wakeAt = wake
		j.done <- struct{}{}
	}
}

// overloadRetryAfter prices a shed request's Retry-After hint: the
// commit-group latency EWMA times the groups already queued ahead of a
// new arrival — roughly when the backlog will have drained — clamped to
// [1s, 30s] so the hint is never zero and never absurd.
func (s *Server) overloadRetryAfter() time.Duration {
	p := &s.pipe
	p.mu.Lock()
	depth := len(p.queue)
	p.mu.Unlock()
	groups := depth/s.groupMax + 1
	d := time.Duration(s.groupLatency.Load() * float64(groups) * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// logIngestGroup appends the group's applied members as one WAL record
// and returns its LSN. A group entirely on the default tenant keeps the
// legacy forms — the counted batch itself for a group of one, a
// RecordIngestGroup for more — so single-tenant deployments write logs
// byte-identical to pre-tenant corrd (and old logs replay unchanged). A
// group touching any keyed tenant writes one RecordKeyedIngestGroup:
// the member count, then each member as a tenant-prefixed counted batch
// in commit order. Callers hold s.mu.
func (s *Server) logIngestGroup(group []*ingestJob) (uint64, error) {
	buf := s.groupBuf[:0]
	members, keyed := 0, false
	for _, j := range group {
		if j.kind == ingestOK {
			members++
			if j.tn != s.def {
				keyed = true
			}
		}
	}
	var typ wal.RecordType
	switch {
	case keyed:
		typ = wal.RecordKeyedIngestGroup
		buf = binary.AppendUvarint(buf, uint64(members))
		for _, j := range group {
			if j.kind == ingestOK {
				buf = tupleio.AppendKeyedBatch(buf, j.tn.name, j.tuples)
			}
		}
	case members == 1:
		typ = wal.RecordIngest
		for _, j := range group {
			if j.kind == ingestOK {
				buf = tupleio.AppendCountedBatch(buf, j.tuples)
			}
		}
	default:
		typ = wal.RecordIngestGroup
		buf = binary.AppendUvarint(buf, uint64(members))
		for _, j := range group {
			if j.kind == ingestOK {
				buf = tupleio.AppendCountedBatch(buf, j.tuples)
			}
		}
	}
	lsn, err := s.wal.AppendNoSync(typ, buf)
	if cap(buf) > maxPooledBuffer {
		buf = nil // do not pin a rare huge group
	}
	s.groupBuf = buf
	return lsn, err
}
