package service

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http/httptest"
	"sync"
	"testing"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/client"
	"github.com/streamagg/correlated/internal/tupleio"
)

// startStream attaches a streaming-ingest listener to svc on a free
// loopback port and returns its address.
func startStream(t *testing.T, svc *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go svc.ServeStream(ln)
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// TestStreamIngestRoundTrip: tuples ingested over the streaming
// transport answer queries identically to an offline summary built from
// the same stream — the same exactness contract as the HTTP path — and
// the stream counters see the traffic.
func TestStreamIngestRoundTrip(t *testing.T) {
	o := testOptions()
	svc, ts, cl := newTestServer(t, Config{Options: o, Shards: 2, BatchSize: 64})
	_ = ts
	addr := startStream(t, svc)
	ctx := context.Background()

	st, err := client.DialStream(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	stream := testStream(10_000, 42)
	const chunk = 1000
	for off := 0; off < len(stream); off += chunk {
		if err := st.Send(stream[off : off+chunk]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if got := st.Acked(); got != uint64(len(stream)) {
		t.Fatalf("acked %d tuples, want %d", got, len(stream))
	}

	offline, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := offline.AddBatch(append([]correlated.Tuple(nil), stream...)); err != nil {
		t.Fatal(err)
	}
	for _, c := range []uint64{0, 50, 150, distinctY, 1 << 15} {
		want, err1 := offline.QueryLE(c)
		got, err2 := cl.QueryLE(ctx, c)
		if err1 != nil || err2 != nil {
			t.Fatalf("c=%d: %v %v", c, err1, err2)
		}
		if got != want {
			t.Fatalf("LE c=%d: service %v offline %v", c, got, want)
		}
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Count != uint64(len(stream)) {
		t.Fatalf("count %d, want %d", stats.Count, len(stream))
	}
	if stats.StreamConnsTotal != 1 || stats.StreamFrames != uint64(len(stream)/chunk) ||
		stats.StreamTuples != uint64(len(stream)) {
		t.Fatalf("stream stats: %+v", stats)
	}
}

// TestStreamAcksCarryLSN: with a WAL, every OK ack names the LSN of the
// group record its frame rode in — nonzero and nondecreasing, since the
// pipeline is FIFO.
func TestStreamAcksCarryLSN(t *testing.T) {
	svc, _, _ := newTestServer(t, walConfig(t, 2))
	addr := startStream(t, svc)
	ctx := context.Background()

	st, err := client.DialStream(ctx, addr, client.WithAckBuffer(64))
	if err != nil {
		t.Fatal(err)
	}
	const frames = 10
	acks := make(chan client.Ack, frames)
	var drainWG sync.WaitGroup
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		for a := range st.Acks() {
			acks <- a
		}
	}()
	for j := 0; j < frames; j++ {
		if err := st.Send(testStream(100, uint64(700+j))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	drainWG.Wait()
	close(acks)
	var lastSeq, lastLSN uint64
	n := 0
	for a := range acks {
		if err := a.Err(); err != nil {
			t.Fatal(err)
		}
		if a.Seq != lastSeq+1 {
			t.Fatalf("ack seq %d after %d", a.Seq, lastSeq)
		}
		if a.LSN == 0 || a.LSN < lastLSN {
			t.Fatalf("ack %d: LSN %d after %d", a.Seq, a.LSN, lastLSN)
		}
		if a.Tuples != 100 {
			t.Fatalf("ack %d: %d tuples", a.Seq, a.Tuples)
		}
		lastSeq, lastLSN = a.Seq, a.LSN
		n++
	}
	if n != frames {
		t.Fatalf("%d acks, want %d", n, frames)
	}
}

// TestStreamBadPayloadNacked: a frame whose payload fails the counted
// decode is nacked (AckInvalid) without desynchronizing the connection —
// the next frame commits and acks OK.
func TestStreamBadPayloadNacked(t *testing.T) {
	svc, _, _ := newTestServer(t, Config{Options: testOptions()})
	addr := startStream(t, svc)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(tupleio.AppendHello(nil, tupleio.StreamFormatCounted)); err != nil {
		t.Fatal(err)
	}
	var reply [tupleio.HelloReplySize]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		t.Fatal(err)
	}
	if status, _, err := tupleio.ParseHelloReply(reply[:]); err != nil || status != tupleio.HelloOK {
		t.Fatalf("handshake: status=%d err=%v", status, err)
	}

	// Frame 1: claims 5 tuples, carries none — intact framing, bad payload.
	bad := []byte{0x05}
	wire := append(tupleio.AppendFrameHeader(nil, 1, uint32(len(bad))), bad...)
	// Frame 2: a well-formed batch.
	good := tupleio.AppendCountedBatch(nil, []correlated.Tuple{{X: 1, Y: 2, W: 1}})
	wire = append(wire, tupleio.AppendFrameHeader(nil, 2, uint32(len(good)))...)
	wire = append(wire, good...)
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}

	var ack [tupleio.AckSize]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		t.Fatal(err)
	}
	seq, _, status, err := tupleio.ParseAck(ack[:])
	if err != nil || seq != 1 || status != tupleio.AckInvalid {
		t.Fatalf("first ack: seq=%d status=%d err=%v", seq, status, err)
	}
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		t.Fatal(err)
	}
	seq, _, status, err = tupleio.ParseAck(ack[:])
	if err != nil || seq != 2 || status != tupleio.AckOK {
		t.Fatalf("second ack: seq=%d status=%d err=%v", seq, status, err)
	}
	if n, err := svc.Engine().Count(); err != nil || n != 1 {
		t.Fatalf("engine holds %d tuples (err %v), want 1", n, err)
	}
}

// TestStreamSeqGapClosesConn: a sequence gap means the sender is
// desynchronized from the ack stream; the server drops the connection
// without acking anything.
func TestStreamSeqGapClosesConn(t *testing.T) {
	svc, _, _ := newTestServer(t, Config{Options: testOptions()})
	addr := startStream(t, svc)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(tupleio.AppendHello(nil, tupleio.StreamFormatCounted)); err != nil {
		t.Fatal(err)
	}
	var reply [tupleio.HelloReplySize]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		t.Fatal(err)
	}
	payload := tupleio.AppendCountedBatch(nil, []correlated.Tuple{{X: 1, Y: 2, W: 1}})
	wire := append(tupleio.AppendFrameHeader(nil, 5, uint32(len(payload))), payload...)
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	var one [1]byte
	if _, err := io.ReadFull(conn, one[:]); err != io.EOF {
		t.Fatalf("read after gap: %v (want EOF)", err)
	}
	if n, _ := svc.Engine().Count(); n != 0 {
		t.Fatalf("engine ingested %d tuples from a desynced conn", n)
	}
}

// TestStreamRejectsBadHello: an unsupported version or format is
// refused in the hello reply, and garbage gets no reply at all.
func TestStreamRejectsBadHello(t *testing.T) {
	svc, _, _ := newTestServer(t, Config{Options: testOptions()})
	addr := startStream(t, svc)

	// Future version.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := tupleio.AppendHello(nil, tupleio.StreamFormatCounted)
	hello[4] = tupleio.StreamVersion + 1
	if _, err := conn.Write(hello); err != nil {
		t.Fatal(err)
	}
	var reply [tupleio.HelloReplySize]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		t.Fatal(err)
	}
	status, _, err := tupleio.ParseHelloReply(reply[:])
	if err != nil || status != tupleio.HelloBadVersion {
		t.Fatalf("version reply: status=%d err=%v", status, err)
	}
	var one [1]byte
	if _, err := io.ReadFull(conn, one[:]); err != io.EOF {
		t.Fatalf("conn stayed open after refused hello: %v", err)
	}

	// Garbage magic: the server just hangs up.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write(bytes.Repeat([]byte{0xFF}, tupleio.HelloSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn2, one[:]); err != io.EOF {
		t.Fatalf("garbage hello got a reply: %v", err)
	}
}

// TestMixedHTTPStreamCrashRecoveryExact extends the concurrent
// crash-exactness contract to mixed transports: HTTP and stream
// ingesters run concurrently against a durable server, every
// acknowledged batch matches a serial offline oracle float-exactly, and
// a kill -9 recovers the pre-crash merged state byte-identically —
// streamed batches ride the same group-commit WAL records as HTTP ones.
func TestMixedHTTPStreamCrashRecoveryExact(t *testing.T) {
	o := testOptions()
	cfg := walConfig(t, 2)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	addr := startStream(t, svc)
	ctx := context.Background()

	const (
		httpClients   = 3
		streamClients = 3
		batches       = 8
		batchSize     = 500
	)
	var wg sync.WaitGroup
	for i := 0; i < httpClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := client.New(ts.URL, client.WithChunkSize(batchSize))
			for j := 0; j < batches; j++ {
				if err := cl.AddBatch(ctx, testStream(batchSize, uint64(31000+i*100+j))); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	for i := 0; i < streamClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := client.DialStream(ctx, addr)
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < batches; j++ {
				if err := st.Send(testStream(batchSize, uint64(41000+i*100+j))); err != nil {
					t.Error(err)
					return
				}
			}
			if err := st.Close(); err != nil {
				t.Error(err)
				return
			}
			if got := st.Acked(); got != batches*batchSize {
				t.Errorf("stream client %d acked %d tuples, want %d", i, got, batches*batchSize)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Serial oracle over every acknowledged batch, both transports.
	offline, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < httpClients; i++ {
		for j := 0; j < batches; j++ {
			if err := offline.AddBatch(testStream(batchSize, uint64(31000+i*100+j))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < streamClients; i++ {
		for j := 0; j < batches; j++ {
			if err := offline.AddBatch(testStream(batchSize, uint64(41000+i*100+j))); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := uint64((httpClients + streamClients) * batches * batchSize)
	cl := client.New(ts.URL)
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Count != total {
		t.Fatalf("server holds %d tuples, acknowledged %d", stats.Count, total)
	}
	if stats.StreamTuples != uint64(streamClients*batches*batchSize) {
		t.Fatalf("stream tuples %d, want %d", stats.StreamTuples, streamClients*batches*batchSize)
	}
	for _, c := range []uint64{0, 25, 100, 200, distinctY, 1 << 15} {
		want, err1 := offline.QueryLE(c)
		got, err2 := cl.QueryLE(ctx, c)
		if err1 != nil || err2 != nil {
			t.Fatalf("c=%d: %v %v", c, err1, err2)
		}
		if got != want {
			t.Fatalf("LE c=%d: server %v oracle %v", c, got, want)
		}
	}

	// Kill -9 and recover: restored bytes must equal the pre-crash state.
	pre, err := svc.Engine().MarshalMerged()
	if err != nil {
		t.Fatal(err)
	}
	crash(ts, svc)
	svc2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	recovered, err := svc2.Engine().MarshalMerged()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recovered, pre) {
		t.Fatalf("recovery differs from pre-crash state (%d vs %d bytes)", len(recovered), len(pre))
	}
	n, err := svc2.Engine().Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != total {
		t.Fatalf("recovered count %d, want %d", n, total)
	}
}

// TestStreamGracefulDrain: Close with a connected stream client drains
// cleanly — the client's in-flight frames are acked (or refused with
// AckShutdown), never left hanging.
func TestStreamGracefulDrain(t *testing.T) {
	svc, err := New(Config{Options: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	addr := startStream(t, svc)
	ctx := context.Background()
	st, err := client.DialStream(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send(testStream(500, 77)); err != nil {
		t.Fatal(err)
	}
	// Close the server while the client connection is live: the reader
	// drains, the acker flushes, and the server's wg.Wait returns.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	// The client's stream ends; Close reports either a clean shutdown
	// (all acks in) or the connection ending early — never a hang.
	st.Close()
}

// BenchmarkStreamDecode measures the per-frame server decode path at
// steady state — frame header + payload read into a reused buffer, then
// the counted batch decode — the path the ≥3×-over-HTTP target rides.
// The contract is ~0 allocs/op (asserted by TestStreamDecodeZeroAlloc).
func BenchmarkStreamDecode(b *testing.B) {
	svc, err := New(Config{Options: testOptions()})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	batch := testStream(512, 99)
	payload := tupleio.AppendCountedBatch(nil, batch)
	wire := append(tupleio.AppendFrameHeader(nil, 1, uint32(len(payload))), payload...)
	br := bytes.NewReader(wire)
	fr := tupleio.NewFrameReader(br, 1<<20)
	d := svc.dec.Get().(*decodeState)
	defer svc.putDecodeState(d)
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Reset(wire)
		_, out, err := fr.Next(d.body[:cap(d.body)])
		if err != nil {
			b.Fatal(err)
		}
		d.body = out
		if d.tuples, err = tupleio.DecodeCounted(d.tuples, d.body); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStreamDecodeZeroAlloc pins the benchmark's contract: after the
// first frame grows the reused buffers, the per-frame decode allocates
// nothing.
func TestStreamDecodeZeroAlloc(t *testing.T) {
	svc, err := New(Config{Options: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	payload := tupleio.AppendCountedBatch(nil, testStream(512, 99))
	wire := append(tupleio.AppendFrameHeader(nil, 1, uint32(len(payload))), payload...)
	br := bytes.NewReader(wire)
	fr := tupleio.NewFrameReader(br, 1<<20)
	d := svc.dec.Get().(*decodeState)
	defer svc.putDecodeState(d)
	decode := func() {
		br.Reset(wire)
		_, out, err := fr.Next(d.body[:cap(d.body)])
		if err != nil {
			t.Fatal(err)
		}
		d.body = out
		if d.tuples, err = tupleio.DecodeCounted(d.tuples, d.body); err != nil {
			t.Fatal(err)
		}
	}
	decode() // warm up: grow payload and tuple buffers once
	if allocs := testing.AllocsPerRun(100, decode); allocs > 0 {
		t.Fatalf("steady-state frame decode costs %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkHTTPIngestDecode is the pooling-audit counterpart for the
// HTTP path: body copy into the pooled buffer plus the tuple decode,
// exactly what handleIngest does between readBody and enqueue. Same
// pooled decodeState, same ~0 allocs/op contract
// (TestHTTPIngestDecodeZeroAlloc).
func BenchmarkHTTPIngestDecode(b *testing.B) {
	svc, err := New(Config{Options: testOptions()})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	body := tupleio.AppendBatch(nil, testStream(512, 99))
	d := svc.dec.Get().(*decodeState)
	defer svc.putDecodeState(d)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.body = append(d.body[:0], body...)
		if d.tuples, err = tupleio.Decode(d.tuples, d.body); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHTTPIngestDecodeZeroAlloc pins the HTTP decode path's steady
// state: buffers recycled through the shared pool mean zero allocations
// per request once warm — the regression test for the pooling audit.
func TestHTTPIngestDecodeZeroAlloc(t *testing.T) {
	svc, err := New(Config{Options: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	body := tupleio.AppendBatch(nil, testStream(512, 99))
	d := svc.dec.Get().(*decodeState)
	defer svc.putDecodeState(d)
	decode := func() {
		d.body = append(d.body[:0], body...)
		var err error
		if d.tuples, err = tupleio.Decode(d.tuples, d.body); err != nil {
			t.Fatal(err)
		}
	}
	decode()
	if allocs := testing.AllocsPerRun(100, decode); allocs > 0 {
		t.Fatalf("steady-state HTTP decode costs %.1f allocs/op, want 0", allocs)
	}
}

// TestPutDecodeStateClearsStreamFields: recycling a decodeState drops
// the per-request stream fields (seq, LSN) so a pooled state reused by
// the other transport cannot leak a stale ack identity.
func TestPutDecodeStateClearsStreamFields(t *testing.T) {
	svc, err := New(Config{Options: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	d := svc.dec.Get().(*decodeState)
	d.streamSeq = 9
	d.job.lsn = 7
	d.job.tuples = []correlated.Tuple{{X: 1, Y: 1, W: 1}}
	svc.putDecodeState(d)
	if d.streamSeq != 0 || d.job.lsn != 0 || d.job.tuples != nil {
		t.Fatalf("recycled state keeps per-request fields: seq=%d lsn=%d tuples=%v",
			d.streamSeq, d.job.lsn, d.job.tuples)
	}
}
